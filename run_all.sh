#!/bin/sh
# Regenerate every paper table/figure and capture the outputs the
# repository documents (test_output.txt / bench_output.txt).
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b ====="
    "$b"
done 2>&1 | tee /root/repo/bench_output.txt | grep -E '=====|GEOMEAN|Validation' | tail -40
