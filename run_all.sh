#!/bin/sh
# Regenerate every paper table/figure and capture the outputs the
# repository documents (test_output.txt / bench_output.txt).
#
#   ./run_all.sh             normal run (includes `hydride-verify`)
#   ./run_all.sh --trace     additionally capture observability traces:
#                            every test and bench runs with
#                            HYDRIDE_TRACE=1 HYDRIDE_METRICS=1, the JSON
#                            artifacts land in build/traces/, and
#                            tools/check_trace.py validates each one
#                            (malformed trace JSON fails the run).
#   ./run_all.sh --sanitize  configure + build the `asan-ubsan` preset
#                            (Debug, -fsanitize=address,undefined, with
#                            load-time spec verification on) and run
#                            the tier-1 test suite under it.
#   ./run_all.sh --chaos     run the fault-injection sweep
#                            (`hydride-chaos`: every registered fault
#                            site in a fresh process) plus the
#                            broken-ladder detection check. Composes
#                            with --sanitize: `--sanitize --chaos`
#                            runs the sweep under the sanitizers.
#   ./run_all.sh --chaos-store
#                            run the multi-process store crash-safety
#                            suite (docs/cache_store.md): SIGKILL a
#                            writer mid-append and salvage, N
#                            concurrent forked writers on one shard,
#                            durable quarantine of a poisoned entry,
#                            and the poison-reaches-codegen detection
#                            check (expected failure). Composes with
#                            --sanitize: `--sanitize --chaos-store`
#                            runs the suite under the sanitizers.
#   ./run_all.sh --bench     run the continuous-benchmarking smoke
#                            suite (`hydride-bench --smoke`), validate
#                            the merged artifact with
#                            tools/check_bench.py, and gate it against
#                            itself (docs/benchmarking.md).
#   ./run_all.sh --lint      run the curated clang-tidy check set
#                            (.clang-tidy, warnings-as-errors) over
#                            src/ and tools/. When clang-tidy is not
#                            installed, falls back to a strict
#                            warnings-as-errors syntax-only sweep with
#                            the host compiler (docs/static_analysis.md).
#   ./run_all.sh --journal   compile a real pipeline with
#                            HYDRIDE_JOURNAL set, validate the
#                            provenance stream with
#                            tools/check_journal.py, prove
#                            `hydride-inspect explain --all`
#                            reconstructs every window's ledger, then
#                            re-run with an injected lowering fault
#                            and require `hydride-inspect diff` to
#                            flag the drift (docs/observability.md).

TRACE_MODE=0
CHAOS_MODE=0
CHAOS_STORE_MODE=0
CHAOS_BUILD=build
for arg in "$@"; do
    [ "$arg" = "--chaos" ] && CHAOS_MODE=1
    [ "$arg" = "--chaos-store" ] && CHAOS_STORE_MODE=1
done

run_chaos() {
    # The sweep: invariant is "verified degraded compilation or
    # structured diagnostic, never a crash" for every fault site.
    echo "===== hydride-chaos sweep ($CHAOS_BUILD) ====="
    "$CHAOS_BUILD"/tools/hydride-chaos || exit 1
    # The harness must also *detect* a broken degradation path
    # (nonzero exit expected — mirrors the WILL_FAIL ctest entry).
    if "$CHAOS_BUILD"/tools/hydride-chaos --break-ladder \
            > /dev/null 2>&1; then
        echo "run_all: chaos harness missed a broken ladder" >&2
        exit 1
    fi
    echo "run_all: chaos sweep passed"
}

run_chaos_store() {
    # Multi-process crash safety: a SIGKILL'd writer costs exactly its
    # torn record, concurrent writers lose nothing, poisoned entries
    # are quarantined — and the harness must *detect* poison reaching
    # codegen when verification is off (nonzero exit expected, the
    # shell mirror of the WILL_FAIL ctest entry).
    echo "===== hydride-chaos store suite ($CHAOS_BUILD) ====="
    "$CHAOS_BUILD"/tools/hydride-chaos --store-crash || exit 1
    "$CHAOS_BUILD"/tools/hydride-chaos --store-concurrent || exit 1
    "$CHAOS_BUILD"/tools/hydride-chaos --store-poison || exit 1
    if "$CHAOS_BUILD"/tools/hydride-chaos --store-poison-unverified \
            > /dev/null 2>&1; then
        echo "run_all: chaos harness missed poison reaching codegen" >&2
        exit 1
    fi
    echo "run_all: chaos store suite passed"
}

if [ "$1" = "--sanitize" ]; then
    cmake --preset asan-ubsan || exit 1
    cmake --build --preset asan-ubsan -j "$(nproc)" || exit 1
    ctest --preset asan-ubsan -j "$(nproc)" || exit 1
    echo "run_all: sanitizer suite passed"
    if [ "$CHAOS_MODE" = 1 ]; then
        CHAOS_BUILD=build/sanitize
        run_chaos
    fi
    if [ "$CHAOS_STORE_MODE" = 1 ]; then
        CHAOS_BUILD=build/sanitize
        run_chaos_store
    fi
    exit 0
fi
if [ "$1" = "--chaos" ]; then
    run_chaos
    [ "$CHAOS_STORE_MODE" = 1 ] && run_chaos_store
    exit 0
fi
if [ "$1" = "--chaos-store" ]; then
    run_chaos_store
    exit 0
fi
if [ "$1" = "--lint" ]; then
    echo "===== lint (src/ + tools/) ====="
    if command -v clang-tidy > /dev/null 2>&1; then
        # Full static analysis when the tool is available: the curated
        # check set lives in .clang-tidy (warnings-as-errors, so any
        # finding fails the tier).
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            > /dev/null || exit 1
        find src tools -name '*.cpp' -print0 | \
            xargs -0 clang-tidy -p build --quiet || exit 1
        echo "run_all: clang-tidy lint passed"
    else
        # Fallback for containers without clang-tidy: a strict
        # warnings-as-errors syntax-only sweep. -Wpedantic is
        # deliberately absent (BitVector's word arithmetic uses
        # __int128 on purpose); -Wmissing-declarations is dropped for
        # tools/ where each main() defines file-local helpers.
        echo "run_all: clang-tidy not found; strict-warnings fallback"
        find src -name '*.cpp' -print0 | xargs -0 -P "$(nproc)" -n 4 \
            g++ -std=c++20 -fsyntax-only -I src \
            -Wall -Wextra -Wshadow -Wnon-virtual-dtor \
            -Woverloaded-virtual -Wcast-qual -Wmissing-declarations \
            -Werror || exit 1
        find tools -name '*.cpp' -print0 | xargs -0 -P "$(nproc)" -n 4 \
            g++ -std=c++20 -fsyntax-only -I src \
            -Wall -Wextra -Wshadow -Wnon-virtual-dtor \
            -Woverloaded-virtual -Wcast-qual -Werror || exit 1
        echo "run_all: strict-warnings lint passed"
    fi
    exit 0
fi
if [ "$1" = "--journal" ]; then
    echo "===== provenance journal ====="
    JDIR=build/journal
    rm -rf "$JDIR"
    mkdir -p "$JDIR"
    # Base run: every compiled window must land in the journal with a
    # complete decision ledger.
    HYDRIDE_JOURNAL="$JDIR/base.jsonl" \
        build/examples/matmul_codegen > /dev/null || exit 1
    python3 tools/check_journal.py "$JDIR/base.jsonl" || exit 1
    build/tools/hydride-inspect explain --all \
        --journal "$JDIR/base.jsonl" || exit 1
    build/tools/hydride-inspect top --by=time \
        --journal "$JDIR/base.jsonl" || exit 1
    # Perturbed run: force the lowering rung down and require the
    # diff to notice. `diff` exits 1 on drift, so a clean exit here
    # means the journal failed to capture the perturbation.
    HYDRIDE_JOURNAL="$JDIR/perturbed.jsonl" HYDRIDE_FAULTS=lowering.fail \
        build/examples/matmul_codegen > /dev/null || exit 1
    python3 tools/check_journal.py "$JDIR/perturbed.jsonl" || exit 1
    if build/tools/hydride-inspect diff "$JDIR/base.jsonl" \
            "$JDIR/perturbed.jsonl"; then
        echo "run_all: hydride-inspect diff missed the injected" \
             "perturbation" >&2
        exit 1
    fi
    # Identity diff must stay clean — drift detection, not noise.
    build/tools/hydride-inspect diff "$JDIR/base.jsonl" \
        "$JDIR/base.jsonl" || exit 1
    echo "run_all: journal pipeline passed"
    exit 0
fi
if [ "$1" = "--bench" ]; then
    echo "===== hydride-bench --smoke ====="
    build/tools/hydride-bench --smoke --bench-dir build/bench \
        --json-out build/bench_smoke.json || exit 1
    python3 tools/check_bench.py build/bench_smoke.json || exit 1
    build/tools/hydride-bench --input build/bench_smoke.json \
        --compare build/bench_smoke.json || exit 1
    echo "run_all: bench smoke suite passed"
    exit 0
fi
if [ "$1" = "--trace" ]; then
    TRACE_MODE=1
    export HYDRIDE_TRACE=1 HYDRIDE_METRICS=1
    export HYDRIDE_TRACE_DIR=/root/repo/build/traces
    rm -rf "$HYDRIDE_TRACE_DIR"
    mkdir -p "$HYDRIDE_TRACE_DIR"
fi

echo "===== hydride-verify ====="
build/tools/hydride-verify --max-print 50 || exit 1

# Symbolic translation validation: EQ01..EQ04 over the whole
# dictionary. The tool prints per-rule proved/refuted/unknown tallies;
# unknown-verdict queries are surfaced, never counted as passes.
echo "===== hydride-verify --passes equiv ====="
build/tools/hydride-verify --passes equiv --max-print 50 || exit 1

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt | tail -3
# POSIX sh has no `pipefail`, so query the pipeline's real status via
# the ctest LastTestsFailed log rather than trusting `tee`'s exit code.
if [ -s build/Testing/Temporary/LastTestsFailed.log ]; then
    echo "run_all: ctest reported failures (see test_output.txt)" >&2
    exit 1
fi

# Run each bench binary directly (no pipeline around the loop: a
# pipeline reports only the *last* command's status, which used to
# swallow bench crashes). Fail fast, naming the binary that broke.
: > /root/repo/bench_output.txt
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "===== $b ====="
    echo "===== $b =====" >> /root/repo/bench_output.txt
    if ! "$b" > /tmp/hydride_bench_one.txt 2>&1; then
        cat /tmp/hydride_bench_one.txt >> /root/repo/bench_output.txt
        echo "run_all: bench binary failed: $b (see bench_output.txt)" >&2
        exit 1
    fi
    cat /tmp/hydride_bench_one.txt >> /root/repo/bench_output.txt
    grep -E 'GEOMEAN|Validation' /tmp/hydride_bench_one.txt
done
rm -f /tmp/hydride_bench_one.txt

if [ "$TRACE_MODE" = 1 ]; then
    echo "===== validating traces in $HYDRIDE_TRACE_DIR ====="
    set -- "$HYDRIDE_TRACE_DIR"/*.json
    if [ ! -e "$1" ]; then
        echo "run_all: no trace artifacts were produced" >&2
        exit 1
    fi
    python3 /root/repo/tools/check_trace.py "$@" || exit 1
    echo "run_all: $# observability artifacts validated"
fi
