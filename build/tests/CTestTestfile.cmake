# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_bitvector[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_canonicalize[1]_include.cmake")
include("/root/repo/build/tests/test_specs_x86[1]_include.cmake")
include("/root/repo/build/tests/test_specs_hvx_arm[1]_include.cmake")
include("/root/repo/build/tests/test_similarity[1]_include.cmake")
include("/root/repo/build/tests/test_autollvm[1]_include.cmake")
include("/root/repo/build/tests/test_halide[1]_include.cmake")
include("/root/repo/build/tests/test_synthesis[1]_include.cmake")
include("/root/repo/build/tests/test_backends[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mlir[1]_include.cmake")
include("/root/repo/build/tests/test_macro_expand[1]_include.cmake")
include("/root/repo/build/tests/test_cache_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_parser_diagnostics[1]_include.cmake")
include("/root/repo/build/tests/test_specs_misc[1]_include.cmake")
