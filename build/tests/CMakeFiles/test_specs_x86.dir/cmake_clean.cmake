file(REMOVE_RECURSE
  "CMakeFiles/test_specs_x86.dir/test_specs_x86.cpp.o"
  "CMakeFiles/test_specs_x86.dir/test_specs_x86.cpp.o.d"
  "test_specs_x86"
  "test_specs_x86.pdb"
  "test_specs_x86[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specs_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
