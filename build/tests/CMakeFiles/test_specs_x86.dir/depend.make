# Empty dependencies file for test_specs_x86.
# This may be replaced when dependencies are built.
