file(REMOVE_RECURSE
  "CMakeFiles/test_parser_diagnostics.dir/test_parser_diagnostics.cpp.o"
  "CMakeFiles/test_parser_diagnostics.dir/test_parser_diagnostics.cpp.o.d"
  "test_parser_diagnostics"
  "test_parser_diagnostics.pdb"
  "test_parser_diagnostics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
