# Empty dependencies file for test_parser_diagnostics.
# This may be replaced when dependencies are built.
