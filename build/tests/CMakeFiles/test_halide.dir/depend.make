# Empty dependencies file for test_halide.
# This may be replaced when dependencies are built.
