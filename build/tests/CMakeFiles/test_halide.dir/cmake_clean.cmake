file(REMOVE_RECURSE
  "CMakeFiles/test_halide.dir/test_halide.cpp.o"
  "CMakeFiles/test_halide.dir/test_halide.cpp.o.d"
  "test_halide"
  "test_halide.pdb"
  "test_halide[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
