# Empty dependencies file for test_specs_hvx_arm.
# This may be replaced when dependencies are built.
