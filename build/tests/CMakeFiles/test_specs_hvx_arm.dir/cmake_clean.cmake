file(REMOVE_RECURSE
  "CMakeFiles/test_specs_hvx_arm.dir/test_specs_hvx_arm.cpp.o"
  "CMakeFiles/test_specs_hvx_arm.dir/test_specs_hvx_arm.cpp.o.d"
  "test_specs_hvx_arm"
  "test_specs_hvx_arm.pdb"
  "test_specs_hvx_arm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specs_hvx_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
