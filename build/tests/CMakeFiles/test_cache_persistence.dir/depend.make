# Empty dependencies file for test_cache_persistence.
# This may be replaced when dependencies are built.
