file(REMOVE_RECURSE
  "CMakeFiles/test_cache_persistence.dir/test_cache_persistence.cpp.o"
  "CMakeFiles/test_cache_persistence.dir/test_cache_persistence.cpp.o.d"
  "test_cache_persistence"
  "test_cache_persistence.pdb"
  "test_cache_persistence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
