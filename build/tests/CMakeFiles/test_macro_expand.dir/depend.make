# Empty dependencies file for test_macro_expand.
# This may be replaced when dependencies are built.
