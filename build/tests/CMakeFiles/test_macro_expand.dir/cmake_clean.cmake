file(REMOVE_RECURSE
  "CMakeFiles/test_macro_expand.dir/test_macro_expand.cpp.o"
  "CMakeFiles/test_macro_expand.dir/test_macro_expand.cpp.o.d"
  "test_macro_expand"
  "test_macro_expand.pdb"
  "test_macro_expand[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_macro_expand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
