file(REMOVE_RECURSE
  "CMakeFiles/test_mlir.dir/test_mlir.cpp.o"
  "CMakeFiles/test_mlir.dir/test_mlir.cpp.o.d"
  "test_mlir"
  "test_mlir.pdb"
  "test_mlir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
