# Empty dependencies file for test_mlir.
# This may be replaced when dependencies are built.
