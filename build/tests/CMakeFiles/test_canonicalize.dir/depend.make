# Empty dependencies file for test_canonicalize.
# This may be replaced when dependencies are built.
