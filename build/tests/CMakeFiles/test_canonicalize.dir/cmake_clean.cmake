file(REMOVE_RECURSE
  "CMakeFiles/test_canonicalize.dir/test_canonicalize.cpp.o"
  "CMakeFiles/test_canonicalize.dir/test_canonicalize.cpp.o.d"
  "test_canonicalize"
  "test_canonicalize.pdb"
  "test_canonicalize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_canonicalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
