file(REMOVE_RECURSE
  "CMakeFiles/test_autollvm.dir/test_autollvm.cpp.o"
  "CMakeFiles/test_autollvm.dir/test_autollvm.cpp.o.d"
  "test_autollvm"
  "test_autollvm.pdb"
  "test_autollvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autollvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
