# Empty compiler generated dependencies file for test_autollvm.
# This may be replaced when dependencies are built.
