file(REMOVE_RECURSE
  "CMakeFiles/test_specs_misc.dir/test_specs_misc.cpp.o"
  "CMakeFiles/test_specs_misc.dir/test_specs_misc.cpp.o.d"
  "test_specs_misc"
  "test_specs_misc.pdb"
  "test_specs_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_specs_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
