file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_sensitivity.dir/bench_table5_sensitivity.cpp.o"
  "CMakeFiles/bench_table5_sensitivity.dir/bench_table5_sensitivity.cpp.o.d"
  "bench_table5_sensitivity"
  "bench_table5_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
