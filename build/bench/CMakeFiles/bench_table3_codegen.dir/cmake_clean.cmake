file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_codegen.dir/bench_table3_codegen.cpp.o"
  "CMakeFiles/bench_table3_codegen.dir/bench_table3_codegen.cpp.o.d"
  "bench_table3_codegen"
  "bench_table3_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
