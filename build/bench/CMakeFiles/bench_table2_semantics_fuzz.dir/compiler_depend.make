# Empty compiler generated dependencies file for bench_table2_semantics_fuzz.
# This may be replaced when dependencies are built.
