file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_semantics_fuzz.dir/bench_table2_semantics_fuzz.cpp.o"
  "CMakeFiles/bench_table2_semantics_fuzz.dir/bench_table2_semantics_fuzz.cpp.o.d"
  "bench_table2_semantics_fuzz"
  "bench_table2_semantics_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_semantics_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
