# Empty compiler generated dependencies file for bench_table1_autollvm_size.
# This may be replaced when dependencies are built.
