file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_autollvm_size.dir/bench_table1_autollvm_size.cpp.o"
  "CMakeFiles/bench_table1_autollvm_size.dir/bench_table1_autollvm_size.cpp.o.d"
  "bench_table1_autollvm_size"
  "bench_table1_autollvm_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_autollvm_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
