file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_compile_times.dir/bench_table4_compile_times.cpp.o"
  "CMakeFiles/bench_table4_compile_times.dir/bench_table4_compile_times.cpp.o.d"
  "bench_table4_compile_times"
  "bench_table4_compile_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_compile_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
