# Empty compiler generated dependencies file for bench_table4_compile_times.
# This may be replaced when dependencies are built.
