file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_performance.dir/bench_fig6_performance.cpp.o"
  "CMakeFiles/bench_fig6_performance.dir/bench_fig6_performance.cpp.o.d"
  "bench_fig6_performance"
  "bench_fig6_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
