
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backends.cpp" "src/backends/CMakeFiles/hydride_backends.dir/backends.cpp.o" "gcc" "src/backends/CMakeFiles/hydride_backends.dir/backends.cpp.o.d"
  "/root/repo/src/backends/simulator.cpp" "src/backends/CMakeFiles/hydride_backends.dir/simulator.cpp.o" "gcc" "src/backends/CMakeFiles/hydride_backends.dir/simulator.cpp.o.d"
  "/root/repo/src/backends/targets.cpp" "src/backends/CMakeFiles/hydride_backends.dir/targets.cpp.o" "gcc" "src/backends/CMakeFiles/hydride_backends.dir/targets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synthesis/CMakeFiles/hydride_synthesis.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/hydride_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/autollvm/CMakeFiles/hydride_autollvm.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/hydride_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/hydride_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/halide/CMakeFiles/hydride_halide.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/hydride_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hydride_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
