# Empty dependencies file for hydride_backends.
# This may be replaced when dependencies are built.
