file(REMOVE_RECURSE
  "libhydride_backends.a"
)
