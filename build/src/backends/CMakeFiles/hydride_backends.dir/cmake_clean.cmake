file(REMOVE_RECURSE
  "CMakeFiles/hydride_backends.dir/backends.cpp.o"
  "CMakeFiles/hydride_backends.dir/backends.cpp.o.d"
  "CMakeFiles/hydride_backends.dir/simulator.cpp.o"
  "CMakeFiles/hydride_backends.dir/simulator.cpp.o.d"
  "CMakeFiles/hydride_backends.dir/targets.cpp.o"
  "CMakeFiles/hydride_backends.dir/targets.cpp.o.d"
  "libhydride_backends.a"
  "libhydride_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
