file(REMOVE_RECURSE
  "CMakeFiles/hydride_similarity.dir/engine.cpp.o"
  "CMakeFiles/hydride_similarity.dir/engine.cpp.o.d"
  "CMakeFiles/hydride_similarity.dir/extraction.cpp.o"
  "CMakeFiles/hydride_similarity.dir/extraction.cpp.o.d"
  "libhydride_similarity.a"
  "libhydride_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
