file(REMOVE_RECURSE
  "libhydride_similarity.a"
)
