# Empty dependencies file for hydride_similarity.
# This may be replaced when dependencies are built.
