# Empty dependencies file for hydride_hir.
# This may be replaced when dependencies are built.
