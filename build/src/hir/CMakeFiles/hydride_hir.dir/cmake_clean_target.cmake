file(REMOVE_RECURSE
  "libhydride_hir.a"
)
