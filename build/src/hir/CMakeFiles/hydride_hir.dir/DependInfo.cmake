
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hir/bitvector.cpp" "src/hir/CMakeFiles/hydride_hir.dir/bitvector.cpp.o" "gcc" "src/hir/CMakeFiles/hydride_hir.dir/bitvector.cpp.o.d"
  "/root/repo/src/hir/canonicalize.cpp" "src/hir/CMakeFiles/hydride_hir.dir/canonicalize.cpp.o" "gcc" "src/hir/CMakeFiles/hydride_hir.dir/canonicalize.cpp.o.d"
  "/root/repo/src/hir/expr.cpp" "src/hir/CMakeFiles/hydride_hir.dir/expr.cpp.o" "gcc" "src/hir/CMakeFiles/hydride_hir.dir/expr.cpp.o.d"
  "/root/repo/src/hir/printer.cpp" "src/hir/CMakeFiles/hydride_hir.dir/printer.cpp.o" "gcc" "src/hir/CMakeFiles/hydride_hir.dir/printer.cpp.o.d"
  "/root/repo/src/hir/semantics.cpp" "src/hir/CMakeFiles/hydride_hir.dir/semantics.cpp.o" "gcc" "src/hir/CMakeFiles/hydride_hir.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/hydride_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
