file(REMOVE_RECURSE
  "CMakeFiles/hydride_hir.dir/bitvector.cpp.o"
  "CMakeFiles/hydride_hir.dir/bitvector.cpp.o.d"
  "CMakeFiles/hydride_hir.dir/canonicalize.cpp.o"
  "CMakeFiles/hydride_hir.dir/canonicalize.cpp.o.d"
  "CMakeFiles/hydride_hir.dir/expr.cpp.o"
  "CMakeFiles/hydride_hir.dir/expr.cpp.o.d"
  "CMakeFiles/hydride_hir.dir/printer.cpp.o"
  "CMakeFiles/hydride_hir.dir/printer.cpp.o.d"
  "CMakeFiles/hydride_hir.dir/semantics.cpp.o"
  "CMakeFiles/hydride_hir.dir/semantics.cpp.o.d"
  "libhydride_hir.a"
  "libhydride_hir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_hir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
