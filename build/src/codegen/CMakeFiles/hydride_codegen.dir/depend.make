# Empty dependencies file for hydride_codegen.
# This may be replaced when dependencies are built.
