file(REMOVE_RECURSE
  "libhydride_codegen.a"
)
