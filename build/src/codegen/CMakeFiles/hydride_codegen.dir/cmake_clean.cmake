file(REMOVE_RECURSE
  "CMakeFiles/hydride_codegen.dir/lowering.cpp.o"
  "CMakeFiles/hydride_codegen.dir/lowering.cpp.o.d"
  "CMakeFiles/hydride_codegen.dir/macro_expand.cpp.o"
  "CMakeFiles/hydride_codegen.dir/macro_expand.cpp.o.d"
  "libhydride_codegen.a"
  "libhydride_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
