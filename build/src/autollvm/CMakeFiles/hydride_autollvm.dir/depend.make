# Empty dependencies file for hydride_autollvm.
# This may be replaced when dependencies are built.
