file(REMOVE_RECURSE
  "CMakeFiles/hydride_autollvm.dir/dict.cpp.o"
  "CMakeFiles/hydride_autollvm.dir/dict.cpp.o.d"
  "CMakeFiles/hydride_autollvm.dir/mlir.cpp.o"
  "CMakeFiles/hydride_autollvm.dir/mlir.cpp.o.d"
  "CMakeFiles/hydride_autollvm.dir/module.cpp.o"
  "CMakeFiles/hydride_autollvm.dir/module.cpp.o.d"
  "CMakeFiles/hydride_autollvm.dir/tablegen.cpp.o"
  "CMakeFiles/hydride_autollvm.dir/tablegen.cpp.o.d"
  "libhydride_autollvm.a"
  "libhydride_autollvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_autollvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
