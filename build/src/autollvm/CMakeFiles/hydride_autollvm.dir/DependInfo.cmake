
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autollvm/dict.cpp" "src/autollvm/CMakeFiles/hydride_autollvm.dir/dict.cpp.o" "gcc" "src/autollvm/CMakeFiles/hydride_autollvm.dir/dict.cpp.o.d"
  "/root/repo/src/autollvm/mlir.cpp" "src/autollvm/CMakeFiles/hydride_autollvm.dir/mlir.cpp.o" "gcc" "src/autollvm/CMakeFiles/hydride_autollvm.dir/mlir.cpp.o.d"
  "/root/repo/src/autollvm/module.cpp" "src/autollvm/CMakeFiles/hydride_autollvm.dir/module.cpp.o" "gcc" "src/autollvm/CMakeFiles/hydride_autollvm.dir/module.cpp.o.d"
  "/root/repo/src/autollvm/tablegen.cpp" "src/autollvm/CMakeFiles/hydride_autollvm.dir/tablegen.cpp.o" "gcc" "src/autollvm/CMakeFiles/hydride_autollvm.dir/tablegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/similarity/CMakeFiles/hydride_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/specs/CMakeFiles/hydride_specs.dir/DependInfo.cmake"
  "/root/repo/build/src/hir/CMakeFiles/hydride_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hydride_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
