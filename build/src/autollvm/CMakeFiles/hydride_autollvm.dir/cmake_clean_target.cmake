file(REMOVE_RECURSE
  "libhydride_autollvm.a"
)
