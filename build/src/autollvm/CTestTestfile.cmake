# CMake generated Testfile for 
# Source directory: /root/repo/src/autollvm
# Build directory: /root/repo/build/src/autollvm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
