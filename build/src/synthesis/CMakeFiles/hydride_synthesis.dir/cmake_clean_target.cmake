file(REMOVE_RECURSE
  "libhydride_synthesis.a"
)
