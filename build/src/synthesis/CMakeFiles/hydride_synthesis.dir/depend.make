# Empty dependencies file for hydride_synthesis.
# This may be replaced when dependencies are built.
