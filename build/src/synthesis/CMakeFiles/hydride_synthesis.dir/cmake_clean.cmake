file(REMOVE_RECURSE
  "CMakeFiles/hydride_synthesis.dir/cache.cpp.o"
  "CMakeFiles/hydride_synthesis.dir/cache.cpp.o.d"
  "CMakeFiles/hydride_synthesis.dir/cegis.cpp.o"
  "CMakeFiles/hydride_synthesis.dir/cegis.cpp.o.d"
  "CMakeFiles/hydride_synthesis.dir/compiler.cpp.o"
  "CMakeFiles/hydride_synthesis.dir/compiler.cpp.o.d"
  "CMakeFiles/hydride_synthesis.dir/grammar.cpp.o"
  "CMakeFiles/hydride_synthesis.dir/grammar.cpp.o.d"
  "libhydride_synthesis.a"
  "libhydride_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
