file(REMOVE_RECURSE
  "libhydride_halide.a"
)
