# Empty dependencies file for hydride_halide.
# This may be replaced when dependencies are built.
