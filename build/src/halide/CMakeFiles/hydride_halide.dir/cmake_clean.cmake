file(REMOVE_RECURSE
  "CMakeFiles/hydride_halide.dir/hexpr.cpp.o"
  "CMakeFiles/hydride_halide.dir/hexpr.cpp.o.d"
  "CMakeFiles/hydride_halide.dir/kernels.cpp.o"
  "CMakeFiles/hydride_halide.dir/kernels.cpp.o.d"
  "libhydride_halide.a"
  "libhydride_halide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_halide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
