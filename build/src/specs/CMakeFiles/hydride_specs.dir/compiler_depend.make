# Empty compiler generated dependencies file for hydride_specs.
# This may be replaced when dependencies are built.
