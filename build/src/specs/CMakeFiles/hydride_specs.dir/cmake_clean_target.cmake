file(REMOVE_RECURSE
  "libhydride_specs.a"
)
