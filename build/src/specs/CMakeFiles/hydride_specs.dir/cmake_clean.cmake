file(REMOVE_RECURSE
  "CMakeFiles/hydride_specs.dir/arm_manual.cpp.o"
  "CMakeFiles/hydride_specs.dir/arm_manual.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/arm_parser.cpp.o"
  "CMakeFiles/hydride_specs.dir/arm_parser.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/hvx_manual.cpp.o"
  "CMakeFiles/hydride_specs.dir/hvx_manual.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/hvx_parser.cpp.o"
  "CMakeFiles/hydride_specs.dir/hvx_parser.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/isa.cpp.o"
  "CMakeFiles/hydride_specs.dir/isa.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/parser_common.cpp.o"
  "CMakeFiles/hydride_specs.dir/parser_common.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/spec_db.cpp.o"
  "CMakeFiles/hydride_specs.dir/spec_db.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/x86_manual.cpp.o"
  "CMakeFiles/hydride_specs.dir/x86_manual.cpp.o.d"
  "CMakeFiles/hydride_specs.dir/x86_parser.cpp.o"
  "CMakeFiles/hydride_specs.dir/x86_parser.cpp.o.d"
  "libhydride_specs.a"
  "libhydride_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
