
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specs/arm_manual.cpp" "src/specs/CMakeFiles/hydride_specs.dir/arm_manual.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/arm_manual.cpp.o.d"
  "/root/repo/src/specs/arm_parser.cpp" "src/specs/CMakeFiles/hydride_specs.dir/arm_parser.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/arm_parser.cpp.o.d"
  "/root/repo/src/specs/hvx_manual.cpp" "src/specs/CMakeFiles/hydride_specs.dir/hvx_manual.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/hvx_manual.cpp.o.d"
  "/root/repo/src/specs/hvx_parser.cpp" "src/specs/CMakeFiles/hydride_specs.dir/hvx_parser.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/hvx_parser.cpp.o.d"
  "/root/repo/src/specs/isa.cpp" "src/specs/CMakeFiles/hydride_specs.dir/isa.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/isa.cpp.o.d"
  "/root/repo/src/specs/parser_common.cpp" "src/specs/CMakeFiles/hydride_specs.dir/parser_common.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/parser_common.cpp.o.d"
  "/root/repo/src/specs/spec_db.cpp" "src/specs/CMakeFiles/hydride_specs.dir/spec_db.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/spec_db.cpp.o.d"
  "/root/repo/src/specs/x86_manual.cpp" "src/specs/CMakeFiles/hydride_specs.dir/x86_manual.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/x86_manual.cpp.o.d"
  "/root/repo/src/specs/x86_parser.cpp" "src/specs/CMakeFiles/hydride_specs.dir/x86_parser.cpp.o" "gcc" "src/specs/CMakeFiles/hydride_specs.dir/x86_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hir/CMakeFiles/hydride_hir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/hydride_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
