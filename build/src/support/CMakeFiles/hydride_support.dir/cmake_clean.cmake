file(REMOVE_RECURSE
  "CMakeFiles/hydride_support.dir/error.cpp.o"
  "CMakeFiles/hydride_support.dir/error.cpp.o.d"
  "CMakeFiles/hydride_support.dir/rng.cpp.o"
  "CMakeFiles/hydride_support.dir/rng.cpp.o.d"
  "CMakeFiles/hydride_support.dir/strings.cpp.o"
  "CMakeFiles/hydride_support.dir/strings.cpp.o.d"
  "CMakeFiles/hydride_support.dir/table.cpp.o"
  "CMakeFiles/hydride_support.dir/table.cpp.o.d"
  "libhydride_support.a"
  "libhydride_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydride_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
