# Empty dependencies file for hydride_support.
# This may be replaced when dependencies are built.
