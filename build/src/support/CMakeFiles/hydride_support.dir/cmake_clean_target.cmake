file(REMOVE_RECURSE
  "libhydride_support.a"
)
