file(REMOVE_RECURSE
  "CMakeFiles/blur_pipeline.dir/blur_pipeline.cpp.o"
  "CMakeFiles/blur_pipeline.dir/blur_pipeline.cpp.o.d"
  "blur_pipeline"
  "blur_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blur_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
