# Empty dependencies file for blur_pipeline.
# This may be replaced when dependencies are built.
