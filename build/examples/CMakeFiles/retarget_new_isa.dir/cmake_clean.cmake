file(REMOVE_RECURSE
  "CMakeFiles/retarget_new_isa.dir/retarget_new_isa.cpp.o"
  "CMakeFiles/retarget_new_isa.dir/retarget_new_isa.cpp.o.d"
  "retarget_new_isa"
  "retarget_new_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retarget_new_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
