# Empty compiler generated dependencies file for retarget_new_isa.
# This may be replaced when dependencies are built.
