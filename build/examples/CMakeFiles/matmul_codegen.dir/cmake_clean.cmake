file(REMOVE_RECURSE
  "CMakeFiles/matmul_codegen.dir/matmul_codegen.cpp.o"
  "CMakeFiles/matmul_codegen.dir/matmul_codegen.cpp.o.d"
  "matmul_codegen"
  "matmul_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
