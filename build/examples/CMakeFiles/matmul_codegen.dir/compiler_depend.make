# Empty compiler generated dependencies file for matmul_codegen.
# This may be replaced when dependencies are built.
