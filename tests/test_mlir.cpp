/**
 * @file
 * Tests for the MLIR dialect emitter (the paper §8 extension):
 * the target-agnostic `autovec` dialect covers every class, the
 * per-ISA dialects cover every target instruction, and the rendered
 * types reflect the member parameterizations.
 */
#include <gtest/gtest.h>

#include "autollvm/mlir.h"
#include "specs/spec_db.h"
#include "support/strings.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

TEST(Mlir, AgnosticDialectHasOneOpPerClass)
{
    const std::string text = emitMlirAgnosticDialect(dict());
    EXPECT_NE(text.find("def AutoVec_Dialect"), std::string::npos);
    int count = 0;
    size_t pos = 0;
    while ((pos = text.find(": AutoVec_Op<", pos)) != std::string::npos) {
        ++count;
        ++pos;
    }
    EXPECT_EQ(count, dict().classCount());
}

TEST(Mlir, AgnosticOpsCarryParameterAttributes)
{
    const std::string text = emitMlirAgnosticDialect(dict());
    EXPECT_NE(text.find("I32Attr:$p0"), std::string::npos);
    EXPECT_NE(text.find("AnyVector:$"), std::string::npos);
}

TEST(Mlir, TargetDialectsCoverEveryInstruction)
{
    for (const auto &isa : builtinIsas()) {
        const std::string text = emitMlirTargetDialect(dict(), isa);
        size_t ops = 0;
        size_t pos = 0;
        const std::string marker = format("_Op<\"");
        while ((pos = text.find(marker, pos)) != std::string::npos) {
            ++ops;
            ++pos;
        }
        EXPECT_EQ(ops, dict().isaVariants(isa).size()) << isa;
        EXPECT_NE(text.find("// lowering: autovec."), std::string::npos);
    }
}

TEST(Mlir, HexagonDialectExists)
{
    // The paper's point: upstream MLIR has x86vector/arm_neon but no
    // Hexagon dialect; Hydride generates one.
    const std::string text = emitMlirTargetDialect(dict(), "hvx");
    EXPECT_NE(text.find("def hvx_Dialect"), std::string::npos);
    EXPECT_NE(text.find("vdmpyh_acc_128B"), std::string::npos);
    EXPECT_NE(text.find("vector<32xi32>"), std::string::npos);
}

} // namespace
} // namespace hydride
