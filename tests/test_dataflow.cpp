/**
 * @file
 * Tests for the abstract-interpretation dataflow framework
 * (src/analysis/dataflow/): interval transfer functions, the reduced
 * product, Int-expression ranges, and — most importantly — the
 * differential soundness fuzz: for random well-typed expressions and
 * random inputs, the concrete result must always be contained in the
 * abstract value.  That containment is the invariant that keeps the
 * CEGIS static pruner from rejecting correct candidates and the UB
 * proofs sound.
 */
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "analysis/dataflow/abs_eval.h"
#include "analysis/dataflow/int_range.h"
#include "analysis/dataflow/interval.h"
#include "analysis/dataflow/product.h"
#include "analysis/expr_check.h"
#include "analysis/symbolic/sym_eval.h"
#include "hir/expr.h"
#include "hir/semantics.h"
#include "support/rng.h"

using namespace hydride;
using namespace hydride::dataflow;
using hydride::analysis::CheckEnv;
using hydride::analysis::CheckedInt;
using hydride::analysis::checkedEvalInt;
using sym::KnownBits;

namespace {

// ---- random well-typed expression generator ----------------------------

struct GenContext
{
    std::vector<int> arg_widths;
    Rng *rng;

    int pick(int n) { return static_cast<int>(rng->next() % n); }
};

ExprPtr genBV(GenContext &ctx, int width, int depth);

/** A width-1 condition: either a comparison or a 1-bit value. */
ExprPtr
genCond(GenContext &ctx, int depth)
{
    if (depth > 0 && ctx.pick(2) == 0) {
        const int w = 1 + ctx.pick(12);
        const auto op = static_cast<BVCmpOp>(ctx.pick(6));
        return bvCmp(op, genBV(ctx, w, depth - 1), genBV(ctx, w, depth - 1));
    }
    return genBV(ctx, 1, depth > 0 ? depth - 1 : 0);
}

ExprPtr
genBV(GenContext &ctx, int width, int depth)
{
    // Leaves: an argument of the right width when one exists, else a
    // random constant.
    if (depth <= 0 || ctx.pick(4) == 0) {
        if (ctx.pick(2) == 0) {
            for (size_t k = 0; k < ctx.arg_widths.size(); ++k) {
                const size_t idx =
                    (k + ctx.rng->next()) % ctx.arg_widths.size();
                if (ctx.arg_widths[idx] == width)
                    return argBV(static_cast<int>(idx));
            }
        }
        const int64_t v = static_cast<int64_t>(ctx.rng->next());
        return bvConst(intConst(width), intConst(v));
    }
    switch (ctx.pick(7)) {
      case 0: { // binary
        const auto op = static_cast<BVBinOp>(ctx.pick(20));
        return bvBin(op, genBV(ctx, width, depth - 1),
                     genBV(ctx, width, depth - 1));
      }
      case 1: { // unary
        const auto op = static_cast<BVUnOp>(ctx.pick(4));
        return bvUn(op, genBV(ctx, width, depth - 1));
      }
      case 2: { // widening cast
        if (width < 2)
            return genBV(ctx, width, depth - 1);
        const int from = 1 + ctx.pick(width - 1);
        const auto op = ctx.pick(2) ? BVCastOp::ZExt : BVCastOp::SExt;
        return bvCast(op, genBV(ctx, from, depth - 1), intConst(width));
      }
      case 3: { // narrowing cast
        const int from = width + 1 + ctx.pick(8);
        const int which = ctx.pick(3);
        const auto op = which == 0   ? BVCastOp::Trunc
                        : which == 1 ? BVCastOp::SatNarrowS
                                     : BVCastOp::SatNarrowU;
        return bvCast(op, genBV(ctx, from, depth - 1), intConst(width));
      }
      case 4: { // extract
        const int extra = ctx.pick(8);
        const int from = width + extra;
        const int low = ctx.pick(extra + 1);
        return extract(genBV(ctx, from, depth - 1), intConst(low),
                       intConst(width));
      }
      case 5: { // concat
        if (width < 2)
            return genBV(ctx, width, depth - 1);
        const int wl = 1 + ctx.pick(width - 1);
        return concat(genBV(ctx, width - wl, depth - 1),
                      genBV(ctx, wl, depth - 1));
      }
      default: // select
        return select(genCond(ctx, depth - 1),
                      genBV(ctx, width, depth - 1),
                      genBV(ctx, width, depth - 1));
    }
}

// ---- containment-checking harness ---------------------------------------

/** How abstract argument values relate to the concrete inputs. */
enum class ArgMode { Top, Exact, Loose };

template <typename Domain>
typename Domain::Value
makeArg(Domain &dom, const BitVector &concrete, ArgMode mode, Rng &rng);

template <>
Interval
makeArg(IntervalDomain &, const BitVector &concrete, ArgMode mode, Rng &rng)
{
    const int w = concrete.width();
    switch (mode) {
      case ArgMode::Top:
        return Interval::top(w);
      case ArgMode::Exact:
        return Interval::constant(concrete);
      case ArgMode::Loose: {
        BitVector a = BitVector::random(w, rng);
        BitVector b = BitVector::random(w, rng);
        Interval iv(a.minU(b), a.maxU(b));
        if (!iv.contains(concrete))
            iv = Interval::join(iv, Interval::constant(concrete));
        return iv;
      }
    }
    return Interval::top(w);
}

template <>
KnownBits
makeArg(sym::KnownBitsDomain &, const BitVector &concrete, ArgMode mode,
        Rng &rng)
{
    const int w = concrete.width();
    switch (mode) {
      case ArgMode::Top:
        return KnownBits::top(w);
      case ArgMode::Exact:
        return KnownBits::constant(concrete);
      case ArgMode::Loose: {
        KnownBits kb;
        kb.known = BitVector::random(w, rng);
        kb.value = concrete.bvand(kb.known);
        return kb;
      }
    }
    return KnownBits::top(w);
}

template <>
AbsValue
makeArg(ProductDomain &, const BitVector &concrete, ArgMode mode, Rng &rng)
{
    IntervalDomain ivd;
    sym::KnownBitsDomain kbd;
    AbsValue v{makeArg(ivd, concrete, mode, rng),
               makeArg(kbd, concrete, mode, rng)};
    ProductDomain::reduce(v);
    return v;
}

/**
 * One domain's differential fuzz: `trials` random (expr, input)
 * pairs, each checked in all three argument modes.
 */
template <typename Domain>
void
fuzzDomain(Domain &dom, int trials, uint64_t seed)
{
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
        GenContext ctx;
        const int nargs = 1 + static_cast<int>(rng.next() % 3);
        for (int k = 0; k < nargs; ++k)
            ctx.arg_widths.push_back(1 + static_cast<int>(rng.next() % 24));
        ctx.rng = &rng;
        const int width = 1 + static_cast<int>(rng.next() % 24);
        const ExprPtr expr = genBV(ctx, width, 2 + static_cast<int>(rng.next() % 3));

        std::vector<BitVector> concrete;
        for (int w : ctx.arg_widths)
            concrete.push_back(BitVector::random(w, rng));
        EvalEnv cenv;
        cenv.bv_args = &concrete;
        const BitVector expected = evalBV(expr, cenv);

        for (ArgMode mode : {ArgMode::Top, ArgMode::Exact, ArgMode::Loose}) {
            std::vector<typename Domain::Value> abs_args;
            for (const BitVector &c : concrete)
                abs_args.push_back(makeArg(dom, c, mode, rng));
            sym::DomEnv<Domain> env;
            env.bv_args = &abs_args;
            const auto result = sym::evalBVDom(dom, expr, env);
            ASSERT_TRUE(dom.contains(result, expected))
                << "trial " << t << " mode " << static_cast<int>(mode)
                << ": concrete result escapes the abstract value";
        }
    }
}

} // namespace

// ---- differential soundness fuzz (>= 10k pairs per domain) ---------------

TEST(DataflowFuzz, IntervalContainsConcrete)
{
    IntervalDomain dom;
    fuzzDomain(dom, 3400, 0xA11CE);
}

TEST(DataflowFuzz, KnownBitsContainsConcrete)
{
    sym::KnownBitsDomain dom;
    fuzzDomain(dom, 3400, 0xB0B);
}

TEST(DataflowFuzz, ProductContainsConcrete)
{
    ProductDomain dom;
    fuzzDomain(dom, 3400, 0xCAFE);
}

// ---- Int-range fuzz ------------------------------------------------------

namespace {

ExprPtr
genInt(GenContext &ctx, int depth)
{
    if (depth <= 0 || ctx.pick(3) == 0) {
        switch (ctx.pick(4)) {
          case 0:
            return intConst(static_cast<int64_t>(ctx.rng->next() % 2001) - 1000);
          case 1:
            return param(ctx.pick(2), ctx.pick(2) ? "n" : "w");
          default:
            return loopVar(ctx.pick(2));
        }
    }
    const auto op = static_cast<IntBinOp>(ctx.pick(7));
    return intBin(op, genInt(ctx, depth - 1), genInt(ctx, depth - 1));
}

} // namespace

TEST(DataflowFuzz, IntRangeContainsConcrete)
{
    Rng rng(0x5EED);
    const std::vector<int64_t> params = {16, 8};
    for (int t = 0; t < 10000; ++t) {
        GenContext ctx;
        ctx.rng = &rng;
        const ExprPtr expr = genInt(ctx, 3);

        RangeEnv renv;
        renv.param_values = &params;
        renv.i_lo = 0;
        renv.i_hi = static_cast<int64_t>(rng.next() % 16);
        renv.j_lo = 0;
        renv.j_hi = static_cast<int64_t>(rng.next() % 8);
        const IntRange range = evalIntRange(expr, renv);

        CheckEnv cenv;
        cenv.param_values = &params;
        cenv.loop_i = renv.i_lo + static_cast<int64_t>(
                                      rng.next() % (renv.i_hi - renv.i_lo + 1));
        cenv.loop_j = renv.j_lo + static_cast<int64_t>(
                                      rng.next() % (renv.j_hi - renv.j_lo + 1));
        const CheckedInt concrete = checkedEvalInt(expr, cenv);

        if (concrete.status == CheckedInt::Status::Value && range.known) {
            EXPECT_LE(range.lo, concrete.value) << "trial " << t;
            EXPECT_GE(range.hi, concrete.value) << "trial " << t;
        }
        if (concrete.status == CheckedInt::Status::DivZero) {
            EXPECT_TRUE(range.may_divzero) << "trial " << t;
        }
        if (concrete.status == CheckedInt::Status::Overflow) {
            EXPECT_TRUE(range.may_overflow) << "trial " << t;
        }
        if (range.must_divzero) {
            EXPECT_NE(static_cast<int>(concrete.status),
                      static_cast<int>(CheckedInt::Status::Value))
                << "trial " << t;
        }
    }
}

// ---- interval unit tests -------------------------------------------------

TEST(Interval, SignedRegionQueries)
{
    const Interval nonneg(BitVector::fromUint(8, 3), BitVector::fromUint(8, 100));
    EXPECT_FALSE(nonneg.crossesSigned());
    EXPECT_TRUE(nonneg.allNonNegative());

    const Interval crossing(BitVector::fromUint(8, 100),
                            BitVector::fromUint(8, 200));
    EXPECT_TRUE(crossing.crossesSigned());

    const Interval negative(BitVector::fromUint(8, 200),
                            BitVector::fromUint(8, 250));
    EXPECT_FALSE(negative.crossesSigned());
    EXPECT_TRUE(negative.allNegative());
}

TEST(Interval, AddDetectsWrap)
{
    IntervalDomain dom;
    const Interval a(BitVector::fromUint(8, 10), BitVector::fromUint(8, 20));
    const Interval b(BitVector::fromUint(8, 5), BitVector::fromUint(8, 30));
    const Interval sum = dom.binOp(BVBinOp::Add, a, b);
    EXPECT_EQ(sum.lo.toUint64(), 15u);
    EXPECT_EQ(sum.hi.toUint64(), 50u);

    const Interval big(BitVector::fromUint(8, 200), BitVector::fromUint(8, 250));
    EXPECT_TRUE(dom.binOp(BVBinOp::Add, big, b).isTop());
}

TEST(Interval, UDivByPossiblyZero)
{
    IntervalDomain dom;
    const Interval a(BitVector::fromUint(8, 100), BitVector::fromUint(8, 100));
    const Interval zero = Interval::constant(BitVector(8));
    const Interval q = dom.binOp(BVBinOp::UDiv, a, zero);
    EXPECT_TRUE(q.isSingleton());
    EXPECT_EQ(q.lo.toUint64(), 255u); // bvudiv by zero yields all-ones

    const Interval maybe(BitVector::fromUint(8, 0), BitVector::fromUint(8, 4));
    const Interval q2 = dom.binOp(BVBinOp::UDiv, a, maybe);
    EXPECT_EQ(q2.hi.toUint64(), 255u);
    EXPECT_EQ(q2.lo.toUint64(), 25u);
}

TEST(Interval, SatNarrowBoundsAreMonotone)
{
    IntervalDomain dom;
    const Interval a(BitVector::fromUint(16, 10), BitVector::fromUint(16, 200));
    const Interval n = dom.cast(BVCastOp::SatNarrowU, a, 8);
    EXPECT_EQ(n.lo.toUint64(), 10u);
    EXPECT_EQ(n.hi.toUint64(), 200u);

    const Interval wide(BitVector::fromUint(16, 100),
                        BitVector::fromUint(16, 5000));
    const Interval clamped = dom.cast(BVCastOp::SatNarrowU, wide, 8);
    EXPECT_EQ(clamped.hi.toUint64(), 255u);
}

TEST(Interval, ShiftByRange)
{
    IntervalDomain dom;
    const Interval a(BitVector::fromUint(8, 64), BitVector::fromUint(8, 128));
    const Interval s(BitVector::fromUint(8, 1), BitVector::fromUint(8, 3));
    const Interval r = dom.binOp(BVBinOp::LShr, a, s);
    EXPECT_EQ(r.lo.toUint64(), 8u);  // 64 >> 3
    EXPECT_EQ(r.hi.toUint64(), 64u); // 128 >> 1
}

TEST(Product, ReductionTightensBothSides)
{
    // Interval [0, 12] zeroes the bits above bit 3.
    AbsValue v{Interval(BitVector(8), BitVector::fromUint(8, 12)),
               KnownBits::top(8)};
    ProductDomain::reduce(v);
    for (int bit = 4; bit < 8; ++bit) {
        EXPECT_TRUE(v.kb.known.getBit(bit));
        EXPECT_FALSE(v.kb.value.getBit(bit));
    }

    // Fully-known bits collapse the range to a point.
    AbsValue w{Interval::top(8),
               KnownBits::constant(BitVector::fromUint(8, 77))};
    ProductDomain::reduce(w);
    EXPECT_TRUE(w.iv.isSingleton());
    EXPECT_EQ(w.iv.lo.toUint64(), 77u);
}

// ---- whole-semantics containment (evalSemanticsDom + setSlice) -----------

TEST(Dataflow, SemanticsContainment)
{
    // A small 4-lane x 8-bit saturating add, evaluated concretely and
    // through the product domain with top arguments.
    CanonicalSemantics sem;
    sem.name = "test_addsat";
    sem.bv_args = {{"a", intConst(32)}, {"b", intConst(32)}};
    sem.mode = TemplateMode::Uniform;
    sem.outer_count = intConst(4);
    sem.inner_count = intConst(1);
    sem.elem_width = intConst(8);
    const ExprPtr lane = intBin(IntBinOp::Mul, loopVar(0), intConst(8));
    sem.templates = {bvBin(
        BVBinOp::AddSatU,
        extract(argBV(0), lane, intConst(8)),
        extract(argBV(1), intBin(IntBinOp::Mul, loopVar(0), intConst(8)),
                intConst(8)))};

    Rng rng(0xD00D);
    ProductDomain dom;
    for (int t = 0; t < 200; ++t) {
        std::vector<BitVector> args = {BitVector::random(32, rng),
                                       BitVector::random(32, rng)};
        const BitVector expected = sem.evaluate(args, {});

        std::vector<AbsValue> abs_args = {dom.top(32), dom.top(32)};
        const AbsValue out = sym::evalSemanticsDom(dom, sem, abs_args, {});
        ASSERT_TRUE(out.containsConcrete(expected)) << "trial " << t;

        std::vector<AbsValue> exact = {dom.constant(args[0]),
                                       dom.constant(args[1])};
        const AbsValue out2 = sym::evalSemanticsDom(dom, sem, exact, {});
        ASSERT_TRUE(out2.containsConcrete(expected)) << "trial " << t;
    }
}

// ---- total walker (absEval) ----------------------------------------------

TEST(Dataflow, AbsEvalMatchesEvalBVDomOnWellTyped)
{
    Rng rng(0xF00D);
    ProductDomain dom;
    for (int t = 0; t < 2000; ++t) {
        GenContext ctx;
        const int nargs = 1 + static_cast<int>(rng.next() % 3);
        for (int k = 0; k < nargs; ++k)
            ctx.arg_widths.push_back(1 + static_cast<int>(rng.next() % 16));
        ctx.rng = &rng;
        const int width = 1 + static_cast<int>(rng.next() % 16);
        const ExprPtr expr = genBV(ctx, width, 2);

        std::vector<BitVector> concrete;
        for (int w : ctx.arg_widths)
            concrete.push_back(BitVector::random(w, rng));
        EvalEnv cenv;
        cenv.bv_args = &concrete;
        const BitVector expected = evalBV(expr, cenv);

        std::vector<std::optional<AbsValue>> args;
        for (int w : ctx.arg_widths)
            args.emplace_back(dom.top(w));
        AbsEnv env;
        env.args = &args;
        const std::optional<AbsValue> out = absEval(expr, env, {});
        ASSERT_TRUE(out.has_value()) << "walker bailed on well-typed input";
        EXPECT_EQ(out->width(), width);
        ASSERT_TRUE(out->containsConcrete(expected)) << "trial " << t;
    }
}

TEST(Dataflow, AbsEvalIsTotalOnMalformedInput)
{
    // Width-mismatched operands, out-of-range arguments, holes: the
    // walker must return nullopt, never throw.
    AbsEnv env;
    std::vector<std::optional<AbsValue>> args;
    env.args = &args;

    const ExprPtr mismatch =
        bvBin(BVBinOp::Add, bvConst(intConst(8), intConst(1)),
              bvConst(intConst(16), intConst(2)));
    EXPECT_FALSE(absEval(mismatch, env, {}).has_value());

    EXPECT_FALSE(absEval(argBV(3), env, {}).has_value());
    EXPECT_FALSE(absEval(hole({}), env, {}).has_value());

    const ExprPtr bad_width = bvConst(namedVar("imm"), intConst(0));
    EXPECT_FALSE(absEval(bad_width, env, {}).has_value());
}
