/**
 * @file
 * End-to-end integration tests: the complete pipeline from vendor
 * pseudocode to validated target programs, exercised the way the
 * benchmark harnesses use it, plus cross-module properties that no
 * unit test covers (parse -> canonicalize -> extract -> class ->
 * dictionary -> synthesis -> lowering -> execution round trips).
 */
#include <gtest/gtest.h>

#include <set>

#include "autollvm/tablegen.h"
#include "backends/simulator.h"
#include "backends/targets.h"
#include "hir/printer.h"
#include "similarity/extraction.h"
#include "specs/spec_db.h"
#include "support/rng.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

TEST(Integration, IsaSizesAreInThePaperRegime)
{
    EXPECT_GT(isaSemantics("x86").insts.size(), 1000u);
    EXPECT_GT(isaSemantics("hvx").insts.size(), 200u);
    EXPECT_GT(isaSemantics("arm").insts.size(), 700u);
}

TEST(Integration, CombinedDictionaryCompressesLikeTable1)
{
    const size_t total = isaSemantics("x86").insts.size() +
                         isaSemantics("hvx").insts.size() +
                         isaSemantics("arm").insts.size();
    const size_t classes = static_cast<size_t>(dict().classCount());
    // The paper's combined ratio is 11.2%; ours must be in the same
    // order (well under 20%).
    EXPECT_LT(classes * 5, total);
    // And combining must share classes across ISAs: strictly fewer
    // classes than the per-ISA sums.
    const size_t separate =
        runSimilarityEngine(isaSemantics("x86").insts).size() +
        runSimilarityEngine(isaSemantics("hvx").insts).size() +
        runSimilarityEngine(isaSemantics("arm").insts).size();
    EXPECT_LT(classes, separate);
}

TEST(Integration, EveryMemberOfEveryClassVerifies)
{
    // The whole-corpus analogue of the similarity engine's pass 3:
    // instantiate each class representative with each member's
    // parameters and compare against the member's concrete semantics.
    Rng rng(0xE2E);
    int checked = 0;
    for (int c = 0; c < dict().classCount(); ++c) {
        const EquivalenceClass &cls = dict().cls(c);
        // Sample a few members per class to keep runtime bounded.
        for (size_t m = 0; m < cls.members.size();
             m += std::max<size_t>(1, cls.members.size() / 3)) {
            const ClassMember &member = cls.members[m];
            std::vector<BitVector> args;
            for (size_t a = 0; a < member.concrete.bv_args.size(); ++a)
                args.push_back(BitVector::random(
                    member.concrete.argWidth(static_cast<int>(a), {}),
                    rng));
            std::vector<BitVector> rep_args;
            for (size_t k = 0; k < member.arg_perm.size(); ++k)
                rep_args.push_back(args[member.arg_perm[k]]);
            std::vector<int64_t> imms(member.concrete.int_args.size(), 1);
            EXPECT_EQ(cls.rep.evaluate(rep_args, member.param_values, imms),
                      member.concrete.evaluate(args, {}, imms))
                << member.name;
            ++checked;
        }
    }
    EXPECT_GT(checked, 500);
}

TEST(Integration, TableGenCoversTheWholeDictionary)
{
    const std::string td = emitTableGen(dict());
    // Every member instruction appears in a lowering pattern.
    std::set<std::string> sampled = {"_mm512_dpwssd_epi32",
                                     "vdmpyh_acc_128B", "vqaddq_s16",
                                     "_mm256_unpacklo_epi16"};
    for (const auto &name : sampled)
        EXPECT_NE(td.find(name), std::string::npos) << name;
}

TEST(Integration, ExtractionRoundTripsOnRandomInstructions)
{
    // Property: extraction never changes behaviour — for a sample of
    // instructions across all ISAs, the symbolic semantics evaluated
    // at the recorded parameter values equals the concrete semantics.
    Rng rng(0x0DD);
    for (const auto &isa : builtinIsas()) {
        const auto &insts = isaSemantics(isa).insts;
        for (size_t i = 0; i < insts.size(); i += 37) {
            const CanonicalSemantics &concrete = insts[i];
            CanonicalSemantics sym = extractConstants(concrete);
            std::vector<BitVector> args;
            for (size_t a = 0; a < concrete.bv_args.size(); ++a)
                args.push_back(BitVector::random(
                    concrete.argWidth(static_cast<int>(a), {}), rng));
            std::vector<int64_t> imms(concrete.int_args.size(), 1);
            EXPECT_EQ(sym.evaluate(args, sym.defaultParamValues(), imms),
                      concrete.evaluate(args, {}, imms))
                << isa << ":" << concrete.name;
        }
    }
}

TEST(Integration, PrinterHandlesEveryCanonicalInstruction)
{
    // Smoke property: printing never crashes and always mentions the
    // instruction name and the loop nest.
    for (const auto &isa : builtinIsas()) {
        const auto &insts = isaSemantics(isa).insts;
        for (size_t i = 0; i < insts.size(); i += 53) {
            const std::string text = printSemantics(insts[i]);
            EXPECT_NE(text.find(insts[i].name), std::string::npos);
            EXPECT_NE(text.find("for %i"), std::string::npos);
        }
    }
}

TEST(Integration, HydrideCompilesAndValidatesEveryKernelEverywhere)
{
    for (const auto &target : evaluationTargets()) {
        SynthesisCache cache;
        SynthesisOptions options;
        options.timeout_seconds = 3.0;
        HydrideBackend hydride(dict(), target.isa, target.vector_bits,
                               options, &cache);
        for (const auto &name : kernelNames()) {
            Schedule schedule;
            schedule.vector_bits = target.vector_bits;
            Kernel kernel = buildKernel(name, schedule);
            CompiledKernel compiled;
            ASSERT_TRUE(hydride.compile(kernel, compiled))
                << target.isa << "/" << name;
            EXPECT_TRUE(validateCompiled(dict(), compiled, kernel))
                << target.isa << "/" << name;
            EXPECT_GT(simulateCycles(compiled, kernel, target.sim), 0.0);
        }
    }
}

TEST(Integration, SynthesisBeatsOrMatchesExpansionOnEveryWindow)
{
    // Hydride must never produce worse code than its own fallback.
    for (const auto &target : evaluationTargets()) {
        SynthesisOptions options;
        options.timeout_seconds = 3.0;
        HydrideBackend hydride(dict(), target.isa, target.vector_bits,
                               options);
        LlvmStyleBackend llvm(dict(), target.isa, target.vector_bits);
        for (const auto &name :
             {"matmul_b1", "conv_nn", "add", "average_pool"}) {
            Schedule schedule;
            schedule.vector_bits = target.vector_bits;
            Kernel kernel = buildKernel(name, schedule);
            CompiledKernel ch;
            CompiledKernel cl;
            ASSERT_TRUE(hydride.compile(kernel, ch));
            if (!llvm.compile(kernel, cl))
                continue; // Baseline may fail (paper-faithful).
            EXPECT_LE(ch.staticCost(), cl.staticCost())
                << target.isa << "/" << name;
        }
    }
}

TEST(Integration, RescheduledKernelsHitTheCache)
{
    SynthesisCache cache;
    SynthesisOptions options;
    HydrideCompiler compiler(dict(), "x86", 512, options, &cache);
    Schedule schedule;
    schedule.vector_bits = 512;
    compiler.compile(buildKernel("conv_nn", schedule));
    const int misses = cache.misses();
    Schedule rescheduled = schedule;
    rescheduled.unroll = 4;
    rescheduled.tile = 32;
    KernelCompilation warm =
        compiler.compile(buildKernel("conv_nn", rescheduled));
    EXPECT_EQ(cache.misses(), misses); // No new synthesis needed.
    EXPECT_EQ(warm.cache_hits, static_cast<int>(warm.windows.size()));
}

} // namespace
} // namespace hydride
