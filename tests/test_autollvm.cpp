/**
 * @file
 * Tests for the AutoLLVM dictionary, module execution/printing,
 * TableGen emission and the 1-1 target lowering (retargeting across
 * ISAs included).
 */
#include <gtest/gtest.h>

#include "autollvm/module.h"
#include "autollvm/tablegen.h"
#include "codegen/lowering.h"
#include "specs/spec_db.h"
#include "support/rng.h"

namespace hydride {
namespace {

/** A small multi-ISA dictionary shared by the tests. */
const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = [] {
        std::vector<CanonicalSemantics> insts;
        auto grab = [&](const char *isa, const char *name) {
            for (const auto &sem : isaSemantics(isa).insts)
                if (sem.name == name)
                    insts.push_back(sem);
        };
        grab("x86", "_mm256_add_epi16");
        grab("x86", "_mm_add_epi8");
        grab("arm", "vaddq_s16");
        grab("hvx", "vaddh_64B");
        grab("x86", "_mm256_mullo_epi16");
        grab("arm", "vmulq_s16");
        grab("x86", "_mm256_madd_epi16");
        grab("x86", "_mm256_slli_epi16");
        return AutoLLVMDict(runSimilarityEngine(insts));
    }();
    return d;
}

AutoOpVariant
variantFor(const std::string &inst_name)
{
    const int class_id = dict().classOfInstruction(inst_name);
    EXPECT_GE(class_id, 0) << inst_name;
    const auto &members = dict().cls(class_id).members;
    for (size_t m = 0; m < members.size(); ++m)
        if (members[m].name == inst_name)
            return {class_id, static_cast<int>(m)};
    ADD_FAILURE() << inst_name << " not a member of its class";
    return {class_id, 0};
}

TEST(AutoLLVMDict, ClassesGroupAcrossIsas)
{
    // add family (x86 x2 + arm + hvx) in one class; mul in another.
    const int add_class = dict().classOfInstruction("_mm256_add_epi16");
    EXPECT_EQ(dict().classOfInstruction("vaddq_s16"), add_class);
    EXPECT_EQ(dict().classOfInstruction("vaddh_64B"), add_class);
    EXPECT_EQ(dict().classOfInstruction("_mm_add_epi8"), add_class);
    const int mul_class = dict().classOfInstruction("_mm256_mullo_epi16");
    EXPECT_EQ(dict().classOfInstruction("vmulq_s16"), mul_class);
    EXPECT_NE(add_class, mul_class);
}

TEST(AutoLLVMDict, IsaVariantIndexIsComplete)
{
    size_t total = 0;
    for (const auto &isa : builtinIsas())
        total += dict().isaVariants(isa).size();
    size_t members = 0;
    for (int c = 0; c < dict().classCount(); ++c)
        members += dict().cls(c).members.size();
    EXPECT_EQ(total, members);
}

TEST(AutoLLVMDict, RunExecutesVariantSemantics)
{
    AutoOpVariant add = variantFor("_mm256_add_epi16");
    Rng rng(51);
    BitVector a = BitVector::random(256, rng);
    BitVector b = BitVector::random(256, rng);
    BitVector out = dict().run(add, {a, b});
    for (int e = 0; e < 16; ++e)
        EXPECT_EQ(out.extract(e * 16, 16),
                  a.extract(e * 16, 16).add(b.extract(e * 16, 16)));
}

AutoModule
maddModule()
{
    // %0 = mullo(a, b); %1 = add(%0, c) -- on 256-bit x86 variants.
    AutoModule module;
    module.input_widths = {256, 256, 256};
    AutoInst mul;
    mul.op = variantFor("_mm256_mullo_epi16");
    mul.args = {ValueRef::input(0), ValueRef::input(1)};
    module.insts.push_back(mul);
    AutoInst add;
    add.op = variantFor("_mm256_add_epi16");
    add.args = {ValueRef::inst(0), ValueRef::input(2)};
    module.insts.push_back(add);
    return module;
}

TEST(AutoModule, EvaluatesDataflow)
{
    AutoModule module = maddModule();
    Rng rng(52);
    BitVector a = BitVector::random(256, rng);
    BitVector b = BitVector::random(256, rng);
    BitVector c = BitVector::random(256, rng);
    BitVector out = module.evaluate(dict(), {a, b, c});
    for (int e = 0; e < 16; ++e) {
        BitVector expect = a.extract(e * 16, 16)
                               .mul(b.extract(e * 16, 16))
                               .add(c.extract(e * 16, 16));
        EXPECT_EQ(out.extract(e * 16, 16), expect);
    }
}

TEST(AutoModule, CostSumsLatencies)
{
    AutoModule module = maddModule();
    // mullo latency 5 + add latency 1.
    EXPECT_EQ(module.cost(dict()), 6);
}

TEST(AutoModule, PrintsLlvmLikeText)
{
    const std::string text = maddModule().print(dict());
    EXPECT_NE(text.find("@autollvm.g"), std::string::npos);
    EXPECT_NE(text.find("<16 x i16>"), std::string::npos);
    EXPECT_NE(text.find("_mm256_mullo_epi16"), std::string::npos);
    EXPECT_NE(text.find("%arg2"), std::string::npos);
}

TEST(TableGen, EmitsOneIntrinsicPerClass)
{
    const std::string td = emitTableGen(dict());
    for (int c = 0; c < dict().classCount(); ++c) {
        const std::string def =
            "def int_autollvm_g" + std::to_string(c);
        EXPECT_NE(td.find(def), std::string::npos) << def;
    }
    EXPECT_NE(td.find("Pattern"), std::string::npos);
    EXPECT_NE(td.find("IntrNoMem"), std::string::npos);
}

TEST(Lowering, SameIsaIsIdentity)
{
    LoweringResult lowered = lowerToTarget(maddModule(), dict(), "x86");
    ASSERT_TRUE(lowered.ok) << lowered.error;
    ASSERT_EQ(lowered.program.insts.size(), 2u);
    EXPECT_EQ(lowered.program.insts[0].inst_name, "_mm256_mullo_epi16");
    EXPECT_EQ(lowered.program.insts[1].inst_name, "_mm256_add_epi16");
    EXPECT_EQ(lowered.program.cost(), 6);
}

TEST(Lowering, RetargetsAcrossIsasWhenParametersMatch)
{
    // The same AutoLLVM module lowers to ARM: vaddq_s16/vmulq_s16 are
    // the 128-bit members, so a 256-bit module must fail, while a
    // 128-bit ARM-parameterized module must succeed.
    AutoModule module;
    module.input_widths = {128, 128};
    AutoInst add;
    add.op = variantFor("vaddq_s16");
    add.args = {ValueRef::input(0), ValueRef::input(1)};
    module.insts.push_back(add);

    // From the ARM variant, lowering to x86 retargets to the 128-bit
    // x86 member... which exists only if parameters line up. Our
    // dictionary has _mm_add_epi8 (8-bit elems), not _mm_add_epi16,
    // so x86 lowering must fail while ARM lowering succeeds.
    LoweringResult to_arm = lowerToTarget(module, dict(), "arm");
    ASSERT_TRUE(to_arm.ok) << to_arm.error;
    LoweringResult to_x86 = lowerToTarget(module, dict(), "x86");
    EXPECT_FALSE(to_x86.ok);

    // And the 256-bit x86 add retargets to nothing on HVX (512-bit).
    LoweringResult to_hvx = lowerToTarget(maddModule(), dict(), "hvx");
    EXPECT_FALSE(to_hvx.ok);
}

TEST(Lowering, LoweredProgramMatchesAutoModuleSemantics)
{
    AutoModule module = maddModule();
    LoweringResult lowered = lowerToTarget(module, dict(), "x86");
    ASSERT_TRUE(lowered.ok);
    Rng rng(53);
    std::vector<BitVector> inputs = {BitVector::random(256, rng),
                                     BitVector::random(256, rng),
                                     BitVector::random(256, rng)};
    EXPECT_EQ(lowered.program.evaluate(dict(), inputs),
              module.evaluate(dict(), inputs));
}

TEST(Lowering, ImmediateOperandsFlowThrough)
{
    AutoModule module;
    module.input_widths = {256};
    AutoInst shift;
    shift.op = variantFor("_mm256_slli_epi16");
    shift.args = {ValueRef::input(0)};
    shift.int_args = {3};
    module.insts.push_back(shift);

    LoweringResult lowered = lowerToTarget(module, dict(), "x86");
    ASSERT_TRUE(lowered.ok) << lowered.error;
    Rng rng(54);
    BitVector a = BitVector::random(256, rng);
    BitVector out = lowered.program.evaluate(dict(), {a});
    EXPECT_EQ(out.extract(0, 16), a.extract(0, 16).shl(3));
    EXPECT_NE(lowered.program.print().find(", 3"), std::string::npos);
}

} // namespace
} // namespace hydride
