/**
 * @file
 * Miscellaneous spec-layer tests: the shared lexer's token rules,
 * manual rendering, and the spec database's caching behaviour.
 */
#include <gtest/gtest.h>

#include "specs/parser_common.h"
#include "specs/spec_db.h"

namespace hydride {
namespace {

TEST(Lexer, MultiCharPunctuationLongestMatch)
{
    auto tokens = lexPseudocode("a >>> b >> c := d == e != f <= g");
    std::vector<std::string> texts;
    for (const auto &tok : tokens)
        if (tok.kind == TokKind::Punct)
            texts.push_back(tok.text);
    EXPECT_EQ(texts, (std::vector<std::string>{">>>", ">>", ":=", "==",
                                               "!=", "<="}));
}

TEST(Lexer, CommentsAndLinesAreTracked)
{
    auto tokens = lexPseudocode("x // comment with := tokens\ny");
    ASSERT_GE(tokens.size(), 3u); // x, y, End
    EXPECT_EQ(tokens[0].text, "x");
    EXPECT_EQ(tokens[1].text, "y");
    EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, SliceColonVersusAssign)
{
    auto tokens = lexPseudocode("dst[i+15:i] := a");
    int colons = 0;
    int assigns = 0;
    for (const auto &tok : tokens) {
        colons += tok.text == ":";
        assigns += tok.text == ":=";
    }
    EXPECT_EQ(colons, 1);
    EXPECT_EQ(assigns, 1);
}

TEST(Lexer, NumbersAreDecimal)
{
    auto tokens = lexPseudocode("1024 0 7");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].number, 1024);
    EXPECT_EQ(tokens[1].number, 0);
    EXPECT_EQ(tokens[2].number, 7);
}

TEST(SpecDb, ManualRenderingContainsEveryInstruction)
{
    const IsaSpec &manual = isaManual("hvx");
    const std::string text = manual.renderManual();
    for (size_t i = 0; i < manual.insts.size(); i += 29)
        EXPECT_NE(text.find(manual.insts[i].name), std::string::npos);
}

TEST(SpecDb, SemanticsAreCachedByReference)
{
    const IsaSemantics &first = isaSemantics("hvx");
    const IsaSemantics &second = isaSemantics("hvx");
    EXPECT_EQ(&first, &second);
}

TEST(SpecDb, CombinedSemanticsConcatenates)
{
    auto combined = combinedSemantics({"hvx", "arm"});
    EXPECT_EQ(combined.size(), isaSemantics("hvx").insts.size() +
                                   isaSemantics("arm").insts.size());
}

TEST(SpecDb, BuiltinIsasAreTheEvaluationTriple)
{
    EXPECT_EQ(builtinIsas(),
              (std::vector<std::string>{"x86", "hvx", "arm"}));
}

} // namespace
} // namespace hydride
