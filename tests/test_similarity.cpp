/**
 * @file
 * Tests for constant extraction and the similarity checking engine:
 * extraction invariants, cross-width and cross-ISA class merging,
 * argument-permutation merging, hole-based offset merging, dead
 * parameter elimination, and differential verification of every
 * class member over the full three-ISA corpus (in the dedicated
 * full-corpus test below).
 */
#include <gtest/gtest.h>

#include <set>

#include "hir/printer.h"
#include "similarity/engine.h"
#include "similarity/extraction.h"
#include "specs/spec_db.h"
#include "support/rng.h"

namespace hydride {
namespace {

const CanonicalSemantics &
inst(const std::string &isa, const std::string &name)
{
    for (const auto &sem : isaSemantics(isa).insts)
        if (sem.name == name)
            return sem;
    ADD_FAILURE() << name << " missing from " << isa;
    static CanonicalSemantics dummy;
    return dummy;
}

TEST(Extraction, ReplacesEveryConstant)
{
    CanonicalSemantics sym = extractConstants(inst("x86", "_mm256_add_epi16"));
    EXPECT_FALSE(sym.params.empty());
    // No IntConst may remain anywhere in the symbolic semantics
    // except inside the hole-normalized structure.
    std::vector<ExprPtr> nodes;
    for (const auto &tmpl : sym.templates)
        collectNodes(tmpl, nodes);
    collectNodes(sym.outer_count, nodes);
    collectNodes(sym.inner_count, nodes);
    collectNodes(sym.elem_width, nodes);
    for (const auto &node : nodes)
        EXPECT_NE(node->kind, ExprKind::IntConst)
            << printExpr(sym.templates[0]);
}

TEST(Extraction, SymbolicFormStillEvaluatesCorrectly)
{
    const CanonicalSemantics &concrete = inst("x86", "_mm512_adds_epi16");
    CanonicalSemantics sym = extractConstants(concrete);
    Rng rng(21);
    BitVector a = BitVector::random(512, rng);
    BitVector b = BitVector::random(512, rng);
    EXPECT_EQ(sym.evaluate({a, b}, sym.defaultParamValues()),
              concrete.evaluate({a, b}, {}));
}

TEST(Extraction, RoleAwareMemoKeepsRolesApart)
{
    // _mm_add_epi8: 16 lanes of 8-bit elements; the lane count (16)
    // must not share a parameter with any 16-valued width.
    CanonicalSemantics sym = extractConstants(inst("x86", "_mm_add_epi8"));
    std::set<ParamRole> roles;
    for (const auto &info : sym.params)
        roles.insert(info.role);
    EXPECT_TRUE(roles.count(ParamRole::Count));
    EXPECT_TRUE(roles.count(ParamRole::RegWidth));
}

TEST(Extraction, DistributeExposesOffsets)
{
    // (e + 4) * 16 -> e*16 + 64.
    ExprPtr expr = mulI(addI(namedVar("e"), intConst(4)), intConst(16));
    ExprPtr dist = distributeIndexExpr(expr);
    ASSERT_EQ(dist->kind, ExprKind::IntBin);
    EXPECT_EQ(static_cast<IntBinOp>(dist->value), IntBinOp::Add);
    EXPECT_EQ(dist->kids[1]->kind, ExprKind::IntConst);
    EXPECT_EQ(dist->kids[1]->value, 64);
}

TEST(Extraction, WidthVariantsProduceSameShape)
{
    CanonicalSemantics a =
        extractConstants(inst("x86", "_mm256_add_epi16"));
    CanonicalSemantics b = extractConstants(inst("x86", "_mm512_add_epi8"));
    EXPECT_TRUE(CanonicalSemantics::sameShape(a, b));
    CanonicalSemantics c = extractConstants(inst("x86", "_mm256_sub_epi16"));
    EXPECT_FALSE(CanonicalSemantics::sameShape(a, c));
}

TEST(Extraction, CrossIsaSimdShapesMatch)
{
    // The flagship similarity result: plain SIMD add looks identical
    // across all three vendor dialects after canonicalization +
    // extraction.
    CanonicalSemantics x86 =
        extractConstants(inst("x86", "_mm256_add_epi16"));
    CanonicalSemantics hvx = extractConstants(inst("hvx", "vaddh_128B"));
    CanonicalSemantics arm = extractConstants(inst("arm", "vaddq_s16"));
    EXPECT_TRUE(CanonicalSemantics::sameShape(x86, hvx));
    EXPECT_TRUE(CanonicalSemantics::sameShape(x86, arm));
}

TEST(Extraction, UnpackLoHiShareShapeViaHoles)
{
    // Figure 3's motivating case: the hi variant reads at a +64-bit
    // offset; hole insertion gives both the same symbolic shape.
    CanonicalSemantics lo =
        extractConstants(inst("x86", "_mm256_unpacklo_epi16"));
    CanonicalSemantics hi =
        extractConstants(inst("x86", "_mm256_unpackhi_epi16"));
    EXPECT_TRUE(CanonicalSemantics::sameShape(lo, hi));
    EXPECT_NE(lo.defaultParamValues(), hi.defaultParamValues());
}

// ---- Engine on a curated subset --------------------------------------------

std::vector<CanonicalSemantics>
pick(std::initializer_list<std::pair<const char *, const char *>> names)
{
    std::vector<CanonicalSemantics> out;
    for (const auto &[isa, name] : names)
        out.push_back(inst(isa, name));
    return out;
}

TEST(SimilarityEngine, MergesAddFamilyAcrossWidthsAndIsas)
{
    auto insts = pick({{"x86", "_mm_add_epi8"},
                       {"x86", "_mm256_add_epi16"},
                       {"x86", "_mm512_add_epi32"},
                       {"hvx", "vaddh_64B"},
                       {"hvx", "vaddw_128B"},
                       {"arm", "vaddq_s16"},
                       {"arm", "vadd_u8"}});
    SimilarityStats stats;
    auto classes = runSimilarityEngine(insts, {}, &stats);
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(classes[0].members.size(), 7u);
    EXPECT_TRUE(classes[0].coversIsa("x86"));
    EXPECT_TRUE(classes[0].coversIsa("hvx"));
    EXPECT_TRUE(classes[0].coversIsa("arm"));
    EXPECT_EQ(stats.verification_failures, 0);
}

TEST(SimilarityEngine, KeepsDifferentOperationsApart)
{
    auto insts = pick({{"x86", "_mm_add_epi8"},
                       {"x86", "_mm_sub_epi8"},
                       {"x86", "_mm_adds_epi8"},
                       {"x86", "_mm_madd_epi16"}});
    auto classes = runSimilarityEngine(insts);
    EXPECT_EQ(classes.size(), 4u);
}

TEST(SimilarityEngine, UnpackVariantsFormOneClass)
{
    auto insts = pick({{"x86", "_mm_unpacklo_epi8"},
                       {"x86", "_mm_unpackhi_epi8"},
                       {"x86", "_mm256_unpacklo_epi16"},
                       {"x86", "_mm512_unpackhi_epi32"}});
    SimilarityStats stats;
    auto classes = runSimilarityEngine(insts, {}, &stats);
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_EQ(classes[0].members.size(), 4u);
    EXPECT_EQ(stats.verification_failures, 0);
}

TEST(SimilarityEngine, PermutationPassMergesBlendAndMov)
{
    // mask_blend(k, a, b) selects b under the mask; mask_mov(src, k,
    // a) selects a -- same computation with reordered arguments
    // (the paper's motivating PermuteArgs example).
    auto insts = pick({{"x86", "_mm512_mask_blend_epi8"},
                       {"x86", "_mm512_mask_mov_epi8"}});
    SimilarityOptions options;
    options.permute_args = false;
    auto without = runSimilarityEngine(insts, options);
    EXPECT_EQ(without.size(), 2u);

    SimilarityStats stats;
    auto with = runSimilarityEngine(insts, {}, &stats);
    ASSERT_EQ(with.size(), 1u);
    EXPECT_EQ(with[0].members.size(), 2u);
    EXPECT_GT(stats.permutation_merges, 0);
    EXPECT_EQ(stats.verification_failures, 0);
}

TEST(SimilarityEngine, RevGroupsMergeAcrossGroupSize)
{
    auto insts = pick({{"arm", "vrev64q_s16"},
                       {"arm", "vrev32q_s8"},
                       {"arm", "vrev16q_s8"}});
    auto classes = runSimilarityEngine(insts);
    EXPECT_EQ(classes.size(), 1u);
}

TEST(SimilarityEngine, DeadParamsAreEliminated)
{
    // A class whose members only differ in register width keeps the
    // width/count parameters but drops e.g. constant element widths
    // shared by all members.
    auto insts = pick({{"x86", "_mm_add_epi16"},
                       {"x86", "_mm256_add_epi16"},
                       {"x86", "_mm512_add_epi16"}});
    SimilarityOptions keep_all;
    keep_all.eliminate_dead_params = false;
    auto fat = runSimilarityEngine(insts, keep_all);
    SimilarityStats stats;
    auto slim = runSimilarityEngine(insts, {}, &stats);
    ASSERT_EQ(fat.size(), 1u);
    ASSERT_EQ(slim.size(), 1u);
    EXPECT_LT(slim[0].rep.params.size(), fat[0].rep.params.size());
    EXPECT_GT(stats.params_eliminated, 0);
    // Members must still verify after elimination.
    for (const auto &member : slim[0].members) {
        Rng rng(31);
        std::vector<BitVector> args = {
            BitVector::random(member.concrete.argWidth(0, {}), rng),
            BitVector::random(member.concrete.argWidth(1, {}), rng)};
        EXPECT_EQ(evaluateWithParams(slim[0].rep, member.param_values, args),
                  member.concrete.evaluate(args, {}));
    }
}

TEST(SimilarityEngine, ParameterizedRepCoversEveryMemberWidth)
{
    auto insts = pick({{"x86", "_mm_mullo_epi16"},
                       {"x86", "_mm512_mullo_epi64"},
                       {"arm", "vmulq_s32"},
                       {"hvx", "vmpyih_64B"}});
    auto classes = runSimilarityEngine(insts);
    ASSERT_EQ(classes.size(), 1u);
    const auto &cls = classes[0];
    Rng rng(41);
    for (const auto &member : cls.members) {
        std::vector<BitVector> args;
        for (size_t a = 0; a < member.concrete.bv_args.size(); ++a)
            args.push_back(BitVector::random(
                member.concrete.argWidth(static_cast<int>(a), {}), rng));
        EXPECT_EQ(evaluateWithParams(cls.rep, member.param_values, args),
                  member.concrete.evaluate(args, {}))
            << member.name;
    }
}

} // namespace
} // namespace hydride
