/**
 * @file
 * Tests for the HVX and ARM manual generators and dialect parsers:
 * wholesale parse/canonicalize coverage plus architectural spot
 * checks of representative instructions.
 */
#include <gtest/gtest.h>

#include <map>

#include "hir/canonicalize.h"
#include "specs/arm_manual.h"
#include "specs/arm_parser.h"
#include "specs/hvx_manual.h"
#include "specs/hvx_parser.h"
#include "support/rng.h"
#include "support/strings.h"

namespace hydride {
namespace {

const IsaSpec &
hvxManual()
{
    static const IsaSpec spec = generateHvxManual();
    return spec;
}

const IsaSpec &
armManual()
{
    static const IsaSpec spec = generateArmManual();
    return spec;
}

std::map<std::string, SpecFunction> &
hvxParsed()
{
    static std::map<std::string, SpecFunction> cache;
    if (cache.empty())
        for (const auto &inst : hvxManual().insts)
            cache.emplace(inst.name, parseHvxInst(inst));
    return cache;
}

std::map<std::string, SpecFunction> &
armParsed()
{
    static std::map<std::string, SpecFunction> cache;
    if (cache.empty())
        for (const auto &inst : armManual().insts)
            cache.emplace(inst.name, parseArmInst(inst));
    return cache;
}

const SpecFunction &
hvx(const std::string &name)
{
    auto it = hvxParsed().find(name);
    EXPECT_NE(it, hvxParsed().end()) << name << " not generated";
    return it->second;
}

const SpecFunction &
arm(const std::string &name)
{
    auto it = armParsed().find(name);
    EXPECT_NE(it, armParsed().end()) << name << " not generated";
    return it->second;
}

TEST(HvxManual, SizeIsInTheHvxRegime)
{
    // The paper's HVX set has 307 instructions.
    EXPECT_GT(hvxManual().insts.size(), 200u);
    EXPECT_LT(hvxManual().insts.size(), 500u);
}

TEST(ArmManual, SizeIsInTheNeonRegime)
{
    // The paper's ARM set has 1,221 instructions.
    EXPECT_GT(armManual().insts.size(), 700u);
    EXPECT_LT(armManual().insts.size(), 1800u);
}

TEST(HvxManual, UniqueNamesAndFullCanonicalization)
{
    EXPECT_EQ(hvxParsed().size(), hvxManual().insts.size());
    int failures = 0;
    for (const auto &inst : hvxManual().insts) {
        CanonicalizeResult result = canonicalize(hvxParsed().at(inst.name));
        if (!result.ok && ++failures < 5)
            ADD_FAILURE() << inst.name << ": " << result.error << "\n"
                          << inst.pseudocode;
    }
    EXPECT_EQ(failures, 0);
}

TEST(ArmManual, UniqueNamesAndFullCanonicalization)
{
    EXPECT_EQ(armParsed().size(), armManual().insts.size());
    int failures = 0;
    for (const auto &inst : armManual().insts) {
        CanonicalizeResult result = canonicalize(armParsed().at(inst.name));
        if (!result.ok && ++failures < 5)
            ADD_FAILURE() << inst.name << ": " << result.error << "\n"
                          << inst.pseudocode;
    }
    EXPECT_EQ(failures, 0);
}

// ---- HVX spot checks -------------------------------------------------------

TEST(HvxManual, VaddhAddsHalfwords)
{
    const SpecFunction &vadd = hvx("vaddh_128B");
    Rng rng(11);
    BitVector a = BitVector::random(1024, rng);
    BitVector b = BitVector::random(1024, rng);
    BitVector out = vadd.evaluate({a, b});
    for (int lane : {0, 17, 63})
        EXPECT_EQ(out.extract(lane * 16, 16),
                  a.extract(lane * 16, 16).add(b.extract(lane * 16, 16)));
}

TEST(HvxManual, ShiftAmountIsMasked)
{
    // vaslh masks the shift amount to 4 bits: shifting by 17 == 1.
    const SpecFunction &vasl = hvx("vaslh_64B");
    BitVector a(512);
    BitVector b(512);
    a.setSlice(0, BitVector::fromUint(16, 0x0101));
    b.setSlice(0, BitVector::fromUint(16, 17));
    BitVector out = vasl.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0x0202u);
}

TEST(HvxManual, VdmpyMatchesMaddSemantics)
{
    const SpecFunction &vdmpy = hvx("vdmpyh_128B");
    BitVector a(1024);
    BitVector b(1024);
    a.setSlice(0, BitVector::fromInt(16, -4));
    a.setSlice(16, BitVector::fromInt(16, 9));
    b.setSlice(0, BitVector::fromInt(16, 3));
    b.setSlice(16, BitVector::fromInt(16, 2));
    BitVector out = vdmpy.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), -12 + 18);
}

TEST(HvxManual, VrmpyAccumulatesFourWayDot)
{
    const SpecFunction &vrmpy = hvx("vrmpyub_acc_64B");
    BitVector acc(512);
    BitVector a(512);
    BitVector b(512);
    acc.setSlice(0, BitVector::fromInt(32, 100));
    int expected = 100;
    for (int k = 0; k < 4; ++k) {
        a.setSlice(k * 8, BitVector::fromUint(8, 10 + k));
        b.setSlice(k * 8, BitVector::fromInt(8, k - 2));
        expected += (10 + k) * (k - 2);
    }
    BitVector out = vrmpy.evaluate({acc, a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), expected);
}

TEST(HvxManual, VcombineConcatenates)
{
    const SpecFunction &vcombine = hvx("vcombine_64B");
    Rng rng(12);
    BitVector u = BitVector::random(512, rng);
    BitVector v = BitVector::random(512, rng);
    BitVector out = vcombine.evaluate({u, v});
    EXPECT_EQ(out.extract(0, 512), v);
    EXPECT_EQ(out.extract(512, 512), u);
}

TEST(HvxManual, VshuffInterleavesIntoPair)
{
    const SpecFunction &vshuff = hvx("vshuffh_64B");
    BitVector u(512);
    BitVector v(512);
    for (int e = 0; e < 32; ++e) {
        u.setSlice(e * 16, BitVector::fromUint(16, 0x1000 + e));
        v.setSlice(e * 16, BitVector::fromUint(16, 0x2000 + e));
    }
    BitVector out = vshuff.evaluate({u, v});
    for (int e = 0; e < 32; ++e) {
        EXPECT_EQ(out.extract(e * 32, 16).toUint64(), 0x2000u + e);
        EXPECT_EQ(out.extract(e * 32 + 16, 16).toUint64(), 0x1000u + e);
    }
}

TEST(HvxManual, VdealSeparatesEvenAndOdd)
{
    const SpecFunction &vdeal = hvx("vdealh_64B");
    BitVector u(512);
    BitVector v(512);
    for (int e = 0; e < 32; ++e) {
        u.setSlice(e * 16, BitVector::fromUint(16, 0x1000 + e));
        v.setSlice(e * 16, BitVector::fromUint(16, 0x2000 + e));
    }
    BitVector out = vdeal.evaluate({u, v});
    // Evens of v, evens of u, odds of v, odds of u.
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0x2000u);
    EXPECT_EQ(out.extract(1 * 16, 16).toUint64(), 0x2002u);
    EXPECT_EQ(out.extract(16 * 16, 16).toUint64(), 0x1000u);
    EXPECT_EQ(out.extract(32 * 16, 16).toUint64(), 0x2001u);
    EXPECT_EQ(out.extract(48 * 16, 16).toUint64(), 0x1001u);
}

TEST(HvxManual, VrorRotatesBytes)
{
    const SpecFunction &vror = hvx("vror_64B");
    BitVector u(512);
    for (int e = 0; e < 64; ++e)
        u.setSlice(e * 8, BitVector::fromUint(8, e));
    BitVector out = vror.evaluate({u}, {5});
    EXPECT_EQ(out.extract(0, 8).toUint64(), 5u);
    EXPECT_EQ(out.extract(63 * 8, 8).toUint64(), (63 + 5) % 64);
}

TEST(HvxManual, VasrNarrowingSaturates)
{
    const SpecFunction &vasr = hvx("vasrhub_sat_64B");
    BitVector vv(1024);
    vv.setSlice(0, BitVector::fromInt(16, 5000));
    vv.setSlice(16, BitVector::fromInt(16, -77));
    BitVector out = vasr.evaluate({vv}, {4});
    EXPECT_EQ(out.extract(0, 8).toUint64(), 255u); // 5000>>4 = 312 -> 255
    EXPECT_EQ(out.extract(8, 8).toUint64(), 0u);   // negative -> 0
}

// ---- ARM spot checks -------------------------------------------------------

TEST(ArmManual, SignedAndUnsignedAddShareSemantics)
{
    const SpecFunction &s = arm("vaddq_s16");
    const SpecFunction &u = arm("vaddq_u16");
    Rng rng(13);
    BitVector a = BitVector::random(128, rng);
    BitVector b = BitVector::random(128, rng);
    EXPECT_EQ(s.evaluate({a, b}), u.evaluate({a, b}));
}

TEST(ArmManual, QaddSaturates)
{
    const SpecFunction &qadd = arm("vqadd_s8");
    BitVector a(64);
    BitVector b(64);
    a.setSlice(0, BitVector::fromInt(8, 100));
    b.setSlice(0, BitVector::fromInt(8, 100));
    BitVector out = qadd.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 8).toInt64(), 127);
}

TEST(ArmManual, HaddHalvesWithoutRounding)
{
    const SpecFunction &hadd = arm("vhaddq_s16");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromInt(16, 5));
    b.setSlice(0, BitVector::fromInt(16, 4));
    BitVector out = hadd.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 16).toInt64(), 4); // (5+4)>>1
}

TEST(ArmManual, Zip1InterleavesLowerHalves)
{
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 4; ++e) {
        a.setSlice(e * 32, BitVector::fromUint(32, 0xA0 + e));
        b.setSlice(e * 32, BitVector::fromUint(32, 0xB0 + e));
    }
    const SpecFunction &zip1 = arm("vzip1q_s32");
    BitVector out = zip1.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toUint64(), 0xA0u);
    EXPECT_EQ(out.extract(32, 32).toUint64(), 0xB0u);
    EXPECT_EQ(out.extract(64, 32).toUint64(), 0xA1u);
    EXPECT_EQ(out.extract(96, 32).toUint64(), 0xB1u);

    const SpecFunction &zip2 = arm("vzip2q_s32");
    out = zip2.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toUint64(), 0xA2u);
    EXPECT_EQ(out.extract(32, 32).toUint64(), 0xB2u);
}

TEST(ArmManual, Uzp1TakesEvenElements)
{
    const SpecFunction &uzp1 = arm("vuzp1q_s16");
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 8; ++e) {
        a.setSlice(e * 16, BitVector::fromUint(16, 0x100 + e));
        b.setSlice(e * 16, BitVector::fromUint(16, 0x200 + e));
    }
    BitVector out = uzp1.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0x100u);
    EXPECT_EQ(out.extract(16, 16).toUint64(), 0x102u);
    EXPECT_EQ(out.extract(64, 16).toUint64(), 0x200u);
    EXPECT_EQ(out.extract(80, 16).toUint64(), 0x202u);
}

TEST(ArmManual, ExtConcatenatesAndExtracts)
{
    const SpecFunction &ext = arm("vextq_s8");
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 16; ++e) {
        a.setSlice(e * 8, BitVector::fromUint(8, 0xA0 + e));
        b.setSlice(e * 8, BitVector::fromUint(8, 0xB0 + e));
    }
    BitVector out = ext.evaluate({a, b}, {5});
    EXPECT_EQ(out.extract(0, 8).toUint64(), 0xA5u);
    EXPECT_EQ(out.extract(10 * 8, 8).toUint64(), 0xAFu);
    EXPECT_EQ(out.extract(11 * 8, 8).toUint64(), 0xB0u);
}

TEST(ArmManual, Rev64ReversesWithinGroups)
{
    const SpecFunction &rev = arm("vrev64q_s16");
    BitVector a(128);
    for (int e = 0; e < 8; ++e)
        a.setSlice(e * 16, BitVector::fromUint(16, e));
    BitVector out = rev.evaluate({a});
    // Group of 4 halfwords reversed: 3 2 1 0 | 7 6 5 4.
    EXPECT_EQ(out.extract(0, 16).toUint64(), 3u);
    EXPECT_EQ(out.extract(16, 16).toUint64(), 2u);
    EXPECT_EQ(out.extract(64, 16).toUint64(), 7u);
}

TEST(ArmManual, PaddlWidensPairwise)
{
    const SpecFunction &paddl = arm("vpaddlq_s8");
    BitVector a(128);
    a.setSlice(0, BitVector::fromInt(8, -3));
    a.setSlice(8, BitVector::fromInt(8, 120));
    BitVector out = paddl.evaluate({a});
    EXPECT_EQ(out.extract(0, 16).toInt64(), 117);
}

TEST(ArmManual, MullWidensProducts)
{
    const SpecFunction &mull = arm("vmull_s16");
    BitVector a(64);
    BitVector b(64);
    a.setSlice(0, BitVector::fromInt(16, -300));
    b.setSlice(0, BitVector::fromInt(16, 300));
    BitVector out = mull.evaluate({a, b});
    EXPECT_EQ(out.width(), 128);
    EXPECT_EQ(out.extract(0, 32).toInt64(), -90000);
}

TEST(ArmManual, SdotAccumulatesByteDot)
{
    const SpecFunction &sdot = arm("vsdotq_s32");
    BitVector acc(128);
    BitVector a(128);
    BitVector b(128);
    acc.setSlice(0, BitVector::fromInt(32, 7));
    int expected = 7;
    for (int k = 0; k < 4; ++k) {
        a.setSlice(k * 8, BitVector::fromInt(8, k + 1));
        b.setSlice(k * 8, BitVector::fromInt(8, -k));
        expected += (k + 1) * -k;
    }
    BitVector out = sdot.evaluate({acc, a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), expected);
}

TEST(ArmManual, QmovnSaturatesWhileNarrowing)
{
    const SpecFunction &qmovn = arm("vqmovn_s16");
    BitVector a(128);
    a.setSlice(0, BitVector::fromInt(16, 300));
    a.setSlice(16, BitVector::fromInt(16, -7));
    BitVector out = qmovn.evaluate({a});
    EXPECT_EQ(out.width(), 64);
    EXPECT_EQ(out.extract(0, 8).toInt64(), 127);
    EXPECT_EQ(out.extract(8, 8).toInt64(), -7);
}

TEST(ArmManual, AddhnTakesHighHalfOfSum)
{
    const SpecFunction &addhn = arm("vaddhn_s32");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromUint(32, 0x12340000u));
    b.setSlice(0, BitVector::fromUint(32, 0x00010000u));
    BitVector out = addhn.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0x1235u);
}

TEST(ArmManual, CgtUnsignedUsesUnsignedOrder)
{
    const SpecFunction &cgt = arm("vcgtq_u8");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromUint(8, 0xFF)); // 255 unsigned
    b.setSlice(0, BitVector::fromUint(8, 1));
    BitVector out = cgt.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 8).toUint64(), 0xFFu);
}

} // namespace
} // namespace hydride
