/**
 * @file
 * Tests for canonicalization: structural loop mapping, let inlining,
 * loop rerolling of unrolled specs, artificial inner-loop insertion,
 * and the affine anti-unifier.
 */
#include <gtest/gtest.h>

#include "hir/canonicalize.h"
#include "hir/printer.h"
#include "support/rng.h"

namespace hydride {
namespace {

/** Differentially check canonical semantics vs. statement form. */
void
expectAgrees(const SpecFunction &spec, const CanonicalSemantics &sem,
             int trials = 8)
{
    Rng rng(0xABCDEF);
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<BitVector> args;
        for (const auto &arg : spec.bv_args) {
            EvalEnv env;
            args.push_back(BitVector::random(
                static_cast<int>(evalInt(arg.width, env)), rng));
        }
        EXPECT_EQ(spec.evaluate(args), sem.evaluate(args, {}))
            << "mismatch for " << spec.name;
    }
}

SpecFunction
simdAddSpec(int total, int ew)
{
    SpecFunction spec;
    spec.name = "add_spec";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(total)}, {"b", intConst(total)}};
    spec.out_width = total;
    ExprPtr iv = namedVar("i");
    StmtPtr let = stmtLetInt("i", mulI(namedVar("j"), intConst(ew)));
    StmtPtr assign = stmtSliceAssign(
        iv, intConst(ew),
        bvBin(BVBinOp::Add, extract(argBV(0), iv, intConst(ew)),
              extract(argBV(1), iv, intConst(ew))));
    spec.body = {
        stmtFor("j", intConst(0), intConst(total / ew - 1), {let, assign})};
    return spec;
}

TEST(Canonicalize, SimdAddGetsArtificialInnerLoop)
{
    SpecFunction spec = simdAddSpec(128, 16);
    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, "structural");
    EXPECT_EQ(result.sem.mode, TemplateMode::Uniform);
    ASSERT_EQ(result.sem.templates.size(), 1u);
    EXPECT_EQ(result.sem.inner_count->value, 1);
    EXPECT_EQ(result.sem.outer_count->value, 8);
    EXPECT_EQ(result.sem.elem_width->value, 16);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, TwoLevelLoopNestMapsDirectly)
{
    // for l in 0..1 { for k in 0..3 { dst[(l*4+k)*8 +: 8] :=
    //   a[(l*4+k)*8 +: 8] avg b[...] } }
    SpecFunction spec;
    spec.name = "avg2d";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}, {"b", intConst(64)}};
    spec.out_width = 64;
    ExprPtr low = mulI(addI(mulI(namedVar("l"), intConst(4)), namedVar("k")),
                       intConst(8));
    StmtPtr assign = stmtSliceAssign(
        low, intConst(8),
        bvBin(BVBinOp::AvgU, extract(argBV(0), low, intConst(8)),
              extract(argBV(1), low, intConst(8))));
    StmtPtr inner = stmtFor("k", intConst(0), intConst(3), {assign});
    spec.body = {stmtFor("l", intConst(0), intConst(1), {inner})};

    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, "structural");
    EXPECT_EQ(result.sem.mode, TemplateMode::Uniform);
    // The perfect nest is flattened into one loop over all 8 elements.
    EXPECT_EQ(result.sem.outer_count->value, 8);
    EXPECT_EQ(result.sem.inner_count->value, 1);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, PerLaneInterleaveFlattensAndStaysByInner)
{
    // AVX2-style unpacklo_epi16: interleave within each 128-bit lane.
    // for l in 0..1 { for j in 0..3 {
    //   dst[(l*8+2j)*16 +: 16]   := a[(l*8+j)*16 +: 16]
    //   dst[(l*8+2j+1)*16 +: 16] := b[(l*8+j)*16 +: 16] } }
    SpecFunction spec;
    spec.name = "unpacklo_lanes";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(256)}, {"b", intConst(256)}};
    spec.out_width = 256;
    ExprPtr src = mulI(addI(mulI(namedVar("l"), intConst(8)), namedVar("j")),
                       intConst(16));
    ExprPtr dst_even = mulI(
        addI(mulI(namedVar("l"), intConst(8)), mulI(namedVar("j"), intConst(2))),
        intConst(16));
    StmtPtr even = stmtSliceAssign(dst_even, intConst(16),
                                   extract(argBV(0), src, intConst(16)));
    StmtPtr odd = stmtSliceAssign(addI(dst_even, intConst(16)), intConst(16),
                                  extract(argBV(1), src, intConst(16)));
    StmtPtr inner = stmtFor("j", intConst(0), intConst(3), {even, odd});
    spec.body = {stmtFor("l", intConst(0), intConst(1), {inner})};

    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, "structural");
    EXPECT_EQ(result.sem.mode, TemplateMode::ByInner);
    EXPECT_EQ(result.sem.templates.size(), 2u);
    EXPECT_EQ(result.sem.outer_count->value, 8);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, ImmediateArgumentsSurviveCanonicalization)
{
    // Shift-left by immediate: for j { dst[j*16 +: 16] := a[...] << imm }
    SpecFunction spec;
    spec.name = "slli";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}};
    spec.int_args = {"imm"};
    spec.out_width = 64;
    ExprPtr low = mulI(namedVar("j"), intConst(16));
    StmtPtr assign = stmtSliceAssign(
        low, intConst(16),
        bvBin(BVBinOp::Shl, extract(argBV(0), low, intConst(16)),
              bvConst(intConst(16), namedVar("imm"))));
    spec.body = {stmtFor("j", intConst(0), intConst(3), {assign})};

    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.sem.int_args.size(), 1u);

    Rng rng(17);
    BitVector a = BitVector::random(64, rng);
    for (int64_t imm : {0, 1, 5, 15}) {
        BitVector expected = spec.evaluate({a}, {imm});
        EXPECT_EQ(result.sem.evaluate({a}, {}, {imm}), expected);
        for (int e = 0; e < 4; ++e) {
            EXPECT_EQ(expected.extract(e * 16, 16),
                      a.extract(e * 16, 16).shl(static_cast<int>(imm)));
        }
    }
}

TEST(Canonicalize, InterleaveLoopBecomesByInner)
{
    // for j in 0..7 { dst[2j*8 +: 8] := a[j*8 +: 8];
    //                 dst[(2j+1)*8 +: 8] := b[j*8 +: 8] }
    SpecFunction spec;
    spec.name = "zip";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}, {"b", intConst(64)}};
    spec.out_width = 128;
    ExprPtr src_low = mulI(namedVar("j"), intConst(8));
    StmtPtr even = stmtSliceAssign(mulI(namedVar("j"), intConst(16)),
                                   intConst(8),
                                   extract(argBV(0), src_low, intConst(8)));
    StmtPtr odd = stmtSliceAssign(
        addI(mulI(namedVar("j"), intConst(16)), intConst(8)), intConst(8),
        extract(argBV(1), src_low, intConst(8)));
    spec.body = {stmtFor("j", intConst(0), intConst(7), {even, odd})};

    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.sem.mode, TemplateMode::ByInner);
    EXPECT_EQ(result.sem.templates.size(), 2u);
    EXPECT_EQ(result.sem.inner_count->value, 2);
    EXPECT_EQ(result.sem.outer_count->value, 8);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, SequentialLoopsBecomeByOuter)
{
    // Combine: first loop writes a into the low half, second writes b
    // into the high half.
    SpecFunction spec;
    spec.name = "combine";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}, {"b", intConst(64)}};
    spec.out_width = 128;
    ExprPtr low0 = mulI(namedVar("j"), intConst(8));
    StmtPtr first = stmtFor(
        "j", intConst(0), intConst(7),
        {stmtSliceAssign(low0, intConst(8),
                         extract(argBV(0), low0, intConst(8)))});
    ExprPtr low1 = mulI(namedVar("j"), intConst(8));
    StmtPtr second = stmtFor(
        "j", intConst(0), intConst(7),
        {stmtSliceAssign(addI(low1, intConst(64)), intConst(8),
                         extract(argBV(1), low1, intConst(8)))});
    spec.body = {first, second};

    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.sem.mode, TemplateMode::ByOuter);
    EXPECT_EQ(result.sem.templates.size(), 2u);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, FullyUnrolledSpecIsRerolled)
{
    // Four hand-unrolled slice assignments implementing a 4x16 vector
    // negate; the canonicalizer must reroll them into one loop.
    SpecFunction spec;
    spec.name = "unrolled_neg";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}};
    spec.out_width = 64;
    for (int e = 0; e < 4; ++e) {
        spec.body.push_back(stmtSliceAssign(
            intConst(e * 16), intConst(16),
            bvUn(BVUnOp::Neg,
                 extract(argBV(0), intConst(e * 16), intConst(16)))));
    }
    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, "reroll");
    EXPECT_EQ(result.sem.mode, TemplateMode::Uniform);
    EXPECT_EQ(result.sem.outer_count->value, 4);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, UnrolledInterleaveRerollsToByInner)
{
    // Hand-unrolled 4-element interleave: elements alternate sources,
    // so Uniform anti-unification fails and ByInner(2) must be found.
    SpecFunction spec;
    spec.name = "unrolled_zip";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(32)}, {"b", intConst(32)}};
    spec.out_width = 64;
    for (int e = 0; e < 4; ++e) {
        const int src = e / 2;
        spec.body.push_back(stmtSliceAssign(
            intConst(e * 16), intConst(16),
            extract(argBV(e % 2), intConst(src * 16), intConst(16))));
    }
    CanonicalizeResult result = canonicalize(spec);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.strategy, "reroll");
    EXPECT_EQ(result.sem.mode, TemplateMode::ByInner);
    expectAgrees(spec, result.sem);
}

TEST(Canonicalize, RejectsNonContiguousOutput)
{
    SpecFunction spec;
    spec.name = "gap";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(32)}};
    spec.out_width = 32;
    // Writes only the upper half: slots 16..31, leaving a gap.
    spec.body = {stmtSliceAssign(intConst(16), intConst(16),
                                 extract(argBV(0), intConst(0), intConst(16)))};
    CanonicalizeResult result = canonicalize(spec);
    EXPECT_FALSE(result.ok);
}

TEST(AntiUnify, IdenticalInstancesStayIdentical)
{
    std::vector<ExprPtr> instances = {intConst(5), intConst(5), intConst(5)};
    ExprPtr unified = antiUnifyAffine(instances, 0);
    ASSERT_TRUE(unified);
    EXPECT_EQ(unified->kind, ExprKind::IntConst);
    EXPECT_EQ(unified->value, 5);
}

TEST(AntiUnify, AffineConstantsBecomeLoopExpressions)
{
    std::vector<ExprPtr> instances = {intConst(3), intConst(7), intConst(11)};
    ExprPtr unified = antiUnifyAffine(instances, 1);
    ASSERT_TRUE(unified);
    for (int64_t t = 0; t < 3; ++t) {
        EvalEnv env;
        env.loop_j = t;
        EXPECT_EQ(evalInt(unified, env), 3 + 4 * t);
    }
}

TEST(AntiUnify, NonAffineFails)
{
    std::vector<ExprPtr> instances = {intConst(0), intConst(1), intConst(4)};
    EXPECT_EQ(antiUnifyAffine(instances, 0), nullptr);
}

TEST(AntiUnify, StructuralMismatchFails)
{
    std::vector<ExprPtr> instances = {argBV(0), argBV(1)};
    EXPECT_EQ(antiUnifyAffine(instances, 0), nullptr);
    std::vector<ExprPtr> ops = {bvBin(BVBinOp::Add, argBV(0), argBV(1)),
                                bvBin(BVBinOp::Sub, argBV(0), argBV(1))};
    EXPECT_EQ(antiUnifyAffine(ops, 0), nullptr);
}

TEST(AntiUnify, RecursesThroughMatchingStructure)
{
    auto instance = [](int64_t low) {
        return bvBin(BVBinOp::Add,
                     extract(argBV(0), intConst(low), intConst(8)),
                     extract(argBV(1), intConst(low), intConst(8)));
    };
    std::vector<ExprPtr> instances = {instance(0), instance(8), instance(16)};
    ExprPtr unified = antiUnifyAffine(instances, 0);
    ASSERT_TRUE(unified);
    std::vector<BitVector> args = {BitVector::fromUint(32, 0x04030201),
                                   BitVector::fromUint(32, 0x40302010)};
    for (int64_t i = 0; i < 3; ++i) {
        EvalEnv env;
        env.bv_args = &args;
        env.loop_i = i;
        EXPECT_EQ(evalBV(unified, env).toUint64(),
                  ((0x01 + i) + (0x10 * (1 + i))) & 0xFFu);
    }
}

} // namespace
} // namespace hydride
