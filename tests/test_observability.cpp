/**
 * @file
 * Tests for the observability layer: span nesting/ordering, Chrome
 * trace JSON well-formedness (parsed back by a minimal JSON reader),
 * histogram bucket edges, counter overflow, disabled-mode no-ops,
 * environment-variable gating and leveled logging.
 */
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "observability/log.h"
#include "observability/metrics.h"
#include "observability/trace.h"

using namespace hydride;

namespace {

// ---- Minimal JSON reader (validation only) ---------------------------------
//
// Enough of RFC 8259 to parse the exporters' output back: objects,
// arrays, strings with escapes, numbers, true/false/null. parse()
// returns false on any syntax error instead of building a document.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    /** Count occurrences of `"key":` seen while parsing strings. */
    int keyCount(const std::string &key) const
    {
        int count = 0;
        std::string needle = "\"" + key + "\"";
        for (size_t at = text_.find(needle); at != std::string::npos;
             at = text_.find(needle, at + 1))
            ++count;
        return count;
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int d = 0; d < 4; ++d) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (!strchr("\"\\/bfnrt", esc)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // Unescaped control character.
            }
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start &&
               std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
    }

    bool
    literal(const char *word)
    {
        const size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

/** Enable trace+metrics with a clean slate; restore on teardown. */
class ObservabilityTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        trace::reset();
        trace::setEnabled(true);
        metrics::setEnabled(true);
    }

    void
    TearDown() override
    {
        trace::setEnabled(false);
        metrics::setEnabled(false);
        trace::reset();
        unsetenv("HYDRIDE_TRACE");
        unsetenv("HYDRIDE_METRICS");
        unsetenv("HYDRIDE_LOG_LEVEL");
        unsetenv("HYDRIDE_SYNTH_DEBUG");
        logging::setLevel(logging::Level::Warn);
    }
};

const trace::SpanRecord *
findSpan(const std::vector<trace::SpanRecord> &spans,
         const std::string &name)
{
    for (const auto &span : spans)
        if (span.name == name)
            return &span;
    return nullptr;
}

// ---- Spans -----------------------------------------------------------------

TEST_F(ObservabilityTest, SpanNestingAndOrdering)
{
    {
        trace::TraceSpan outer("test.span.outer");
        outer.setAttr("kernel", "blur3x3");
        {
            trace::TraceSpan inner("test.span.inner");
            trace::TraceSpan innermost("test.span.innermost");
        }
        trace::TraceSpan sibling("test.span.sibling");
    }
    const auto spans = trace::snapshotSpans();
    ASSERT_EQ(spans.size(), 4u);

    const auto *outer = findSpan(spans, "test.span.outer");
    const auto *inner = findSpan(spans, "test.span.inner");
    const auto *innermost = findSpan(spans, "test.span.innermost");
    const auto *sibling = findSpan(spans, "test.span.sibling");
    ASSERT_TRUE(outer && inner && innermost && sibling);

    // Depths reflect the nesting hierarchy.
    EXPECT_EQ(outer->depth, 0);
    EXPECT_EQ(inner->depth, 1);
    EXPECT_EQ(innermost->depth, 2);
    EXPECT_EQ(sibling->depth, 1);

    // Children start no earlier than their parent and fit inside it.
    EXPECT_GE(inner->start_ns, outer->start_ns);
    EXPECT_LE(inner->start_ns + inner->duration_ns,
              outer->start_ns + outer->duration_ns);
    EXPECT_GE(innermost->start_ns, inner->start_ns);

    // Completion order: innermost closes before inner, inner before
    // outer, and the sibling closes after inner opened.
    EXPECT_EQ(spans[0].name, "test.span.innermost");
    EXPECT_EQ(spans[1].name, "test.span.inner");
    EXPECT_EQ(spans[2].name, "test.span.sibling");
    EXPECT_EQ(spans[3].name, "test.span.outer");

    // Attributes survive.
    ASSERT_EQ(outer->attrs.size(), 1u);
    EXPECT_EQ(outer->attrs[0].first, "kernel");
    EXPECT_EQ(outer->attrs[0].second, "blur3x3");

    // All on the same thread.
    EXPECT_EQ(inner->thread_id, outer->thread_id);
}

TEST_F(ObservabilityTest, ChromeJsonIsWellFormedAndEscaped)
{
    {
        trace::TraceSpan span("test.json.span");
        span.setAttr("quote", "say \"hi\"\n\ttabbed\\done");
        span.setAttr("count", static_cast<int64_t>(42));
        trace::TraceSpan nested("test.json.nested");
    }
    const std::string json = trace::exportChromeJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json;
    // Both spans present as complete events with the required fields.
    EXPECT_EQ(checker.keyCount("name"), 2);
    EXPECT_EQ(checker.keyCount("ph"), 2);
    EXPECT_EQ(checker.keyCount("ts"), 2);
    EXPECT_EQ(checker.keyCount("dur"), 2);
    EXPECT_EQ(checker.keyCount("traceEvents"), 1);
    EXPECT_NE(json.find("test.json.span"), std::string::npos);
    EXPECT_NE(json.find("test.json.nested"), std::string::npos);
}

TEST_F(ObservabilityTest, TreeSummaryIndentsChildren)
{
    {
        trace::TraceSpan outer("test.tree.outer");
        trace::TraceSpan inner("test.tree.inner");
    }
    const std::string tree = trace::exportTreeSummary();
    const size_t outer_at = tree.find("test.tree.outer");
    const size_t inner_at = tree.find("  test.tree.inner");
    ASSERT_NE(outer_at, std::string::npos) << tree;
    ASSERT_NE(inner_at, std::string::npos) << tree;
    // Parent precedes the (indented) child.
    EXPECT_LT(outer_at, inner_at);
}

TEST_F(ObservabilityTest, DisabledModeRecordsNothing)
{
    trace::setEnabled(false);
    {
        trace::TraceSpan span("test.disabled.span");
        span.setAttr("ignored", "yes");
        EXPECT_FALSE(span.active());
    }
    EXPECT_TRUE(trace::snapshotSpans().empty());

    metrics::setEnabled(false);
    metrics::Counter &counter = metrics::counter("test.disabled.counter");
    counter.reset();
    counter.add(5);
    EXPECT_EQ(counter.value(), 0u);
    metrics::Gauge &gauge = metrics::gauge("test.disabled.gauge");
    gauge.reset();
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 0);
    metrics::Histogram &hist =
        metrics::histogram("test.disabled.hist", {1.0});
    hist.reset();
    hist.observe(0.5);
    EXPECT_EQ(hist.count(), 0u);
}

TEST_F(ObservabilityTest, SpanOpenedWhileDisabledStaysInactive)
{
    trace::setEnabled(false);
    trace::TraceSpan span("test.disabled.reenabled");
    trace::setEnabled(true);
    // The span must not record on destruction: it never started.
    EXPECT_FALSE(span.active());
}

// ---- Metrics ---------------------------------------------------------------

TEST_F(ObservabilityTest, CounterAccumulatesAndWrapsOnOverflow)
{
    metrics::Counter &counter = metrics::counter("test.counter.basic");
    counter.reset();
    counter.add();
    counter.add(9);
    EXPECT_EQ(counter.value(), 10u);

    // Counters are uint64 and wrap modulo 2^64 (documented behavior).
    counter.reset();
    counter.add(UINT64_MAX);
    EXPECT_EQ(counter.value(), UINT64_MAX);
    counter.add(2);
    EXPECT_EQ(counter.value(), 1u);
}

TEST_F(ObservabilityTest, RegistryReturnsSameInstrumentByName)
{
    metrics::Counter &a = metrics::counter("test.registry.same");
    metrics::Counter &b = metrics::counter("test.registry.same");
    EXPECT_EQ(&a, &b);
    a.reset();
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObservabilityTest, HistogramBucketEdges)
{
    metrics::Histogram &hist =
        metrics::histogram("test.hist.edges", {1.0, 10.0, 100.0});
    hist.reset();

    hist.observe(0.5);   // below first bound  -> bucket 0
    hist.observe(1.0);   // exactly on a bound -> bucket 0 (le semantics)
    hist.observe(1.0001); // just above        -> bucket 1
    hist.observe(10.0);  // on second bound    -> bucket 1
    hist.observe(99.9);  // under third        -> bucket 2
    hist.observe(100.0); // on third           -> bucket 2
    hist.observe(1e6);   // beyond every bound -> overflow bucket

    const std::vector<uint64_t> buckets = hist.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + overflow.
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 2u);
    EXPECT_EQ(buckets[2], 2u);
    EXPECT_EQ(buckets[3], 1u);
    EXPECT_EQ(hist.count(), 7u);
    EXPECT_DOUBLE_EQ(hist.minValue(), 0.5);
    EXPECT_DOUBLE_EQ(hist.maxValue(), 1e6);
}

TEST_F(ObservabilityTest, MetricsJsonIsWellFormed)
{
    metrics::counter("test.export.counter").add(2);
    metrics::gauge("test.export.gauge").set(-5);
    metrics::histogram("test.export.hist", {0.5}).observe(0.25);
    const std::string json = metrics::exportJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json;
    EXPECT_NE(json.find("\"test.export.counter\":"), std::string::npos);
    EXPECT_NE(json.find("\"test.export.gauge\":-5"), std::string::npos);
    EXPECT_NE(json.find("\"test.export.hist\""), std::string::npos);
    EXPECT_EQ(checker.keyCount("counters"), 1);
    EXPECT_EQ(checker.keyCount("gauges"), 1);
    EXPECT_EQ(checker.keyCount("histograms"), 1);
}

// ---- Environment gating ----------------------------------------------------

TEST_F(ObservabilityTest, TraceEnvVarGatesRecording)
{
    trace::setEnabled(false);
    setenv("HYDRIDE_TRACE", "0", 1);
    trace::configureFromEnv();
    EXPECT_FALSE(trace::enabled());

    const std::string out = ::testing::TempDir() + "hydride_env_trace.json";
    setenv("HYDRIDE_TRACE", out.c_str(), 1);
    trace::configureFromEnv();
    EXPECT_TRUE(trace::enabled());

    setenv("HYDRIDE_TRACE", "0", 1);
    trace::configureFromEnv();
    EXPECT_FALSE(trace::enabled());
}

TEST_F(ObservabilityTest, MetricsEnvVarGatesRecording)
{
    metrics::setEnabled(false);
    setenv("HYDRIDE_METRICS", "0", 1);
    metrics::configureFromEnv();
    EXPECT_FALSE(metrics::enabled());

    const std::string out = ::testing::TempDir() + "hydride_env_metrics.json";
    setenv("HYDRIDE_METRICS", out.c_str(), 1);
    metrics::configureFromEnv();
    EXPECT_TRUE(metrics::enabled());
}

TEST_F(ObservabilityTest, LogLevelEnvVarIsApplied)
{
    setenv("HYDRIDE_LOG_LEVEL", "error", 1);
    logging::configureFromEnv();
    EXPECT_EQ(logging::level(), logging::Level::Error);
    EXPECT_FALSE(logging::shouldLog(logging::Level::Warn));
    EXPECT_TRUE(logging::shouldLog(logging::Level::Error));

    // The legacy CEGIS debug switch maps to debug level.
    unsetenv("HYDRIDE_LOG_LEVEL");
    setenv("HYDRIDE_SYNTH_DEBUG", "1", 1);
    logging::configureFromEnv();
    EXPECT_EQ(logging::level(), logging::Level::Debug);
    EXPECT_TRUE(logging::shouldLog(logging::Level::Debug));
}

TEST_F(ObservabilityTest, LogLevelFiltersAndOffSilencesAll)
{
    logging::setLevel(logging::Level::Warn);
    EXPECT_FALSE(logging::shouldLog(logging::Level::Debug));
    EXPECT_FALSE(logging::shouldLog(logging::Level::Info));
    EXPECT_TRUE(logging::shouldLog(logging::Level::Warn));
    EXPECT_TRUE(logging::shouldLog(logging::Level::Error));

    logging::setLevel(logging::Level::Off);
    EXPECT_FALSE(logging::shouldLog(logging::Level::Error));
    // Off itself is never a valid message level.
    EXPECT_FALSE(logging::shouldLog(logging::Level::Off));

    logging::Level parsed;
    EXPECT_TRUE(logging::parseLevel("debug", parsed));
    EXPECT_EQ(parsed, logging::Level::Debug);
    EXPECT_FALSE(logging::parseLevel("chatty", parsed));
}

// ---- File export -----------------------------------------------------------

TEST_F(ObservabilityTest, WriteChromeJsonRoundTripsThroughDisk)
{
    {
        trace::TraceSpan span("test.file.span");
    }
    const std::string path = ::testing::TempDir() + "hydride_trace_ut.json";
    ASSERT_TRUE(trace::writeChromeJson(path));
    std::string content;
    {
        FILE *f = fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        char buf[4096];
        size_t n;
        while ((n = fread(buf, 1, sizeof(buf), f)) > 0)
            content.append(buf, n);
        fclose(f);
    }
    std::remove(path.c_str());
    JsonChecker checker(content);
    EXPECT_TRUE(checker.parse()) << content;
    EXPECT_NE(content.find("test.file.span"), std::string::npos);
}

} // namespace
