/**
 * @file
 * Tests for the fault-injection registry (support/faults.h) and the
 * resilient compilation driver (driver/resilience.h): the clause
 * grammar, every rung of the degradation ladder with its metrics and
 * trace attributes, and the CEGIS deadline-overshoot bound.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "driver/resilience.h"
#include "support/rng.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/faults.h"
#include "support/timing.h"

namespace hydride {
namespace {

/** Registry-clearing guard so no test leaks configured faults. */
struct FaultGuard
{
    ~FaultGuard() { faults::reset(); }
};

/** Metrics recording is off by default; rung tests assert on it. */
struct MetricsOn
{
    MetricsOn() { metrics::setEnabled(true); }
    ~MetricsOn() { metrics::setEnabled(false); }
};

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86"});
    return d;
}

/** A window small enough to synthesize within the test budget. */
HExprPtr
easyWindow()
{
    return hBin(HOp::Add, hInput(0, 16, 8), hInput(1, 16, 8));
}

ResilienceOptions
fastOptions()
{
    ResilienceOptions options;
    options.synthesis.timeout_seconds = 5.0;
    options.synthesis.max_insts = 2;
    return options;
}

/** The rung attribute of the most recent resilience window span. */
std::string
lastWindowSpanRung()
{
    std::string rung;
    for (const auto &span : trace::snapshotSpans()) {
        if (span.name != "driver.resilience.window")
            continue;
        for (const auto &[key, value] : span.attrs)
            if (key == "rung")
                rung = value;
    }
    return rung;
}

// ---- Clause grammar ---------------------------------------------------------

TEST(Faults, AlwaysModeFiresOnEveryEvaluation)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("cegis.timeout"));
    EXPECT_TRUE(faults::shouldFail("cegis.timeout"));
    EXPECT_TRUE(faults::shouldFail("cegis.timeout"));
    EXPECT_FALSE(faults::shouldFail("cache.save"));
    EXPECT_EQ(faults::fireCount("cegis.timeout"), 2);
}

TEST(Faults, UnknownSiteIsRejectedAndLeavesRegistryEmpty)
{
    FaultGuard guard;
    std::string error;
    EXPECT_FALSE(faults::configure("no.such.site", &error));
    EXPECT_NE(error.find("no.such.site"), std::string::npos);
    EXPECT_FALSE(faults::active());
    // A bad clause *anywhere* rejects the whole spec.
    EXPECT_FALSE(faults::configure("cegis.timeout,bogus.site", &error));
    EXPECT_FALSE(faults::active());
}

TEST(Faults, MalformedClausesAreRejected)
{
    FaultGuard guard;
    std::string error;
    EXPECT_FALSE(faults::configure("cegis.timeout@1.5", &error));
    EXPECT_FALSE(faults::configure("cegis.timeout@x", &error));
    EXPECT_FALSE(faults::configure("cegis.timeout:0", &error));
    EXPECT_FALSE(faults::configure("cegis.timeout:-2", &error));
    EXPECT_FALSE(faults::active());
}

TEST(Faults, NthHitFiresExactlyOnceOnTheNthEvaluation)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("cegis.timeout:3"));
    EXPECT_FALSE(faults::shouldFail("cegis.timeout"));
    EXPECT_FALSE(faults::shouldFail("cegis.timeout"));
    EXPECT_TRUE(faults::shouldFail("cegis.timeout"));
    EXPECT_FALSE(faults::shouldFail("cegis.timeout"));
    EXPECT_EQ(faults::fireCount("cegis.timeout"), 1);
    EXPECT_EQ(faults::hitCount("cegis.timeout"), 4);
}

TEST(Faults, ProbabilityModeIsDeterministicAcrossRuns)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("cegis.timeout@0.5"));
    std::vector<bool> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(faults::shouldFail("cegis.timeout"));
    ASSERT_TRUE(faults::configure("cegis.timeout@0.5"));
    std::vector<bool> second;
    for (int i = 0; i < 200; ++i)
        second.push_back(faults::shouldFail("cegis.timeout"));
    EXPECT_EQ(first, second);
    const long fired = std::count(first.begin(), first.end(), true);
    EXPECT_GT(fired, 50);
    EXPECT_LT(fired, 150);
}

TEST(Faults, ArgMatchFiresOnlyOnTheConfiguredKey)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("parser.malformed=vadd_s16"));
    EXPECT_TRUE(faults::shouldFail("parser.malformed", "vadd_s16"));
    EXPECT_FALSE(faults::shouldFail("parser.malformed", "vsub_s16"));
}

TEST(Faults, ArgOfExposesCapacityStyleKnobs)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("alloc.cap=64M"));
    EXPECT_EQ(faults::argOf("alloc.cap"), "64M");
    EXPECT_EQ(faults::parseSizeArg("64M", -1), 64LL << 20);
    EXPECT_EQ(faults::parseSizeArg("512K", -1), 512LL << 10);
    EXPECT_EQ(faults::parseSizeArg("2G", -1), 2LL << 30);
    EXPECT_EQ(faults::parseSizeArg("1048576", -1), 1048576LL);
    EXPECT_EQ(faults::parseSizeArg("", -1), -1);
    EXPECT_EQ(faults::parseSizeArg("garbage", -1), -1);
}

TEST(Faults, FailPointThrowsInjectedFaultNamingTheSite)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("compiler.window"));
    try {
        faults::failPoint("compiler.window");
        FAIL() << "failPoint did not throw";
    } catch (const faults::InjectedFault &fault) {
        EXPECT_EQ(fault.site(), "compiler.window");
    }
}

TEST(Faults, EveryRegisteredSiteIsKnown)
{
    const auto sites = faults::knownSites();
    EXPECT_GE(sites.size(), 11u);
    for (const auto &site : sites)
        EXPECT_TRUE(faults::isKnownSite(site)) << site;
    EXPECT_FALSE(faults::isKnownSite("definitely.not.a.site"));
}

// ---- Degradation ladder rungs ----------------------------------------------

TEST(Resilience, SynthesizedRungRecordsMetricsAndTrace)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    trace::reset();
    trace::setEnabled(true);
    metrics::Counter &rung_counter =
        metrics::counter("resilience.rung.synthesized");
    const uint64_t before = rung_counter.value();

    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    ResilientWindow window = compiler.compileWindow(easyWindow());
    trace::setEnabled(false);

    EXPECT_TRUE(window.ok);
    EXPECT_EQ(window.rung, Rung::Synthesized);
    EXPECT_FALSE(window.recovered);
    EXPECT_EQ(rung_counter.value(), before + 1);
    EXPECT_EQ(lastWindowSpanRung(), "synthesized");
}

TEST(Resilience, CachedRungOnTheSecondCompile)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    ResilientWindow first = compiler.compileWindow(easyWindow());
    ASSERT_EQ(first.rung, Rung::Synthesized);

    metrics::Counter &rung_counter =
        metrics::counter("resilience.rung.cached");
    const uint64_t before = rung_counter.value();
    ResilientWindow second = compiler.compileWindow(easyWindow());
    EXPECT_TRUE(second.ok);
    EXPECT_EQ(second.rung, Rung::Cached);
    EXPECT_TRUE(second.from_cache);
    EXPECT_EQ(rung_counter.value(), before + 1);
}

TEST(Resilience, NegativeCacheEntrySkipsSynthesisAndFallsBack)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    SynthesisCache cache;
    cache.insert(easyWindow(), "x86", SynthesisResult{}); // ok = false
    metrics::Counter &skips =
        metrics::counter("resilience.negative_cache.skips");
    const uint64_t before = skips.value();

    ResilientCompiler compiler(dict(), "x86", 256, fastOptions(), &cache);
    ResilientWindow window = compiler.compileWindow(easyWindow());
    EXPECT_TRUE(window.ok);
    EXPECT_EQ(window.rung, Rung::MacroExpanded);
    EXPECT_EQ(skips.value(), before + 1);
}

TEST(Resilience, InjectedTimeoutDegradesToMacroExpansionWithRetry)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    ASSERT_TRUE(faults::configure("cegis.timeout"));
    trace::reset();
    trace::setEnabled(true);
    metrics::Counter &rung_counter =
        metrics::counter("resilience.rung.macro_expanded");
    metrics::Counter &degradations =
        metrics::counter("resilience.degradations");
    metrics::Counter &retries = metrics::counter("resilience.retries");
    const uint64_t rung_before = rung_counter.value();
    const uint64_t deg_before = degradations.value();
    const uint64_t retry_before = retries.value();

    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    ResilientWindow window = compiler.compileWindow(easyWindow());
    trace::setEnabled(false);

    EXPECT_TRUE(window.ok);
    EXPECT_EQ(window.rung, Rung::MacroExpanded);
    // The deadline fault looks exactly like a real deadline, so the
    // driver escalates once — and the retry times out too.
    EXPECT_EQ(window.retries, 1);
    EXPECT_EQ(rung_counter.value(), rung_before + 1);
    EXPECT_EQ(degradations.value(), deg_before + 1);
    EXPECT_EQ(retries.value(), retry_before + 1);
    EXPECT_EQ(lastWindowSpanRung(), "macro_expanded");
}

TEST(Resilience, MacroFaultDegradesToScalarizedAndStaysEquivalent)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    ASSERT_TRUE(faults::configure("lowering.fail,macro.fail"));
    metrics::Counter &rung_counter =
        metrics::counter("resilience.rung.scalarized");
    const uint64_t before = rung_counter.value();

    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    const HExprPtr window = easyWindow();
    ResilientWindow compiled = compiler.compileWindow(window);

    EXPECT_TRUE(compiled.ok);
    EXPECT_EQ(compiled.rung, Rung::Scalarized);
    EXPECT_EQ(rung_counter.value(), before + 1);
    EXPECT_GT(scalarizedCost(window), 0);
    faults::reset();

    // The scalarized rung evaluates the window itself.
    Rng rng(0x5CA1A);
    std::vector<BitVector> inputs = {BitVector::random(128, rng),
                                     BitVector::random(128, rng)};
    EXPECT_EQ(evalResilient(dict(), compiled, inputs),
              evalHalide(window, inputs));
}

TEST(Resilience, BarrierCatchesInjectedFaultAndRecordsRecovery)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    ASSERT_TRUE(faults::configure("compiler.window"));
    metrics::Counter &recovered =
        metrics::counter("resilience.recovered.compiler.window");
    const uint64_t before = recovered.value();

    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    ResilientWindow window = compiler.compileWindow(easyWindow());

    EXPECT_TRUE(window.ok);
    EXPECT_TRUE(window.recovered);
    EXPECT_EQ(window.rung, Rung::MacroExpanded);
    ASSERT_FALSE(window.diagnostics.empty());
    EXPECT_EQ(window.diagnostics[0].site, "compiler.window");
    EXPECT_EQ(recovered.value(), before + 1);
}

TEST(Resilience, DisabledLadderYieldsStructuredFailureNotACrash)
{
    FaultGuard guard;
    MetricsOn metrics_on;
    ASSERT_TRUE(faults::configure("compiler.window"));
    metrics::Counter &failed =
        metrics::counter("resilience.failed_windows");
    const uint64_t before = failed.value();

    ResilienceOptions options = fastOptions();
    options.allow_macro_fallback = false;
    options.allow_scalarized = false;
    ResilientCompiler compiler(dict(), "x86", 256, options);
    ResilientWindow window = compiler.compileWindow(easyWindow());

    EXPECT_FALSE(window.ok);
    EXPECT_EQ(window.rung, Rung::Failed);
    ASSERT_FALSE(window.diagnostics.empty());
    EXPECT_EQ(window.diagnostics[0].site, "compiler.window");
    EXPECT_EQ(failed.value(), before + 1);
}

TEST(Resilience, WholeKernelCompilesThroughTheLadder)
{
    FaultGuard guard;
    ASSERT_TRUE(faults::configure("cegis.timeout"));
    ResilientCompiler compiler(dict(), "x86", 256, fastOptions());
    Kernel kernel = buildKernel("add", Schedule{});
    ResilientCompilation compiled = compiler.compile(kernel);
    EXPECT_TRUE(compiled.allOk());
    EXPECT_EQ(compiled.failed_windows, 0);
    EXPECT_GT(compiled.degraded_windows, 0);
    EXPECT_GT(compiled.staticCost(), 0);
}

// ---- CEGIS deadline granularity --------------------------------------------

TEST(Resilience, CegisDeadlineOvershootIsBounded)
{
    // Regression for the deadline-granularity satellite: deadline
    // checks live inside the candidate-enumeration inner loop, so a
    // tiny budget must end the search promptly instead of finishing
    // an entire enumeration level first. A hard window (wide product
    // of sums, 3-instruction sequences) would enumerate for many
    // seconds without the inner-loop checks.
    const HExprPtr window =
        hBin(HOp::Mul,
             hBin(HOp::Add, hInput(0, 16, 16), hInput(1, 16, 16)),
             hBin(HOp::Sub, hInput(2, 16, 16), hInput(3, 16, 16)));
    SynthesisOptions options;
    options.timeout_seconds = 0.05;
    options.max_insts = 3;
    Stopwatch watch;
    SynthesisResult synth = synthesizeWindow(dict(), "x86", window, options);
    const double elapsed = watch.seconds();
    EXPECT_LT(elapsed, 2.0);
    if (!synth.ok) {
        EXPECT_EQ(synth.note, "timeout");
    }
}

} // namespace
} // namespace hydride
