/**
 * @file
 * Tests for the durable multi-process synthesis store
 * (src/synthesis/store/): open/initialize, append/find round trips
 * across reopen, torn-record salvage with resync, fingerprint-gated
 * quarantine of incompatible stores, durable poison tombstones,
 * signature-based approximate retrieval, and forked concurrent
 * writers contending for one shard lock.
 *
 * The multi-process *crash* half (SIGKILL mid-append, stale-lock
 * takeover, poison reaching the driver) lives in hydride-chaos
 * --store-* (tools/hydride_chaos.cpp) where each scenario gets a
 * fresh process tree.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

#include "halide/hexpr.h"
#include "support/rng.h"
#include "synthesis/compiler.h"
#include "synthesis/store/store.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86"});
    return d;
}

/** Distinct-keyed probe windows: hashOf covers the immediate, so each
 *  tag is a separate record, while windowSignature ignores constant
 *  values, so all tags share one signature neighborhood. */
HExprPtr
probe(int tag)
{
    return hBin(HOp::Add, hInput(0, 8, 8), hConst(tag & 0x7F, 8, 8));
}

SynthesisResult
negativeResult()
{
    SynthesisResult result;
    result.ok = false;
    result.note = "store test probe";
    return result;
}

/** A fabricated successful entry. nearest() only serves ok results;
 *  these tests exercise retrieval mechanics, not module semantics
 *  (the driver re-verifies every retrieved module anyway). */
SynthesisResult
okResult(int cost)
{
    SynthesisResult result;
    result.ok = true;
    result.cost = cost;
    result.note = "store test seed";
    return result;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
spew(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text;
}

class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = std::string("/tmp/hydride_store_test_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                "." + std::to_string(::getpid());
        nuke();
    }
    void
    TearDown() override
    {
        nuke();
        std::system(
            ("rm -rf '" + root_ + ".quarantined.'*").c_str());
    }
    void
    nuke()
    {
        std::system(("rm -rf '" + root_ + "'").c_str());
    }
    /** The single shard file of a shards=1 store. */
    std::string
    shard0() const
    {
        return root_ + "/shards/00.log";
    }
    SynthesisStore::Options
    oneShard() const
    {
        SynthesisStore::Options options;
        options.shards = 1;
        return options;
    }
    std::string root_;
};

TEST_F(StoreTest, OpenInitializesAFreshStore)
{
    SynthesisStore store;
    ASSERT_TRUE(store.open(root_, dict()));
    EXPECT_TRUE(store.isOpen());
    EXPECT_TRUE(store.openStats().initialized);
    EXPECT_EQ(store.epoch(), 1);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(slurp(root_ + "/meta").empty());

    // A second open of the same root is a plain (non-initializing)
    // open of the now-existing store.
    SynthesisStore again;
    ASSERT_TRUE(again.open(root_, dict()));
    EXPECT_FALSE(again.openStats().initialized);
    EXPECT_EQ(again.epoch(), 1);
}

TEST_F(StoreTest, RoundTripAcrossReopen)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisResult solved =
        synthesizeWindow(dict(), "x86", kernel.windows[0]);
    ASSERT_TRUE(solved.ok);
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict()));
        EXPECT_TRUE(store.append(kernel.windows[0], "x86", solved));
        EXPECT_TRUE(store.append(probe(1), "x86", negativeResult()));
        EXPECT_TRUE(store.append(probe(2), "x86", negativeResult()));
        EXPECT_EQ(store.size(), 3u);
    }

    SynthesisStore reopened;
    ASSERT_TRUE(reopened.open(root_, dict()));
    EXPECT_EQ(reopened.openStats().records, 3u);
    EXPECT_EQ(reopened.openStats().salvaged, 0u);

    const SynthesisResult *restored =
        reopened.find(kernel.windows[0], "x86");
    ASSERT_NE(restored, nullptr);
    ASSERT_TRUE(restored->ok);
    EXPECT_EQ(restored->cost, solved.cost);
    // The restored module must still compute.
    Rng rng(2024);
    std::vector<BitVector> inputs;
    for (int w : restored->module.input_widths)
        inputs.push_back(BitVector::random(w, rng));
    EXPECT_EQ(restored->module.evaluate(dict(), inputs),
              evalHalide(kernel.windows[0], inputs));

    const SynthesisResult *negative = reopened.find(probe(1), "x86");
    ASSERT_NE(negative, nullptr);
    EXPECT_FALSE(negative->ok);
    // Lookups are ISA-scoped.
    EXPECT_EQ(reopened.find(probe(1), "arm"), nullptr);
}

TEST_F(StoreTest, SalvageResyncsAtTheNextRecordHeader)
{
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict(), oneShard()));
        for (int tag = 0; tag < 3; ++tag)
            ASSERT_TRUE(store.append(probe(tag), "x86",
                                     negativeResult()));
    }
    // Flip a byte in the *middle* record's body: its checksum fails,
    // but the reader must resync at the third record's header instead
    // of discarding the rest of the shard.
    std::string text = slurp(shard0());
    const size_t second = text.find("record ", text.find("record ") + 1);
    const size_t third = text.find("record ", second + 1);
    ASSERT_NE(second, std::string::npos);
    ASSERT_NE(third, std::string::npos);
    text[(second + third) / 2] ^= 0x20;
    spew(shard0(), text);

    SynthesisStore salvaged;
    ASSERT_TRUE(salvaged.open(root_, dict(), oneShard()));
    EXPECT_EQ(salvaged.openStats().records, 2u);
    EXPECT_EQ(salvaged.openStats().salvaged, 1u);
    EXPECT_NE(salvaged.find(probe(0), "x86"), nullptr);
    EXPECT_EQ(salvaged.find(probe(1), "x86"), nullptr);
    EXPECT_NE(salvaged.find(probe(2), "x86"), nullptr);
}

TEST_F(StoreTest, TornTailCostsExactlyTheTornRecord)
{
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict(), oneShard()));
        for (int tag = 0; tag < 3; ++tag)
            ASSERT_TRUE(store.append(probe(tag), "x86",
                                     negativeResult()));
    }
    // Chop mid-way through the last record — the crash-mid-append
    // shape of damage (what a SIGKILL'd writer leaves behind).
    std::string text = slurp(shard0());
    const size_t last = text.rfind("record ");
    ASSERT_NE(last, std::string::npos);
    spew(shard0(), text.substr(0, last + 12));

    SynthesisStore salvaged;
    ASSERT_TRUE(salvaged.open(root_, dict(), oneShard()));
    EXPECT_EQ(salvaged.openStats().records, 2u);
    EXPECT_EQ(salvaged.openStats().salvaged, 1u);
}

TEST_F(StoreTest, IncompatibleStoreIsQuarantinedWithAnEpochBump)
{
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict()));
        ASSERT_TRUE(store.append(probe(0), "x86", negativeResult()));
    }
    // A different dictionary fingerprints differently: the stale
    // store must be renamed aside (never half-loaded) and a fresh one
    // initialized under a bumped epoch.
    AutoLLVMDict other = AutoLLVMDict::build({"hvx"});
    SynthesisStore store;
    ASSERT_TRUE(store.open(root_, other));
    EXPECT_TRUE(store.openStats().incompatible_quarantined);
    EXPECT_TRUE(store.openStats().initialized);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_GT(store.epoch(), 1);
}

TEST_F(StoreTest, IncompatibleStoreIsRefusedWhenQuarantineIsOff)
{
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict()));
    }
    AutoLLVMDict other = AutoLLVMDict::build({"hvx"});
    SynthesisStore::Options options;
    options.quarantine_incompatible = false;
    SynthesisStore store;
    EXPECT_FALSE(store.open(root_, other, options));
    EXPECT_FALSE(store.isOpen());
    EXPECT_FALSE(store.openStats().error.empty());
    // The original store must be untouched and still open cleanly.
    SynthesisStore original;
    EXPECT_TRUE(original.open(root_, dict()));
}

TEST_F(StoreTest, QuarantineTombstonesAreDurable)
{
    {
        SynthesisStore store;
        ASSERT_TRUE(store.open(root_, dict()));
        ASSERT_TRUE(store.append(probe(0), "x86", negativeResult()));
        ASSERT_TRUE(store.append(probe(1), "x86", negativeResult()));
        ASSERT_TRUE(store.quarantine(probe(0), "x86", "test poison"));
        EXPECT_EQ(store.sessionQuarantined(), 1u);
        EXPECT_EQ(store.find(probe(0), "x86"), nullptr);
        EXPECT_NE(store.find(probe(1), "x86"), nullptr);
    }
    // The tombstone survives reopen: the poisoned key is skipped at
    // load time and never served again.
    SynthesisStore reopened;
    ASSERT_TRUE(reopened.open(root_, dict()));
    EXPECT_EQ(reopened.find(probe(0), "x86"), nullptr);
    EXPECT_NE(reopened.find(probe(1), "x86"), nullptr);
    EXPECT_GE(reopened.openStats().poisoned_skipped, 1u);
    EXPECT_EQ(reopened.openStats().records, 1u);
}

TEST_F(StoreTest, NearestOrdersByDistanceAndExcludesTheExactKey)
{
    const HExprPtr base = probe(5);
    const HExprPtr near = probe(9); // Same structure, other constant.
    // Structurally different: widening multiply of two inputs.
    const HExprPtr far =
        hBin(HOp::Mul, hCast(hInput(0, 8, 8), 16, true),
             hCast(hInput(1, 8, 8), 16, true));

    EXPECT_EQ(signatureDistance(windowSignature(base),
                                windowSignature(near)),
              0);
    EXPECT_GT(signatureDistance(windowSignature(base),
                                windowSignature(far)),
              8);

    SynthesisStore store;
    ASSERT_TRUE(store.open(root_, dict()));
    ASSERT_TRUE(store.append(base, "x86", okResult(10)));
    ASSERT_TRUE(store.append(near, "x86", okResult(20)));
    ASSERT_TRUE(store.append(far, "x86", okResult(30)));
    // Negative entries are never warm-start seeds.
    ASSERT_TRUE(store.append(probe(7), "x86", negativeResult()));

    auto neighbors = store.nearest(base, "x86", 64);
    ASSERT_EQ(neighbors.size(), 2u); // base excluded, negative excluded.
    EXPECT_EQ(neighbors[0].distance, 0);
    EXPECT_EQ(neighbors[0].result->cost, 20);
    EXPECT_GT(neighbors[1].distance, 8);

    // A tight distance bound keeps only the structural twin.
    auto tight = store.nearest(base, "x86", 0);
    ASSERT_EQ(tight.size(), 1u);
    EXPECT_EQ(tight[0].result->cost, 20);
    // Other-ISA windows never match.
    EXPECT_TRUE(store.nearest(base, "arm", 64).empty());
}

TEST_F(StoreTest, RefreshPicksUpAnotherProcessesAppends)
{
    SynthesisStore reader;
    ASSERT_TRUE(reader.open(root_, dict()));
    EXPECT_EQ(reader.size(), 0u);

    SynthesisStore writer;
    ASSERT_TRUE(writer.open(root_, dict()));
    ASSERT_TRUE(writer.append(probe(3), "x86", negativeResult()));

    EXPECT_EQ(reader.find(probe(3), "x86"), nullptr);
    ASSERT_TRUE(reader.refresh());
    EXPECT_NE(reader.find(probe(3), "x86"), nullptr);
    EXPECT_EQ(reader.epoch(), 1);
}

TEST_F(StoreTest, ForkedConcurrentWritersLoseNothing)
{
    constexpr int kWriters = 4;
    constexpr int kPerWriter = 8;
    // One shard forces every append through the same writer lock.
    {
        SynthesisStore init;
        ASSERT_TRUE(init.open(root_, dict(), oneShard()));
    }
    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            SynthesisStore store;
            if (!store.open(root_, dict(), oneShard()))
                ::_exit(1);
            for (int i = 0; i < kPerWriter; ++i) {
                if (!store.append(probe(w * kPerWriter + i), "x86",
                                  negativeResult())) {
                    ::_exit(2);
                }
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
            << "writer " << pid << " status " << status;
    }

    SynthesisStore merged;
    ASSERT_TRUE(merged.open(root_, dict(), oneShard()));
    EXPECT_EQ(merged.openStats().records,
              size_t(kWriters) * kPerWriter);
    EXPECT_EQ(merged.openStats().salvaged, 0u);
    for (int tag = 0; tag < kWriters * kPerWriter; ++tag)
        EXPECT_NE(merged.find(probe(tag), "x86"), nullptr)
            << "lost record " << tag;
}

} // namespace
} // namespace hydride
