/**
 * @file
 * Tests for the centralized HYDRIDE_* environment-knob parsing
 * (src/support/env.h): the raw accessor, the shared switch-or-path
 * toggle grammar, boolean and size knobs, and the artifact-path
 * helpers. One test per knob grammar, exercising unset, empty,
 * canonical, and malformed spellings.
 */
#include <cstdlib>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "support/env.h"

using namespace hydride;

namespace {

/** Restore one variable to "unset" when a test ends. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name)
    {
        unsetenv(name);
    }
    ~EnvGuard() { unsetenv(name_); }
    void set(const char *value) { setenv(name_, value, 1); }

  private:
    const char *name_;
};

TEST(Env, RawDistinguishesUnsetFromEmpty)
{
    EnvGuard guard("HYDRIDE_TEST_RAW");
    env::Raw unset = env::raw("HYDRIDE_TEST_RAW");
    EXPECT_FALSE(unset.set);
    EXPECT_TRUE(unset.value.empty());

    guard.set("");
    env::Raw empty = env::raw("HYDRIDE_TEST_RAW");
    EXPECT_TRUE(empty.set);
    EXPECT_TRUE(empty.value.empty());

    guard.set("hello");
    env::Raw value = env::raw("HYDRIDE_TEST_RAW");
    EXPECT_TRUE(value.set);
    EXPECT_EQ(value.value, "hello");
}

TEST(Env, ToggleGrammar)
{
    EnvGuard guard("HYDRIDE_TEST_TOGGLE");

    // Unset and empty both leave defaults alone.
    EXPECT_FALSE(env::toggle("HYDRIDE_TEST_TOGGLE").set);
    guard.set("");
    EXPECT_FALSE(env::toggle("HYDRIDE_TEST_TOGGLE").set);

    guard.set("0");
    env::Toggle off = env::toggle("HYDRIDE_TEST_TOGGLE");
    EXPECT_TRUE(off.set);
    EXPECT_FALSE(off.enabled);
    EXPECT_TRUE(off.path.empty());

    guard.set("1");
    env::Toggle on = env::toggle("HYDRIDE_TEST_TOGGLE");
    EXPECT_TRUE(on.set);
    EXPECT_TRUE(on.enabled);
    EXPECT_TRUE(on.path.empty()); // Caller derives the default path.

    guard.set("/tmp/explicit.json");
    env::Toggle path = env::toggle("HYDRIDE_TEST_TOGGLE");
    EXPECT_TRUE(path.set);
    EXPECT_TRUE(path.enabled);
    EXPECT_EQ(path.path, "/tmp/explicit.json");
}

TEST(Env, ParseBoolSpellings)
{
    bool out = false;
    for (const char *yes : {"1", "true", "TRUE", "True", "on", "yes"}) {
        out = false;
        EXPECT_TRUE(env::parseBool(yes, out)) << yes;
        EXPECT_TRUE(out) << yes;
    }
    for (const char *no : {"0", "false", "FALSE", "off", "no", ""}) {
        out = true;
        EXPECT_TRUE(env::parseBool(no, out)) << no;
        EXPECT_FALSE(out) << no;
    }
    // Malformed input reports failure and leaves `out` untouched.
    out = true;
    EXPECT_FALSE(env::parseBool("maybe", out));
    EXPECT_TRUE(out);
    out = false;
    EXPECT_FALSE(env::parseBool("2", out));
    EXPECT_FALSE(out);
}

TEST(Env, BoolOrFailsClosed)
{
    EnvGuard guard("HYDRIDE_TEST_BOOL");
    EXPECT_TRUE(env::boolOr("HYDRIDE_TEST_BOOL", true));
    EXPECT_FALSE(env::boolOr("HYDRIDE_TEST_BOOL", false));

    guard.set("yes");
    EXPECT_TRUE(env::boolOr("HYDRIDE_TEST_BOOL", false));
    guard.set("off");
    EXPECT_FALSE(env::boolOr("HYDRIDE_TEST_BOOL", true));

    // Empty and malformed both read as the fallback.
    guard.set("");
    EXPECT_TRUE(env::boolOr("HYDRIDE_TEST_BOOL", true));
    guard.set("banana");
    EXPECT_TRUE(env::boolOr("HYDRIDE_TEST_BOOL", true));
    EXPECT_FALSE(env::boolOr("HYDRIDE_TEST_BOOL", false));
}

TEST(Env, ParseSizeSuffixes)
{
    long long out = 0;
    EXPECT_TRUE(env::parseSize("0", out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(env::parseSize("12345", out));
    EXPECT_EQ(out, 12345);
    EXPECT_TRUE(env::parseSize("64k", out));
    EXPECT_EQ(out, 64LL * 1024);
    EXPECT_TRUE(env::parseSize("64K", out));
    EXPECT_EQ(out, 64LL * 1024);
    EXPECT_TRUE(env::parseSize("2m", out));
    EXPECT_EQ(out, 2LL * 1024 * 1024);
    EXPECT_TRUE(env::parseSize("3G", out));
    EXPECT_EQ(out, 3LL * 1024 * 1024 * 1024);

    for (const char *bad : {"", "-1", "12x", "k", "1.5M", "0x10"}) {
        long long keep = 777;
        EXPECT_FALSE(env::parseSize(bad, keep)) << bad;
        EXPECT_EQ(keep, 777) << bad;
    }
}

TEST(Env, ArtifactDirFollowsTraceDir)
{
    EnvGuard guard("HYDRIDE_TRACE_DIR");
    EXPECT_EQ(env::artifactDir(), ".");
    guard.set("");
    EXPECT_EQ(env::artifactDir(), ".");
    guard.set("/tmp/artifacts");
    EXPECT_EQ(env::artifactDir(), "/tmp/artifacts");
}

TEST(Env, DefaultArtifactPathIsPidSuffixed)
{
    EnvGuard guard("HYDRIDE_TRACE_DIR");
    guard.set("/tmp/art");
    const std::string path = env::defaultArtifactPath("trace", "json");
    const std::string pid = std::to_string(::getpid());
    EXPECT_EQ(path, "/tmp/art/trace." + pid + ".json");
}

} // namespace
