/**
 * @file
 * Tests for the code synthesizer: grammar pruning (BVS/SBOS/swizzle
 * inclusion), lane scaling, CEGIS end-to-end synthesis of the
 * paper's flagship dot-product windows, the memoization cache, and
 * the compiler driver with window splitting.
 */
#include <gtest/gtest.h>

#include "specs/spec_db.h"
#include "support/rng.h"
#include "synthesis/compiler.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

HExprPtr
matmulWindow(int vector_bits)
{
    Schedule schedule;
    schedule.vector_bits = vector_bits;
    return buildKernel("matmul_b1", schedule).windows[0];
}

TEST(Grammar, BvsPrunesUnrelatedClasses)
{
    HExprPtr window = matmulWindow(512);
    GrammarOptions with;
    GrammarOptions without;
    without.bvs = false;
    without.sbos = false;
    Grammar pruned = buildGrammar(dict(), "x86", window, 1, with);
    Grammar full = buildGrammar(dict(), "x86", window, 1, without);
    EXPECT_GT(pruned.ops.size(), 0u);
    EXPECT_LT(pruned.ops.size(), full.ops.size() / 2);
}

TEST(Grammar, SbosCapsPerClassVariants)
{
    HExprPtr window = matmulWindow(512);
    GrammarOptions k2;
    k2.k = 1;
    GrammarOptions k8;
    k8.k = 8;
    Grammar small = buildGrammar(dict(), "x86", window, 1, k2);
    Grammar large = buildGrammar(dict(), "x86", window, 1, k8);
    EXPECT_LE(small.ops.size(), large.ops.size());
}

TEST(Grammar, SwizzlesAreAlwaysIncluded)
{
    HExprPtr window = matmulWindow(512);
    GrammarOptions options;
    Grammar grammar = buildGrammar(dict(), "x86", window, 1, options);
    bool has_swizzle = false;
    for (const auto &op : grammar.ops)
        has_swizzle |= isSwizzleClass(dict().cls(op.variant.class_id));
    EXPECT_TRUE(has_swizzle);

    options.include_swizzles = false;
    Grammar no_swizzle =
        buildGrammar(dict(), "x86", window, 1, options);
    for (const auto &op : no_swizzle.ops)
        EXPECT_FALSE(isSwizzleClass(dict().cls(op.variant.class_id)));
}

TEST(Grammar, MaxOpsCapsGlobally)
{
    HExprPtr window = matmulWindow(512);
    GrammarOptions options;
    options.bvs = false;
    options.sbos = false;
    options.max_ops = 50;
    Grammar grammar = buildGrammar(dict(), "x86", window, 1, options);
    EXPECT_EQ(grammar.ops.size(), 50u);
}

TEST(Grammar, ImmPoolComesFromTheWindow)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel gauss = buildKernel("gaussian3x3", schedule);
    Grammar grammar =
        buildGrammar(dict(), "x86", gauss.windows[1], 1, {});
    // The column window shifts right by 4.
    EXPECT_NE(std::find(grammar.imm_pool.begin(), grammar.imm_pool.end(),
                        4),
              grammar.imm_pool.end());
}

TEST(ScaleWindow, DividesEveryLaneCount)
{
    HExprPtr window = matmulWindow(512);
    HExprPtr scaled = scaleWindow(window, 4);
    ASSERT_TRUE(scaled);
    EXPECT_EQ(scaled->lanes, window->lanes / 4);
    // Semantics at the scaled width track the original structure.
    Rng rng(91);
    std::vector<BitVector> inputs = {BitVector::random(128, rng),
                                     BitVector::random(128, rng),
                                     BitVector::random(128, rng)};
    BitVector out = evalHalide(scaled, inputs);
    EXPECT_EQ(out.width(), 128);
}

TEST(ScaleParams, ScalesCountAndRegWidthOnly)
{
    const int class_id = dict().classOfInstruction("_mm512_add_epi16");
    const EquivalenceClass &cls = dict().cls(class_id);
    for (size_t m = 0; m < cls.members.size(); ++m) {
        if (cls.members[m].name != "_mm512_add_epi16")
            continue;
        std::vector<int64_t> scaled;
        ASSERT_TRUE(scaleParams(cls, cls.members[m].param_values, 4,
                                scaled));
        EXPECT_EQ(cls.rep.outputWidth(scaled), 128);
        // Element width is untouched.
        EvalEnv env;
        env.param_values = &scaled;
        EXPECT_EQ(evalInt(cls.rep.elem_width, env), 16);
    }
}

TEST(Cegis, SynthesizesDpwssdForX86Matmul)
{
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", matmulWindow(512));
    ASSERT_TRUE(result.ok) << result.note;
    ASSERT_EQ(result.module.insts.size(), 1u);
    EXPECT_EQ(result.module.insts[0].op.member(dict()).name,
              "_mm512_dpwssd_epi32");
    EXPECT_EQ(result.cost, 5);
    EXPECT_GT(result.scale, 1);
}

TEST(Cegis, SynthesizesVdmpyAccForHvxMatmul)
{
    SynthesisResult result =
        synthesizeWindow(dict(), "hvx", matmulWindow(1024));
    ASSERT_TRUE(result.ok) << result.note;
    ASSERT_EQ(result.module.insts.size(), 1u);
    EXPECT_EQ(result.module.insts[0].op.member(dict()).name,
              "vdmpyh_acc_128B");
}

TEST(Cegis, SynthesizedModuleIsCorrectAtFullWidth)
{
    HExprPtr window = matmulWindow(512);
    SynthesisResult result = synthesizeWindow(dict(), "x86", window);
    ASSERT_TRUE(result.ok);
    Rng rng(92);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<BitVector> inputs;
        for (int w : result.module.input_widths)
            inputs.push_back(BitVector::random(w, rng));
        EXPECT_EQ(result.module.evaluate(dict(), inputs),
                  evalHalide(window, inputs));
    }
}

TEST(Cegis, SingleInstructionWindowsSynthesizeDirectly)
{
    // Saturating u8 add: one instruction on every target.
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel add = buildKernel("add", schedule);
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", add.windows[0]);
    ASSERT_TRUE(result.ok) << result.note;
    EXPECT_EQ(result.cost, 1);
    EXPECT_EQ(result.module.insts.size(), 1u);
}

TEST(Cegis, LaneScalingReportsScaleFactor)
{
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", matmulWindow(512));
    ASSERT_TRUE(result.ok);
    EXPECT_GE(result.scale, 2);

    SynthesisOptions no_scaling;
    no_scaling.scaling = false;
    SynthesisResult unscaled =
        synthesizeWindow(dict(), "x86", matmulWindow(512), no_scaling);
    ASSERT_TRUE(unscaled.ok);
    EXPECT_EQ(unscaled.scale, 1);
    EXPECT_EQ(unscaled.cost, result.cost);
}

TEST(Cegis, StaticPruningPreservesResultAndRejectsCandidates)
{
    // Default options: the abstract-interpretation tier discards
    // candidates whose output range cannot contain the spec outputs,
    // before any concrete evaluation.
    SynthesisResult pruned =
        synthesizeWindow(dict(), "x86", matmulWindow(512));
    ASSERT_TRUE(pruned.ok) << pruned.note;
    EXPECT_GT(pruned.candidates_rejected_static, 0);

    // Pruning only removes candidates that can never match, so the
    // search must land on the same winner at the same cost without it.
    SynthesisOptions no_prune;
    no_prune.static_prune = false;
    SynthesisResult unpruned =
        synthesizeWindow(dict(), "x86", matmulWindow(512), no_prune);
    ASSERT_TRUE(unpruned.ok) << unpruned.note;
    EXPECT_EQ(unpruned.candidates_rejected_static, 0);
    ASSERT_EQ(unpruned.module.insts.size(), pruned.module.insts.size());
    EXPECT_EQ(pruned.module.insts[0].op.member(dict()).name,
              unpruned.module.insts[0].op.member(dict()).name);
    EXPECT_EQ(pruned.cost, unpruned.cost);
}

TEST(Cegis, SymbolicCounterexampleRejectsWrongCandidate)
{
    // Starve the random-verification tier (zero vectors): the first
    // cost-minimal candidate that agrees on the empty counterexample
    // set "wins" immediately, and only the symbolic check stands
    // between it and acceptance. The refutation model must be fed back
    // as a counterexample until the search lands on a genuinely
    // equivalent program.
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel add = buildKernel("add", schedule);
    SynthesisOptions options;
    options.verify_vectors = 0;
    options.scaling = false;
    options.symbolic_verify = true;
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", add.windows[0], options);
    ASSERT_TRUE(result.ok) << result.note;
    EXPECT_GE(result.symbolic_refutations, 1);
    EXPECT_GE(result.cegis_iterations, 2);
    EXPECT_EQ(result.symbolic_verdict, "proved");
    // The survivor really is correct at full width.
    Rng rng(94);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<BitVector> inputs;
        for (int w : result.module.input_widths)
            inputs.push_back(BitVector::random(w, rng));
        EXPECT_EQ(result.module.evaluate(dict(), inputs),
                  evalHalide(add.windows[0], inputs));
    }
}

TEST(Cegis, SymbolicVerifyProvesTheFullWidthWinner)
{
    // Random verification on, symbolic verification as the final
    // gate: the saturating-add winner must carry a full-width
    // "proved" verdict with no budget-exhausted queries.
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel add = buildKernel("add", schedule);
    SynthesisOptions options;
    options.scaling = false;
    options.symbolic_verify = true;
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", add.windows[0], options);
    ASSERT_TRUE(result.ok) << result.note;
    EXPECT_EQ(result.module.insts[0].op.member(dict()).name,
              "_mm512_adds_epu8");
    EXPECT_EQ(result.symbolic_verdict, "proved") << result.note;
    EXPECT_EQ(result.symbolic_unknowns, 0);
}

TEST(Cache, HitsOnStructurallyIdenticalWindows)
{
    SynthesisCache cache;
    SynthesisOptions options;
    HydrideCompiler compiler(dict(), "x86", 512, options, &cache);
    Schedule schedule;
    schedule.vector_bits = 512;
    // matmul_b4 contains four structurally identical windows.
    Kernel kernel = buildKernel("matmul_b4", schedule);
    KernelCompilation compiled = compiler.compile(kernel);
    EXPECT_EQ(compiled.cache_hits, 3);
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 3);
}

TEST(Cache, SharedAcrossKernels)
{
    SynthesisCache cache;
    SynthesisOptions options;
    HydrideCompiler compiler(dict(), "x86", 512, options, &cache);
    Schedule schedule;
    schedule.vector_bits = 512;
    compiler.compile(buildKernel("matmul_b1", schedule));
    const int misses_before = cache.misses();
    // conv_nn's window only differs in operand order inside the
    // commutative add... actually it shares matmul's dot structure.
    KernelCompilation second =
        compiler.compile(buildKernel("matmul_bias", schedule));
    EXPECT_GT(second.cache_hits, 0);
    EXPECT_GE(cache.misses(), misses_before);
}

TEST(Compiler, FallsBackWhenSynthesisFails)
{
    // ARM has no 2-way dot product: the compiler must still produce a
    // correct program through macro expansion.
    SynthesisOptions options;
    options.timeout_seconds = 2.0;
    HydrideCompiler compiler(dict(), "arm", 128, options);
    WindowCompilation compiled =
        compiler.compileWindow(matmulWindow(128));
    EXPECT_FALSE(compiled.synthesized);
    EXPECT_FALSE(compiled.program.insts.empty());
}

TEST(Compiler, SplitsDeepWindows)
{
    SynthesisOptions options;
    options.timeout_seconds = 2.0;
    options.window_depth = 4;
    HydrideCompiler compiler(dict(), "hvx", 1024, options);
    Schedule schedule;
    schedule.vector_bits = 1024;
    Kernel gauss = buildKernel("gaussian3x3", schedule);
    KernelCompilation compiled = compiler.compile(gauss);
    EXPECT_GT(compiled.windows.size(), gauss.windows.size());
    EXPECT_EQ(compiled.pieces.size(), compiled.windows.size());
}

TEST(SplitWindow, PiecesComposeToTheOriginal)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel gauss = buildKernel("gaussian5x5", schedule);
    const HExprPtr &window = gauss.windows[1];
    const int base = halideInputCount(window);
    std::vector<HExprPtr> pieces = splitWindow(window, 3, base);
    ASSERT_GT(pieces.size(), 1u);

    Rng rng(93);
    // Original inputs.
    std::vector<BitVector> pool(base, BitVector(1));
    std::vector<const HExpr *> stack = {window.get()};
    std::vector<int> widths(base, 16);
    while (!stack.empty()) {
        const HExpr *node = stack.back();
        stack.pop_back();
        if (node->op == HOp::Input)
            widths[node->imm] = node->totalWidth();
        for (const auto &kid : node->kids)
            stack.push_back(kid.get());
    }
    for (int i = 0; i < base; ++i)
        pool[i] = BitVector::random(widths[i], rng);
    // Evaluate pieces in order, feeding outputs forward.
    for (size_t piece = 0; piece + 1 < pieces.size(); ++piece)
        pool.push_back(evalHalide(pieces[piece], pool));
    EXPECT_EQ(evalHalide(pieces.back(), pool),
              evalHalide(window, std::vector<BitVector>(
                                     pool.begin(), pool.begin() + base)));
}

} // namespace
} // namespace hydride
