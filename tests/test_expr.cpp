/**
 * @file
 * Unit tests for Hydride IR expression construction, evaluation,
 * simplification and rewriting.
 */
#include <gtest/gtest.h>

#include "hir/expr.h"
#include "hir/printer.h"
#include "support/rng.h"

namespace hydride {
namespace {

TEST(Expr, IntEvaluation)
{
    EvalEnv env;
    env.loop_i = 3;
    env.loop_j = 5;
    EXPECT_EQ(evalInt(intConst(7), env), 7);
    EXPECT_EQ(evalInt(loopVar(0), env), 3);
    EXPECT_EQ(evalInt(loopVar(1), env), 5);
    EXPECT_EQ(evalInt(addI(loopVar(0), intConst(10)), env), 13);
    EXPECT_EQ(evalInt(mulI(loopVar(1), intConst(4)), env), 20);
    EXPECT_EQ(evalInt(subI(intConst(2), intConst(9)), env), -7);
    EXPECT_EQ(evalInt(divI(intConst(17), intConst(5)), env), 3);
    EXPECT_EQ(evalInt(modI(intConst(17), intConst(5)), env), 2);
    EXPECT_EQ(evalInt(intBin(IntBinOp::Min, intConst(2), intConst(9)), env), 2);
    EXPECT_EQ(evalInt(intBin(IntBinOp::Max, intConst(2), intConst(9)), env), 9);
}

TEST(Expr, ParamEvaluation)
{
    std::vector<int64_t> params = {16, 512};
    EvalEnv env;
    env.param_values = &params;
    EXPECT_EQ(evalInt(param(0, "ew"), env), 16);
    EXPECT_EQ(evalInt(param(1, "vw"), env), 512);
    EXPECT_EQ(evalInt(divI(param(1, "vw"), param(0, "ew")), env), 32);
}

TEST(Expr, NamedVarEvaluation)
{
    EvalEnv env;
    env.named["k"] = 11;
    EXPECT_EQ(evalInt(namedVar("k"), env), 11);
}

TEST(Expr, BVArgAndExtract)
{
    std::vector<BitVector> args = {BitVector::fromUint(32, 0xAABBCCDD)};
    EvalEnv env;
    env.bv_args = &args;
    EXPECT_EQ(evalBV(argBV(0), env), args[0]);
    ExprPtr byte1 = extract(argBV(0), intConst(8), intConst(8));
    EXPECT_EQ(evalBV(byte1, env).toUint64(), 0xCCu);
}

TEST(Expr, BVConstUsesIntExprs)
{
    EvalEnv env;
    env.loop_j = 3;
    ExprPtr c = bvConst(intConst(8), modI(loopVar(1), intConst(2)));
    EXPECT_EQ(evalBV(c, env).toUint64(), 1u);
    ExprPtr negative = bvConst(intConst(8), intConst(-1));
    EXPECT_EQ(evalBV(negative, env), BitVector::allOnes(8));
}

TEST(Expr, BinaryOpsEvaluate)
{
    std::vector<BitVector> args = {BitVector::fromUint(8, 200),
                                   BitVector::fromUint(8, 100)};
    EvalEnv env;
    env.bv_args = &args;
    EXPECT_EQ(evalBV(bvBin(BVBinOp::Add, argBV(0), argBV(1)), env).toUint64(),
              44u);
    EXPECT_EQ(
        evalBV(bvBin(BVBinOp::AddSatU, argBV(0), argBV(1)), env).toUint64(),
        255u);
    EXPECT_EQ(evalBV(bvBin(BVBinOp::MaxU, argBV(0), argBV(1)), env).toUint64(),
              200u);
    EXPECT_EQ(evalBV(bvBin(BVBinOp::MinS, argBV(0), argBV(1)), env).toInt64(),
              -56);
}

TEST(Expr, ShiftByBVOperandClamps)
{
    std::vector<BitVector> args = {BitVector::fromUint(8, 0x81),
                                   BitVector::fromUint(8, 200)};
    EvalEnv env;
    env.bv_args = &args;
    // Shift amount 200 >= width: everything shifted out.
    EXPECT_TRUE(
        evalBV(bvBin(BVBinOp::Shl, argBV(0), argBV(1)), env).isZero());
    EXPECT_EQ(evalBV(bvBin(BVBinOp::AShr, argBV(0), argBV(1)), env),
              BitVector::allOnes(8));
}

TEST(Expr, CastsEvaluate)
{
    std::vector<BitVector> args = {BitVector::fromInt(8, -2)};
    EvalEnv env;
    env.bv_args = &args;
    EXPECT_EQ(evalBV(bvCast(BVCastOp::SExt, argBV(0), intConst(16)), env)
                  .toInt64(),
              -2);
    EXPECT_EQ(evalBV(bvCast(BVCastOp::ZExt, argBV(0), intConst(16)), env)
                  .toUint64(),
              0xFEu);
    EXPECT_EQ(evalBV(bvCast(BVCastOp::Trunc, argBV(0), intConst(4)), env)
                  .toUint64(),
              0xEu);
}

TEST(Expr, CmpAndSelect)
{
    std::vector<BitVector> args = {BitVector::fromInt(8, -1),
                                   BitVector::fromUint(8, 1)};
    EvalEnv env;
    env.bv_args = &args;
    ExprPtr is_less = bvCmp(BVCmpOp::Slt, argBV(0), argBV(1));
    EXPECT_EQ(evalBV(is_less, env).toUint64(), 1u);
    ExprPtr chosen = select(is_less, argBV(1), argBV(0));
    EXPECT_EQ(evalBV(chosen, env), args[1]);
    ExprPtr is_less_u = bvCmp(BVCmpOp::Ult, argBV(0), argBV(1));
    EXPECT_EQ(evalBV(select(is_less_u, argBV(1), argBV(0)), env), args[0]);
}

TEST(Expr, ConcatEvaluates)
{
    std::vector<BitVector> args = {BitVector::fromUint(8, 0xAB),
                                   BitVector::fromUint(8, 0xCD)};
    EvalEnv env;
    env.bv_args = &args;
    EXPECT_EQ(evalBV(concat(argBV(0), argBV(1)), env).toUint64(), 0xABCDu);
}

TEST(Expr, StructuralEqualityAndHash)
{
    ExprPtr a = bvBin(BVBinOp::Add, argBV(0), argBV(1));
    ExprPtr b = bvBin(BVBinOp::Add, argBV(0), argBV(1));
    ExprPtr c = bvBin(BVBinOp::Add, argBV(1), argBV(0));
    EXPECT_TRUE(Expr::equals(a, b));
    EXPECT_FALSE(Expr::equals(a, c));
    EXPECT_EQ(Expr::hashOf(a), Expr::hashOf(b));
    EXPECT_NE(Expr::hashOf(a), Expr::hashOf(c));
}

TEST(Expr, SimplifyFoldsConstants)
{
    ExprPtr folded = simplify(addI(intConst(2), mulI(intConst(3), intConst(4))));
    ASSERT_EQ(folded->kind, ExprKind::IntConst);
    EXPECT_EQ(folded->value, 14);
}

TEST(Expr, SimplifyIdentities)
{
    ExprPtr x = loopVar(0);
    EXPECT_TRUE(Expr::equals(simplify(addI(x, intConst(0))), x));
    EXPECT_TRUE(Expr::equals(simplify(mulI(x, intConst(1))), x));
    ExprPtr zero = simplify(mulI(x, intConst(0)));
    ASSERT_EQ(zero->kind, ExprKind::IntConst);
    EXPECT_EQ(zero->value, 0);
    EXPECT_TRUE(Expr::equals(simplify(subI(x, intConst(0))), x));
    EXPECT_TRUE(Expr::equals(simplify(divI(x, intConst(1))), x));
    ExprPtr mod1 = simplify(modI(x, intConst(1)));
    ASSERT_EQ(mod1->kind, ExprKind::IntConst);
    EXPECT_EQ(mod1->value, 0);
}

TEST(Expr, SimplifyDoesNotReorderOperands)
{
    // Structural parallelism across unrolled iterations depends on
    // simplify() never swapping commutative operands.
    ExprPtr e = bvBin(BVBinOp::Add, argBV(1), argBV(0));
    EXPECT_TRUE(Expr::equals(simplify(e), e));
}

TEST(Expr, RewriteSubstitutes)
{
    ExprPtr body = addI(namedVar("x"), namedVar("y"));
    ExprPtr rewritten = rewrite(body, [](const ExprPtr &node) -> ExprPtr {
        if (node->kind == ExprKind::NamedVar && node->name == "x")
            return intConst(9);
        return nullptr;
    });
    EvalEnv env;
    env.named["y"] = 1;
    EXPECT_EQ(evalInt(rewritten, env), 10);
}

TEST(Expr, RewritePreservesSharingWhenUnchanged)
{
    ExprPtr body = addI(intConst(1), intConst(2));
    ExprPtr rewritten = rewrite(body, [](const ExprPtr &) { return ExprPtr(); });
    EXPECT_EQ(body.get(), rewritten.get());
}

TEST(Expr, SizeAndCollect)
{
    ExprPtr e = bvBin(BVBinOp::Mul, argBV(0),
                      bvCast(BVCastOp::SExt, argBV(1), intConst(16)));
    // Nodes: mul, arg0, sext, arg1, and the Int width operand.
    EXPECT_EQ(Expr::sizeOf(e), 5);
    std::vector<ExprPtr> nodes;
    collectNodes(e, nodes);
    EXPECT_EQ(nodes.size(), 5u);
}

TEST(Expr, PrinterRendersReadably)
{
    ExprPtr e = bvBin(BVBinOp::Add, argBV(0),
                      extract(argBV(1), mulI(loopVar(0), intConst(16)),
                              intConst(16)));
    const std::string text = printExpr(e);
    EXPECT_NE(text.find("bvadd"), std::string::npos);
    EXPECT_NE(text.find("%arg0"), std::string::npos);
    EXPECT_NE(text.find("extract"), std::string::npos);
    EXPECT_NE(text.find("%i"), std::string::npos);
}

class BVBinOpLaws : public ::testing::TestWithParam<BVBinOp>
{
};

TEST_P(BVBinOpLaws, CommutativeOpsCommute)
{
    const BVBinOp op = GetParam();
    Rng rng(777);
    for (int width : {8, 16, 33}) {
        for (int trial = 0; trial < 10; ++trial) {
            std::vector<BitVector> args = {BitVector::random(width, rng),
                                           BitVector::random(width, rng)};
            EvalEnv env;
            env.bv_args = &args;
            BitVector ab = evalBV(bvBin(op, argBV(0), argBV(1)), env);
            BitVector ba = evalBV(bvBin(op, argBV(1), argBV(0)), env);
            EXPECT_EQ(ab, ba) << bvBinOpName(op) << " width " << width;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Commutative, BVBinOpLaws,
    ::testing::Values(BVBinOp::Add, BVBinOp::Mul, BVBinOp::And, BVBinOp::Or,
                      BVBinOp::Xor, BVBinOp::AddSatS, BVBinOp::AddSatU,
                      BVBinOp::MinS, BVBinOp::MaxS, BVBinOp::MinU,
                      BVBinOp::MaxU, BVBinOp::AvgU, BVBinOp::AvgS));

} // namespace
} // namespace hydride
