/**
 * @file
 * Focused tests for the macro expander's harder lowering paths:
 * chunk splitting across register boundaries, widening/narrowing
 * cascades, the clamp fallback for saturating narrows, the
 * multiply-high decomposition, reversed-operand packs, pairwise
 * reduction strategies, and the instruction allow-list hook.
 */
#include <gtest/gtest.h>

#include "codegen/macro_expand.h"
#include "specs/spec_db.h"
#include "support/rng.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

/** Expand and differentially validate one window. */
void
expectLowersCorrectly(MacroExpander &expander, const HExprPtr &window,
                      uint64_t seed)
{
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    Rng rng(seed);
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<BitVector> inputs;
        for (int width : result.program.input_widths)
            inputs.push_back(BitVector::random(std::max(width, 1), rng));
        EXPECT_EQ(result.program.evaluate(dict(), inputs),
                  evalHalide(window, inputs));
    }
}

TEST(MacroExpand, WideningCastSplitsAcrossRegisters)
{
    MacroExpander expander(dict(), "x86", 512);
    // u8 -> i16 doubles the footprint: 512 -> 2x512.
    HExprPtr window = hCast(hInput(0, 8, 64), 16, false);
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.results.size(), 2u);
    expectLowersCorrectly(expander, window, 11);
}

TEST(MacroExpand, NarrowingUsesPairPacks)
{
    MacroExpander expander(dict(), "x86", 512);
    HExprPtr window = hSatNarrow(
        hConcat(hInput(0, 16, 32), hInput(1, 16, 32)), 8, false);
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    bool used_pack = false;
    for (const auto &inst : result.program.insts)
        used_pack |= inst.inst_name.find("packus") != std::string::npos;
    EXPECT_TRUE(used_pack);
    expectLowersCorrectly(expander, window, 12);
}

TEST(MacroExpand, HvxPackUsesReversedOperands)
{
    // HVX vpacke's Vv operand supplies the low half; the expander
    // must still produce [trunc(lo) | trunc(hi)].
    MacroExpander expander(dict(), "hvx", 1024);
    HExprPtr window =
        hCast(hConcat(hInput(0, 16, 64), hInput(1, 16, 64)), 8, true);
    expectLowersCorrectly(expander, window, 13);
}

TEST(MacroExpand, ClampFallbackWhenSaturatingPackIsBanned)
{
    ExpanderOptions options;
    options.allow = [](const std::string &name) {
        return !(name.find("_sat") != std::string::npos &&
                 name.rfind("vpack", 0) == 0);
    };
    MacroExpander expander(dict(), "hvx", 1024, options);
    HExprPtr window = hSatNarrow(
        hConcat(hInput(0, 16, 64), hInput(1, 16, 64)), 8, false);
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    // The banned fused pack must not appear; min/max clamping must.
    bool used_minmax = false;
    for (const auto &inst : result.program.insts) {
        EXPECT_TRUE(options.allow(inst.inst_name)) << inst.inst_name;
        used_minmax |= inst.inst_name.find("vmin") != std::string::npos ||
                       inst.inst_name.find("vmax") != std::string::npos;
    }
    EXPECT_TRUE(used_minmax);
    expectLowersCorrectly(expander, window, 14);
}

TEST(MacroExpand, MulHiDecomposesOnArm)
{
    // ARM has no vector multiply-high; the expander widens,
    // multiplies, shifts and narrows.
    MacroExpander expander(dict(), "arm", 128);
    HExprPtr window =
        hBin(HOp::MulHiS, hInput(0, 16, 8), hInput(1, 16, 8));
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.program.insts.size(), 4u);
    expectLowersCorrectly(expander, window, 15);
}

TEST(MacroExpand, ReduceAddViaHaddOnX86AndDealOnHvx)
{
    HExprPtr window_x86 = hReduceAdd(
        hCast(hInput(0, 16, 32), 32, true), 2);
    MacroExpander x86(dict(), "x86", 512);
    ExpandResult rx = x86.expand(window_x86);
    ASSERT_TRUE(rx.ok) << rx.error;
    bool used_hadd = false;
    for (const auto &inst : rx.program.insts)
        used_hadd |= inst.inst_name.find("hadd") != std::string::npos;
    EXPECT_TRUE(used_hadd);
    expectLowersCorrectly(x86, window_x86, 16);

    HExprPtr window_hvx = hReduceAdd(
        hCast(hInput(0, 16, 64), 32, true), 2);
    MacroExpander hvx(dict(), "hvx", 1024);
    ExpandResult rh = hvx.expand(window_hvx);
    ASSERT_TRUE(rh.ok) << rh.error;
    bool used_deal = false;
    for (const auto &inst : rh.program.insts)
        used_deal |= inst.inst_name.find("vdeal") != std::string::npos;
    EXPECT_TRUE(used_deal);
    expectLowersCorrectly(hvx, window_hvx, 17);
}

TEST(MacroExpand, ConstantsAreHoistedNotComputed)
{
    MacroExpander expander(dict(), "x86", 512);
    HExprPtr window = hBin(HOp::MaxS, hInput(0, 32, 16),
                           hConst(0, 32, 16)); // relu
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.insts.size(), 1u); // just the max
    EXPECT_EQ(result.program.constants.size(), 1u);
    expectLowersCorrectly(expander, window, 18);
}

TEST(MacroExpand, CseReusesSharedSubtrees)
{
    HExprPtr shared = hBin(HOp::Add, hInput(0, 16, 32),
                           hInput(1, 16, 32));
    HExprPtr window = hBin(HOp::Mul, shared, shared);
    MacroExpander expander(dict(), "x86", 512);
    ExpandResult result = expander.expand(window);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.program.insts.size(), 2u); // one add + one mul
    expectLowersCorrectly(expander, window, 19);
}

TEST(MacroExpand, AllowListFiltersInstructionChoice)
{
    ExpanderOptions options;
    options.allow = [](const std::string &name) {
        return name.find("avg") == std::string::npos;
    };
    MacroExpander expander(dict(), "hvx", 1024, options);
    HExprPtr window = hBin(HOp::AvgU, hInput(0, 8, 128),
                           hInput(1, 8, 128));
    ExpandResult result = expander.expand(window);
    // With every averaging instruction banned there is no direct
    // lowering for AvgU; the expander reports failure (which is what
    // makes the Rake backend fail on average_pool).
    EXPECT_FALSE(result.ok);
}

} // namespace
} // namespace hydride
