/**
 * @file
 * Tests for the comparison backends (production-Halide-style,
 * LLVM-style, Rake-like, Hydride), the macro expander's functional
 * correctness, and the performance simulator.
 */
#include <gtest/gtest.h>

#include "backends/simulator.h"
#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/rng.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

Kernel
kernelFor(const std::string &name, int vector_bits)
{
    Schedule schedule;
    schedule.vector_bits = vector_bits;
    return buildKernel(name, schedule);
}

TEST(Targets, ThreePaperTargets)
{
    ASSERT_EQ(evaluationTargets().size(), 3u);
    EXPECT_EQ(evaluationTargets()[0].isa, "x86");
    EXPECT_EQ(evaluationTargets()[1].isa, "hvx");
    EXPECT_EQ(evaluationTargets()[2].isa, "arm");
}

TEST(MacroExpander, EveryKernelExpandsAndValidatesOnEveryTarget)
{
    for (const auto &target : evaluationTargets()) {
        LlvmStyleBackend backend(dict(), target.isa, target.vector_bits);
        for (const auto &name : kernelNames()) {
            Kernel kernel = kernelFor(name, target.vector_bits);
            CompiledKernel compiled;
            ASSERT_TRUE(backend.compile(kernel, compiled))
                << target.isa << "/" << name;
            EXPECT_TRUE(validateCompiled(dict(), compiled, kernel))
                << target.isa << "/" << name;
        }
    }
}

TEST(HalideProdBackend, UsesMaddOnX86Matmul)
{
    HalideProdBackend backend(dict(), "x86", 512);
    Kernel kernel = kernelFor("matmul_b1", 512);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(kernel, compiled));
    ASSERT_EQ(compiled.programs.size(), 1u);
    ASSERT_EQ(compiled.programs[0].insts.size(), 2u);
    EXPECT_EQ(compiled.programs[0].insts[0].inst_name,
              "_mm512_madd_epi16");
    EXPECT_TRUE(validateCompiled(dict(), compiled, kernel));
}

TEST(HalideProdBackend, HvxMatmulMissesTheAccumulatingFusion)
{
    // §6.3 / Table 3 row 1: the production HVX backend reaches vdmpy
    // but not the accumulating fusion Hydride synthesizes, so it
    // emits a separate wide add.
    HalideProdBackend backend(dict(), "hvx", 1024);
    Kernel kernel = kernelFor("matmul_b1", 1024);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(kernel, compiled));
    ASSERT_EQ(compiled.programs[0].insts.size(), 2u);
    EXPECT_EQ(compiled.programs[0].insts[0].inst_name, "vdmpyh_128B");
    EXPECT_EQ(compiled.programs[0].insts[0].inst_name.find("_acc"),
              std::string::npos);
    EXPECT_TRUE(validateCompiled(dict(), compiled, kernel));
}

TEST(HalideProdBackend, SpecialCasesGaussian7x7OnHvx)
{
    HalideProdBackend backend(dict(), "hvx", 1024);
    Kernel kernel = kernelFor("gaussian7x7", 1024);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(kernel, compiled));
    EXPECT_TRUE(compiled.cost_model_only);
    // The fused vrmpy sequence is much cheaper than plain expansion.
    LlvmStyleBackend llvm(dict(), "hvx", 1024);
    CompiledKernel plain;
    ASSERT_TRUE(llvm.compile(kernel, plain));
    EXPECT_LT(compiled.staticCost(), plain.staticCost());
}

TEST(RakeBackend, FailsOutsideItsSupportedSet)
{
    RakeBackend backend(dict(), "hvx", 1024);
    CompiledKernel compiled;
    EXPECT_FALSE(backend.compile(kernelFor("gaussian3x3", 1024), compiled));
    EXPECT_TRUE(backend.compile(kernelFor("add", 1024), compiled));
    EXPECT_TRUE(validateCompiled(dict(), compiled,
                                 kernelFor("add", 1024)));

    RakeBackend arm_backend(dict(), "arm", 128);
    EXPECT_FALSE(arm_backend.compile(kernelFor("add", 128), compiled));
}

TEST(RakeBackend, AvoidsTheInstructionsRakeLacks)
{
    RakeBackend backend(dict(), "hvx", 1024);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(kernelFor("matmul_b1", 1024), compiled));
    for (const auto &program : compiled.programs) {
        for (const auto &inst : program.insts) {
            EXPECT_EQ(inst.inst_name.find("_acc"), std::string::npos);
            EXPECT_EQ(inst.inst_name.find("vrmpy"), std::string::npos);
        }
    }
    EXPECT_TRUE(
        validateCompiled(dict(), compiled, kernelFor("matmul_b1", 1024)));
}

TEST(HydrideBackend, BeatsLlvmStyleOnMatmul)
{
    SynthesisOptions options;
    options.timeout_seconds = 5.0;
    HydrideBackend hydride(dict(), "x86", 512, options);
    LlvmStyleBackend llvm(dict(), "x86", 512);
    Kernel kernel = kernelFor("matmul_b1", 512);
    CompiledKernel h;
    CompiledKernel l;
    ASSERT_TRUE(hydride.compile(kernel, h));
    ASSERT_TRUE(llvm.compile(kernel, l));
    EXPECT_TRUE(validateCompiled(dict(), h, kernel));
    EXPECT_LT(h.staticCost(), l.staticCost());
    EXPECT_LT(simulateCycles(h, kernel), simulateCycles(l, kernel));
}

TEST(HydrideBackend, SplitWindowsStillValidate)
{
    SynthesisOptions options;
    options.timeout_seconds = 3.0;
    options.window_depth = 4;
    HydrideBackend hydride(dict(), "hvx", 1024, options);
    Kernel kernel = kernelFor("gaussian5x5", 1024);
    CompiledKernel compiled;
    ASSERT_TRUE(hydride.compile(kernel, compiled));
    EXPECT_GE(compiled.programs.size(), kernel.windows.size());
    EXPECT_TRUE(validateCompiled(dict(), compiled, kernel));
}

TEST(Simulator, CyclesScaleWithIterationsAndCost)
{
    LlvmStyleBackend backend(dict(), "x86", 512);
    Kernel small = kernelFor("add", 512);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(small, compiled));
    const double cycles = simulateCycles(compiled, small);
    EXPECT_GT(cycles, 0.0);
    Kernel tiled = small;
    tiled.iterations *= 2;
    EXPECT_NEAR(simulateCycles(compiled, tiled), 2 * cycles, 1e-6);

    SimConfig pricier;
    pricier.load_cost = 10.0;
    EXPECT_GT(simulateCycles(compiled, small, pricier), cycles);
}

TEST(Simulator, ValidationCatchesWrongPrograms)
{
    LlvmStyleBackend backend(dict(), "x86", 512);
    Kernel kernel = kernelFor("add", 512);
    CompiledKernel compiled;
    ASSERT_TRUE(backend.compile(kernel, compiled));
    ASSERT_TRUE(validateCompiled(dict(), compiled, kernel));
    // Corrupt the program: swap in a different window.
    CompiledKernel broken = compiled;
    broken.windows[0] = kernelFor("max_pool", 512).windows[0];
    EXPECT_FALSE(validateCompiled(dict(), broken, kernel));
}

} // namespace
} // namespace hydride
