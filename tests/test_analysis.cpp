/**
 * @file
 * Tests for the static verifier (src/analysis/): per-pass unit tests
 * with hand-built good/bad semantics, cross-table checks over
 * hand-built dictionaries, seeded-mutation coverage, source-location
 * threading from the parsers, and the CLI driver.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "analysis/driver.h"
#include "analysis/expr_check.h"
#include "analysis/inst_verify.h"
#include "analysis/mutate.h"
#include "analysis/symbolic/equiv.h"
#include "analysis/verifier.h"
#include "autollvm/dict.h"
#include "codegen/lowering.h"
#include "specs/spec_db.h"

namespace hydride {
namespace analysis {
namespace {

/** Element-wise vector add, the canonical well-formed instruction:
 *  params p0 = element width (16), p1 = element count (8). */
CanonicalSemantics
makeGoodAdd()
{
    CanonicalSemantics sem;
    sem.name = "good_add";
    sem.isa = "test";
    ExprPtr ew = param(0, "p0");
    ExprPtr count = param(1, "p1");
    ExprPtr total = mulI(ew, count);
    sem.bv_args = {{"a", total}, {"b", total}};
    sem.params = {{"p0", 16, ParamRole::ElemWidth},
                  {"p1", 8, ParamRole::Count}};
    sem.mode = TemplateMode::Uniform;
    sem.outer_count = count;
    sem.inner_count = intConst(1);
    sem.elem_width = ew;
    ExprPtr low = mulI(loopVar(0), ew);
    sem.templates = {bvBin(BVBinOp::Add, extract(argBV(0), low, ew),
                           extract(argBV(1), low, ew))};
    return sem;
}

/** Run the per-instruction passes and return the report. */
DiagnosticReport
check(const CanonicalSemantics &sem, unsigned rules = kAllInstRules,
      InstVerifyOptions options = {})
{
    DiagnosticReport report;
    verifyInstruction(sem, rules, options, report);
    return report;
}

bool
hasRule(const DiagnosticReport &report, const std::string &rule)
{
    for (const Diagnostic &d : report.diags())
        if (d.rule == rule)
            return true;
    return false;
}

// ---- Well-formedness (WF) --------------------------------------------------

TEST(WellFormed, CleanInstructionHasNoFindings)
{
    const DiagnosticReport report = check(makeGoodAdd());
    EXPECT_TRUE(report.diags().empty()) << report.renderText();
}

TEST(WellFormed, OperandWidthMismatchIsWF01)
{
    CanonicalSemantics sem = makeGoodAdd();
    // Add a 16-bit extract to an 8-bit constant.
    sem.templates = {bvBin(BVBinOp::Add,
                           extract(argBV(0), intConst(0), intConst(16)),
                           bvConst(intConst(8), intConst(1)))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "WF01")) << report.renderText();
    EXPECT_TRUE(report.hasErrors());
}

TEST(WellFormed, OutOfBoundsExtractIsWF02)
{
    CanonicalSemantics sem = makeGoodAdd();
    // Last lane reads [127+16, 127+32) of a 128-bit argument.
    ExprPtr low = addI(mulI(loopVar(0), param(0, "p0")), intConst(16));
    sem.templates = {extract(argBV(0), low, param(0, "p0"))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "WF02")) << report.renderText();
}

TEST(WellFormed, ZeroElementWidthIsWF03)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.elem_width = intConst(0);
    EXPECT_TRUE(hasRule(check(sem), "WF03"));
}

TEST(WellFormed, WideSelectConditionIsWF04)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    ExprPtr elem = extract(argBV(0), low, param(0, "p0"));
    sem.templates = {select(elem, elem, elem)}; // 16-bit condition.
    EXPECT_TRUE(hasRule(check(sem), "WF04"));
}

TEST(WellFormed, NarrowingZExtIsWF05)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    sem.templates = {bvCast(BVCastOp::ZExt,
                            extract(argBV(0), low, param(0, "p0")),
                            intConst(8))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "WF05"));
}

TEST(WellFormed, TemplateWidthMismatchIsWF07)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.elem_width = mulI(param(0, "p0"), intConst(2));
    // outer * elem_width now disagrees with what the template makes.
    EXPECT_TRUE(hasRule(check(sem), "WF07"));
}

TEST(WellFormed, OutputBeyondBitVectorLimitIsWF08)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.params[1].default_value = 4096; // 16 * 4096 bits.
    EXPECT_TRUE(hasRule(check(sem), "WF08"));
}

TEST(WellFormed, BadArgumentIndexIsWF09)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    sem.templates = {extract(argBV(7), low, param(0, "p0"))};
    EXPECT_TRUE(hasRule(check(sem), "WF09"));
}

// ---- Undefined behaviour (UB) ----------------------------------------------

TEST(Undefined, FullWidthShiftIsUB01)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    ExprPtr elem = extract(argBV(0), low, param(0, "p0"));
    sem.templates = {
        bvBin(BVBinOp::Shl, elem, bvConst(param(0, "p0"), intConst(16)))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "UB01")) << report.renderText();
    // The abstract pass proves the trap fires on every lane for every
    // input, which promotes UB01 to an error.
    EXPECT_TRUE(report.hasErrors()) << report.renderText();
}

TEST(Undefined, PartialLaneShiftIsUB01Warning)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    ExprPtr elem = extract(argBV(0), low, param(0, "p0"));
    // Shift amount 4*i: lanes 4..7 shift a 16-bit value by >= 16, the
    // rest are fine, so UB01 must stay a warning.
    sem.templates = {bvBin(
        BVBinOp::Shl, elem,
        bvConst(param(0, "p0"), mulI(intConst(4), loopVar(0))))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "UB01")) << report.renderText();
    EXPECT_FALSE(report.hasErrors()) << report.renderText();
}

TEST(Undefined, LaneCapCannotSkipTrappingLanes)
{
    CanonicalSemantics sem = makeGoodAdd();
    // Division by (i - 5) traps only on lane 5 — beyond a cap of 2
    // and not the always-checked last lane, so the old capped
    // enumeration would have missed it.
    ExprPtr ew = param(0, "p0");
    ExprPtr poison =
        mulI(intConst(0), divI(intConst(1), subI(loopVar(0), intConst(5))));
    ExprPtr low = addI(mulI(loopVar(0), ew), poison);
    sem.templates = {extract(argBV(0), low, ew)};
    InstVerifyOptions options;
    options.max_outer_iters = 2;
    const DiagnosticReport report = check(sem, kAllInstRules, options);
    EXPECT_TRUE(hasRule(report, "UB02")) << report.renderText();
}

TEST(Undefined, EveryLaneZeroDivisorIsUB04Error)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    ExprPtr elem = extract(argBV(0), low, param(0, "p0"));
    sem.templates = {bvBin(BVBinOp::UDiv, elem,
                           bvConst(param(0, "p0"), intConst(0)))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "UB04")) << report.renderText();
    EXPECT_TRUE(report.hasErrors()) << report.renderText();
}

TEST(Undefined, ConstantZeroDivisionIsUB02)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.inner_count = divI(intConst(4), intConst(0));
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "UB02"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(Undefined, SignedOverflowIsUB03)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr big = intConst(INT64_MAX / 2);
    ExprPtr low = mulI(big, mulI(big, loopVar(0)));
    sem.templates = {extract(argBV(0), low, param(0, "p0"))};
    EXPECT_TRUE(hasRule(check(sem), "UB03"));
}

TEST(Undefined, CheckedEvalIntFlagsOverflowAndDivZero)
{
    CheckEnv env;
    CheckedInt r = checkedEvalInt(
        mulI(intConst(INT64_MAX), intConst(2)), env);
    EXPECT_EQ(r.status, CheckedInt::Status::Overflow);
    r = checkedEvalInt(modI(intConst(5), intConst(0)), env);
    EXPECT_EQ(r.status, CheckedInt::Status::DivZero);
    // Unknown immediates stay unknown, never errors.
    r = checkedEvalInt(divI(namedVar("imm"), intConst(4)), env);
    EXPECT_EQ(r.status, CheckedInt::Status::Unknown);
}

// ---- Range analysis (RA) ---------------------------------------------------

TEST(RangeAnalysis, LosslessSatNarrowIsRA01)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr ew = param(0, "p0");
    ExprPtr low = mulI(loopVar(0), ew);
    ExprPtr elem = extract(argBV(0), low, ew);
    // zext to 24 bits then saturating-narrow back to 16: the source
    // range [0, 0xFFFF] always fits, so the saturation is a no-op.
    sem.templates = {bvCast(
        BVCastOp::SatNarrowU,
        bvCast(BVCastOp::ZExt, elem, intConst(24)), intConst(16))};
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "RA01")) << report.renderText();
    EXPECT_FALSE(report.hasErrors()) << report.renderText();
}

TEST(RangeAnalysis, ConstantConditionSelectIsRA02)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr ew = param(0, "p0");
    ExprPtr low = mulI(loopVar(0), ew);
    ExprPtr elem = extract(argBV(0), low, ew);
    ExprPtr cond = bvCmp(BVCmpOp::Ult, bvConst(intConst(8), intConst(0)),
                         bvConst(intConst(8), intConst(1)));
    sem.templates = {select(cond, elem, extract(argBV(1), low, ew))};
    EXPECT_TRUE(hasRule(check(sem), "RA02"));
}

TEST(RangeAnalysis, ProvablyUnsaturatedAddIsRA03)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr ew = param(0, "p0");
    ExprPtr low = mulI(loopVar(0), ew);
    ExprPtr elem = extract(argBV(0), low, ew);
    // (elem & 0xFF) +sat 1 peaks at 0x100, far below the 16-bit
    // saturation point.
    sem.templates = {
        bvBin(BVBinOp::AddSatU,
              bvBin(BVBinOp::And, elem, bvConst(ew, intConst(255))),
              bvConst(ew, intConst(1)))};
    EXPECT_TRUE(hasRule(check(sem), "RA03"));
}

TEST(RangeAnalysis, RulesAreGatedBehindKRange)
{
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr ew = param(0, "p0");
    ExprPtr low = mulI(loopVar(0), ew);
    ExprPtr elem = extract(argBV(0), low, ew);
    sem.templates = {bvCast(
        BVCastOp::SatNarrowU,
        bvCast(BVCastOp::ZExt, elem, intConst(24)), intConst(16))};
    const DiagnosticReport report =
        check(sem, kWellFormed | kUndefined | kDeadCode);
    EXPECT_FALSE(hasRule(report, "RA01")) << report.renderText();
}

// ---- Dead code (DC) --------------------------------------------------------

TEST(DeadCode, UnreadArgumentIsDC01)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.bv_args.push_back({"ghost", intConst(32)});
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "DC01"));
    EXPECT_FALSE(report.hasErrors()); // DC01 is a warning.
}

TEST(DeadCode, UnreferencedParamIsDC02)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.params.push_back({"p2", 3, ParamRole::Value});
    EXPECT_TRUE(hasRule(check(sem), "DC02"));
}

TEST(DeadCode, UnreferencedImmediateIsDC03)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.int_args.push_back("imm8");
    EXPECT_TRUE(hasRule(check(sem), "DC03"));
}

TEST(DeadCode, UnreachableTemplateIsDC04Warning)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.templates.push_back(sem.templates[0]);
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "DC04"));
    EXPECT_FALSE(report.hasErrors());
}

TEST(DeadCode, UnderProvisionedTemplateTableIsDC04Error)
{
    CanonicalSemantics sem = makeGoodAdd();
    // ByInner with inner_count 2 but only one template: evaluation
    // would index past the table.
    sem.mode = TemplateMode::ByInner;
    sem.inner_count = intConst(2);
    sem.outer_count = intConst(4);
    const DiagnosticReport report = check(sem);
    EXPECT_TRUE(hasRule(report, "DC04"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(DeadCode, PedanticPartialReadIsDC05)
{
    // Only the low half of each element is read.
    CanonicalSemantics sem = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    sem.templates = {bvCast(
        BVCastOp::ZExt,
        extract(argBV(0), low, divI(param(0, "p0"), intConst(2))),
        param(0, "p0"))};
    InstVerifyOptions pedantic;
    pedantic.pedantic = true;
    const DiagnosticReport report = check(sem, kAllInstRules, pedantic);
    EXPECT_TRUE(hasRule(report, "DC05")) << report.renderText();
    // DC05 requires opting in.
    EXPECT_FALSE(hasRule(check(sem), "DC05"));
}

// ---- Diagnostics plumbing --------------------------------------------------

TEST(Diagnostics, WaiversSuppressMatchingFindings)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.bv_args.push_back({"ghost", intConst(32)});
    DiagnosticReport report;
    report.setWaivers({{"DC01", "good_"}});
    verifyInstruction(sem, kAllInstRules, {}, report);
    EXPECT_FALSE(hasRule(report, "DC01"));
    EXPECT_EQ(report.suppressed(), 1);
    // A non-matching instruction substring leaves the finding alone.
    DiagnosticReport other;
    other.setWaivers({{"DC01", "some_other_inst"}});
    verifyInstruction(sem, kAllInstRules, {}, other);
    EXPECT_TRUE(hasRule(other, "DC01"));
}

TEST(Diagnostics, JsonRenderingIsWellFormed)
{
    CanonicalSemantics sem = makeGoodAdd();
    sem.elem_width = intConst(0);
    DiagnosticReport report;
    verifyInstruction(sem, kAllInstRules, {}, report);
    const std::string json = report.renderJson();
    EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"WF03\""), std::string::npos);
    EXPECT_NE(json.find("\"summary\":"), std::string::npos);
}

TEST(Diagnostics, ExtrasAreSplicedIntoJson)
{
    DiagnosticReport report;
    report.setExtra("equiv", "{\"proved\":3,\"unknown\":1}");
    const std::string json = report.renderJson();
    EXPECT_NE(json.find("\"equiv\":{\"proved\":3,\"unknown\":1}"),
              std::string::npos)
        << json;
    // Setting the same key again replaces, not duplicates.
    report.setExtra("equiv", "{\"proved\":4}");
    const std::string again = report.renderJson();
    EXPECT_NE(again.find("\"equiv\":{\"proved\":4}"), std::string::npos);
    EXPECT_EQ(again.find("\"proved\":3"), std::string::npos);
}

// ---- Source locations ------------------------------------------------------

TEST(SourceLoc, TagAndFindRoundTrip)
{
    ExprPtr e = bvBin(BVBinOp::Add, argBV(0), argBV(1));
    EXPECT_FALSE(findSourceLoc(e).known());
    tagSourceLoc(e, SourceLoc{"x86:_mm_test", 7});
    EXPECT_EQ(findSourceLoc(e).str(), "x86:_mm_test:7");
    // Tagging never overwrites an existing location.
    tagSourceLoc(e, SourceLoc{"x86:_mm_test", 9});
    EXPECT_EQ(e->loc.line, 7);
    EXPECT_EQ(e->kids[0]->loc.line, 7);
}

TEST(SourceLoc, ParsersThreadLocationsIntoSemantics)
{
    // Every built-in ISA's parser must stamp vendor-manual lines onto
    // the parsed trees, and canonicalization must preserve them.
    for (const std::string &isa : builtinIsas()) {
        const IsaSemantics &sema = isaSemantics(isa);
        ASSERT_FALSE(sema.insts.empty());
        int located = 0;
        for (const CanonicalSemantics &inst : sema.insts)
            for (const ExprPtr &tmpl : inst.templates)
                if (findSourceLoc(tmpl).known())
                    ++located;
        EXPECT_GT(located, 0) << isa << ": no source locations survived";
    }
}

TEST(SourceLoc, DiagnosticsCarryLocationsFromRealSpecs)
{
    // Mutate a real instruction and check the finding points back at
    // the vendor pseudocode.
    IsaSemantics sema = isaSemantics("x86");
    const std::string victim = mutateSemantics(sema, "extract-oob");
    ASSERT_FALSE(victim.empty());
    DiagnosticReport report;
    for (const CanonicalSemantics &inst : sema.insts)
        if (inst.name == victim)
            verifyInstruction(inst, kAllInstRules, {}, report);
    ASSERT_TRUE(hasRule(report, "WF02")) << report.renderText();
    bool located = false;
    for (const Diagnostic &d : report.diags())
        located |= d.rule == "WF02" && d.loc.known();
    EXPECT_TRUE(located) << report.renderText();
}

// ---- Cross-table (XT) ------------------------------------------------------

/** A one-class dictionary over makeGoodAdd with the given members. */
AutoLLVMDict
makeDict(const std::vector<ClassMember> &members)
{
    EquivalenceClass cls;
    cls.rep = makeGoodAdd();
    cls.members = members;
    return AutoLLVMDict({cls});
}

ClassMember
makeMember(const std::string &name)
{
    ClassMember member;
    member.name = name;
    member.isa = "test";
    member.param_values = {16, 8};
    member.concrete = makeGoodAdd();
    member.concrete.name = name;
    return member;
}

DiagnosticReport
checkDict(const AutoLLVMDict &dict)
{
    DiagnosticReport report;
    VerifyInput input;
    input.dict = &dict;
    VerifierOptions options;
    options.pass_ids = {"crosstable"};
    runVerifier(input, options, report);
    return report;
}

TEST(CrossTable, TypeAliasesAreNotDuplicates)
{
    // Regression test for the seed-DB false positive: distinct
    // intrinsics sharing (ISA, parameters) — e.g. vand_s16/vand_u16 —
    // are proven-equivalent aliases, not table defects.
    const DiagnosticReport report =
        checkDict(makeDict({makeMember("alias_a"), makeMember("alias_b")}));
    EXPECT_FALSE(hasRule(report, "XT03")) << report.renderText();
    EXPECT_FALSE(report.hasErrors()) << report.renderText();
}

TEST(CrossTable, RepeatedEntryIsXT03)
{
    const DiagnosticReport report =
        checkDict(makeDict({makeMember("dup"), makeMember("dup")}));
    EXPECT_TRUE(hasRule(report, "XT03")) << report.renderText();
}

TEST(CrossTable, BadArgPermutationIsXT08)
{
    ClassMember member = makeMember("permuted");
    member.arg_perm = {1, 1}; // Not a permutation.
    const DiagnosticReport report = checkDict(makeDict({member}));
    EXPECT_TRUE(hasRule(report, "XT08")) << report.renderText();
}

TEST(CrossTable, ParamShapeMismatchIsXT09)
{
    ClassMember member = makeMember("short_params");
    member.param_values = {16}; // Rep has two parameters.
    const DiagnosticReport report = checkDict(makeDict({member}));
    EXPECT_TRUE(hasRule(report, "XT09")) << report.renderText();
}

TEST(CrossTable, ForwardReferenceIsXT05)
{
    TargetProgram program;
    program.isa = "test";
    program.input_widths = {128, 128};
    TargetInst inst;
    inst.inst_name = "bad";
    inst.args = {ValueRef::inst(0), ValueRef::input(1)}; // Self-reference.
    program.insts.push_back(inst);
    DiagnosticReport report;
    verifyTargetProgram(program, nullptr, report);
    EXPECT_TRUE(hasRule(report, "XT05")) << report.renderText();

    // The fixed program verifies clean.
    program.insts[0].args = {ValueRef::input(0), ValueRef::input(1)};
    DiagnosticReport clean;
    verifyTargetProgram(program, nullptr, clean);
    EXPECT_FALSE(clean.hasErrors()) << clean.renderText();
}

// ---- Seeded mutations ------------------------------------------------------

TEST(Mutations, EverySpecMutationIsCaughtByItsRule)
{
    for (const MutationInfo &mutation : allMutations()) {
        if (mutation.on_dict || mutation.on_expander)
            continue;
        IsaSemantics sema = isaSemantics("x86");
        const std::string victim = mutateSemantics(sema, mutation.kind);
        ASSERT_FALSE(victim.empty()) << mutation.kind;
        DiagnosticReport report;
        for (const CanonicalSemantics &inst : sema.insts)
            if (inst.name == victim)
                verifyInstruction(inst, kAllInstRules, {}, report);
        EXPECT_TRUE(hasRule(report, mutation.expected_rule))
            << mutation.kind << " not caught:\n"
            << report.renderText();
    }
}

TEST(Mutations, DroppedLoweringEntryIsXT07)
{
    // Dict from a hand-built class that "forgot" one spec instruction.
    IsaSemantics sema;
    sema.isa = "test";
    sema.insts = {makeGoodAdd()};
    sema.insts[0].name = "forgotten";
    const AutoLLVMDict dict = makeDict({makeMember("present")});
    DiagnosticReport report;
    VerifyInput input;
    input.isas = {&sema};
    input.dict = &dict;
    VerifierOptions options;
    options.pass_ids = {"crosstable"};
    runVerifier(input, options, report);
    EXPECT_TRUE(hasRule(report, "XT07")) << report.renderText();
    EXPECT_TRUE(hasRule(report, "XT01")) << report.renderText();
}

// ---- Symbolic semantics equivalence (EQ01 workhorse) -----------------------

TEST(Equiv, IdenticalSemanticsProve)
{
    const CanonicalSemantics sem = makeGoodAdd();
    sym::SemanticsSide a, b;
    a.sem = &sem;
    a.param_values = sem.defaultParamValues();
    b.sem = &sem;
    b.param_values = sem.defaultParamValues();
    const sym::EqResult r = sym::checkSemanticsEquiv(a, b, {});
    EXPECT_EQ(r.verdict, sym::Verdict::Proved) << r.reason;
}

TEST(Equiv, SubVsAddRefutesWithValidatedModel)
{
    const CanonicalSemantics add = makeGoodAdd();
    CanonicalSemantics sub = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    sub.templates = {bvBin(BVBinOp::Sub,
                           extract(argBV(0), low, param(0, "p0")),
                           extract(argBV(1), low, param(0, "p0")))};
    sym::SemanticsSide a, b;
    a.sem = &add;
    a.param_values = add.defaultParamValues();
    b.sem = &sub;
    b.param_values = sub.defaultParamValues();
    const sym::EqResult r = sym::checkSemanticsEquiv(a, b, {});
    ASSERT_EQ(r.verdict, sym::Verdict::Refuted);
    // The model is one value per bitvector input, already concretely
    // validated by the checker; spot-check the shape here.
    ASSERT_EQ(r.model.size(), 2u);
    EXPECT_EQ(r.model[0].width(), add.outputWidth(a.param_values));
}

TEST(Equiv, ArgPermutationWiresQueryInputs)
{
    // A "reversed subtract" member whose arg_perm swaps the inputs
    // must prove against plain subtract — and refute without the
    // permutation. This pins the rep_args[k] = args[arg_perm[k]]
    // convention EQ01 relies on.
    CanonicalSemantics sub = makeGoodAdd();
    ExprPtr low = mulI(loopVar(0), param(0, "p0"));
    sub.templates = {bvBin(BVBinOp::Sub,
                           extract(argBV(0), low, param(0, "p0")),
                           extract(argBV(1), low, param(0, "p0")))};
    CanonicalSemantics rsub = makeGoodAdd();
    rsub.templates = {bvBin(BVBinOp::Sub,
                            extract(argBV(1), low, param(0, "p0")),
                            extract(argBV(0), low, param(0, "p0")))};
    sym::SemanticsSide a, b;
    a.sem = &sub;
    a.param_values = sub.defaultParamValues();
    b.sem = &rsub;
    b.param_values = rsub.defaultParamValues();
    b.arg_map = {1, 0};
    EXPECT_EQ(sym::checkSemanticsEquiv(a, b, {}).verdict,
              sym::Verdict::Proved);
    b.arg_map.clear();
    EXPECT_EQ(sym::checkSemanticsEquiv(a, b, {}).verdict,
              sym::Verdict::Refuted);
}

// ---- Load-time verification gate -------------------------------------------

TEST(LoadTime, EnvironmentVariableControlsVerification)
{
    setenv("HYDRIDE_VERIFY", "1", 1);
    EXPECT_TRUE(loadTimeVerifyEnabled());
    setenv("HYDRIDE_VERIFY", "0", 1);
    EXPECT_FALSE(loadTimeVerifyEnabled());
    unsetenv("HYDRIDE_VERIFY");
#ifdef NDEBUG
    EXPECT_FALSE(loadTimeVerifyEnabled());
#else
    EXPECT_TRUE(loadTimeVerifyEnabled());
#endif
}

// ---- CLI driver ------------------------------------------------------------

TEST(Cli, ListPassesAndUsageErrors)
{
    std::ostringstream out, err;
    EXPECT_EQ(runVerifierCli({"--list-passes"}, out, err), 0);
    EXPECT_NE(out.str().find("crosstable"), std::string::npos);

    std::ostringstream out2, err2;
    EXPECT_EQ(runVerifierCli({"--frobnicate"}, out2, err2), 2);
    std::ostringstream out3, err3;
    EXPECT_EQ(runVerifierCli({"--isas", "mips"}, out3, err3), 2);
    std::ostringstream out4, err4;
    EXPECT_EQ(runVerifierCli({"--passes", "nope"}, out4, err4), 2);
}

TEST(Cli, PerInstructionPassesRunCleanOnOneIsa)
{
    // Full-DB + dictionary runs are covered by the ctest entries
    // registered in tools/; keep the in-process test to the cheap
    // passes on one ISA.
    std::ostringstream out, err;
    const int status = runVerifierCli(
        {"--isas", "arm", "--no-dict", "--werror"}, out, err);
    EXPECT_EQ(status, 0) << out.str() << err.str();
    EXPECT_NE(out.str().find("0 error(s)"), std::string::npos);
}

} // namespace
} // namespace analysis
} // namespace hydride
