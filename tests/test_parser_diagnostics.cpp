/**
 * @file
 * Negative-path tests for the pseudocode parsers: malformed vendor
 * specs must raise a structured ParseError naming the instruction and
 * line (spec bugs are recoverable library input — SpecDB skips the
 * offender; the paper §5 fuzz-and-fix workflow depends on actionable
 * messages), and the bitwidth type inference must reject ill-typed
 * expressions.
 */
#include <gtest/gtest.h>

#include "observability/metrics.h"
#include "specs/x86_parser.h"
#include "specs/hvx_parser.h"
#include "specs/arm_parser.h"
#include "support/error.h"

namespace hydride {
namespace {

/** Run a parse expected to fail; returns the ParseError message. */
template <typename Fn>
std::string
parseErrorOf(Fn fn)
{
    try {
        fn();
    } catch (const ParseError &error) {
        return error.what();
    }
    ADD_FAILURE() << "expected a ParseError";
    return "";
}

TEST(ParserDiagnostics, X86WidthMismatchThrows)
{
    InstDef bad;
    bad.name = "bad_widths";
    bad.pseudocode =
        "DEFINE bad_widths(a: bit[128], b: bit[128]) -> bit[128] LAT 1\n"
        "FOR j := 0 to 7\n"
        "i := j*16\n"
        "dst[i+15:i] := a[i+15:i] + b[i+7:i]\n" // 16 vs 8 bits
        "ENDFOR\nENDDEF\n";
    const std::string what = parseErrorOf([&] { parseX86Inst(bad); });
    EXPECT_NE(what.find("width mismatch"), std::string::npos) << what;
}

TEST(ParserDiagnostics, X86UnknownFunctionThrows)
{
    InstDef bad;
    bad.name = "bad_fn";
    bad.pseudocode =
        "DEFINE bad_fn(a: bit[32]) -> bit[32] LAT 1\n"
        "dst[31:0] := Frobnicate(a[31:0], 16)\n"
        "ENDDEF\n";
    const std::string what = parseErrorOf([&] { parseX86Inst(bad); });
    EXPECT_NE(what.find("unknown function"), std::string::npos) << what;
}

TEST(ParserDiagnostics, X86UnknownIdentifierNamesTheLine)
{
    InstDef bad;
    bad.name = "bad_ident";
    bad.pseudocode =
        "DEFINE bad_ident(a: bit[32]) -> bit[32] LAT 1\n"
        "dst[31:0] := q[31:0]\n"
        "ENDDEF\n";
    try {
        parseX86Inst(bad);
        FAIL() << "expected a ParseError";
    } catch (const ParseError &error) {
        // The structured fields carry the SourceLoc downstream
        // consumers (SpecDB warnings, verifier diagnostics) cite.
        EXPECT_NE(error.source().find("bad_ident"), std::string::npos);
        EXPECT_EQ(error.line(), 2);
        EXPECT_NE(error.message().find("unknown identifier"),
                  std::string::npos);
        EXPECT_NE(std::string(error.what()).find("bad_ident:2"),
                  std::string::npos);
    }
}

TEST(ParserDiagnostics, X86SymbolicSliceWidthThrows)
{
    InstDef bad;
    bad.name = "bad_slice";
    bad.pseudocode =
        "DEFINE bad_slice(a: bit[64], n: imm) -> bit[64] LAT 1\n"
        "dst[n:0] := a[n:0]\n" // width depends on an immediate
        "ENDDEF\n";
    const std::string what = parseErrorOf([&] { parseX86Inst(bad); });
    EXPECT_NE(what.find("fold to a constant"), std::string::npos) << what;
}

TEST(ParserDiagnostics, HvxBadAccessorThrows)
{
    InstDef bad;
    bad.name = "bad_lane";
    bad.pseudocode =
        "INST bad_lane(Vu: v512) -> v512 LAT 1 {\n"
        "for (i = 0; i < 64; i++) {\n"
        "dst.q[i] = Vu.q[i];\n" // no such lane type
        "}\n}\n";
    const std::string what = parseErrorOf([&] { parseHvxInst(bad); });
    EXPECT_NE(what.find("lane accessor"), std::string::npos) << what;
}

TEST(ParserDiagnostics, HvxLoopVariableMismatchThrows)
{
    InstDef bad;
    bad.name = "bad_loop";
    bad.pseudocode =
        "INST bad_loop(Vu: v512) -> v512 LAT 1 {\n"
        "for (i = 0; j < 64; i++) {\n"
        "dst.b[i] = Vu.b[i];\n"
        "}\n}\n";
    const std::string what = parseErrorOf([&] { parseHvxInst(bad); });
    EXPECT_NE(what.find("loop variable"), std::string::npos) << what;
}

TEST(ParserDiagnostics, ArmTernaryConditionMustBeOneBit)
{
    InstDef bad;
    bad.name = "bad_cond";
    bad.pseudocode =
        "INSTRUCTION bad_cond (a: bits(64), b: bits(64)) => bits(64) "
        "LATENCY 1\n"
        "for e = 0 to 3 do\n"
        "Elem[dst, e, 16] = Elem[a, e, 16] ? Elem[a, e, 16] : "
        "Elem[b, e, 16];\n"
        "endfor\nENDINSTRUCTION\n";
    const std::string what = parseErrorOf([&] { parseArmInst(bad); });
    EXPECT_NE(what.find("1-bit"), std::string::npos) << what;
}

TEST(ParserDiagnostics, ArmMalformedHeaderThrows)
{
    InstDef bad;
    bad.name = "bad_header";
    bad.pseudocode = "INSTRUCTION bad_header (a: bits(64) => bits(64)\n";
    const std::string what = parseErrorOf([&] { parseArmInst(bad); });
    EXPECT_NE(what.find("parse error"), std::string::npos) << what;
}

TEST(ParserDiagnostics, ParseFailuresBumpTheDiagnosticCounter)
{
    metrics::setEnabled(true);
    metrics::Counter &diags = metrics::counter("specs.parser.diagnostics");
    const uint64_t before = diags.value();
    InstDef bad;
    bad.name = "bad_header";
    bad.pseudocode = "INSTRUCTION bad_header (a: bits(64) => bits(64)\n";
    EXPECT_THROW(parseArmInst(bad), ParseError);
    EXPECT_GT(diags.value(), before);
}

} // namespace
} // namespace hydride
