/**
 * @file
 * Negative-path tests for the pseudocode parsers: malformed vendor
 * specs must die with a diagnostic naming the instruction and line
 * (spec bugs are user errors -> fatal, paper §5's fuzz-and-fix
 * workflow depends on actionable messages), and the bitwidth type
 * inference must reject ill-typed expressions.
 */
#include <gtest/gtest.h>

#include "specs/x86_parser.h"
#include "specs/hvx_parser.h"
#include "specs/arm_parser.h"

namespace hydride {
namespace {

TEST(ParserDiagnostics, X86WidthMismatchDies)
{
    InstDef bad;
    bad.name = "bad_widths";
    bad.pseudocode =
        "DEFINE bad_widths(a: bit[128], b: bit[128]) -> bit[128] LAT 1\n"
        "FOR j := 0 to 7\n"
        "i := j*16\n"
        "dst[i+15:i] := a[i+15:i] + b[i+7:i]\n" // 16 vs 8 bits
        "ENDFOR\nENDDEF\n";
    EXPECT_EXIT(parseX86Inst(bad), ::testing::ExitedWithCode(1),
                "width mismatch");
}

TEST(ParserDiagnostics, X86UnknownFunctionDies)
{
    InstDef bad;
    bad.name = "bad_fn";
    bad.pseudocode =
        "DEFINE bad_fn(a: bit[32]) -> bit[32] LAT 1\n"
        "dst[31:0] := Frobnicate(a[31:0], 16)\n"
        "ENDDEF\n";
    EXPECT_EXIT(parseX86Inst(bad), ::testing::ExitedWithCode(1),
                "unknown function");
}

TEST(ParserDiagnostics, X86UnknownIdentifierNamesTheLine)
{
    InstDef bad;
    bad.name = "bad_ident";
    bad.pseudocode =
        "DEFINE bad_ident(a: bit[32]) -> bit[32] LAT 1\n"
        "dst[31:0] := q[31:0]\n"
        "ENDDEF\n";
    EXPECT_EXIT(parseX86Inst(bad), ::testing::ExitedWithCode(1),
                "bad_ident:2.*unknown identifier");
}

TEST(ParserDiagnostics, X86SymbolicSliceWidthDies)
{
    InstDef bad;
    bad.name = "bad_slice";
    bad.pseudocode =
        "DEFINE bad_slice(a: bit[64], n: imm) -> bit[64] LAT 1\n"
        "dst[n:0] := a[n:0]\n" // width depends on an immediate
        "ENDDEF\n";
    EXPECT_EXIT(parseX86Inst(bad), ::testing::ExitedWithCode(1),
                "fold to a constant");
}

TEST(ParserDiagnostics, HvxBadAccessorDies)
{
    InstDef bad;
    bad.name = "bad_lane";
    bad.pseudocode =
        "INST bad_lane(Vu: v512) -> v512 LAT 1 {\n"
        "for (i = 0; i < 64; i++) {\n"
        "dst.q[i] = Vu.q[i];\n" // no such lane type
        "}\n}\n";
    EXPECT_EXIT(parseHvxInst(bad), ::testing::ExitedWithCode(1),
                "lane accessor");
}

TEST(ParserDiagnostics, HvxLoopVariableMismatchDies)
{
    InstDef bad;
    bad.name = "bad_loop";
    bad.pseudocode =
        "INST bad_loop(Vu: v512) -> v512 LAT 1 {\n"
        "for (i = 0; j < 64; i++) {\n"
        "dst.b[i] = Vu.b[i];\n"
        "}\n}\n";
    EXPECT_EXIT(parseHvxInst(bad), ::testing::ExitedWithCode(1),
                "loop variable");
}

TEST(ParserDiagnostics, ArmTernaryConditionMustBeOneBit)
{
    InstDef bad;
    bad.name = "bad_cond";
    bad.pseudocode =
        "INSTRUCTION bad_cond (a: bits(64), b: bits(64)) => bits(64) "
        "LATENCY 1\n"
        "for e = 0 to 3 do\n"
        "Elem[dst, e, 16] = Elem[a, e, 16] ? Elem[a, e, 16] : "
        "Elem[b, e, 16];\n"
        "endfor\nENDINSTRUCTION\n";
    EXPECT_EXIT(parseArmInst(bad), ::testing::ExitedWithCode(1),
                "1-bit");
}

TEST(ParserDiagnostics, ArmMalformedHeaderDies)
{
    InstDef bad;
    bad.name = "bad_header";
    bad.pseudocode = "INSTRUCTION bad_header (a: bits(64) => bits(64)\n";
    EXPECT_EXIT(parseArmInst(bad), ::testing::ExitedWithCode(1),
                "parse error");
}

} // namespace
} // namespace hydride
