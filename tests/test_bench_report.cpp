/**
 * @file
 * Tests for the continuous-benchmarking subsystem
 * (docs/benchmarking.md): the bjson round-tripping JSON layer, the
 * histogram quantile estimator and log-scale bounds, the BenchReport
 * / SuiteReport schema round-trip, the exclusive per-phase profiler
 * (the `phaseSum() == total_ms` invariant), and the perf-regression
 * gate `compareReports` — including the smoke/full refusal and the
 * `scale_baseline` knob the WILL_FAIL ctest entry relies on.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "observability/bench/bench_report.h"
#include "observability/bench/json.h"
#include "observability/bench/phase_profiler.h"
#include "observability/metrics.h"

using namespace hydride;
using namespace hydride::bench;

// ---- bjson -----------------------------------------------------------------

TEST(BenchJson, ParsesAndRereadsNestedDocument)
{
    const std::string text =
        "{\"name\":\"t\\u0041b\",\"n\":3.5,\"ok\":true,\"none\":null,"
        "\"arr\":[1,2,3],\"obj\":{\"k\":\"v\"}}";
    std::string error;
    bjson::ValuePtr doc = bjson::parse(text, error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->getString("name", ""), "tAb"); // A == 'A'
    EXPECT_DOUBLE_EQ(doc->getNumber("n", 0.0), 3.5);
    EXPECT_TRUE(doc->getBool("ok", false));
    ASSERT_NE(doc->get("none"), nullptr);
    EXPECT_TRUE(doc->get("none")->isNull());
    ASSERT_NE(doc->get("arr"), nullptr);
    ASSERT_EQ(doc->get("arr")->items.size(), 3u);
    EXPECT_DOUBLE_EQ(doc->get("arr")->items[1]->numberOr(0.0), 2.0);
    EXPECT_EQ(doc->get("obj")->getString("k", ""), "v");

    // write() -> parse() is the identity on the value level.
    bjson::ValuePtr again = bjson::parse(bjson::write(*doc), error);
    ASSERT_TRUE(again) << error;
    EXPECT_EQ(again->getString("name", ""), "tAb");
    EXPECT_EQ(again->get("arr")->items.size(), 3u);
    // Pretty output parses back too.
    bjson::ValuePtr pretty = bjson::parse(bjson::writePretty(*doc), error);
    ASSERT_TRUE(pretty) << error;
    EXPECT_DOUBLE_EQ(pretty->getNumber("n", 0.0), 3.5);
}

TEST(BenchJson, KeepsObjectKeysInInsertionOrder)
{
    bjson::ValuePtr obj = bjson::Value::makeObject();
    obj->set("zebra", bjson::Value::makeNumber(1));
    obj->set("apple", bjson::Value::makeNumber(2));
    obj->set("mango", bjson::Value::makeNumber(3));
    const std::string out = bjson::write(*obj);
    EXPECT_LT(out.find("zebra"), out.find("apple"));
    EXPECT_LT(out.find("apple"), out.find("mango"));
}

TEST(BenchJson, RejectsMalformedInput)
{
    const char *bad[] = {
        "",
        "{",
        "{\"a\":}",
        "[1,2",
        "\"unterminated",
        "{\"a\":1} trailing",
        "nul",
        "{\"a\" 1}",
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_EQ(bjson::parse(text, error), nullptr)
            << "accepted malformed input: " << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(BenchJson, FormatNumberPrintsIntegersWithoutFraction)
{
    EXPECT_EQ(bjson::formatNumber(3.0), "3");
    EXPECT_EQ(bjson::formatNumber(-42.0), "-42");
    EXPECT_EQ(bjson::formatNumber(0.0), "0");
    // Non-integers keep a fractional part; NaN/Inf clamp to 0.
    EXPECT_NE(bjson::formatNumber(0.5).find('.'), std::string::npos);
    EXPECT_EQ(bjson::formatNumber(std::nan("")), "0");
}

// ---- Histogram quantiles ---------------------------------------------------

TEST(BenchQuantile, LogBoundsAreGeometricAndCoverHi)
{
    const std::vector<double> bounds = metrics::logBounds(1.0, 1000.0, 1);
    ASSERT_GE(bounds.size(), 4u);
    for (size_t i = 1; i < bounds.size(); ++i) {
        EXPECT_GT(bounds[i], bounds[i - 1]);
        EXPECT_NEAR(bounds[i] / bounds[i - 1], 10.0, 1e-6);
    }
    EXPECT_GE(bounds.back(), 1000.0);

    // The shared time bounds span 1µs .. 100s (in ms).
    const std::vector<double> &tb = metrics::logTimeMsBounds();
    ASSERT_FALSE(tb.empty());
    EXPECT_LE(tb.front(), 0.001 + 1e-12);
    EXPECT_GE(tb.back(), 1e5 - 1e-6);
}

TEST(BenchQuantile, UniformBucketInterpolatesLinearly)
{
    // 100 samples uniformly inside the (10, 20] bucket.
    metrics::Snapshot::Hist hist;
    hist.bounds = {10.0, 20.0, 30.0};
    hist.buckets = {0, 100, 0, 0};
    hist.count = 100;
    hist.min = 10.0;
    hist.max = 20.0;
    EXPECT_NEAR(hist.quantile(0.5), 15.0, 1e-9);
    EXPECT_NEAR(hist.quantile(0.9), 19.0, 1e-9);
    EXPECT_NEAR(hist.quantile(1.0), 20.0, 1e-9);
    EXPECT_NEAR(hist.quantile(0.0), 10.0, 1e-9);
}

TEST(BenchQuantile, MultiBucketDistributionFindsTheRightBucket)
{
    // 50 samples in (0, 1], 30 in (1, 2], 20 in (2, 4].
    metrics::Snapshot::Hist hist;
    hist.bounds = {1.0, 2.0, 4.0};
    hist.buckets = {50, 30, 20, 0};
    hist.count = 100;
    hist.min = 0.0;
    hist.max = 4.0;
    EXPECT_NEAR(hist.quantile(0.5), 1.0, 1e-9);  // rank 50: bucket edge
    EXPECT_NEAR(hist.quantile(0.8), 2.0, 1e-9);  // rank 80: next edge
    EXPECT_NEAR(hist.quantile(0.9), 3.0, 1e-9);  // mid of (2, 4]
    // Percentiles stay within [min, max] and are monotone.
    EXPECT_LE(hist.quantile(0.5), hist.quantile(0.9));
    EXPECT_LE(hist.quantile(0.9), hist.quantile(0.99));
    EXPECT_LE(hist.quantile(0.99), hist.max);
}

TEST(BenchQuantile, ClampsToObservedRangeAndHandlesEmpty)
{
    metrics::Snapshot::Hist empty;
    empty.bounds = {1.0};
    empty.buckets = {0, 0};
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // All mass in the overflow bucket: quantiles clamp to max.
    metrics::Snapshot::Hist over;
    over.bounds = {1.0};
    over.buckets = {0, 10};
    over.count = 10;
    over.min = 5.0;
    over.max = 9.0;
    EXPECT_GE(over.quantile(0.5), over.min);
    EXPECT_LE(over.quantile(0.99), over.max);
}

// ---- Report round-trip -----------------------------------------------------

namespace {

BenchReport
sampleReport(const std::string &suite, bool smoke)
{
    BenchReport report;
    report.suite = suite;
    report.smoke = smoke;
    BenchEntry time;
    time.name = "x86.compile_ms";
    time.wall_ms = 123.5;
    time.cpu_ms = 120.0;
    time.iterations = 4;
    report.benchmarks.push_back(time);
    BenchEntry no_cpu;
    no_cpu.name = "arm.compile_ms";
    no_cpu.wall_ms = 7.25;
    no_cpu.cpu_ms = -1.0; // Not measured: must not be serialized.
    report.benchmarks.push_back(no_cpu);
    BenchEntry ratio;
    ratio.name = "x86.speedup_x";
    ratio.kind = "ratio";
    ratio.value = 2.75;
    report.benchmarks.push_back(ratio);

    report.has_phases = true;
    report.phases.enumeration_ms = 60.0;
    report.phases.symbolic_ms = 25.0;
    report.phases.sat_ms = 10.0;
    report.phases.other_ms = 5.0;
    report.phases.total_ms = 100.0;
    report.phases.windows = 3;

    HistSummary hist;
    hist.name = "synthesis.cegis.enumerate.time_ms";
    hist.count = 7;
    hist.sum = 70.0;
    hist.min = 1.0;
    hist.max = 30.0;
    hist.p50 = 8.0;
    hist.p90 = 20.0;
    hist.p99 = 29.0;
    report.metrics.histograms.push_back(hist);
    report.metrics.counters.push_back({"synthesis.windows", 3});
    return report;
}

} // namespace

TEST(BenchReportRoundTrip, PreservesEntriesPhasesAndMetrics)
{
    const BenchReport report = sampleReport("bench_demo", true);
    std::string error;
    BenchReport back;
    ASSERT_TRUE(BenchReport::fromJson(report.toJson(), back, error))
        << error;
    EXPECT_EQ(back.suite, "bench_demo");
    EXPECT_TRUE(back.smoke);
    ASSERT_EQ(back.benchmarks.size(), 3u);
    EXPECT_EQ(back.benchmarks[0].name, "x86.compile_ms");
    EXPECT_EQ(back.benchmarks[0].kind, "time");
    EXPECT_DOUBLE_EQ(back.benchmarks[0].wall_ms, 123.5);
    EXPECT_DOUBLE_EQ(back.benchmarks[0].cpu_ms, 120.0);
    EXPECT_EQ(back.benchmarks[0].iterations, 4);
    EXPECT_LT(back.benchmarks[1].cpu_ms, 0.0); // Stays "not measured".
    EXPECT_EQ(back.benchmarks[2].kind, "ratio");
    EXPECT_DOUBLE_EQ(back.benchmarks[2].value, 2.75);
    ASSERT_TRUE(back.has_phases);
    EXPECT_DOUBLE_EQ(back.phases.enumeration_ms, 60.0);
    EXPECT_DOUBLE_EQ(back.phases.total_ms, 100.0);
    EXPECT_EQ(back.phases.windows, 3u);
    ASSERT_EQ(back.metrics.histograms.size(), 1u);
    EXPECT_EQ(back.metrics.histograms[0].name,
              "synthesis.cegis.enumerate.time_ms");
    EXPECT_DOUBLE_EQ(back.metrics.histograms[0].p90, 20.0);
    ASSERT_EQ(back.metrics.counters.size(), 1u);
    EXPECT_EQ(back.metrics.counters[0].second, 3u);
}

TEST(BenchReportRoundTrip, RejectsWrongSchemaOrShape)
{
    BenchReport out;
    std::string error;
    EXPECT_FALSE(BenchReport::fromJson("not json", out, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(BenchReport::fromJson(
        "{\"schema\":\"hydride-bench/v999\",\"kind\":\"report\","
        "\"suite\":\"s\",\"benchmarks\":[]}",
        out, error));
    EXPECT_NE(error.find("schema"), std::string::npos);
    // A suite wrapper is not a report.
    const SuiteReport suite;
    EXPECT_FALSE(BenchReport::fromJson(suite.toJson(), out, error));
}

TEST(BenchReportRoundTrip, SuiteReportMergesAndAggregates)
{
    SuiteReport suite;
    suite.smoke = false;
    suite.label = "full";
    suite.suites.push_back(sampleReport("bench_a", false));
    suite.suites.push_back(sampleReport("bench_b", false));

    std::string error;
    SuiteReport back;
    ASSERT_TRUE(SuiteReport::fromJson(suite.toJson(), back, error))
        << error;
    EXPECT_FALSE(back.smoke);
    EXPECT_EQ(back.label, "full");
    ASSERT_EQ(back.suites.size(), 2u);
    EXPECT_EQ(back.suites[0].suite, "bench_a");
    EXPECT_EQ(back.suites[1].suite, "bench_b");

    const PhaseTotals agg = back.aggregatePhases();
    EXPECT_DOUBLE_EQ(agg.total_ms, 200.0);
    EXPECT_DOUBLE_EQ(agg.enumeration_ms, 120.0);
    EXPECT_EQ(agg.windows, 6u);

    // A report payload is not a suite wrapper.
    SuiteReport bad;
    EXPECT_FALSE(SuiteReport::fromJson(
        sampleReport("bench_a", false).toJson(), bad, error));
}

// ---- Phase profiler --------------------------------------------------------

namespace {

trace::SpanRecord
span(const char *name, uint64_t start_ms, uint64_t dur_ms, int depth,
     uint64_t thread = 0)
{
    trace::SpanRecord record;
    record.name = name;
    record.thread_id = thread;
    record.depth = depth;
    record.start_ns = start_ms * 1'000'000;
    record.duration_ns = dur_ms * 1'000'000;
    return record;
}

} // namespace

TEST(PhaseProfiler, AttributesExclusivelyAndSumsToWindowTotal)
{
    // window [0, 100): enumerate [10, 30), symbolic [40, 80) with a
    // SAT solve [50, 70) nested inside it. Exclusive attribution:
    // symbolic keeps only its 20 ms outside the solve.
    std::vector<trace::SpanRecord> spans = {
        span(kSpanWindowCegis, 0, 100, 0),
        span(kSpanEnumerate, 10, 20, 1),
        span(kSpanSymbolic, 40, 40, 1),
        span(kSpanSat, 50, 20, 2),
    };
    const PhaseProfile profile = profilePhases(spans);
    ASSERT_EQ(profile.windows.size(), 1u);
    const PhaseTotals &t = profile.windows[0].totals;
    EXPECT_NEAR(t.enumeration_ms, 20.0, 1e-9);
    EXPECT_NEAR(t.symbolic_ms, 20.0, 1e-9);
    EXPECT_NEAR(t.sat_ms, 20.0, 1e-9);
    EXPECT_NEAR(t.other_ms, 40.0, 1e-9);
    EXPECT_NEAR(t.total_ms, 100.0, 1e-9);
    // The invariant the JSON validator also checks.
    EXPECT_NEAR(t.phaseSum(), t.total_ms, 1e-9);
    EXPECT_NEAR(profile.aggregate.phaseSum(), profile.aggregate.total_ms,
                1e-9);
}

TEST(PhaseProfiler, NestedWindowContainersAreTransparent)
{
    // The compiler wraps cegis.window in compiler.window; only the
    // outermost container may count, else time doubles.
    std::vector<trace::SpanRecord> spans = {
        span(kSpanWindowCompiler, 0, 100, 0),
        span(kSpanWindowCegis, 5, 90, 1),
        span(kSpanEnumerate, 10, 30, 2),
    };
    const PhaseProfile profile = profilePhases(spans);
    ASSERT_EQ(profile.windows.size(), 1u);
    EXPECT_EQ(profile.windows[0].container, kSpanWindowCompiler);
    EXPECT_NEAR(profile.aggregate.total_ms, 100.0, 1e-9);
    EXPECT_NEAR(profile.aggregate.enumeration_ms, 30.0, 1e-9);
    EXPECT_EQ(profile.aggregate.windows, 1u);
}

TEST(PhaseProfiler, IgnoresPhaseWorkOutsideWindowsAndSplitsThreads)
{
    std::vector<trace::SpanRecord> spans = {
        // Thread 0: a symbolic check with no enclosing window
        // (hydride-verify's equivalence passes look like this).
        span(kSpanSymbolic, 0, 50, 0, /*thread=*/0),
        // Thread 1 and 2: one window each.
        span(kSpanWindowCegis, 0, 40, 0, 1),
        span(kSpanEnumerate, 0, 10, 1, 1),
        span(kSpanWindowCegis, 0, 60, 0, 2),
        span(kSpanConcreteEval, 20, 30, 1, 2),
    };
    const PhaseProfile profile = profilePhases(spans);
    EXPECT_EQ(profile.aggregate.windows, 2u);
    EXPECT_NEAR(profile.aggregate.total_ms, 100.0, 1e-9);
    EXPECT_NEAR(profile.aggregate.symbolic_ms, 0.0, 1e-9);
    EXPECT_NEAR(profile.aggregate.enumeration_ms, 10.0, 1e-9);
    EXPECT_NEAR(profile.aggregate.concrete_eval_ms, 30.0, 1e-9);
    EXPECT_NEAR(profile.aggregate.phaseSum(), profile.aggregate.total_ms,
                1e-9);
}

TEST(PhaseProfiler, SequentialWindowsEachGetTheirOwnBreakdown)
{
    std::vector<trace::SpanRecord> spans = {
        span(kSpanWindowCegis, 0, 50, 0),
        span(kSpanEnumerate, 0, 50, 1),
        span(kSpanWindowCegis, 100, 30, 0),
        span(kSpanCacheLookup, 100, 5, 1),
    };
    const PhaseProfile profile = profilePhases(spans);
    ASSERT_EQ(profile.windows.size(), 2u);
    EXPECT_NEAR(profile.windows[0].totals.enumeration_ms, 50.0, 1e-9);
    EXPECT_NEAR(profile.windows[0].totals.other_ms, 0.0, 1e-9);
    EXPECT_NEAR(profile.windows[1].totals.cache_lookup_ms, 5.0, 1e-9);
    EXPECT_NEAR(profile.windows[1].totals.other_ms, 25.0, 1e-9);
    // formatProfile renders without crashing and mentions the phases.
    const std::string text = formatProfile(profile, 2);
    EXPECT_NE(text.find("enumeration"), std::string::npos);
    EXPECT_NE(text.find("slowest windows"), std::string::npos);
}

// ---- Regression gate -------------------------------------------------------

namespace {

SuiteReport
timingSuite(bool smoke, double a_ms, double b_ms)
{
    SuiteReport suite;
    suite.smoke = smoke;
    BenchReport report;
    report.suite = "bench_demo";
    report.smoke = smoke;
    BenchEntry a;
    a.name = "a_ms";
    a.wall_ms = a_ms;
    report.benchmarks.push_back(a);
    BenchEntry b;
    b.name = "b_ms";
    b.wall_ms = b_ms;
    report.benchmarks.push_back(b);
    BenchEntry ratio;
    ratio.name = "speedup_x";
    ratio.kind = "ratio";
    ratio.value = 3.0;
    report.benchmarks.push_back(ratio);
    suite.suites.push_back(report);
    return suite;
}

} // namespace

TEST(RegressionGate, IdenticalReportsCompareClean)
{
    const SuiteReport base = timingSuite(false, 100.0, 50.0);
    const CompareResult result =
        compareReports(base, base, CompareOptions{});
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.compared, 2); // Ratio entries never gate.
    EXPECT_TRUE(result.regressions.empty());
    EXPECT_TRUE(result.improvements.empty());
}

TEST(RegressionGate, DetectsRegressionBeyondToleranceAndFloor)
{
    const SuiteReport base = timingSuite(false, 100.0, 50.0);
    const SuiteReport cur = timingSuite(false, 300.0, 50.0);
    const CompareResult result =
        compareReports(base, cur, CompareOptions{});
    ASSERT_EQ(result.regressions.size(), 1u);
    EXPECT_EQ(result.regressions[0].name, "a_ms");
    EXPECT_NEAR(result.regressions[0].ratio, 3.0, 1e-9);
    EXPECT_FALSE(result.ok());
    // The human-readable rendering names the entry.
    const std::string text = formatCompare(result, CompareOptions{});
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("a_ms"), std::string::npos);
}

TEST(RegressionGate, ToleranceAndAbsoluteFloorAbsorbNoise)
{
    const SuiteReport base = timingSuite(false, 100.0, 0.2);
    // a: +40% is inside the 50% tolerance. b: 10x slower but the
    // absolute change (1.8 ms) is under the 5 ms floor.
    const SuiteReport cur = timingSuite(false, 140.0, 2.0);
    const CompareResult result =
        compareReports(base, cur, CompareOptions{});
    EXPECT_TRUE(result.ok()) << formatCompare(result, CompareOptions{});
}

TEST(RegressionGate, ScaleBaselinePlantsDeterministicRegression)
{
    // The WILL_FAIL ctest self-test: scaling the baseline down 100x
    // must trip the gate on every sizeable entry, machine-independent.
    const SuiteReport base = timingSuite(false, 1000.0, 800.0);
    CompareOptions options;
    options.scale_baseline = 0.01;
    const CompareResult result = compareReports(base, base, options);
    EXPECT_EQ(result.regressions.size(), 2u);
    EXPECT_FALSE(result.ok());
    for (const CompareFinding &finding : result.regressions)
        EXPECT_NEAR(finding.ratio, 100.0, 1e-6);
}

TEST(RegressionGate, RefusesSmokeAgainstFullComparison)
{
    const SuiteReport smoke = timingSuite(true, 100.0, 50.0);
    const SuiteReport full = timingSuite(false, 100.0, 50.0);
    const CompareResult result =
        compareReports(full, smoke, CompareOptions{});
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.error.empty());
    EXPECT_EQ(result.compared, 0);
    const std::string text = formatCompare(result, CompareOptions{});
    EXPECT_NE(text.find("compare error"), std::string::npos);
}

TEST(RegressionGate, CountsLostAndNewEntries)
{
    SuiteReport base = timingSuite(false, 100.0, 50.0);
    SuiteReport cur = timingSuite(false, 100.0, 50.0);
    // Current loses "b_ms" and gains "c_ms".
    cur.suites[0].benchmarks[1].name = "c_ms";
    const CompareResult result =
        compareReports(base, cur, CompareOptions{});
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.compared, 1);
    EXPECT_EQ(result.only_baseline, 1);
    EXPECT_EQ(result.only_current, 1);
}

TEST(RegressionGate, ReportsImprovementsWithoutGating)
{
    const SuiteReport base = timingSuite(false, 300.0, 50.0);
    const SuiteReport cur = timingSuite(false, 100.0, 50.0);
    const CompareResult result =
        compareReports(base, cur, CompareOptions{});
    EXPECT_TRUE(result.ok());
    ASSERT_EQ(result.improvements.size(), 1u);
    EXPECT_EQ(result.improvements[0].name, "a_ms");
    EXPECT_NEAR(result.improvements[0].ratio, 1.0 / 3.0, 1e-9);
}
