/**
 * @file
 * Tests for synthesis-cache persistence: results survive a
 * save/load round trip, loaded modules still evaluate and lower
 * correctly, and stale caches (wrong dictionary) are rejected.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/lowering.h"
#include "specs/spec_db.h"
#include "support/faults.h"
#include "support/rng.h"
#include "synthesis/compiler.h"

namespace hydride {
namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

class CachePersistence : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // ctest runs each test in its own process but in one working
        // directory; a shared file name races under -j.
        storage_ = std::string("hydride_cache_test_") +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name() +
                   ".tmp";
        path_ = storage_.c_str();
    }
    void
    TearDown() override
    {
        std::remove(path_);
    }
    std::string storage_;
    const char *path_ = nullptr;
};

TEST_F(CachePersistence, RoundTripPreservesModules)
{
    SynthesisCache cache;
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", kernel.windows[0]);
    ASSERT_TRUE(result.ok);
    cache.insert(kernel.windows[0], "x86", result);
    ASSERT_TRUE(cache.save(path_, dict()));

    SynthesisCache loaded;
    ASSERT_TRUE(loaded.load(path_, dict()));
    EXPECT_EQ(loaded.size(), cache.size());
    const SynthesisResult *restored =
        loaded.lookup(kernel.windows[0], "x86");
    ASSERT_NE(restored, nullptr);
    ASSERT_TRUE(restored->ok);
    EXPECT_EQ(restored->cost, result.cost);

    // The restored module must still compute and lower.
    Rng rng(101);
    std::vector<BitVector> inputs;
    for (int w : restored->module.input_widths)
        inputs.push_back(BitVector::random(w, rng));
    EXPECT_EQ(restored->module.evaluate(dict(), inputs),
              evalHalide(kernel.windows[0], inputs));
    EXPECT_TRUE(lowerToTarget(restored->module, dict(), "x86").ok);
}

TEST_F(CachePersistence, NegativeEntriesPersistToo)
{
    SynthesisCache cache;
    Schedule schedule;
    schedule.vector_bits = 128;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisOptions options;
    options.timeout_seconds = 1.0;
    SynthesisResult result =
        synthesizeWindow(dict(), "arm", kernel.windows[0], options);
    ASSERT_FALSE(result.ok); // ARM has no 2-way i16 dot product.
    cache.insert(kernel.windows[0], "arm", result);
    ASSERT_TRUE(cache.save(path_, dict()));

    SynthesisCache loaded;
    ASSERT_TRUE(loaded.load(path_, dict()));
    const SynthesisResult *restored =
        loaded.lookup(kernel.windows[0], "arm");
    ASSERT_NE(restored, nullptr);
    EXPECT_FALSE(restored->ok);
}

TEST_F(CachePersistence, RejectsForeignDictionaries)
{
    SynthesisCache cache;
    ASSERT_TRUE(cache.save(path_, dict()));
    // A dictionary built from a subset fingerprints differently.
    AutoLLVMDict other = AutoLLVMDict::build({"hvx"});
    SynthesisCache loaded;
    EXPECT_FALSE(loaded.load(path_, other));
    EXPECT_TRUE(loaded.load(path_, dict()));
}

TEST_F(CachePersistence, MissingFileFailsGracefully)
{
    SynthesisCache cache;
    EXPECT_FALSE(cache.load("definitely/not/here.cache", dict()));
}

TEST_F(CachePersistence, ClearPreservesLifetimeStatistics)
{
    SynthesisCache cache;
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    const HExprPtr &window = kernel.windows[0];

    EXPECT_EQ(cache.lookup(window, "x86"), nullptr); // Miss.
    SynthesisResult result = synthesizeWindow(dict(), "x86", window);
    cache.insert(window, "x86", result);
    EXPECT_NE(cache.lookup(window, "x86"), nullptr); // Hit.
    EXPECT_EQ(cache.hits(), 1);
    EXPECT_EQ(cache.misses(), 1);

    // clear() restarts the per-epoch counters but folds them into the
    // lifetime totals instead of discarding them.
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.misses(), 0);
    EXPECT_EQ(cache.lifetimeHits(), 1);
    EXPECT_EQ(cache.lifetimeMisses(), 1);

    EXPECT_EQ(cache.lookup(window, "x86"), nullptr); // Miss again.
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.lifetimeMisses(), 2);
    EXPECT_EQ(cache.lifetimeHits(), 1);
}

namespace {

/** Build a cache file with several distinct entries for damage tests. */
SynthesisCache
multiEntryCache()
{
    SynthesisCache cache;
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", kernel.windows[0]);
    cache.insert(kernel.windows[0], "x86", result);
    // Negative entries for two more ISAs give three independent
    // checksummed blocks without extra synthesis time.
    cache.insert(kernel.windows[0], "arm", SynthesisResult{});
    cache.insert(kernel.windows[0], "hvx", SynthesisResult{});
    return cache;
}

std::string
slurp(const char *path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST_F(CachePersistence, TruncatedFileSalvagesTheValidPrefix)
{
    SynthesisCache cache = multiEntryCache();
    ASSERT_EQ(cache.size(), 3u);
    ASSERT_TRUE(cache.save(path_, dict()));

    // Chop the file mid-way through the final entry's block — the
    // crash-mid-write / torn-download shape of damage.
    std::string text = slurp(path_);
    const size_t last_check = text.rfind("check ");
    ASSERT_NE(last_check, std::string::npos);
    {
        std::ofstream out(path_, std::ios::trunc);
        out << text.substr(0, last_check - 10);
    }

    SynthesisCache loaded;
    EXPECT_TRUE(loaded.load(path_, dict())); // Salvage, not failure.
    EXPECT_TRUE(loaded.loadStats().salvaged);
    EXPECT_EQ(loaded.loadStats().entries_loaded, 2u);
    EXPECT_EQ(loaded.size(), 2u);
}

TEST_F(CachePersistence, BitFlippedEntryIsDroppedWithThePrefixKept)
{
    SynthesisCache cache = multiEntryCache();
    ASSERT_TRUE(cache.save(path_, dict()));

    // Flip one byte inside the *second* entry's serialized block: its
    // checksum no longer verifies, so the loader keeps entry 1 and
    // drops the damage and everything after it — corrupt data must
    // never be returned as a valid synthesis result.
    std::string text = slurp(path_);
    size_t second_entry = text.find("entry ");
    ASSERT_NE(second_entry, std::string::npos);
    second_entry = text.find("entry ", second_entry + 1);
    ASSERT_NE(second_entry, std::string::npos);
    text[second_entry + 7] ^= 0x20;
    {
        std::ofstream out(path_, std::ios::trunc);
        out << text;
    }

    SynthesisCache loaded;
    EXPECT_TRUE(loaded.load(path_, dict()));
    EXPECT_TRUE(loaded.loadStats().salvaged);
    EXPECT_EQ(loaded.loadStats().entries_loaded, 1u);
    EXPECT_EQ(loaded.size(), 1u);
}

TEST_F(CachePersistence, InjectedCorruptionSalvagesToo)
{
    // The cache.corrupt fault site models damage the checksum math
    // itself would miss (e.g. a stale mmap); the loader must treat it
    // exactly like a checksum mismatch.
    SynthesisCache cache = multiEntryCache();
    ASSERT_TRUE(cache.save(path_, dict()));
    ASSERT_TRUE(faults::configure("cache.corrupt:2"));
    SynthesisCache loaded;
    EXPECT_TRUE(loaded.load(path_, dict()));
    faults::reset();
    EXPECT_TRUE(loaded.loadStats().salvaged);
    EXPECT_EQ(loaded.loadStats().entries_loaded, 1u);
}

TEST_F(CachePersistence, InjectedSaveFailureLeavesTheOldFileIntact)
{
    SynthesisCache cache = multiEntryCache();
    ASSERT_TRUE(cache.save(path_, dict()));
    const std::string before = slurp(path_);

    ASSERT_TRUE(faults::configure("cache.save"));
    EXPECT_FALSE(cache.save(path_, dict()));
    faults::reset();
    EXPECT_EQ(slurp(path_), before);

    SynthesisCache loaded;
    EXPECT_TRUE(loaded.load(path_, dict()));
    EXPECT_FALSE(loaded.loadStats().salvaged);
    EXPECT_EQ(loaded.size(), cache.size());
}

TEST_F(CachePersistence, WarmCompilerFromDisk)
{
    // Simulate two compiler invocations: the first saves its cache,
    // the second loads it and compiles without any new synthesis.
    Schedule schedule;
    schedule.vector_bits = 1024;
    Kernel kernel = buildKernel("conv_nn", schedule);
    {
        SynthesisCache cache;
        HydrideCompiler compiler(dict(), "hvx", 1024, {}, &cache);
        compiler.compile(kernel);
        ASSERT_TRUE(cache.save(path_, dict()));
    }
    SynthesisCache warm;
    ASSERT_TRUE(warm.load(path_, dict()));
    HydrideCompiler compiler(dict(), "hvx", 1024, {}, &warm);
    KernelCompilation compiled = compiler.compile(kernel);
    EXPECT_EQ(warm.misses(), 0);
    EXPECT_EQ(compiled.cache_hits,
              static_cast<int>(compiled.windows.size()));
}

} // namespace
} // namespace hydride
