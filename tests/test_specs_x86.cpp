/**
 * @file
 * Tests for the x86 manual generator and pseudocode parser: every
 * generated instruction must parse and canonicalize, and spot-checked
 * instructions must compute the architecturally expected results.
 */
#include <gtest/gtest.h>

#include <map>

#include "hir/canonicalize.h"
#include "hir/printer.h"
#include "specs/x86_manual.h"
#include "specs/x86_parser.h"
#include "support/rng.h"
#include "support/strings.h"

namespace hydride {
namespace {

const IsaSpec &
manual()
{
    static const IsaSpec spec = generateX86Manual();
    return spec;
}

std::map<std::string, SpecFunction> &
parsedCache()
{
    static std::map<std::string, SpecFunction> cache;
    if (cache.empty()) {
        for (const auto &inst : manual().insts)
            cache.emplace(inst.name, parseX86Inst(inst));
    }
    return cache;
}

const SpecFunction &
fn(const std::string &name)
{
    auto it = parsedCache().find(name);
    EXPECT_NE(it, parsedCache().end()) << name << " not generated";
    return it->second;
}

TEST(X86Manual, GeneratesARealisticallySizedISA)
{
    // The real Intel manual set in the paper has 2,029 entries; the
    // generated stand-in must be in the same regime.
    EXPECT_GT(manual().insts.size(), 900u);
    EXPECT_LT(manual().insts.size(), 3000u);
}

TEST(X86Manual, NamesAreUnique)
{
    EXPECT_EQ(parsedCache().size(), manual().insts.size());
}

TEST(X86Manual, EveryInstructionParsesAndCanonicalizes)
{
    int failures = 0;
    for (const auto &inst : manual().insts) {
        const SpecFunction &spec = parsedCache().at(inst.name);
        CanonicalizeResult result = canonicalize(spec);
        if (!result.ok) {
            ++failures;
            if (failures < 5) {
                ADD_FAILURE() << inst.name << ": " << result.error << "\n"
                              << inst.pseudocode;
            }
        }
    }
    EXPECT_EQ(failures, 0);
}

TEST(X86Manual, AddEpi16ComputesElementwiseSum)
{
    const SpecFunction &add = fn("_mm256_add_epi16");
    Rng rng(1);
    BitVector a = BitVector::random(256, rng);
    BitVector b = BitVector::random(256, rng);
    BitVector out = add.evaluate({a, b});
    for (int e = 0; e < 16; ++e)
        EXPECT_EQ(out.extract(e * 16, 16),
                  a.extract(e * 16, 16).add(b.extract(e * 16, 16)));
}

TEST(X86Manual, AddsEpu8Saturates)
{
    const SpecFunction &adds = fn("_mm_adds_epu8");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromUint(8, 200));
    b.setSlice(0, BitVector::fromUint(8, 100));
    a.setSlice(8, BitVector::fromUint(8, 10));
    b.setSlice(8, BitVector::fromUint(8, 20));
    BitVector out = adds.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 8).toUint64(), 255u);
    EXPECT_EQ(out.extract(8, 8).toUint64(), 30u);
}

TEST(X86Manual, SubsEpu16ClampsAtZero)
{
    const SpecFunction &subs = fn("_mm_subs_epu16");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromUint(16, 5));
    b.setSlice(0, BitVector::fromUint(16, 9));
    BitVector out = subs.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0u);
}

TEST(X86Manual, MulhiMatchesWideProduct)
{
    const SpecFunction &mulhi = fn("_mm_mulhi_epi16");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromInt(16, -1234));
    b.setSlice(0, BitVector::fromInt(16, 5678));
    BitVector out = mulhi.evaluate({a, b});
    const int64_t product = -1234 * 5678;
    EXPECT_EQ(out.extract(0, 16).toInt64(), product >> 16);
}

TEST(X86Manual, MaskedAddBlendsWithSource)
{
    const SpecFunction &madd = fn("_mm512_mask_add_epi32");
    Rng rng(3);
    BitVector src = BitVector::random(512, rng);
    BitVector a = BitVector::random(512, rng);
    BitVector b = BitVector::random(512, rng);
    BitVector k(16);
    k.setBit(0, true);
    k.setBit(5, true);
    BitVector out = madd.evaluate({src, k, a, b});
    for (int e = 0; e < 16; ++e) {
        BitVector expect = (e == 0 || e == 5)
                               ? a.extract(e * 32, 32).add(b.extract(e * 32, 32))
                               : src.extract(e * 32, 32);
        EXPECT_EQ(out.extract(e * 32, 32), expect) << "element " << e;
    }
}

TEST(X86Manual, MaskzZeroesInactiveLanes)
{
    const SpecFunction &mz = fn("_mm_maskz_sub_epi8");
    Rng rng(4);
    BitVector a = BitVector::random(128, rng);
    BitVector b = BitVector::random(128, rng);
    BitVector k(16);
    k.setBit(3, true);
    BitVector out = mz.evaluate({k, a, b});
    for (int e = 0; e < 16; ++e) {
        BitVector expect = e == 3
                               ? a.extract(e * 8, 8).sub(b.extract(e * 8, 8))
                               : BitVector(8);
        EXPECT_EQ(out.extract(e * 8, 8), expect);
    }
}

TEST(X86Manual, UnpackLoInterleavesWithinLanes)
{
    const SpecFunction &unpack = fn("_mm256_unpacklo_epi16");
    BitVector a(256);
    BitVector b(256);
    for (int e = 0; e < 16; ++e) {
        a.setSlice(e * 16, BitVector::fromUint(16, 0x1000 + e));
        b.setSlice(e * 16, BitVector::fromUint(16, 0x2000 + e));
    }
    BitVector out = unpack.evaluate({a, b});
    // Lane 0: a0 b0 a1 b1 a2 b2 a3 b3; lane 1: a8 b8 ...
    for (int lane = 0; lane < 2; ++lane) {
        for (int m = 0; m < 4; ++m) {
            const int base = lane * 128 + m * 32;
            EXPECT_EQ(out.extract(base, 16).toUint64(),
                      0x1000u + lane * 8 + m);
            EXPECT_EQ(out.extract(base + 16, 16).toUint64(),
                      0x2000u + lane * 8 + m);
        }
    }
}

TEST(X86Manual, UnpackHiTakesUpperHalfOfEachLane)
{
    const SpecFunction &unpack = fn("_mm_unpackhi_epi32");
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 4; ++e) {
        a.setSlice(e * 32, BitVector::fromUint(32, 0xA0 + e));
        b.setSlice(e * 32, BitVector::fromUint(32, 0xB0 + e));
    }
    BitVector out = unpack.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toUint64(), 0xA2u);
    EXPECT_EQ(out.extract(32, 32).toUint64(), 0xB2u);
    EXPECT_EQ(out.extract(64, 32).toUint64(), 0xA3u);
    EXPECT_EQ(out.extract(96, 32).toUint64(), 0xB3u);
}

TEST(X86Manual, PacksSaturatesIntoNarrowElements)
{
    const SpecFunction &packs = fn("_mm_packs_epi16");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromInt(16, 300));   // saturates to 127
    a.setSlice(16, BitVector::fromInt(16, -300)); // saturates to -128
    b.setSlice(0, BitVector::fromInt(16, 42));
    BitVector out = packs.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 8).toInt64(), 127);
    EXPECT_EQ(out.extract(8, 8).toInt64(), -128);
    EXPECT_EQ(out.extract(64, 8).toInt64(), 42);
}

TEST(X86Manual, MaddComputesTwoWayDotProduct)
{
    const SpecFunction &madd = fn("_mm_madd_epi16");
    BitVector a(128);
    BitVector b(128);
    // Pair 0: 3*7 + (-2)*5 = 11.
    a.setSlice(0, BitVector::fromInt(16, 3));
    a.setSlice(16, BitVector::fromInt(16, -2));
    b.setSlice(0, BitVector::fromInt(16, 7));
    b.setSlice(16, BitVector::fromInt(16, 5));
    BitVector out = madd.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), 11);
}

TEST(X86Manual, DpwssdAccumulates)
{
    const SpecFunction &dp = fn("_mm512_dpwssd_epi32");
    BitVector src(512);
    BitVector a(512);
    BitVector b(512);
    src.setSlice(0, BitVector::fromInt(32, 1000));
    a.setSlice(0, BitVector::fromInt(16, 10));
    a.setSlice(16, BitVector::fromInt(16, 20));
    b.setSlice(0, BitVector::fromInt(16, 2));
    b.setSlice(16, BitVector::fromInt(16, 3));
    BitVector out = dp.evaluate({src, a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), 1000 + 10 * 2 + 20 * 3);
}

TEST(X86Manual, SadSumsAbsoluteDifferences)
{
    const SpecFunction &sad = fn("_mm_sad_epu8");
    BitVector a(128);
    BitVector b(128);
    a.setSlice(0, BitVector::fromUint(8, 10));
    b.setSlice(0, BitVector::fromUint(8, 250));
    a.setSlice(8, BitVector::fromUint(8, 7));
    b.setSlice(8, BitVector::fromUint(8, 3));
    BitVector out = sad.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 64).toUint64(), 240u + 4u);
}

TEST(X86Manual, SlliShiftsByImmediate)
{
    const SpecFunction &slli = fn("_mm256_slli_epi32");
    BitVector a(256);
    a.setSlice(0, BitVector::fromUint(32, 0x11));
    BitVector out = slli.evaluate({a}, {4});
    EXPECT_EQ(out.extract(0, 32).toUint64(), 0x110u);
    // Shift amount beyond the element width zeroes the element.
    out = slli.evaluate({a}, {40});
    EXPECT_TRUE(out.extract(0, 32).isZero());
}

TEST(X86Manual, AlignrConcatenatesAndShifts)
{
    const SpecFunction &alignr = fn("_mm_alignr_epi8");
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 16; ++e) {
        a.setSlice(e * 8, BitVector::fromUint(8, 0xA0 + e));
        b.setSlice(e * 8, BitVector::fromUint(8, 0xB0 + e));
    }
    BitVector out = alignr.evaluate({a, b}, {3});
    // Bytes 0..12 come from b[3..15], bytes 13..15 from a[0..2].
    EXPECT_EQ(out.extract(0, 8).toUint64(), 0xB3u);
    EXPECT_EQ(out.extract(12 * 8, 8).toUint64(), 0xBFu);
    EXPECT_EQ(out.extract(13 * 8, 8).toUint64(), 0xA0u);
    EXPECT_EQ(out.extract(15 * 8, 8).toUint64(), 0xA2u);
}

TEST(X86Manual, CvtWidensWithSignExtension)
{
    const SpecFunction &cvt = fn("_mm256_cvtepi8_epi16");
    BitVector a(128);
    a.setSlice(0, BitVector::fromInt(8, -5));
    a.setSlice(8, BitVector::fromInt(8, 100));
    BitVector out = cvt.evaluate({a});
    EXPECT_EQ(out.extract(0, 16).toInt64(), -5);
    EXPECT_EQ(out.extract(16, 16).toInt64(), 100);
}

TEST(X86Manual, HaddAddsAdjacentPairs)
{
    const SpecFunction &hadd = fn("_mm_hadd_epi32");
    BitVector a(128);
    BitVector b(128);
    for (int e = 0; e < 4; ++e) {
        a.setSlice(e * 32, BitVector::fromInt(32, e + 1));       // 1 2 3 4
        b.setSlice(e * 32, BitVector::fromInt(32, 10 * (e + 1))); // 10 20 ...
    }
    BitVector out = hadd.evaluate({a, b});
    EXPECT_EQ(out.extract(0, 32).toInt64(), 3);   // 1+2
    EXPECT_EQ(out.extract(32, 32).toInt64(), 7);  // 3+4
    EXPECT_EQ(out.extract(64, 32).toInt64(), 30); // 10+20
    EXPECT_EQ(out.extract(96, 32).toInt64(), 70); // 30+40
}

TEST(X86Manual, BroadcastReplicates)
{
    const SpecFunction &set1 = fn("_mm512_set1_epi64");
    BitVector a = BitVector::fromUint(64, 0xDEADBEEF12345678ull);
    BitVector out = set1.evaluate({a});
    for (int e = 0; e < 8; ++e)
        EXPECT_EQ(out.extract(e * 64, 64), a);
}

TEST(X86Manual, RotateLeftByImmediate)
{
    const SpecFunction &rol = fn("_mm_rol_epi32");
    BitVector a(128);
    a.setSlice(0, BitVector::fromUint(32, 0x80000001u));
    BitVector out = rol.evaluate({a}, {1});
    EXPECT_EQ(out.extract(0, 32).toUint64(), 0x3u);
}

TEST(X86Manual, ScalarOpsCoverAllWidths)
{
    for (int w : {8, 16, 32, 64}) {
        const SpecFunction &add = fn(format("_x86_add_r%d", w));
        Rng rng(100 + w);
        BitVector a = BitVector::random(w, rng);
        BitVector b = BitVector::random(w, rng);
        EXPECT_EQ(add.evaluate({a, b}), a.add(b));
    }
}

TEST(X86Manual, CanonicalFormOfUnpackIsByInner)
{
    CanonicalizeResult result =
        canonicalize(fn("_mm512_unpacklo_epi8"));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.sem.mode, TemplateMode::ByInner);
    EXPECT_EQ(result.sem.templates.size(), 2u);
}

TEST(X86Manual, CanonicalFormOfPackIsByOuter)
{
    CanonicalizeResult result = canonicalize(fn("_mm256_packs_epi32"));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.sem.mode, TemplateMode::ByOuter);
}

} // namespace
} // namespace hydride
