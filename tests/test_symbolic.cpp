/**
 * @file
 * Solver-core tests for the symbolic equivalence engine: AIG folding
 * and budgets, the known-bits lattice, Tseitin encoding + DPLL against
 * truth tables, and a differential fuzz of checkEquiv verdicts against
 * exhaustive enumeration at small widths.
 */
#include <gtest/gtest.h>

#include <memory>

#include "analysis/symbolic/equiv.h"
#include "analysis/symbolic/sat.h"
#include "support/rng.h"

namespace hydride {
namespace {

using sym::Aig;
using sym::kFalseLit;
using sym::KnownBits;
using sym::kTrueLit;
using sym::Lit;
using sym::litNot;
using sym::litVar;

// ---- AIG builder --------------------------------------------------------

TEST(Aig, ConstantAndComplementFolding)
{
    Aig aig;
    const Lit a = aig.addInput();
    const Lit b = aig.addInput();
    EXPECT_EQ(aig.mkAnd(a, kFalseLit), kFalseLit);
    EXPECT_EQ(aig.mkAnd(kFalseLit, b), kFalseLit);
    EXPECT_EQ(aig.mkAnd(a, kTrueLit), a);
    EXPECT_EQ(aig.mkAnd(kTrueLit, b), b);
    EXPECT_EQ(aig.mkAnd(a, a), a);
    EXPECT_EQ(aig.mkAnd(a, litNot(a)), kFalseLit);
    EXPECT_EQ(aig.mkXor(a, a), kFalseLit);
    EXPECT_EQ(aig.mkXor(a, litNot(a)), kTrueLit);
    EXPECT_EQ(aig.mkMux(kTrueLit, a, b), a);
    EXPECT_EQ(aig.mkMux(kFalseLit, a, b), b);
}

TEST(Aig, StructuralHashingSharesGates)
{
    Aig aig;
    const Lit a = aig.addInput();
    const Lit b = aig.addInput();
    const Lit g1 = aig.mkAnd(a, b);
    const size_t nodes = aig.numNodes();
    // Same gate again — in either operand order — allocates nothing.
    EXPECT_EQ(aig.mkAnd(a, b), g1);
    EXPECT_EQ(aig.mkAnd(b, a), g1);
    EXPECT_EQ(aig.numNodes(), nodes);
    // A genuinely different gate does allocate.
    aig.mkAnd(a, litNot(b));
    EXPECT_EQ(aig.numNodes(), nodes + 1);
}

TEST(Aig, NodeBudgetOverflowIsSticky)
{
    Aig aig(/*node_budget=*/8);
    std::vector<Lit> inputs;
    for (int i = 0; i < 6; ++i)
        inputs.push_back(aig.addInput());
    Lit acc = inputs[0];
    for (int round = 0; round < 64 && !aig.overflowed(); ++round)
        for (size_t i = 1; i < inputs.size(); ++i)
            acc = aig.mkAnd(aig.mkXor(acc, inputs[i]), inputs[i - 1]);
    EXPECT_TRUE(aig.overflowed());
    // Past the budget the builder still returns well-formed literals.
    const Lit l = aig.mkAnd(acc, inputs[1]);
    EXPECT_LT(litVar(l), aig.numNodes());
    EXPECT_TRUE(aig.overflowed());
}

TEST(Aig, EvalLitMatchesTruthTable)
{
    Aig aig;
    const Lit a = aig.addInput();
    const Lit b = aig.addInput();
    const Lit c = aig.addInput();
    const Lit f = aig.mkMux(a, aig.mkXor(b, c), aig.mkAnd(b, litNot(c)));
    for (int v = 0; v < 8; ++v) {
        const bool va = v & 1, vb = v & 2, vc = v & 4;
        const bool expect = va ? (vb != vc) : (vb && !vc);
        EXPECT_EQ(aig.evalLit(f, {va, vb, vc}), expect) << v;
    }
}

// ---- Known-bits lattice -------------------------------------------------

TEST(KnownBitsLattice, JoinKeepsOnlyAgreedBits)
{
    const KnownBits a = KnownBits::constant(BitVector::fromUint(4, 0b1010));
    const KnownBits b = KnownBits::constant(BitVector::fromUint(4, 0b1011));
    const KnownBits j = KnownBits::join(a, b);
    EXPECT_TRUE(j.contains(BitVector::fromUint(4, 0b1010)));
    EXPECT_TRUE(j.contains(BitVector::fromUint(4, 0b1011)));
    // Bit 0 (the disagreement) must have become unknown; the rest stay.
    EXPECT_FALSE(j.known.getBit(0));
    EXPECT_TRUE(j.known.getBit(1));
    EXPECT_TRUE(j.known.getBit(3));
    // Joining with top yields top.
    const KnownBits t = KnownBits::join(a, KnownBits::top(4));
    EXPECT_TRUE(t.known.isZero());
}

TEST(KnownBitsLattice, AddPropagatesCarriesThroughKnownBits)
{
    // a = ????01, b = 000001: the low bits 01 + 1 = 10 with no carry
    // out, so the two low result bits are known even though a's high
    // bits are not.
    const KnownBits a(BitVector::fromUint(6, 0b000011),
                      BitVector::fromUint(6, 0b000001));
    const KnownBits b = KnownBits::constant(BitVector::fromUint(6, 1));
    const KnownBits sum = kbAdd(a, b);
    EXPECT_TRUE(sum.known.getBit(0));
    EXPECT_TRUE(sum.known.getBit(1));
    EXPECT_FALSE(sum.value.getBit(0));
    EXPECT_TRUE(sum.value.getBit(1));
}

TEST(KnownBitsLattice, TransferFunctionsAreSound)
{
    // Randomized soundness: whenever the abstract inputs represent the
    // concrete inputs, the abstract result must represent the concrete
    // result. This is the property the proved-verdict tier relies on.
    Rng rng(0xC0FFEE11u);
    const int w = 8;
    for (int trial = 0; trial < 500; ++trial) {
        const BitVector ca = BitVector::random(w, rng);
        const BitVector cb = BitVector::random(w, rng);
        const BitVector mask_a = BitVector::random(w, rng);
        const BitVector mask_b = BitVector::random(w, rng);
        const KnownBits a(mask_a, ca.bvand(mask_a));
        const KnownBits b(mask_b, cb.bvand(mask_b));
        ASSERT_TRUE(a.contains(ca));
        ASSERT_TRUE(b.contains(cb));
        EXPECT_TRUE(kbAnd(a, b).contains(ca.bvand(cb)));
        EXPECT_TRUE(kbOr(a, b).contains(ca.bvor(cb)));
        EXPECT_TRUE(kbXor(a, b).contains(ca.bvxor(cb)));
        EXPECT_TRUE(kbNot(a).contains(ca.bvnot()));
        EXPECT_TRUE(kbAdd(a, b).contains(ca.add(cb)));
        EXPECT_TRUE(kbSub(a, b).contains(ca.sub(cb)));
        EXPECT_TRUE(kbNeg(a).contains(ca.neg()));
        const int amount = static_cast<int>(rng.nextBelow(w + 3));
        EXPECT_TRUE(kbShl(a, amount).contains(ca.shl(amount)));
        EXPECT_TRUE(kbLShr(a, amount).contains(ca.lshr(amount)));
        EXPECT_TRUE(kbAShr(a, amount).contains(ca.ashr(amount)));
        EXPECT_TRUE(kbSext(a, w + 4).contains(ca.sext(w + 4)));
        EXPECT_TRUE(kbZext(a, w + 4).contains(ca.zext(w + 4)));
        EXPECT_TRUE(kbTrunc(a, w - 3).contains(ca.trunc(w - 3)));
        EXPECT_TRUE(kbExtract(a, 2, 4).contains(ca.extract(2, 4)));
        EXPECT_TRUE(kbConcat(a, b).contains(BitVector::concat(ca, cb)));
        EXPECT_TRUE(kbSelect(a, a, b).contains(ca.isZero() ? cb : ca));
    }
}

// ---- Tseitin + DPLL -----------------------------------------------------

TEST(Sat, TrivialContradictionIsUnsat)
{
    sym::SatSolver solver(1);
    solver.addClause({Lit(2 * 0)});
    solver.addClause({Lit(2 * 0 + 1)});
    EXPECT_EQ(solver.solve(1000).status, sym::SatStatus::Unsat);
}

TEST(Sat, ModelSatisfiesAllClauses)
{
    // (x0 | x1) & (~x0 | x1) & (~x1 | x2)
    const std::vector<std::vector<Lit>> clauses = {
        {0, 2}, {1, 2}, {3, 4}};
    sym::SatSolver solver(3);
    for (const auto &c : clauses)
        solver.addClause(c);
    const sym::SatResult r = solver.solve(1000);
    ASSERT_EQ(r.status, sym::SatStatus::Sat);
    for (const auto &clause : clauses) {
        bool satisfied = false;
        for (Lit l : clause)
            satisfied = satisfied ||
                        (r.model[litVar(l)] != 0) != sym::litInverted(l);
        EXPECT_TRUE(satisfied);
    }
}

TEST(Sat, TseitinAgreesWithTruthTableOnRandomCircuits)
{
    Rng rng(0x7AB1E5u);
    for (int trial = 0; trial < 40; ++trial) {
        Aig aig;
        std::vector<Lit> pool;
        const int num_inputs = 4 + static_cast<int>(rng.nextBelow(3));
        for (int i = 0; i < num_inputs; ++i)
            pool.push_back(aig.addInput());
        for (int g = 0; g < 20; ++g) {
            Lit a = pool[rng.nextBelow(pool.size())];
            Lit b = pool[rng.nextBelow(pool.size())];
            if (rng.nextBelow(2)) a = litNot(a);
            if (rng.nextBelow(2)) b = litNot(b);
            pool.push_back(rng.nextBelow(2) ? aig.mkAnd(a, b)
                                            : aig.mkXor(a, b));
        }
        Lit root = pool.back();
        if (rng.nextBelow(2))
            root = litNot(root);

        // Ground truth by exhaustive evaluation.
        bool satisfiable = false;
        for (uint64_t v = 0; v < (uint64_t(1) << num_inputs); ++v) {
            std::vector<uint8_t> in(num_inputs);
            for (int i = 0; i < num_inputs; ++i)
                in[i] = (v >> i) & 1;
            if (aig.evalLit(root, in)) {
                satisfiable = true;
                break;
            }
        }

        sym::SatSolver solver;
        cnfFromAig(aig, root, solver);
        const sym::SatResult r = solver.solve(100000);
        ASSERT_NE(r.status, sym::SatStatus::Budget) << trial;
        EXPECT_EQ(r.status == sym::SatStatus::Sat, satisfiable) << trial;
        if (r.status == sym::SatStatus::Sat) {
            // The model must actually drive the circuit to true —
            // solver vars coincide with AIG node indices.
            std::vector<uint8_t> in(num_inputs);
            for (uint32_t var = 0; var < aig.numNodes(); ++var)
                if (aig.isInput(var))
                    in[aig.inputIndex(var)] =
                        var < r.model.size() ? r.model[var] : 0;
            EXPECT_TRUE(aig.evalLit(root, in)) << trial;
        }
    }
}

// ---- checkEquiv differential fuzz ---------------------------------------

/** A tiny expression tree over two bitvector arguments, evaluated
 *  concretely, over AIG vectors, and over known-bits from the same
 *  structure — exactly the BVFun contract. */
struct Tree
{
    int input = -1; ///< >= 0: argument index; otherwise binary node.
    BVBinOp op = BVBinOp::Add;
    std::shared_ptr<Tree> l, r;
};

using TreePtr = std::shared_ptr<Tree>;

TreePtr leaf(int input)
{
    auto t = std::make_shared<Tree>();
    t->input = input;
    return t;
}

TreePtr node(BVBinOp op, TreePtr l, TreePtr r)
{
    auto t = std::make_shared<Tree>();
    t->op = op;
    t->l = std::move(l);
    t->r = std::move(r);
    return t;
}

BitVector
evalTreeConcrete(const Tree &t, const std::vector<BitVector> &args)
{
    if (t.input >= 0)
        return args[static_cast<size_t>(t.input)];
    return applyBVBinOp(t.op, evalTreeConcrete(*t.l, args),
                        evalTreeConcrete(*t.r, args));
}

template <typename Domain, typename V>
V
evalTreeDom(const Tree &t, Domain &dom, const std::vector<V> &args)
{
    if (t.input >= 0)
        return args[static_cast<size_t>(t.input)];
    return dom.binOp(t.op, evalTreeDom(*t.l, dom, args),
                     evalTreeDom(*t.r, dom, args));
}

sym::BVFun
funFromTree(TreePtr tree, int width)
{
    sym::BVFun fun;
    fun.arg_widths = {width, width};
    fun.concrete = [tree](const std::vector<BitVector> &args) {
        return evalTreeConcrete(*tree, args);
    };
    fun.symbolic = [tree](sym::AigDomain &dom,
                          const std::vector<sym::SymVec> &args) {
        return evalTreeDom(*tree, dom, args);
    };
    fun.knownbits = [tree](sym::KnownBitsDomain &dom,
                           const std::vector<KnownBits> &args) {
        return evalTreeDom(*tree, dom, args);
    };
    fun.intervals = [tree](dataflow::IntervalDomain &dom,
                           const std::vector<dataflow::Interval> &args) {
        return evalTreeDom(*tree, dom, args);
    };
    return fun;
}

/** Exhaustively compare two trees over all inputs of `width` bits. */
bool
exhaustivelyEqual(const Tree &a, const Tree &b, int width)
{
    for (uint64_t va = 0; va < (uint64_t(1) << width); ++va) {
        for (uint64_t vb = 0; vb < (uint64_t(1) << width); ++vb) {
            const std::vector<BitVector> args = {
                BitVector::fromUint(width, va),
                BitVector::fromUint(width, vb)};
            if (evalTreeConcrete(a, args) != evalTreeConcrete(b, args))
                return false;
        }
    }
    return true;
}

TEST(CheckEquiv, ProvesAlgebraicIdentities)
{
    const int w = 6;
    const sym::EqBudget budget;
    const TreePtr a = leaf(0), b = leaf(1);
    const struct
    {
        const char *name;
        TreePtr lhs, rhs;
    } identities[] = {
        {"add-commutes", node(BVBinOp::Add, a, b), node(BVBinOp::Add, b, a)},
        {"xor-via-and-or",
         node(BVBinOp::Xor, a, b),
         node(BVBinOp::Xor, node(BVBinOp::And, a, b),
              node(BVBinOp::Or, a, b))},
        {"minmax-partition",
         node(BVBinOp::Add, node(BVBinOp::MinU, a, b),
              node(BVBinOp::MaxU, a, b)),
         node(BVBinOp::Add, a, b)},
    };
    for (const auto &id : identities) {
        ASSERT_TRUE(exhaustivelyEqual(*id.lhs, *id.rhs, w)) << id.name;
        const sym::EqResult r = sym::checkEquiv(
            funFromTree(id.lhs, w), funFromTree(id.rhs, w), budget);
        EXPECT_EQ(r.verdict, sym::Verdict::Proved)
            << id.name << ": " << r.method << " " << r.reason;
    }
}

TEST(CheckEquiv, RefutesWithValidatedModels)
{
    const int w = 6;
    const sym::EqBudget budget;
    const TreePtr a = leaf(0), b = leaf(1);
    const struct
    {
        const char *name;
        TreePtr lhs, rhs;
    } wrongs[] = {
        {"sub-anticommutes", node(BVBinOp::Sub, a, b),
         node(BVBinOp::Sub, b, a)},
        {"saturation-matters", node(BVBinOp::AddSatS, a, b),
         node(BVBinOp::Add, a, b)},
        {"signedness-matters", node(BVBinOp::MinS, a, b),
         node(BVBinOp::MinU, a, b)},
    };
    for (const auto &wrong : wrongs) {
        const sym::EqResult r = sym::checkEquiv(
            funFromTree(wrong.lhs, w), funFromTree(wrong.rhs, w), budget);
        ASSERT_EQ(r.verdict, sym::Verdict::Refuted) << wrong.name;
        ASSERT_EQ(r.model.size(), 2u) << wrong.name;
        // The reported model must be a genuine counterexample.
        EXPECT_NE(evalTreeConcrete(*wrong.lhs, r.model),
                  evalTreeConcrete(*wrong.rhs, r.model))
            << wrong.name;
    }
}

TEST(CheckEquiv, VerdictsAgreeWithExhaustiveEnumeration)
{
    // Differential fuzz: random tree pairs at 2x6 = 12 input bits.
    // Every proved verdict is checked against exhaustive enumeration
    // (soundness), every refutation model is re-run concretely, and
    // nothing this small may exhaust the default budgets.
    const int w = 6;
    const sym::EqBudget budget;
    const BVBinOp ops[] = {BVBinOp::Add,     BVBinOp::Sub,
                           BVBinOp::Mul,     BVBinOp::And,
                           BVBinOp::Or,      BVBinOp::Xor,
                           BVBinOp::AddSatS, BVBinOp::SubSatU,
                           BVBinOp::MinS,    BVBinOp::MaxU,
                           BVBinOp::AvgU,    BVBinOp::UDiv};
    Rng rng(0xF0221u);
    const std::function<TreePtr(int)> randomTree = [&](int depth) {
        if (depth == 0 || rng.nextBelow(3) == 0)
            return leaf(static_cast<int>(rng.nextBelow(2)));
        return node(ops[rng.nextBelow(std::size(ops))],
                    randomTree(depth - 1), randomTree(depth - 1));
    };
    int proved = 0, refuted = 0;
    for (int trial = 0; trial < 40; ++trial) {
        const TreePtr lhs = randomTree(3);
        const TreePtr rhs = rng.nextBelow(4) == 0
                                ? lhs // guaranteed-equivalent pair
                                : randomTree(3);
        const sym::EqResult r = sym::checkEquiv(
            funFromTree(lhs, w), funFromTree(rhs, w), budget);
        ASSERT_NE(r.verdict, sym::Verdict::Unknown)
            << trial << ": " << r.reason;
        const bool equal = exhaustivelyEqual(*lhs, *rhs, w);
        if (r.verdict == sym::Verdict::Proved) {
            ++proved;
            EXPECT_TRUE(equal) << trial;
        } else {
            ++refuted;
            EXPECT_FALSE(equal) << trial;
            ASSERT_EQ(r.model.size(), 2u);
            EXPECT_NE(evalTreeConcrete(*lhs, r.model),
                      evalTreeConcrete(*rhs, r.model))
                << trial;
        }
    }
    // The fuzz must exercise both verdicts to mean anything.
    EXPECT_GT(proved, 0);
    EXPECT_GT(refuted, 0);
}

/** ult(urem(x, 5), 6) over any domain: a range fact that bitwise
 *  tracking cannot decide (urem(x, 5) has three unknown low bits, so
 *  its known-bits maximum is 7 >= 6) but intervals settle instantly
 *  (urem(x, 5) is in [0, 4] and 4 < 6). */
template <typename Domain>
typename Domain::Value
evalRangeFact(Domain &dom, const typename Domain::Value &x)
{
    const auto five = dom.constant(BitVector::fromUint(8, 5));
    const auto six = dom.constant(BitVector::fromUint(8, 6));
    return dom.cmp(BVCmpOp::Ult, dom.binOp(BVBinOp::URem, x, five), six);
}

TEST(CheckEquiv, IntervalTierProvesRangeFacts)
{
    sym::BVFun lhs;
    lhs.arg_widths = {8};
    lhs.concrete = [](const std::vector<BitVector> &args) {
        const BitVector rem = args[0].urem(BitVector::fromUint(8, 5));
        return BitVector::fromUint(1, rem.ult(BitVector::fromUint(8, 6)));
    };
    lhs.symbolic = [](sym::AigDomain &dom,
                      const std::vector<sym::SymVec> &args) {
        return evalRangeFact(dom, args[0]);
    };
    lhs.knownbits = [](sym::KnownBitsDomain &dom,
                       const std::vector<KnownBits> &args) {
        return evalRangeFact(dom, args[0]);
    };
    lhs.intervals = [](dataflow::IntervalDomain &dom,
                       const std::vector<dataflow::Interval> &args) {
        return evalRangeFact(dom, args[0]);
    };

    sym::BVFun rhs;
    rhs.arg_widths = {8};
    const BitVector one = BitVector::fromUint(1, 1);
    rhs.concrete = [one](const std::vector<BitVector> &) { return one; };
    rhs.symbolic = [one](sym::AigDomain &dom,
                         const std::vector<sym::SymVec> &) {
        return dom.constant(one);
    };
    rhs.knownbits = [one](sym::KnownBitsDomain &dom,
                          const std::vector<KnownBits> &) {
        return dom.constant(one);
    };
    rhs.intervals = [one](dataflow::IntervalDomain &dom,
                          const std::vector<dataflow::Interval> &) {
        return dom.constant(one);
    };

    const sym::EqResult r = sym::checkEquiv(lhs, rhs, sym::EqBudget{});
    EXPECT_EQ(r.verdict, sym::Verdict::Proved) << r.method << " " << r.reason;
    // The interval tier must have decided — earlier tiers cannot:
    // sampling never refutes an equivalence, and known-bits leaves the
    // comparison bit unknown.
    EXPECT_EQ(r.method, "interval");
}

TEST(CheckEquiv, BudgetExhaustionIsUnknownNeverProved)
{
    // An equivalent-but-nonstructural pair under a starvation budget:
    // concrete sampling cannot refute (they are equal), known-bits
    // cannot prove (mul degrades to top), and the AIG tier overflows.
    const int w = 8;
    const TreePtr a = leaf(0), b = leaf(1);
    sym::EqBudget budget;
    budget.max_nodes = 64;
    budget.max_conflicts = 1;
    const sym::EqResult r =
        sym::checkEquiv(funFromTree(node(BVBinOp::Mul, a, b), w),
                        funFromTree(node(BVBinOp::Mul, b, a), w), budget);
    EXPECT_EQ(r.verdict, sym::Verdict::Unknown);
    EXPECT_FALSE(r.reason.empty());
}

} // namespace
} // namespace hydride
