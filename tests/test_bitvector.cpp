/**
 * @file
 * Unit and property tests for the BitVector value type.
 *
 * The property sweeps run each algebraic law across a range of widths
 * (including widths straddling the 64-bit word boundary) on random
 * operands, validating against native 64-bit arithmetic where a
 * reference exists.
 */
#include <gtest/gtest.h>

#include "analysis/symbolic/bitblast.h"
#include "hir/bitvector.h"
#include "hir/expr.h"
#include "support/rng.h"

namespace hydride {
namespace {

TEST(BitVector, ConstructionAndBits)
{
    BitVector bv(8);
    EXPECT_EQ(bv.width(), 8);
    EXPECT_TRUE(bv.isZero());
    bv.setBit(3, true);
    EXPECT_TRUE(bv.getBit(3));
    EXPECT_FALSE(bv.getBit(2));
    EXPECT_EQ(bv.toUint64(), 8u);
}

TEST(BitVector, FromUintMasksToWidth)
{
    BitVector bv = BitVector::fromUint(4, 0xFF);
    EXPECT_EQ(bv.toUint64(), 0xFu);
}

TEST(BitVector, FromIntSignExtends)
{
    BitVector bv = BitVector::fromInt(100, -1);
    EXPECT_EQ(bv, BitVector::allOnes(100));
    EXPECT_EQ(BitVector::fromInt(16, -2).toInt64(), -2);
}

TEST(BitVector, ToInt64Boundaries)
{
    EXPECT_EQ(BitVector::fromUint(8, 0x80).toInt64(), -128);
    EXPECT_EQ(BitVector::fromUint(8, 0x7F).toInt64(), 127);
    EXPECT_EQ(BitVector::fromUint(1, 1).toInt64(), -1);
}

TEST(BitVector, HexRendering)
{
    EXPECT_EQ(BitVector::fromUint(16, 0xBEEF).toHex(), "beef");
    EXPECT_EQ(BitVector::fromUint(12, 0xABC).toHex(), "abc");
    EXPECT_EQ(BitVector(8).toHex(), "00");
}

TEST(BitVector, ExtractAcrossWordBoundary)
{
    Rng rng(42);
    BitVector wide = BitVector::random(192, rng);
    BitVector slice = wide.extract(60, 16);
    for (int b = 0; b < 16; ++b)
        EXPECT_EQ(slice.getBit(b), wide.getBit(60 + b));
}

TEST(BitVector, SetSliceRoundTrip)
{
    Rng rng(43);
    BitVector whole(256);
    BitVector part = BitVector::random(48, rng);
    whole.setSlice(100, part);
    EXPECT_EQ(whole.extract(100, 48), part);
    EXPECT_TRUE(whole.extract(0, 100).isZero());
    EXPECT_TRUE(whole.extract(148, 108).isZero());
}

TEST(BitVector, ConcatOrdering)
{
    BitVector high = BitVector::fromUint(8, 0xAB);
    BitVector low = BitVector::fromUint(8, 0xCD);
    BitVector joined = BitVector::concat(high, low);
    EXPECT_EQ(joined.width(), 16);
    EXPECT_EQ(joined.toUint64(), 0xABCDu);
}

TEST(BitVector, ZextSextTrunc)
{
    BitVector bv = BitVector::fromUint(8, 0x80);
    EXPECT_EQ(bv.zext(16).toUint64(), 0x80u);
    EXPECT_EQ(bv.sext(16).toUint64(), 0xFF80u);
    EXPECT_EQ(bv.sext(16).trunc(8), bv);
    // Sign extension across word boundaries.
    EXPECT_EQ(BitVector::fromInt(8, -3).sext(200).trunc(64).toInt64(), -3);
    EXPECT_EQ(BitVector::fromInt(8, -3).sext(200).extract(190, 10),
              BitVector::allOnes(10));
}

TEST(BitVector, ShiftBasics)
{
    BitVector bv = BitVector::fromUint(8, 0x81);
    EXPECT_EQ(bv.shl(1).toUint64(), 0x02u);
    EXPECT_EQ(bv.lshr(1).toUint64(), 0x40u);
    EXPECT_EQ(bv.ashr(1).toUint64(), 0xC0u);
    EXPECT_TRUE(bv.shl(8).isZero());
    EXPECT_TRUE(bv.lshr(100).isZero());
    EXPECT_EQ(bv.ashr(100), BitVector::allOnes(8));
}

TEST(BitVector, Rotations)
{
    BitVector bv = BitVector::fromUint(8, 0b00000011);
    EXPECT_EQ(bv.rotr(1).toUint64(), 0b10000001u);
    EXPECT_EQ(bv.rotl(1).toUint64(), 0b00000110u);
    EXPECT_EQ(bv.rotr(8), bv);
    EXPECT_EQ(bv.rotl(9), bv.rotl(1));
}

TEST(BitVector, SaturatingAddSigned)
{
    BitVector max8 = BitVector::fromUint(8, 0x7F);
    BitVector one = BitVector::fromUint(8, 1);
    EXPECT_EQ(max8.addSatS(one).toInt64(), 127);
    BitVector min8 = BitVector::fromUint(8, 0x80);
    EXPECT_EQ(min8.addSatS(BitVector::fromInt(8, -1)).toInt64(), -128);
    EXPECT_EQ(BitVector::fromInt(8, 5).addSatS(BitVector::fromInt(8, -3))
                  .toInt64(),
              2);
}

TEST(BitVector, SaturatingAddUnsigned)
{
    BitVector big = BitVector::fromUint(8, 0xF0);
    BitVector small = BitVector::fromUint(8, 0x20);
    EXPECT_EQ(big.addSatU(small).toUint64(), 0xFFu);
    EXPECT_EQ(small.addSatU(small).toUint64(), 0x40u);
}

TEST(BitVector, SaturatingSub)
{
    BitVector a = BitVector::fromUint(8, 0x10);
    BitVector b = BitVector::fromUint(8, 0x20);
    EXPECT_TRUE(a.subSatU(b).isZero());
    EXPECT_EQ(b.subSatU(a).toUint64(), 0x10u);
    EXPECT_EQ(BitVector::fromInt(8, -100).subSatS(BitVector::fromInt(8, 100))
                  .toInt64(),
              -128);
}

TEST(BitVector, SatNarrow)
{
    EXPECT_EQ(BitVector::fromInt(16, 300).satNarrowS(8).toInt64(), 127);
    EXPECT_EQ(BitVector::fromInt(16, -300).satNarrowS(8).toInt64(), -128);
    EXPECT_EQ(BitVector::fromInt(16, 42).satNarrowS(8).toInt64(), 42);
    EXPECT_EQ(BitVector::fromInt(16, 300).satNarrowU(8).toUint64(), 255u);
    EXPECT_EQ(BitVector::fromInt(16, -5).satNarrowU(8).toUint64(), 0u);
    EXPECT_EQ(BitVector::fromInt(16, 99).satNarrowU(8).toUint64(), 99u);
}

TEST(BitVector, DivisionEdgeCases)
{
    BitVector seven = BitVector::fromUint(8, 7);
    BitVector zero(8);
    EXPECT_EQ(seven.udiv(zero), BitVector::allOnes(8));
    EXPECT_EQ(seven.urem(zero), seven);
    EXPECT_EQ(BitVector::fromInt(8, -7).sdiv(BitVector::fromInt(8, 2))
                  .toInt64(),
              -3);
    EXPECT_EQ(BitVector::fromInt(8, -7).srem(BitVector::fromInt(8, 2))
                  .toInt64(),
              -1);
}

TEST(BitVector, MinMax)
{
    BitVector a = BitVector::fromInt(8, -5);
    BitVector b = BitVector::fromInt(8, 3);
    EXPECT_EQ(a.minS(b).toInt64(), -5);
    EXPECT_EQ(a.maxS(b).toInt64(), 3);
    // Unsigned: -5 == 0xFB is larger than 3.
    EXPECT_EQ(a.minU(b).toInt64(), 3);
    EXPECT_EQ(a.maxU(b), a);
}

TEST(BitVector, AbsAndAverage)
{
    EXPECT_EQ(BitVector::fromInt(8, -5).absS().toInt64(), 5);
    EXPECT_EQ(BitVector::fromInt(8, 5).absS().toInt64(), 5);
    // abs(INT_MIN) wraps.
    EXPECT_EQ(BitVector::fromInt(8, -128).absS().toInt64(), -128);
    EXPECT_EQ(BitVector::fromUint(8, 3).avgU(BitVector::fromUint(8, 4))
                  .toUint64(),
              4u);
    EXPECT_EQ(BitVector::fromUint(8, 250).avgU(BitVector::fromUint(8, 250))
                  .toUint64(),
              250u);
    EXPECT_EQ(BitVector::fromInt(8, -3).avgS(BitVector::fromInt(8, -4))
                  .toInt64(),
              -3);
}

TEST(BitVector, Popcount)
{
    EXPECT_EQ(BitVector::fromUint(16, 0xF0F0).popcount().toUint64(), 8u);
    EXPECT_TRUE(BitVector(128).popcount().isZero());
    EXPECT_EQ(BitVector::allOnes(130).popcount().toUint64(), 130u);
}

TEST(BitVector, ComparisonsSignedUnsigned)
{
    BitVector neg = BitVector::fromInt(8, -1);
    BitVector one = BitVector::fromUint(8, 1);
    EXPECT_TRUE(neg.slt(one));
    EXPECT_FALSE(neg.ult(one));
    EXPECT_TRUE(one.ult(neg));
    EXPECT_TRUE(one.ule(one));
    EXPECT_TRUE(one.sle(one));
}

TEST(BitVector, HashDiffersByWidthAndValue)
{
    EXPECT_NE(BitVector(8).hash(), BitVector(9).hash());
    EXPECT_NE(BitVector::fromUint(8, 1).hash(), BitVector::fromUint(8, 2).hash());
}

// ---- Property sweeps over widths ------------------------------------------

class BitVectorWidths : public ::testing::TestWithParam<int>
{
};

TEST_P(BitVectorWidths, AddMatchesUint64Reference)
{
    const int width = GetParam();
    if (width > 64)
        GTEST_SKIP() << "reference is 64-bit";
    Rng rng(1000 + width);
    const uint64_t mask = width == 64 ? ~0ull : ((1ull << width) - 1);
    for (int trial = 0; trial < 30; ++trial) {
        uint64_t a = rng.next() & mask;
        uint64_t b = rng.next() & mask;
        BitVector bva = BitVector::fromUint(width, a);
        BitVector bvb = BitVector::fromUint(width, b);
        EXPECT_EQ(bva.add(bvb).toUint64(), (a + b) & mask);
        EXPECT_EQ(bva.sub(bvb).toUint64(), (a - b) & mask);
        EXPECT_EQ(bva.mul(bvb).toUint64(), (a * b) & mask);
        if (b != 0) {
            EXPECT_EQ(bva.udiv(bvb).toUint64(), a / b);
            EXPECT_EQ(bva.urem(bvb).toUint64(), a % b);
        }
    }
}

TEST_P(BitVectorWidths, AdditiveGroupLaws)
{
    const int width = GetParam();
    Rng rng(2000 + width);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector a = BitVector::random(width, rng);
        BitVector b = BitVector::random(width, rng);
        BitVector c = BitVector::random(width, rng);
        EXPECT_EQ(a.add(b), b.add(a));
        EXPECT_EQ(a.add(b).add(c), a.add(b.add(c)));
        EXPECT_EQ(a.add(a.neg()), BitVector(width));
        EXPECT_EQ(a.sub(b), a.add(b.neg()));
    }
}

TEST_P(BitVectorWidths, BitwiseLaws)
{
    const int width = GetParam();
    Rng rng(3000 + width);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector a = BitVector::random(width, rng);
        BitVector b = BitVector::random(width, rng);
        EXPECT_EQ(a.bvand(b).bvor(a.bvand(b.bvnot())), a);
        EXPECT_EQ(a.bvxor(a), BitVector(width));
        EXPECT_EQ(a.bvnot().bvnot(), a);
        EXPECT_EQ(a.bvor(b).bvnot(), a.bvnot().bvand(b.bvnot()));
    }
}

TEST_P(BitVectorWidths, ShiftComposition)
{
    const int width = GetParam();
    Rng rng(4000 + width);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector a = BitVector::random(width, rng);
        const int s1 = static_cast<int>(rng.nextBelow(width));
        const int s2 = static_cast<int>(rng.nextBelow(width));
        EXPECT_EQ(a.shl(s1).shl(s2), a.shl(s1 + s2));
        EXPECT_EQ(a.lshr(s1).lshr(s2), a.lshr(s1 + s2));
        EXPECT_EQ(a.rotr(s1).rotl(s1), a);
    }
}

TEST_P(BitVectorWidths, ExtractConcatInverse)
{
    const int width = GetParam();
    if (width < 2)
        GTEST_SKIP();
    Rng rng(5000 + width);
    for (int trial = 0; trial < 10; ++trial) {
        BitVector a = BitVector::random(width, rng);
        const int cut = 1 + static_cast<int>(rng.nextBelow(width - 1));
        BitVector low = a.extract(0, cut);
        BitVector high = a.extract(cut, width - cut);
        EXPECT_EQ(BitVector::concat(high, low), a);
    }
}

TEST_P(BitVectorWidths, SaturationIsClamping)
{
    const int width = GetParam();
    if (width > 60)
        GTEST_SKIP() << "reference uses int64 arithmetic";
    Rng rng(6000 + width);
    const int64_t smax = (1ll << (width - 1)) - 1;
    const int64_t smin = -(1ll << (width - 1));
    for (int trial = 0; trial < 30; ++trial) {
        BitVector a = BitVector::random(width, rng);
        BitVector b = BitVector::random(width, rng);
        const int64_t sum = a.toInt64() + b.toInt64();
        EXPECT_EQ(a.addSatS(b).toInt64(),
                  std::min(smax, std::max(smin, sum)));
        const int64_t diff = a.toInt64() - b.toInt64();
        EXPECT_EQ(a.subSatS(b).toInt64(),
                  std::min(smax, std::max(smin, diff)));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVectorWidths,
                         ::testing::Values(1, 7, 8, 16, 31, 32, 33, 64, 65,
                                           127, 128, 200, 512, 2048));

// ---- Edge cases pinned for the symbolic equivalence checker ----------------
//
// The symbolic bit-blaster (analysis/symbolic/bitblast.*) re-implements
// every operation below over AIG literals. These tests pin the concrete
// corner-case semantics, and the *Agreement tests evaluate the blasted
// circuit on the same inputs — any drift between the two evaluators
// turns a sound `proved` verdict into a lie, so both directions are
// regression-tested here.

TEST(BitVector, ShiftAtOrBeyondWidthIsFullShiftOut)
{
    const BitVector a = BitVector::fromUint(8, 0xA5);
    for (int amount : {8, 9, 64, 100000}) {
        EXPECT_TRUE(a.shl(amount).isZero()) << amount;
        EXPECT_TRUE(a.lshr(amount).isZero()) << amount;
        EXPECT_EQ(a.ashr(amount), BitVector::allOnes(8)) << amount;
    }
    const BitVector positive = BitVector::fromUint(8, 0x25);
    EXPECT_TRUE(positive.ashr(8).isZero());
    EXPECT_TRUE(positive.ashr(500).isZero());
}

TEST(BitVector, ShiftAmountWiderThanSixtyFourBitsClamps)
{
    // A 128-bit shift amount with a set high word must clamp to
    // "everything shifted out", not truncate modulo 2^64.
    BitVector huge(128);
    huge.setBit(64, true); // 2^64: low 64 bits are all zero.
    EXPECT_EQ(shiftAmountOf(huge), BitVector::kMaxWidth);
    const BitVector a = BitVector::fromUint(8, 0xFF);
    EXPECT_TRUE(a.shl(shiftAmountOf(huge)).isZero());
}

TEST(BitVector, SignedDivisionWrapsAtSignedMin)
{
    // SMT-LIB bvsdiv semantics: INT_MIN / -1 wraps back to INT_MIN
    // (the magnitude is unrepresentable), and the remainder is zero.
    const BitVector smin = BitVector::fromUint(8, 0x80);
    const BitVector minus_one = BitVector::allOnes(8);
    EXPECT_EQ(smin.sdiv(minus_one), smin);
    EXPECT_TRUE(smin.srem(minus_one).isZero());
    EXPECT_EQ(smin.sdiv(BitVector::fromInt(8, 1)), smin);
}

TEST(BitVector, DivisionByZeroMatchesSmtLib)
{
    const BitVector zero(8);
    // bvudiv x 0 = all ones; bvurem x 0 = x.
    EXPECT_EQ(BitVector::fromUint(8, 7).udiv(zero), BitVector::allOnes(8));
    EXPECT_EQ(BitVector::fromUint(8, 7).urem(zero),
              BitVector::fromUint(8, 7));
    // bvsdiv x 0 = -1 for x >= 0, +1 for x < 0; bvsrem x 0 = x.
    EXPECT_EQ(BitVector::fromInt(8, 7).sdiv(zero), BitVector::allOnes(8));
    EXPECT_EQ(BitVector::fromInt(8, -7).sdiv(zero),
              BitVector::fromInt(8, 1));
    EXPECT_EQ(BitVector::fromInt(8, -7).srem(zero),
              BitVector::fromInt(8, -7));
}

TEST(BitVector, SignedRemainderFollowsDividendSign)
{
    EXPECT_EQ(BitVector::fromInt(8, -7).srem(BitVector::fromInt(8, 3)),
              BitVector::fromInt(8, -1));
    EXPECT_EQ(BitVector::fromInt(8, 7).srem(BitVector::fromInt(8, -3)),
              BitVector::fromInt(8, 1));
}

TEST(BitVector, EvalIntDivisionWrapsAtInt64Min)
{
    // Host int64 INT64_MIN / -1 is UB; the evaluator must wrap like
    // the bitvector semantics above instead of trapping.
    const int64_t smin = std::numeric_limits<int64_t>::min();
    EXPECT_EQ(evalInt(intBin(IntBinOp::Div, intConst(smin), intConst(-1)),
                      {}),
              smin);
    EXPECT_EQ(evalInt(intBin(IntBinOp::Mod, intConst(smin), intConst(-1)),
                      {}),
              0);
}

namespace {

/** Evaluate a blasted vector on concrete inputs laid out in AIG input
 *  creation order. */
BitVector
evalSym(const sym::Aig &aig, const sym::SymVec &v,
        const std::vector<BitVector> &inputs)
{
    std::vector<uint8_t> bits;
    for (const BitVector &in : inputs)
        for (int i = 0; i < in.width(); ++i)
            bits.push_back(in.getBit(i) ? 1 : 0);
    BitVector out(v.width());
    for (int i = 0; i < v.width(); ++i)
        out.setBit(i, aig.evalLit(v.bits[i], bits));
    return out;
}

} // namespace

TEST(BitVectorSymbolicAgreement, ShiftsAgreeAtEveryAmount)
{
    // Shift-by-BV circuits vs. concrete applyBVBinOp, including the
    // amounts at and past the width.
    const int w = 8;
    Rng rng(0xB1A57);
    for (int trial = 0; trial < 8; ++trial) {
        const BitVector a = BitVector::random(w, rng);
        for (int amount = 0; amount <= 2 * w + 1; ++amount) {
            const BitVector amt = BitVector::fromUint(w, amount);
            sym::Aig aig;
            const sym::SymVec sa = sym::svInputs(aig, w);
            const sym::SymVec sb = sym::svConst(amt);
            for (auto op : {BVBinOp::Shl, BVBinOp::LShr, BVBinOp::AShr}) {
                const sym::SymVec circuit =
                    op == BVBinOp::Shl    ? sym::svShl(aig, sa, sb)
                    : op == BVBinOp::LShr ? sym::svLShr(aig, sa, sb)
                                          : sym::svAShr(aig, sa, sb);
                EXPECT_EQ(evalSym(aig, circuit, {a}),
                          applyBVBinOp(op, a, amt))
                    << "op " << static_cast<int>(op) << " amount "
                    << amount;
            }
        }
    }
}

TEST(BitVectorSymbolicAgreement, DivisionAgreesOnEdgeInputs)
{
    const int w = 6;
    const BitVector smin = BitVector::fromUint(w, 1u << (w - 1));
    std::vector<BitVector> specials = {BitVector(w),
                                       BitVector::fromUint(w, 1),
                                       BitVector::allOnes(w), smin};
    Rng rng(0xD1CE);
    for (int trial = 0; trial < 6; ++trial)
        specials.push_back(BitVector::random(w, rng));
    for (const BitVector &a : specials) {
        for (const BitVector &b : specials) {
            sym::Aig aig;
            const sym::SymVec sa = sym::svInputs(aig, w);
            const sym::SymVec sb = sym::svInputs(aig, w);
            EXPECT_EQ(evalSym(aig, sym::svUdiv(aig, sa, sb), {a, b}),
                      a.udiv(b));
            EXPECT_EQ(evalSym(aig, sym::svUrem(aig, sa, sb), {a, b}),
                      a.urem(b));
            EXPECT_EQ(evalSym(aig, sym::svSdiv(aig, sa, sb), {a, b}),
                      a.sdiv(b));
            EXPECT_EQ(evalSym(aig, sym::svSrem(aig, sa, sb), {a, b}),
                      a.srem(b));
        }
    }
}

TEST(BitVectorSymbolicAgreement, NegationAgreesEverywhereAtSmallWidth)
{
    // Exhaustive at width 5; pins the ~a+1 construction (a regression:
    // an earlier draft computed ~a+0).
    const int w = 5;
    sym::Aig aig;
    const sym::SymVec sa = sym::svInputs(aig, w);
    const sym::SymVec circuit = sym::svNeg(aig, sa);
    for (uint64_t v = 0; v < (1u << w); ++v) {
        const BitVector a = BitVector::fromUint(w, v);
        EXPECT_EQ(evalSym(aig, circuit, {a}), a.neg()) << v;
    }
}

} // namespace
} // namespace hydride
