/**
 * @file
 * Tests for the Halide-IR vector expression language and the 33
 * benchmark kernels: evaluation semantics per operator, structural
 * hashing (the synthesis memo key), and well-formedness of every
 * kernel under every target's vector width.
 */
#include <gtest/gtest.h>

#include "halide/kernels.h"
#include "support/rng.h"

namespace hydride {
namespace {

std::vector<BitVector>
randomInputs(const HExprPtr &expr, Rng &rng)
{
    // Walk the tree to find input shapes.
    std::vector<int> widths;
    std::vector<const HExpr *> stack = {expr.get()};
    while (!stack.empty()) {
        const HExpr *node = stack.back();
        stack.pop_back();
        if (node->op == HOp::Input) {
            if (node->imm >= static_cast<int64_t>(widths.size()))
                widths.resize(node->imm + 1, 0);
            widths[node->imm] = node->totalWidth();
        }
        for (const auto &kid : node->kids)
            stack.push_back(kid.get());
    }
    std::vector<BitVector> inputs;
    for (int w : widths)
        inputs.push_back(BitVector::random(std::max(w, 1), rng));
    return inputs;
}

TEST(HalideExpr, AddEvaluatesLanewise)
{
    HExprPtr e = hBin(HOp::Add, hInput(0, 16, 4), hInput(1, 16, 4));
    Rng rng(61);
    BitVector a = BitVector::random(64, rng);
    BitVector b = BitVector::random(64, rng);
    BitVector out = evalHalide(e, {a, b});
    for (int lane = 0; lane < 4; ++lane)
        EXPECT_EQ(out.extract(lane * 16, 16),
                  a.extract(lane * 16, 16).add(b.extract(lane * 16, 16)));
}

TEST(HalideExpr, CastWidensPerSignedness)
{
    BitVector a(16);
    a.setSlice(0, BitVector::fromInt(8, -3));
    a.setSlice(8, BitVector::fromInt(8, 5));
    HExprPtr sext = hCast(hInput(0, 8, 2), 16, true);
    BitVector out = evalHalide(sext, {a});
    EXPECT_EQ(out.extract(0, 16).toInt64(), -3);
    EXPECT_EQ(out.extract(16, 16).toInt64(), 5);
    HExprPtr zext = hCast(hInput(0, 8, 2), 16, false);
    out = evalHalide(zext, {a});
    EXPECT_EQ(out.extract(0, 16).toUint64(), 0xFDu);
}

TEST(HalideExpr, ConstSplatFillsLanes)
{
    BitVector out = evalHalide(hConst(-1, 16, 4), {});
    EXPECT_EQ(out, BitVector::allOnes(64));
    out = evalHalide(hConst(42, 8, 3), {});
    for (int lane = 0; lane < 3; ++lane)
        EXPECT_EQ(out.extract(lane * 8, 8).toUint64(), 42u);
}

TEST(HalideExpr, ReduceAddSumsGroups)
{
    BitVector a(64);
    for (int lane = 0; lane < 4; ++lane)
        a.setSlice(lane * 16, BitVector::fromInt(16, 10 + lane));
    HExprPtr e = hReduceAdd(hInput(0, 16, 4), 2);
    BitVector out = evalHalide(e, {a});
    EXPECT_EQ(out.width(), 32);
    EXPECT_EQ(out.extract(0, 16).toInt64(), 21);  // 10+11
    EXPECT_EQ(out.extract(16, 16).toInt64(), 25); // 12+13
}

TEST(HalideExpr, MulHiTakesHighHalf)
{
    BitVector a(16);
    BitVector b(16);
    a.setSlice(0, BitVector::fromInt(16, 30000));
    b.setSlice(0, BitVector::fromInt(16, 20000));
    HExprPtr e = hBin(HOp::MulHiS, hInput(0, 16, 1), hInput(1, 16, 1));
    BitVector out = evalHalide(e, {a, b});
    EXPECT_EQ(out.toInt64(), (30000ll * 20000ll) >> 16);
}

TEST(HalideExpr, SatOpsSaturate)
{
    BitVector a(8);
    BitVector b(8);
    a.setSlice(0, BitVector::fromUint(8, 200));
    b.setSlice(0, BitVector::fromUint(8, 100));
    EXPECT_EQ(evalHalide(hBin(HOp::SatAddU, hInput(0, 8, 1),
                              hInput(1, 8, 1)),
                         {a, b})
                  .toUint64(),
              255u);
    BitVector wide = BitVector::fromInt(16, 300);
    EXPECT_EQ(evalHalide(hSatNarrow(hInput(0, 16, 1), 8, true), {wide})
                  .toInt64(),
              127);
}

TEST(HalideExpr, ConcatAndSlice)
{
    BitVector a = BitVector::fromUint(16, 0x1122);
    BitVector b = BitVector::fromUint(16, 0x3344);
    HExprPtr cat = hConcat(hInput(0, 8, 2), hInput(1, 8, 2));
    BitVector out = evalHalide(cat, {a, b});
    EXPECT_EQ(out.toUint64(), 0x33441122u);
    HExprPtr sl = hSlice(cat, 1, 2);
    EXPECT_EQ(evalHalide(sl, {a, b}).toUint64(), 0x4411u);
}

TEST(HalideExpr, ShiftsAreLanewise)
{
    BitVector a(32);
    a.setSlice(0, BitVector::fromInt(16, -4));
    a.setSlice(16, BitVector::fromInt(16, 4));
    BitVector out =
        evalHalide(hShift(HOp::AShrC, hInput(0, 16, 2), 1), {a});
    EXPECT_EQ(out.extract(0, 16).toInt64(), -2);
    EXPECT_EQ(out.extract(16, 16).toInt64(), 2);
}

TEST(HalideExpr, HashAndEqualityAgree)
{
    HExprPtr a = hBin(HOp::Add, hInput(0, 16, 8), hInput(1, 16, 8));
    HExprPtr b = hBin(HOp::Add, hInput(0, 16, 8), hInput(1, 16, 8));
    HExprPtr c = hBin(HOp::Sub, hInput(0, 16, 8), hInput(1, 16, 8));
    EXPECT_TRUE(HExpr::equals(a, b));
    EXPECT_EQ(HExpr::hashOf(a), HExpr::hashOf(b));
    EXPECT_FALSE(HExpr::equals(a, c));
    EXPECT_NE(HExpr::hashOf(a), HExpr::hashOf(c));
    // Lane count participates in the hash (cache keys are per
    // vectorization factor).
    HExprPtr wide = hBin(HOp::Add, hInput(0, 16, 16), hInput(1, 16, 16));
    EXPECT_NE(HExpr::hashOf(a), HExpr::hashOf(wide));
}

TEST(HalideKernels, ThirtyThreeBenchmarks)
{
    EXPECT_EQ(kernelNames().size(), 33u);
}

class KernelsAtWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelsAtWidth, AllKernelsBuildAndEvaluate)
{
    Schedule schedule;
    schedule.vector_bits = GetParam();
    Rng rng(70 + GetParam());
    for (const auto &name : kernelNames()) {
        Kernel kernel = buildKernel(name, schedule);
        EXPECT_FALSE(kernel.windows.empty()) << name;
        EXPECT_GT(kernel.iterations, 0.0) << name;
        for (const auto &window : kernel.windows) {
            auto inputs = randomInputs(window, rng);
            BitVector out = evalHalide(window, inputs);
            EXPECT_EQ(out.width(), window->totalWidth()) << name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(VectorWidths, KernelsAtWidth,
                         ::testing::Values(128, 256, 512, 1024));

TEST(HalideKernels, UnrollDuplicatesWindowsWithoutChangingShapes)
{
    Schedule base;
    base.vector_bits = 256;
    Schedule unrolled = base;
    unrolled.unroll = 4;
    Kernel k1 = buildKernel("matmul_b1", base);
    Kernel k4 = buildKernel("matmul_b1", unrolled);
    EXPECT_EQ(k4.windows.size(), 4 * k1.windows.size());
    for (const auto &window : k4.windows)
        EXPECT_TRUE(HExpr::equals(window, k1.windows[0]));
}

TEST(HalideKernels, MatmulWindowIsTheTable3Expression)
{
    Schedule schedule;
    schedule.vector_bits = 256;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    ASSERT_EQ(kernel.windows.size(), 1u);
    const HExprPtr &w = kernel.windows[0];
    // acc + reduce-add(mul(sext a, sext b), 2) over 8 i32 lanes.
    EXPECT_EQ(w->op, HOp::Add);
    EXPECT_EQ(w->elem_width, 32);
    EXPECT_EQ(w->lanes, 8);
    Rng rng(71);
    auto inputs = randomInputs(w, rng);
    BitVector out = evalHalide(w, inputs);
    // Reference: acc[i] + a[2i]*b[2i] + a[2i+1]*b[2i+1] (i32).
    for (int i = 0; i < 8; ++i) {
        int64_t acc = inputs[0].extract(i * 32, 32).toInt64();
        int64_t a0 = inputs[1].extract(2 * i * 16, 16).toInt64();
        int64_t a1 = inputs[1].extract((2 * i + 1) * 16, 16).toInt64();
        int64_t b0 = inputs[2].extract(2 * i * 16, 16).toInt64();
        int64_t b1 = inputs[2].extract((2 * i + 1) * 16, 16).toInt64();
        int64_t expect = acc + a0 * b0 + a1 * b1;
        EXPECT_EQ(out.extract(i * 32, 32).toInt64(),
                  BitVector::fromInt(32, expect).toInt64());
    }
}

TEST(HalideKernels, MedianWindowComputesTheMedian)
{
    Schedule schedule;
    schedule.vector_bits = 128;
    Kernel kernel = buildKernel("median3x3", schedule);
    ASSERT_EQ(kernel.windows.size(), 1u);
    Rng rng(72);
    auto inputs = randomInputs(kernel.windows[0], rng);
    BitVector out = evalHalide(kernel.windows[0], inputs);
    for (int lane = 0; lane < 16; ++lane) {
        std::vector<uint64_t> v;
        for (int p = 0; p < 9; ++p)
            v.push_back(inputs[p].extract(lane * 8, 8).toUint64());
        std::sort(v.begin(), v.end());
        EXPECT_EQ(out.extract(lane * 8, 8).toUint64(), v[4]) << lane;
    }
}

TEST(HalideKernels, DilateWindowIsRunningMax)
{
    Schedule schedule;
    schedule.vector_bits = 128;
    Kernel kernel = buildKernel("dilate3x3", schedule);
    ASSERT_EQ(kernel.windows.size(), 2u);
    Rng rng(73);
    auto inputs = randomInputs(kernel.windows[0], rng);
    BitVector out = evalHalide(kernel.windows[0], inputs);
    for (int lane = 0; lane < 16; ++lane) {
        uint64_t expect = 0;
        for (int p = 0; p < 3; ++p)
            expect = std::max(expect,
                              inputs[p].extract(lane * 8, 8).toUint64());
        EXPECT_EQ(out.extract(lane * 8, 8).toUint64(), expect);
    }
}

} // namespace
} // namespace hydride
