/**
 * @file
 * Tests for canonical semantics evaluation and the statement-form
 * (pre-canonical) interpreter.
 */
#include <gtest/gtest.h>

#include "hir/semantics.h"
#include "support/rng.h"

namespace hydride {
namespace {

/** Canonical semantics of a parameterized element-wise vector add:
 *  params p0 = element width, p1 = element count. */
CanonicalSemantics
makeVectorAdd()
{
    CanonicalSemantics sem;
    sem.name = "vadd";
    sem.isa = "test";
    ExprPtr ew = param(0, "p0");
    ExprPtr count = param(1, "p1");
    ExprPtr total = mulI(ew, count);
    sem.bv_args = {{"a", total}, {"b", total}};
    sem.params = {{"p0", 16}, {"p1", 8}};
    sem.mode = TemplateMode::Uniform;
    sem.outer_count = count;
    sem.inner_count = intConst(1);
    sem.elem_width = ew;
    ExprPtr low = mulI(loopVar(0), ew);
    sem.templates = {bvBin(BVBinOp::Add, extract(argBV(0), low, ew),
                           extract(argBV(1), low, ew))};
    return sem;
}

TEST(CanonicalSemantics, VectorAddEvaluates)
{
    CanonicalSemantics sem = makeVectorAdd();
    std::vector<int64_t> params = {16, 4};
    EXPECT_EQ(sem.outputWidth(params), 64);
    EXPECT_EQ(sem.argWidth(0, params), 64);

    BitVector a(64);
    BitVector b(64);
    for (int e = 0; e < 4; ++e) {
        a.setSlice(e * 16, BitVector::fromUint(16, 100 * (e + 1)));
        b.setSlice(e * 16, BitVector::fromUint(16, e + 1));
    }
    BitVector out = sem.evaluate({a, b}, params);
    for (int e = 0; e < 4; ++e)
        EXPECT_EQ(out.extract(e * 16, 16).toUint64(),
                  static_cast<uint64_t>(101 * (e + 1)));
}

TEST(CanonicalSemantics, ParameterValuesRescaleTheInstruction)
{
    // The same symbolic semantics covers an 8x8-bit and a 4x32-bit add;
    // this is the heart of the equivalence-class parameterization.
    CanonicalSemantics sem = makeVectorAdd();
    Rng rng(99);
    for (auto [ew, count] : std::vector<std::pair<int64_t, int64_t>>{
             {8, 8}, {32, 4}, {16, 32}}) {
        std::vector<int64_t> params = {ew, count};
        const int width = sem.outputWidth(params);
        BitVector a = BitVector::random(width, rng);
        BitVector b = BitVector::random(width, rng);
        BitVector out = sem.evaluate({a, b}, params);
        for (int e = 0; e < count; ++e) {
            BitVector expect = a.extract(e * ew, ew).add(b.extract(e * ew, ew));
            EXPECT_EQ(out.extract(e * ew, ew), expect);
        }
    }
}

TEST(CanonicalSemantics, ByInnerSelectsTemplatePerInnerIndex)
{
    // Interleave low: out[2i] = a[i], out[2i+1] = b[i], 8-bit elems.
    CanonicalSemantics sem;
    sem.name = "interleave";
    sem.isa = "test";
    sem.bv_args = {{"a", intConst(32)}, {"b", intConst(32)}};
    sem.mode = TemplateMode::ByInner;
    sem.outer_count = intConst(4);
    sem.inner_count = intConst(2);
    sem.elem_width = intConst(8);
    ExprPtr low = mulI(loopVar(0), intConst(8));
    sem.templates = {extract(argBV(0), low, intConst(8)),
                     extract(argBV(1), low, intConst(8))};

    BitVector a = BitVector::fromUint(32, 0x44332211);
    BitVector b = BitVector::fromUint(32, 0x88776655);
    BitVector out = sem.evaluate({a, b}, {});
    EXPECT_EQ(out.width(), 64);
    EXPECT_EQ(out.toUint64(), 0x8844773366225511ull);
}

TEST(CanonicalSemantics, ByOuterSelectsTemplatePerLane)
{
    // Concat halves: out = b : a.
    CanonicalSemantics sem;
    sem.name = "combine";
    sem.isa = "test";
    sem.bv_args = {{"a", intConst(32)}, {"b", intConst(32)}};
    sem.mode = TemplateMode::ByOuter;
    sem.outer_count = intConst(2);
    sem.inner_count = intConst(4);
    sem.elem_width = intConst(8);
    ExprPtr low = mulI(loopVar(1), intConst(8));
    sem.templates = {extract(argBV(0), low, intConst(8)),
                     extract(argBV(1), low, intConst(8))};

    BitVector a = BitVector::fromUint(32, 0x44332211);
    BitVector b = BitVector::fromUint(32, 0x88776655);
    BitVector out = sem.evaluate({a, b}, {});
    EXPECT_EQ(out.toUint64(), 0x8877665544332211ull);
}

TEST(CanonicalSemantics, ShapeEqualityIgnoresNamesAndDefaults)
{
    CanonicalSemantics a = makeVectorAdd();
    CanonicalSemantics b = makeVectorAdd();
    b.name = "other_add";
    b.isa = "other";
    b.params = {{"q0", 8}, {"q1", 64}};
    EXPECT_TRUE(CanonicalSemantics::sameShape(a, b));
    EXPECT_EQ(a.shapeHash(), b.shapeHash());

    CanonicalSemantics c = makeVectorAdd();
    c.templates = {bvBin(BVBinOp::Sub,
                         extract(argBV(0), mulI(loopVar(0), param(0, "p0")),
                                 param(0, "p0")),
                         extract(argBV(1), mulI(loopVar(0), param(0, "p0")),
                                 param(0, "p0")))};
    EXPECT_FALSE(CanonicalSemantics::sameShape(a, c));
}

TEST(CanonicalSemantics, BvBinOpsReportsOperatorMultiset)
{
    CanonicalSemantics sem = makeVectorAdd();
    auto ops = sem.bvBinOps();
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0], BVBinOp::Add);
}

// ---- Statement interpreter ---------------------------------------------------

SpecFunction
makeSimdAddSpec()
{
    // FOR j := 0 to 3 { i := j*16; dst[i +: 16] := a[i +: 16] + b[i +: 16] }
    SpecFunction spec;
    spec.name = "test_add_spec";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}, {"b", intConst(64)}};
    spec.out_width = 64;
    ExprPtr iv = namedVar("i");
    ExprPtr width = intConst(16);
    StmtPtr let = stmtLetInt("i", mulI(namedVar("j"), intConst(16)));
    StmtPtr assign = stmtSliceAssign(
        iv, width,
        bvBin(BVBinOp::Add, extract(argBV(0), iv, width),
              extract(argBV(1), iv, width)));
    spec.body = {stmtFor("j", intConst(0), intConst(3), {let, assign})};
    return spec;
}

TEST(SpecFunction, StatementInterpreterMatchesDirectComputation)
{
    SpecFunction spec = makeSimdAddSpec();
    Rng rng(5);
    for (int trial = 0; trial < 5; ++trial) {
        BitVector a = BitVector::random(64, rng);
        BitVector b = BitVector::random(64, rng);
        BitVector out = spec.evaluate({a, b});
        for (int e = 0; e < 4; ++e)
            EXPECT_EQ(out.extract(e * 16, 16),
                      a.extract(e * 16, 16).add(b.extract(e * 16, 16)));
    }
}

TEST(SpecFunction, NestedLoopsAndLetScoping)
{
    // FOR l := 0 to 1 { FOR j := 0 to 1 {
    //   i := l*32 + j*16; dst[i +: 16] := a[i +: 16] } }
    SpecFunction spec;
    spec.name = "copy";
    spec.isa = "test";
    spec.bv_args = {{"a", intConst(64)}};
    spec.out_width = 64;
    ExprPtr iv = namedVar("i");
    StmtPtr let = stmtLetInt(
        "i", addI(mulI(namedVar("l"), intConst(32)),
                  mulI(namedVar("j"), intConst(16))));
    StmtPtr assign =
        stmtSliceAssign(iv, intConst(16), extract(argBV(0), iv, intConst(16)));
    StmtPtr inner = stmtFor("j", intConst(0), intConst(1), {let, assign});
    spec.body = {stmtFor("l", intConst(0), intConst(1), {inner})};

    Rng rng(6);
    BitVector a = BitVector::random(64, rng);
    EXPECT_EQ(spec.evaluate({a}), a);
}

} // namespace
} // namespace hydride
