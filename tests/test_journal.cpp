/**
 * @file
 * Tests for the synthesis provenance journal and flight recorder
 * (src/observability/journal): disabled-mode no-ops, the JSONL
 * schema (header + enveloped events), window-ledger round-trips,
 * truncation salvage in readJournal, the bounded flight ring, and
 * the hashHex spelling `hydride-inspect` keys on.
 */
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "observability/journal/journal.h"

using namespace hydride;

namespace {

class JournalTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        journal::resetForTest();
        path_ = ::testing::TempDir() + "hydride_journal_ut." +
                std::to_string(::getpid()) + ".jsonl";
        std::remove(path_.c_str());
    }
    void TearDown() override
    {
        journal::resetForTest();
        std::remove(path_.c_str());
    }

    static std::string
    slurp(const std::string &path)
    {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        return text.str();
    }

    static journal::WindowLedger
    sampleLedger()
    {
        journal::WindowLedger ledger;
        ledger.window_hash = journal::hashHex(0xDEADBEEFCAFEF00DULL);
        ledger.isa = "x86";
        ledger.lanes = 16;
        ledger.elem_width = 16;
        ledger.nodes = 5;
        ledger.cache = "miss";
        ledger.rung = "synthesized";
        ledger.cegis_iterations = 2;
        ledger.counterexamples = 1;
        ledger.candidates_rejected = 40;
        ledger.symbolic_verdict = "proved";
        ledger.cost = 5.0;
        ledger.insts = {"_mm256_adds_epi16"};
        ledger.wall_ms = 1.5;
        ledger.cpu_ms = 1.25;
        return ledger;
    }

    std::string path_;
};

TEST_F(JournalTest, DisabledByDefaultAndNoOp)
{
    EXPECT_FALSE(journal::enabled());
    journal::setOutputPath(path_);
    journal::emitWindow(sampleLedger());
    journal::emitEvent("noise", nullptr);
    journal::flush();
    // Nothing may touch the disk while disabled.
    std::ifstream in(path_);
    EXPECT_FALSE(in.good());
}

TEST_F(JournalTest, HeaderAndEnvelope)
{
    journal::setOutputPath(path_);
    journal::setEnabled(true);
    journal::emitWindow(sampleLedger());
    journal::flush();

    const journal::Journal parsed = journal::readJournal(path_);
    ASSERT_TRUE(parsed.error.empty()) << parsed.error;
    EXPECT_FALSE(parsed.truncated);
    ASSERT_TRUE(parsed.header);
    EXPECT_EQ(parsed.header->getString("schema", ""),
              journal::kSchema);
    EXPECT_EQ(parsed.header->getNumber("pid", 0),
              double(::getpid()));
    ASSERT_EQ(parsed.events.size(), 1u);

    const bjson::Value &event = *parsed.events[0];
    EXPECT_EQ(event.getString("kind", ""), "window");
    EXPECT_GE(event.getNumber("seq", 0), 1.0);
    EXPECT_GE(event.getNumber("thread", 0), 1.0);
    EXPECT_TRUE(event.get("t_ms"));
}

TEST_F(JournalTest, WindowLedgerRoundTrips)
{
    journal::setOutputPath(path_);
    journal::setEnabled(true);
    journal::emitWindow(sampleLedger());
    journal::flush();

    const journal::Journal parsed = journal::readJournal(path_);
    ASSERT_EQ(parsed.events.size(), 1u);
    const bjson::Value &event = *parsed.events[0];
    EXPECT_EQ(event.getString("hash", ""), "deadbeefcafef00d");
    EXPECT_EQ(event.getString("isa", ""), "x86");
    const bjson::Value *shape = event.get("shape");
    ASSERT_TRUE(shape);
    EXPECT_EQ(shape->getNumber("lanes", 0), 16.0);
    EXPECT_EQ(shape->getNumber("elem_width", 0), 16.0);
    EXPECT_EQ(shape->getNumber("nodes", 0), 5.0);
    EXPECT_EQ(event.getString("cache", ""), "miss");
    EXPECT_EQ(event.getString("rung", ""), "synthesized");
    const bjson::Value *cegis = event.get("cegis");
    ASSERT_TRUE(cegis);
    EXPECT_EQ(cegis->getNumber("iterations", 0), 2.0);
    EXPECT_EQ(cegis->getNumber("counterexamples", 0), 1.0);
    EXPECT_EQ(cegis->getNumber("rejected", 0), 40.0);
    EXPECT_EQ(cegis->getString("verdict", ""), "proved");
    EXPECT_EQ(event.getNumber("cost", 0), 5.0);
    const bjson::Value *insts = event.get("insts");
    ASSERT_TRUE(insts && insts->isArray());
    ASSERT_EQ(insts->items.size(), 1u);
    EXPECT_EQ(insts->items[0]->stringOr(""), "_mm256_adds_epi16");
    EXPECT_EQ(event.getNumber("wall_ms", 0), 1.5);
    EXPECT_EQ(event.getNumber("cpu_ms", 0), 1.25);
}

TEST_F(JournalTest, SequenceNumbersAreUniqueAndIncreasing)
{
    journal::setOutputPath(path_);
    journal::setEnabled(true);
    for (int i = 0; i < 5; ++i) {
        auto fields = bjson::Value::makeObject();
        fields->set("i", bjson::Value::makeNumber(i));
        journal::emitEvent("tick", fields);
    }
    journal::flush();

    const journal::Journal parsed = journal::readJournal(path_);
    ASSERT_EQ(parsed.events.size(), 5u);
    double last = 0;
    for (const auto &event : parsed.events) {
        const double seq = event->getNumber("seq", 0);
        EXPECT_GT(seq, last);
        last = seq;
    }
}

TEST_F(JournalTest, TruncatedFinalLineIsSalvage)
{
    journal::setOutputPath(path_);
    journal::setEnabled(true);
    journal::emitWindow(sampleLedger());
    journal::emitEvent("tick", nullptr);
    journal::flush();
    journal::setOutputPath(""); // Close the file before appending.

    {
        std::ofstream out(path_, std::ios::app);
        out << "{\"kind\":\"window\",\"seq\":99,\"thr"; // Died mid-write.
    }
    const journal::Journal parsed = journal::readJournal(path_);
    EXPECT_TRUE(parsed.error.empty()) << parsed.error;
    EXPECT_TRUE(parsed.truncated);
    EXPECT_EQ(parsed.events.size(), 2u); // The good prefix survives.
}

TEST_F(JournalTest, MalformedMiddleLineIsAnError)
{
    {
        std::ofstream out(path_);
        out << "{\"schema\":\"hydride-journal/v1\",\"kind\":\"header\","
               "\"pid\":1}\n";
        out << "not json at all\n";
        out << "{\"kind\":\"tick\",\"seq\":1,\"thread\":1,\"t_ms\":0}\n";
    }
    const journal::Journal parsed = journal::readJournal(path_);
    EXPECT_FALSE(parsed.error.empty());
}

TEST_F(JournalTest, MissingFileIsAnError)
{
    const journal::Journal parsed =
        journal::readJournal(path_ + ".does-not-exist");
    EXPECT_FALSE(parsed.error.empty());
}

TEST_F(JournalTest, FlightDumpIsBoundedAndSeqOrdered)
{
    // Flight-only mode: no journal path, events feed the ring only.
    journal::setEnabled(true);
    journal::setFlightDir(::testing::TempDir());
    journal::setFlightCapacity(8);
    for (int i = 0; i < 50; ++i) {
        auto fields = bjson::Value::makeObject();
        fields->set("i", bjson::Value::makeNumber(i));
        journal::emitEvent("tick", fields);
    }
    const std::string dump = journal::flightDump("unit test");
    ASSERT_FALSE(dump.empty());

    std::string error;
    const bjson::ValuePtr doc = bjson::parse(slurp(dump), error);
    ASSERT_TRUE(doc) << error;
    EXPECT_EQ(doc->getString("schema", ""), journal::kFlightSchema);
    EXPECT_EQ(doc->getString("kind", ""), "flight");
    EXPECT_EQ(doc->getString("reason", ""), "unit test");
    const bjson::Value *events = doc->get("events");
    ASSERT_TRUE(events && events->isArray());
    // The ring is bounded: only the most recent events survive.
    ASSERT_EQ(events->items.size(), 8u);
    double last = 0;
    for (const auto &event : events->items) {
        const double seq = event->getNumber("seq", 0);
        EXPECT_GT(seq, last);
        last = seq;
        EXPECT_GE(event->getNumber("i", -1), 42.0);
    }
    std::remove(dump.c_str());
}

TEST_F(JournalTest, FlightDumpWhileDisabledIsEmpty)
{
    EXPECT_FALSE(journal::enabled());
    EXPECT_EQ(journal::flightDump("never"), "");
}

TEST(JournalHash, HashHexIs16LowercaseDigits)
{
    EXPECT_EQ(journal::hashHex(0), "0000000000000000");
    EXPECT_EQ(journal::hashHex(0xABCULL), "0000000000000abc");
    EXPECT_EQ(journal::hashHex(0xFFFFFFFFFFFFFFFFULL),
              "ffffffffffffffff");
}

} // namespace
