/**
 * @file
 * Unit tests for the support utilities: strings, RNG, tables.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace hydride {
namespace {

TEST(Strings, SplitKeepsEmptyFields)
{
    auto fields = split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField)
{
    auto fields = split("hello", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "hello");
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("_mm256_add_epi16", "_mm256"));
    EXPECT_FALSE(startsWith("_mm", "_mm256"));
    EXPECT_TRUE(endsWith("_mm256_add_epi16", "epi16"));
    EXPECT_FALSE(endsWith("epi16", "_mm256_add_epi16"));
}

TEST(Strings, JoinAndReplace)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(replaceAll("x+x+x", "+", "-"), "x-x-x");
    EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d/%s", 42, "x"), "42/x");
    EXPECT_EQ(format("%05.1f", 2.25), "002.2");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 50; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Table, AlignedPrinting)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, CsvPrinting)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace hydride
