/**
 * @file
 * Unit tests for the support utilities: strings, RNG, tables, and
 * the EINTR-safe filesystem primitives (support/fsio.h) under the
 * durable store and cache persistence.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "support/fsio.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"

namespace hydride {
namespace {

TEST(Strings, SplitKeepsEmptyFields)
{
    auto fields = split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField)
{
    auto fields = split("hello", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "hello");
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("_mm256_add_epi16", "_mm256"));
    EXPECT_FALSE(startsWith("_mm", "_mm256"));
    EXPECT_TRUE(endsWith("_mm256_add_epi16", "epi16"));
    EXPECT_FALSE(endsWith("epi16", "_mm256_add_epi16"));
}

TEST(Strings, JoinAndReplace)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(replaceAll("x+x+x", "+", "-"), "x-x-x");
    EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d/%s", 42, "x"), "42/x");
    EXPECT_EQ(format("%05.1f", 2.25), "002.2");
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 50; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Table, AlignedPrinting)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, CsvPrinting)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

namespace {

std::string
tmpName(const char *stem)
{
    return std::string("/tmp/hydride_fsio_") + stem + "." +
           std::to_string(::getpid());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

} // namespace

TEST(Fsio, OpenWriteFsyncRoundTrip)
{
    const std::string path = tmpName("roundtrip");
    const int fd = fsio::openRetry(path.c_str(),
                                   O_CREAT | O_WRONLY | O_TRUNC);
    ASSERT_GE(fd, 0);
    // Large enough to span several write() calls if the kernel
    // returns short counts; writeFull must resume, not truncate.
    std::string payload;
    for (int i = 0; i < 4096; ++i)
        payload += format("line %d\n", i);
    EXPECT_TRUE(fsio::writeFull(fd, payload.data(), payload.size()));
    EXPECT_TRUE(fsio::fsyncRetry(fd));
    ::close(fd);
    EXPECT_EQ(slurp(path), payload);
    std::remove(path.c_str());
}

TEST(Fsio, HardErrorsFailWithoutLooping)
{
    EXPECT_LT(fsio::openRetry("/definitely/not/here.txt", O_RDONLY), 0);
    EXPECT_FALSE(fsio::writeFull(-1, "x", 1));
    EXPECT_FALSE(fsio::fsyncRetry(-1));
    EXPECT_FALSE(fsio::renameRetry("/definitely/not/here.txt",
                                   "/also/not/here.txt"));
    EXPECT_FALSE(fsio::writeFileAtomic("/definitely/not/here/file",
                                       "content"));
}

TEST(Fsio, RenameRetryReplacesTheTarget)
{
    const std::string from = tmpName("rename_from");
    const std::string to = tmpName("rename_to");
    ASSERT_TRUE(fsio::writeFileAtomic(from, "new"));
    ASSERT_TRUE(fsio::writeFileAtomic(to, "old"));
    EXPECT_TRUE(fsio::renameRetry(from, to));
    EXPECT_EQ(slurp(to), "new");
    // Atomic rename consumed the source.
    EXPECT_LT(fsio::openRetry(from.c_str(), O_RDONLY), 0);
    std::remove(to.c_str());
}

TEST(Fsio, WriteFileAtomicPublishesAndLeavesNoTemp)
{
    const std::string path = tmpName("atomic");
    EXPECT_TRUE(fsio::writeFileAtomic(path, "first"));
    EXPECT_EQ(slurp(path), "first");
    // Overwrite is also atomic: either the old or the new content,
    // never a mix, and the temp staging file must not linger.
    EXPECT_TRUE(fsio::writeFileAtomic(path, "second"));
    EXPECT_EQ(slurp(path), "second");
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    EXPECT_LT(fsio::openRetry(temp.c_str(), O_RDONLY), 0);
    EXPECT_TRUE(fsio::fsyncDir("/tmp"));
    std::remove(path.c_str());
}

} // namespace
} // namespace hydride
