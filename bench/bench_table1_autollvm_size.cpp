/**
 * @file
 * Reproduces **Table 1**: AutoLLVM IR results for each architecture —
 * how many retargetable AutoLLVM instructions (equivalence classes)
 * represent each ISA and each ISA combination, and what fraction of
 * the ISA size that is.
 *
 * Paper reference values: x86 2,029 -> 136 (6.7%); HVX 307 -> 115
 * (37.5%); ARM 1,221 -> 177 (14.5%); combined 3,557 -> 397 (11.2%).
 * Our generated stand-in manuals are somewhat smaller (the paper
 * counts every intrinsic including memory/init forms we exclude by
 * design), so absolute numbers differ; the compression behaviour —
 * each ISA collapsing to a small class count, combinations sharing
 * classes across ISAs — is the reproduced result.
 */
#include <iostream>

#include "similarity/engine.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "trace_cli.h"

using namespace hydride;

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Table 1: AutoLLVM IR results per architecture ===\n\n";
    Table table({"Architecture", "ISA Size", "AutoLLVM IR Size",
                 "% of ISA Size", "Offline Time (s)"});

    const std::vector<std::pair<std::string, std::vector<std::string>>>
        all_rows = {
            {"x86", {"x86"}},
            {"HVX", {"hvx"}},
            {"ARM", {"arm"}},
            {"x86 + HVX", {"x86", "hvx"}},
            {"x86 + ARM", {"x86", "arm"}},
            {"HVX + ARM", {"hvx", "arm"}},
            {"x86 + HVX + ARM", {"x86", "hvx", "arm"}},
        };
    const auto rows = cli.limited(all_rows, 3);

    for (const auto &[label, isas] : rows) {
        Stopwatch watch;
        auto insts = combinedSemantics(isas);
        SimilarityStats stats;
        auto classes = runSimilarityEngine(insts, {}, &stats);
        table.addRow({label, format("%d", static_cast<int>(insts.size())),
                      format("%d", static_cast<int>(classes.size())),
                      format("%.1f%%", 100.0 * classes.size() /
                                           insts.size()),
                      format("%.2f", watch.seconds())});
        cli.record("offline." + join(isas, "_") + "_ms",
                   watch.millis());
        cli.recordRatio("compression." + join(isas, "_"),
                        static_cast<double>(classes.size()) /
                            insts.size());
    }
    table.print(std::cout);

    std::cout << "\nPaper reference: x86 2,029->136 (6.7%), "
                 "HVX 307->115 (37.5%), ARM 1,221->177 (14.5%), "
                 "combined 3,557->397 (11.2%).\n";
    cli.finish();
    return 0;
}
