/**
 * @file
 * Reproduces **Table 2**: bugs found in hand-written instruction
 * semantics.
 *
 * The paper lists five masking bugs in Rake's hand-implemented HVX
 * semantics (arithmetic-right-shift and left-shift operands not
 * masked to the lane width). We reproduce the methodology: a small
 * hand-written "interpreter" of HVX shift instructions is implemented
 * here *with* those classic mistakes, and differential fuzzing
 * against Hydride's auto-generated semantics (parsed from the vendor
 * pseudocode, which masks shift amounts) flags every one — the same
 * comparison the paper used to find the Rake bugs, and the argument
 * for generating semantics instead of writing them by hand.
 */
#include <functional>
#include <iostream>

#include "specs/spec_db.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "trace_cli.h"

using namespace hydride;

namespace {

/** Hand-written (buggy, Rake-style) lane-wise shift interpreters. */
BitVector
handShift(const BitVector &a, const BitVector &b, int ew, char kind,
          bool mask_amount)
{
    BitVector out(a.width());
    for (int lane = 0; lane < a.width() / ew; ++lane) {
        BitVector x = a.extract(lane * ew, ew);
        uint64_t amount = b.extract(lane * ew, ew).toUint64();
        if (mask_amount)
            amount &= static_cast<uint64_t>(ew - 1);
        const int clamped =
            static_cast<int>(std::min<uint64_t>(amount, 4096));
        BitVector value = kind == 'a'   ? x.ashr(clamped)
                          : kind == 'l' ? x.shl(clamped)
                                        : x.lshr(clamped);
        out.setSlice(lane * ew, value);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    Stopwatch fuzz_watch;
    std::cout << "=== Table 2: differential fuzzing of hand-written vs "
                 "auto-generated HVX semantics ===\n\n";

    struct Case
    {
        const char *inst;
        int ew;
        char kind;
        const char *description;
    };
    // The five Table 2 bug sites, mapped onto our HVX instruction set.
    const Case cases[] = {
        {"vasrh_64B", 16, 'a', "Semantics of ARS not masked."},
        {"vasrw_128B", 32, 'a', "ARS' operands not masked."},
        {"vasrb_64B", 8, 'a', "Rounding/Saturating ARS not masked."},
        {"vaslh_128B", 16, 'l', "LS operands not masked."},
        {"vaslw_64B", 32, 'l', "fused LS and accumulate not masked."},
    };

    Table table({"Instruction", "Bug Description", "Fuzz Trials",
                 "First Failing Trial", "Detected"});
    int found = 0;
    for (const auto &c : cases) {
        const CanonicalSemantics *generated = nullptr;
        for (const auto &sem : isaSemantics("hvx").insts)
            if (sem.name == c.inst)
                generated = &sem;
        if (!generated) {
            table.addRow({c.inst, c.description, "-", "-", "missing"});
            continue;
        }
        Rng rng(0xFA55 ^ c.ew);
        const int vw = generated->argWidth(0, {});
        int first_fail = -1;
        const int trials = 200;
        for (int trial = 0; trial < trials; ++trial) {
            BitVector a = BitVector::random(vw, rng);
            BitVector b = BitVector::random(vw, rng);
            // Auto-generated semantics (vendor pseudocode masks).
            const BitVector truth = generated->evaluate({a, b}, {});
            // Hand-written semantics with the masking bug.
            const BitVector buggy =
                handShift(a, b, c.ew, c.kind, /*mask_amount=*/false);
            if (truth != buggy) {
                first_fail = trial;
                break;
            }
        }
        // Control: the corrected hand semantics must agree.
        Rng rng2(0xFA55 ^ c.ew);
        bool control_ok = true;
        for (int trial = 0; trial < 50; ++trial) {
            BitVector a = BitVector::random(vw, rng2);
            BitVector b = BitVector::random(vw, rng2);
            control_ok &= generated->evaluate({a, b}, {}) ==
                          handShift(a, b, c.ew, c.kind, true);
        }
        found += first_fail >= 0 ? 1 : 0;
        table.addRow({c.inst, c.description, format("%d", trials),
                      first_fail >= 0 ? format("%d", first_fail) : "none",
                      first_fail >= 0
                          ? (control_ok ? "yes (fix verified)" : "yes")
                          : "no"});
    }
    table.print(std::cout);
    std::cout << "\n" << found
              << " of 5 hand-written-semantics bug classes detected "
                 "(paper Table 2 lists 5 such bugs in Rake).\n";
    cli.record("fuzz_ms", fuzz_watch.millis());
    cli.finish();
    return found == 5 ? 0 : 1;
}
