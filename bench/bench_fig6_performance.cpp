/**
 * @file
 * Reproduces **Figure 6**: runtime performance of Hydride against the
 * production-Halide-style back ends (6a: x86, 6b: HVX, 6c: ARM), the
 * Halide-LLVM-style back end, and Rake (HVX only).
 *
 * Runtime is simulated cycles (latency model + memory traffic; see
 * backends/simulator.h and the substitution table in DESIGN.md).
 * Every compiled kernel is differentially validated against its
 * Halide windows before being timed. Bars are reported as speedup of
 * Hydride over each baseline (values > 1 mean Hydride is faster).
 *
 * Paper reference geomeans: x86 +8% vs production Halide, +12% vs
 * Halide-LLVM; HVX ~parity vs production (with gaussian7x7 and
 * conv3x3a16 losses), ~2x vs Halide-LLVM, +25% vs Rake; ARM +3% vs
 * production, +26% vs Halide-LLVM.
 */
#include <cmath>
#include <iostream>

#include "backends/simulator.h"
#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "trace_cli.h"

using namespace hydride;

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Figure 6: runtime performance (simulated cycles) "
                 "===\n\n";
    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});

    // --smoke: one target, four kernels.
    const auto targets = cli.limited(evaluationTargets(), 1);
    const auto kernels = cli.limited(kernelNames(), 4);

    int validation_failures = 0;
    for (const auto &target : targets) {
        std::cout << "--- " << target.name << " ---\n";
        SynthesisCache cache;
        SynthesisOptions options;
        options.timeout_seconds = 2.0;
        HydrideBackend hydride(dict, target.isa, target.vector_bits,
                               options, &cache);
        HalideProdBackend prod(dict, target.isa, target.vector_bits);
        LlvmStyleBackend llvm(dict, target.isa, target.vector_bits);
        RakeBackend rake(dict, target.isa, target.vector_bits);

        Table table({"Benchmark", "Hydride cyc", "vs halide-prod",
                     "vs halide-llvm", "vs rake"});
        double geo_prod = 0;
        double geo_llvm = 0;
        double geo_rake = 0;
        int n = 0;
        int n_rake = 0;

        Stopwatch compile_watch;
        for (const auto &name : kernels) {
            Schedule schedule;
            schedule.vector_bits = target.vector_bits;
            Kernel kernel = buildKernel(name, schedule);

            CompiledKernel ch;
            CompiledKernel cp;
            CompiledKernel cl;
            CompiledKernel cr;
            if (!hydride.compile(kernel, ch) ||
                !prod.compile(kernel, cp) || !llvm.compile(kernel, cl)) {
                table.addRow({name, "compile-fail", "-", "-", "-"});
                continue;
            }
            for (const CompiledKernel *compiled : {&ch, &cp, &cl}) {
                if (!validateCompiled(dict, *compiled, kernel)) {
                    ++validation_failures;
                    std::cout << "VALIDATION FAILURE: "
                              << compiled->backend << "/" << name << "\n";
                }
            }
            const double hyd = simulateCycles(ch, kernel, target.sim);
            const double prod_c = simulateCycles(cp, kernel, target.sim);
            const double llvm_c = simulateCycles(cl, kernel, target.sim);
            geo_prod += std::log(prod_c / hyd);
            geo_llvm += std::log(llvm_c / hyd);
            ++n;

            std::string rake_cell = "fail";
            if (rake.compile(kernel, cr) &&
                validateCompiled(dict, cr, kernel)) {
                const double rake_c = simulateCycles(cr, kernel, target.sim);
                geo_rake += std::log(rake_c / hyd);
                ++n_rake;
                rake_cell = format("%.2fx", rake_c / hyd);
            }
            table.addRow({name, format("%.0f", hyd),
                          format("%.2fx", prod_c / hyd),
                          format("%.2fx", llvm_c / hyd), rake_cell});
        }
        table.addRow(
            {"GEOMEAN", "", format("%.3fx", std::exp(geo_prod / n)),
             format("%.3fx", std::exp(geo_llvm / n)),
             n_rake ? format("%.3fx (%d benchmarks)",
                             std::exp(geo_rake / n_rake), n_rake)
                    : "-"});
        table.print(std::cout);
        std::cout << "\n";
        cli.record(target.isa + ".compile_all_ms",
                   compile_watch.millis(), n);
        cli.recordRatio(target.isa + ".vs_prod_x",
                        std::exp(geo_prod / n));
        cli.recordRatio(target.isa + ".vs_llvm_x",
                        std::exp(geo_llvm / n));
        if (n_rake)
            cli.recordRatio(target.isa + ".vs_rake_x",
                            std::exp(geo_rake / n_rake));
    }

    std::cout << "Validation failures: " << validation_failures << "\n";
    std::cout << "Paper reference geomeans: x86 1.08x/1.12x; HVX "
                 "~1.0x/~2x/1.25x (Rake); ARM 1.03x/1.26x.\n";
    cli.finish();
    return validation_failures == 0 ? 0 : 1;
}
