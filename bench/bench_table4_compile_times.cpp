/**
 * @file
 * Reproduces **Table 4**: Hydride compilation times on x86, HVX and
 * ARM across the 33 benchmarks under four memoization scenarios:
 *
 *  I.   Cold cache — synthesis from scratch per benchmark (the paper
 *       also reports the number of expressions synthesized).
 *  II.  n-th benchmark — cache pre-populated with the results of all
 *       *other* benchmarks (shared subexpressions hit).
 *  III. Full cache — recompilation with every result cached.
 *  IV.  Modified schedules — tiling/unrolling changed, vectorization
 *       factor kept; windows keep their shapes so the full cache
 *       still hits (the paper's "common and realistic scenario").
 *
 * Absolute times are milliseconds rather than the paper's minutes —
 * the enumerative C++ synthesizer and C++ hash-table cache replace
 * Rosette/Racket (the paper itself predicts the cache-lookup gap:
 * "A fast language like C++ would greatly reduce cache lookup
 * times"). The reproduced result is the *relation* I >> II > III ~ IV.
 */
#include <cmath>
#include <iostream>
#include <map>
#include <set>

#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "synthesis/compiler.h"
#include "trace_cli.h"

using namespace hydride;

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Table 4: compilation times (ms) under cache "
                 "scenarios ===\n\n";
    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});
    SynthesisOptions options;
    options.timeout_seconds = 2.0;

    // --smoke: one target, four kernels — enough to exercise every
    // cache scenario without the full 33-kernel sweep.
    const auto targets = cli.limited(evaluationTargets(), 1);
    const auto kernels = cli.limited(kernelNames(), 4);

    for (const auto &target : targets) {
        std::cout << "--- " << target.name << " ---\n";
        Table table({"Benchmark", "I cold (ms)", "(# expr)",
                     "II n-th (ms)", "III full (ms)", "IV resched (ms)"});

        // Pass 1: cold compiles; collect window-piece hashes per
        // benchmark and a union cache.
        SynthesisCache union_cache;
        std::map<std::string, std::set<uint64_t>> hashes;
        std::map<std::string, double> cold_ms;
        std::map<std::string, int> exprs;
        for (const auto &name : kernels) {
            Schedule schedule;
            schedule.vector_bits = target.vector_bits;
            Kernel kernel = buildKernel(name, schedule);
            SynthesisCache fresh;
            HydrideCompiler compiler(dict, target.isa, target.vector_bits,
                                     options, &fresh);
            Stopwatch watch;
            KernelCompilation compiled = compiler.compile(kernel);
            cold_ms[name] = watch.millis();
            exprs[name] = static_cast<int>(compiled.pieces.size());
            for (const auto &piece : compiled.pieces)
                hashes[name].insert(HExpr::hashOf(piece));
            fresh.forEach([&](const SynthesisCache::Key &key,
                              const SynthesisResult &result) {
                union_cache.insertByKey(key, result);
            });
        }

        // Scenario helpers.
        auto timed_compile = [&](const std::string &name,
                                 SynthesisCache &cache,
                                 const Schedule &schedule) {
            Kernel kernel = buildKernel(name, schedule);
            HydrideCompiler compiler(dict, target.isa, target.vector_bits,
                                     options, &cache);
            Stopwatch watch;
            compiler.compile(kernel);
            return watch.millis();
        };

        double geo[4] = {0, 0, 0, 0};
        int count = 0;
        for (const auto &name : kernels) {
            Schedule schedule;
            schedule.vector_bits = target.vector_bits;

            // II: cache holds entries hit by at least one *other*
            // benchmark.
            SynthesisCache nth_cache;
            union_cache.forEach([&](const SynthesisCache::Key &key,
                                    const SynthesisResult &result) {
                for (const auto &[other, other_hashes] : hashes) {
                    if (other != name && other_hashes.count(key.first)) {
                        nth_cache.insertByKey(key, result);
                        return;
                    }
                }
            });
            const double ii = timed_compile(name, nth_cache, schedule);

            // III: full cache.
            const double iii = timed_compile(name, union_cache, schedule);

            // IV: modified schedules, same vectorization factor.
            Schedule rescheduled = schedule;
            rescheduled.unroll = 2;
            rescheduled.tile = 16;
            const double iv =
                timed_compile(name, union_cache, rescheduled);

            table.addRow({name, format("%.1f", cold_ms[name]),
                          format("(%d)", exprs[name]), format("%.1f", ii),
                          format("%.2f", iii), format("%.2f", iv)});
            geo[0] += std::log(std::max(cold_ms[name], 0.01));
            geo[1] += std::log(std::max(ii, 0.01));
            geo[2] += std::log(std::max(iii, 0.01));
            geo[3] += std::log(std::max(iv, 0.01));
            ++count;
        }
        table.addRow({"Geomean", format("%.1f", std::exp(geo[0] / count)),
                      "", format("%.1f", std::exp(geo[1] / count)),
                      format("%.2f", std::exp(geo[2] / count)),
                      format("%.2f", std::exp(geo[3] / count))});
        table.print(std::cout);
        std::cout << "\n";
        cli.record(target.isa + ".geomean_cold_ms",
                   std::exp(geo[0] / count), count);
        cli.record(target.isa + ".geomean_nth_ms",
                   std::exp(geo[1] / count), count);
        cli.record(target.isa + ".geomean_full_ms",
                   std::exp(geo[2] / count), count);
        cli.record(target.isa + ".geomean_resched_ms",
                   std::exp(geo[3] / count), count);
    }
    std::cout << "Paper relation reproduced when geomean(I) >> "
                 "geomean(II) > geomean(III) ~= geomean(IV).\n";
    cli.finish();
    return 0;
}
