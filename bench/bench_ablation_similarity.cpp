/**
 * @file
 * Ablation study for the similarity checking engine's design choices
 * (the offline-phase counterpart of Table 5's online ablations):
 * what each Algorithm 1 pass — argument permutation, hole-based
 * index-offset refinement, dead-parameter elimination — contributes
 * to the AutoLLVM IR's compactness.
 *
 * The hole-insertion pass cannot be toggled from the options struct
 * (it is part of extraction), so its contribution is reported as the
 * count of classes whose members differ in an Index-role parameter —
 * exactly the merges that would split without holes (the paper's
 * unpacklo/unpackhi example).
 */
#include <iostream>

#include "similarity/engine.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "trace_cli.h"

using namespace hydride;

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Ablation: similarity-engine passes ===\n\n";
    auto insts = combinedSemantics({"x86", "hvx", "arm"});

    Table table({"Configuration", "Classes", "Perm merges",
                 "Params eliminated", "Avg params/class"});
    auto run = [&](const char *label, const char *slug,
                   SimilarityOptions options) {
        SimilarityStats stats;
        Stopwatch watch;
        auto classes = runSimilarityEngine(insts, options, &stats);
        cli.record(std::string("engine.") + slug + "_ms", watch.millis());
        size_t params = 0;
        for (const auto &cls : classes)
            params += cls.rep.params.size();
        table.addRow({label, format("%d", static_cast<int>(classes.size())),
                      format("%d", stats.permutation_merges),
                      format("%d", stats.params_eliminated),
                      format("%.1f", static_cast<double>(params) /
                                         classes.size())});
        return classes;
    };

    SimilarityOptions full;
    auto classes = run("full (paper configuration)", "full", full);

    SimilarityOptions no_perm = full;
    no_perm.permute_args = false;
    run("without argument permutation", "no_perm", no_perm);

    SimilarityOptions no_elim = full;
    no_elim.eliminate_dead_params = false;
    run("without dead-parameter elimination", "no_elim", no_elim);

    table.print(std::cout);

    // Hole contribution: classes alive only because of index-offset
    // parameterization (members disagree on an Index-role parameter).
    int hole_dependent = 0;
    for (const auto &cls : classes) {
        bool index_varies = false;
        for (size_t p = 0; p < cls.rep.params.size(); ++p) {
            if (cls.rep.params[p].role != ParamRole::Index)
                continue;
            for (const auto &member : cls.members) {
                index_varies |= member.param_values[p] !=
                                cls.members[0].param_values[p];
            }
        }
        hole_dependent += index_varies && cls.members.size() > 1 ? 1 : 0;
    }
    std::cout << "\nClasses whose merges depend on hole-based index "
                 "offsets (unpacklo/unpackhi-style): "
              << hole_dependent << "\n";
    std::cout << "\nReading: argument permutation merges operand-order "
                 "variants (mask_blend vs mask_mov); dead-parameter "
                 "elimination shrinks signatures (the paper's "
                 "'eliminating unnecessary arguments'); hole insertion "
                 "is what lets offset variants share a class.\n";
    cli.finish();
    return 0;
}
