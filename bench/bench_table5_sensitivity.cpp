/**
 * @file
 * Reproduces **Table 5**: synthesis sensitivity analysis — grammar
 * sizes and synthesis times for the dot-product operation on x86,
 * HVX and ARM under the pruning-heuristic settings:
 *
 *   - All target instructions (no pruning)
 *   - Top 50 instructions by score
 *   - BVS  (bitvector-based screening)
 *   - BVS + lane-wise synthesis
 *   - BVS + scaling
 *   - BVS + scaling + lane-wise
 *   - BVS + scaling + lane-wise + SBOS
 *
 * Times are milliseconds (enumerative C++ search vs the paper's
 * SMT-based Rosette, whose no-pruning rows are intractable/4h+); the
 * reproduced result is the ordering: pruning and the lane/scale
 * optimizations each cut synthesis time, and the full configuration
 * is fastest with the smallest grammar.
 */
#include <iostream>

#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "halide/kernels.h"
#include "synthesis/cegis.h"
#include "trace_cli.h"

using namespace hydride;

namespace {

struct Setting
{
    const char *label;
    bool bvs;
    bool sbos;
    int max_ops;
    bool lanewise;
    bool scaling;
};

} // namespace

namespace {

/** The 4-way byte dot-product window (paper Table 5's query), with
 *  the operand signedness each target's instruction uses. */
HExprPtr
dotWindow(const TargetDesc &target)
{
    const int out_lanes = target.vector_bits / 32;
    const int in_lanes = 4 * out_lanes;
    const bool a_signed = target.isa == "arm"; // sdot: s8*s8
    HExprPtr a = hCast(hInput(1, 8, in_lanes), 32, a_signed);
    HExprPtr b = hCast(hInput(2, 8, in_lanes), 32, true);
    HExprPtr acc = hInput(0, 32, out_lanes);
    return hBin(HOp::Add, acc,
                hReduceAdd(hBin(HOp::Mul, a, b), 4));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Table 5: synthesis sensitivity (dot-product window) "
                 "===\n\n";
    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});

    const char *const slugs[] = {
        "all_insts", "top50", "bvs", "bvs_lane", "bvs_scale",
        "bvs_scale_lane", "bvs_scale_lane_sbos",
    };
    const Setting settings[] = {
        {"All target instructions", false, false, 0, false, false},
        {"Top 50 instructions by score", false, false, 50, false, false},
        {"BVS", true, false, 0, false, false},
        {"BVS + lane-wise", true, false, 0, true, false},
        {"BVS + scaling", true, false, 0, false, true},
        {"BVS + scaling + lane-wise", true, false, 0, true, true},
        {"BVS + scaling + lane-wise + SBOS", true, true, 0, true, true},
    };

    Table table({"Synthesis setting", "x86 #ops", "x86 ms", "HVX #ops",
                 "HVX ms", "ARM #ops", "ARM ms"});
    // The table's columns are fixed per target, so the full target
    // sweep runs even under --smoke (the window is tiny; the whole
    // table costs well under a second).
    for (size_t si = 0; si < std::size(settings); ++si) {
        const auto &setting = settings[si];
        std::vector<std::string> row = {setting.label};
        for (const auto &target : evaluationTargets()) {
            // The paper's query is "the dot-product operations":
            // the 4-way byte dot every target fuses (x86 dpbusd,
            // HVX vrmpy, ARM sdot), with each target's operand
            // signedness.
            HExprPtr window = dotWindow(target);

            SynthesisOptions options;
            options.grammar.bvs = setting.bvs;
            options.grammar.sbos = setting.sbos;
            options.grammar.max_ops = setting.max_ops;
            options.lanewise = setting.lanewise;
            options.scaling = setting.scaling;
            options.timeout_seconds = 30.0;

            SynthesisResult result = synthesizeWindow(
                dict, target.isa, window, options);
            row.push_back(format("%d", result.grammar_size));
            row.push_back(result.ok ? format("%.1f", result.seconds * 1e3)
                                    : format("fail/%.0fms",
                                             result.seconds * 1e3));
            cli.record(target.isa + "." + slugs[si] + "_ms",
                       result.seconds * 1e3);
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nPaper reference (seconds, x86/HVX/ARM): all-insts "
                 "intractable; top-50 14400+; BVS 236/997/628; "
                 "BVS+lane-wise 118/360/452; BVS+scaling 142/108/165; "
                 "BVS+scaling+lane-wise 115/78/175; +SBOS 86/48/104.\n";
    cli.finish();
    return 0;
}
