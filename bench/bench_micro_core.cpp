/**
 * @file
 * google-benchmark micro-benchmarks for Hydride's core components:
 * bitvector arithmetic, semantics interpretation, pseudocode parsing
 * + canonicalization, constant extraction, similarity grouping, and
 * end-to-end window synthesis. These quantify the substrate costs
 * behind the table/figure harnesses.
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "hir/canonicalize.h"
#include "similarity/extraction.h"
#include "specs/spec_db.h"
#include "specs/x86_manual.h"
#include "specs/x86_parser.h"
#include "support/rng.h"
#include "synthesis/compiler.h"
#include "trace_cli.h"

using namespace hydride;

namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

void
BM_BitVectorAdd(benchmark::State &state)
{
    Rng rng(1);
    BitVector a = BitVector::random(static_cast<int>(state.range(0)), rng);
    BitVector b = BitVector::random(static_cast<int>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.add(b));
}
BENCHMARK(BM_BitVectorAdd)->Arg(64)->Arg(512)->Arg(2048);

void
BM_BitVectorMul(benchmark::State &state)
{
    Rng rng(2);
    BitVector a = BitVector::random(static_cast<int>(state.range(0)), rng);
    BitVector b = BitVector::random(static_cast<int>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.mul(b));
}
BENCHMARK(BM_BitVectorMul)->Arg(64)->Arg(512);

void
BM_SemanticsInterpretation(benchmark::State &state)
{
    const CanonicalSemantics *madd = nullptr;
    for (const auto &sem : isaSemantics("x86").insts)
        if (sem.name == "_mm512_madd_epi16")
            madd = &sem;
    Rng rng(3);
    BitVector a = BitVector::random(512, rng);
    BitVector b = BitVector::random(512, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(madd->evaluate({a, b}, {}));
}
BENCHMARK(BM_SemanticsInterpretation);

void
BM_ParseAndCanonicalize(benchmark::State &state)
{
    const IsaSpec &manual = isaManual("x86");
    const InstDef *inst = nullptr;
    for (const auto &candidate : manual.insts)
        if (candidate.name == "_mm512_unpacklo_epi8")
            inst = &candidate;
    for (auto _ : state) {
        SpecFunction fn = parseX86Inst(*inst);
        benchmark::DoNotOptimize(canonicalize(fn));
    }
}
BENCHMARK(BM_ParseAndCanonicalize);

void
BM_ConstantExtraction(benchmark::State &state)
{
    const CanonicalSemantics *sem = nullptr;
    for (const auto &candidate : isaSemantics("x86").insts)
        if (candidate.name == "_mm512_dpwssd_epi32")
            sem = &candidate;
    for (auto _ : state)
        benchmark::DoNotOptimize(extractConstants(*sem));
}
BENCHMARK(BM_ConstantExtraction);

void
BM_SimilarityEngine300(benchmark::State &state)
{
    std::vector<CanonicalSemantics> insts(
        isaSemantics("hvx").insts.begin(),
        isaSemantics("hvx").insts.end());
    for (auto _ : state)
        benchmark::DoNotOptimize(runSimilarityEngine(insts));
}
BENCHMARK(BM_SimilarityEngine300)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeMatmulWindow(benchmark::State &state)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            synthesizeWindow(dict(), "x86", kernel.windows[0]));
    }
}
BENCHMARK(BM_SynthesizeMatmulWindow)->Unit(benchmark::kMillisecond);

void
BM_CacheLookup(benchmark::State &state)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisCache cache;
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", kernel.windows[0]);
    cache.insert(kernel.windows[0], "x86", result);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(kernel.windows[0], "x86"));
}
BENCHMARK(BM_CacheLookup);

/** ConsoleReporter that also record()s every run into the BenchCli,
 *  so `--json-out` captures per-benchmark times alongside the normal
 *  console table. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CaptureReporter(bench::BenchCli &cli) : cli_(cli) {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.error_occurred ||
                run.run_type != Run::RT_Iteration || run.iterations == 0)
                continue;
            const double denom = static_cast<double>(run.iterations);
            cli_.record(run.benchmark_name(),
                        1e3 * run.real_accumulated_time / denom,
                        static_cast<long>(run.iterations),
                        1e3 * run.cpu_accumulated_time / denom);
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::BenchCli &cli_;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);

    // Strip the BenchCli flags before handing argv to google-benchmark
    // (it rejects flags it does not know).
    std::vector<char *> gargv = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json-out") == 0 ||
            std::strcmp(argv[i], "--trace-out") == 0) {
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--smoke") == 0 ||
            std::strcmp(argv[i], "--profile") == 0)
            continue;
        gargv.push_back(argv[i]);
    }
    std::string min_time = "--benchmark_min_time=0.02";
    if (cli.smoke())
        gargv.push_back(min_time.data());
    int gargc = static_cast<int>(gargv.size());
    benchmark::Initialize(&gargc, gargv.data());

    CaptureReporter reporter(cli);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    cli.finish();
    return 0;
}
