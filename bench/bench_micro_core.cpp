/**
 * @file
 * google-benchmark micro-benchmarks for Hydride's core components:
 * bitvector arithmetic, semantics interpretation, pseudocode parsing
 * + canonicalization, constant extraction, similarity grouping, and
 * end-to-end window synthesis. These quantify the substrate costs
 * behind the table/figure harnesses.
 */
#include <benchmark/benchmark.h>

#include "hir/canonicalize.h"
#include "similarity/extraction.h"
#include "specs/spec_db.h"
#include "specs/x86_manual.h"
#include "specs/x86_parser.h"
#include "support/rng.h"
#include "synthesis/compiler.h"

using namespace hydride;

namespace {

const AutoLLVMDict &
dict()
{
    static const AutoLLVMDict d = AutoLLVMDict::build({"x86", "hvx", "arm"});
    return d;
}

void
BM_BitVectorAdd(benchmark::State &state)
{
    Rng rng(1);
    BitVector a = BitVector::random(static_cast<int>(state.range(0)), rng);
    BitVector b = BitVector::random(static_cast<int>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.add(b));
}
BENCHMARK(BM_BitVectorAdd)->Arg(64)->Arg(512)->Arg(2048);

void
BM_BitVectorMul(benchmark::State &state)
{
    Rng rng(2);
    BitVector a = BitVector::random(static_cast<int>(state.range(0)), rng);
    BitVector b = BitVector::random(static_cast<int>(state.range(0)), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.mul(b));
}
BENCHMARK(BM_BitVectorMul)->Arg(64)->Arg(512);

void
BM_SemanticsInterpretation(benchmark::State &state)
{
    const CanonicalSemantics *madd = nullptr;
    for (const auto &sem : isaSemantics("x86").insts)
        if (sem.name == "_mm512_madd_epi16")
            madd = &sem;
    Rng rng(3);
    BitVector a = BitVector::random(512, rng);
    BitVector b = BitVector::random(512, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(madd->evaluate({a, b}, {}));
}
BENCHMARK(BM_SemanticsInterpretation);

void
BM_ParseAndCanonicalize(benchmark::State &state)
{
    const IsaSpec &manual = isaManual("x86");
    const InstDef *inst = nullptr;
    for (const auto &candidate : manual.insts)
        if (candidate.name == "_mm512_unpacklo_epi8")
            inst = &candidate;
    for (auto _ : state) {
        SpecFunction fn = parseX86Inst(*inst);
        benchmark::DoNotOptimize(canonicalize(fn));
    }
}
BENCHMARK(BM_ParseAndCanonicalize);

void
BM_ConstantExtraction(benchmark::State &state)
{
    const CanonicalSemantics *sem = nullptr;
    for (const auto &candidate : isaSemantics("x86").insts)
        if (candidate.name == "_mm512_dpwssd_epi32")
            sem = &candidate;
    for (auto _ : state)
        benchmark::DoNotOptimize(extractConstants(*sem));
}
BENCHMARK(BM_ConstantExtraction);

void
BM_SimilarityEngine300(benchmark::State &state)
{
    std::vector<CanonicalSemantics> insts(
        isaSemantics("hvx").insts.begin(),
        isaSemantics("hvx").insts.end());
    for (auto _ : state)
        benchmark::DoNotOptimize(runSimilarityEngine(insts));
}
BENCHMARK(BM_SimilarityEngine300)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeMatmulWindow(benchmark::State &state)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            synthesizeWindow(dict(), "x86", kernel.windows[0]));
    }
}
BENCHMARK(BM_SynthesizeMatmulWindow)->Unit(benchmark::kMillisecond);

void
BM_CacheLookup(benchmark::State &state)
{
    Schedule schedule;
    schedule.vector_bits = 512;
    Kernel kernel = buildKernel("matmul_b1", schedule);
    SynthesisCache cache;
    SynthesisResult result =
        synthesizeWindow(dict(), "x86", kernel.windows[0]);
    cache.insert(kernel.windows[0], "x86", result);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.lookup(kernel.windows[0], "x86"));
}
BENCHMARK(BM_CacheLookup);

} // namespace

BENCHMARK_MAIN();
