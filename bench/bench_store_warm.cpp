/**
 * @file
 * Cold-vs-warm compile-time curve for the durable synthesis store
 * (src/synthesis/store/, docs/cache_store.md).
 *
 * Run 0 compiles every kernel against an *empty* store — pure CEGIS,
 * appending each result. Every later run rebuilds the compiler and
 * the in-process cache from scratch (simulating a fresh compiler
 * process on the same machine), so the durable store is the only
 * memoization left: windows come back as verified `store_hit`s
 * instead of synthesis searches. The recorded curve
 *
 *   store.run0_ms  >>  store.run1_ms  ~=  store.run2_ms
 *
 * is the multi-process analogue of Table 4's cold/full-cache
 * relation, with trust-but-verify re-proving every retrieved entry
 * (the warm numbers *include* verification cost — that is the honest
 * price of a hit). `store.warm_speedup` records run0/run1;
 * tools/check_bench.py requires the curve fields to be present and
 * the speedup to be >= 1.
 */
#include <iostream>

#include "backends/targets.h"
#include "driver/resilience.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/timing.h"
#include "trace_cli.h"

#include <unistd.h>

using namespace hydride;

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Durable store: cold vs warm compile times ===\n\n";

    AutoLLVMDict dict = AutoLLVMDict::build({"x86"});
    const auto kernels = cli.limited(kernelNames(), 3);
    constexpr int kRuns = 3;

    const std::string store_dir =
        "/tmp/hydride_bench_store." + std::to_string(::getpid());
    std::system(("rm -rf '" + store_dir + "'").c_str());

    ResilienceOptions options;
    options.synthesis.timeout_seconds = 2.0;
    options.store_path = store_dir;

    Table table({"Run", "compile (ms)", "store entries"});
    double run_ms[kRuns] = {};
    for (int run = 0; run < kRuns; ++run) {
        size_t store_size = 0;
        for (const auto &name : kernels) {
            Schedule schedule;
            Kernel kernel = buildKernel(name, schedule);
            // Fresh compiler and cache per kernel: within a run, the
            // durable store is the only state carried over — the same
            // situation as a fleet of short-lived compiler processes.
            SynthesisCache fresh;
            ResilientCompiler compiler(dict, "x86", 256, options, &fresh);
            Stopwatch watch;
            compiler.compile(kernel);
            run_ms[run] += watch.millis();
            store_size = compiler.store().size();
        }
        table.addRow({run == 0 ? "0 (cold)" : format("%d (warm)", run),
                      format("%.1f", run_ms[run]),
                      format("%zu", store_size)});
        cli.record(format("store.run%d_ms", run), run_ms[run],
                   static_cast<long>(kernels.size()));
    }
    table.print(std::cout);

    const double speedup =
        run_ms[1] > 0.0 ? run_ms[0] / run_ms[1] : 0.0;
    std::cout << "\nWarm speedup (run0 / run1): " << format("%.1fx", speedup)
              << "\n";
    cli.recordRatio("store.warm_speedup", speedup);

    std::system(("rm -rf '" + store_dir + "'").c_str());
    cli.finish();
    return 0;
}
