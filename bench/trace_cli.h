/**
 * @file
 * Shared `--trace-out <file>` handling for the benchmark binaries.
 *
 * `--trace-out out.json` enables the observability layer for the run
 * and, on finish(), writes
 *
 *   out.json               Chrome trace_event JSON (chrome://tracing
 *                          or https://ui.perfetto.dev)
 *   out.json.metrics.json  metrics registry snapshot
 *
 * so perf work can diff per-phase breakdowns between runs instead of
 * end-to-end totals. The HYDRIDE_TRACE / HYDRIDE_METRICS environment
 * variables (see docs/observability.md) work for any binary without
 * this flag; the flag is a convenience for explicit output paths.
 */
#ifndef HYDRIDE_BENCH_TRACE_CLI_H
#define HYDRIDE_BENCH_TRACE_CLI_H

#include <cstring>
#include <iostream>
#include <string>

#include "observability/metrics.h"
#include "observability/trace.h"

namespace hydride {
namespace bench {

class TraceCli
{
  public:
    /** Scan argv for --trace-out; enables tracing+metrics if found. */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace-out") == 0 &&
                i + 1 < argc) {
                path_ = argv[++i];
                trace::setEnabled(true);
                metrics::setEnabled(true);
            }
        }
    }

    bool enabled() const { return !path_.empty(); }

    /** Dump the trace and metrics artifacts (no-op without the flag). */
    void
    finish() const
    {
        if (path_.empty())
            return;
        const std::string metrics_path = path_ + ".metrics.json";
        const bool trace_ok = trace::writeChromeJson(path_);
        const bool metrics_ok = metrics::writeJson(metrics_path);
        std::cerr << "trace: " << (trace_ok ? path_ : "<write failed>")
                  << "\nmetrics: "
                  << (metrics_ok ? metrics_path : "<write failed>")
                  << "\n";
    }

  private:
    std::string path_;
};

} // namespace bench
} // namespace hydride

#endif // HYDRIDE_BENCH_TRACE_CLI_H
