/**
 * @file
 * Shared CLI handling for the benchmark binaries.
 *
 * `--trace-out out.json` (TraceCli) enables the observability layer
 * for the run and, on finish(), writes
 *
 *   out.json               Chrome trace_event JSON (chrome://tracing
 *                          or https://ui.perfetto.dev)
 *   out.json.metrics.json  metrics registry snapshot
 *
 * so perf work can diff per-phase breakdowns between runs instead of
 * end-to-end totals. The HYDRIDE_TRACE / HYDRIDE_METRICS environment
 * variables (see docs/observability.md) work for any binary without
 * this flag; the flag is a convenience for explicit output paths.
 *
 * BenchCli adds the continuous-benchmarking flags every bench binary
 * supports (see docs/benchmarking.md):
 *
 *   --json-out <file>  write a schema-versioned BenchReport: the
 *                      entries record()ed by the harness, the phase
 *                      profile of the run's trace, and the metrics
 *                      snapshot (hydride-bench merges these into the
 *                      committed BENCH_<n>.json trajectory)
 *   --smoke            reduced workload (fewer kernels / one target);
 *                      marked in the report — smoke numbers never
 *                      compare against full-run baselines
 *   --profile          print the per-phase synthesis time breakdown
 *                      (enumeration / concrete eval / symbolic / SAT /
 *                      cache lookup) on exit
 */
#ifndef HYDRIDE_BENCH_TRACE_CLI_H
#define HYDRIDE_BENCH_TRACE_CLI_H

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "observability/bench/bench_report.h"
#include "observability/bench/phase_profiler.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/timing.h"

namespace hydride {
namespace bench {

class TraceCli
{
  public:
    /** Scan argv for --trace-out; enables tracing+metrics if found. */
    void
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace-out") == 0 &&
                i + 1 < argc) {
                path_ = argv[++i];
                trace::setEnabled(true);
                metrics::setEnabled(true);
            }
        }
    }

    bool enabled() const { return !path_.empty(); }

    /** Dump the trace and metrics artifacts (no-op without the flag). */
    void
    finish() const
    {
        if (path_.empty())
            return;
        const std::string metrics_path = path_ + ".metrics.json";
        const bool trace_ok = trace::writeChromeJson(path_);
        const bool metrics_ok = metrics::writeJson(metrics_path);
        std::cerr << "trace: " << (trace_ok ? path_ : "<write failed>")
                  << "\nmetrics: "
                  << (metrics_ok ? metrics_path : "<write failed>")
                  << "\n";
    }

  private:
    std::string path_;
};

/** TraceCli plus the BenchReport flags (--json-out, --smoke,
 *  --profile). One instance per bench main(); parse() first,
 *  record() the measurements, finish() last. */
class BenchCli
{
  public:
    /** Scan argv; --json-out and --profile both enable tracing and
     *  metrics so the phase profile and histogram summaries have
     *  data to report. */
    void
    parse(int argc, char **argv)
    {
        trace_.parse(argc, argv);
        suite_ = basename(argv[0]);
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
                json_path_ = argv[++i];
            } else if (std::strcmp(argv[i], "--smoke") == 0) {
                smoke_ = true;
            } else if (std::strcmp(argv[i], "--profile") == 0) {
                profile_ = true;
            }
        }
        if (!json_path_.empty() || profile_) {
            trace::setEnabled(true);
            metrics::setEnabled(true);
        }
    }

    bool smoke() const { return smoke_; }
    const std::string &suite() const { return suite_; }

    /** First `cap` elements under --smoke, all of them otherwise. */
    template <class Vec>
    Vec
    limited(Vec v, size_t cap) const
    {
        if (smoke_ && v.size() > cap)
            v.resize(cap);
        return v;
    }

    /** Record a wall-time measurement (what the regression gate
     *  compares). */
    void
    record(const std::string &name, double wall_ms, long iterations = 1,
           double cpu_ms = -1.0)
    {
        BenchEntry entry;
        entry.name = name;
        entry.kind = "time";
        entry.wall_ms = wall_ms;
        entry.cpu_ms = cpu_ms;
        entry.iterations = iterations;
        entries_.push_back(std::move(entry));
    }

    /** Record a dimensionless result (speedup, compression factor);
     *  informational, never gated. */
    void
    recordRatio(const std::string &name, double value)
    {
        BenchEntry entry;
        entry.name = name;
        entry.kind = "ratio";
        entry.value = value;
        entries_.push_back(std::move(entry));
    }

    /** Write every requested artifact. Records `total_ms` (whole-run
     *  wall time since parse) automatically. */
    void
    finish()
    {
        trace_.finish();
        if (json_path_.empty() && !profile_)
            return;
        record("total_ms", run_watch_.millis(), 1, cpuTimeMs());
        const PhaseProfile profile = profileCurrentTrace();
        if (profile_)
            std::cout << "\n" << formatProfile(profile);
        if (json_path_.empty())
            return;
        BenchReport report;
        report.suite = suite_;
        report.smoke = smoke_;
        report.benchmarks = entries_;
        report.has_phases = true;
        report.phases = profile.aggregate;
        report.metrics = MetricsSummary::fromSnapshot(metrics::snapshot());
        std::ofstream out(json_path_);
        if (out) {
            out << report.toJson() << "\n";
            std::cerr << "bench report: " << json_path_ << "\n";
        } else {
            std::cerr << "bench report: cannot write " << json_path_
                      << "\n";
        }
    }

  private:
    static std::string
    basename(const char *path)
    {
        const std::string s = path ? path : "bench";
        const size_t slash = s.find_last_of('/');
        return slash == std::string::npos ? s : s.substr(slash + 1);
    }

    TraceCli trace_;
    std::string suite_;
    std::string json_path_;
    bool smoke_ = false;
    bool profile_ = false;
    std::vector<BenchEntry> entries_;
    Stopwatch run_watch_;
};

} // namespace bench
} // namespace hydride

#endif // HYDRIDE_BENCH_TRACE_CLI_H
