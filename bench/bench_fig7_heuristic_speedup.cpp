/**
 * @file
 * Reproduces **Figure 7**: speedup of synthesis using Hydride's
 * heuristics, relative to the BVS-only baseline, for x86, HVX and
 * ARM on the dot-product synthesis query (same experiment as Table 5,
 * presented as the paper's bar series).
 *
 * Paper reference speedups over BVS: lane-wise 2x/2.8x/1.4x;
 * scaling+lane-wise 2x/12.8x/3.6x; +SBOS 2.7x/20.8x/6x
 * (x86/HVX/ARM).
 */
#include <iostream>

#include "backends/targets.h"
#include "specs/spec_db.h"
#include "support/strings.h"
#include "support/table.h"
#include "halide/kernels.h"
#include "synthesis/cegis.h"
#include "trace_cli.h"

using namespace hydride;

namespace {

/** The 4-way byte dot-product window (paper Table 5's query), with
 *  the operand signedness each target's instruction uses. */
HExprPtr
dotWindow(const TargetDesc &target)
{
    const int out_lanes = target.vector_bits / 32;
    const int in_lanes = 4 * out_lanes;
    const bool a_signed = target.isa == "arm"; // sdot: s8*s8
    HExprPtr a = hCast(hInput(1, 8, in_lanes), 32, a_signed);
    HExprPtr b = hCast(hInput(2, 8, in_lanes), 32, true);
    HExprPtr acc = hInput(0, 32, out_lanes);
    return hBin(HOp::Add, acc,
                hReduceAdd(hBin(HOp::Mul, a, b), 4));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchCli cli;
    cli.parse(argc, argv);
    std::cout << "=== Figure 7: synthesis heuristic speedups over BVS "
                 "===\n\n";
    AutoLLVMDict dict = AutoLLVMDict::build({"x86", "hvx", "arm"});

    struct Setting
    {
        const char *label;
        bool sbos;
        bool lanewise;
        bool scaling;
    };
    const Setting settings[] = {
        {"BVS (baseline)", false, false, false},
        {"BVS + lane-wise", false, true, false},
        {"BVS + scaling", false, false, true},
        {"BVS + scaling + lane-wise", false, true, true},
        {"BVS + scaling + lane-wise + SBOS", true, true, true},
    };

    // Measure all settings per target, then normalize to BVS.
    Table table({"Heuristic", "x86 speedup", "HVX speedup",
                 "ARM speedup"});
    std::vector<std::vector<double>> times(
        std::size(settings), std::vector<double>(3, 0.0));

    // --smoke: median-of-one instead of median-of-three.
    const int reps = cli.smoke() ? 1 : 3;
    int target_idx = 0;
    for (const auto &target : evaluationTargets()) {
        HExprPtr window = dotWindow(target);
        for (size_t s = 0; s < std::size(settings); ++s) {
            SynthesisOptions options;
            options.grammar.bvs = true;
            options.grammar.sbos = settings[s].sbos;
            options.lanewise = settings[s].lanewise;
            options.scaling = settings[s].scaling;
            options.timeout_seconds = 30.0;
            // Median of `reps` runs for timing stability.
            std::vector<double> runs;
            for (int r = 0; r < reps; ++r) {
                SynthesisResult result = synthesizeWindow(
                    dict, target.isa, window, options);
                runs.push_back(result.seconds);
            }
            std::sort(runs.begin(), runs.end());
            times[s][target_idx] = runs[runs.size() / 2];
        }
        ++target_idx;
    }

    const char *const slugs[] = {"bvs", "bvs_lane", "bvs_scale",
                                 "bvs_scale_lane",
                                 "bvs_scale_lane_sbos"};
    const char *const isas[] = {"x86", "hvx", "arm"};
    for (int t = 0; t < 3; ++t)
        cli.record(std::string(isas[t]) + ".bvs_ms", times[0][t] * 1e3);
    for (size_t s = 1; s < std::size(settings); ++s)
        for (int t = 0; t < 3; ++t)
            cli.recordRatio(std::string(isas[t]) + "." + slugs[s] + "_x",
                            times[0][t] / std::max(times[s][t], 1e-9));
    for (size_t s = 0; s < std::size(settings); ++s) {
        table.addRow({settings[s].label,
                      format("%.2fx", times[0][0] /
                                          std::max(times[s][0], 1e-9)),
                      format("%.2fx", times[0][1] /
                                          std::max(times[s][1], 1e-9)),
                      format("%.2fx", times[0][2] /
                                          std::max(times[s][2], 1e-9))});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference speedups over BVS (x86/HVX/ARM): "
                 "lane-wise 2/2.8/1.4; scaling+lane-wise 2/12.8/3.6; "
                 "+SBOS 2.7/20.8/6.\n";
    cli.finish();
    return 0;
}
