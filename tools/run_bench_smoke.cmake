# ctest driver for hydride_bench_smoke: run the bench suite in smoke
# mode, then structurally validate the merged artifact. Two steps in
# one test so the artifact checked is the artifact just produced.
#
# Expects: BENCH_TOOL, BENCH_DIR, CHECKER, OUT.
execute_process(
    COMMAND ${BENCH_TOOL} --smoke --bench-dir ${BENCH_DIR} --json-out ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hydride-bench --smoke failed with status ${rc}")
endif()

find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_Interpreter_FOUND)
    execute_process(
        COMMAND ${Python3_EXECUTABLE} ${CHECKER} ${OUT}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "check_bench.py rejected ${OUT} (status ${rc})")
    endif()
else()
    message(STATUS "python3 not found; skipping schema validation")
endif()
