#!/usr/bin/env python3
"""Validate Hydride observability artifacts.

Usage:
    check_trace.py TRACE.json [METRICS.json ...]

Checks that each trace file is well-formed Chrome trace_event JSON
(every event carries name/ph/pid/tid/ts, complete events a numeric
dur) and that each metrics file has the counters/gauges/histograms
shape with consistent bucket arrays.

Beyond shape, traces are checked *structurally*: duration ("B"/"E")
events must pair up per thread in LIFO order, and spans on one thread
must nest strictly — a span either contains another or is disjoint
from it; partial overlap means the span stack was corrupted (an
early return skipped a destructor, or timestamps went backwards).

Exits non-zero, naming the file and the problem, on the first
malformed artifact. Stdlib only.
"""
import json
import sys

# Tolerance for float microsecond comparisons: spans are recorded at
# nanosecond granularity, so anything below half a nanosecond is
# representation noise, not real overlap.
EPS = 0.0005


def fail(path, message):
    print(f"check_trace: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path, doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "traceEvents is not a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            fail(path, f"{where} is not an object")
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                fail(path, f"{where} missing required field '{key}'")
        if not isinstance(event["name"], str) or not event["name"]:
            fail(path, f"{where} has an empty name")
        if not isinstance(event["ts"], (int, float)):
            fail(path, f"{where} ts is not numeric")
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)):
                fail(path, f"{where} complete event lacks numeric dur")
            if event["dur"] < 0:
                fail(path, f"{where} has negative dur")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            fail(path, f"{where} args is not an object")
    check_span_pairing(path, events)
    check_span_nesting(path, events)
    return len(events)


def check_span_pairing(path, events):
    """Per-thread "B"/"E" events must pair up in strict LIFO order."""
    stacks = {}
    for i, event in enumerate(events):
        phase = event["ph"]
        if phase not in ("B", "E"):
            continue
        tid = event["tid"]
        where = f"traceEvents[{i}] (tid {tid})"
        stack = stacks.setdefault(tid, [])
        if phase == "B":
            stack.append((event["name"], i))
        else:
            if not stack:
                fail(path, f"{where} ends span '{event['name']}' "
                           "with no open span on this thread")
            open_name, open_at = stack.pop()
            # Chrome's E events may omit the name; when present it
            # must close the innermost open span.
            name = event.get("name")
            if name and name != open_name:
                fail(path,
                     f"{where} ends span '{name}' but the innermost "
                     f"open span is '{open_name}' "
                     f"(opened at traceEvents[{open_at}])")
    for tid, stack in stacks.items():
        if stack:
            name, at = stack[-1]
            fail(path, f"span '{name}' (traceEvents[{at}], tid {tid}) "
                       "is never closed")


def check_span_nesting(path, events):
    """Complete ("X") spans on one thread must nest strictly.

    Sweep each thread's spans in start order (ties: longest first,
    since the parent of equal-start spans must enclose the child) and
    keep a stack of enclosing end times. A span starting inside its
    enclosing span but ending outside it partially overlaps — the
    hallmark of a corrupted span stack.
    """
    per_tid = {}
    for i, event in enumerate(events):
        if event["ph"] != "X":
            continue
        per_tid.setdefault(event["tid"], []).append(
            (event["ts"], -event["dur"], event["name"], i))
    for tid, spans in per_tid.items():
        spans.sort()
        stack = []  # (end_ts, name, index) of enclosing spans.
        for ts, neg_dur, name, i in spans:
            end = ts - neg_dur
            while stack and stack[-1][0] <= ts + EPS:
                stack.pop()
            if stack and end > stack[-1][0] + EPS:
                outer_end, outer_name, outer_i = stack[-1]
                fail(path,
                     f"traceEvents[{i}] span '{name}' "
                     f"[{ts}, {end}] (tid {tid}) partially overlaps "
                     f"'{outer_name}' (traceEvents[{outer_i}], ends at "
                     f"{outer_end}); spans must nest or be disjoint")
            stack.append((end, name, i))


def check_metrics(path, doc):
    if not isinstance(doc, dict):
        fail(path, "snapshot is not an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(path, f"missing '{section}' object")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(path, f"counter '{name}' is not a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, int):
            fail(path, f"gauge '{name}' is not an integer")
    for name, hist in doc["histograms"].items():
        if not isinstance(hist, dict):
            fail(path, f"histogram '{name}' is not an object")
        for key in ("bounds", "buckets", "count", "sum", "min", "max"):
            if key not in hist:
                fail(path, f"histogram '{name}' missing '{key}'")
        bounds, buckets = hist["bounds"], hist["buckets"]
        if not isinstance(bounds, list) or not isinstance(buckets, list):
            fail(path, f"histogram '{name}' bounds/buckets not lists")
        if len(buckets) != len(bounds) + 1:
            fail(path,
                 f"histogram '{name}' has {len(buckets)} buckets for "
                 f"{len(bounds)} bounds (want bounds+1)")
        if list(bounds) != sorted(bounds):
            fail(path, f"histogram '{name}' bounds are not sorted")
        if sum(buckets) != hist["count"]:
            fail(path,
                 f"histogram '{name}' bucket sum {sum(buckets)} != "
                 f"count {hist['count']}")
    return (len(doc["counters"]), len(doc["gauges"]),
            len(doc["histograms"]))


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as err:
            fail(path, f"cannot read: {err}")
        except json.JSONDecodeError as err:
            fail(path, f"malformed JSON: {err}")
        # A metrics snapshot has the three-section shape; anything
        # else must be a trace.
        if isinstance(doc, dict) and "traceEvents" in doc:
            count = check_trace(path, doc)
            print(f"check_trace: {path}: OK ({count} events)")
        else:
            counters, gauges, hists = check_metrics(path, doc)
            print(f"check_trace: {path}: OK ({counters} counters, "
                  f"{gauges} gauges, {hists} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
