# ctest driver for hydride_inspect_explain: compile a real pipeline
# with the journal enabled, validate the stream with the strict
# checker, then prove `hydride-inspect explain --all` reconstructs a
# complete decision ledger for every compiled window and `top` can
# rank them. The steps share one test so the journal inspected is the
# journal just produced.
#
# Expects: EXAMPLE, INSPECT, CHECKER, JOURNAL.
file(REMOVE ${JOURNAL})
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env HYDRIDE_JOURNAL=${JOURNAL} ${EXAMPLE}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "example failed with status ${rc}")
endif()
if(NOT EXISTS ${JOURNAL})
    message(FATAL_ERROR "HYDRIDE_JOURNAL=${JOURNAL} wrote no journal")
endif()

find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_Interpreter_FOUND)
    execute_process(
        COMMAND ${Python3_EXECUTABLE} ${CHECKER} ${JOURNAL}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "check_journal.py rejected ${JOURNAL} (status ${rc})")
    endif()
else()
    message(STATUS "python3 not found; skipping schema validation")
endif()

execute_process(
    COMMAND ${INSPECT} explain --all --journal ${JOURNAL}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "hydride-inspect explain --all failed (status ${rc}): "
            "a compiled window is missing from the journal or its "
            "ledger is incomplete")
endif()

execute_process(
    COMMAND ${INSPECT} top --by=time --journal ${JOURNAL}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hydride-inspect top failed (status ${rc})")
endif()
