/**
 * @file
 * `hydride-verify` — run the pipeline-wide static verifier over the
 * derived spec database and AutoLLVM dictionary from the command
 * line. All logic lives in src/analysis/driver.cpp so the tests can
 * drive the CLI in-process.
 */
#include "analysis/driver.h"

#include <iostream>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return hydride::analysis::runVerifierCli(args, std::cout, std::cerr);
}
