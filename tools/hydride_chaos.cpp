/**
 * @file
 * hydride-chaos: the fault-injection sweep harness.
 *
 * The invariant under test (docs/robustness.md): for every registered
 * fault site, compiling through the resilient driver yields, per
 * window, either a verified-equivalent (possibly degraded) program or
 * a structured diagnostic — never a process abort/exit, a crash, or
 * silently wrong code.
 *
 * Modes:
 *
 *   hydride-chaos                 sweep: re-exec this binary once per
 *                                 registered fault site (plus a
 *                                 fault-free baseline) and summarize.
 *                                 Fresh processes matter: SpecDB and
 *                                 dictionary caches are process-
 *                                 lifetime statics, so seams inside
 *                                 them only trigger in a clean
 *                                 process — and a child that dies on
 *                                 a signal is *reported* as an
 *                                 invariant violation instead of
 *                                 killing the sweep.
 *   hydride-chaos --site S        single-site mode: configure the
 *                                 canonical clause for S, build the
 *                                 dictionary, compile the probe
 *                                 kernels resiliently, verify every
 *                                 window (symbolic first, concrete
 *                                 sampling on Unknown), exercise
 *                                 cache save/load. Exit 0 iff the
 *                                 invariant held.
 *   hydride-chaos --clause C      like --site, but with a verbatim
 *                                 HYDRIDE_FAULTS clause.
 *   hydride-chaos --break-ladder  deliberately disable the macro and
 *                                 scalarized rungs while injecting a
 *                                 primary-path fault: the harness
 *                                 must *fail* (the WILL_FAIL ctest
 *                                 entry proves the harness can detect
 *                                 a broken degradation path).
 *   hydride-chaos --list          print the canonical sweep plan.
 *
 * Multi-process store modes (the crash-safety half of the story —
 * docs/cache_store.md):
 *
 *   --store-crash                 SIGKILL a child mid-append: the
 *                                 parent must salvage the surviving
 *                                 records, take over the dead child's
 *                                 leaked writer lock, and warm-compile
 *                                 from the salvaged store.
 *   --store-concurrent            N forked writers appending to one
 *                                 shard: no record may be lost or
 *                                 torn.
 *   --store-poison                a wrong-but-well-formed store entry
 *                                 must be caught by warm-start
 *                                 verification, quarantined durably,
 *                                 and never reach codegen.
 *   --store-poison-unverified     the same poisoned store compiled
 *                                 with verification disabled: the
 *                                 harness must *fail* (the WILL_FAIL
 *                                 ctest entry proves the harness can
 *                                 detect poison reaching codegen).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/symbolic/ir_equiv.h"
#include "driver/resilience.h"
#include "observability/journal/journal.h"
#include "observability/metrics.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/rng.h"

namespace hydride {
namespace {

/**
 * Canonical clause per fault site: aggressive enough to actually
 * exercise the seam, gentle enough that the pipeline survives to
 * produce comparable output (e.g. parser faults hit a deterministic
 * 2% of instructions rather than emptying the SpecDB).
 */
const std::vector<std::pair<std::string, std::string>> &
sweepPlan()
{
    static const std::vector<std::pair<std::string, std::string>> plan = {
        {"parser.malformed", "parser.malformed@0.02"},
        {"specdb.corrupt", "specdb.corrupt@0.02"},
        {"similarity.verify", "similarity.verify@0.05"},
        {"cegis.timeout", "cegis.timeout"},
        {"alloc.cap", "alloc.cap=64K"},
        {"symbolic.budget", "symbolic.budget"},
        {"cache.save", "cache.save"},
        {"cache.corrupt", "cache.corrupt:1"},
        {"lowering.fail", "lowering.fail"},
        {"store.lock", "store.lock"},
        // Fires on the second append: one record lands cleanly first,
        // so the torn tail has a healthy neighbor to resync past.
        {"store.append", "store.append:2"},
        {"store.load", "store.load:1"},
        {"store.verify", "store.verify"},
        // Alone, macro.fail is unreachable (synthesis succeeds and
        // the expander never runs); compose it with a primary-path
        // fault so the sweep drives the ladder down to Scalarized.
        {"macro.fail", "lowering.fail,macro.fail"},
        {"compiler.window", "compiler.window"},
    };
    return plan;
}

/** Probe kernels: small enough to keep the sweep fast, diverse
 *  enough to reach synthesis, lowering, and macro expansion. */
const std::vector<std::string> kProbeKernels = {"add", "mul",
                                                "average_pool"};

/** Collect per-input total widths referenced by a window piece. */
void
collectInputWidths(const HExprPtr &expr, std::map<int, int> &widths)
{
    if (!expr)
        return;
    if (expr->op == HOp::Input)
        widths[static_cast<int>(expr->imm)] = expr->totalWidth();
    for (const auto &kid : expr->kids)
        collectInputWidths(kid, widths);
}

/**
 * Verify one compiled window against its specification. Symbolic
 * proof first (checkProgramEquiv, hardware view — EQ03); Unknown is
 * first-class and falls back to concrete sampling; Refuted is the
 * one unforgivable outcome (silently wrong code).
 */
bool
verifyWindow(const AutoLLVMDict &dict, const ResilientWindow &window,
             std::string &why)
{
    if (window.rung == Rung::Scalarized)
        return true; // The window is its own program; equal by construction.

    std::map<int, int> widths;
    collectInputWidths(window.window, widths);
    int max_index = -1;
    for (const auto &[index, width] : widths)
        max_index = std::max(max_index, index);

    if (window.rung != Rung::Cached) {
        sym::EqBudget budget;
        budget.max_nodes = size_t(1) << 16;
        budget.max_conflicts = 2000;
        const sym::EqResult eq = sym::checkProgramEquiv(
            dict, window.program, window.window, budget);
        if (eq.verdict == sym::Verdict::Refuted) {
            why = "symbolically refuted (" + eq.method + ")";
            return false;
        }
        if (eq.verdict == sym::Verdict::Proved)
            return true;
        // Unknown: never a pass — fall through to sampling.
    }

    Rng rng(0xC4A05 ^ static_cast<uint64_t>(max_index + 1));
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<BitVector> inputs;
        for (int i = 0; i <= max_index; ++i) {
            auto it = widths.find(i);
            inputs.push_back(
                BitVector::random(it == widths.end() ? 8 : it->second, rng));
        }
        BitVector expected = evalHalide(window.window, inputs);
        BitVector actual;
        try {
            actual = evalResilient(dict, window, inputs);
        } catch (const std::exception &err) {
            why = std::string("evaluation threw: ") + err.what();
            return false;
        }
        if (!(expected == actual)) {
            why = "concrete mismatch on trial " + std::to_string(trial);
            return false;
        }
    }
    return true;
}

/**
 * Check a flight-recorder dump the way docs/observability.md promises
 * it: a single parseable `hydride-flight/v1` document with a reason
 * and at least one enveloped event.
 */
bool
flightDumpValid(const std::string &path, std::string &why)
{
    std::ifstream in(path);
    if (!in) {
        why = "dump `" + path + "` was never written";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    const bjson::ValuePtr doc = bjson::parse(text.str(), error);
    if (!doc || !doc->isObject()) {
        why = "dump is not a JSON object: " + error;
        return false;
    }
    if (doc->getString("schema", "") != journal::kFlightSchema) {
        why = "dump schema is not " +
              std::string(journal::kFlightSchema);
        return false;
    }
    if (doc->getString("reason", "").empty()) {
        why = "dump carries no reason";
        return false;
    }
    const bjson::Value *events = doc->get("events");
    if (!events || !events->isArray() || events->items.empty()) {
        why = "dump has no events";
        return false;
    }
    for (size_t i = 0; i < events->items.size(); ++i) {
        const bjson::Value &event = *events->items[i];
        if (!event.isObject() || event.getString("kind", "").empty() ||
            event.getNumber("seq", 0) < 1 ||
            event.getNumber("thread", 0) < 1 || !event.get("t_ms")) {
            why = "events[" + std::to_string(i) +
                  "] is missing its envelope";
            return false;
        }
    }
    return true;
}

/** One process-local chaos run; returns the number of violations. */
int
runSite(const std::string &site, const std::string &clause,
        bool break_ladder)
{
    if (!clause.empty()) {
        std::string error;
        if (!faults::configure(clause, &error)) {
            std::fprintf(stderr, "chaos: bad clause `%s`: %s\n",
                         clause.c_str(), error.c_str());
            return 1;
        }
    }

    // Flight-recorder gate: every fault site that trips a window
    // barrier must leave a schema-valid flight dump. Flight-only mode
    // (no journal path set) keeps the ring armed without writing a
    // journal file for each sweep child.
    journal::setFlightDir("/tmp");
    if (!journal::enabled())
        journal::setEnabled(true);
    const std::string flight_path =
        "/tmp/hydride-flight-" + std::to_string(::getpid()) + ".json";
    std::remove(flight_path.c_str());

    int violations = 0;
    const AutoLLVMDict dict = AutoLLVMDict::build({"x86"});

    ResilienceOptions options;
    options.synthesis.timeout_seconds = 1.0;
    options.synthesis.max_insts = 2;
    if (break_ladder) {
        options.allow_macro_fallback = false;
        options.allow_scalarized = false;
    }
    // Every chaos child compiles against a private durable store so
    // the store.* seams sit on the same probe path as everything
    // else: pass 0 appends while compiling cold, pass 1 re-compiles
    // through a fresh compiler and cache whose only memo is the store
    // — driving exact hits (store.verify), shard scans (store.load),
    // and appends (store.lock / store.append) under fault.
    const std::string store_dir =
        "/tmp/hydride_chaos_store." + std::to_string(::getpid());
    std::system(("rm -rf '" + store_dir + "'").c_str());
    options.store_path = store_dir;
    // A leaked writer lock (the store.append crash shape) must be
    // taken over *within* this process's bounded lock wait.
    options.store.stale_lock_age_seconds = 0.5;
    options.store.lock_attempts = 600;

    SynthesisCache cache;
    std::map<std::string, int> rung_counts;
    bool barrier_tripped = false;
    for (int pass = 0; pass < 2; ++pass) {
        SynthesisCache warm_cache;
        ResilientCompiler compiler(dict, "x86", 256, options,
                                   pass == 0 ? &cache : &warm_cache);
        for (const auto &name : kProbeKernels) {
            Schedule schedule;
            Kernel kernel = buildKernel(name, schedule);
            ResilientCompilation compiled = compiler.compile(kernel);
            for (const auto &window : compiled.windows) {
                ++rung_counts[rungName(window.rung)];
                barrier_tripped = barrier_tripped || window.recovered;
                if (!window.ok) {
                    // A Failed rung always carries diagnostics (that
                    // is the structured half of the invariant), but
                    // with the full ladder enabled it must never be
                    // reached at all — scalarization cannot fail.
                    std::fprintf(
                        stderr,
                        "chaos: VIOLATION kernel=%s window failed "
                        "every rung (%s)\n",
                        name.c_str(),
                        window.diagnostics.empty()
                            ? "no diagnostics!"
                            : window.diagnostics.back().detail.c_str());
                    ++violations;
                    continue;
                }
                std::string why;
                if (!verifyWindow(dict, window, why)) {
                    std::fprintf(stderr,
                                 "chaos: VIOLATION kernel=%s rung=%s not "
                                 "equivalent: %s\n",
                                 name.c_str(), rungName(window.rung),
                                 why.c_str());
                    ++violations;
                }
            }
        }
    }

    // Exercise the persistence seams (cache.save / cache.corrupt):
    // a failed save and a salvaged load are ordinary outcomes; a
    // crash in either is what the sweep exists to catch.
    const std::string cache_path =
        "/tmp/hydride_chaos_cache." + std::to_string(::getpid());
    const bool saved = cache.save(cache_path, dict);
    if (saved) {
        SynthesisCache reloaded;
        reloaded.load(cache_path, dict);
        std::remove(cache_path.c_str());
    }

    std::system(("rm -rf '" + store_dir + "'").c_str());

    if (barrier_tripped) {
        std::string why;
        if (!flightDumpValid(flight_path, why)) {
            std::fprintf(stderr,
                         "chaos: VIOLATION site `%s` tripped a window "
                         "barrier but left no schema-valid flight dump: "
                         "%s\n",
                         site.empty() ? "none" : site.c_str(),
                         why.c_str());
            ++violations;
        }
    }
    std::remove(flight_path.c_str());

    if (!site.empty() && site != "none") {
        if (faults::hitCount(site) == 0) {
            std::fprintf(stderr,
                         "chaos: VIOLATION site `%s` was never evaluated "
                         "— the sweep tested nothing\n",
                         site.c_str());
            ++violations;
        } else if (faults::fireCount(site) == 0) {
            std::fprintf(stderr,
                         "chaos: warning: site `%s` was evaluated %ld "
                         "times but never fired\n",
                         site.c_str(), faults::hitCount(site));
        }
    }

    std::printf("chaos: site=%-18s hits=%-5ld fires=%-4ld rungs:",
                site.empty() ? "none" : site.c_str(),
                site.empty() ? 0 : faults::hitCount(site),
                site.empty() ? 0 : faults::fireCount(site));
    for (const auto &[rung, count] : rung_counts)
        std::printf(" %s=%d", rung.c_str(), count);
    std::printf(" violations=%d\n", violations);
    return violations;
}

// ---- Multi-process store modes ---------------------------------------------

/** Distinct-by-tag probe window (the constant varies the hash). */
HExprPtr
storeProbeWindow(int tag)
{
    return hBin(HOp::Add, hInput(0, 8, 8), hConst(tag & 0x7F, 8, 8));
}

/** A negative synthesis outcome — enough to exercise the record
 *  framing without needing a synthesized module. */
SynthesisResult
negativeResult()
{
    SynthesisResult result;
    result.ok = false;
    result.note = "chaos probe";
    return result;
}

/**
 * --store-crash: a forked child is SIGKILL'd mid-append (via the
 * store.append seam, which tears the record and leaks the writer
 * lock exactly as the real signal would — but deterministically).
 * The surviving store must salvage every completed record, the
 * parent must take over the dead child's lock on its next append,
 * and a warm compile through the salvaged store must succeed.
 */
int
runStoreCrash()
{
    const std::string dir =
        "/tmp/hydride_chaos_crash." + std::to_string(::getpid());
    std::system(("rm -rf '" + dir + "'").c_str());
    const AutoLLVMDict dict = AutoLLVMDict::build({"x86"});

    SynthesisStore::Options sopt;
    sopt.shards = 1; // One shard: the leaked lock is in every writer's way.

    const pid_t child = ::fork();
    if (child < 0) {
        std::perror("chaos: fork");
        return 1;
    }
    if (child == 0) {
        // Child: two clean appends, then the third tears and "kills"
        // us — SIGKILL leaves no chance to release the lock.
        std::string error;
        if (!faults::configure("store.append:3", &error))
            ::_exit(2);
        SynthesisStore store;
        if (!store.open(dir, dict, sopt))
            ::_exit(2);
        for (int i = 0; i < 8; ++i) {
            if (!store.append(storeProbeWindow(i), "x86",
                              negativeResult())) {
                ::kill(::getpid(), SIGKILL);
            }
        }
        ::_exit(2); // The fault must have fired before this.
    }
    int status = 0;
    ::waitpid(child, &status, 0);
    int violations = 0;
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
        std::fprintf(stderr,
                     "chaos: VIOLATION crash child did not die on "
                     "SIGKILL (status %d)\n",
                     status);
        ++violations;
    }

    // Survivor: the two completed records load, the torn third is
    // salvaged past, and the dead child's lock is taken over.
    SynthesisStore store;
    if (!store.open(dir, dict, sopt)) {
        std::fprintf(stderr,
                     "chaos: VIOLATION salvage open failed: %s\n",
                     store.openStats().error.c_str());
        std::system(("rm -rf '" + dir + "'").c_str());
        return violations + 1;
    }
    if (store.openStats().records != 2 ||
        store.openStats().salvaged < 1) {
        std::fprintf(stderr,
                     "chaos: VIOLATION salvage kept %zu records "
                     "(want 2), salvaged %zu (want >=1)\n",
                     store.openStats().records,
                     store.openStats().salvaged);
        ++violations;
    }
    if (!store.append(storeProbeWindow(100), "x86", negativeResult())) {
        std::fprintf(stderr,
                     "chaos: VIOLATION append after crash failed "
                     "(leaked lock not taken over?)\n");
        ++violations;
    }
    if (store.lockTakeovers() != 1) {
        std::fprintf(stderr,
                     "chaos: VIOLATION expected exactly one stale-lock "
                     "takeover, saw %zu\n",
                     store.lockTakeovers());
        ++violations;
    }

    // The salvaged store must still be a working warm-start source.
    ResilienceOptions options;
    options.synthesis.timeout_seconds = 1.0;
    options.synthesis.max_insts = 2;
    options.store_path = dir;
    options.store = sopt;
    SynthesisCache cache;
    ResilientCompiler compiler(dict, "x86", 256, options, &cache);
    Schedule schedule;
    Kernel kernel = buildKernel("add", schedule);
    ResilientCompilation compiled = compiler.compile(kernel);
    for (const auto &window : compiled.windows) {
        std::string why;
        if (!window.ok || !verifyWindow(dict, window, why)) {
            std::fprintf(stderr,
                         "chaos: VIOLATION warm compile through the "
                         "salvaged store broke: %s\n",
                         why.c_str());
            ++violations;
        }
    }

    std::system(("rm -rf '" + dir + "'").c_str());
    std::printf("chaos: store-crash violations=%d\n", violations);
    return violations;
}

/**
 * --store-concurrent: N forked writers hammer one shard. Every append
 * must land exactly once — no lost records, no torn records, no
 * deadlock on the shared lock.
 */
int
runStoreConcurrent()
{
    constexpr int kWriters = 4;
    constexpr int kAppends = 8;
    const std::string dir =
        "/tmp/hydride_chaos_concurrent." + std::to_string(::getpid());
    std::system(("rm -rf '" + dir + "'").c_str());
    const AutoLLVMDict dict = AutoLLVMDict::build({"x86"});

    SynthesisStore::Options sopt;
    sopt.shards = 1; // Force every writer onto the same lock.

    std::vector<pid_t> children;
    for (int w = 0; w < kWriters; ++w) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            std::perror("chaos: fork");
            return 1;
        }
        if (pid == 0) {
            SynthesisStore store;
            if (!store.open(dir, dict, sopt))
                ::_exit(1);
            for (int i = 0; i < kAppends; ++i) {
                if (!store.append(storeProbeWindow(w * kAppends + i),
                                  "x86", negativeResult())) {
                    ::_exit(1);
                }
            }
            ::_exit(0);
        }
        children.push_back(pid);
    }
    int violations = 0;
    for (const pid_t pid : children) {
        int status = 0;
        ::waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr,
                         "chaos: VIOLATION concurrent writer %d died "
                         "(status %d)\n",
                         static_cast<int>(pid), status);
            ++violations;
        }
    }

    SynthesisStore store;
    if (!store.open(dir, dict, sopt)) {
        std::fprintf(stderr, "chaos: VIOLATION reopen failed: %s\n",
                     store.openStats().error.c_str());
        std::system(("rm -rf '" + dir + "'").c_str());
        return violations + 1;
    }
    const size_t expected = size_t(kWriters) * kAppends;
    if (store.openStats().records != expected ||
        store.openStats().salvaged != 0) {
        std::fprintf(stderr,
                     "chaos: VIOLATION %zu/%zu records survived, %zu "
                     "salvaged (want 0) — a concurrent append was "
                     "lost or torn\n",
                     store.openStats().records, expected,
                     store.openStats().salvaged);
        ++violations;
    }
    std::system(("rm -rf '" + dir + "'").c_str());
    std::printf("chaos: store-concurrent violations=%d\n", violations);
    return violations;
}

/**
 * --store-poison: seed the store with a wrong-but-well-formed entry
 * (a module synthesized for Add(a,b), filed under Sub(a,b)'s key —
 * every checksum valid, the semantics poisoned). With verification on
 * the driver must refute it, quarantine it durably, and compile the
 * window correctly anyway. With `verify` false (--store-poison-
 * unverified, the WILL_FAIL entry) the poison reaches codegen and
 * this function reports the violation.
 */
int
runStorePoison(bool verify)
{
    const std::string dir =
        "/tmp/hydride_chaos_poison." + std::to_string(::getpid());
    std::system(("rm -rf '" + dir + "'").c_str());
    const AutoLLVMDict dict = AutoLLVMDict::build({"x86"});

    const HExprPtr a = hInput(0, 8, 16);
    const HExprPtr b = hInput(1, 8, 16);
    const HExprPtr add_window = hBin(HOp::Add, a, b);
    const HExprPtr sub_window = hBin(HOp::Sub, a, b);

    SynthesisOptions synth;
    synth.timeout_seconds = 5.0;
    synth.max_insts = 2;
    const SynthesisResult solved =
        synthesizeWindow(dict, "x86", add_window, synth);
    if (!solved.ok) {
        std::fprintf(stderr, "chaos: poison probe synthesis failed: %s\n",
                     solved.note.c_str());
        return 1;
    }

    SynthesisStore::Options sopt;
    sopt.shards = 1;
    {
        SynthesisStore store;
        if (!store.open(dir, dict, sopt) ||
            !store.append(sub_window, "x86", solved)) {
            std::fprintf(stderr, "chaos: poison store setup failed\n");
            return 1;
        }
    }

    int violations = 0;
    ResilienceOptions options;
    options.synthesis = synth;
    options.store_path = dir;
    options.store = sopt;
    options.store_verify = verify;
    SynthesisCache cache;
    ResilientCompiler compiler(dict, "x86", 256, options, &cache);
    ResilientWindow out = compiler.compileWindow(sub_window);
    std::string why;
    if (!out.ok || !verifyWindow(dict, out, why)) {
        std::fprintf(stderr,
                     "chaos: VIOLATION poisoned store entry reached "
                     "codegen (%s)\n",
                     why.c_str());
        ++violations;
    }
    if (verify) {
        if (out.cache_outcome == "store_hit") {
            std::fprintf(stderr,
                         "chaos: VIOLATION poisoned entry was served "
                         "as a store hit\n");
            ++violations;
        }
        // The demotion must be durable: a fresh open skips the
        // tombstoned record and no longer serves the key.
        SynthesisStore reopened;
        if (!reopened.open(dir, dict, sopt) ||
            reopened.find(sub_window, "x86") != nullptr ||
            reopened.openStats().poisoned_skipped < 1) {
            std::fprintf(stderr,
                         "chaos: VIOLATION quarantine did not survive "
                         "reopen\n");
            ++violations;
        }
    }
    std::system(("rm -rf '" + dir + "'").c_str());
    std::printf("chaos: store-poison%s violations=%d\n",
                verify ? "" : "-unverified", violations);
    return violations;
}

/** Sweep mode: one fresh child process per site. */
int
runSweep(const char *self)
{
    int failures = 0;
    std::vector<std::pair<std::string, std::string>> plan = {
        {"none", ""}};
    plan.insert(plan.end(), sweepPlan().begin(), sweepPlan().end());

    // Fail closed: the sweep plan must cover every registered site,
    // so adding a fault site without adding sweep coverage is itself
    // an error.
    for (const auto &site : faults::knownSites()) {
        bool covered = false;
        for (const auto &[name, clause] : plan)
            covered = covered || name == site;
        if (!covered) {
            std::fprintf(stderr,
                         "chaos: registered site `%s` has no sweep "
                         "clause\n",
                         site.c_str());
            ++failures;
        }
    }

    for (const auto &[site, clause] : plan) {
        std::string cmd = std::string(self) + " --site " + site;
        if (!clause.empty())
            cmd += " --clause '" + clause + "'";
        const int status = std::system(cmd.c_str());
        if (status == -1 || !WIFEXITED(status)) {
            std::fprintf(stderr,
                         "chaos: VIOLATION site `%s` child died on a "
                         "signal (status %d)\n",
                         site.c_str(), status);
            ++failures;
        } else if (WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "chaos: site `%s` reported violations\n",
                         site.c_str());
            ++failures;
        }
    }
    std::printf("chaos sweep: %zu sites, %d failure%s\n", plan.size(),
                failures, failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace hydride

int
main(int argc, char **argv)
{
    using namespace hydride;
    std::string site;
    std::string clause;
    bool break_ladder = false;
    bool single = false;
    bool list = false;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--site" && a + 1 < argc) {
            site = argv[++a];
            single = true;
        } else if (arg == "--clause" && a + 1 < argc) {
            clause = argv[++a];
            single = true;
        } else if (arg == "--break-ladder") {
            break_ladder = true;
            single = true;
            if (clause.empty())
                clause = "compiler.window";
        } else if (arg == "--store-crash") {
            return runStoreCrash() == 0 ? 0 : 1;
        } else if (arg == "--store-concurrent") {
            return runStoreConcurrent() == 0 ? 0 : 1;
        } else if (arg == "--store-poison") {
            return runStorePoison(true) == 0 ? 0 : 1;
        } else if (arg == "--store-poison-unverified") {
            return runStorePoison(false) == 0 ? 0 : 1;
        } else if (arg == "--list") {
            list = true;
        } else {
            // A genuine CLI-level argument error: the one place
            // `fatal` is still correct.
            fatal("hydride-chaos: unknown argument `" + arg + "`");
        }
    }
    if (list) {
        for (const auto &[name, spec] : sweepPlan())
            std::printf("%-18s %s\n", name.c_str(), spec.c_str());
        return 0;
    }
    if (!site.empty() && site != "none" && !faults::isKnownSite(site)) {
        fatal("hydride-chaos: unknown fault site `" + site + "`");
    }
    if (single) {
        if (clause.empty() && !site.empty() && site != "none") {
            for (const auto &[name, spec] : sweepPlan())
                if (name == site)
                    clause = spec;
        }
        return runSite(site, clause, break_ladder) == 0 ? 0 : 1;
    }
    return runSweep(argv[0]);
}
