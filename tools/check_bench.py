#!/usr/bin/env python3
"""Validate Hydride BENCH_*.json benchmark artifacts.

Usage:
    check_bench.py BENCH_0.json [BENCH_1.json ...]

Checks the hydride-bench/v1 schema: the suite wrapper (schema id,
kind, smoke flag, suites array), every per-binary report (suite name,
benchmark entries with a valid kind and the fields that kind
requires), the phase breakdown (non-negative buckets that sum to the
window total within tolerance), and the metrics summaries (histogram
percentiles ordered p50 <= p90 <= p99 within [min, max]). Exits
non-zero, naming the file and the problem, on the first malformed
artifact. Stdlib only.
"""
import json
import sys

SCHEMA = "hydride-bench/v1"
PHASE_KEYS = ("enumeration_ms", "concrete_eval_ms", "symbolic_ms",
              "sat_ms", "cache_lookup_ms", "other_ms")


def fail(path, message):
    print(f"check_bench: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_phases(path, where, phases):
    if not isinstance(phases, dict):
        fail(path, f"{where} is not an object")
    for key in PHASE_KEYS + ("total_ms", "windows"):
        if not is_num(phases.get(key)):
            fail(path, f"{where} missing numeric '{key}'")
        if phases[key] < 0:
            fail(path, f"{where} has negative '{key}'")
    total = phases["total_ms"]
    attributed = sum(phases[key] for key in PHASE_KEYS)
    # Exclusive attribution: the six buckets partition the window
    # total (sub-ms slack for float rounding across windows).
    if abs(attributed - total) > max(1.0, 0.001 * total):
        fail(path, f"{where} phases sum to {attributed:.3f} ms but "
                   f"total_ms is {total:.3f}")


def check_entry(path, where, entry):
    if not isinstance(entry, dict):
        fail(path, f"{where} is not an object")
    name = entry.get("name")
    if not isinstance(name, str) or not name:
        fail(path, f"{where} has no name")
    kind = entry.get("kind")
    if kind not in ("time", "ratio"):
        fail(path, f"{where} ('{name}') has bad kind {kind!r}")
    if kind == "time":
        if not is_num(entry.get("wall_ms")) or entry["wall_ms"] < 0:
            fail(path, f"{where} ('{name}') lacks non-negative wall_ms")
    else:
        if not is_num(entry.get("value")):
            fail(path, f"{where} ('{name}') lacks numeric value")
    iterations = entry.get("iterations")
    if not isinstance(iterations, int) or iterations < 1:
        fail(path, f"{where} ('{name}') iterations must be a positive "
                   f"integer")


def check_hist(path, where, name, hist):
    if not isinstance(hist, dict):
        fail(path, f"{where} histogram '{name}' is not an object")
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        if not is_num(hist.get(key)):
            fail(path, f"{where} histogram '{name}' missing '{key}'")
    if hist["count"] == 0:
        return
    lo, hi = hist["min"], hist["max"]
    quantiles = (hist["p50"], hist["p90"], hist["p99"])
    if list(quantiles) != sorted(quantiles):
        fail(path, f"{where} histogram '{name}' percentiles not "
                   f"monotone: {quantiles}")
    for q in quantiles:
        if not (lo - 1e-9 <= q <= hi + 1e-9):
            fail(path, f"{where} histogram '{name}' percentile {q} "
                       f"outside [min, max] = [{lo}, {hi}]")


def check_report(path, where, report, expect_smoke):
    if not isinstance(report, dict):
        fail(path, f"{where} is not an object")
    if report.get("schema") != SCHEMA:
        fail(path, f"{where} has schema {report.get('schema')!r} "
                   f"(want {SCHEMA!r})")
    if report.get("kind") != "report":
        fail(path, f"{where} kind is {report.get('kind')!r}")
    suite = report.get("suite")
    if not isinstance(suite, str) or not suite:
        fail(path, f"{where} has no suite name")
    if report.get("smoke") != expect_smoke:
        fail(path, f"{where} ('{suite}') smoke flag disagrees with the "
                   f"suite wrapper")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        fail(path, f"{where} ('{suite}') has no benchmarks")
    names = set()
    for i, entry in enumerate(benchmarks):
        check_entry(path, f"{where}.benchmarks[{i}]", entry)
        if entry["name"] in names:
            fail(path, f"{where} ('{suite}') duplicate benchmark name "
                       f"'{entry['name']}'")
        names.add(entry["name"])
    if "phases" in report:
        check_phases(path, f"{where}.phases", report["phases"])
    metrics = report.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            fail(path, f"{where} metrics is not an object")
        for name, hist in metrics.get("histograms", {}).items():
            check_hist(path, where, name, hist)
    return suite


def check_store_curve(path, where, report):
    """The bench_store_warm suite must carry a well-formed cold/warm
    curve: a cold run0, at least one warm run, and a warm_speedup
    ratio >= 1 (warm compiles through the durable store must not be
    slower than cold synthesis — the store's whole reason to exist).
    """
    entries = {e["name"]: e for e in report["benchmarks"]}
    if "store.run0_ms" not in entries:
        fail(path, f"{where} (store curve) missing cold run "
                   f"'store.run0_ms'")
    runs = sorted(name for name in entries
                  if name.startswith("store.run") and
                  name.endswith("_ms"))
    if len(runs) < 2:
        fail(path, f"{where} (store curve) has no warm runs "
                   f"(found only {runs})")
    for name in runs:
        if entries[name].get("kind") != "time":
            fail(path, f"{where} (store curve) '{name}' is not a time "
                       f"entry")
    speedup = entries.get("store.warm_speedup")
    if speedup is None or speedup.get("kind") != "ratio":
        fail(path, f"{where} (store curve) missing ratio "
                   f"'store.warm_speedup'")
    if speedup["value"] < 1.0:
        fail(path, f"{where} (store curve) warm_speedup is "
                   f"{speedup['value']:.2f} — warm compiles are slower "
                   f"than cold")


def check_suite(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r} (want {SCHEMA!r})")
    if doc.get("kind") != "suite":
        fail(path, f"kind is {doc.get('kind')!r} (want 'suite')")
    if not isinstance(doc.get("smoke"), bool):
        fail(path, "missing boolean 'smoke'")
    suites = doc.get("suites")
    if not isinstance(suites, list) or not suites:
        fail(path, "missing non-empty 'suites' array")
    if "phases" in doc:
        check_phases(path, "phases", doc["phases"])
    seen = set()
    entries = 0
    for i, report in enumerate(suites):
        suite = check_report(path, f"suites[{i}]", report, doc["smoke"])
        if suite in seen:
            fail(path, f"duplicate suite '{suite}'")
        seen.add(suite)
        if suite == "bench_store_warm":
            check_store_curve(path, f"suites[{i}]", report)
        entries += len(report["benchmarks"])
    return len(suites), entries


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except OSError as err:
            fail(path, f"cannot read: {err}")
        except json.JSONDecodeError as err:
            fail(path, f"malformed JSON: {err}")
        suites, entries = check_suite(path, doc)
        print(f"check_bench: {path}: OK ({suites} suites, "
              f"{entries} benchmark entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
