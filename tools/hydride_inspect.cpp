/**
 * @file
 * hydride-inspect: query CLI over the synthesis provenance journal
 * (docs/observability.md).
 *
 * The journal (src/observability/journal/) records one decision
 * ledger per compiled window. This tool answers the triage questions
 * those ledgers exist for, without re-running synthesis:
 *
 *   hydride-inspect explain <window-hash> --journal run.jsonl
 *       Reconstruct the full ledger for one window: shape, cache
 *       outcome, CEGIS effort, symbolic verdict, degradation rung,
 *       chosen instructions, injected faults, wall/CPU time — plus
 *       every per-attempt "cegis" event for the same window.
 *
 *   hydride-inspect explain --all --journal run.jsonl
 *       Validate that every compiled window has a *complete* ledger;
 *       exit 1 naming the missing fields otherwise.
 *
 *   hydride-inspect top --by=time|iterations|rung -n 10 --journal ...
 *       The windows that cost the most, by wall time, CEGIS
 *       iterations, or degradation rung.
 *
 *   hydride-inspect diff a.jsonl b.jsonl
 *       Field-by-field drift between two runs, matched by
 *       (window-hash, isa); exit 1 when the runs diverge.
 *
 *   hydride-inspect list --journal run.jsonl
 *       One line per window event.
 *
 * `--json` switches any command to machine-readable output. A
 * truncated journal (process died mid-write) is salvaged with a
 * warning; a malformed one is an error. Exit codes: 0 clean,
 * 1 findings (incomplete ledger, drift), 2 usage/IO error.
 */
#include "observability/journal/journal.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

using namespace hydride;

namespace {

int
usage()
{
    std::cerr
        << "usage: hydride-inspect [--json] <command>\n"
        << "  explain (<window-hash> | --all) --journal <path>\n"
        << "  top [--by=time|iterations|rung] [-n N] --journal <path>\n"
        << "  diff <a.jsonl> <b.jsonl>\n"
        << "  list --journal <path>\n";
    return 2;
}

/** One window ledger, decoded from its journal event. */
struct Win
{
    uint64_t seq = 0;
    std::string hash;
    std::string isa;
    int lanes = 0;
    int elem_width = 0;
    int nodes = 0;
    std::string cache;
    std::string rung;
    int iterations = 0;
    int counterexamples = 0;
    int rejected = 0;
    int rejected_static = 0;
    int sym_refutations = 0;
    int sym_unknowns = 0;
    std::string verdict;
    std::string note;
    int retries = 0;
    bool recovered = false;
    double cost = 0.0;
    std::vector<std::string> insts;
    std::vector<std::pair<std::string, std::string>> faults;
    double wall_ms = 0.0;
    double cpu_ms = 0.0;
    /** Ledger fields the event is missing (empty == complete). */
    std::vector<std::string> missing;
};

/** Decode a "window" event, recording absent required fields. */
Win
decodeWindow(const bjson::Value &event)
{
    Win win;
    auto need = [&](const char *key) -> const bjson::Value * {
        const bjson::Value *value = event.get(key);
        if (!value)
            win.missing.push_back(key);
        return value;
    };
    win.seq = static_cast<uint64_t>(event.getNumber("seq", 0));
    win.hash = event.getString("hash", "");
    if (win.hash.empty())
        win.missing.push_back("hash");
    win.isa = event.getString("isa", "");
    if (win.isa.empty())
        win.missing.push_back("isa");
    if (const bjson::Value *shape = need("shape")) {
        win.lanes = static_cast<int>(shape->getNumber("lanes", 0));
        win.elem_width =
            static_cast<int>(shape->getNumber("elem_width", 0));
        win.nodes = static_cast<int>(shape->getNumber("nodes", 0));
    }
    win.cache = event.getString("cache", "");
    if (win.cache.empty())
        win.missing.push_back("cache");
    win.rung = event.getString("rung", "");
    if (win.rung.empty())
        win.missing.push_back("rung");
    if (const bjson::Value *cegis = need("cegis")) {
        win.iterations =
            static_cast<int>(cegis->getNumber("iterations", 0));
        win.counterexamples =
            static_cast<int>(cegis->getNumber("counterexamples", 0));
        win.rejected = static_cast<int>(cegis->getNumber("rejected", 0));
        win.rejected_static =
            static_cast<int>(cegis->getNumber("rejected_static", 0));
        win.sym_refutations = static_cast<int>(
            cegis->getNumber("symbolic_refutations", 0));
        win.sym_unknowns =
            static_cast<int>(cegis->getNumber("symbolic_unknowns", 0));
        win.verdict = cegis->getString("verdict", "");
    }
    win.note = event.getString("note", "");
    win.retries = static_cast<int>(event.getNumber("retries", -1));
    if (win.retries < 0) {
        win.missing.push_back("retries");
        win.retries = 0;
    }
    win.recovered = event.getBool("recovered", false);
    if (!event.get("recovered"))
        win.missing.push_back("recovered");
    if (const bjson::Value *cost = event.get("cost"))
        win.cost = cost->numberOr(0.0);
    else
        win.missing.push_back("cost");
    if (const bjson::Value *insts = need("insts")) {
        for (const auto &inst : insts->items)
            win.insts.push_back(inst->stringOr(""));
    }
    if (const bjson::Value *faults = need("faults")) {
        for (const auto &fault : faults->items) {
            win.faults.emplace_back(fault->getString("site", ""),
                                    fault->getString("detail", ""));
        }
    }
    if (const bjson::Value *wall = event.get("wall_ms"))
        win.wall_ms = wall->numberOr(0.0);
    else
        win.missing.push_back("wall_ms");
    if (const bjson::Value *cpu = event.get("cpu_ms"))
        win.cpu_ms = cpu->numberOr(0.0);
    else
        win.missing.push_back("cpu_ms");
    return win;
}

/** Load a journal or exit(2); warn (stderr) when salvaging. */
journal::Journal
loadOrDie(const std::string &path)
{
    journal::Journal loaded = journal::readJournal(path);
    if (!loaded.error.empty()) {
        std::cerr << "hydride-inspect: " << loaded.error << "\n";
        std::exit(2);
    }
    if (loaded.truncated) {
        std::cerr << "hydride-inspect: warning: `" << path
                  << "` is truncated (process died mid-write); salvaged "
                  << loaded.events.size() << " events\n";
    }
    return loaded;
}

std::vector<Win>
windowsOf(const journal::Journal &loaded)
{
    std::vector<Win> wins;
    for (const auto &event : loaded.events)
        if (event->getString("kind", "") == "window")
            wins.push_back(decodeWindow(*event));
    return wins;
}

/** Degradation-ladder badness (worse == larger). */
int
rungRank(const std::string &rung)
{
    if (rung == "synthesized") return 0;
    if (rung == "cached") return 1;
    if (rung == "macro_expanded") return 2;
    if (rung == "scalarized") return 3;
    if (rung == "failed") return 4;
    return 5;
}

std::string
joined(const std::vector<std::string> &parts, const char *sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bjson::ValuePtr
winToJson(const Win &win)
{
    auto obj = bjson::Value::makeObject();
    obj->set("hash", bjson::Value::makeString(win.hash));
    obj->set("isa", bjson::Value::makeString(win.isa));
    obj->set("rung", bjson::Value::makeString(win.rung));
    obj->set("cache", bjson::Value::makeString(win.cache));
    obj->set("iterations", bjson::Value::makeNumber(win.iterations));
    obj->set("cost", bjson::Value::makeNumber(win.cost));
    obj->set("wall_ms", bjson::Value::makeNumber(win.wall_ms));
    obj->set("cpu_ms", bjson::Value::makeNumber(win.cpu_ms));
    obj->set("complete", bjson::Value::makeBool(win.missing.empty()));
    if (!win.missing.empty()) {
        auto missing = bjson::Value::makeArray();
        for (const auto &field : win.missing)
            missing->push(bjson::Value::makeString(field));
        obj->set("missing", missing);
    }
    return obj;
}

void
printWin(const Win &win, const journal::Journal &loaded)
{
    std::printf("window %s (%s)\n", win.hash.c_str(), win.isa.c_str());
    std::printf("  shape:     %d lanes x i%d, %d nodes\n", win.lanes,
                win.elem_width, win.nodes);
    std::printf("  cache:     %s\n", win.cache.c_str());
    std::printf("  rung:      %s%s\n", win.rung.c_str(),
                win.recovered ? "  (recovered from a caught error)" : "");
    std::printf("  cegis:     %d iterations, %d counterexamples, "
                "%d candidates rejected (%d statically, before any "
                "evaluation), %d retries\n",
                win.iterations, win.counterexamples, win.rejected,
                win.rejected_static, win.retries);
    std::printf("  symbolic:  verdict %s, %d refutations, %d unknowns\n",
                win.verdict.empty() ? "-" : win.verdict.c_str(),
                win.sym_refutations, win.sym_unknowns);
    if (!win.note.empty())
        std::printf("  note:      %s\n", win.note.c_str());
    std::printf("  cost:      %g\n", win.cost);
    std::printf("  insts:     %s\n",
                win.insts.empty() ? "-" : joined(win.insts, ", ").c_str());
    for (const auto &[site, detail] : win.faults)
        std::printf("  fault:     %s — %s\n", site.c_str(),
                    detail.c_str());
    std::printf("  time:      %.3f ms wall, %.3f ms cpu\n", win.wall_ms,
                win.cpu_ms);
    // Per-attempt synthesis records: escalated retries mean one
    // window ledger can aggregate several CEGIS attempts.
    for (const auto &event : loaded.events) {
        if (event->getString("kind", "") != "cegis" ||
            event->getString("hash", "") != win.hash ||
            event->getString("isa", "") != win.isa) {
            continue;
        }
        std::printf("  attempt:   scale %d, %d iterations, ok=%s%s%s\n",
                    static_cast<int>(event->getNumber("scale", 0)),
                    static_cast<int>(event->getNumber("iterations", 0)),
                    event->getBool("ok", false) ? "true" : "false",
                    event->get("note") ? ", note: " : "",
                    event->getString("note", "").c_str());
    }
    if (!win.missing.empty())
        std::printf("  INCOMPLETE ledger; missing: %s\n",
                    joined(win.missing, ", ").c_str());
}

int
cmdExplain(const std::string &path, const std::string &hash, bool all,
           bool json)
{
    const journal::Journal loaded = loadOrDie(path);
    std::vector<Win> wins = windowsOf(loaded);
    if (!all) {
        wins.erase(std::remove_if(wins.begin(), wins.end(),
                                  [&](const Win &win) {
                                      return win.hash != hash;
                                  }),
                   wins.end());
    }
    if (wins.empty()) {
        std::cerr << "hydride-inspect: no window "
                  << (all ? "events" : ("`" + hash + "`")) << " in `"
                  << path << "`\n";
        return 1;
    }
    bool incomplete = false;
    if (json) {
        auto doc = bjson::Value::makeObject();
        auto array = bjson::Value::makeArray();
        for (const auto &win : wins) {
            incomplete = incomplete || !win.missing.empty();
            array->push(winToJson(win));
        }
        doc->set("windows", array);
        doc->set("complete", bjson::Value::makeBool(!incomplete));
        std::cout << bjson::writePretty(*doc) << "\n";
    } else {
        for (size_t w = 0; w < wins.size(); ++w) {
            if (w)
                std::printf("\n");
            printWin(wins[w], loaded);
            incomplete = incomplete || !wins[w].missing.empty();
        }
    }
    return incomplete ? 1 : 0;
}

int
cmdTop(const std::string &path, const std::string &by, int limit,
       bool json)
{
    const journal::Journal loaded = loadOrDie(path);
    std::vector<Win> wins = windowsOf(loaded);
    if (by == "time") {
        std::stable_sort(wins.begin(), wins.end(),
                         [](const Win &a, const Win &b) {
                             return a.wall_ms > b.wall_ms;
                         });
    } else if (by == "iterations") {
        std::stable_sort(wins.begin(), wins.end(),
                         [](const Win &a, const Win &b) {
                             return a.iterations > b.iterations;
                         });
    } else if (by == "rung") {
        std::stable_sort(wins.begin(), wins.end(),
                         [](const Win &a, const Win &b) {
                             return rungRank(a.rung) > rungRank(b.rung);
                         });
    } else {
        std::cerr << "hydride-inspect: unknown --by `" << by
                  << "` (want time|iterations|rung)\n";
        return 2;
    }
    if (limit > 0 && wins.size() > static_cast<size_t>(limit))
        wins.resize(static_cast<size_t>(limit));
    if (json) {
        auto doc = bjson::Value::makeObject();
        doc->set("by", bjson::Value::makeString(by));
        auto array = bjson::Value::makeArray();
        for (const auto &win : wins)
            array->push(winToJson(win));
        doc->set("windows", array);
        std::cout << bjson::writePretty(*doc) << "\n";
        return 0;
    }
    std::printf("%-18s %-5s %-14s %10s %11s %8s\n", "hash", "isa",
                "rung", "wall_ms", "iterations", "cost");
    for (const auto &win : wins) {
        std::printf("%-18s %-5s %-14s %10.3f %11d %8g\n",
                    win.hash.c_str(), win.isa.c_str(), win.rung.c_str(),
                    win.wall_ms, win.iterations, win.cost);
    }
    return 0;
}

int
cmdList(const std::string &path, bool json)
{
    const journal::Journal loaded = loadOrDie(path);
    const std::vector<Win> wins = windowsOf(loaded);
    if (json) {
        auto doc = bjson::Value::makeObject();
        auto array = bjson::Value::makeArray();
        for (const auto &win : wins)
            array->push(winToJson(win));
        doc->set("windows", array);
        std::cout << bjson::writePretty(*doc) << "\n";
        return 0;
    }
    for (const auto &win : wins) {
        std::printf("%s  %-5s %-14s cache=%-8s %8.3f ms\n",
                    win.hash.c_str(), win.isa.c_str(), win.rung.c_str(),
                    win.cache.c_str(), win.wall_ms);
    }
    return 0;
}

/** One run's windows keyed by (hash, isa); repeats keep file order. */
std::map<std::pair<std::string, std::string>, std::vector<Win>>
keyedWindows(const std::string &path)
{
    std::map<std::pair<std::string, std::string>, std::vector<Win>> keyed;
    for (auto &win : windowsOf(loadOrDie(path)))
        keyed[{win.hash, win.isa}].push_back(std::move(win));
    return keyed;
}

int
cmdDiff(const std::string &path_a, const std::string &path_b, bool json)
{
    auto a = keyedWindows(path_a);
    auto b = keyedWindows(path_b);
    struct Change
    {
        std::string hash;
        std::string isa;
        std::string what; ///< "" for added/removed.
        std::string kind; ///< "changed" | "only_a" | "only_b".
    };
    std::vector<Change> changes;
    for (const auto &[key, wins_a] : a) {
        auto it = b.find(key);
        if (it == b.end()) {
            changes.push_back({key.first, key.second, "", "only_a"});
            continue;
        }
        const Win &wa = wins_a.front();
        const Win &wb = it->second.front();
        std::vector<std::string> drift;
        if (wa.rung != wb.rung)
            drift.push_back("rung " + wa.rung + " -> " + wb.rung);
        if (wa.cache != wb.cache)
            drift.push_back("cache " + wa.cache + " -> " + wb.cache);
        if (wa.cost != wb.cost) {
            drift.push_back("cost " + std::to_string(wa.cost) + " -> " +
                            std::to_string(wb.cost));
        }
        if (wa.insts != wb.insts)
            drift.push_back("instruction sequence changed");
        if (wa.verdict != wb.verdict) {
            drift.push_back("symbolic verdict " +
                            (wa.verdict.empty() ? "-" : wa.verdict) +
                            " -> " +
                            (wb.verdict.empty() ? "-" : wb.verdict));
        }
        if (!drift.empty()) {
            changes.push_back(
                {key.first, key.second, joined(drift, "; "), "changed"});
        }
    }
    for (const auto &[key, wins_b] : b) {
        (void)wins_b;
        if (!a.count(key))
            changes.push_back({key.first, key.second, "", "only_b"});
    }
    if (json) {
        auto doc = bjson::Value::makeObject();
        auto array = bjson::Value::makeArray();
        for (const auto &change : changes) {
            auto obj = bjson::Value::makeObject();
            obj->set("hash", bjson::Value::makeString(change.hash));
            obj->set("isa", bjson::Value::makeString(change.isa));
            obj->set("kind", bjson::Value::makeString(change.kind));
            if (!change.what.empty())
                obj->set("detail", bjson::Value::makeString(change.what));
            array->push(obj);
        }
        doc->set("changes", array);
        doc->set("identical", bjson::Value::makeBool(changes.empty()));
        std::cout << bjson::writePretty(*doc) << "\n";
        return changes.empty() ? 0 : 1;
    }
    for (const auto &change : changes) {
        if (change.kind == "only_a")
            std::printf("- %s (%s) only in %s\n", change.hash.c_str(),
                        change.isa.c_str(), path_a.c_str());
        else if (change.kind == "only_b")
            std::printf("+ %s (%s) only in %s\n", change.hash.c_str(),
                        change.isa.c_str(), path_b.c_str());
        else
            std::printf("~ %s (%s): %s\n", change.hash.c_str(),
                        change.isa.c_str(), change.what.c_str());
    }
    if (changes.empty()) {
        std::printf("journals agree on every (window, isa)\n");
        return 0;
    }
    std::printf("%zu divergent window(s)\n", changes.size());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    std::string journal_path;
    std::string by = "time";
    int limit = 10;
    bool all = false;
    std::vector<std::string> positional;
    for (int a = 1; a < argc; ++a) {
        const std::string arg = argv[a];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--journal" && a + 1 < argc) {
            journal_path = argv[++a];
        } else if (arg.rfind("--by=", 0) == 0) {
            by = arg.substr(5);
        } else if (arg == "-n" && a + 1 < argc) {
            limit = std::atoi(argv[++a]);
        } else if (!arg.empty() && arg[0] == '-' && arg != "--all") {
            std::cerr << "hydride-inspect: unknown flag `" << arg
                      << "`\n";
            return usage();
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty())
        return usage();
    const std::string command = positional[0];

    if (command == "diff") {
        if (positional.size() != 3)
            return usage();
        return cmdDiff(positional[1], positional[2], json);
    }
    if (journal_path.empty()) {
        std::cerr << "hydride-inspect: " << command
                  << " needs --journal <path>\n";
        return usage();
    }
    if (command == "explain") {
        if (!all && positional.size() != 2)
            return usage();
        return cmdExplain(journal_path,
                          all ? std::string() : positional[1], all, json);
    }
    if (command == "top")
        return cmdTop(journal_path, by, limit, json);
    if (command == "list")
        return cmdList(journal_path, json);
    return usage();
}
