#!/usr/bin/env python3
"""Validate Hydride provenance-journal artifacts.

Usage:
    check_journal.py JOURNAL.jsonl [MORE.jsonl ...]

Validates `hydride-journal/v1` JSON Lines files (one header line,
then one self-contained event object per line) and
`hydride-flight/v1` flight-recorder dumps (one JSON document whose
`events` array holds journal events).

Journal checks: the header leads the file and names the schema;
every line parses as a JSON object; every event carries the envelope
(kind, seq, thread, t_ms); seq values are unique across the file
(threads flush independently, so order on disk need not be sorted);
and every "window" event carries the *complete* decision ledger —
hash, isa, shape, cache outcome, rung, CEGIS effort, cost,
instructions, faults, wall/CPU time. A truncated final line (process
died mid-write) is a validation FAILURE here: this tool is the strict
gate; `hydride-inspect` is the salvage path.

Exits non-zero, naming the file and problem, on the first invalid
artifact. Stdlib only.
"""
import json
import sys

JOURNAL_SCHEMA = "hydride-journal/v1"
FLIGHT_SCHEMA = "hydride-flight/v1"

RUNGS = {"synthesized", "cached", "macro_expanded", "scalarized",
         "failed"}
CACHE_OUTCOMES = {"hit", "miss", "negative", "none",
                  "store_hit", "store_negative"}

WINDOW_REQUIRED = ("hash", "isa", "shape", "cache", "rung", "cegis",
                   "retries", "recovered", "cost", "insts", "faults",
                   "wall_ms", "cpu_ms")
SHAPE_REQUIRED = ("lanes", "elem_width", "nodes")
CEGIS_REQUIRED = ("iterations", "counterexamples", "rejected",
                  "symbolic_refutations", "symbolic_unknowns",
                  "verdict")


def fail(path, message):
    print(f"check_journal: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_envelope(path, where, event):
    if not isinstance(event, dict):
        fail(path, f"{where} is not an object")
    for key in ("kind", "seq", "thread", "t_ms"):
        if key not in event:
            fail(path, f"{where} missing envelope field '{key}'")
    if not isinstance(event["kind"], str) or not event["kind"]:
        fail(path, f"{where} kind is not a non-empty string")
    for key in ("seq", "thread"):
        if not isinstance(event[key], (int, float)) or event[key] < 1:
            fail(path, f"{where} {key} is not a positive number")
    if not isinstance(event["t_ms"], (int, float)):
        fail(path, f"{where} t_ms is not numeric")


def check_window(path, where, event):
    for key in WINDOW_REQUIRED:
        if key not in event:
            fail(path, f"{where} window ledger missing '{key}'")
    window_hash = event["hash"]
    if (not isinstance(window_hash, str) or len(window_hash) != 16 or
            any(c not in "0123456789abcdef" for c in window_hash)):
        fail(path, f"{where} hash is not 16 lowercase hex digits")
    shape = event["shape"]
    if not isinstance(shape, dict):
        fail(path, f"{where} shape is not an object")
    for key in SHAPE_REQUIRED:
        if not isinstance(shape.get(key), (int, float)):
            fail(path, f"{where} shape.{key} is not numeric")
    if event["cache"] not in CACHE_OUTCOMES:
        fail(path, f"{where} cache outcome '{event['cache']}' not in "
                   f"{sorted(CACHE_OUTCOMES)}")
    if event["rung"] not in RUNGS:
        fail(path, f"{where} rung '{event['rung']}' not in "
                   f"{sorted(RUNGS)}")
    cegis = event["cegis"]
    if not isinstance(cegis, dict):
        fail(path, f"{where} cegis is not an object")
    for key in CEGIS_REQUIRED:
        if key not in cegis:
            fail(path, f"{where} cegis missing '{key}'")
    if not isinstance(event["insts"], list):
        fail(path, f"{where} insts is not a list")
    if not isinstance(event["faults"], list):
        fail(path, f"{where} faults is not a list")
    for key in ("wall_ms", "cpu_ms", "cost"):
        if not isinstance(event[key], (int, float)):
            fail(path, f"{where} {key} is not numeric")


def check_events(path, events, seqs):
    windows = 0
    for where, event in events:
        check_envelope(path, where, event)
        seq = event["seq"]
        if seq in seqs:
            fail(path, f"{where} duplicate seq {seq}")
        seqs.add(seq)
        if event["kind"] == "window":
            check_window(path, where, event)
            windows += 1
    return windows


def check_journal(path, text):
    lines = text.splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    if not lines:
        fail(path, "journal is empty")
    parsed = []
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        try:
            parsed.append((where, json.loads(line)))
        except json.JSONDecodeError as err:
            if i + 1 == len(lines):
                fail(path, f"{where} is truncated (process died "
                           f"mid-write): {err}")
            fail(path, f"{where} is malformed JSON: {err}")
    where, header = parsed[0]
    if not isinstance(header, dict) or \
            header.get("schema") != JOURNAL_SCHEMA or \
            header.get("kind") != "header":
        fail(path, f"{where} is not a {JOURNAL_SCHEMA} header")
    if not isinstance(header.get("pid"), (int, float)):
        fail(path, f"{where} header pid is not numeric")
    windows = check_events(path, parsed[1:], set())
    return len(parsed) - 1, windows


def check_flight(path, doc):
    if doc.get("kind") != "flight":
        fail(path, "flight dump kind is not 'flight'")
    for key in ("pid", "t_ms"):
        if not isinstance(doc.get(key), (int, float)):
            fail(path, f"flight dump {key} is not numeric")
    if not isinstance(doc.get("reason"), str) or not doc["reason"]:
        fail(path, "flight dump has no reason")
    events = doc.get("events")
    if not isinstance(events, list):
        fail(path, "flight dump events is not a list")
    numbered = [(f"events[{i}]", event)
                for i, event in enumerate(events)]
    windows = check_events(path, numbered, set())
    return len(events), windows


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as err:
            fail(path, f"cannot read: {err}")
        # A flight dump is one pretty-printed JSON document; a
        # journal is JSON Lines. Dispatch on the schema tag.
        doc = None
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            pass
        if isinstance(doc, dict) and doc.get("schema") == FLIGHT_SCHEMA:
            events, windows = check_flight(path, doc)
            print(f"check_journal: {path}: OK flight dump "
                  f"({events} events, {windows} window ledgers)")
        else:
            events, windows = check_journal(path, text)
            print(f"check_journal: {path}: OK journal "
                  f"({events} events, {windows} window ledgers)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
