/**
 * @file
 * hydride-bench: the continuous-benchmarking orchestrator.
 *
 * Runs every bench_* binary (full suite or --smoke), collects the
 * per-binary BenchReport JSON each one writes via --json-out, merges
 * them into a single suite artifact — the committed BENCH_<n>.json
 * trajectory at the repository root — and optionally diffs the run
 * against a committed baseline, exiting non-zero on regression.
 *
 *   hydride-bench                         run full suite, write BENCH_<n>.json
 *   hydride-bench --smoke                 reduced workload (CI gate)
 *   hydride-bench --compare BENCH_0.json  run, then gate against baseline
 *   hydride-bench --input A --compare B   gate A against B without running
 *
 * Exit codes: 0 success, 1 bench binary failed, 2 usage/IO error,
 * 3 regression (or non-comparable reports).
 *
 * See docs/benchmarking.md for the schema and the gate's tolerance
 * model; tools/check_bench.py validates artifacts structurally.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "observability/bench/bench_report.h"
#include "observability/bench/phase_profiler.h"

namespace fs = std::filesystem;
using namespace hydride;

namespace {

struct Options
{
    bool smoke = false;
    bool profile = false;
    std::string bench_dir;  ///< Directory holding the bench_* binaries.
    std::string json_out;   ///< Merged artifact path ("" = BENCH_<n>.json).
    std::string input;      ///< Pre-merged report to gate instead of running.
    std::string compare;    ///< Baseline to gate against.
    std::string label;
    bench::CompareOptions gate;
};

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " [options]\n"
        << "  --smoke               reduced workload (not comparable "
           "against full runs)\n"
        << "  --bench-dir <dir>     bench binaries (default: "
           "<tool dir>/../bench)\n"
        << "  --json-out <file>     merged artifact (default: next "
           "BENCH_<n>.json in CWD)\n"
        << "  --input <file>        gate an existing artifact instead of "
           "running\n"
        << "  --compare <file>      baseline artifact; exit 3 on "
           "regression\n"
        << "  --tolerance <frac>    relative slowdown allowed "
           "(default 0.5)\n"
        << "  --min-abs-ms <ms>     ignore regressions below this "
           "absolute delta (default 5)\n"
        << "  --scale-baseline <f>  multiply baseline times (gate "
           "self-test hook)\n"
        << "  --profile             print the merged phase breakdown\n";
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](std::string &out) {
            if (i + 1 >= argc) {
                std::cerr << "hydride-bench: " << arg
                          << " needs a value\n";
                return false;
            }
            out = argv[++i];
            return true;
        };
        auto number = [&](double &out) {
            std::string text;
            if (!value(text))
                return false;
            char *end = nullptr;
            out = std::strtod(text.c_str(), &end);
            if (!end || *end != '\0') {
                std::cerr << "hydride-bench: bad number for " << arg
                          << ": " << text << "\n";
                return false;
            }
            return true;
        };
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--bench-dir") {
            if (!value(opt.bench_dir))
                return false;
        } else if (arg == "--json-out") {
            if (!value(opt.json_out))
                return false;
        } else if (arg == "--input") {
            if (!value(opt.input))
                return false;
        } else if (arg == "--compare") {
            if (!value(opt.compare))
                return false;
        } else if (arg == "--label") {
            if (!value(opt.label))
                return false;
        } else if (arg == "--tolerance") {
            if (!number(opt.gate.tolerance))
                return false;
        } else if (arg == "--min-abs-ms") {
            if (!number(opt.gate.min_abs_ms))
                return false;
        } else if (arg == "--scale-baseline") {
            if (!number(opt.gate.scale_baseline))
                return false;
        } else {
            std::cerr << "hydride-bench: unknown option " << arg << "\n";
            return false;
        }
    }
    return true;
}

std::string
defaultBenchDir(const char *argv0)
{
    const fs::path self(argv0 ? argv0 : "");
    const fs::path dir = self.has_parent_path() ? self.parent_path()
                                                : fs::path(".");
    return (dir / ".." / "bench").string();
}

/** Next free BENCH_<n>.json in the current directory: the trajectory
 *  grows monotonically, one artifact per measured revision. */
std::string
nextTrajectoryPath()
{
    int next = 0;
    for (const auto &entry : fs::directory_iterator(".")) {
        const std::string name = entry.path().filename().string();
        int n = -1;
        if (std::sscanf(name.c_str(), "BENCH_%d.json", &n) == 1)
            next = std::max(next, n + 1);
    }
    return "BENCH_" + std::to_string(next) + ".json";
}

std::vector<fs::path>
findBenchBinaries(const std::string &dir, std::string &error)
{
    std::vector<fs::path> binaries;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("bench_", 0) != 0)
            continue;
        if (name.find('.') != std::string::npos)
            continue; // CMake side files, not binaries.
        if (!fs::is_regular_file(entry.path()))
            continue;
        binaries.push_back(entry.path());
    }
    if (ec) {
        error = "cannot list bench dir '" + dir + "': " + ec.message();
        return {};
    }
    if (binaries.empty()) {
        error = "no bench_* binaries in '" + dir +
                "' (build them first, or pass --bench-dir)";
        return {};
    }
    std::sort(binaries.begin(), binaries.end());
    return binaries;
}

bool
readFile(const std::string &path, std::string &out, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
loadSuite(const std::string &path, bench::SuiteReport &out)
{
    std::string text;
    std::string error;
    if (!readFile(path, text, error) ||
        !bench::SuiteReport::fromJson(text, out, error)) {
        std::cerr << "hydride-bench: " << path << ": " << error << "\n";
        return false;
    }
    return true;
}

/** Run the suite; false (with a named culprit) on the first failing
 *  binary — a crashed benchmark must fail the run, not produce a
 *  silently thinner report. */
bool
runSuite(const Options &opt, const std::vector<fs::path> &binaries,
         bench::SuiteReport &merged)
{
    const fs::path workdir =
        fs::temp_directory_path() /
        ("hydride-bench." + std::to_string(::getpid()));
    std::error_code ec;
    fs::create_directories(workdir, ec);
    if (ec) {
        std::cerr << "hydride-bench: cannot create " << workdir.string()
                  << ": " << ec.message() << "\n";
        return false;
    }

    merged.smoke = opt.smoke;
    merged.label =
        !opt.label.empty() ? opt.label : (opt.smoke ? "smoke" : "full");

    for (const fs::path &binary : binaries) {
        const std::string name = binary.filename().string();
        const fs::path part = workdir / (name + ".json");
        const fs::path log = workdir / (name + ".log");
        std::string command = "\"" + binary.string() + "\" --json-out \"" +
                              part.string() + "\"";
        if (opt.smoke)
            command += " --smoke";
        command += " > \"" + log.string() + "\" 2>&1";
        std::cout << "[hydride-bench] running " << name
                  << (opt.smoke ? " (smoke)" : "") << "...\n"
                  << std::flush;
        const int rc = std::system(command.c_str());
        if (rc != 0) {
            std::cerr << "hydride-bench: FAILED: " << name
                      << " exited with status " << rc << " (log: "
                      << log.string() << ")\n";
            return false;
        }
        std::string text;
        std::string error;
        bench::BenchReport report;
        if (!readFile(part.string(), text, error) ||
            !bench::BenchReport::fromJson(text, report, error)) {
            std::cerr << "hydride-bench: " << name
                      << " produced a bad report: " << error << "\n";
            return false;
        }
        merged.suites.push_back(std::move(report));
    }
    fs::remove_all(workdir, ec);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);

    bench::SuiteReport current;
    if (!opt.input.empty()) {
        if (!loadSuite(opt.input, current))
            return 2;
    } else {
        if (opt.bench_dir.empty())
            opt.bench_dir = defaultBenchDir(argv[0]);
        std::string error;
        const auto binaries = findBenchBinaries(opt.bench_dir, error);
        if (binaries.empty()) {
            std::cerr << "hydride-bench: " << error << "\n";
            return 2;
        }
        if (!runSuite(opt, binaries, current))
            return 1;
        const std::string out_path =
            !opt.json_out.empty() ? opt.json_out : nextTrajectoryPath();
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "hydride-bench: cannot write " << out_path
                      << "\n";
            return 2;
        }
        out << current.toJson() << "\n";
        std::cout << "[hydride-bench] wrote " << out_path << " ("
                  << current.suites.size() << " suites)\n";
    }

    if (opt.profile) {
        bench::PhaseProfile profile;
        profile.aggregate = current.aggregatePhases();
        std::cout << bench::formatProfile(profile, 0);
    }

    if (!opt.compare.empty()) {
        bench::SuiteReport baseline;
        if (!loadSuite(opt.compare, baseline))
            return 2;
        const bench::CompareResult result =
            bench::compareReports(baseline, current, opt.gate);
        std::cout << bench::formatCompare(result, opt.gate);
        if (!result.ok())
            return 3;
    }
    return 0;
}
