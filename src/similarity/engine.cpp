#include "similarity/engine.h"

#include "observability/metrics.h"
#include "observability/trace.h"
#include "similarity/extraction.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/rng.h"
#include "support/strings.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace hydride {

bool
EquivalenceClass::coversIsa(const std::string &isa) const
{
    for (const auto &member : members)
        if (member.isa == isa)
            return true;
    return false;
}

BitVector
evaluateWithParams(const CanonicalSemantics &rep,
                   const std::vector<int64_t> &param_values,
                   const std::vector<BitVector> &args,
                   const std::vector<int64_t> &int_args)
{
    return rep.evaluate(args, param_values, int_args);
}

namespace {

/** Default parameter values recorded by extraction. */
std::vector<int64_t>
valuesOf(const CanonicalSemantics &sym)
{
    std::vector<int64_t> values;
    values.reserve(sym.params.size());
    for (const auto &info : sym.params)
        values.push_back(info.default_value);
    return values;
}

/**
 * Permute the bitvector arguments of a concrete semantics:
 * new argument k is old argument src_of[k].
 */
CanonicalSemantics
permuteArgs(const CanonicalSemantics &sem, const std::vector<int> &src_of)
{
    CanonicalSemantics out = sem;
    std::vector<int> new_pos(src_of.size());
    for (size_t k = 0; k < src_of.size(); ++k) {
        out.bv_args[k] = sem.bv_args[src_of[k]];
        new_pos[src_of[k]] = static_cast<int>(k);
    }
    for (auto &tmpl : out.templates) {
        tmpl = rewrite(tmpl, [&](const ExprPtr &node) -> ExprPtr {
            if (node->kind == ExprKind::ArgBV)
                return argBV(new_pos[node->value]);
            return nullptr;
        });
    }
    return out;
}

/** Compose permutations: member read through an extra permutation. */
std::vector<int>
composePerm(const std::vector<int> &inner, const std::vector<int> &outer)
{
    std::vector<int> out(outer.size());
    for (size_t k = 0; k < outer.size(); ++k)
        out[k] = inner[outer[k]];
    return out;
}

std::vector<int>
identityPerm(size_t n)
{
    std::vector<int> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = static_cast<int>(i);
    return perm;
}

/**
 * Differentially verify that the class representative, instantiated
 * with the member's parameter values and argument permutation,
 * computes exactly what the member's own concrete semantics computes.
 * This is the testing stand-in for the paper's SMT queries.
 */
bool
verifyMember(const CanonicalSemantics &rep, const ClassMember &member,
             int trials)
{
    Rng rng(0x5E11A ^ std::hash<std::string>{}(member.name));
    const std::vector<int64_t> int_values(member.concrete.int_args.size(),
                                          1);
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<BitVector> args;
        for (size_t a = 0; a < member.concrete.bv_args.size(); ++a) {
            args.push_back(BitVector::random(
                member.concrete.argWidth(static_cast<int>(a), {}), rng));
        }
        std::vector<BitVector> rep_args;
        for (size_t k = 0; k < member.arg_perm.size(); ++k)
            rep_args.push_back(args[member.arg_perm[k]]);
        const BitVector expected =
            member.concrete.evaluate(args, {}, int_values);
        const BitVector actual =
            rep.evaluate(rep_args, member.param_values, int_values);
        if (expected != actual)
            return false;
    }
    return true;
}

/** Signature for the permutation-pass prefilter (paper §3.3: number
 *  of arguments, bitvector arguments and integer arguments). */
std::string
classSignature(const EquivalenceClass &cls)
{
    return format("%d/%d/%d/%d/%d", static_cast<int>(cls.rep.bv_args.size()),
                  static_cast<int>(cls.rep.int_args.size()),
                  static_cast<int>(cls.rep.params.size()),
                  static_cast<int>(cls.rep.mode),
                  static_cast<int>(cls.rep.templates.size()));
}

/** Eliminate parameters whose value agrees across all class members. */
void
eliminateDeadParams(EquivalenceClass &cls, SimilarityStats *stats)
{
    const size_t n = cls.rep.params.size();
    std::vector<bool> keep(n, false);
    for (size_t p = 0; p < n; ++p) {
        // Lane-count and register-width parameters stay symbolic even
        // when every member agrees: the synthesizer's lane scaling
        // (§4.2) re-instantiates them at reduced widths, which a
        // folded constant would forbid.
        const ParamRole role = cls.rep.params[p].role;
        if (role == ParamRole::Count || role == ParamRole::RegWidth) {
            keep[p] = true;
            continue;
        }
        const int64_t first = cls.members.front().param_values[p];
        for (const auto &member : cls.members) {
            if (member.param_values[p] != first) {
                keep[p] = true;
                break;
            }
        }
    }
    // Always keep nothing extra: fully uniform classes keep zero
    // parameters and become plain (non-parameterized) operations.
    size_t kept = 0;
    std::vector<int> new_index(n, -1);
    for (size_t p = 0; p < n; ++p)
        if (keep[p])
            new_index[p] = static_cast<int>(kept++);
    if (kept == n)
        return;
    if (stats)
        stats->params_eliminated += static_cast<int>(n - kept);

    const std::vector<int64_t> defaults =
        cls.members.front().param_values;
    auto rebuild = [&](const ExprPtr &expr) {
        return simplify(rewrite(expr, [&](const ExprPtr &node) -> ExprPtr {
            if (node->kind != ExprKind::Param)
                return nullptr;
            const int old = static_cast<int>(node->value);
            if (new_index[old] < 0)
                return intConst(defaults[old]);
            return param(new_index[old],
                         format("p%d", new_index[old]));
        }));
    };
    for (auto &arg : cls.rep.bv_args)
        arg.width = rebuild(arg.width);
    cls.rep.outer_count = rebuild(cls.rep.outer_count);
    cls.rep.inner_count = rebuild(cls.rep.inner_count);
    cls.rep.elem_width = rebuild(cls.rep.elem_width);
    for (auto &tmpl : cls.rep.templates)
        tmpl = rebuild(tmpl);

    std::vector<ParamInfo> new_params;
    for (size_t p = 0; p < n; ++p)
        if (keep[p]) {
            ParamInfo info = cls.rep.params[p];
            info.name = format("p%d", new_index[p]);
            new_params.push_back(info);
        }
    cls.rep.params = std::move(new_params);

    for (auto &member : cls.members) {
        std::vector<int64_t> values;
        for (size_t p = 0; p < n; ++p)
            if (keep[p])
                values.push_back(member.param_values[p]);
        member.param_values = std::move(values);
    }
}

} // namespace

std::vector<EquivalenceClass>
runSimilarityEngine(const std::vector<CanonicalSemantics> &insts,
                    const SimilarityOptions &options, SimilarityStats *stats)
{
    SimilarityStats local_stats;
    if (!stats)
        stats = &local_stats;
    stats->instructions = static_cast<int>(insts.size());
    trace::TraceSpan span("similarity.engine.run");
    span.setAttr("instructions", static_cast<int64_t>(insts.size()));

    // Pass 1: extract constants and group structurally identical
    // symbolic semantics (PerformEqChecking over representatives).
    std::vector<EquivalenceClass> classes;
    std::unordered_map<uint64_t, std::vector<size_t>> by_hash;
    for (const auto &concrete : insts) {
        CanonicalSemantics sym = extractConstants(concrete);
        ClassMember member;
        member.name = concrete.name;
        member.isa = concrete.isa;
        member.latency = concrete.latency;
        member.param_values = valuesOf(sym);
        member.arg_perm = identityPerm(concrete.bv_args.size());
        member.concrete = concrete;

        const uint64_t hash = sym.shapeHash();
        bool merged = false;
        for (size_t idx : by_hash[hash]) {
            ++stats->pairs_checked;
            if (CanonicalSemantics::sameShape(classes[idx].rep, sym)) {
                classes[idx].members.push_back(std::move(member));
                ++stats->structural_merges;
                merged = true;
                break;
            }
        }
        if (!merged) {
            EquivalenceClass cls;
            sym.name = "class_" + concrete.name;
            cls.rep = std::move(sym);
            cls.members.push_back(std::move(member));
            by_hash[hash].push_back(classes.size());
            classes.push_back(std::move(cls));
        }
    }

    // Pass 2: PermuteArgs + re-check (merges operand-order variants
    // such as mask_blend vs mask_mov).
    if (options.permute_args) {
        std::map<std::string, std::vector<size_t>> by_sig;
        for (size_t idx = 0; idx < classes.size(); ++idx)
            by_sig[classSignature(classes[idx])].push_back(idx);

        std::vector<bool> dead(classes.size(), false);
        for (auto &[sig, bucket] : by_sig) {
            (void)sig;
            for (size_t bi = 0; bi < bucket.size(); ++bi) {
                const size_t b = bucket[bi];
                if (dead[b])
                    continue;
                const size_t nargs = classes[b].rep.bv_args.size();
                if (nargs < 2 || nargs > 4)
                    continue;
                for (size_t ai = 0; ai < bi && !dead[b]; ++ai) {
                    const size_t a = bucket[ai];
                    if (dead[a])
                        continue;
                    std::vector<int> perm = identityPerm(nargs);
                    while (std::next_permutation(perm.begin(), perm.end())) {
                        ++stats->pairs_checked;
                        CanonicalSemantics permuted = extractConstants(
                            permuteArgs(classes[b].members[0].concrete,
                                        perm));
                        if (!CanonicalSemantics::sameShape(classes[a].rep,
                                                           permuted)) {
                            continue;
                        }
                        // Merge every member of b into a under `perm`.
                        for (auto &member : classes[b].members) {
                            CanonicalSemantics resym = extractConstants(
                                permuteArgs(member.concrete, perm));
                            ClassMember moved = member;
                            moved.param_values = valuesOf(resym);
                            moved.arg_perm =
                                composePerm(member.arg_perm, perm);
                            classes[a].members.push_back(std::move(moved));
                            ++stats->permutation_merges;
                        }
                        classes[b].members.clear();
                        dead[b] = true;
                        break;
                    }
                }
            }
        }
        std::vector<EquivalenceClass> alive;
        for (size_t idx = 0; idx < classes.size(); ++idx)
            if (!dead[idx])
                alive.push_back(std::move(classes[idx]));
        classes = std::move(alive);
    }

    // Pass 3: verify every membership; members that fail verification
    // are split into singleton classes (conservative fallback).
    std::vector<EquivalenceClass> split_out;
    for (auto &cls : classes) {
        std::vector<ClassMember> verified;
        for (auto &member : cls.members) {
            // Chaos seam: a forced verification failure exercises the
            // conservative singleton-split fallback for this member.
            if (!faults::shouldFail("similarity.verify", member.name) &&
                verifyMember(cls.rep, member, options.verify_trials)) {
                verified.push_back(std::move(member));
            } else {
                ++stats->verification_failures;
                EquivalenceClass singleton;
                singleton.rep = extractConstants(member.concrete);
                singleton.rep.name = "class_" + member.name;
                member.param_values = valuesOf(singleton.rep);
                member.arg_perm =
                    identityPerm(member.concrete.bv_args.size());
                singleton.members.push_back(std::move(member));
                split_out.push_back(std::move(singleton));
            }
        }
        cls.members = std::move(verified);
    }
    for (auto &cls : split_out)
        classes.push_back(std::move(cls));
    classes.erase(std::remove_if(classes.begin(), classes.end(),
                                 [](const EquivalenceClass &cls) {
                                     return cls.members.empty();
                                 }),
                  classes.end());

    // Pass 4: eliminate parameters that are constant across the class.
    if (options.eliminate_dead_params)
        for (auto &cls : classes)
            eliminateDeadParams(cls, stats);

    span.setAttr("classes", static_cast<int64_t>(classes.size()));
    span.setAttr("pairs_checked",
                 static_cast<int64_t>(stats->pairs_checked));
    metrics::counter("similarity.engine.pairs_checked")
        .add(static_cast<uint64_t>(stats->pairs_checked));
    metrics::counter("similarity.engine.classes_merged")
        .add(static_cast<uint64_t>(stats->structural_merges +
                                   stats->permutation_merges));
    metrics::counter("similarity.engine.verification_failures")
        .add(static_cast<uint64_t>(stats->verification_failures));
    metrics::gauge("similarity.engine.classes")
        .set(static_cast<int64_t>(classes.size()));

    return classes;
}

} // namespace hydride
