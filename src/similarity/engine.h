/**
 * @file
 * The Similarity Checking Engine (paper §3.3, Algorithm 1).
 *
 * Given the canonicalized semantics of every instruction in one or
 * more ISAs, the engine:
 *
 *  1. extracts constants to obtain symbolic semantics (including the
 *     index-offset hole insertion / refinement step, see
 *     extraction.h),
 *  2. groups instructions whose symbolic semantics are structurally
 *     identical into equivalence classes,
 *  3. retries merging with permuted argument orders (mask_blend vs
 *     mask_mov-style variants),
 *  4. verifies every merge by differential evaluation of the class
 *     representative, instantiated with the member's parameters,
 *     against the member's own concrete semantics on random inputs —
 *     the testing stand-in for the paper's SMT equivalence queries
 *     (see DESIGN.md, substitution table),
 *  5. eliminates parameters whose value is identical across the whole
 *     class ("eliminating unnecessary arguments").
 *
 * The resulting classes are exactly what the AutoLLVM IR generator
 * consumes: one retargetable instruction per class.
 */
#ifndef HYDRIDE_SIMILARITY_ENGINE_H
#define HYDRIDE_SIMILARITY_ENGINE_H

#include <string>
#include <vector>

#include "hir/semantics.h"

namespace hydride {

/** One target instruction inside an equivalence class. */
struct ClassMember
{
    std::string name;
    std::string isa;
    int latency = 1;
    /** Concrete values of the class parameters for this instruction. */
    std::vector<int64_t> param_values;
    /** rep argument k reads this member's original argument
     *  arg_perm[k] (identity unless the permutation pass merged it). */
    std::vector<int> arg_perm;
    /** The member's original concrete semantics (for verification and
     *  differential testing). */
    CanonicalSemantics concrete;
};

/** A parameterized equivalence class of similar instructions. */
struct EquivalenceClass
{
    /** Symbolic representative; defaults come from the first member. */
    CanonicalSemantics rep;
    std::vector<ClassMember> members;

    /** True if any member belongs to `isa`. */
    bool coversIsa(const std::string &isa) const;
};

/** Tuning knobs, used by the ablation benchmarks. */
struct SimilarityOptions
{
    bool permute_args = true;
    bool eliminate_dead_params = true;
    int verify_trials = 2;
};

/** Statistics reported alongside the classes. */
struct SimilarityStats
{
    int instructions = 0;
    int structural_merges = 0;
    int permutation_merges = 0;
    int params_eliminated = 0;
    int verification_failures = 0;
    /** Candidate pairs compared (structural + permuted shape checks). */
    long pairs_checked = 0;
};

/** Run Algorithm 1 over canonicalized instruction semantics. */
std::vector<EquivalenceClass>
runSimilarityEngine(const std::vector<CanonicalSemantics> &insts,
                    const SimilarityOptions &options = {},
                    SimilarityStats *stats = nullptr);

/**
 * Instantiate a symbolic semantics with concrete parameter values and
 * evaluate it (convenience used by verification, AutoLLVM execution
 * and the simulator).
 */
BitVector evaluateWithParams(const CanonicalSemantics &rep,
                             const std::vector<int64_t> &param_values,
                             const std::vector<BitVector> &args,
                             const std::vector<int64_t> &int_args = {});

} // namespace hydride

#endif // HYDRIDE_SIMILARITY_ENGINE_H
