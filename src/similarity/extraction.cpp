#include "similarity/extraction.h"

#include "support/error.h"
#include "support/strings.h"

#include <map>

namespace hydride {

namespace {

/** Extraction state: the (role, value) -> parameter memo. */
class Extractor
{
  public:
    explicit Extractor(CanonicalSemantics &sem) : sem_(sem) {}

    /** Replace integer constants in `expr` under the given role. */
    ExprPtr
    walkInt(const ExprPtr &expr, ParamRole role)
    {
        switch (expr->kind) {
          case ExprKind::IntConst:
            return paramFor(role, expr->value);
          case ExprKind::IntBin: {
            ExprPtr a = walkInt(expr->kids[0], role);
            ExprPtr b = walkInt(expr->kids[1], role);
            return intBin(static_cast<IntBinOp>(expr->value), a, b);
          }
          default:
            return expr; // Loop vars, immediates, existing params.
        }
    }

    /** Replace constants in a BV-typed template expression. */
    ExprPtr
    walkBV(const ExprPtr &expr)
    {
        switch (expr->kind) {
          case ExprKind::Extract: {
            ExprPtr base = walkBV(expr->kids[0]);
            ExprPtr low = walkIndexWithHole(expr->kids[1]);
            ExprPtr width = walkInt(expr->kids[2], ParamRole::ElemWidth);
            return extract(base, low, width);
          }
          case ExprKind::BVCast: {
            ExprPtr base = walkBV(expr->kids[0]);
            ExprPtr width = walkInt(expr->kids[1], ParamRole::ElemWidth);
            return bvCast(static_cast<BVCastOp>(expr->value), base, width);
          }
          case ExprKind::BVConst: {
            ExprPtr width = walkInt(expr->kids[0], ParamRole::ElemWidth);
            ExprPtr value = walkInt(expr->kids[1], ParamRole::Value);
            return bvConst(width, value);
          }
          default: {
            if (expr->isInt())
                return walkInt(expr, ParamRole::Index);
            bool changed = false;
            std::vector<ExprPtr> kids;
            kids.reserve(expr->kids.size());
            for (const auto &kid : expr->kids) {
                ExprPtr walked = kid->isInt()
                                     ? walkInt(kid, ParamRole::Index)
                                     : walkBV(kid);
                changed |= walked.get() != kid.get();
                kids.push_back(std::move(walked));
            }
            if (!changed)
                return expr;
            auto node = std::make_shared<Expr>(*expr);
            node->kids = std::move(kids);
            return node;
        }
        }
    }

    /**
     * Normalize an extract low index into `core + offset-parameter`:
     * the hole-insertion step. The trailing additive constant (zero
     * when absent) becomes an Index-role parameter that is *not*
     * deduplicated against other constants, since each extract's
     * offset is an independent hole.
     */
    ExprPtr
    walkIndexWithHole(const ExprPtr &raw_low)
    {
        ExprPtr low = simplify(distributeIndexExpr(raw_low));
        if (low->kind == ExprKind::IntConst) {
            // Fully constant position (scalar ops, broadcasts): the
            // whole position is the hole.
            return freshParam(ParamRole::Index, low->value);
        }
        int64_t offset = 0;
        ExprPtr core = low;
        if (low->kind == ExprKind::IntBin &&
            static_cast<IntBinOp>(low->value) == IntBinOp::Add &&
            low->kids[1]->kind == ExprKind::IntConst) {
            offset = low->kids[1]->value;
            core = low->kids[0];
        }
        ExprPtr walked_core = walkInt(core, ParamRole::Index);
        ExprPtr hole = freshParam(ParamRole::Index, offset);
        return addI(walked_core, hole);
    }

    /**
     * Memoized parameter for (role, value). Index-role constants are
     * never shared: two bit-index constants that happen to be equal
     * (a lane size coinciding with an element width, say) are not
     * provably the same quantity, so each gets its own parameter —
     * the conservative choice the paper describes, cleaned up later
     * by dead-argument elimination.
     */
    ExprPtr
    paramFor(ParamRole role, int64_t value)
    {
        if (role == ParamRole::Index)
            return freshParam(role, value);
        const auto key = std::make_pair(role, value);
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
        ExprPtr node = freshParam(role, value);
        memo_.emplace(key, node);
        return node;
    }

    /** Allocate a parameter without memoization (used for holes). */
    ExprPtr
    freshParam(ParamRole role, int64_t value)
    {
        const int index = static_cast<int>(sem_.params.size());
        const std::string name = format("p%d", index);
        sem_.params.push_back({name, value, role});
        return param(index, name);
    }

  private:
    CanonicalSemantics &sem_;
    std::map<std::pair<ParamRole, int64_t>, ExprPtr> memo_;
};

/** Rename integer immediates positionally for cross-ISA comparison. */
void
normalizeImmNames(CanonicalSemantics &sem)
{
    std::map<std::string, ExprPtr> renames;
    for (size_t i = 0; i < sem.int_args.size(); ++i) {
        const std::string fresh = format("imm%d", static_cast<int>(i));
        renames[sem.int_args[i]] = namedVar(fresh);
        sem.int_args[i] = fresh;
    }
    if (renames.empty())
        return;
    for (auto &tmpl : sem.templates) {
        tmpl = rewrite(tmpl, [&](const ExprPtr &node) -> ExprPtr {
            if (node->kind == ExprKind::NamedVar) {
                auto it = renames.find(node->name);
                if (it != renames.end())
                    return it->second;
            }
            return nullptr;
        });
    }
}

} // namespace

ExprPtr
distributeIndexExpr(const ExprPtr &expr)
{
    if (expr->isInt() && expr->kind == ExprKind::IntBin) {
        const auto op = static_cast<IntBinOp>(expr->value);
        ExprPtr a = distributeIndexExpr(expr->kids[0]);
        ExprPtr b = distributeIndexExpr(expr->kids[1]);
        if (op == IntBinOp::Mul) {
            // (x + c) * k -> x*k + c*k with k constant (either side).
            const ExprPtr *sum = nullptr;
            const ExprPtr *factor = nullptr;
            if (a->kind == ExprKind::IntBin &&
                static_cast<IntBinOp>(a->value) == IntBinOp::Add &&
                b->kind == ExprKind::IntConst) {
                sum = &a;
                factor = &b;
            } else if (b->kind == ExprKind::IntBin &&
                       static_cast<IntBinOp>(b->value) == IntBinOp::Add &&
                       a->kind == ExprKind::IntConst) {
                sum = &b;
                factor = &a;
            }
            if (sum) {
                ExprPtr lhs = distributeIndexExpr(
                    mulI((*sum)->kids[0], *factor));
                ExprPtr rhs = distributeIndexExpr(
                    mulI((*sum)->kids[1], *factor));
                return simplify(addI(lhs, rhs));
            }
        }
        if (op == IntBinOp::Add) {
            // Re-associate so a trailing constant surfaces:
            // (x + c) + y -> (x + y) + c.
            ExprPtr node = simplify(addI(a, b));
            if (node->kind == ExprKind::IntBin &&
                static_cast<IntBinOp>(node->value) == IntBinOp::Add) {
                ExprPtr lhs = node->kids[0];
                ExprPtr rhs = node->kids[1];
                if (lhs->kind == ExprKind::IntBin &&
                    static_cast<IntBinOp>(lhs->value) == IntBinOp::Add &&
                    lhs->kids[1]->kind == ExprKind::IntConst &&
                    rhs->kind != ExprKind::IntConst) {
                    return simplify(addI(addI(lhs->kids[0], rhs),
                                         lhs->kids[1]));
                }
            }
            return node;
        }
        return simplify(intBin(op, a, b));
    }
    return expr;
}

CanonicalSemantics
extractConstants(const CanonicalSemantics &concrete)
{
    HYD_ASSERT(concrete.params.empty(),
               "constants already extracted for " + concrete.name);
    CanonicalSemantics sym = concrete;
    sym.params.clear();
    normalizeImmNames(sym);

    Extractor extractor(sym);
    for (auto &arg : sym.bv_args)
        arg.width = extractor.walkInt(arg.width, ParamRole::RegWidth);
    sym.outer_count = extractor.walkInt(sym.outer_count, ParamRole::Count);
    sym.inner_count = extractor.walkInt(sym.inner_count, ParamRole::Count);
    sym.elem_width = extractor.walkInt(sym.elem_width, ParamRole::ElemWidth);
    for (auto &tmpl : sym.templates)
        tmpl = extractor.walkBV(tmpl);
    return sym;
}

} // namespace hydride
