/**
 * @file
 * Constant extraction: concrete canonical semantics -> symbolic
 * (parameterized) semantics (paper §3.3, "Extraction of constants").
 *
 * Every integer literal in the canonicalized semantics — trip counts,
 * register and element widths, index strides/offsets, constant
 * operands — is replaced by a fresh symbolic parameter. Two
 * refinements keep this faithful to the paper:
 *
 *  1. *Role-aware deduplication*: constants are memoized per
 *     (structural role, value), standing in for the paper's bitwidth
 *     analysis; the two widening widths of a saturating add share one
 *     parameter, while an element width and an equal-valued lane
 *     count do not.
 *
 *  2. *Index-offset holes*: every extract's low-index expression is
 *     normalized to `core + offset` with `offset` a parameter
 *     (defaulting to 0 when the spec had no offset). This is the
 *     paper's hole insertion (Fig. 3(d,e)) — it lets unpacklo (offset
 *     0) and unpackhi (offset 64) land in one equivalence class, with
 *     the dead-argument elimination pass later removing offsets that
 *     are zero across an entire class.
 *
 * Integer immediate argument names are also normalized positionally
 * ("imm0", "imm1", ...) so that cross-ISA variants of e.g.
 * shift-by-immediate compare structurally equal.
 */
#ifndef HYDRIDE_SIMILARITY_EXTRACTION_H
#define HYDRIDE_SIMILARITY_EXTRACTION_H

#include "hir/semantics.h"

namespace hydride {

/** Extract constants, returning the symbolic semantics. The result's
 *  `params` carry the instruction's original concrete values. */
CanonicalSemantics extractConstants(const CanonicalSemantics &concrete);

/**
 * Distribute multiplications over additions with constant factors
 * (`(x + c) * k -> x*k + c*k`) so that index offsets surface as
 * trailing additive constants. Exposed for testing.
 */
ExprPtr distributeIndexExpr(const ExprPtr &expr);

} // namespace hydride

#endif // HYDRIDE_SIMILARITY_EXTRACTION_H
