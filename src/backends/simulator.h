/**
 * @file
 * Performance simulator for compiled kernels.
 *
 * Stands in for the paper's hardware measurements (Xeon wall clock,
 * the Hexagon cycle-accurate simulator, Apple M2 wall clock; see
 * DESIGN.md). The model charges, per dynamic iteration of a kernel's
 * inner loop:
 *
 *   loop_overhead + sum over windows (instruction latency sum
 *                                     + loads * load_cost)
 *
 * Loads are the window's vector inputs. The additive memory/loop
 * terms damp compute-cost ratios the way real memory traffic does —
 * a kernel whose compute halves does not run twice as fast — which
 * is what keeps the Figure 6 geomeans in the paper's ranges rather
 * than at the raw instruction-count ratios.
 *
 * The simulator also re-validates functional correctness: each
 * compiled window is differentially tested against its Halide window
 * on random inputs (except for programs flagged cost_model_only).
 */
#ifndef HYDRIDE_BACKENDS_SIMULATOR_H
#define HYDRIDE_BACKENDS_SIMULATOR_H

#include "backends/backends.h"
#include "backends/targets.h"

namespace hydride {

/** Simulated cycles for one compiled kernel. */
double simulateCycles(const CompiledKernel &compiled, const Kernel &kernel,
                      const SimConfig &config = {});

/**
 * Differentially validate a compiled kernel against its Halide
 * windows on `trials` random inputs; returns false on any mismatch.
 * Kernels flagged cost_model_only are skipped (returns true).
 */
bool validateCompiled(const AutoLLVMDict &dict,
                      const CompiledKernel &compiled, const Kernel &kernel,
                      int trials = 3);

} // namespace hydride

#endif // HYDRIDE_BACKENDS_SIMULATOR_H
