#include "backends/targets.h"

namespace hydride {

const std::vector<TargetDesc> &
evaluationTargets()
{
    static const std::vector<TargetDesc> targets = {
        {"x86 (AVX-512 Xeon-class)", "x86", 512, {14.0, 8.0}},
        {"HVX (Hexagon 128B mode)", "hvx", 1024, {2.0, 4.0}},
        {"ARM (NEON AArch64)", "arm", 128, {3.0, 4.0}},
    };
    return targets;
}

} // namespace hydride
