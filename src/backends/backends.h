/**
 * @file
 * The four compilers compared in the paper's evaluation (Fig. 6):
 *
 *  - HydrideBackend: the synthesis-based compiler (synthesis/).
 *  - HalideProdBackend: a stand-in for the production Halide
 *    target-specific back ends — hand-written pattern-matching rules
 *    that map known window shapes to efficient target sequences
 *    (dot products, fused narrowing shifts), with plain macro
 *    expansion underneath. Its rules reference concrete instruction
 *    names per target, exactly the kind of hand-maintained,
 *    target-specific code Hydride exists to eliminate.
 *  - LlvmStyleBackend: Halide's LLVM back end stand-in — pure macro
 *    expansion: simple SIMD selection with no complex non-SIMD
 *    instruction usage.
 *  - RakeBackend: the Rake comparison — restricted to the HVX
 *    instruction subset Rake supports (no accumulating/saturating
 *    dot-product variants, no vdeal/vshuffvdd, no averaging ops) and
 *    to the benchmarks it can compile (the paper reports Rake fails
 *    on 28 of 33 and on every ARM benchmark).
 */
#ifndef HYDRIDE_BACKENDS_BACKENDS_H
#define HYDRIDE_BACKENDS_BACKENDS_H

#include <memory>
#include <string>
#include <vector>

#include "synthesis/compiler.h"

namespace hydride {

/** A kernel compiled by one of the comparison backends. */
struct CompiledKernel
{
    std::string backend;
    std::string kernel;
    std::string isa;
    std::vector<TargetProgram> programs;
    /** Effective windows, one per program (Hydride may split deep
     *  windows into pieces; baselines keep the kernel's windows). */
    std::vector<HExprPtr> windows;
    /** Original-window group per program; pieces of one group feed
     *  later pieces through their cut-point input ids. */
    std::vector<int> groups;
    double compile_seconds = 0.0;
    /**
     * True when a kernel-level special case replaced a window with a
     * cost-representative sequence that is not functionally checked
     * (the production backend's cross-window fusions; see DESIGN.md).
     */
    bool cost_model_only = false;

    int staticCost() const;
};

/** Common compiler interface for the Figure 6 comparison. */
class Backend
{
  public:
    virtual ~Backend() = default;
    virtual std::string name() const = 0;
    /** Compile; false when this compiler cannot handle the kernel
     *  (Rake's failures, baseline back-end failures). */
    virtual bool compile(const Kernel &kernel, CompiledKernel &out) = 0;
};

/** Halide-LLVM-style baseline: plain macro expansion. */
class LlvmStyleBackend : public Backend
{
  public:
    LlvmStyleBackend(const AutoLLVMDict &dict, std::string isa,
                     int vector_bits);
    std::string name() const override { return "halide-llvm"; }
    bool compile(const Kernel &kernel, CompiledKernel &out) override;

  private:
    MacroExpander expander_;
    std::string isa_;
};

/** Production-Halide-style backend: patterns + expansion. */
class HalideProdBackend : public Backend
{
  public:
    HalideProdBackend(const AutoLLVMDict &dict, std::string isa,
                      int vector_bits);
    std::string name() const override { return "halide-prod"; }
    bool compile(const Kernel &kernel, CompiledKernel &out) override;

  private:
    bool matchDot2Acc(const HExprPtr &window, TargetProgram &program);
    bool matchNarrowingShift(const HExprPtr &window,
                             TargetProgram &program);
    bool specialCaseKernel(const Kernel &kernel, CompiledKernel &out);
    bool variantFor(const std::string &inst_name, AutoOpVariant &variant,
                    int &latency) const;

    const AutoLLVMDict &dict_;
    MacroExpander expander_;
    std::string isa_;
    int vector_bits_;
};

/** Rake stand-in: restricted instruction set, few benchmarks. */
class RakeBackend : public Backend
{
  public:
    RakeBackend(const AutoLLVMDict &dict, std::string isa,
                int vector_bits);
    std::string name() const override { return "rake"; }
    bool compile(const Kernel &kernel, CompiledKernel &out) override;

  private:
    MacroExpander expander_;
    std::string isa_;
};

/** Hydride wrapped in the common interface. */
class HydrideBackend : public Backend
{
  public:
    HydrideBackend(const AutoLLVMDict &dict, std::string isa,
                   int vector_bits, SynthesisOptions options = {},
                   SynthesisCache *cache = nullptr);
    std::string name() const override { return "hydride"; }
    bool compile(const Kernel &kernel, CompiledKernel &out) override;

    HydrideCompiler &compiler() { return compiler_; }

  private:
    HydrideCompiler compiler_;
    std::string isa_;
};

} // namespace hydride

#endif // HYDRIDE_BACKENDS_BACKENDS_H
