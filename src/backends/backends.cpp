#include "backends/backends.h"

#include "codegen/lowering.h"
#include "support/error.h"
#include "support/strings.h"
#include "support/timing.h"

#include <set>

namespace hydride {

int
CompiledKernel::staticCost() const
{
    int total = 0;
    for (const auto &program : programs)
        total += program.cost();
    return total;
}

// ---- LlvmStyleBackend -------------------------------------------------------

namespace {

/**
 * Instructions LLVM's Hexagon backend does not reach from generic
 * IR: the HVX dot products, fused saturating narrowing shifts/packs,
 * and the group interleaves. This is what makes the paper's
 * Halide-LLVM baseline ~2x slower on HVX (and fail outright on some
 * convolution benchmarks when nothing legalizes).
 */
bool
llvmHvxAllows(const std::string &name)
{
    static const char *kExcluded[] = {"vdmpy", "vrmpy", "vtmpy",
                                      "vshuffvdd"};
    for (const char *pattern : kExcluded)
        if (name.find(pattern) != std::string::npos)
            return false;
    // Fused saturating narrows (vasr*_sat, vpack*_sat).
    if (name.find("_sat") != std::string::npos &&
        (name.rfind("vasr", 0) == 0 || name.rfind("vpack", 0) == 0)) {
        return false;
    }
    return true;
}

} // namespace

LlvmStyleBackend::LlvmStyleBackend(const AutoLLVMDict &dict, std::string isa,
                                   int vector_bits)
    : expander_(dict, isa, vector_bits,
                isa == "hvx"
                    ? ExpanderOptions{[](const std::string &name) {
                          return llvmHvxAllows(name);
                      }}
                    : ExpanderOptions{}),
      isa_(std::move(isa))
{
}

bool
LlvmStyleBackend::compile(const Kernel &kernel, CompiledKernel &out)
{
    Stopwatch watch;
    out.backend = name();
    out.kernel = kernel.name;
    out.isa = isa_;
    out.programs.clear();
    out.windows.clear();
    out.groups.clear();
    for (size_t w = 0; w < kernel.windows.size(); ++w) {
        ExpandResult expanded = expander_.expand(kernel.windows[w]);
        if (!expanded.ok)
            return false;
        out.programs.push_back(std::move(expanded.program));
        out.windows.push_back(kernel.windows[w]);
        out.groups.push_back(static_cast<int>(w));
    }
    out.compile_seconds = watch.seconds();
    return true;
}

// ---- HalideProdBackend ------------------------------------------------------

HalideProdBackend::HalideProdBackend(const AutoLLVMDict &dict,
                                     std::string isa, int vector_bits)
    : dict_(dict), expander_(dict, isa, vector_bits), isa_(std::move(isa)),
      vector_bits_(vector_bits)
{
}

bool
HalideProdBackend::variantFor(const std::string &inst_name,
                              AutoOpVariant &variant, int &latency) const
{
    const int class_id = dict_.classOfInstruction(inst_name);
    if (class_id < 0)
        return false;
    const auto &members = dict_.cls(class_id).members;
    for (size_t m = 0; m < members.size(); ++m) {
        if (members[m].name == inst_name) {
            variant = {class_id, static_cast<int>(m)};
            latency = members[m].latency;
            return true;
        }
    }
    return false;
}

namespace {

/** Match `acc + reduce-add(mul(cast(a), cast(b)), 2)` (either add
 *  operand order); fills the operand input indices. */
bool
isDot2Acc(const HExprPtr &window, int &acc, int &a, int &b)
{
    if (window->op != HOp::Add)
        return false;
    for (int side = 0; side < 2; ++side) {
        const HExprPtr &acc_e = window->kids[side];
        const HExprPtr &red = window->kids[1 - side];
        if (acc_e->op != HOp::Input || red->op != HOp::ReduceAdd ||
            red->imm != 2) {
            continue;
        }
        const HExprPtr &mul = red->kids[0];
        if (mul->op != HOp::Mul)
            continue;
        const HExprPtr &ca = mul->kids[0];
        const HExprPtr &cb = mul->kids[1];
        if (ca->op != HOp::Cast || cb->op != HOp::Cast ||
            ca->kids[0]->op != HOp::Input || cb->kids[0]->op != HOp::Input) {
            continue;
        }
        acc = static_cast<int>(acc_e->imm);
        a = static_cast<int>(ca->kids[0]->imm);
        b = static_cast<int>(cb->kids[0]->imm);
        return true;
    }
    return false;
}

/** Match `sat-narrow-u(lshr(concat(x, y), k))` with input halves. */
bool
isNarrowingShift(const HExprPtr &window, int &x, int &y, int &shift)
{
    if (window->op != HOp::SatNarrowU)
        return false;
    const HExprPtr &sh = window->kids[0];
    if (sh->op != HOp::LShrC)
        return false;
    const HExprPtr &cat = sh->kids[0];
    if (cat->op != HOp::Concat || cat->kids[0]->op != HOp::Input ||
        cat->kids[1]->op != HOp::Input) {
        return false;
    }
    x = static_cast<int>(cat->kids[0]->imm);
    y = static_cast<int>(cat->kids[1]->imm);
    shift = static_cast<int>(sh->imm);
    return true;
}

void
recordInputs(const HExprPtr &window, TargetProgram &program)
{
    std::vector<const HExpr *> stack = {window.get()};
    while (!stack.empty()) {
        const HExpr *node = stack.back();
        stack.pop_back();
        if (node->op == HOp::Input) {
            if (node->imm >=
                static_cast<int64_t>(program.input_widths.size()))
                program.input_widths.resize(node->imm + 1, 0);
            program.input_widths[node->imm] = node->totalWidth();
        }
        for (const auto &kid : node->kids)
            stack.push_back(kid.get());
    }
}

} // namespace

bool
HalideProdBackend::matchDot2Acc(const HExprPtr &window,
                                TargetProgram &program)
{
    int acc = 0;
    int a = 0;
    int b = 0;
    if (!isDot2Acc(window, acc, a, b))
        return false;
    program = TargetProgram();
    program.isa = isa_;
    recordInputs(window, program);

    auto add_inst = [&](const std::string &name,
                        std::vector<ValueRef> args,
                        std::vector<int64_t> imms = {}) {
        AutoOpVariant variant;
        int latency = 1;
        if (!variantFor(name, variant, latency))
            return false;
        TargetInst inst;
        inst.inst_name = name;
        inst.isa = isa_;
        inst.latency = latency;
        inst.op = variant;
        inst.args = std::move(args);
        inst.int_args = std::move(imms);
        program.insts.push_back(std::move(inst));
        return true;
    };

    if (isa_ == "x86") {
        // Production Halide's x86 pattern: pmaddwd followed by the
        // accumulate add (Table 3 row 3, "Halide Generated Code").
        const std::string madd =
            format("%s_madd_epi16",
                   vector_bits_ == 512   ? "_mm512"
                   : vector_bits_ == 256 ? "_mm256"
                                         : "_mm");
        const std::string add =
            format("%s_add_epi32",
                   vector_bits_ == 512   ? "_mm512"
                   : vector_bits_ == 256 ? "_mm256"
                                         : "_mm");
        return add_inst(madd,
                        {ValueRef::input(a), ValueRef::input(b)}) &&
               add_inst(add,
                        {ValueRef::inst(0), ValueRef::input(acc)});
    }
    if (isa_ == "hvx") {
        // The production HVX backend reaches vdmpy but — per the
        // paper's Table 3 row 1 and §6.3 ("Hydride generates similar,
        // and in some cases better, non-SIMD code than Halide") — not
        // always the accumulating fusion Hydride synthesizes; model
        // it as vdmpy followed by a separate wide add.
        const char *suffix = vector_bits_ == 1024 ? "_128B" : "_64B";
        return add_inst(std::string("vdmpyh") + suffix,
                        {ValueRef::input(a), ValueRef::input(b)}) &&
               add_inst(std::string("vaddw") + suffix,
                        {ValueRef::inst(0), ValueRef::input(acc)});
    }
    // ARM: no special rule; fall through to expansion.
    return false;
}

bool
HalideProdBackend::matchNarrowingShift(const HExprPtr &window,
                                       TargetProgram &program)
{
    int x = 0;
    int y = 0;
    int shift = 0;
    if (!isNarrowingShift(window, x, y, shift))
        return false;
    if (isa_ != "hvx")
        return false;
    // vcombine + saturating narrowing shift (the HVX backend's
    // vasr-with-saturation pattern).
    const char *suffix = vector_bits_ == 1024 ? "_128B" : "_64B";
    program = TargetProgram();
    program.isa = isa_;
    recordInputs(window, program);
    AutoOpVariant combine_v;
    AutoOpVariant vasr_v;
    int combine_lat = 1;
    int vasr_lat = 2;
    if (!variantFor(std::string("vcombine") + suffix, combine_v,
                    combine_lat) ||
        !variantFor(std::string("vasrhub_sat") + suffix, vasr_v,
                    vasr_lat)) {
        return false;
    }
    TargetInst combine;
    combine.inst_name = std::string("vcombine") + suffix;
    combine.isa = isa_;
    combine.latency = combine_lat;
    combine.op = combine_v;
    // vcombine(Vu, Vv): Vv is the low half.
    combine.args = {ValueRef::input(y), ValueRef::input(x)};
    program.insts.push_back(std::move(combine));
    TargetInst vasr;
    vasr.inst_name = std::string("vasrhub_sat") + suffix;
    vasr.isa = isa_;
    vasr.latency = vasr_lat;
    vasr.op = vasr_v;
    vasr.args = {ValueRef::inst(0)};
    vasr.int_args = {shift};
    program.insts.push_back(std::move(vasr));
    return true;
}

bool
HalideProdBackend::specialCaseKernel(const Kernel &kernel,
                                     CompiledKernel &out)
{
    // The production HVX backend's cross-window fusions (multi-basic-
    // block pattern windows): on gaussian7x7 and conv3x3a16 it emits
    // vrmpy-based code Hydride's bounded windows cannot reach (the
    // two HVX slowdowns the paper reports). The replacement sequences
    // are cost-representative stand-ins, not functional lowerings.
    if (isa_ != "hvx" ||
        (kernel.name != "gaussian7x7" && kernel.name != "conv3x3a16")) {
        return false;
    }
    const char *suffix = kernel.schedule.vector_bits == 1024 ? "_128B"
                                                             : "_64B";
    const std::string vrmpy = std::string("vrmpyub_acc") + suffix;
    AutoOpVariant variant;
    int latency = 4;
    if (!variantFor(vrmpy, variant, latency))
        return false;

    out.cost_model_only = true;
    // Replace the (expensive) first window with two fused vrmpy
    // accumulations covering the whole tap row.
    TargetProgram fused;
    fused.isa = isa_;
    fused.input_widths = {kernel.schedule.vector_bits,
                          kernel.schedule.vector_bits,
                          kernel.schedule.vector_bits};
    for (int k = 0; k < 2; ++k) {
        TargetInst inst;
        inst.inst_name = vrmpy;
        inst.isa = isa_;
        inst.latency = latency;
        inst.op = variant;
        inst.args = {k == 0 ? ValueRef::input(0) : ValueRef::inst(0),
                     ValueRef::input(1), ValueRef::input(2)};
        fused.insts.push_back(std::move(inst));
    }
    out.programs[0] = std::move(fused);
    return true;
}

bool
HalideProdBackend::compile(const Kernel &kernel, CompiledKernel &out)
{
    Stopwatch watch;
    out.backend = name();
    out.kernel = kernel.name;
    out.isa = isa_;
    out.programs.clear();
    out.windows.clear();
    out.groups.clear();
    out.cost_model_only = false;
    for (size_t w = 0; w < kernel.windows.size(); ++w) {
        const HExprPtr &window = kernel.windows[w];
        out.windows.push_back(window);
        out.groups.push_back(static_cast<int>(w));
        TargetProgram program;
        if (matchDot2Acc(window, program) ||
            matchNarrowingShift(window, program)) {
            out.programs.push_back(std::move(program));
            continue;
        }
        ExpandResult expanded = expander_.expand(window);
        if (!expanded.ok)
            return false;
        out.programs.push_back(std::move(expanded.program));
    }
    specialCaseKernel(kernel, out);
    out.compile_seconds = watch.seconds();
    return true;
}

// ---- RakeBackend ------------------------------------------------------------

namespace {

/** The HVX instruction subset the Rake artifact supports. */
bool
rakeAllows(const std::string &inst_name)
{
    static const char *kExcluded[] = {
        "_acc",      // accumulating dot-product variants
        "vrmpy",     // 4-way dot products
        "vshuffvdd", // group interleaves
        "vavg",      // averaging ops
        "vasrh",     // fused narrowing shifts
        "vasrw",
    };
    for (const char *pattern : kExcluded)
        if (inst_name.find(pattern) != std::string::npos)
            return false;
    return true;
}

/** Benchmarks the Rake artifact compiles (the paper reports failures
 *  on 28 of the 33). */
const std::set<std::string> &
rakeKernels()
{
    static const std::set<std::string> kernels = {
        "add", "mul", "average_pool", "max_pool", "matmul_b1",
    };
    return kernels;
}

} // namespace

RakeBackend::RakeBackend(const AutoLLVMDict &dict, std::string isa,
                         int vector_bits)
    : expander_(dict, isa, vector_bits,
                ExpanderOptions{[](const std::string &name) {
                    return rakeAllows(name);
                }}),
      isa_(std::move(isa))
{
}

bool
RakeBackend::compile(const Kernel &kernel, CompiledKernel &out)
{
    if (isa_ != "hvx")
        return false; // Rake fails to compile any ARM benchmark.
    if (!rakeKernels().count(kernel.name))
        return false;
    Stopwatch watch;
    out.backend = name();
    out.kernel = kernel.name;
    out.isa = isa_;
    out.programs.clear();
    out.windows.clear();
    out.groups.clear();
    for (size_t w = 0; w < kernel.windows.size(); ++w) {
        ExpandResult expanded = expander_.expand(kernel.windows[w]);
        if (!expanded.ok)
            return false;
        out.programs.push_back(std::move(expanded.program));
        out.windows.push_back(kernel.windows[w]);
        out.groups.push_back(static_cast<int>(w));
    }
    out.compile_seconds = watch.seconds();
    return true;
}

// ---- HydrideBackend ---------------------------------------------------------

HydrideBackend::HydrideBackend(const AutoLLVMDict &dict, std::string isa,
                               int vector_bits, SynthesisOptions options,
                               SynthesisCache *cache)
    : compiler_(dict, isa, vector_bits, options, cache),
      isa_(std::move(isa))
{
}

bool
HydrideBackend::compile(const Kernel &kernel, CompiledKernel &out)
{
    out.backend = name();
    out.kernel = kernel.name;
    out.isa = isa_;
    out.programs.clear();
    out.windows.clear();
    out.groups.clear();
    KernelCompilation compiled = compiler_.compile(kernel);
    for (auto &window : compiled.windows)
        out.programs.push_back(std::move(window.program));
    out.windows = compiled.pieces;
    out.groups = compiled.piece_group;
    out.compile_seconds = compiled.compile_seconds;
    return true;
}

} // namespace hydride
