/**
 * @file
 * Evaluation target descriptions, standing in for the paper's
 * hardware: an AVX-512 Xeon-class x86 (512-bit vectors), a Hexagon
 * HVX in 128-byte mode (1024-bit vectors), and an Apple-M2-class
 * AArch64 NEON (128-bit vectors). See DESIGN.md for the simulation
 * substitution rationale.
 */
#ifndef HYDRIDE_BACKENDS_TARGETS_H
#define HYDRIDE_BACKENDS_TARGETS_H

#include <string>
#include <vector>

namespace hydride {

/**
 * Simulator cost-model constants, calibrated per target: a wide
 * out-of-order Xeon hides more compute latency behind memory traffic
 * (high load/loop charge), the in-order HVX DSP does not.
 */
struct SimConfig
{
    double load_cost = 2.0;
    double loop_overhead = 4.0;
};

/** One evaluation target. */
struct TargetDesc
{
    std::string name; ///< Display name in benchmark output.
    std::string isa;  ///< Dictionary ISA key.
    int vector_bits;  ///< Vectorization width kernels schedule for.
    SimConfig sim;    ///< Calibrated simulator constants.
};

/** The three paper targets. */
const std::vector<TargetDesc> &evaluationTargets();

} // namespace hydride

#endif // HYDRIDE_BACKENDS_TARGETS_H
