#include "backends/simulator.h"

#include "support/error.h"
#include "support/rng.h"

namespace hydride {

double
simulateCycles(const CompiledKernel &compiled, const Kernel &kernel,
               const SimConfig &config)
{
    double per_iteration = config.loop_overhead;
    for (const auto &program : compiled.programs)
        per_iteration += program.cost();
    // Memory traffic depends on the kernel, not on how a compiler
    // split its windows: charge one load per *original* window input
    // (cut-point values stay in registers).
    for (const auto &window : kernel.windows)
        per_iteration += config.load_cost * halideInputCount(window);
    return per_iteration * kernel.iterations;
}

bool
validateCompiled(const AutoLLVMDict &dict, const CompiledKernel &compiled,
                 const Kernel &kernel, int trials)
{
    if (compiled.cost_model_only)
        return true;
    if (compiled.programs.size() != compiled.windows.size() ||
        compiled.groups.size() != compiled.windows.size()) {
        return false;
    }

    Rng rng(0x5173 ^ std::hash<std::string>{}(compiled.backend + "/" +
                                              kernel.name));
    // Pieces of one group feed later pieces: piece outputs land at
    // the input index they were cut out as.
    size_t p = 0;
    while (p < compiled.windows.size()) {
        const int group = compiled.groups[p];
        size_t end = p;
        while (end < compiled.windows.size() &&
               compiled.groups[end] == group) {
            ++end;
        }
        for (int trial = 0; trial < trials; ++trial) {
            // Shared input pool for the group.
            std::vector<BitVector> pool;
            auto ensure = [&](size_t index, int width) {
                if (pool.size() <= index)
                    pool.resize(index + 1, BitVector(1));
                if (pool[index].width() != width)
                    pool[index] = BitVector::random(std::max(width, 1),
                                                    rng);
            };
            bool group_ok = true;
            // Cut-point ids start right after the original window's
            // inputs (exactly how splitWindow numbers them).
            size_t next_cut = static_cast<size_t>(
                halideInputCount(kernel.windows[group]));
            for (size_t q = p; q < end && group_ok; ++q) {
                const TargetProgram &program = compiled.programs[q];
                std::vector<BitVector> inputs;
                for (size_t i = 0; i < program.input_widths.size(); ++i) {
                    ensure(i, program.input_widths[i]);
                    inputs.push_back(pool[i]);
                }
                BitVector got(1);
                BitVector expect(1);
                try {
                    got = program.evaluate(dict, inputs);
                    expect = evalHalide(compiled.windows[q], inputs);
                } catch (const AssertionError &) {
                    // Structurally inconsistent program/window pair.
                    return false;
                }
                if (got != expect) {
                    group_ok = false;
                    break;
                }
                if (q + 1 < end) {
                    if (pool.size() <= next_cut)
                        pool.resize(next_cut + 1, BitVector(1));
                    pool[next_cut] = got;
                    ++next_cut;
                }
            }
            if (!group_ok)
                return false;
        }
        p = end;
    }
    return true;
}

} // namespace hydride
