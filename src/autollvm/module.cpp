#include "autollvm/module.h"

#include "support/error.h"
#include "support/strings.h"

#include <sstream>

namespace hydride {

BitVector
AutoModule::evaluate(const AutoLLVMDict &dict,
                     const std::vector<BitVector> &inputs) const
{
    HYD_ASSERT(inputs.size() == input_widths.size(),
               "module input arity mismatch");
    HYD_ASSERT(!insts.empty(), "empty AutoLLVM module");
    std::vector<BitVector> values;
    values.reserve(insts.size());
    for (const auto &inst : insts) {
        std::vector<BitVector> args;
        args.reserve(inst.args.size());
        for (const auto &ref : inst.args) {
            if (ref.kind == ValueRef::Input) {
                HYD_ASSERT(ref.index <
                               static_cast<int>(inputs.size()),
                           "input reference out of range");
                args.push_back(inputs[ref.index]);
            } else if (ref.kind == ValueRef::Const) {
                HYD_ASSERT(ref.index < static_cast<int>(constants.size()),
                           "constant reference out of range");
                args.push_back(constants[ref.index]);
            } else {
                HYD_ASSERT(ref.index < static_cast<int>(values.size()),
                           "forward instruction reference");
                args.push_back(values[ref.index]);
            }
        }
        values.push_back(dict.run(inst.op, args, inst.int_args));
    }
    const int out = result < 0 ? static_cast<int>(insts.size()) - 1 : result;
    return values[out];
}

int
AutoModule::cost(const AutoLLVMDict &dict) const
{
    int total = 0;
    for (const auto &inst : insts)
        total += inst.op.member(dict).latency;
    return total;
}

namespace {

/** `<N x iW>` vector-type string for a value of the given shape. */
std::string
vecType(int total_width, int elem_width)
{
    if (elem_width <= 0 || total_width % elem_width != 0 ||
        total_width == elem_width) {
        return format("i%d", total_width);
    }
    return format("<%d x i%d>", total_width / elem_width, elem_width);
}

} // namespace

std::string
AutoModule::print(const AutoLLVMDict &dict) const
{
    std::ostringstream os;
    for (size_t v = 0; v < insts.size(); ++v) {
        const AutoInst &inst = insts[v];
        const EquivalenceClass &cls = dict.cls(inst.op.class_id);
        const ClassMember &member = inst.op.member(dict);
        const int out_w = cls.rep.outputWidth(member.param_values);

        // Infer the printed element width from the representative.
        EvalEnv env;
        env.param_values = &member.param_values;
        const int elem_w = static_cast<int>(evalInt(cls.rep.elem_width, env));

        os << "%" << v << " = call " << vecType(out_w, elem_w) << " @"
           << dict.className(inst.op.class_id) << "(";
        for (size_t a = 0; a < inst.args.size(); ++a) {
            if (a)
                os << ", ";
            const int arg_w =
                cls.rep.argWidth(static_cast<int>(a), member.param_values);
            os << vecType(arg_w, elem_w) << " ";
            if (inst.args[a].kind == ValueRef::Input)
                os << "%arg" << inst.args[a].index;
            else if (inst.args[a].kind == ValueRef::Const)
                os << "%const" << inst.args[a].index;
            else
                os << "%" << inst.args[a].index;
        }
        for (size_t p = 0; p < member.param_values.size(); ++p)
            os << ", i32 " << member.param_values[p]
               << " /* " << cls.rep.params[p].name << " */";
        for (int64_t imm : inst.int_args)
            os << ", i32 " << imm << " /* imm */";
        os << ")   ; " << member.name << " [" << member.isa << "]\n";
    }
    return os.str();
}

} // namespace hydride
