/**
 * @file
 * MLIR dialect emission — the extension the paper's conclusion
 * describes ("we are currently using Hydride in MLIR to automatically
 * generate target-agnostic dialects and low-level target-specific
 * dialects from ISA specifications... No such capability exists in
 * MLIR today").
 *
 * From the AutoLLVM dictionary this module renders:
 *  - a target-agnostic `autovec` dialect: one MLIR operation per
 *    equivalence class, parameterized by the class's abstracted
 *    constants (the analogue of upstream MLIR's hand-written
 *    `x86vector`/`arm_neon` dialects, but with full coverage and a
 *    Hexagon dialect that upstream lacks);
 *  - per-ISA low-level dialects whose ops map 1-1 onto target
 *    instructions, each carrying the rewrite pattern that lowers the
 *    `autovec` op with the matching parameter attributes onto it.
 */
#ifndef HYDRIDE_AUTOLLVM_MLIR_H
#define HYDRIDE_AUTOLLVM_MLIR_H

#include <string>

#include "autollvm/dict.h"

namespace hydride {

/** Emit the target-agnostic `autovec` dialect (ODS-style text). */
std::string emitMlirAgnosticDialect(const AutoLLVMDict &dict);

/** Emit the low-level dialect + lowering patterns for one ISA. */
std::string emitMlirTargetDialect(const AutoLLVMDict &dict,
                                  const std::string &isa);

} // namespace hydride

#endif // HYDRIDE_AUTOLLVM_MLIR_H
