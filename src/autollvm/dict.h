/**
 * @file
 * The AutoLLVM instruction dictionary (paper §3.4).
 *
 * Each equivalence class produced by the similarity engine becomes
 * one retargetable AutoLLVM IR instruction: a parameterized operation
 * whose concrete parameter assignments select individual target
 * instructions. The dictionary owns the classes, assigns stable
 * `@autollvm.*` names, indexes members per target ISA, and provides
 * the executable semantics used by synthesis and simulation.
 */
#ifndef HYDRIDE_AUTOLLVM_DICT_H
#define HYDRIDE_AUTOLLVM_DICT_H

#include <map>
#include <string>
#include <vector>

#include "similarity/engine.h"

namespace hydride {

/**
 * A concrete specialization of an AutoLLVM instruction: one class
 * member (target instruction) viewed as (class id, parameter values).
 * This is the unit the synthesizer enumerates.
 */
struct AutoOpVariant
{
    int class_id = 0;
    int member_index = 0;

    const ClassMember &member(const class AutoLLVMDict &dict) const;
};

/** The dictionary of AutoLLVM instructions. */
class AutoLLVMDict
{
  public:
    /** Build from similarity-engine classes. */
    explicit AutoLLVMDict(std::vector<EquivalenceClass> classes);

    /** Convenience: run the engine over the given ISAs and build. */
    static AutoLLVMDict build(const std::vector<std::string> &isas);

    int classCount() const { return static_cast<int>(classes_.size()); }

    const EquivalenceClass &cls(int class_id) const;

    /** The `@autollvm.gN` intrinsic name of a class. */
    const std::string &className(int class_id) const;

    /** All variants whose target instruction belongs to `isa`. */
    const std::vector<AutoOpVariant> &isaVariants(const std::string &isa)
        const;

    /** Find the class containing target instruction `name`; -1 if
     *  absent. */
    int classOfInstruction(const std::string &name) const;

    /**
     * Execute a variant on concrete arguments (in the *representative*
     * argument order) with optional integer immediates.
     */
    BitVector run(const AutoOpVariant &variant,
                  const std::vector<BitVector> &args,
                  const std::vector<int64_t> &int_args = {}) const;

  private:
    std::vector<EquivalenceClass> classes_;
    std::vector<std::string> names_;
    std::map<std::string, std::vector<AutoOpVariant>> by_isa_;
    std::map<std::string, int> by_inst_;
};

} // namespace hydride

#endif // HYDRIDE_AUTOLLVM_DICT_H
