/**
 * @file
 * AutoLLVM IR programs: straight-line SSA sequences of calls to
 * AutoLLVM intrinsics, the output of Hydride's code synthesizer and
 * the input to the auto-generated instruction selectors. The example
 * in the paper's §3.4 is a three-instruction AutoModule.
 */
#ifndef HYDRIDE_AUTOLLVM_MODULE_H
#define HYDRIDE_AUTOLLVM_MODULE_H

#include <string>
#include <vector>

#include "autollvm/dict.h"

namespace hydride {

/** A reference to a value: a module input, a prior instruction, or a
 *  loop-hoisted constant vector (constants cost nothing at runtime,
 *  reflecting materialization outside the vector loop). */
struct ValueRef
{
    enum Kind { Input, Inst, Const } kind = Input;
    int index = 0;

    static ValueRef input(int index) { return {Input, index}; }
    static ValueRef inst(int index) { return {Inst, index}; }
    static ValueRef constant(int index) { return {Const, index}; }
    bool operator==(const ValueRef &other) const
    {
        return kind == other.kind && index == other.index;
    }
};

/** One AutoLLVM intrinsic call. */
struct AutoInst
{
    AutoOpVariant op;
    std::vector<ValueRef> args;
    std::vector<int64_t> int_args;
};

/** A straight-line AutoLLVM IR program. */
struct AutoModule
{
    /** Bit widths of the module inputs. */
    std::vector<int> input_widths;
    /** Hoisted constant vectors referenced via ValueRef::Const. */
    std::vector<BitVector> constants;
    std::vector<AutoInst> insts;
    /** Index of the instruction producing the result (last if -1). */
    int result = -1;

    /** Execute the program on concrete inputs. */
    BitVector evaluate(const AutoLLVMDict &dict,
                       const std::vector<BitVector> &inputs) const;

    /** Sum of member latencies (the synthesis cost model, §4.1). */
    int cost(const AutoLLVMDict &dict) const;

    /** Render as LLVM-IR-like text with `@autollvm.*` intrinsics. */
    std::string print(const AutoLLVMDict &dict) const;
};

} // namespace hydride

#endif // HYDRIDE_AUTOLLVM_MODULE_H
