/**
 * @file
 * TableGen emission: Hydride "automatically generates an LLVM
 * TableGen file with definitions of all AutoLLVM intrinsics" (§3.4).
 * This module renders the dictionary as a `.td`-style document —
 * intrinsic declarations plus, per class, the 1-1 lowering records
 * the code-gen generator derives (§3.5).
 */
#ifndef HYDRIDE_AUTOLLVM_TABLEGEN_H
#define HYDRIDE_AUTOLLVM_TABLEGEN_H

#include <string>

#include "autollvm/dict.h"

namespace hydride {

/** Emit intrinsic definitions for every AutoLLVM instruction. */
std::string emitTableGen(const AutoLLVMDict &dict);

} // namespace hydride

#endif // HYDRIDE_AUTOLLVM_TABLEGEN_H
