#include "autollvm/dict.h"

#include "observability/metrics.h"
#include "observability/trace.h"
#include "specs/spec_db.h"
#include "support/error.h"
#include "support/strings.h"

namespace hydride {

const ClassMember &
AutoOpVariant::member(const AutoLLVMDict &dict) const
{
    return dict.cls(class_id).members[member_index];
}

AutoLLVMDict::AutoLLVMDict(std::vector<EquivalenceClass> classes)
    : classes_(std::move(classes))
{
    names_.reserve(classes_.size());
    for (size_t c = 0; c < classes_.size(); ++c) {
        names_.push_back(format("autollvm.g%d", static_cast<int>(c)));
        const auto &members = classes_[c].members;
        for (size_t m = 0; m < members.size(); ++m) {
            AutoOpVariant variant{static_cast<int>(c), static_cast<int>(m)};
            by_isa_[members[m].isa].push_back(variant);
            by_inst_[members[m].name] = static_cast<int>(c);
        }
    }
}

AutoLLVMDict
AutoLLVMDict::build(const std::vector<std::string> &isas)
{
    trace::TraceSpan span("autollvm.dict.build");
    span.setAttr("isas", join(isas, ","));
    AutoLLVMDict dict(runSimilarityEngine(combinedSemantics(isas)));
    span.setAttr("classes", dict.classCount());
    metrics::gauge("autollvm.dict.classes").set(dict.classCount());
    return dict;
}

const EquivalenceClass &
AutoLLVMDict::cls(int class_id) const
{
    HYD_ASSERT(class_id >= 0 && class_id < classCount(),
               "class id out of range");
    return classes_[class_id];
}

const std::string &
AutoLLVMDict::className(int class_id) const
{
    HYD_ASSERT(class_id >= 0 && class_id < classCount(),
               "class id out of range");
    return names_[class_id];
}

const std::vector<AutoOpVariant> &
AutoLLVMDict::isaVariants(const std::string &isa) const
{
    static const std::vector<AutoOpVariant> empty;
    auto it = by_isa_.find(isa);
    return it == by_isa_.end() ? empty : it->second;
}

int
AutoLLVMDict::classOfInstruction(const std::string &name) const
{
    auto it = by_inst_.find(name);
    return it == by_inst_.end() ? -1 : it->second;
}

BitVector
AutoLLVMDict::run(const AutoOpVariant &variant,
                  const std::vector<BitVector> &args,
                  const std::vector<int64_t> &int_args) const
{
    const EquivalenceClass &c = cls(variant.class_id);
    const ClassMember &m = c.members[variant.member_index];
    return c.rep.evaluate(args, m.param_values, int_args);
}

} // namespace hydride
