#include "autollvm/mlir.h"

#include "support/strings.h"

#include <sstream>

namespace hydride {

namespace {

/** `vector<NxiW>` type string from a member's concrete shape. */
std::string
mlirVecType(const EquivalenceClass &cls,
            const std::vector<int64_t> &params, int arg_index)
{
    EvalEnv env;
    env.param_values = &params;
    const int ew = static_cast<int>(evalInt(cls.rep.elem_width, env));
    const int width = arg_index < 0
                          ? cls.rep.outputWidth(params)
                          : cls.rep.argWidth(arg_index, params);
    if (ew <= 0 || width % ew != 0 || width == ew)
        return format("i%d", width);
    return format("vector<%dxi%d>", width / ew, ew);
}

std::string
opName(const AutoLLVMDict &dict, int class_id)
{
    return replaceAll(dict.className(class_id), "autollvm.", "");
}

} // namespace

std::string
emitMlirAgnosticDialect(const AutoLLVMDict &dict)
{
    std::ostringstream os;
    os << "// Auto-generated target-agnostic MLIR dialect (autovec).\n"
       << "// One op per instruction equivalence class; integer\n"
       << "// attributes carry the abstracted numerical parameters.\n\n"
       << "def AutoVec_Dialect : Dialect {\n"
       << "  let name = \"autovec\";\n"
       << "  let cppNamespace = \"::autovec\";\n"
       << "}\n\n";
    for (int c = 0; c < dict.classCount(); ++c) {
        const EquivalenceClass &cls = dict.cls(c);
        os << "def AutoVec_" << opName(dict, c)
           << "Op : AutoVec_Op<\"" << opName(dict, c) << "\"> {\n";
        os << "  let arguments = (ins";
        for (size_t a = 0; a < cls.rep.bv_args.size(); ++a)
            os << (a ? ", " : " ") << "AnyVector:$"
               << cls.rep.bv_args[a].name;
        for (const auto &param : cls.rep.params)
            os << ", I32Attr:$" << param.name;
        for (const auto &imm : cls.rep.int_args)
            os << ", I32Attr:$" << imm;
        os << ");\n";
        os << "  let results = (outs AnyVector:$dst);\n";
        os << "  // Members:";
        int shown = 0;
        for (const auto &member : cls.members) {
            if (shown++ == 4) {
                os << " ... (" << cls.members.size() << " total)";
                break;
            }
            os << " " << member.isa << "." << member.name;
        }
        os << "\n}\n\n";
    }
    return os.str();
}

std::string
emitMlirTargetDialect(const AutoLLVMDict &dict, const std::string &isa)
{
    std::ostringstream os;
    os << "// Auto-generated low-level MLIR dialect for " << isa
       << " with 1-1 lowerings from autovec.\n\n"
       << "def " << isa << "_Dialect : Dialect {\n"
       << "  let name = \"" << isa << "\";\n}\n\n";
    for (const auto &variant : dict.isaVariants(isa)) {
        const EquivalenceClass &cls = dict.cls(variant.class_id);
        const ClassMember &member = variant.member(dict);
        std::string op = replaceAll(member.name, ".", "_");
        os << "def " << isa << "_" << op << "Op : " << isa
           << "_Op<\"" << member.name << "\"> {\n";
        os << "  let arguments = (ins";
        for (size_t a = 0; a < cls.rep.bv_args.size(); ++a) {
            os << (a ? ", " : " ")
               << mlirVecType(cls, member.param_values,
                              static_cast<int>(a))
               << ":$a" << a;
        }
        for (const auto &imm : cls.rep.int_args)
            os << ", I32Attr:$" << imm;
        os << ");\n";
        os << "  let results = (outs "
           << mlirVecType(cls, member.param_values, -1) << ");\n";
        os << "}\n";
        os << "// lowering: autovec." << opName(dict, variant.class_id)
           << "(";
        for (size_t p = 0; p < member.param_values.size(); ++p)
            os << (p ? ", " : "") << cls.rep.params[p].name << " = "
               << member.param_values[p];
        os << ") -> " << isa << "." << member.name << "\n\n";
    }
    return os.str();
}

} // namespace hydride
