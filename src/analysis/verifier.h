/**
 * @file
 * The pipeline-wide semantic verifier: runs every static analysis
 * pass over the derived spec database, the AutoLLVM dictionary and
 * the lowering tables, producing structured diagnostics.
 *
 * Passes (ids usable with `hydride-verify --passes`):
 *
 *  - `wellformed` — per-instruction bitwidth/type well-formedness
 *    (WF rules; see inst_verify.h).
 *  - `ub`         — per-instruction undefined-behaviour detection
 *    (UB rules).
 *  - `deadcode`   — dead operands and unreachable templates (DC
 *    rules).
 *  - `crosstable` — AutoLLVM dictionary / lowering-table consistency
 *    (XT rules): every spec instruction has a dictionary entry, no
 *    dangling member names, unambiguous 1-1 lowering per (class,
 *    ISA, parameters), every variant lowers to its own ISA, lowered
 *    programs are SSA-acyclic, and the macro-expansion fallback
 *    covers basic arithmetic on every ingested ISA.
 *
 * The per-instruction passes also run over every equivalence-class
 * representative when a dictionary is supplied, so defects introduced
 * by constant extraction or class merging are caught too.
 */
#ifndef HYDRIDE_ANALYSIS_VERIFIER_H
#define HYDRIDE_ANALYSIS_VERIFIER_H

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/inst_verify.h"
#include "codegen/lowering.h"
#include "specs/spec_db.h"

namespace hydride {
namespace analysis {

/** Static description of one verifier pass. */
struct PassInfo
{
    std::string id;
    std::string title;
    std::string rules; ///< Rule-id family, e.g. "WF01..WF09".
    bool needs_dict = false;
};

/** All registered passes, in execution order. */
const std::vector<PassInfo> &verifierPasses();

/** What the verifier runs over. */
struct VerifyInput
{
    std::vector<const IsaSemantics *> isas;
    const AutoLLVMDict *dict = nullptr; ///< Needed by `crosstable`.
};

/** Verifier configuration. */
struct VerifierOptions
{
    InstVerifyOptions inst;
    /** Pass ids to run; empty = every pass the input supports. */
    std::vector<std::string> pass_ids;
    /** Vector register width per ISA for the macro-expansion
     *  coverage check (XT06); ISAs not listed are skipped. */
    std::map<std::string, int> vector_bits = {
        {"x86", 512}, {"hvx", 1024}, {"arm", 128}};

    bool runsPass(const std::string &id) const;
};

/** Run the selected passes, appending diagnostics to `report`. */
void runVerifier(const VerifyInput &input, const VerifierOptions &options,
                 DiagnosticReport &report);

/**
 * SSA well-formedness of a lowered target program (rule XT05): every
 * operand references a module input, a hoisted constant, or a
 * *prior* instruction — no self or forward references — and, when a
 * dictionary is supplied, every call's arity matches its class
 * representative. Also used on macro-expansion output.
 */
void verifyTargetProgram(const TargetProgram &program,
                         const AutoLLVMDict *dict,
                         DiagnosticReport &report);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_VERIFIER_H
