/**
 * @file
 * The pipeline-wide semantic verifier: runs every static analysis
 * pass over the derived spec database, the AutoLLVM dictionary and
 * the lowering tables, producing structured diagnostics.
 *
 * Passes (ids usable with `hydride-verify --passes`):
 *
 *  - `wellformed` — per-instruction bitwidth/type well-formedness
 *    (WF rules; see inst_verify.h).
 *  - `ub`         — per-instruction undefined-behaviour detection
 *    (UB rules).
 *  - `deadcode`   — dead operands and unreachable templates (DC
 *    rules).
 *  - `crosstable` — AutoLLVM dictionary / lowering-table consistency
 *    (XT rules): every spec instruction has a dictionary entry, no
 *    dangling member names, unambiguous 1-1 lowering per (class,
 *    ISA, parameters), every variant lowers to its own ISA, lowered
 *    programs are SSA-acyclic, and the macro-expansion fallback
 *    covers basic arithmetic on every ingested ISA.
 *  - `equiv`      — symbolic translation validation (EQ rules; see
 *    equiv_pass.cpp and docs/symbolic_engine.md): every
 *    similarity-class member is proved equivalent to its
 *    parameterized representative (EQ01), every lowering round-trips
 *    as the identity (EQ02), macro-expansion output matches the
 *    Halide op it replaces (EQ03), and synthesized programs are
 *    re-validated against their windows (EQ04). Opt-in — run with
 *    `--passes equiv` — because exact queries cost SAT time.
 *
 * The per-instruction passes also run over every equivalence-class
 * representative when a dictionary is supplied, so defects introduced
 * by constant extraction or class merging are caught too.
 */
#ifndef HYDRIDE_ANALYSIS_VERIFIER_H
#define HYDRIDE_ANALYSIS_VERIFIER_H

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/inst_verify.h"
#include "analysis/symbolic/equiv.h"
#include "codegen/lowering.h"
#include "specs/spec_db.h"

namespace hydride {
namespace analysis {

/** Static description of one verifier pass. */
struct PassInfo
{
    std::string id;
    std::string title;
    std::string rules; ///< Rule-id family, e.g. "WF01..WF09".
    bool needs_dict = false;
    /** Run when no explicit --passes subset was given. The equiv
     *  pass is opt-in: exact symbolic queries cost SAT time. */
    bool on_by_default = true;
};

/** All registered passes, in execution order. */
const std::vector<PassInfo> &verifierPasses();

/** What the verifier runs over. */
struct VerifyInput
{
    std::vector<const IsaSemantics *> isas;
    const AutoLLVMDict *dict = nullptr; ///< Needed by `crosstable`.
};

/** One unresolved (unknown-verdict) equivalence query, kept for the
 *  budget-honesty summary: unknowns are never counted as passes. */
struct EquivUnknown
{
    std::string rule;    ///< "EQ01".."EQ04".
    std::string isa;
    std::string subject; ///< Instruction or window concerned.
    std::string reason;  ///< Budget or failure hit (EqResult::reason).
    double seconds = 0.0;
};

/** Per-rule verdict tallies for the equiv pass. */
struct EquivStats
{
    std::map<std::string, int> proved;
    std::map<std::string, int> refuted;
    std::map<std::string, int> unknown;
    std::vector<EquivUnknown> unknowns;
    double seconds = 0.0;

    int totalProved() const;
    int totalRefuted() const;
    int totalUnknown() const;
};

/** Configuration of the symbolic translation-validation pass. */
struct EquivOptions
{
    sym::EqBudget budget;
    /** Rule subset to run (empty = EQ01..EQ04). */
    std::vector<std::string> rules;
    /** Only query class members whose instruction name contains this
     *  substring (EQ01/EQ02; empty = every member). Seeded-mutation
     *  runs use it to keep `--self-test` fast. */
    std::string instruction_filter;
    /** Macro-expansion result-register rotation — the seeded defect
     *  hook behind `--mutate splice-shift` (EQ03 must catch it). */
    int expander_splice_skew = 0;
    /** Optional out-param for verdict tallies. */
    EquivStats *stats = nullptr;
};

/** Verifier configuration. */
struct VerifierOptions
{
    InstVerifyOptions inst;
    EquivOptions equiv;
    /** Pass ids to run; empty = every pass the input supports. */
    std::vector<std::string> pass_ids;
    /** Vector register width per ISA for the macro-expansion
     *  coverage check (XT06); ISAs not listed are skipped. */
    std::map<std::string, int> vector_bits = {
        {"x86", 512}, {"hvx", 1024}, {"arm", 128}};

    bool runsPass(const std::string &id) const;
};

/** Run the selected passes, appending diagnostics to `report`. */
void runVerifier(const VerifyInput &input, const VerifierOptions &options,
                 DiagnosticReport &report);

/**
 * SSA well-formedness of a lowered target program (rule XT05): every
 * operand references a module input, a hoisted constant, or a
 * *prior* instruction — no self or forward references — and, when a
 * dictionary is supplied, every call's arity matches its class
 * representative. Also used on macro-expansion output.
 */
void verifyTargetProgram(const TargetProgram &program,
                         const AutoLLVMDict *dict,
                         DiagnosticReport &report);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_VERIFIER_H
