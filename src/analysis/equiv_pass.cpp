#include "analysis/equiv_pass.h"

#include "analysis/symbolic/ir_equiv.h"
#include "codegen/macro_expand.h"
#include "halide/hexpr.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "synthesis/cegis.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <tuple>

namespace hydride {
namespace analysis {

namespace {

/** Shared state of one equiv-pass run. */
struct EqContext
{
    const VerifyInput &input;
    const VerifierOptions &options;
    DiagnosticReport &report;
    EquivStats &stats;
};

bool
runsRule(const EquivOptions &options, const std::string &rule)
{
    if (options.rules.empty())
        return true;
    return std::find(options.rules.begin(), options.rules.end(), rule) !=
           options.rules.end();
}

bool
matchesFilter(const EquivOptions &options, const std::string &name)
{
    return options.instruction_filter.empty() ||
           name.find(options.instruction_filter) != std::string::npos;
}

/** "x0=0x00ff, x1=0x0001" — the refutation model, capped. */
std::string
modelText(const std::vector<BitVector> &model)
{
    std::string text;
    const size_t shown = std::min<size_t>(model.size(), 4);
    for (size_t i = 0; i < shown; ++i) {
        if (i)
            text += ", ";
        text += "x" + std::to_string(i) + "=0x" + model[i].toHex();
    }
    if (shown < model.size())
        text += ", ... (" + std::to_string(model.size()) + " inputs)";
    return text;
}

/** Record one query outcome: tallies, metrics, and a diagnostic for
 *  refuted (error) or unknown (warning) verdicts. */
void
recordQuery(EqContext &ctx, const std::string &rule, const std::string &isa,
            const std::string &subject, const sym::EqResult &result,
            const std::string &what)
{
    static metrics::Histogram &seconds_hist =
        metrics::histogram("analysis.equiv.solver_seconds");
    seconds_hist.observe(result.seconds);
    std::string metric = "analysis.equiv." + rule;
    std::transform(metric.begin(), metric.end(), metric.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    ctx.stats.seconds += result.seconds;

    Diagnostic diag;
    diag.rule = rule;
    diag.pass = "equiv";
    diag.isa = isa;
    diag.instruction = subject;
    switch (result.verdict) {
      case sym::Verdict::Proved:
        ++ctx.stats.proved[rule];
        metrics::counter(metric + ".proved").add();
        return;
      case sym::Verdict::Refuted:
        ++ctx.stats.refuted[rule];
        metrics::counter(metric + ".refuted").add();
        diag.severity = Severity::Error;
        diag.message = what + " (refuted via " + result.method +
                       " tier; countermodel " + modelText(result.model) +
                       ")";
        break;
      case sym::Verdict::Unknown:
        ++ctx.stats.unknown[rule];
        metrics::counter(metric + ".unknown").add();
        ctx.stats.unknowns.push_back(
            {rule, isa, subject, result.reason, result.seconds});
        diag.severity = Severity::Warning;
        diag.message = what + ": verdict unknown (" + result.reason +
                       ") — not counted as a pass";
        break;
    }
    ctx.report.add(std::move(diag));
}

/** Member-side guards shared by EQ01/EQ02: skip members whose shape
 *  defects the crosstable pass already reports (XT08/XT09) — probing
 *  them would only crash the width evaluation. */
bool
memberShapeOk(const EquivalenceClass &cls, const ClassMember &member)
{
    if (member.param_values.size() != cls.rep.params.size())
        return false;
    if (member.arg_perm.empty())
        return true;
    const size_t rep_args = cls.rep.bv_args.size();
    if (member.arg_perm.size() != rep_args)
        return false;
    std::vector<bool> hit(rep_args, false);
    for (int p : member.arg_perm) {
        if (p < 0 || p >= static_cast<int>(rep_args) || hit[p])
            return false;
        hit[p] = true;
    }
    return true;
}

/** EQ01: member semantics vs. parameterized representative. */
void
runEq01(EqContext &ctx)
{
    const AutoLLVMDict &dict = *ctx.input.dict;
    for (int c = 0; c < dict.classCount(); ++c) {
        const EquivalenceClass &cls = dict.cls(c);
        for (const ClassMember &member : cls.members) {
            if (!matchesFilter(ctx.options.equiv, member.name))
                continue;
            if (!memberShapeOk(cls, member))
                continue;
            sym::SemanticsSide member_side;
            member_side.sem = &member.concrete;
            member_side.int_arg_values.assign(
                member.concrete.int_args.size(), 1);
            sym::SemanticsSide rep_side;
            rep_side.sem = &cls.rep;
            rep_side.param_values = member.param_values;
            rep_side.arg_map = member.arg_perm;
            rep_side.int_arg_values.assign(cls.rep.int_args.size(), 1);
            const sym::EqResult result = sym::checkSemanticsEquiv(
                member_side, rep_side, ctx.options.equiv.budget);
            recordQuery(ctx, "EQ01", member.isa, member.name, result,
                        "member semantics disagree with " +
                            dict.className(c) +
                            " instantiated with the recorded parameters");
        }
    }
}

/** EQ02: one-op AutoLLVM module (representative view) vs. its lowered
 *  target instruction (hardware view). */
void
runEq02(EqContext &ctx)
{
    const AutoLLVMDict &dict = *ctx.input.dict;
    // Lowering selects by (class, ISA, parameters); querying the same
    // key repeatedly for type-only alias members would re-prove the
    // same program.
    std::set<std::tuple<int, std::string, std::vector<int64_t>>> done;
    for (int c = 0; c < dict.classCount(); ++c) {
        const EquivalenceClass &cls = dict.cls(c);
        for (size_t m = 0; m < cls.members.size(); ++m) {
            const ClassMember &member = cls.members[m];
            if (!matchesFilter(ctx.options.equiv, member.name))
                continue;
            if (!memberShapeOk(cls, member))
                continue;
            if (!done.insert({c, member.isa, member.param_values}).second)
                continue;
            AutoModule module;
            AutoInst call;
            call.op = {c, static_cast<int>(m)};
            for (size_t a = 0; a < cls.rep.bv_args.size(); ++a) {
                module.input_widths.push_back(cls.rep.argWidth(
                    static_cast<int>(a), member.param_values));
                call.args.push_back(ValueRef::input(static_cast<int>(a)));
            }
            call.int_args.assign(cls.rep.int_args.size(), 0);
            module.insts.push_back(std::move(call));
            module.result = 0;
            const LoweringResult lowered =
                lowerToTarget(module, dict, member.isa);
            if (!lowered.ok)
                continue; // XT04's finding, not ours.
            const sym::EqResult result = sym::checkLoweringEquiv(
                dict, module, lowered.program, ctx.options.equiv.budget);
            recordQuery(ctx, "EQ02", member.isa, member.name, result,
                        dict.className(c) +
                            " does not round-trip through its lowering "
                            "to " +
                            member.isa);
        }
    }
}

/** EQ03: macro-expanded programs vs. the Halide ops they implement.
 *  Windows are two machine registers wide so the multi-register
 *  result splice is exercised (a one-register window would make any
 *  splice permutation the identity). */
void
runEq03(EqContext &ctx)
{
    const AutoLLVMDict &dict = *ctx.input.dict;
    for (const IsaSemantics *sema : ctx.input.isas) {
        auto bits_it = ctx.options.vector_bits.find(sema->isa);
        if (bits_it == ctx.options.vector_bits.end())
            continue;
        const int vector_bits = bits_it->second;
        ExpanderOptions eopts;
        eopts.splice_skew = ctx.options.equiv.expander_splice_skew;
        MacroExpander expander(dict, sema->isa, vector_bits, eopts);
        // Register-sized lane arithmetic plus a widening cast: the
        // cast's output spans two registers, which is what exercises
        // the multi-register result splice.
        struct Window
        {
            const char *name;
            HExprPtr expr;
        };
        const Window windows[] = {
            {"add.16", hBin(HOp::Add, hInput(0, 16, vector_bits / 16),
                            hInput(1, 16, vector_bits / 16))},
            {"sub.8", hBin(HOp::Sub, hInput(0, 8, vector_bits / 8),
                           hInput(1, 8, vector_bits / 8))},
            {"sat_add_s.16",
             hBin(HOp::SatAddS, hInput(0, 16, vector_bits / 16),
                  hInput(1, 16, vector_bits / 16))},
            {"widen_s.8to16",
             hCast(hInput(0, 8, vector_bits / 8), 16, true)},
        };
        for (const Window &w : windows) {
            ExpandResult expanded = expander.expand(w.expr);
            if (!expanded.ok)
                continue; // Coverage holes are XT06's finding.
            const sym::EqResult result = sym::checkProgramEquiv(
                dict, expanded.program, w.expr, ctx.options.equiv.budget);
            recordQuery(ctx, "EQ03", sema->isa,
                        std::string("macro-expansion of ") + w.name, result,
                        "macro-expanded program disagrees with the " +
                            std::string(w.name) + " window it replaces");
        }
    }
}

/** EQ04: synthesize one small window per ISA and re-validate the
 *  result symbolically (the full-input check the CEGIS random-vector
 *  verification only samples). */
void
runEq04(EqContext &ctx)
{
    const AutoLLVMDict &dict = *ctx.input.dict;
    for (const IsaSemantics *sema : ctx.input.isas) {
        auto bits_it = ctx.options.vector_bits.find(sema->isa);
        if (bits_it == ctx.options.vector_bits.end())
            continue;
        const int ew = 16;
        const int lanes = bits_it->second / ew;
        const HExprPtr window =
            hBin(HOp::Add, hInput(0, ew, lanes), hInput(1, ew, lanes));
        SynthesisOptions sopts;
        sopts.timeout_seconds = 5.0;
        sopts.symbolic_verify = true;
        sopts.symbolic_budget = ctx.options.equiv.budget;
        const SynthesisResult synth =
            synthesizeWindow(dict, sema->isa, window, sopts);
        if (!synth.ok)
            continue; // Synthesis coverage is the benchmarks' story.
        const sym::EqResult result = sym::checkModuleEquiv(
            dict, synth.module, window, ctx.options.equiv.budget);
        recordQuery(ctx, "EQ04", sema->isa, "synthesized add.16 window",
                    result,
                    "synthesized module disagrees with its "
                    "specification window");
    }
}

} // namespace

void
runEquivPass(const VerifyInput &input, const VerifierOptions &options,
             DiagnosticReport &report)
{
    trace::TraceSpan span("analysis.pass.equiv");
    EquivStats local;
    EquivStats &stats = options.equiv.stats ? *options.equiv.stats : local;
    EqContext ctx{input, options, report, stats};

    if (runsRule(options.equiv, "EQ01"))
        runEq01(ctx);
    if (runsRule(options.equiv, "EQ02"))
        runEq02(ctx);
    if (runsRule(options.equiv, "EQ03"))
        runEq03(ctx);
    if (runsRule(options.equiv, "EQ04"))
        runEq04(ctx);

    span.setAttr("proved", static_cast<int64_t>(stats.totalProved()));
    span.setAttr("refuted", static_cast<int64_t>(stats.totalRefuted()));
    span.setAttr("unknown", static_cast<int64_t>(stats.totalUnknown()));
    metrics::counter("analysis.equiv.proved")
        .add(static_cast<uint64_t>(stats.totalProved()));
    metrics::counter("analysis.equiv.refuted")
        .add(static_cast<uint64_t>(stats.totalRefuted()));
    metrics::counter("analysis.equiv.unknown")
        .add(static_cast<uint64_t>(stats.totalUnknown()));
}

} // namespace analysis
} // namespace hydride
