/**
 * @file
 * Command-line driver behind the `hydride-verify` tool: loads the
 * spec database and AutoLLVM dictionary, runs the verifier passes,
 * renders diagnostics, and maps the result onto an exit status.
 *
 * Exit codes: 0 = clean (or warnings without --werror), 1 = errors
 * found (or warnings with --werror), 2 = usage error.
 */
#ifndef HYDRIDE_ANALYSIS_DRIVER_H
#define HYDRIDE_ANALYSIS_DRIVER_H

#include <iosfwd>
#include <string>
#include <vector>

namespace hydride {
namespace analysis {

/** Run the `hydride-verify` CLI. Arguments exclude argv[0]. */
int runVerifierCli(const std::vector<std::string> &args, std::ostream &out,
                   std::ostream &err);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DRIVER_H
