/**
 * @file
 * The `equiv` verifier pass: symbolic translation validation of the
 * pipeline's tables (EQ rules). Split from verifier.cpp because it
 * pulls in the whole symbolic engine plus the synthesizer.
 *
 * Rules:
 *  - EQ01 — every similarity-class member is equivalent to the class
 *    representative instantiated with the member's recorded parameter
 *    assignment (under the member's argument permutation).
 *  - EQ02 — every lowering-table entry round-trips: the AutoLLVM op
 *    (representative view) equals its lowered target instruction
 *    (hardware view) on all inputs.
 *  - EQ03 — macro-expansion fallback output is equivalent to the
 *    Halide op it replaces, including the multi-register splice.
 *  - EQ04 — CEGIS results re-validate symbolically against their
 *    specification windows.
 *
 * Verdicts: `refuted` findings are errors and carry a concretely
 * validated countermodel; `unknown` (budget) findings are warnings
 * and are tallied separately — never silently counted as passes.
 */
#ifndef HYDRIDE_ANALYSIS_EQUIV_PASS_H
#define HYDRIDE_ANALYSIS_EQUIV_PASS_H

#include "analysis/verifier.h"

namespace hydride {
namespace analysis {

/** Run the EQ rules; requires `input.dict`. */
void runEquivPass(const VerifyInput &input, const VerifierOptions &options,
                  DiagnosticReport &report);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_EQUIV_PASS_H
