#include "analysis/mutate.h"

namespace hydride {
namespace analysis {

const std::vector<MutationInfo> &
allMutations()
{
    static const std::vector<MutationInfo> mutations = {
        {"flip-width", "WF07",
         "double the declared element width so templates no longer match",
         false},
        {"extract-oob", "WF02",
         "re-extract the first template past the end of its source", false},
        {"shift-oob", "UB01",
         "left-shift the first template by its own full width", false},
        {"div-zero", "UB02",
         "divide the element width by constant zero", false},
        {"dead-arg", "DC01",
         "append a bitvector argument no template reads", false},
        {"template-count", "DC04",
         "append an unreachable duplicate template in Uniform mode", false},
        {"dangling-name", "XT01",
         "rename a class member so it matches no spec instruction", true},
        {"dup-lowering", "XT03",
         "duplicate a class member, making 1-1 lowering ambiguous", true},
        {"drop-lowering", "XT07",
         "remove a class member so its instruction has no dictionary entry",
         true},
    };
    return mutations;
}

const MutationInfo *
findMutation(const std::string &kind)
{
    for (const MutationInfo &m : allMutations())
        if (m.kind == kind)
            return &m;
    return nullptr;
}

namespace {

/** Deterministic victim pick: mid-table keeps the choice stable while
 *  avoiding any special first/last entries. */
template <typename T>
T &
midPick(std::vector<T> &v)
{
    return v[v.size() / 2];
}

} // namespace

std::string
mutateSemantics(IsaSemantics &sema, const std::string &kind)
{
    const MutationInfo *info = findMutation(kind);
    if (!info || info->on_dict || sema.insts.empty())
        return {};

    // Find an eligible victim near mid-table: needs a template, and
    // for dead-arg the liveness check must see the original args.
    const size_t start = sema.insts.size() / 2;
    for (size_t probe = 0; probe < sema.insts.size(); ++probe) {
        CanonicalSemantics &inst =
            sema.insts[(start + probe) % sema.insts.size()];
        if (inst.templates.empty() || !inst.elem_width)
            continue;

        if (kind == "flip-width") {
            inst.elem_width =
                intBin(IntBinOp::Mul, inst.elem_width, intConst(2));
            return inst.name;
        }
        if (kind == "extract-oob") {
            // extract(t, elem_width, elem_width): starts one past the
            // last bit of the elem_width-wide template value.
            inst.templates[0] = extract(inst.templates[0], inst.elem_width,
                                        inst.elem_width);
            return inst.name;
        }
        if (kind == "shift-oob") {
            // Shift an elem_width-wide value by elem_width bits.
            inst.templates[0] =
                bvBin(BVBinOp::Shl, inst.templates[0],
                      bvConst(inst.elem_width, inst.elem_width));
            return inst.name;
        }
        if (kind == "div-zero") {
            inst.elem_width =
                intBin(IntBinOp::Div, inst.elem_width, intConst(0));
            return inst.name;
        }
        if (kind == "dead-arg") {
            inst.bv_args.push_back({"__mut_dead", intConst(8)});
            return inst.name;
        }
        if (kind == "template-count") {
            if (inst.mode != TemplateMode::Uniform ||
                inst.templates.size() != 1)
                continue;
            inst.templates.push_back(inst.templates[0]);
            return inst.name;
        }
        return {};
    }
    return {};
}

std::string
mutateClasses(std::vector<EquivalenceClass> &classes,
              const std::string &kind)
{
    const MutationInfo *info = findMutation(kind);
    if (!info || !info->on_dict || classes.empty())
        return {};

    const size_t start = classes.size() / 2;
    for (size_t probe = 0; probe < classes.size(); ++probe) {
        EquivalenceClass &cls = classes[(start + probe) % classes.size()];
        if (cls.members.empty())
            continue;

        if (kind == "dangling-name") {
            ClassMember &victim = midPick(cls.members);
            const std::string original = victim.name;
            victim.name = "__mut_" + victim.name;
            return original;
        }
        if (kind == "dup-lowering") {
            cls.members.push_back(midPick(cls.members));
            return cls.members.back().name;
        }
        if (kind == "drop-lowering") {
            // Only classes with >1 member: removing the sole member
            // would leave an empty class, a different defect.
            if (cls.members.size() < 2)
                continue;
            const std::string victim = midPick(cls.members).name;
            cls.members.erase(cls.members.begin() +
                              static_cast<long>(cls.members.size() / 2));
            return victim;
        }
        return {};
    }
    return {};
}

} // namespace analysis
} // namespace hydride
