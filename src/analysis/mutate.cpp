#include "analysis/mutate.h"

#include "support/error.h"
#include "support/rng.h"

#include <memory>

namespace hydride {
namespace analysis {

const std::vector<MutationInfo> &
allMutations()
{
    static const std::vector<MutationInfo> mutations = {
        {"flip-width", "WF07",
         "double the declared element width so templates no longer match",
         false},
        {"extract-oob", "WF02",
         "re-extract the first template past the end of its source", false},
        {"shift-oob", "UB01",
         "left-shift the first template by its own full width", false},
        {"div-zero", "UB02",
         "divide the element width by constant zero", false},
        {"dead-arg", "DC01",
         "append a bitvector argument no template reads", false},
        // Redundancy defects: well-formed, semantics-preserving noise
        // that only the abstract-interpretation RA rules diagnose.
        {"lossless-sat", "RA01",
         "OR the first template with a saturating narrow whose source "
         "range provably fits the target width",
         false},
        {"dead-select", "RA02",
         "wrap the first template in a select whose condition is a "
         "constant comparison",
         false},
        {"noop-sat", "RA03",
         "OR the first template with a saturating add whose operand "
         "ranges can never saturate",
         false},
        {"template-count", "DC04",
         "append an unreachable duplicate template in Uniform mode", false},
        {"dangling-name", "XT01",
         "rename a class member so it matches no spec instruction", true},
        {"dup-lowering", "XT03",
         "duplicate a class member, making 1-1 lowering ambiguous", true},
        {"drop-lowering", "XT07",
         "remove a class member so its instruction has no dictionary entry",
         true},
        // Semantic-only defects: structurally well-formed tables whose
        // *meaning* is wrong. Only the symbolic EQ rules catch these.
        {"sat-swap", "EQ01",
         "replace a saturating add/sub in a class template with the "
         "wrapping form",
         true},
        {"operand-flip", "EQ02",
         "swap the first two slots of a lowering entry's argument "
         "permutation",
         true},
        {"splice-shift", "EQ03",
         "rotate the macro-expansion result splice by one register",
         false, true},
    };
    return mutations;
}

const MutationInfo *
findMutation(const std::string &kind)
{
    for (const MutationInfo &m : allMutations())
        if (m.kind == kind)
            return &m;
    return nullptr;
}

namespace {

/** Deterministic victim pick: mid-table keeps the choice stable while
 *  avoiding any special first/last entries. */
template <typename T>
T &
midPick(std::vector<T> &v)
{
    return v[v.size() / 2];
}

/** Rewrite the first saturating operation in `expr` to the wrapping
 *  form (saturating add/sub becomes plain add/sub; a saturating
 *  narrow becomes a plain truncation — the shape the spec parsers
 *  produce, since vendor pseudocode saturates via widen + clamp),
 *  leaving everything else shared. `done` stops the walk. */
ExprPtr
swapFirstSat(const ExprPtr &expr, bool &done)
{
    if (done)
        return expr;
    if (expr->kind == ExprKind::BVBin) {
        const auto op = static_cast<BVBinOp>(expr->value);
        if (op == BVBinOp::AddSatS || op == BVBinOp::AddSatU) {
            done = true;
            return bvBin(BVBinOp::Add, expr->kids[0], expr->kids[1]);
        }
        if (op == BVBinOp::SubSatS || op == BVBinOp::SubSatU) {
            done = true;
            return bvBin(BVBinOp::Sub, expr->kids[0], expr->kids[1]);
        }
    }
    if (expr->kind == ExprKind::BVCast) {
        const auto op = static_cast<BVCastOp>(expr->value);
        if (op == BVCastOp::SatNarrowS || op == BVCastOp::SatNarrowU) {
            done = true;
            auto node = std::make_shared<Expr>(*expr);
            node->value = static_cast<int64_t>(BVCastOp::Trunc);
            return node;
        }
    }
    std::vector<ExprPtr> kids;
    kids.reserve(expr->kids.size());
    bool changed = false;
    for (const ExprPtr &kid : expr->kids) {
        ExprPtr rebuilt = swapFirstSat(kid, done);
        changed = changed || rebuilt != kid;
        kids.push_back(std::move(rebuilt));
    }
    if (!changed)
        return expr;
    auto node = std::make_shared<Expr>(*expr);
    node->kids = std::move(kids);
    return node;
}

/** True when the two sides of the seeded defect really disagree on at
 *  least one of a few random inputs — keeps `--self-test`
 *  deterministic by never seeding a vacuous semantic mutation. */
bool
concretelyDiffers(const std::function<BitVector(
                      const std::vector<BitVector> &)> &a,
                  const std::function<BitVector(
                      const std::vector<BitVector> &)> &b,
                  const std::vector<int> &widths)
{
    Rng rng(0x5EED5EED);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<BitVector> args;
        args.reserve(widths.size());
        for (int w : widths)
            args.push_back(BitVector::random(std::max(w, 1), rng));
        try {
            if (a(args) != b(args))
                return true;
        } catch (const AssertionError &) {
            return false;
        }
    }
    return false;
}

/** Argument widths of a class representative under `params`. */
std::vector<int>
repArgWidths(const CanonicalSemantics &rep,
             const std::vector<int64_t> &params)
{
    std::vector<int> widths;
    widths.reserve(rep.bv_args.size());
    for (size_t a = 0; a < rep.bv_args.size(); ++a)
        widths.push_back(rep.argWidth(static_cast<int>(a), params));
    return widths;
}

} // namespace

std::string
mutateSemantics(IsaSemantics &sema, const std::string &kind)
{
    const MutationInfo *info = findMutation(kind);
    if (!info || info->on_dict || sema.insts.empty())
        return {};

    // Find an eligible victim near mid-table: needs a template, and
    // for dead-arg the liveness check must see the original args.
    const size_t start = sema.insts.size() / 2;
    for (size_t probe = 0; probe < sema.insts.size(); ++probe) {
        CanonicalSemantics &inst =
            sema.insts[(start + probe) % sema.insts.size()];
        if (inst.templates.empty() || !inst.elem_width)
            continue;

        if (kind == "flip-width") {
            inst.elem_width =
                intBin(IntBinOp::Mul, inst.elem_width, intConst(2));
            return inst.name;
        }
        if (kind == "extract-oob") {
            // extract(t, elem_width, elem_width): starts one past the
            // last bit of the elem_width-wide template value.
            inst.templates[0] = extract(inst.templates[0], inst.elem_width,
                                        inst.elem_width);
            return inst.name;
        }
        if (kind == "shift-oob") {
            // Shift an elem_width-wide value by elem_width bits.
            inst.templates[0] =
                bvBin(BVBinOp::Shl, inst.templates[0],
                      bvConst(inst.elem_width, inst.elem_width));
            return inst.name;
        }
        if (kind == "div-zero") {
            inst.elem_width =
                intBin(IntBinOp::Div, inst.elem_width, intConst(0));
            return inst.name;
        }
        if (kind == "dead-arg") {
            inst.bv_args.push_back({"__mut_dead", intConst(8)});
            return inst.name;
        }
        if (kind == "lossless-sat") {
            // t | satNarrowU(0_{ew+8} -> ew): the constant source
            // range [0, 0] always fits, so the narrow is provably a
            // trunc (RA01) while the OR with zero preserves meaning.
            ExprPtr wide = bvConst(
                intBin(IntBinOp::Add, inst.elem_width, intConst(8)),
                intConst(0));
            inst.templates[0] = bvBin(
                BVBinOp::Or, inst.templates[0],
                bvCast(BVCastOp::SatNarrowU, wide, inst.elem_width));
            return inst.name;
        }
        if (kind == "dead-select") {
            // select(0 <u 1, t, t): the condition is decided for every
            // lane and input, so one branch is provably dead (RA02).
            ExprPtr cond =
                bvCmp(BVCmpOp::Ult, bvConst(intConst(8), intConst(0)),
                      bvConst(intConst(8), intConst(1)));
            inst.templates[0] =
                select(cond, inst.templates[0], inst.templates[0]);
            return inst.name;
        }
        if (kind == "noop-sat") {
            // t | (0 +sat 0): the saturation point is unreachable for
            // these operand ranges (RA03); OR with zero preserves
            // meaning.
            ExprPtr zero = bvConst(inst.elem_width, intConst(0));
            inst.templates[0] =
                bvBin(BVBinOp::Or, inst.templates[0],
                      bvBin(BVBinOp::AddSatU, zero, zero));
            return inst.name;
        }
        if (kind == "template-count") {
            if (inst.mode != TemplateMode::Uniform ||
                inst.templates.size() != 1)
                continue;
            inst.templates.push_back(inst.templates[0]);
            return inst.name;
        }
        return {};
    }
    return {};
}

std::string
mutateClasses(std::vector<EquivalenceClass> &classes,
              const std::string &kind)
{
    const MutationInfo *info = findMutation(kind);
    if (!info || !info->on_dict || classes.empty())
        return {};

    const size_t start = classes.size() / 2;
    for (size_t probe = 0; probe < classes.size(); ++probe) {
        EquivalenceClass &cls = classes[(start + probe) % classes.size()];
        if (cls.members.empty())
            continue;

        if (kind == "dangling-name") {
            ClassMember &victim = midPick(cls.members);
            const std::string original = victim.name;
            victim.name = "__mut_" + victim.name;
            return original;
        }
        if (kind == "dup-lowering") {
            cls.members.push_back(midPick(cls.members));
            return cls.members.back().name;
        }
        if (kind == "drop-lowering") {
            // Only classes with >1 member: removing the sole member
            // would leave an empty class, a different defect.
            if (cls.members.size() < 2)
                continue;
            const std::string victim = midPick(cls.members).name;
            cls.members.erase(cls.members.begin() +
                              static_cast<long>(cls.members.size() / 2));
            return victim;
        }
        if (kind == "sat-swap") {
            if (cls.rep.templates.empty())
                continue;
            bool done = false;
            ExprPtr rewritten = swapFirstSat(cls.rep.templates[0], done);
            if (!done)
                continue;
            CanonicalSemantics mutated = cls.rep;
            mutated.templates[0] = rewritten;
            // Only seed when some member's concrete semantics really
            // disagree with the wrapped form (the saturation must be
            // reachable, or EQ01 would rightly prove equivalence).
            for (const ClassMember &member : cls.members) {
                if (member.param_values.size() != cls.rep.params.size())
                    continue;
                const std::vector<int> widths =
                    repArgWidths(cls.rep, member.param_values);
                const std::vector<int64_t> member_ints(
                    member.concrete.int_args.size(), 1);
                const std::vector<int64_t> rep_ints(
                    cls.rep.int_args.size(), 1);
                auto member_view =
                    [&](const std::vector<BitVector> &args) {
                        std::vector<BitVector> member_args(args.size(),
                                                           BitVector(1));
                        for (size_t k = 0; k < args.size(); ++k)
                            member_args[member.arg_perm.empty()
                                            ? k
                                            : member.arg_perm[k]] = args[k];
                        return member.concrete.evaluate(member_args, {},
                                                        member_ints);
                    };
                auto rep_view = [&](const std::vector<BitVector> &args) {
                    return evaluateWithParams(mutated, member.param_values,
                                              args, rep_ints);
                };
                if (concretelyDiffers(member_view, rep_view, widths)) {
                    cls.rep.templates[0] = rewritten;
                    return member.name;
                }
            }
            continue;
        }
        if (kind == "operand-flip") {
            const size_t nargs = cls.rep.bv_args.size();
            if (nargs < 2)
                continue;
            for (size_t m = 0; m < cls.members.size(); ++m) {
                ClassMember &member = cls.members[m];
                if (member.param_values.size() != cls.rep.params.size())
                    continue;
                // The lowering selector picks the *first* member with
                // a given (ISA, parameters); mutating a shadowed alias
                // would leave the emitted program untouched.
                bool selected = true;
                for (size_t e = 0; e < m && selected; ++e)
                    selected = cls.members[e].isa != member.isa ||
                               cls.members[e].param_values !=
                                   member.param_values;
                if (!selected)
                    continue;
                const std::vector<int> widths =
                    repArgWidths(cls.rep, member.param_values);
                if (widths[0] != widths[1])
                    continue;
                std::vector<int> perm = member.arg_perm;
                if (perm.empty())
                    for (size_t k = 0; k < nargs; ++k)
                        perm.push_back(static_cast<int>(k));
                if (perm.size() != nargs)
                    continue;
                std::vector<int> flipped = perm;
                std::swap(flipped[0], flipped[1]);
                const std::vector<int64_t> ints(
                    member.concrete.int_args.size(), 0);
                auto view_with = [&](const std::vector<int> &p) {
                    return [&, p](const std::vector<BitVector> &args) {
                        std::vector<BitVector> member_args(args.size(),
                                                           BitVector(1));
                        for (size_t k = 0; k < args.size(); ++k)
                            member_args[p[k]] = args[k];
                        return member.concrete.evaluate(member_args, {},
                                                        ints);
                    };
                };
                // The member must be asymmetric in the swapped slots,
                // or the flip is observationally a no-op.
                if (!concretelyDiffers(view_with(perm), view_with(flipped),
                                       widths))
                    continue;
                member.arg_perm = std::move(flipped);
                return member.name;
            }
            continue;
        }
        return {};
    }
    return {};
}

} // namespace analysis
} // namespace hydride
