#include "analysis/inst_verify.h"

#include "analysis/dataflow/abs_eval.h"
#include "analysis/expr_check.h"
#include "hir/bitvector.h"
#include "observability/journal/journal.h"
#include "observability/metrics.h"
#include "support/env.h"

#include <chrono>
#include <optional>
#include <set>
#include <utility>

namespace hydride {
namespace analysis {

namespace {

/**
 * One verification run over a single instruction. Diagnostics are
 * deduplicated per (rule, node): the (i, j) iteration space revisits
 * every template node once per lane, but a structural defect should
 * be reported once.
 */
class InstChecker
{
  public:
    InstChecker(const CanonicalSemantics &sem, unsigned rules,
                const InstVerifyOptions &options, DiagnosticReport &report)
        : sem_(sem), rules_(rules), options_(options), report_(report),
          params_(sem.defaultParamValues())
    {
        env_.param_values = &params_;
    }

    void
    run()
    {
        metrics::counter("analysis.verify.instructions").add();
        checkCounts();
        checkArgWidths();
        // The abstract pass runs before the per-lane enumeration so
        // that, when both prove the same defect at the same node, the
        // (rule, node) dedup keeps the abstract verdict — which may
        // carry the stronger every-lane severity.
        checkAbstract();
        checkTemplates();
        if (rules_ & kDeadCode)
            checkLiveness();
    }

  private:
    // ---- Reporting ---------------------------------------------------------

    void
    emit(Severity severity, const char *rule, const char *pass,
         const Expr *node, std::string message)
    {
        if (node && !dedup_.insert({node, rule}).second)
            return;
        Diagnostic diag;
        diag.severity = severity;
        diag.rule = rule;
        diag.pass = pass;
        diag.isa = sem_.isa;
        diag.instruction = sem_.name;
        if (node) {
            diag.loc = node->loc;
            if (!diag.loc.known() && !node->kids.empty()) {
                // Fall back to any location inside the offending tree.
                for (const auto &kid : node->kids) {
                    diag.loc = findSourceLoc(kid);
                    if (diag.loc.known())
                        break;
                }
            }
        }
        diag.message = std::move(message);
        report_.add(std::move(diag));
    }

    void
    wf(const char *rule, const Expr *node, std::string message)
    {
        if (rules_ & kWellFormed)
            emit(Severity::Error, rule, "wellformed", node,
                 std::move(message));
    }

    void
    ub(Severity severity, const char *rule, const Expr *node,
       std::string message)
    {
        if (rules_ & kUndefined)
            emit(severity, rule, "ub", node, std::move(message));
    }

    void
    dc(Severity severity, const char *rule, const Expr *node,
       std::string message)
    {
        if (rules_ & kDeadCode)
            emit(severity, rule, "deadcode", node, std::move(message));
    }

    void
    ra(const char *rule, const Expr *node, std::string message)
    {
        if (rules_ & kRange)
            emit(Severity::Warning, rule, "range", node, std::move(message));
    }

    // ---- Int helpers -------------------------------------------------------

    /** Evaluate an Int expr, reporting UB02/UB03 when it misbehaves. */
    CheckedInt
    evalIdx(const ExprPtr &expr, const char *what)
    {
        CheckedInt result = checkedEvalInt(expr, env_);
        if (result.status == CheckedInt::Status::DivZero) {
            ub(Severity::Error, "UB02", result.culprit,
               std::string(what) + " divides by a constant zero");
        } else if (result.status == CheckedInt::Status::Overflow) {
            ub(Severity::Error, "UB03", result.culprit,
               std::string(what) + " overflows signed 64-bit arithmetic");
        }
        return result;
    }

    // ---- Top-level structure -----------------------------------------------

    void
    checkCounts()
    {
        outer_ = evalIdx(sem_.outer_count, "outer loop count");
        inner_ = evalIdx(sem_.inner_count, "inner loop count");
        elem_width_ = evalIdx(sem_.elem_width, "element width");

        checkPositive(outer_, sem_.outer_count.get(), "outer loop count");
        checkPositive(inner_, sem_.inner_count.get(), "inner loop count");
        checkPositive(elem_width_, sem_.elem_width.get(), "element width");

        if (outer_.ok() && inner_.ok() && elem_width_.ok()) {
            const int64_t total =
                outer_.value * inner_.value * elem_width_.value;
            if (total > BitVector::kMaxWidth) {
                wf("WF08", sem_.elem_width.get(),
                   "output width " + std::to_string(total) +
                       " exceeds the " +
                       std::to_string(BitVector::kMaxWidth) +
                       "-bit BitVector limit");
            }
        }

        // Template count vs. selector mode (DC04): an under-provisioned
        // table crashes evaluation, an over-provisioned one means some
        // templates can never be selected.
        const int64_t tcount = static_cast<int64_t>(sem_.templates.size());
        if (tcount == 0) {
            wf("WF06", nullptr, "instruction has no templates");
            return;
        }
        switch (sem_.mode) {
          case TemplateMode::Uniform:
            if (tcount != 1) {
                dc(Severity::Warning, "DC04", sem_.templates[1].get(),
                   "Uniform mode with " + std::to_string(tcount) +
                       " templates; all but the first are unreachable");
            }
            break;
          case TemplateMode::ByInner:
            checkSelector(tcount, inner_, "inner count");
            break;
          case TemplateMode::ByOuter:
            checkSelector(tcount, outer_, "outer count");
            break;
        }
    }

    void
    checkSelector(int64_t tcount, const CheckedInt &count, const char *what)
    {
        if (!count.ok())
            return;
        if (count.value > tcount) {
            dc(Severity::Error, "DC04", nullptr,
               std::string(what) + " " + std::to_string(count.value) +
                   " exceeds the " + std::to_string(tcount) +
                   "-entry template table (evaluation would fail)");
        } else if (count.value < tcount) {
            dc(Severity::Warning, "DC04", nullptr,
               std::to_string(tcount - count.value) +
                   " template(s) beyond the " + what + " of " +
                   std::to_string(count.value) + " are unreachable");
        }
    }

    void
    checkPositive(const CheckedInt &value, const Expr *node, const char *what)
    {
        if (value.ok() && value.value < 1) {
            wf("WF03", node,
               std::string(what) + " is " + std::to_string(value.value) +
                   " (must be >= 1)");
        }
    }

    void
    checkArgWidths()
    {
        arg_widths_.clear();
        for (size_t a = 0; a < sem_.bv_args.size(); ++a) {
            const CheckedInt w = evalIdx(sem_.bv_args[a].width,
                                         "argument width");
            checkPositive(w, sem_.bv_args[a].width.get(), "argument width");
            if (w.ok() && w.value > BitVector::kMaxWidth) {
                wf("WF08", sem_.bv_args[a].width.get(),
                   "argument `" + sem_.bv_args[a].name + "` width " +
                       std::to_string(w.value) + " exceeds the BitVector limit");
            }
            arg_widths_.push_back(w);
        }
    }

    // ---- Per-(i, j) template checks ---------------------------------------

    void
    checkTemplates()
    {
        if (!outer_.ok() || !inner_.ok())
            return;
        if (options_.pedantic && (rules_ & kDeadCode)) {
            arg_read_.assign(sem_.bv_args.size(), {});
            for (size_t a = 0; a < sem_.bv_args.size(); ++a)
                if (arg_widths_[a].ok() && arg_widths_[a].value > 0 &&
                    arg_widths_[a].value <= BitVector::kMaxWidth)
                    arg_read_[a].assign(arg_widths_[a].value, false);
        }

        const int64_t outer = outer_.value;
        const int64_t inner = inner_.value;
        const int64_t cap = options_.max_outer_iters;
        for (int64_t i = 0; i < outer; ++i) {
            // Cap the lane enumeration but always check the last lane,
            // where out-of-bounds extracts typically surface.
            if (cap > 0 && i >= cap && i != outer - 1)
                continue;
            for (int64_t j = 0; j < inner; ++j) {
                const ExprPtr *tmpl = nullptr;
                switch (sem_.mode) {
                  case TemplateMode::Uniform:
                    tmpl = &sem_.templates[0];
                    break;
                  case TemplateMode::ByInner:
                    if (j >= static_cast<int64_t>(sem_.templates.size()))
                        continue; // DC04 already reported.
                    tmpl = &sem_.templates[j];
                    break;
                  case TemplateMode::ByOuter:
                    if (i >= static_cast<int64_t>(sem_.templates.size()))
                        continue;
                    tmpl = &sem_.templates[i];
                    break;
                }
                env_.loop_i = i;
                env_.loop_j = j;
                const CheckedInt w = widthOf(*tmpl);
                if (w.ok() && elem_width_.ok() && w.value != elem_width_.value) {
                    wf("WF07", tmpl->get(),
                       "template produces " + std::to_string(w.value) +
                           " bits but the declared element width is " +
                           std::to_string(elem_width_.value));
                }
            }
        }
    }

    // ---- Abstract-interpretation pass (full lane space) --------------------

    /**
     * Run the interval x known-bits product domain over every
     * reachable template once per selector unit, with the loop
     * variables abstracted to their whole ranges. One evaluation per
     * unit covers the *full* lane space, so UB01-UB04 verdicts no
     * longer depend on the `max_outer_iters` cap; the per-lane
     * fallback below is uncapped and only runs on positions where
     * the domains return no information.
     */
    void
    checkAbstract()
    {
        if (!(rules_ & (kUndefined | kRange)))
            return;
        if (!outer_.ok() || !inner_.ok() || sem_.templates.empty())
            return;
        const auto started = std::chrono::steady_clock::now();

        std::vector<std::optional<dataflow::AbsValue>> args;
        for (const CheckedInt &w : arg_widths_) {
            if (w.ok() && w.value >= 1 && w.value <= BitVector::kMaxWidth)
                args.emplace_back(absdom_.top(static_cast<int>(w.value)));
            else
                args.emplace_back(std::nullopt);
        }

        const int64_t outer = outer_.value;
        const int64_t inner = inner_.value;
        const int64_t tcount = static_cast<int64_t>(sem_.templates.size());
        auto runUnit = [&](const ExprPtr &tmpl, int64_t i_lo, int64_t i_hi,
                           int64_t j_lo, int64_t j_hi) {
            metrics::counter("analysis.range.units").add();
            ++range_units_;
            unit_ = {i_lo, i_hi, j_lo, j_hi};
            dataflow::AbsEnv aenv;
            aenv.ints.param_values = &params_;
            aenv.ints.i_lo = i_lo;
            aenv.ints.i_hi = i_hi;
            aenv.ints.j_lo = j_lo;
            aenv.ints.j_hi = j_hi;
            aenv.args = &args;
            dataflow::AbsVisitors vis;
            vis.bv = [this](const ExprPtr &node,
                            const std::optional<dataflow::AbsValue> &result,
                            const std::vector<std::optional<dataflow::AbsValue>>
                                &ops) { visitAbstractBV(node, result, ops); };
            vis.ints = [this](const ExprPtr &node,
                              const dataflow::IntRange &range) {
                visitAbstractInt(node, range);
            };
            dataflow::absEval(tmpl, aenv, vis);
        };
        switch (sem_.mode) {
          case TemplateMode::Uniform:
            runUnit(sem_.templates[0], 0, outer - 1, 0, inner - 1);
            break;
          case TemplateMode::ByInner:
            for (int64_t j = 0; j < inner && j < tcount; ++j)
                runUnit(sem_.templates[j], 0, outer - 1, j, j);
            break;
          case TemplateMode::ByOuter:
            for (int64_t i = 0; i < outer && i < tcount; ++i)
                runUnit(sem_.templates[i], i, i, 0, inner - 1);
            break;
        }

        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        metrics::histogram("analysis.range.time_ms",
                           metrics::logTimeMsBounds())
            .observe(ms);
        if (journal::enabled()) {
            auto fields = bjson::Value::makeObject();
            fields->set("pass", bjson::Value::makeString("range"));
            fields->set("isa", bjson::Value::makeString(sem_.isa));
            fields->set("instruction", bjson::Value::makeString(sem_.name));
            fields->set("time_ms", bjson::Value::makeNumber(ms));
            fields->set("units", bjson::Value::makeNumber(
                                     static_cast<double>(range_units_)));
            fields->set("facts", bjson::Value::makeNumber(
                                     static_cast<double>(range_facts_)));
            fields->set("fallback_lanes",
                        bjson::Value::makeNumber(
                            static_cast<double>(range_fallback_lanes_)));
            journal::emitEvent("analysis", fields);
        }
    }

    /** Enumerate every lane of the current unit (no cap). */
    template <typename F>
    void
    forEachUnitLane(F &&fn)
    {
        for (int64_t i = unit_.i_lo; i <= unit_.i_hi; ++i) {
            for (int64_t j = unit_.j_lo; j <= unit_.j_hi; ++j) {
                metrics::counter("analysis.range.fallback_lanes").add();
                ++range_fallback_lanes_;
                env_.loop_i = i;
                env_.loop_j = j;
                if (!fn())
                    return;
            }
        }
    }

    /** UB02/UB03 over Int positions: a must-divide-by-zero is proven
     *  directly; inconclusive may-flags fall back to uncapped
     *  enumeration of just this expression. */
    void
    visitAbstractInt(const ExprPtr &node, const dataflow::IntRange &r)
    {
        if (!(rules_ & kUndefined))
            return;
        if (r.must_divzero) {
            ub(Severity::Error, "UB02",
               r.divzero_at ? r.divzero_at : node.get(),
               "index arithmetic divides by zero on every lane");
            return;
        }
        if (!r.may_divzero && !r.may_overflow)
            return;
        forEachUnitLane([&] {
            const CheckedInt c = checkedEvalInt(node, env_);
            if (c.status == CheckedInt::Status::DivZero) {
                ub(Severity::Error, "UB02", c.culprit,
                   "index arithmetic divides by a constant zero");
                return false;
            }
            if (c.status == CheckedInt::Status::Overflow) {
                ub(Severity::Error, "UB03", c.culprit,
                   "index arithmetic overflows signed 64-bit arithmetic");
                return false;
            }
            return true;
        });
    }

    void
    visitAbstractBV(const ExprPtr &node,
                    const std::optional<dataflow::AbsValue> &result,
                    const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (result) {
            metrics::counter("analysis.range.facts").add();
            ++range_facts_;
        }
        switch (node->kind) {
          case ExprKind::BVBin: {
            const auto op = static_cast<BVBinOp>(node->value);
            if (op == BVBinOp::Shl || op == BVBinOp::LShr ||
                op == BVBinOp::AShr)
                checkShiftRange(node, ops);
            else if (op == BVBinOp::UDiv || op == BVBinOp::URem)
                checkDivRange(node, ops);
            else if (op == BVBinOp::AddSatU || op == BVBinOp::SubSatU ||
                     op == BVBinOp::AddSatS || op == BVBinOp::SubSatS)
                checkSatNoop(node, ops);
            break;
          }
          case ExprKind::BVCast:
            checkLosslessSat(node, result, ops);
            break;
          case ExprKind::Select:
            checkDeadSelect(node, ops);
            break;
          default:
            break;
        }
    }

    /** UB01 with the full lane space: Error when the amount is >= the
     *  width on every lane for every input, Warning when only some
     *  (enumerated) lanes trap. */
    void
    checkShiftRange(const ExprPtr &node,
                    const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (!(rules_ & kUndefined) || !ops[0] || !ops[1])
            return;
        const auto op = static_cast<BVBinOp>(node->value);
        const int w = ops[0]->width();
        const dataflow::Interval &amt = ops[1]->iv;
        const BitVector wbv =
            BitVector::fromUint(w, static_cast<uint64_t>(w));
        if (amt.hi.ult(wbv))
            return; // provably in range on every lane
        if (wbv.ule(amt.lo)) {
            ub(Severity::Error, "UB01", node.get(),
               std::string(bvBinOpName(op)) + " amount is >= the operand "
                   "width " + std::to_string(w) +
                   " on every lane (all bits shifted out)");
            return;
        }
        // Inconclusive: enumerate constant amounts lane by lane.
        const ExprPtr &amount = node->kids[1];
        if (amount->kind != ExprKind::BVConst)
            return;
        int64_t bad = 0, total = 0, unknown = 0;
        forEachUnitLane([&] {
            ++total;
            const CheckedInt v = checkedEvalInt(amount->kids[1], env_);
            if (!v.ok())
                ++unknown;
            else if (v.value < 0 || v.value >= w)
                ++bad;
            return true;
        });
        if (bad == 0)
            return;
        if (bad == total) {
            ub(Severity::Error, "UB01", node.get(),
               std::string(bvBinOpName(op)) + " shifts out every bit of a " +
                   std::to_string(w) + "-bit value on every lane");
        } else {
            ub(Severity::Warning, "UB01", node.get(),
               std::string(bvBinOpName(op)) + " shifts out every bit of a " +
                   std::to_string(w) + "-bit value on " +
                   std::to_string(bad) + " of " + std::to_string(total) +
                   " lane(s)" +
                   (unknown ? " (" + std::to_string(unknown) +
                                  " lane(s) not statically known)"
                            : ""));
        }
    }

    /** UB04 with the full lane space (same severity policy as UB01). */
    void
    checkDivRange(const ExprPtr &node,
                  const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (!(rules_ & kUndefined) || !ops[1])
            return;
        const auto op = static_cast<BVBinOp>(node->value);
        const dataflow::AbsValue &den = *ops[1];
        const BitVector zero = BitVector::fromUint(den.width(), 0);
        if (!den.containsConcrete(zero))
            return; // provably nonzero on every lane
        if (den.iv.hi.isZero()) {
            ub(Severity::Error, "UB04", node.get(),
               std::string(bvBinOpName(op)) + " by a bitvector that is "
                   "zero on every lane (defined as all-ones, almost "
                   "certainly unintended)");
            return;
        }
        const ExprPtr &denom = node->kids[1];
        if (denom->kind != ExprKind::BVConst)
            return;
        int64_t bad = 0, total = 0;
        forEachUnitLane([&] {
            ++total;
            const CheckedInt v = checkedEvalInt(denom->kids[1], env_);
            if (v.ok() && v.value == 0)
                ++bad;
            return true;
        });
        if (bad == 0)
            return;
        ub(bad == total ? Severity::Error : Severity::Warning, "UB04",
           node.get(),
           std::string(bvBinOpName(op)) +
               " by a constant-zero bitvector on " + std::to_string(bad) +
               " of " + std::to_string(total) +
               " lane(s) (defined as all-ones, almost certainly "
               "unintended)");
    }

    /** RA03: saturating arithmetic whose operand ranges prove it can
     *  never saturate (equivalent to the plain wrap-around op). */
    void
    checkSatNoop(const ExprPtr &node,
                 const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (!(rules_ & kRange) || !ops[0] || !ops[1])
            return;
        const auto op = static_cast<BVBinOp>(node->value);
        const dataflow::Interval &a = ops[0]->iv;
        const dataflow::Interval &b = ops[1]->iv;
        const int w = ops[0]->width();
        bool noop = false;
        const char *plain = nullptr;
        if (op == BVBinOp::AddSatU) {
            // No carry out of the top corner => no lane can saturate.
            noop = !a.hi.add(b.hi).ult(a.hi);
            plain = "add";
        } else if (op == BVBinOp::SubSatU) {
            noop = b.hi.ule(a.lo);
            plain = "sub";
        } else {
            if (a.crossesSigned() || b.crossesSigned() ||
                w + 1 > BitVector::kMaxWidth)
                return;
            // Evaluate the corners in w+1 bits, where signed add/sub
            // of w-bit values cannot wrap, and compare against the
            // w-bit signed range.
            const BitVector lo =
                op == BVBinOp::AddSatS
                    ? a.smin().sext(w + 1).add(b.smin().sext(w + 1))
                    : a.smin().sext(w + 1).sub(b.smax().sext(w + 1));
            const BitVector hi =
                op == BVBinOp::AddSatS
                    ? a.smax().sext(w + 1).add(b.smax().sext(w + 1))
                    : a.smax().sext(w + 1).sub(b.smin().sext(w + 1));
            const BitVector min_w =
                BitVector::allOnes(2).zext(w + 1).shl(w - 1);
            const BitVector max_w = min_w.bvnot();
            noop = min_w.sle(lo) && hi.sle(max_w);
            plain = op == BVBinOp::AddSatS ? "add" : "sub";
        }
        if (noop) {
            ra("RA03", node.get(),
               std::string(bvBinOpName(op)) +
                   " can never saturate for these operand ranges; "
                   "equivalent to plain " + plain);
        }
    }

    /** RA01: a saturating narrow whose source range already fits the
     *  target width (round-trips exactly at both corners), making it
     *  equivalent to a plain trunc. */
    void
    checkLosslessSat(const ExprPtr &node,
                     const std::optional<dataflow::AbsValue> &result,
                     const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (!(rules_ & kRange) || !ops[0] || !result)
            return;
        const auto op = static_cast<BVCastOp>(node->value);
        if (op != BVCastOp::SatNarrowS && op != BVCastOp::SatNarrowU)
            return;
        const int sw = ops[0]->width();
        const int nw = result->width();
        if (nw >= sw)
            return;
        const dataflow::Interval &a = ops[0]->iv;
        // A non-crossing interval is ordered consistently in both the
        // signed and unsigned orders, so round-tripping exactly at
        // both corners proves the (monotone) clamp is the identity on
        // the whole range.
        if (a.crossesSigned())
            return;
        auto roundTrips = [&](const BitVector &v) {
            if (op == BVCastOp::SatNarrowS)
                return v.satNarrowS(nw).sext(sw) == v;
            return v.satNarrowU(nw).zext(sw) == v;
        };
        if (roundTrips(a.smin()) && roundTrips(a.smax())) {
            ra("RA01", node.get(),
               std::string(bvCastOpName(op)) + " to " + std::to_string(nw) +
                   " bits never saturates for this operand range; "
                   "equivalent to a plain trunc");
        }
    }

    /** RA02: a select whose condition the domains decide for every
     *  lane and every input — one branch is dead. */
    void
    checkDeadSelect(const ExprPtr &node,
                    const std::vector<std::optional<dataflow::AbsValue>> &ops)
    {
        if (!(rules_ & kRange) || ops.empty() || !ops[0])
            return;
        if (ops[0]->width() != 1)
            return; // WF04's business
        const int taken = absdom_.knownBool(*ops[0]);
        if (taken < 0)
            return;
        ra("RA02", node.get(),
           std::string("select condition is always ") +
               (taken ? "true" : "false") + "; the " +
               (taken ? "else" : "then") + " branch is dead");
    }

    /**
     * Infer the concrete width of a BV-typed node under the current
     * (i, j), enforcing the operator contracts of expr.h along the
     * way. Unknown widths (immediate-dependent, holes) propagate
     * without complaint.
     */
    CheckedInt
    widthOf(const ExprPtr &expr)
    {
        const Expr *node = expr.get();
        switch (expr->kind) {
          case ExprKind::ArgBV: {
            const int64_t index = expr->value;
            if (index < 0 ||
                index >= static_cast<int64_t>(sem_.bv_args.size())) {
                wf("WF09", node,
                   "argument index " + std::to_string(index) +
                       " out of range (instruction has " +
                       std::to_string(sem_.bv_args.size()) + " arguments)");
                return CheckedInt::unknown();
            }
            return arg_widths_[index];
          }
          case ExprKind::BVConst: {
            const CheckedInt w = evalIdx(expr->kids[0], "constant width");
            checkWidthValue(w, node, "constant");
            return w;
          }
          case ExprKind::BVBin: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   std::string(bvBinOpName(
                       static_cast<BVBinOp>(expr->value))) +
                       " operand widths differ: " + std::to_string(a.value) +
                       " vs " + std::to_string(b.value));
            }
            checkShift(expr, a);
            checkBVDiv(expr);
            return a.ok() ? a : b;
          }
          case ExprKind::BVUn:
            return widthOf(expr->kids[0]);
          case ExprKind::BVCast: {
            const CheckedInt src = widthOf(expr->kids[0]);
            const CheckedInt dst = evalIdx(expr->kids[1], "cast width");
            checkWidthValue(dst, node, "cast target");
            if (src.ok() && dst.ok()) {
                const auto op = static_cast<BVCastOp>(expr->value);
                const bool widening =
                    op == BVCastOp::SExt || op == BVCastOp::ZExt;
                if (widening && dst.value < src.value) {
                    wf("WF05", node,
                       std::string(bvCastOpName(op)) + " narrows from " +
                           std::to_string(src.value) + " to " +
                           std::to_string(dst.value) + " bits");
                } else if (!widening && dst.value > src.value) {
                    wf("WF05", node,
                       std::string(bvCastOpName(op)) + " widens from " +
                           std::to_string(src.value) + " to " +
                           std::to_string(dst.value) + " bits");
                }
            }
            return dst;
          }
          case ExprKind::Extract: {
            const CheckedInt base = widthOf(expr->kids[0]);
            const CheckedInt low = evalIdx(expr->kids[1], "extract low index");
            const CheckedInt width = evalIdx(expr->kids[2], "extract width");
            checkWidthValue(width, node, "extract");
            if (low.ok() && low.value < 0) {
                wf("WF02", node,
                   "extract low index " + std::to_string(low.value) +
                       " is negative");
            }
            if (base.ok() && low.ok() && width.ok() && low.value >= 0 &&
                width.value >= 1 && low.value + width.value > base.value) {
                wf("WF02", node,
                   "extract of bits [" + std::to_string(low.value) + ", " +
                       std::to_string(low.value + width.value) +
                       ") exceeds the " + std::to_string(base.value) +
                       "-bit operand");
            }
            recordRead(expr->kids[0], low, width, base);
            return width;
          }
          case ExprKind::Concat: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok()) {
                const int64_t total = a.value + b.value;
                if (total > BitVector::kMaxWidth) {
                    wf("WF08", node,
                       "concat width " + std::to_string(total) +
                           " exceeds the BitVector limit");
                }
                return CheckedInt::of(total);
            }
            return CheckedInt::unknown();
          }
          case ExprKind::BVCmp: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   "comparison operand widths differ: " +
                       std::to_string(a.value) + " vs " +
                       std::to_string(b.value));
            }
            return CheckedInt::of(1);
          }
          case ExprKind::Select: {
            const CheckedInt cond = widthOf(expr->kids[0]);
            if (cond.ok() && cond.value != 1) {
                wf("WF04", node,
                   "select condition is " + std::to_string(cond.value) +
                       " bits wide (must be 1)");
            }
            const CheckedInt a = widthOf(expr->kids[1]);
            const CheckedInt b = widthOf(expr->kids[2]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   "select branch widths differ: " + std::to_string(a.value) +
                       " vs " + std::to_string(b.value));
            }
            return a.ok() ? a : b;
          }
          case ExprKind::Hole:
            return CheckedInt::unknown();
          default:
            // Int-typed node in BV position.
            wf("WF06", node, "integer-typed node used as a bitvector");
            return CheckedInt::unknown();
        }
    }

    void
    checkWidthValue(const CheckedInt &w, const Expr *node, const char *what)
    {
        if (w.ok() && w.value < 1) {
            wf("WF03", node,
               std::string(what) + " width is " + std::to_string(w.value) +
                   " (must be >= 1)");
        }
        if (w.ok() && w.value > BitVector::kMaxWidth) {
            wf("WF08", node,
               std::string(what) + " width " + std::to_string(w.value) +
                   " exceeds the BitVector limit");
        }
    }

    /** UB01: shift amount provably >= the shifted operand's width. */
    void
    checkShift(const ExprPtr &expr, const CheckedInt &operand_width)
    {
        const auto op = static_cast<BVBinOp>(expr->value);
        if (op != BVBinOp::Shl && op != BVBinOp::LShr && op != BVBinOp::AShr)
            return;
        const ExprPtr &amount = expr->kids[1];
        if (amount->kind != ExprKind::BVConst)
            return;
        const CheckedInt value = checkedEvalInt(amount->kids[1], env_);
        if (value.ok() && operand_width.ok() &&
            (value.value >= operand_width.value || value.value < 0)) {
            ub(Severity::Warning, "UB01", expr.get(),
               std::string(bvBinOpName(op)) + " by constant " +
                   std::to_string(value.value) + " shifts out every bit of a " +
                   std::to_string(operand_width.value) + "-bit value");
        }
    }

    /** UB04: bitvector division by a constant zero (defined as
     *  all-ones by SMT-LIB, but a strong spec-bug signal). */
    void
    checkBVDiv(const ExprPtr &expr)
    {
        const auto op = static_cast<BVBinOp>(expr->value);
        if (op != BVBinOp::UDiv && op != BVBinOp::URem)
            return;
        const ExprPtr &den = expr->kids[1];
        if (den->kind != ExprKind::BVConst)
            return;
        const CheckedInt value = checkedEvalInt(den->kids[1], env_);
        if (value.ok() && value.value == 0) {
            ub(Severity::Warning, "UB04", expr.get(),
               std::string(bvBinOpName(op)) +
                   " by a constant-zero bitvector (defined as all-ones, "
                   "almost certainly unintended)");
        }
    }

    /** Track which input bits the templates read (pedantic DC05). */
    void
    recordRead(const ExprPtr &base, const CheckedInt &low,
               const CheckedInt &width, const CheckedInt &base_width)
    {
        if (arg_read_.empty() || base->kind != ExprKind::ArgBV)
            return;
        const int64_t index = base->value;
        if (index < 0 || index >= static_cast<int64_t>(arg_read_.size()))
            return;
        auto &bits = arg_read_[index];
        if (bits.empty())
            return;
        if (!low.ok() || !width.ok()) {
            // Unknown range: assume the whole argument is live.
            bits.assign(bits.size(), true);
            return;
        }
        (void)base_width;
        for (int64_t b = low.value;
             b < low.value + width.value &&
             b < static_cast<int64_t>(bits.size());
             ++b) {
            if (b >= 0)
                bits[b] = true;
        }
    }

    // ---- Liveness ----------------------------------------------------------

    void
    checkLiveness()
    {
        std::vector<ExprPtr> nodes;
        for (const auto &tmpl : sem_.templates)
            collectNodes(tmpl, nodes);
        // Quantities referenced outside the templates (loop counts,
        // widths) keep parameters alive but not arguments: an argument
        // only matters if an element template can read it.
        std::vector<ExprPtr> structural;
        collectNodes(sem_.outer_count, structural);
        collectNodes(sem_.inner_count, structural);
        collectNodes(sem_.elem_width, structural);
        for (const auto &arg : sem_.bv_args)
            collectNodes(arg.width, structural);

        std::set<int64_t> used_args;
        std::set<int64_t> used_params;
        std::set<std::string> used_named;
        auto scan = [&](const std::vector<ExprPtr> &list, bool args_count) {
            for (const auto &node : list) {
                if (node->kind == ExprKind::ArgBV && args_count)
                    used_args.insert(node->value);
                else if (node->kind == ExprKind::Param)
                    used_params.insert(node->value);
                else if (node->kind == ExprKind::NamedVar)
                    used_named.insert(node->name);
            }
        };
        scan(nodes, true);
        scan(structural, false);

        for (size_t a = 0; a < sem_.bv_args.size(); ++a) {
            if (!used_args.count(static_cast<int64_t>(a))) {
                dc(Severity::Warning, "DC01", nullptr,
                   "bitvector argument `" + sem_.bv_args[a].name +
                       "` never influences the output");
            }
        }
        for (size_t p = 0; p < sem_.params.size(); ++p) {
            if (!used_params.count(static_cast<int64_t>(p))) {
                dc(Severity::Warning, "DC02", nullptr,
                   "parameter `" + sem_.params[p].name +
                       "` is never referenced");
            }
        }
        for (const auto &imm : sem_.int_args) {
            if (!used_named.count(imm)) {
                dc(Severity::Warning, "DC03", nullptr,
                   "integer immediate `" + imm + "` is never referenced");
            }
        }
        // Unbound named variables: at canonical level every NamedVar
        // must be a declared immediate.
        for (const auto &node : nodes) {
            if (node->kind != ExprKind::NamedVar)
                continue;
            bool declared = false;
            for (const auto &imm : sem_.int_args)
                declared |= imm == node->name;
            if (!declared) {
                wf("WF06", node.get(),
                   "named variable `" + node->name +
                       "` is not a declared immediate");
            }
        }

        if (options_.pedantic) {
            for (size_t a = 0; a < arg_read_.size(); ++a) {
                const auto &bits = arg_read_[a];
                if (bits.empty() ||
                    !used_args.count(static_cast<int64_t>(a)))
                    continue;
                int64_t unread = 0;
                for (bool b : bits)
                    unread += b ? 0 : 1;
                if (unread > 0) {
                    dc(Severity::Note, "DC05", nullptr,
                       "argument `" + sem_.bv_args[a].name + "`: " +
                           std::to_string(unread) + " of " +
                           std::to_string(bits.size()) +
                           " input bits are never read");
                }
            }
        }
    }

    const CanonicalSemantics &sem_;
    const unsigned rules_;
    const InstVerifyOptions &options_;
    DiagnosticReport &report_;
    std::vector<int64_t> params_;
    CheckEnv env_;
    CheckedInt outer_;
    CheckedInt inner_;
    CheckedInt elem_width_;
    std::vector<CheckedInt> arg_widths_;
    /** Per-argument read bitmap (pedantic DC05 only). */
    std::vector<std::vector<bool>> arg_read_;
    std::set<std::pair<const Expr *, const char *>> dedup_;
    /** Lane ranges of the selector unit checkAbstract is visiting. */
    struct LaneRange
    {
        int64_t i_lo = 0, i_hi = -1, j_lo = 0, j_hi = -1;
    } unit_;
    dataflow::ProductDomain absdom_;
    /** Per-instruction tallies mirrored into the `analysis` journal
     *  event (the metrics counters are process-wide). */
    long range_units_ = 0;
    long range_facts_ = 0;
    long range_fallback_lanes_ = 0;
};

} // namespace

void
verifyInstruction(const CanonicalSemantics &sem, unsigned rules,
                  const InstVerifyOptions &options, DiagnosticReport &report)
{
    InstChecker(sem, rules, options, report).run();
}

bool
loadTimeVerifyEnabled()
{
    const env::Raw knob = env::raw("HYDRIDE_VERIFY");
    if (knob.set && !knob.value.empty())
        return knob.value != "0";
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace analysis
} // namespace hydride
