#include "analysis/inst_verify.h"

#include "analysis/expr_check.h"
#include "hir/bitvector.h"
#include "observability/metrics.h"
#include "support/env.h"

#include <set>
#include <utility>

namespace hydride {
namespace analysis {

namespace {

/**
 * One verification run over a single instruction. Diagnostics are
 * deduplicated per (rule, node): the (i, j) iteration space revisits
 * every template node once per lane, but a structural defect should
 * be reported once.
 */
class InstChecker
{
  public:
    InstChecker(const CanonicalSemantics &sem, unsigned rules,
                const InstVerifyOptions &options, DiagnosticReport &report)
        : sem_(sem), rules_(rules), options_(options), report_(report),
          params_(sem.defaultParamValues())
    {
        env_.param_values = &params_;
    }

    void
    run()
    {
        metrics::counter("analysis.verify.instructions").add();
        checkCounts();
        checkArgWidths();
        checkTemplates();
        if (rules_ & kDeadCode)
            checkLiveness();
    }

  private:
    // ---- Reporting ---------------------------------------------------------

    void
    emit(Severity severity, const char *rule, const char *pass,
         const Expr *node, std::string message)
    {
        if (node && !dedup_.insert({node, rule}).second)
            return;
        Diagnostic diag;
        diag.severity = severity;
        diag.rule = rule;
        diag.pass = pass;
        diag.isa = sem_.isa;
        diag.instruction = sem_.name;
        if (node) {
            diag.loc = node->loc;
            if (!diag.loc.known() && !node->kids.empty()) {
                // Fall back to any location inside the offending tree.
                for (const auto &kid : node->kids) {
                    diag.loc = findSourceLoc(kid);
                    if (diag.loc.known())
                        break;
                }
            }
        }
        diag.message = std::move(message);
        report_.add(std::move(diag));
    }

    void
    wf(const char *rule, const Expr *node, std::string message)
    {
        if (rules_ & kWellFormed)
            emit(Severity::Error, rule, "wellformed", node,
                 std::move(message));
    }

    void
    ub(Severity severity, const char *rule, const Expr *node,
       std::string message)
    {
        if (rules_ & kUndefined)
            emit(severity, rule, "ub", node, std::move(message));
    }

    void
    dc(Severity severity, const char *rule, const Expr *node,
       std::string message)
    {
        if (rules_ & kDeadCode)
            emit(severity, rule, "deadcode", node, std::move(message));
    }

    // ---- Int helpers -------------------------------------------------------

    /** Evaluate an Int expr, reporting UB02/UB03 when it misbehaves. */
    CheckedInt
    evalIdx(const ExprPtr &expr, const char *what)
    {
        CheckedInt result = checkedEvalInt(expr, env_);
        if (result.status == CheckedInt::Status::DivZero) {
            ub(Severity::Error, "UB02", result.culprit,
               std::string(what) + " divides by a constant zero");
        } else if (result.status == CheckedInt::Status::Overflow) {
            ub(Severity::Error, "UB03", result.culprit,
               std::string(what) + " overflows signed 64-bit arithmetic");
        }
        return result;
    }

    // ---- Top-level structure -----------------------------------------------

    void
    checkCounts()
    {
        outer_ = evalIdx(sem_.outer_count, "outer loop count");
        inner_ = evalIdx(sem_.inner_count, "inner loop count");
        elem_width_ = evalIdx(sem_.elem_width, "element width");

        checkPositive(outer_, sem_.outer_count.get(), "outer loop count");
        checkPositive(inner_, sem_.inner_count.get(), "inner loop count");
        checkPositive(elem_width_, sem_.elem_width.get(), "element width");

        if (outer_.ok() && inner_.ok() && elem_width_.ok()) {
            const int64_t total =
                outer_.value * inner_.value * elem_width_.value;
            if (total > BitVector::kMaxWidth) {
                wf("WF08", sem_.elem_width.get(),
                   "output width " + std::to_string(total) +
                       " exceeds the " +
                       std::to_string(BitVector::kMaxWidth) +
                       "-bit BitVector limit");
            }
        }

        // Template count vs. selector mode (DC04): an under-provisioned
        // table crashes evaluation, an over-provisioned one means some
        // templates can never be selected.
        const int64_t tcount = static_cast<int64_t>(sem_.templates.size());
        if (tcount == 0) {
            wf("WF06", nullptr, "instruction has no templates");
            return;
        }
        switch (sem_.mode) {
          case TemplateMode::Uniform:
            if (tcount != 1) {
                dc(Severity::Warning, "DC04", sem_.templates[1].get(),
                   "Uniform mode with " + std::to_string(tcount) +
                       " templates; all but the first are unreachable");
            }
            break;
          case TemplateMode::ByInner:
            checkSelector(tcount, inner_, "inner count");
            break;
          case TemplateMode::ByOuter:
            checkSelector(tcount, outer_, "outer count");
            break;
        }
    }

    void
    checkSelector(int64_t tcount, const CheckedInt &count, const char *what)
    {
        if (!count.ok())
            return;
        if (count.value > tcount) {
            dc(Severity::Error, "DC04", nullptr,
               std::string(what) + " " + std::to_string(count.value) +
                   " exceeds the " + std::to_string(tcount) +
                   "-entry template table (evaluation would fail)");
        } else if (count.value < tcount) {
            dc(Severity::Warning, "DC04", nullptr,
               std::to_string(tcount - count.value) +
                   " template(s) beyond the " + what + " of " +
                   std::to_string(count.value) + " are unreachable");
        }
    }

    void
    checkPositive(const CheckedInt &value, const Expr *node, const char *what)
    {
        if (value.ok() && value.value < 1) {
            wf("WF03", node,
               std::string(what) + " is " + std::to_string(value.value) +
                   " (must be >= 1)");
        }
    }

    void
    checkArgWidths()
    {
        arg_widths_.clear();
        for (size_t a = 0; a < sem_.bv_args.size(); ++a) {
            const CheckedInt w = evalIdx(sem_.bv_args[a].width,
                                         "argument width");
            checkPositive(w, sem_.bv_args[a].width.get(), "argument width");
            if (w.ok() && w.value > BitVector::kMaxWidth) {
                wf("WF08", sem_.bv_args[a].width.get(),
                   "argument `" + sem_.bv_args[a].name + "` width " +
                       std::to_string(w.value) + " exceeds the BitVector limit");
            }
            arg_widths_.push_back(w);
        }
    }

    // ---- Per-(i, j) template checks ---------------------------------------

    void
    checkTemplates()
    {
        if (!outer_.ok() || !inner_.ok())
            return;
        if (options_.pedantic && (rules_ & kDeadCode)) {
            arg_read_.assign(sem_.bv_args.size(), {});
            for (size_t a = 0; a < sem_.bv_args.size(); ++a)
                if (arg_widths_[a].ok() && arg_widths_[a].value > 0 &&
                    arg_widths_[a].value <= BitVector::kMaxWidth)
                    arg_read_[a].assign(arg_widths_[a].value, false);
        }

        const int64_t outer = outer_.value;
        const int64_t inner = inner_.value;
        const int64_t cap = options_.max_outer_iters;
        for (int64_t i = 0; i < outer; ++i) {
            // Cap the lane enumeration but always check the last lane,
            // where out-of-bounds extracts typically surface.
            if (cap > 0 && i >= cap && i != outer - 1)
                continue;
            for (int64_t j = 0; j < inner; ++j) {
                const ExprPtr *tmpl = nullptr;
                switch (sem_.mode) {
                  case TemplateMode::Uniform:
                    tmpl = &sem_.templates[0];
                    break;
                  case TemplateMode::ByInner:
                    if (j >= static_cast<int64_t>(sem_.templates.size()))
                        continue; // DC04 already reported.
                    tmpl = &sem_.templates[j];
                    break;
                  case TemplateMode::ByOuter:
                    if (i >= static_cast<int64_t>(sem_.templates.size()))
                        continue;
                    tmpl = &sem_.templates[i];
                    break;
                }
                env_.loop_i = i;
                env_.loop_j = j;
                const CheckedInt w = widthOf(*tmpl);
                if (w.ok() && elem_width_.ok() && w.value != elem_width_.value) {
                    wf("WF07", tmpl->get(),
                       "template produces " + std::to_string(w.value) +
                           " bits but the declared element width is " +
                           std::to_string(elem_width_.value));
                }
            }
        }
    }

    /**
     * Infer the concrete width of a BV-typed node under the current
     * (i, j), enforcing the operator contracts of expr.h along the
     * way. Unknown widths (immediate-dependent, holes) propagate
     * without complaint.
     */
    CheckedInt
    widthOf(const ExprPtr &expr)
    {
        const Expr *node = expr.get();
        switch (expr->kind) {
          case ExprKind::ArgBV: {
            const int64_t index = expr->value;
            if (index < 0 ||
                index >= static_cast<int64_t>(sem_.bv_args.size())) {
                wf("WF09", node,
                   "argument index " + std::to_string(index) +
                       " out of range (instruction has " +
                       std::to_string(sem_.bv_args.size()) + " arguments)");
                return CheckedInt::unknown();
            }
            return arg_widths_[index];
          }
          case ExprKind::BVConst: {
            const CheckedInt w = evalIdx(expr->kids[0], "constant width");
            checkWidthValue(w, node, "constant");
            return w;
          }
          case ExprKind::BVBin: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   std::string(bvBinOpName(
                       static_cast<BVBinOp>(expr->value))) +
                       " operand widths differ: " + std::to_string(a.value) +
                       " vs " + std::to_string(b.value));
            }
            checkShift(expr, a);
            checkBVDiv(expr);
            return a.ok() ? a : b;
          }
          case ExprKind::BVUn:
            return widthOf(expr->kids[0]);
          case ExprKind::BVCast: {
            const CheckedInt src = widthOf(expr->kids[0]);
            const CheckedInt dst = evalIdx(expr->kids[1], "cast width");
            checkWidthValue(dst, node, "cast target");
            if (src.ok() && dst.ok()) {
                const auto op = static_cast<BVCastOp>(expr->value);
                const bool widening =
                    op == BVCastOp::SExt || op == BVCastOp::ZExt;
                if (widening && dst.value < src.value) {
                    wf("WF05", node,
                       std::string(bvCastOpName(op)) + " narrows from " +
                           std::to_string(src.value) + " to " +
                           std::to_string(dst.value) + " bits");
                } else if (!widening && dst.value > src.value) {
                    wf("WF05", node,
                       std::string(bvCastOpName(op)) + " widens from " +
                           std::to_string(src.value) + " to " +
                           std::to_string(dst.value) + " bits");
                }
            }
            return dst;
          }
          case ExprKind::Extract: {
            const CheckedInt base = widthOf(expr->kids[0]);
            const CheckedInt low = evalIdx(expr->kids[1], "extract low index");
            const CheckedInt width = evalIdx(expr->kids[2], "extract width");
            checkWidthValue(width, node, "extract");
            if (low.ok() && low.value < 0) {
                wf("WF02", node,
                   "extract low index " + std::to_string(low.value) +
                       " is negative");
            }
            if (base.ok() && low.ok() && width.ok() && low.value >= 0 &&
                width.value >= 1 && low.value + width.value > base.value) {
                wf("WF02", node,
                   "extract of bits [" + std::to_string(low.value) + ", " +
                       std::to_string(low.value + width.value) +
                       ") exceeds the " + std::to_string(base.value) +
                       "-bit operand");
            }
            recordRead(expr->kids[0], low, width, base);
            return width;
          }
          case ExprKind::Concat: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok()) {
                const int64_t total = a.value + b.value;
                if (total > BitVector::kMaxWidth) {
                    wf("WF08", node,
                       "concat width " + std::to_string(total) +
                           " exceeds the BitVector limit");
                }
                return CheckedInt::of(total);
            }
            return CheckedInt::unknown();
          }
          case ExprKind::BVCmp: {
            const CheckedInt a = widthOf(expr->kids[0]);
            const CheckedInt b = widthOf(expr->kids[1]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   "comparison operand widths differ: " +
                       std::to_string(a.value) + " vs " +
                       std::to_string(b.value));
            }
            return CheckedInt::of(1);
          }
          case ExprKind::Select: {
            const CheckedInt cond = widthOf(expr->kids[0]);
            if (cond.ok() && cond.value != 1) {
                wf("WF04", node,
                   "select condition is " + std::to_string(cond.value) +
                       " bits wide (must be 1)");
            }
            const CheckedInt a = widthOf(expr->kids[1]);
            const CheckedInt b = widthOf(expr->kids[2]);
            if (a.ok() && b.ok() && a.value != b.value) {
                wf("WF01", node,
                   "select branch widths differ: " + std::to_string(a.value) +
                       " vs " + std::to_string(b.value));
            }
            return a.ok() ? a : b;
          }
          case ExprKind::Hole:
            return CheckedInt::unknown();
          default:
            // Int-typed node in BV position.
            wf("WF06", node, "integer-typed node used as a bitvector");
            return CheckedInt::unknown();
        }
    }

    void
    checkWidthValue(const CheckedInt &w, const Expr *node, const char *what)
    {
        if (w.ok() && w.value < 1) {
            wf("WF03", node,
               std::string(what) + " width is " + std::to_string(w.value) +
                   " (must be >= 1)");
        }
        if (w.ok() && w.value > BitVector::kMaxWidth) {
            wf("WF08", node,
               std::string(what) + " width " + std::to_string(w.value) +
                   " exceeds the BitVector limit");
        }
    }

    /** UB01: shift amount provably >= the shifted operand's width. */
    void
    checkShift(const ExprPtr &expr, const CheckedInt &operand_width)
    {
        const auto op = static_cast<BVBinOp>(expr->value);
        if (op != BVBinOp::Shl && op != BVBinOp::LShr && op != BVBinOp::AShr)
            return;
        const ExprPtr &amount = expr->kids[1];
        if (amount->kind != ExprKind::BVConst)
            return;
        const CheckedInt value = checkedEvalInt(amount->kids[1], env_);
        if (value.ok() && operand_width.ok() &&
            (value.value >= operand_width.value || value.value < 0)) {
            ub(Severity::Warning, "UB01", expr.get(),
               std::string(bvBinOpName(op)) + " by constant " +
                   std::to_string(value.value) + " shifts out every bit of a " +
                   std::to_string(operand_width.value) + "-bit value");
        }
    }

    /** UB04: bitvector division by a constant zero (defined as
     *  all-ones by SMT-LIB, but a strong spec-bug signal). */
    void
    checkBVDiv(const ExprPtr &expr)
    {
        const auto op = static_cast<BVBinOp>(expr->value);
        if (op != BVBinOp::UDiv && op != BVBinOp::URem)
            return;
        const ExprPtr &den = expr->kids[1];
        if (den->kind != ExprKind::BVConst)
            return;
        const CheckedInt value = checkedEvalInt(den->kids[1], env_);
        if (value.ok() && value.value == 0) {
            ub(Severity::Warning, "UB04", expr.get(),
               std::string(bvBinOpName(op)) +
                   " by a constant-zero bitvector (defined as all-ones, "
                   "almost certainly unintended)");
        }
    }

    /** Track which input bits the templates read (pedantic DC05). */
    void
    recordRead(const ExprPtr &base, const CheckedInt &low,
               const CheckedInt &width, const CheckedInt &base_width)
    {
        if (arg_read_.empty() || base->kind != ExprKind::ArgBV)
            return;
        const int64_t index = base->value;
        if (index < 0 || index >= static_cast<int64_t>(arg_read_.size()))
            return;
        auto &bits = arg_read_[index];
        if (bits.empty())
            return;
        if (!low.ok() || !width.ok()) {
            // Unknown range: assume the whole argument is live.
            bits.assign(bits.size(), true);
            return;
        }
        (void)base_width;
        for (int64_t b = low.value;
             b < low.value + width.value &&
             b < static_cast<int64_t>(bits.size());
             ++b) {
            if (b >= 0)
                bits[b] = true;
        }
    }

    // ---- Liveness ----------------------------------------------------------

    void
    checkLiveness()
    {
        std::vector<ExprPtr> nodes;
        for (const auto &tmpl : sem_.templates)
            collectNodes(tmpl, nodes);
        // Quantities referenced outside the templates (loop counts,
        // widths) keep parameters alive but not arguments: an argument
        // only matters if an element template can read it.
        std::vector<ExprPtr> structural;
        collectNodes(sem_.outer_count, structural);
        collectNodes(sem_.inner_count, structural);
        collectNodes(sem_.elem_width, structural);
        for (const auto &arg : sem_.bv_args)
            collectNodes(arg.width, structural);

        std::set<int64_t> used_args;
        std::set<int64_t> used_params;
        std::set<std::string> used_named;
        auto scan = [&](const std::vector<ExprPtr> &list, bool args_count) {
            for (const auto &node : list) {
                if (node->kind == ExprKind::ArgBV && args_count)
                    used_args.insert(node->value);
                else if (node->kind == ExprKind::Param)
                    used_params.insert(node->value);
                else if (node->kind == ExprKind::NamedVar)
                    used_named.insert(node->name);
            }
        };
        scan(nodes, true);
        scan(structural, false);

        for (size_t a = 0; a < sem_.bv_args.size(); ++a) {
            if (!used_args.count(static_cast<int64_t>(a))) {
                dc(Severity::Warning, "DC01", nullptr,
                   "bitvector argument `" + sem_.bv_args[a].name +
                       "` never influences the output");
            }
        }
        for (size_t p = 0; p < sem_.params.size(); ++p) {
            if (!used_params.count(static_cast<int64_t>(p))) {
                dc(Severity::Warning, "DC02", nullptr,
                   "parameter `" + sem_.params[p].name +
                       "` is never referenced");
            }
        }
        for (const auto &imm : sem_.int_args) {
            if (!used_named.count(imm)) {
                dc(Severity::Warning, "DC03", nullptr,
                   "integer immediate `" + imm + "` is never referenced");
            }
        }
        // Unbound named variables: at canonical level every NamedVar
        // must be a declared immediate.
        for (const auto &node : nodes) {
            if (node->kind != ExprKind::NamedVar)
                continue;
            bool declared = false;
            for (const auto &imm : sem_.int_args)
                declared |= imm == node->name;
            if (!declared) {
                wf("WF06", node.get(),
                   "named variable `" + node->name +
                       "` is not a declared immediate");
            }
        }

        if (options_.pedantic) {
            for (size_t a = 0; a < arg_read_.size(); ++a) {
                const auto &bits = arg_read_[a];
                if (bits.empty() ||
                    !used_args.count(static_cast<int64_t>(a)))
                    continue;
                int64_t unread = 0;
                for (bool b : bits)
                    unread += b ? 0 : 1;
                if (unread > 0) {
                    dc(Severity::Note, "DC05", nullptr,
                       "argument `" + sem_.bv_args[a].name + "`: " +
                           std::to_string(unread) + " of " +
                           std::to_string(bits.size()) +
                           " input bits are never read");
                }
            }
        }
    }

    const CanonicalSemantics &sem_;
    const unsigned rules_;
    const InstVerifyOptions &options_;
    DiagnosticReport &report_;
    std::vector<int64_t> params_;
    CheckEnv env_;
    CheckedInt outer_;
    CheckedInt inner_;
    CheckedInt elem_width_;
    std::vector<CheckedInt> arg_widths_;
    /** Per-argument read bitmap (pedantic DC05 only). */
    std::vector<std::vector<bool>> arg_read_;
    std::set<std::pair<const Expr *, const char *>> dedup_;
};

} // namespace

void
verifyInstruction(const CanonicalSemantics &sem, unsigned rules,
                  const InstVerifyOptions &options, DiagnosticReport &report)
{
    InstChecker(sem, rules, options, report).run();
}

bool
loadTimeVerifyEnabled()
{
    const env::Raw knob = env::raw("HYDRIDE_VERIFY");
    if (knob.set && !knob.value.empty())
        return knob.value != "0";
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace analysis
} // namespace hydride
