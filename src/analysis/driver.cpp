#include "analysis/driver.h"

#include "analysis/mutate.h"
#include "analysis/verifier.h"
#include "autollvm/dict.h"
#include "observability/metrics.h"
#include "support/strings.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <ostream>
#include <sstream>

namespace hydride {
namespace analysis {

namespace {

const char kUsage[] =
    "usage: hydride-verify [options]\n"
    "\n"
    "Run the Hydride static verifier over the derived spec database\n"
    "and the AutoLLVM dictionary.\n"
    "\n"
    "options:\n"
    "  --isas A,B,...      ISAs to verify (default: all built-in)\n"
    "  --passes P,Q,...    pass subset (see --list-passes; default: all)\n"
    "  --no-dict           skip dictionary construction + crosstable pass\n"
    "  --json              render diagnostics as JSON\n"
    "  --werror            treat warnings as errors\n"
    "  --pedantic          enable DC05 input-coverage notes\n"
    "  --waive RULE[:SUB]  waive a rule, optionally only for instructions\n"
    "                      whose name contains SUB (repeatable)\n"
    "  --max-print N       print at most N diagnostics (0 = all)\n"
    "  --mutate KIND       seed one defect before verifying; implies\n"
    "                      --werror (see --list-mutations)\n"
    "  --self-test         seed every defect in turn and assert the\n"
    "                      expected rule fires (semantic defects must\n"
    "                      be caught by EQ rules alone)\n"
    "  --eq-budget N       equiv-pass budget: N AIG nodes and N/8 SAT\n"
    "                      conflicts per query\n"
    "  --metrics           dump the metrics registry after the run\n"
    "  --list-passes       list verifier passes and exit\n"
    "  --list-mutations    list mutation kinds and exit\n"
    "  -h, --help          show this help\n";

struct CliOptions
{
    std::vector<std::string> isas;
    VerifierOptions verify;
    std::vector<Waiver> waivers;
    std::string mutate_kind;
    size_t max_print = 0;
    bool no_dict = false;
    bool json = false;
    bool werror = false;
    bool self_test = false;
    bool dump_metrics = false;
};

bool
parseWaiver(const std::string &text, Waiver &out)
{
    const size_t colon = text.find(':');
    out.rule = text.substr(0, colon);
    out.instruction_substr =
        colon == std::string::npos ? "" : text.substr(colon + 1);
    return !out.rule.empty();
}

/** Load the (cached) semantics for the selected ISAs. */
std::vector<const IsaSemantics *>
loadIsas(const std::vector<std::string> &isas)
{
    std::vector<const IsaSemantics *> out;
    out.reserve(isas.size());
    for (const std::string &isa : isas)
        out.push_back(&isaSemantics(isa));
    return out;
}

int
exitStatus(const DiagnosticReport &report, bool werror)
{
    if (report.hasErrors())
        return 1;
    if (werror && report.warnings() > 0)
        return 1;
    return 0;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

std::string
secondsText(double seconds)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3f", seconds);
    return buffer;
}

/** Unknown-verdict queries ordered by solver time spent, worst first. */
std::vector<const EquivUnknown *>
worstUnknowns(const EquivStats &stats, size_t limit)
{
    std::vector<const EquivUnknown *> worst;
    worst.reserve(stats.unknowns.size());
    for (const EquivUnknown &u : stats.unknowns)
        worst.push_back(&u);
    std::sort(worst.begin(), worst.end(),
              [](const EquivUnknown *a, const EquivUnknown *b) {
                  return a->seconds > b->seconds;
              });
    if (worst.size() > limit)
        worst.resize(limit);
    return worst;
}

const std::vector<std::string> &
equivRuleIds()
{
    static const std::vector<std::string> rules = {"EQ01", "EQ02", "EQ03",
                                                   "EQ04"};
    return rules;
}

/** Per-rule verdict tallies + budget honesty, for the text report. */
std::string
equivSummaryText(const EquivStats &stats)
{
    std::ostringstream os;
    for (const std::string &rule : equivRuleIds()) {
        const auto count = [&](const std::map<std::string, int> &m) {
            auto it = m.find(rule);
            return it == m.end() ? 0 : it->second;
        };
        if (!count(stats.proved) && !count(stats.refuted) &&
            !count(stats.unknown))
            continue;
        os << "equiv: " << rule << " proved=" << count(stats.proved)
           << " refuted=" << count(stats.refuted)
           << " unknown=" << count(stats.unknown) << "\n";
    }
    os << "equiv: " << secondsText(stats.seconds) << "s solver time\n";
    if (!stats.unknowns.empty()) {
        os << "equiv: " << stats.unknowns.size()
           << " unknown-verdict quer"
           << (stats.unknowns.size() == 1 ? "y" : "ies")
           << " NOT counted as passes; worst offenders:\n";
        for (const EquivUnknown *u : worstUnknowns(stats, 3)) {
            os << "equiv:   " << u->rule << " " << u->isa << ":"
               << u->subject << " — " << u->reason << " ("
               << secondsText(u->seconds) << "s)\n";
        }
    }
    return os.str();
}

std::string
equivSummaryJson(const EquivStats &stats)
{
    std::ostringstream os;
    auto tally = [&](const char *key, const std::map<std::string, int> &m) {
        os << "\"" << key << "\":{";
        bool first = true;
        for (const std::string &rule : equivRuleIds()) {
            auto it = m.find(rule);
            if (it == m.end())
                continue;
            if (!first)
                os << ",";
            first = false;
            os << "\"" << rule << "\":" << it->second;
        }
        os << "}";
    };
    os << "{";
    tally("proved", stats.proved);
    os << ",";
    tally("refuted", stats.refuted);
    os << ",";
    tally("unknown", stats.unknown);
    os << ",\"solver_seconds\":" << secondsText(stats.seconds)
       << ",\"unknown_queries\":[";
    for (size_t i = 0; i < stats.unknowns.size(); ++i) {
        const EquivUnknown &u = stats.unknowns[i];
        if (i)
            os << ",";
        os << "{\"rule\":\"" << jsonEscape(u.rule) << "\",\"isa\":\""
           << jsonEscape(u.isa) << "\",\"subject\":\""
           << jsonEscape(u.subject) << "\",\"reason\":\""
           << jsonEscape(u.reason) << "\",\"seconds\":"
           << secondsText(u.seconds) << "}";
    }
    os << "]}";
    return os.str();
}

/** Run the verifier with one seeded defect. Returns the report and
 *  (via out-params) what was mutated. */
DiagnosticReport
runMutated(const CliOptions &options, const MutationInfo &mutation,
           std::string &victim)
{
    DiagnosticReport report;
    report.setWaivers(options.waivers);
    VerifierOptions vopts = options.verify;

    if (mutation.on_expander) {
        // No table data changes: flip the expander's splice-skew knob
        // and let the EQ03 queries compare the skewed programs.
        const AutoLLVMDict dict = AutoLLVMDict::build(options.isas);
        VerifyInput input{loadIsas(options.isas), &dict};
        vopts.pass_ids = {"crosstable", "equiv"};
        vopts.equiv.rules = {mutation.expected_rule};
        vopts.equiv.expander_splice_skew = 1;
        victim = "<macro-expansion splice>";
        runVerifier(input, vopts, report);
    } else if (mutation.on_dict) {
        // Mutate the dictionary: rebuild it from mutated classes and
        // run the crosstable pass (the spec DB is untouched). Semantic
        // defects additionally run their EQ rule, restricted to the
        // victim so self-testing stays fast.
        std::vector<EquivalenceClass> classes =
            runSimilarityEngine(combinedSemantics(options.isas));
        victim = mutateClasses(classes, mutation.kind);
        const AutoLLVMDict dict(std::move(classes));
        VerifyInput input{loadIsas(options.isas), &dict};
        vopts.pass_ids = {"crosstable"};
        if (mutation.semantic()) {
            vopts.pass_ids.push_back("equiv");
            vopts.equiv.rules = {mutation.expected_rule};
            vopts.equiv.instruction_filter = victim;
        }
        runVerifier(input, vopts, report);
    } else {
        // Mutate one instruction's semantics: run the per-instruction
        // passes over mutated copies (no dictionary needed).
        std::vector<IsaSemantics> mutated;
        mutated.reserve(options.isas.size());
        for (const std::string &isa : options.isas)
            mutated.push_back(isaSemantics(isa));
        for (IsaSemantics &sema : mutated) {
            victim = mutateSemantics(sema, mutation.kind);
            if (!victim.empty())
                break;
        }
        VerifyInput input;
        for (const IsaSemantics &sema : mutated)
            input.isas.push_back(&sema);
        vopts.pass_ids = {"wellformed", "ub", "deadcode", "range"};
        runVerifier(input, vopts, report);
    }
    return report;
}

int
runSelfTest(const CliOptions &options, std::ostream &out, std::ostream &err)
{
    int failures = 0;
    for (const MutationInfo &mutation : allMutations()) {
        std::string victim;
        const DiagnosticReport report =
            runMutated(options, mutation, victim);
        if (victim.empty()) {
            err << "self-test: " << mutation.kind
                << ": no eligible victim instruction\n";
            ++failures;
            continue;
        }
        const bool caught = std::any_of(
            report.diags().begin(), report.diags().end(),
            [&](const Diagnostic &d) { return d.rule ==
                                              mutation.expected_rule; });
        // A semantic defect must be invisible to the structural rules:
        // only the symbolic EQ family may error on it.
        const bool structurally_clean =
            !mutation.semantic() ||
            std::none_of(report.diags().begin(), report.diags().end(),
                         [](const Diagnostic &d) {
                             return d.severity == Severity::Error &&
                                    d.rule.rfind("EQ", 0) != 0;
                         });
        out << "self-test: " << mutation.kind << " -> "
            << mutation.expected_rule << " on " << victim << ": "
            << (caught ? (structurally_clean ? "caught"
                                             : "caught, but NOT EQ-only")
                       : "MISSED")
            << "\n";
        if (!caught || !structurally_clean) {
            err << report.renderText(options.max_print);
            ++failures;
        }
    }
    if (failures) {
        err << "self-test: " << failures << " mutation(s) NOT caught\n";
        return 1;
    }
    out << "self-test: all " << allMutations().size()
        << " seeded defects caught\n";
    return 0;
}

} // namespace

int
runVerifierCli(const std::vector<std::string> &args, std::ostream &out,
               std::ostream &err)
{
    CliOptions options;

    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](std::string &into) {
            if (i + 1 >= args.size()) {
                err << "hydride-verify: " << arg << " needs a value\n";
                return false;
            }
            into = args[++i];
            return true;
        };
        std::string v;
        if (arg == "-h" || arg == "--help") {
            out << kUsage;
            return 0;
        } else if (arg == "--list-passes") {
            for (const PassInfo &pass : verifierPasses())
                out << pass.id << "  [" << pass.rules << "]  " << pass.title
                    << (pass.needs_dict ? "  (needs dictionary)" : "")
                    << "\n";
            return 0;
        } else if (arg == "--list-mutations") {
            for (const MutationInfo &m : allMutations())
                out << m.kind << "  -> " << m.expected_rule << "  "
                    << m.description << "\n";
            return 0;
        } else if (arg == "--isas") {
            if (!value(v))
                return 2;
            options.isas = split(v, ',');
        } else if (arg == "--passes") {
            if (!value(v))
                return 2;
            options.verify.pass_ids = split(v, ',');
            for (const std::string &id : options.verify.pass_ids) {
                const auto &passes = verifierPasses();
                if (std::none_of(passes.begin(), passes.end(),
                                 [&](const PassInfo &p) {
                                     return p.id == id;
                                 })) {
                    err << "hydride-verify: unknown pass '" << id
                        << "' (see --list-passes)\n";
                    return 2;
                }
            }
        } else if (arg == "--waive") {
            if (!value(v))
                return 2;
            Waiver waiver;
            if (!parseWaiver(v, waiver)) {
                err << "hydride-verify: bad waiver '" << v
                    << "' (want RULE or RULE:SUBSTR)\n";
                return 2;
            }
            options.waivers.push_back(std::move(waiver));
        } else if (arg == "--max-print") {
            if (!value(v))
                return 2;
            options.max_print = static_cast<size_t>(std::stoul(v));
        } else if (arg == "--eq-budget") {
            if (!value(v))
                return 2;
            const unsigned long budget = std::stoul(v);
            if (budget < 64) {
                err << "hydride-verify: --eq-budget must be >= 64\n";
                return 2;
            }
            options.verify.equiv.budget.max_nodes = budget;
            options.verify.equiv.budget.max_conflicts =
                static_cast<long>(budget / 8);
        } else if (arg == "--mutate") {
            if (!value(v))
                return 2;
            if (!findMutation(v)) {
                err << "hydride-verify: unknown mutation '" << v
                    << "' (see --list-mutations)\n";
                return 2;
            }
            options.mutate_kind = v;
            options.werror = true;
        } else if (arg == "--no-dict") {
            options.no_dict = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--werror") {
            options.werror = true;
        } else if (arg == "--pedantic") {
            options.verify.inst.pedantic = true;
        } else if (arg == "--self-test") {
            options.self_test = true;
        } else if (arg == "--metrics") {
            options.dump_metrics = true;
        } else {
            err << "hydride-verify: unknown option '" << arg << "'\n"
                << kUsage;
            return 2;
        }
    }

    if (options.isas.empty())
        options.isas = builtinIsas();
    for (const std::string &isa : options.isas) {
        const auto &known = builtinIsas();
        if (std::find(known.begin(), known.end(), isa) == known.end()) {
            err << "hydride-verify: unknown ISA '" << isa << "' (known: "
                << join(known, ", ") << ")\n";
            return 2;
        }
    }
    if (options.dump_metrics)
        metrics::setEnabled(true);

    EquivStats equiv_stats;
    options.verify.equiv.stats = &equiv_stats;

    if (options.self_test) {
        const int status = runSelfTest(options, out, err);
        if (options.dump_metrics)
            out << metrics::exportJson() << "\n";
        return status;
    }

    DiagnosticReport report;
    report.setWaivers(options.waivers);

    if (!options.mutate_kind.empty()) {
        const MutationInfo *mutation = findMutation(options.mutate_kind);
        std::string victim;
        report = runMutated(options, *mutation, victim);
        if (victim.empty()) {
            err << "hydride-verify: mutation '" << options.mutate_kind
                << "' found no eligible victim\n";
            return 2;
        }
        err << "hydride-verify: seeded '" << options.mutate_kind
            << "' into " << victim << " (expect "
            << mutation->expected_rule << ")\n";
    } else {
        // Both the crosstable pass and the symbolic equivalence pass
        // consume the dictionary.
        const bool want_dict = !options.no_dict &&
                               (options.verify.runsPass("crosstable") ||
                                options.verify.runsPass("equiv"));
        VerifyInput input;
        input.isas = loadIsas(options.isas);
        std::optional<AutoLLVMDict> dict;
        if (want_dict) {
            dict.emplace(AutoLLVMDict::build(options.isas));
            input.dict = &*dict;
        }
        runVerifier(input, options.verify, report);
    }

    report.sortBySeverity();
    const bool equiv_ran = equiv_stats.totalProved() +
                               equiv_stats.totalRefuted() +
                               equiv_stats.totalUnknown() >
                           0;
    if (options.json) {
        if (equiv_ran)
            report.setExtra("equiv", equivSummaryJson(equiv_stats));
        out << report.renderJson() << "\n";
    } else {
        out << report.renderText(options.max_print);
        if (equiv_ran)
            out << equivSummaryText(equiv_stats);
    }
    if (options.dump_metrics)
        out << metrics::exportJson() << "\n";
    return exitStatus(report, options.werror);
}

} // namespace analysis
} // namespace hydride
