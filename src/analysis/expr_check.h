/**
 * @file
 * Checked static evaluation over Hydride IR Int expressions, the
 * shared substrate of the verifier passes.
 *
 * Unlike `evalInt` (which asserts on division by zero and silently
 * wraps on overflow), `checkedEvalInt` is total: it reports division
 * by a zero denominator and signed 64-bit overflow as explicit
 * statuses with the offending node attached, and treats quantities
 * the verifier cannot know statically (integer immediates bound at
 * call time, synthesis holes) as `Unknown` rather than failing.
 */
#ifndef HYDRIDE_ANALYSIS_EXPR_CHECK_H
#define HYDRIDE_ANALYSIS_EXPR_CHECK_H

#include "hir/semantics.h"

namespace hydride {
namespace analysis {

/** Outcome of checked integer evaluation. */
struct CheckedInt
{
    enum class Status {
        Value,    ///< Evaluated to `value`.
        Unknown,  ///< Depends on an immediate or a hole; not an error.
        DivZero,  ///< Division/modulo by a zero denominator.
        Overflow, ///< Signed 64-bit overflow in the arithmetic.
    };

    Status status = Status::Unknown;
    int64_t value = 0;
    const Expr *culprit = nullptr; ///< Offending node (DivZero/Overflow).

    bool ok() const { return status == Status::Value; }
    bool bad() const
    {
        return status == Status::DivZero || status == Status::Overflow;
    }

    static CheckedInt of(int64_t value)
    {
        return {Status::Value, value, nullptr};
    }
    static CheckedInt unknown() { return {}; }
};

/**
 * Static evaluation environment: concrete parameter values and loop
 * iterators. Named variables (integer immediates) without an entry in
 * `named` evaluate to Unknown.
 */
struct CheckEnv
{
    const std::vector<int64_t> *param_values = nullptr;
    int64_t loop_i = 0;
    int64_t loop_j = 0;
};

/** Overflow-checked partial evaluation of an Int-typed expression. */
CheckedInt checkedEvalInt(const ExprPtr &expr, const CheckEnv &env);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_EXPR_CHECK_H
