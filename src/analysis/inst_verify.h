/**
 * @file
 * Per-instruction semantic verification of canonicalized Hydride IR
 * (the "cheap" verifier passes; see docs/static_analysis.md for the
 * rule catalogue).
 *
 * Three rule families run over one `CanonicalSemantics` at a time:
 *
 *  - WF (well-formedness): operand widths match operator contracts,
 *    extracts and concats stay in bounds, no zero-width values, loop
 *    counts are positive, template widths agree with the declared
 *    element width, argument/parameter indices are in range.
 *  - UB (undefined behaviour): shift amounts provably >= the operand
 *    width, division by a constant-zero denominator, signed 64-bit
 *    overflow in index arithmetic.
 *  - DC (dead code): bitvector arguments, numerical parameters, and
 *    integer immediates that never influence the output; template
 *    counts inconsistent with the selector mode (unreachable or
 *    missing templates); optionally (pedantic) input bits no template
 *    ever reads.
 *
 * Checks are static: widths and indices are evaluated under the
 * default parameter values across every (lane, element) iteration,
 * which makes "provably" concrete without running the semantics.
 * These passes have no dependencies beyond the HIR, so `SpecDB` runs
 * them at load time as debug-mode assertions (`loadTimeVerifyEnabled`).
 */
#ifndef HYDRIDE_ANALYSIS_INST_VERIFY_H
#define HYDRIDE_ANALYSIS_INST_VERIFY_H

#include "analysis/diagnostics.h"
#include "hir/semantics.h"

namespace hydride {
namespace analysis {

/** Rule families; OR them to select what verifyInstruction runs. */
enum InstRuleSet : unsigned {
    kWellFormed = 1u << 0, ///< WF rules.
    kUndefined = 1u << 1,  ///< UB rules.
    kDeadCode = 1u << 2,   ///< DC rules.
    kAllInstRules = kWellFormed | kUndefined | kDeadCode,
};

/** Knobs for the per-instruction passes. */
struct InstVerifyOptions
{
    /** Emit DC05 input-bit-coverage notes (noisy on legitimate
     *  partial-read instructions; off by default). */
    bool pedantic = false;
    /** Cap on enumerated outer-loop lanes per instruction; the last
     *  lane is always checked so boundary extracts stay covered. */
    int max_outer_iters = 256;
};

/** Run the selected rule families over one canonicalized semantics. */
void verifyInstruction(const CanonicalSemantics &sem, unsigned rules,
                       const InstVerifyOptions &options,
                       DiagnosticReport &report);

/**
 * True when SpecDB should verify each instruction after
 * canonicalization: HYDRIDE_VERIFY=1 forces on, HYDRIDE_VERIFY=0
 * forces off, and unset defaults to on in debug (!NDEBUG) builds.
 */
bool loadTimeVerifyEnabled();

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_INST_VERIFY_H
