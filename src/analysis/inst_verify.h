/**
 * @file
 * Per-instruction semantic verification of canonicalized Hydride IR
 * (the "cheap" verifier passes; see docs/static_analysis.md for the
 * rule catalogue).
 *
 * Three rule families run over one `CanonicalSemantics` at a time:
 *
 *  - WF (well-formedness): operand widths match operator contracts,
 *    extracts and concats stay in bounds, no zero-width values, loop
 *    counts are positive, template widths agree with the declared
 *    element width, argument/parameter indices are in range.
 *  - UB (undefined behaviour): shift amounts provably >= the operand
 *    width, division by a constant-zero denominator, signed 64-bit
 *    overflow in index arithmetic.
 *  - RA (range analysis): provably-lossless saturating narrows,
 *    constant-foldable selects, saturating arithmetic that can never
 *    saturate — redundancy diagnosed by the abstract-interpretation
 *    framework (src/analysis/dataflow/).
 *  - DC (dead code): bitvector arguments, numerical parameters, and
 *    integer immediates that never influence the output; template
 *    counts inconsistent with the selector mode (unreachable or
 *    missing templates); optionally (pedantic) input bits no template
 *    ever reads.
 *
 * Checks are static: widths and indices are evaluated under the
 * default parameter values across every (lane, element) iteration,
 * which makes "provably" concrete without running the semantics.
 * The UB and RA families additionally run the interval x known-bits
 * product domain over each reachable template with the loop
 * variables abstracted to their whole ranges, so their verdicts
 * cover the full lane space even when the concrete enumeration is
 * capped; per-lane enumeration is only a fallback for positions
 * where the domains return no information.
 *
 * Severity policy (documented in docs/static_analysis.md): UB02/UB03
 * are always errors (evaluation would abort); UB01/UB04 are errors
 * when the trap provably fires on every reachable lane for every
 * input, and warnings when only some lanes trap. RA redundancy
 * findings are always warnings.
 * These passes have no dependencies beyond the HIR, so `SpecDB` runs
 * them at load time as debug-mode assertions (`loadTimeVerifyEnabled`).
 */
#ifndef HYDRIDE_ANALYSIS_INST_VERIFY_H
#define HYDRIDE_ANALYSIS_INST_VERIFY_H

#include "analysis/diagnostics.h"
#include "hir/semantics.h"

namespace hydride {
namespace analysis {

/** Rule families; OR them to select what verifyInstruction runs. */
enum InstRuleSet : unsigned {
    kWellFormed = 1u << 0, ///< WF rules.
    kUndefined = 1u << 1,  ///< UB rules.
    kDeadCode = 1u << 2,   ///< DC rules.
    kRange = 1u << 3,      ///< RA value-range redundancy rules.
    kAllInstRules = kWellFormed | kUndefined | kDeadCode | kRange,
};

/** Knobs for the per-instruction passes. */
struct InstVerifyOptions
{
    /** Emit DC05 input-bit-coverage notes (noisy on legitimate
     *  partial-read instructions; off by default). */
    bool pedantic = false;
    /** Cap on enumerated outer-loop lanes per instruction; the last
     *  lane is always checked so boundary extracts stay covered. */
    int max_outer_iters = 256;
};

/** Run the selected rule families over one canonicalized semantics. */
void verifyInstruction(const CanonicalSemantics &sem, unsigned rules,
                       const InstVerifyOptions &options,
                       DiagnosticReport &report);

/**
 * True when SpecDB should verify each instruction after
 * canonicalization: HYDRIDE_VERIFY=1 forces on, HYDRIDE_VERIFY=0
 * forces off, and unset defaults to on in debug (!NDEBUG) builds.
 */
bool loadTimeVerifyEnabled();

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_INST_VERIFY_H
