/**
 * @file
 * Structured diagnostics for the Hydride static verifier.
 *
 * Every verifier pass reports findings as `Diagnostic` records — a
 * severity, a stable rule id (documented in docs/static_analysis.md),
 * the instruction and ISA concerned, a vendor-manual source location
 * when one survived canonicalization, and a human-readable message.
 * `DiagnosticReport` collects them, applies waivers, keeps severity
 * tallies, and renders text or JSON for the `hydride-verify` CLI.
 */
#ifndef HYDRIDE_ANALYSIS_DIAGNOSTICS_H
#define HYDRIDE_ANALYSIS_DIAGNOSTICS_H

#include <string>
#include <utility>
#include <vector>

#include "hir/expr.h"

namespace hydride {
namespace analysis {

/** Finding severity; only Error makes `hydride-verify` exit non-zero
 *  (unless --werror promotes warnings). */
enum class Severity { Note, Warning, Error };

const char *severityName(Severity severity);

/** One verifier finding. */
struct Diagnostic
{
    Severity severity = Severity::Warning;
    std::string rule;        ///< Stable id, e.g. "WF02".
    std::string pass;        ///< Pass id, e.g. "wellformed".
    std::string isa;         ///< Empty when not ISA-specific.
    std::string instruction; ///< Empty for whole-table findings.
    SourceLoc loc;           ///< Pseudocode location when known.
    std::string message;

    /** "error[WF02] x86:_mm_foo (x86:_mm_foo:3): message". */
    std::string str() const;
};

/** Suppress findings of `rule` whose instruction name contains
 *  `instruction_substr` (empty substring = every instruction). */
struct Waiver
{
    std::string rule;
    std::string instruction_substr;
};

/** Collects diagnostics with waiver filtering and severity tallies. */
class DiagnosticReport
{
  public:
    void setWaivers(std::vector<Waiver> waivers);

    /** Record a finding (dropped silently when waived). */
    void add(Diagnostic diag);

    const std::vector<Diagnostic> &diags() const { return diags_; }
    int errors() const { return errors_; }
    int warnings() const { return warnings_; }
    int notes() const { return notes_; }
    int suppressed() const { return suppressed_; }
    bool hasErrors() const { return errors_ > 0; }

    /** Order errors first, then by ISA / instruction / rule. */
    void sortBySeverity();

    /** One line per finding plus a summary line; `max_diags` 0 = all. */
    std::string renderText(size_t max_diags = 0) const;

    /** {"diagnostics":[...],"summary":{...}} plus any extras. */
    std::string renderJson() const;

    /** Attach an extra top-level JSON key to renderJson() output.
     *  `raw_json` is emitted verbatim (it must already be valid
     *  JSON); the equiv pass uses this for its verdict tallies. */
    void setExtra(const std::string &key, std::string raw_json);

  private:
    bool waived(const Diagnostic &diag) const;

    std::vector<Diagnostic> diags_;
    std::vector<Waiver> waivers_;
    std::vector<std::pair<std::string, std::string>> extras_;
    int errors_ = 0;
    int warnings_ = 0;
    int notes_ = 0;
    int suppressed_ = 0;
};

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DIAGNOSTICS_H
