#include "analysis/expr_check.h"

namespace hydride {
namespace analysis {

namespace {

CheckedInt
applyChecked(IntBinOp op, const CheckedInt &a, const CheckedInt &b,
             const Expr *node)
{
    int64_t result = 0;
    switch (op) {
      case IntBinOp::Add:
        if (__builtin_add_overflow(a.value, b.value, &result))
            return {CheckedInt::Status::Overflow, 0, node};
        return CheckedInt::of(result);
      case IntBinOp::Sub:
        if (__builtin_sub_overflow(a.value, b.value, &result))
            return {CheckedInt::Status::Overflow, 0, node};
        return CheckedInt::of(result);
      case IntBinOp::Mul:
        if (__builtin_mul_overflow(a.value, b.value, &result))
            return {CheckedInt::Status::Overflow, 0, node};
        return CheckedInt::of(result);
      case IntBinOp::Div:
        if (b.value == 0)
            return {CheckedInt::Status::DivZero, 0, node};
        if (a.value == INT64_MIN && b.value == -1)
            return {CheckedInt::Status::Overflow, 0, node};
        return CheckedInt::of(a.value / b.value);
      case IntBinOp::Mod:
        if (b.value == 0)
            return {CheckedInt::Status::DivZero, 0, node};
        if (a.value == INT64_MIN && b.value == -1)
            return {CheckedInt::Status::Overflow, 0, node};
        return CheckedInt::of(a.value % b.value);
      case IntBinOp::Min:
        return CheckedInt::of(a.value < b.value ? a.value : b.value);
      case IntBinOp::Max:
        return CheckedInt::of(a.value > b.value ? a.value : b.value);
    }
    return CheckedInt::unknown();
}

} // namespace

CheckedInt
checkedEvalInt(const ExprPtr &expr, const CheckEnv &env)
{
    if (!expr)
        return CheckedInt::unknown();
    switch (expr->kind) {
      case ExprKind::IntConst:
        return CheckedInt::of(expr->value);
      case ExprKind::Param: {
        if (!env.param_values ||
            expr->value < 0 ||
            expr->value >= static_cast<int64_t>(env.param_values->size())) {
            return CheckedInt::unknown();
        }
        return CheckedInt::of((*env.param_values)[expr->value]);
      }
      case ExprKind::LoopVar:
        return CheckedInt::of(expr->value == 0 ? env.loop_i : env.loop_j);
      case ExprKind::NamedVar:
        // Integer immediates are bound at call time; unknown here.
        return CheckedInt::unknown();
      case ExprKind::IntBin: {
        const CheckedInt a = checkedEvalInt(expr->kids[0], env);
        const CheckedInt b = checkedEvalInt(expr->kids[1], env);
        // A bad operand poisons the whole expression; a constant-zero
        // denominator is reported even under an unknown numerator.
        if (a.bad())
            return a;
        if (b.bad())
            return b;
        const auto op = static_cast<IntBinOp>(expr->value);
        if ((op == IntBinOp::Div || op == IntBinOp::Mod) && b.ok() &&
            b.value == 0) {
            return {CheckedInt::Status::DivZero, 0, expr.get()};
        }
        if (!a.ok() || !b.ok())
            return CheckedInt::unknown();
        return applyChecked(op, a, b, expr.get());
      }
      default:
        // BV-typed node in Int position: the factories prevent this,
        // but stay total for hand-built trees.
        return CheckedInt::unknown();
    }
}

} // namespace analysis
} // namespace hydride
