/**
 * @file
 * The symbolic equivalence checker: tiered `proved / refuted(model) /
 * unknown(budget)` queries over bitvector functions.
 *
 * A query compares two functions of the same concrete signature. The
 * tiers, in order (docs/symbolic_engine.md):
 *
 *  0. *Concrete sampling*: a handful of random inputs. Most
 *     inequivalent pairs die here, and a random witness is exactly as
 *     trustworthy as a solver model — both are validated by running
 *     the concrete reference.
 *  1. *Known-bits*: both sides are abstractly interpreted with fully
 *     unknown arguments. If every output bit is known and the values
 *     agree, the query is proved with no circuit construction at all.
 *     If the sides disagree on a bit both *know*, any input refutes —
 *     the all-zeros assignment is validated concretely and reported.
 *  1b. *Intervals*: the same abstract pass over the value-range
 *     domain (analysis/dataflow). Both outputs collapsing to the same
 *     singleton proves; provably-disjoint ranges mean the sides
 *     differ on every input, so the all-zeros assignment is validated
 *     concretely and reported. Catches range facts (division,
 *     remainder, saturation, comparisons) that bitwise tracking
 *     cannot see.
 *  2. *Structural (AIG)*: both sides are bit-blasted into one
 *     structurally-hashed AIG and a miter (OR of per-bit XORs) is
 *     built. Equivalent compositions usually collapse to constant
 *     false here, proving the query with zero SAT work.
 *  3. *SAT*: the miter cone is Tseitin-encoded and handed to the DPLL
 *     core. UNSAT proves; SAT yields a candidate model that is
 *     *always re-validated concretely* before being reported as a
 *     refutation.
 *
 * Budgets are explicit: AIG node overflow and SAT conflict exhaustion
 * both produce `unknown` with the budget named in `reason` — never a
 * silent pass. Evaluation errors (width mismatches, unfilled holes)
 * are caught and also surface as `unknown`.
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_EQUIV_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_EQUIV_H

#include <functional>
#include <string>
#include <vector>

#include "analysis/dataflow/interval.h"
#include "analysis/symbolic/sym_eval.h"

namespace hydride {
namespace sym {

enum class Verdict { Proved, Refuted, Unknown };

const char *verdictName(Verdict verdict);

/** Per-query resource limits. */
struct EqBudget
{
    /** Max AIG nodes before the bit-blasting tier gives up. */
    size_t max_nodes = size_t(1) << 21;
    /** Max DPLL conflicts before the SAT tier gives up. */
    long max_conflicts = 50000;
};

struct EqResult
{
    Verdict verdict = Verdict::Unknown;
    /** Tier that decided: "knownbits", "interval", "structural",
     *  "sat" (or "concrete" for the sampling tier). */
    std::string method;
    /** For unknown verdicts: which budget or failure was hit. */
    std::string reason;
    /** Refutation model (one value per query input), concretely
     *  validated: the two sides really disagree on these inputs. */
    std::vector<BitVector> model;
    size_t aig_nodes = 0;
    long conflicts = 0;
    double seconds = 0.0;
};

/**
 * One side of a query: a bitvector function given four ways — the
 * concrete reference (used for model validation), the bit-blasting
 * evaluation, and the known-bits and interval abstract evaluations.
 * All must implement the *same* function; the callbacks typically
 * share one evaluator templated on the domain (sym_eval.h), which
 * makes that structural. `knownbits` and `intervals` are optional:
 * a null callback skips that abstract tier.
 */
struct BVFun
{
    std::vector<int> arg_widths;
    std::function<BitVector(const std::vector<BitVector> &)> concrete;
    std::function<SymVec(AigDomain &, const std::vector<SymVec> &)> symbolic;
    std::function<KnownBits(KnownBitsDomain &,
                            const std::vector<KnownBits> &)> knownbits;
    std::function<dataflow::Interval(dataflow::IntervalDomain &,
                                     const std::vector<dataflow::Interval> &)>
        intervals;
};

/** Decide whether `a` and `b` agree on every input. */
EqResult checkEquiv(const BVFun &a, const BVFun &b, const EqBudget &budget);

/**
 * One side of a canonical-semantics query. `arg_map[k]` names the
 * query input wired to this side's bitvector argument `k` (empty =
 * identity), matching the argument-permutation convention of
 * similarity-class members (`rep_args[k] = args[member.arg_perm[k]]`).
 */
struct SemanticsSide
{
    const CanonicalSemantics *sem = nullptr;
    std::vector<int64_t> param_values;
    std::vector<int> arg_map;
    std::vector<int64_t> int_arg_values;
};

/**
 * Equivalence of two instruction semantics over all bitvector inputs
 * (integer immediates held fixed at the given values). This is the
 * EQ01 workhorse: member vs. parameterized class representative.
 */
EqResult checkSemanticsEquiv(const SemanticsSide &a, const SemanticsSide &b,
                             const EqBudget &budget);

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_EQUIV_H
