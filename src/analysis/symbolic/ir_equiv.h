/**
 * @file
 * IR-level equivalence queries: AutoLLVM modules, lowered target
 * programs, and Halide-level windows, all reduced to the core
 * checkEquiv tiers (equiv.h).
 *
 * Two distinct evaluation views matter here:
 *
 *  - *Representative view*: an AutoLLVM instruction executes the
 *    class representative's parameterized semantics with the member's
 *    parameter assignment — what `AutoLLVMDict::run` does.
 *  - *Hardware view*: a lowered target instruction executes the
 *    member's *own* concrete vendor semantics with the member's
 *    original argument order (undoing the class argument
 *    permutation).
 *
 * EQ02 compares the two views across a lowering (checkLoweringEquiv):
 * a similarity-class merge or permutation bug makes the views
 * diverge even though both "pass through" the same dictionary entry.
 * EQ03 compares a macro-expanded target program against the Halide op
 * it replaces (checkProgramEquiv, hardware view). EQ04 re-validates a
 * synthesized module against its specification window
 * (checkModuleEquiv, representative view — the same semantics CEGIS
 * optimized against, now for *all* inputs instead of samples).
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_IR_EQUIV_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_IR_EQUIV_H

#include "analysis/symbolic/equiv.h"
#include "autollvm/module.h"
#include "codegen/lowering.h"
#include "halide/hexpr.h"

namespace hydride {
namespace sym {

/**
 * Hardware-view concrete execution of a target program: every
 * instruction runs its member's own concrete semantics (argument
 * permutation undone) instead of the class representative's.
 */
BitVector evalTargetHW(const AutoLLVMDict &dict, const TargetProgram &program,
                       const std::vector<BitVector> &inputs);

/** EQ04 / CEGIS: synthesized module vs. its specification window. */
EqResult checkModuleEquiv(const AutoLLVMDict &dict, const AutoModule &module,
                          const HExprPtr &window, const EqBudget &budget);

/** EQ03: macro-expanded target program (hardware view) vs. the Halide
 *  op it implements. */
EqResult checkProgramEquiv(const AutoLLVMDict &dict,
                           const TargetProgram &program,
                           const HExprPtr &window, const EqBudget &budget);

/** EQ02: AutoLLVM module (representative view) vs. its lowered target
 *  program (hardware view) — the lowering round-trip as identity. */
EqResult checkLoweringEquiv(const AutoLLVMDict &dict,
                            const AutoModule &module,
                            const TargetProgram &program,
                            const EqBudget &budget);

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_IR_EQUIV_H
