#include "analysis/symbolic/aig.h"

#include <utility>

namespace hydride {
namespace sym {

Aig::Aig(size_t node_budget)
    : node_budget_(node_budget)
{
    nodes_.push_back({});       // Node 0: constant false.
    input_index_.push_back(-1);
}

Lit
Aig::addInput()
{
    const uint32_t var = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back({});
    input_index_.push_back(num_inputs_++);
    return var << 1;
}

bool
Aig::isInput(uint32_t var) const
{
    return var != 0 && input_index_[var] >= 0;
}

bool
Aig::isAnd(uint32_t var) const
{
    return var != 0 && input_index_[var] < 0;
}

int
Aig::inputIndex(uint32_t var) const
{
    return input_index_[var];
}

Lit
Aig::mkAnd(Lit a, Lit b)
{
    // Operand normalization makes commutative pairs hash-equal.
    if (a > b)
        std::swap(a, b);
    // Constant and trivial folds.
    if (a == kFalseLit || a == litNot(b))
        return kFalseLit;
    if (a == kTrueLit)
        return b;
    if (a == b)
        return a;

    const uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    auto found = hash_.find(key);
    if (found != hash_.end())
        return found->second << 1;

    if (nodes_.size() >= node_budget_) {
        // Out of nodes: flag the overflow and return an arbitrary
        // well-formed literal; the caller must discard the result.
        overflowed_ = true;
        return kFalseLit;
    }
    const uint32_t var = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back({a, b});
    input_index_.push_back(-1);
    hash_.emplace(key, var);
    return var << 1;
}

Lit
Aig::mkXor(Lit a, Lit b)
{
    // a ^ b = ~(~(a & ~b) & ~(~a & b)); hashing folds shared halves.
    return litNot(mkAnd(litNot(mkAnd(a, litNot(b))),
                        litNot(mkAnd(litNot(a), b))));
}

Lit
Aig::mkMux(Lit sel, Lit t, Lit e)
{
    if (t == e)
        return t;
    return mkOr(mkAnd(sel, t), mkAnd(litNot(sel), e));
}

bool
Aig::evalLit(Lit root, const std::vector<uint8_t> &input_values) const
{
    // Nodes are created in topological order, so one forward sweep
    // over the cone's ancestors (here: all nodes up to root) works.
    const uint32_t root_var = litVar(root);
    std::vector<uint8_t> value(root_var + 1, 0);
    for (uint32_t var = 1; var <= root_var; ++var) {
        const int input = input_index_[var];
        if (input >= 0) {
            value[var] = input < static_cast<int>(input_values.size())
                             ? input_values[input]
                             : 0;
            continue;
        }
        const Node &n = nodes_[var];
        const bool a = value[litVar(n.a)] ^ litInverted(n.a);
        const bool b = value[litVar(n.b)] ^ litInverted(n.b);
        value[var] = a && b;
    }
    return value[root_var] ^ litInverted(root);
}

} // namespace sym
} // namespace hydride
