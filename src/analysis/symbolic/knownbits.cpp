#include "analysis/symbolic/knownbits.h"

#include "support/error.h"

namespace hydride {
namespace sym {

KnownBits::KnownBits(BitVector known_mask, BitVector known_value)
    : known(std::move(known_mask)),
      value(std::move(known_value))
{
    HYD_ASSERT(known.width() == value.width(),
               "KnownBits mask/value width mismatch");
    // Canonical form: unknown positions carry a zero value bit.
    value = value.bvand(known);
}

KnownBits
KnownBits::top(int width)
{
    return KnownBits(BitVector(width), BitVector(width));
}

KnownBits
KnownBits::constant(const BitVector &v)
{
    return KnownBits(BitVector::allOnes(v.width()), v);
}

bool
KnownBits::fullyKnown() const
{
    return known == BitVector::allOnes(known.width());
}

BitVector
KnownBits::sminVal() const
{
    // Minimal signed value: unknown sign bit -> 1, other unknowns -> 0.
    BitVector v = value;
    if (!known.getBit(width() - 1))
        v.setBit(width() - 1, true);
    return v;
}

BitVector
KnownBits::smaxVal() const
{
    // Maximal signed value: unknown sign bit -> 0, other unknowns -> 1.
    BitVector v = umaxVal();
    if (!known.getBit(width() - 1))
        v.setBit(width() - 1, false);
    return v;
}

KnownBits
KnownBits::join(const KnownBits &a, const KnownBits &b)
{
    HYD_ASSERT(a.width() == b.width(), "KnownBits join width mismatch");
    const BitVector agree = a.value.bvxor(b.value).bvnot();
    const BitVector known = a.known.bvand(b.known).bvand(agree);
    return KnownBits(known, a.value.bvand(known));
}

bool
KnownBits::contains(const BitVector &v) const
{
    return v.width() == width() && v.bvand(known) == value;
}

KnownBits
kbNot(const KnownBits &a)
{
    return KnownBits(a.known, a.value.bvnot().bvand(a.known));
}

KnownBits
kbAnd(const KnownBits &a, const KnownBits &b)
{
    // Known 0 on either side forces 0; both known 1 forces 1.
    const BitVector zero_a = a.known.bvand(a.value.bvnot());
    const BitVector zero_b = b.known.bvand(b.value.bvnot());
    const BitVector one = a.value.bvand(b.value);
    const BitVector known = zero_a.bvor(zero_b).bvor(one);
    return KnownBits(known, one);
}

KnownBits
kbOr(const KnownBits &a, const KnownBits &b)
{
    const BitVector one = a.value.bvor(b.value);
    const BitVector zero_a = a.known.bvand(a.value.bvnot());
    const BitVector zero_b = b.known.bvand(b.value.bvnot());
    const BitVector known = one.bvor(zero_a.bvand(zero_b));
    return KnownBits(known, one);
}

KnownBits
kbXor(const KnownBits &a, const KnownBits &b)
{
    const BitVector known = a.known.bvand(b.known);
    return KnownBits(known, a.value.bvxor(b.value).bvand(known));
}

KnownBits
kbAdd(const KnownBits &a, const KnownBits &b, bool carry_in)
{
    HYD_ASSERT(a.width() == b.width(), "KnownBits add width mismatch");
    const int width = a.width();
    KnownBits out = KnownBits::top(width);
    // Per-bit enumeration of the possible (sum, carry-out) pairs given
    // which of {a_i, b_i, carry} are determined. Exact for this domain.
    bool carry_known = true;
    bool carry_value = carry_in;
    for (int i = 0; i < width; ++i) {
        bool sum_seen[2] = {false, false};
        bool carry_seen[2] = {false, false};
        for (int av = 0; av <= 1; ++av) {
            if (a.known.getBit(i) && a.value.getBit(i) != (av != 0))
                continue;
            for (int bv = 0; bv <= 1; ++bv) {
                if (b.known.getBit(i) && b.value.getBit(i) != (bv != 0))
                    continue;
                for (int cv = 0; cv <= 1; ++cv) {
                    if (carry_known && carry_value != (cv != 0))
                        continue;
                    sum_seen[av ^ bv ^ cv] = true;
                    carry_seen[(av + bv + cv) >= 2] = true;
                }
            }
        }
        if (sum_seen[0] != sum_seen[1]) {
            out.known.setBit(i, true);
            out.value.setBit(i, sum_seen[1]);
        }
        carry_known = carry_seen[0] != carry_seen[1];
        carry_value = carry_seen[1];
    }
    return out;
}

KnownBits
kbSub(const KnownBits &a, const KnownBits &b)
{
    return kbAdd(a, kbNot(b), /*carry_in=*/true);
}

KnownBits
kbNeg(const KnownBits &a)
{
    return kbAdd(KnownBits::constant(BitVector(a.width())), kbNot(a),
                 /*carry_in=*/true);
}

KnownBits
kbShl(const KnownBits &a, int amount)
{
    const int width = a.width();
    if (amount >= width)
        return KnownBits::constant(BitVector(width));
    KnownBits out = KnownBits::top(width);
    for (int i = 0; i < width; ++i) {
        if (i < amount) {
            out.known.setBit(i, true); // Shifted-in zero.
        } else {
            out.known.setBit(i, a.known.getBit(i - amount));
            out.value.setBit(i, a.value.getBit(i - amount));
        }
    }
    return out;
}

KnownBits
kbLShr(const KnownBits &a, int amount)
{
    const int width = a.width();
    if (amount >= width)
        return KnownBits::constant(BitVector(width));
    KnownBits out = KnownBits::top(width);
    for (int i = 0; i < width; ++i) {
        if (i + amount < width) {
            out.known.setBit(i, a.known.getBit(i + amount));
            out.value.setBit(i, a.value.getBit(i + amount));
        } else {
            out.known.setBit(i, true); // Shifted-in zero.
        }
    }
    return out;
}

KnownBits
kbAShr(const KnownBits &a, int amount)
{
    const int width = a.width();
    if (amount >= width)
        amount = width - 1; // Every bit becomes the sign bit.
    KnownBits out = KnownBits::top(width);
    const int sign = width - 1;
    for (int i = 0; i < width; ++i) {
        const int src = i + amount < width ? i + amount : sign;
        out.known.setBit(i, a.known.getBit(src));
        out.value.setBit(i, a.value.getBit(src));
    }
    return out;
}

KnownBits
kbZext(const KnownBits &a, int new_width)
{
    KnownBits out = KnownBits::top(new_width);
    out.known = a.known.zext(new_width);
    out.value = a.value.zext(new_width);
    // The extension bits are known zero.
    for (int i = a.width(); i < new_width; ++i)
        out.known.setBit(i, true);
    return out;
}

KnownBits
kbSext(const KnownBits &a, int new_width)
{
    KnownBits out = KnownBits::top(new_width);
    const int sign = a.width() - 1;
    for (int i = 0; i < new_width; ++i) {
        const int src = i < a.width() ? i : sign;
        out.known.setBit(i, a.known.getBit(src));
        out.value.setBit(i, a.value.getBit(src));
    }
    return out;
}

KnownBits
kbTrunc(const KnownBits &a, int new_width)
{
    return KnownBits(a.known.trunc(new_width), a.value.trunc(new_width));
}

KnownBits
kbExtract(const KnownBits &a, int low, int count)
{
    return KnownBits(a.known.extract(low, count),
                     a.value.extract(low, count));
}

KnownBits
kbConcat(const KnownBits &high, const KnownBits &low)
{
    return KnownBits(BitVector::concat(high.known, low.known),
                     BitVector::concat(high.value, low.value));
}

KnownBits
kbSelect(const KnownBits &cond, const KnownBits &t, const KnownBits &e)
{
    // Any known-one bit makes the condition definitely nonzero.
    if (!cond.value.isZero())
        return t;
    if (cond.fullyKnown()) // Fully known and value zero.
        return e;
    return KnownBits::join(t, e);
}

namespace {

KnownBits
boolResult(bool value)
{
    return KnownBits::constant(BitVector::fromUint(1, value ? 1 : 0));
}

} // namespace

KnownBits
kbEq(const KnownBits &a, const KnownBits &b)
{
    // Disagreement on a commonly-known bit decides inequality.
    const BitVector common = a.known.bvand(b.known);
    if (a.value.bvand(common) != b.value.bvand(common))
        return boolResult(false);
    if (a.fullyKnown() && b.fullyKnown())
        return boolResult(a.value == b.value);
    return KnownBits::top(1);
}

KnownBits
kbNe(const KnownBits &a, const KnownBits &b)
{
    return kbNot(kbEq(a, b));
}

KnownBits
kbUlt(const KnownBits &a, const KnownBits &b)
{
    if (a.umaxVal().ult(b.uminVal()))
        return boolResult(true);
    if (!a.uminVal().ult(b.umaxVal()))
        return boolResult(false);
    return KnownBits::top(1);
}

KnownBits
kbUle(const KnownBits &a, const KnownBits &b)
{
    return kbNot(kbUlt(b, a));
}

KnownBits
kbSlt(const KnownBits &a, const KnownBits &b)
{
    if (a.smaxVal().slt(b.sminVal()))
        return boolResult(true);
    if (!a.sminVal().slt(b.smaxVal()))
        return boolResult(false);
    return KnownBits::top(1);
}

KnownBits
kbSle(const KnownBits &a, const KnownBits &b)
{
    return kbNot(kbSlt(b, a));
}

} // namespace sym
} // namespace hydride
