/**
 * @file
 * And-Inverter Graph: the bit-level circuit representation behind the
 * symbolic equivalence checker (docs/symbolic_engine.md).
 *
 * Every boolean function the checker reasons about is built from
 * two-input AND gates and inverters. Literals encode a node index and
 * a complement bit (`2*var + inverted`), so inversion is free. The
 * builder structural-hashes every AND: two syntactically identical
 * gates share one node, operands are order-normalized, and constant /
 * idempotence / complement rules fold eagerly. This is what makes the
 * common "both sides lower to the same circuit" equivalence queries
 * cheap — the miter collapses to constant false during construction
 * and the SAT core is never invoked.
 *
 * Node allocation is budgeted: once `nodeBudget()` is exceeded the
 * builder keeps returning well-formed literals but raises the
 * `overflowed()` flag, and the caller must report `unknown(budget)`
 * instead of trusting any further result.
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_AIG_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_AIG_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace hydride {
namespace sym {

/** A literal: node index * 2 + complement flag. */
using Lit = uint32_t;

constexpr Lit kFalseLit = 0; ///< Constant false (node 0, plain).
constexpr Lit kTrueLit = 1;  ///< Constant true (node 0, inverted).

inline Lit litNot(Lit l) { return l ^ 1u; }
inline uint32_t litVar(Lit l) { return l >> 1; }
inline bool litInverted(Lit l) { return l & 1u; }

/** Structurally-hashed AND-inverter graph builder. */
class Aig
{
  public:
    static constexpr size_t kDefaultNodeBudget = size_t(1) << 22;

    explicit Aig(size_t node_budget = kDefaultNodeBudget);

    /** A fresh unconstrained input; returns its (plain) literal. */
    Lit addInput();

    Lit constLit(bool value) const { return value ? kTrueLit : kFalseLit; }

    /** a AND b with folding + structural hashing. */
    Lit mkAnd(Lit a, Lit b);

    Lit mkOr(Lit a, Lit b) { return litNot(mkAnd(litNot(a), litNot(b))); }
    Lit mkXor(Lit a, Lit b);
    Lit mkXnor(Lit a, Lit b) { return litNot(mkXor(a, b)); }
    /** sel ? t : e. */
    Lit mkMux(Lit sel, Lit t, Lit e);

    /** Total nodes (constant + inputs + AND gates). */
    size_t numNodes() const { return nodes_.size(); }

    /** True once the node budget has been exceeded; results built
     *  after that point are unusable (report unknown). */
    bool overflowed() const { return overflowed_; }
    size_t nodeBudget() const { return node_budget_; }

    bool isInput(uint32_t var) const;
    bool isAnd(uint32_t var) const;

    /** Operand literals of an AND node. */
    struct Node
    {
        Lit a = 0;
        Lit b = 0;
    };
    const Node &node(uint32_t var) const { return nodes_[var]; }

    /**
     * Evaluate a literal under concrete input values (indexed by
     * input creation order). Used to validate SAT refutation models
     * and by the solver-core unit tests.
     */
    bool evalLit(Lit root, const std::vector<uint8_t> &input_values) const;

    /** Input ordinal of an input var (creation order). */
    int inputIndex(uint32_t var) const;

  private:
    std::vector<Node> nodes_;          ///< Node 0 = constant false.
    std::vector<int> input_index_;     ///< Per-var input ordinal or -1.
    int num_inputs_ = 0;
    std::unordered_map<uint64_t, uint32_t> hash_;
    size_t node_budget_;
    bool overflowed_ = false;
};

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_AIG_H
