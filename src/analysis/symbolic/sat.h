/**
 * @file
 * A small DPLL-style SAT core for the symbolic equivalence checker.
 *
 * The solver consumes CNF produced by Tseitin-encoding an AIG miter
 * (see cnfFromAig) and decides satisfiability with two-watched-literal
 * unit propagation, a static occurrence-count decision order with
 * polarity-by-majority phases, and chronological backtracking. It is
 * deliberately simple: the equivalence checker's proofs normally
 * succeed *structurally* (the miter folds to constant false in the
 * AIG) or through the known-bits tier, so the SAT core's job is
 * mostly to find *models* — concrete refutation inputs for genuinely
 * wrong merges/lowerings — which DPLL finds quickly. Hard UNSAT
 * instances exhaust the conflict budget and surface honestly as
 * `unknown(budget)`.
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_SAT_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_SAT_H

#include <cstdint>
#include <vector>

#include "analysis/symbolic/aig.h"

namespace hydride {
namespace sym {

enum class SatStatus { Sat, Unsat, Budget };

struct SatResult
{
    SatStatus status = SatStatus::Budget;
    /** Variable assignment when Sat (index = solver var; 0/1).
     *  Unconstrained variables default to 0. */
    std::vector<uint8_t> model;
    long conflicts = 0;
};

/** CNF container + DPLL solver over variables [0, num_vars). */
class SatSolver
{
  public:
    explicit SatSolver(uint32_t num_vars = 0);

    /** Add a clause of literals (encoded 2*var + negated); the
     *  variable set grows automatically. */
    void addClause(std::vector<Lit> clause);

    /** Decide satisfiability within `max_conflicts` conflicts. */
    SatResult solve(long max_conflicts);

    uint32_t numVars() const { return num_vars_; }

  private:
    bool assignedTrue(Lit l) const;
    bool assignedFalse(Lit l) const;
    void assign(Lit l);
    void undoTo(size_t trail_size);
    /** Propagate; returns false on conflict. */
    bool propagate();

    uint32_t num_vars_;
    std::vector<std::vector<Lit>> clauses_;
    std::vector<std::vector<uint32_t>> watches_; ///< Per-lit clause ids.
    std::vector<int8_t> value_;                  ///< -1 / 0 / 1 per var.
    std::vector<Lit> trail_;
    size_t qhead_ = 0;
    bool unsat_ = false; ///< Top-level conflict during addClause.

    struct Decision
    {
        size_t trail_size; ///< Trail length before the decision.
        Lit lit;
        bool flipped;
    };
    std::vector<Decision> decisions_;
};

/**
 * Tseitin-encode the cone of `root` and assert it true. Solver
 * variables coincide with AIG node indices. Returns the number of
 * variables used (max var + 1).
 */
uint32_t cnfFromAig(const Aig &aig, Lit root, SatSolver &solver);

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_SAT_H
