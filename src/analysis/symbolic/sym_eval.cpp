#include "analysis/symbolic/sym_eval.h"

namespace hydride {
namespace sym {

// ---- AigDomain ----------------------------------------------------------

SymVec
AigDomain::binOp(BVBinOp op, const SymVec &a, const SymVec &b)
{
    switch (op) {
      case BVBinOp::Add: return svAdd(aig_, a, b);
      case BVBinOp::Sub: return svSub(aig_, a, b);
      case BVBinOp::Mul: return svMul(aig_, a, b);
      case BVBinOp::UDiv: return svUdiv(aig_, a, b);
      case BVBinOp::URem: return svUrem(aig_, a, b);
      case BVBinOp::And: return svAnd(aig_, a, b);
      case BVBinOp::Or: return svOr(aig_, a, b);
      case BVBinOp::Xor: return svXor(aig_, a, b);
      case BVBinOp::Shl: return svShl(aig_, a, b);
      case BVBinOp::LShr: return svLShr(aig_, a, b);
      case BVBinOp::AShr: return svAShr(aig_, a, b);
      case BVBinOp::AddSatS: return svAddSatS(aig_, a, b);
      case BVBinOp::AddSatU: return svAddSatU(aig_, a, b);
      case BVBinOp::SubSatS: return svSubSatS(aig_, a, b);
      case BVBinOp::SubSatU: return svSubSatU(aig_, a, b);
      case BVBinOp::MinS: return svMinS(aig_, a, b);
      case BVBinOp::MaxS: return svMaxS(aig_, a, b);
      case BVBinOp::MinU: return svMinU(aig_, a, b);
      case BVBinOp::MaxU: return svMaxU(aig_, a, b);
      case BVBinOp::AvgU: return svAvgU(aig_, a, b);
      case BVBinOp::AvgS: return svAvgS(aig_, a, b);
    }
    HYD_ASSERT(false, "unknown BVBinOp in symbolic evaluation");
    return SymVec();
}

SymVec
AigDomain::unOp(BVUnOp op, const SymVec &a)
{
    switch (op) {
      case BVUnOp::Not: return svNot(aig_, a);
      case BVUnOp::Neg: return svNeg(aig_, a);
      case BVUnOp::AbsS: return svAbsS(aig_, a);
      case BVUnOp::Popcount: return svPopcount(aig_, a);
    }
    HYD_ASSERT(false, "unknown BVUnOp in symbolic evaluation");
    return SymVec();
}

SymVec
AigDomain::cast(BVCastOp op, const SymVec &a, int width)
{
    switch (op) {
      case BVCastOp::SExt: return svSext(a, width);
      case BVCastOp::ZExt: return svZext(a, width);
      case BVCastOp::Trunc: return svTrunc(a, width);
      case BVCastOp::SatNarrowS: return svSatNarrowS(aig_, a, width);
      case BVCastOp::SatNarrowU: return svSatNarrowU(aig_, a, width);
    }
    HYD_ASSERT(false, "unknown BVCastOp in symbolic evaluation");
    return SymVec();
}

SymVec
AigDomain::extract(const SymVec &a, int low, int count)
{
    return svExtract(a, low, count);
}

SymVec
AigDomain::concat(const SymVec &high, const SymVec &low)
{
    return svConcat(high, low);
}

SymVec
AigDomain::cmp(BVCmpOp op, const SymVec &a, const SymVec &b)
{
    Lit result = kFalseLit;
    switch (op) {
      case BVCmpOp::Eq: result = svEqLit(aig_, a, b); break;
      case BVCmpOp::Ne: result = litNot(svEqLit(aig_, a, b)); break;
      case BVCmpOp::Ult: result = svUltLit(aig_, a, b); break;
      case BVCmpOp::Ule: result = svUleLit(aig_, a, b); break;
      case BVCmpOp::Slt: result = svSltLit(aig_, a, b); break;
      case BVCmpOp::Sle: result = svSleLit(aig_, a, b); break;
    }
    SymVec out(1);
    out.bits[0] = result;
    return out;
}

SymVec
AigDomain::select(const SymVec &cond, const SymVec &t, const SymVec &e)
{
    return svSelect(aig_, cond, t, e);
}

int
AigDomain::knownBool(const SymVec &v) const
{
    bool all_false = true;
    for (Lit bit : v.bits) {
        if (bit == kTrueLit)
            return 1; // A constant-one bit makes the value nonzero.
        all_false = all_false && bit == kFalseLit;
    }
    return all_false ? 0 : -1;
}

SymVec
AigDomain::shiftConst(BVBinOp op, const SymVec &a, int amount)
{
    switch (op) {
      case BVBinOp::Shl: return svShlConst(a, amount);
      case BVBinOp::LShr: return svLShrConst(a, amount);
      case BVBinOp::AShr: return svAShrConst(a, amount);
      default:
        break;
    }
    HYD_ASSERT(false, "shiftConst on a non-shift operator");
    return SymVec();
}

// ---- KnownBitsDomain ----------------------------------------------------

namespace {

/** Fall back to exact concrete evaluation when everything is known. */
bool
bothKnown(const KnownBits &a, const KnownBits &b)
{
    return a.fullyKnown() && b.fullyKnown();
}

} // namespace

KnownBits
KnownBitsDomain::binOp(BVBinOp op, const KnownBits &a, const KnownBits &b) const
{
    switch (op) {
      case BVBinOp::Add: return kbAdd(a, b);
      case BVBinOp::Sub: return kbSub(a, b);
      case BVBinOp::And: return kbAnd(a, b);
      case BVBinOp::Or: return kbOr(a, b);
      case BVBinOp::Xor: return kbXor(a, b);
      case BVBinOp::Shl:
        if (b.fullyKnown())
            return kbShl(a, shiftAmountOf(b.concreteValue()));
        break;
      case BVBinOp::LShr:
        if (b.fullyKnown())
            return kbLShr(a, shiftAmountOf(b.concreteValue()));
        break;
      case BVBinOp::AShr:
        if (b.fullyKnown())
            return kbAShr(a, shiftAmountOf(b.concreteValue()));
        break;
      default:
        break;
    }
    // Remaining ops: exact when fully known, top otherwise — those
    // queries are decided by the AIG/SAT tier instead.
    if (bothKnown(a, b))
        return KnownBits::constant(
            applyBVBinOp(op, a.concreteValue(), b.concreteValue()));
    return KnownBits::top(a.width());
}

KnownBits
KnownBitsDomain::unOp(BVUnOp op, const KnownBits &a) const
{
    switch (op) {
      case BVUnOp::Not: return kbNot(a);
      case BVUnOp::Neg: return kbNeg(a);
      case BVUnOp::AbsS:
        if (a.fullyKnown())
            return KnownBits::constant(a.concreteValue().absS());
        return KnownBits::top(a.width());
      case BVUnOp::Popcount:
        if (a.fullyKnown())
            return KnownBits::constant(a.concreteValue().popcount());
        return KnownBits::top(a.width());
    }
    HYD_ASSERT(false, "unknown BVUnOp in known-bits evaluation");
    return KnownBits();
}

KnownBits
KnownBitsDomain::cast(BVCastOp op, const KnownBits &a, int width) const
{
    switch (op) {
      case BVCastOp::SExt: return kbSext(a, width);
      case BVCastOp::ZExt: return kbZext(a, width);
      case BVCastOp::Trunc: return kbTrunc(a, width);
      case BVCastOp::SatNarrowS:
        if (a.fullyKnown())
            return KnownBits::constant(a.concreteValue().satNarrowS(width));
        return KnownBits::top(width);
      case BVCastOp::SatNarrowU:
        if (a.fullyKnown())
            return KnownBits::constant(a.concreteValue().satNarrowU(width));
        return KnownBits::top(width);
    }
    HYD_ASSERT(false, "unknown BVCastOp in known-bits evaluation");
    return KnownBits();
}

KnownBits
KnownBitsDomain::extract(const KnownBits &a, int low, int count) const
{
    return kbExtract(a, low, count);
}

KnownBits
KnownBitsDomain::concat(const KnownBits &high, const KnownBits &low) const
{
    return kbConcat(high, low);
}

KnownBits
KnownBitsDomain::cmp(BVCmpOp op, const KnownBits &a, const KnownBits &b) const
{
    switch (op) {
      case BVCmpOp::Eq: return kbEq(a, b);
      case BVCmpOp::Ne: return kbNe(a, b);
      case BVCmpOp::Ult: return kbUlt(a, b);
      case BVCmpOp::Ule: return kbUle(a, b);
      case BVCmpOp::Slt: return kbSlt(a, b);
      case BVCmpOp::Sle: return kbSle(a, b);
    }
    HYD_ASSERT(false, "unknown BVCmpOp in known-bits evaluation");
    return KnownBits();
}

KnownBits
KnownBitsDomain::select(const KnownBits &cond, const KnownBits &t,
                        const KnownBits &e) const
{
    return kbSelect(cond, t, e);
}

int
KnownBitsDomain::knownBool(const KnownBits &v) const
{
    if (!v.value.isZero())
        return 1; // Some bit is known one.
    return v.fullyKnown() ? 0 : -1;
}

KnownBits
KnownBitsDomain::shiftConst(BVBinOp op, const KnownBits &a, int amount) const
{
    switch (op) {
      case BVBinOp::Shl: return kbShl(a, amount);
      case BVBinOp::LShr: return kbLShr(a, amount);
      case BVBinOp::AShr: return kbAShr(a, amount);
      default:
        break;
    }
    HYD_ASSERT(false, "shiftConst on a non-shift operator");
    return KnownBits();
}

} // namespace sym
} // namespace hydride
