#include "analysis/symbolic/sat.h"

#include <algorithm>
#include <numeric>

namespace hydride {
namespace sym {

SatSolver::SatSolver(uint32_t num_vars)
    : num_vars_(0)
{
    if (num_vars) {
        num_vars_ = num_vars;
        watches_.resize(2 * num_vars);
        value_.assign(num_vars, -1);
    }
}

bool
SatSolver::assignedTrue(Lit l) const
{
    const int8_t v = value_[litVar(l)];
    return v >= 0 && (v != 0) == !litInverted(l);
}

bool
SatSolver::assignedFalse(Lit l) const
{
    const int8_t v = value_[litVar(l)];
    return v >= 0 && (v != 0) == litInverted(l);
}

void
SatSolver::assign(Lit l)
{
    value_[litVar(l)] = litInverted(l) ? 0 : 1;
    trail_.push_back(l);
}

void
SatSolver::undoTo(size_t trail_size)
{
    while (trail_.size() > trail_size) {
        value_[litVar(trail_.back())] = -1;
        trail_.pop_back();
    }
    qhead_ = trail_size;
}

void
SatSolver::addClause(std::vector<Lit> clause)
{
    // Grow the variable set on demand.
    uint32_t max_var = 0;
    for (Lit l : clause)
        max_var = std::max(max_var, litVar(l));
    if (max_var >= num_vars_) {
        num_vars_ = max_var + 1;
        watches_.resize(2 * num_vars_);
        value_.resize(num_vars_, -1);
    }

    // Dedup literals; drop tautologies.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    for (size_t i = 0; i + 1 < clause.size(); ++i)
        if (clause[i] == litNot(clause[i + 1]))
            return;

    if (clause.empty()) {
        unsat_ = true;
        return;
    }
    const uint32_t id = static_cast<uint32_t>(clauses_.size());
    clauses_.push_back(std::move(clause));
    const std::vector<Lit> &c = clauses_.back();
    watches_[c[0]].push_back(id);
    watches_[c.size() > 1 ? c[1] : c[0]].push_back(id);
}

bool
SatSolver::propagate()
{
    while (qhead_ < trail_.size()) {
        const Lit assigned = trail_[qhead_++];
        const Lit falsified = litNot(assigned);
        std::vector<uint32_t> &watch = watches_[falsified];
        size_t keep = 0;
        for (size_t i = 0; i < watch.size(); ++i) {
            const uint32_t id = watch[i];
            std::vector<Lit> &c = clauses_[id];
            // Put the falsified watch in slot 1.
            if (c.size() > 1 && c[0] == falsified)
                std::swap(c[0], c[1]);
            if (assignedTrue(c[0])) {
                watch[keep++] = id;
                continue;
            }
            // Find a replacement watch.
            bool moved = false;
            for (size_t k = 2; k < c.size(); ++k) {
                if (!assignedFalse(c[k])) {
                    std::swap(c[1], c[k]);
                    watches_[c[1]].push_back(id);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;
            watch[keep++] = id;
            if (c.size() == 1 || assignedFalse(c[0])) {
                // Conflict: keep the remaining watches intact.
                for (size_t k = i + 1; k < watch.size(); ++k)
                    watch[keep++] = watch[k];
                watch.resize(keep);
                return false;
            }
            assign(c[0]); // Unit.
        }
        watch.resize(keep);
    }
    return true;
}

SatResult
SatSolver::solve(long max_conflicts)
{
    SatResult result;
    if (unsat_) {
        result.status = SatStatus::Unsat;
        return result;
    }

    // Static decision order: occurrence count descending; preferred
    // phase: the polarity seen more often (satisfies more clauses).
    std::vector<long> occur(2 * num_vars_, 0);
    for (const auto &c : clauses_)
        for (Lit l : c)
            ++occur[l];
    std::vector<uint32_t> order(num_vars_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return occur[2 * a] + occur[2 * a + 1] >
                                occur[2 * b] + occur[2 * b + 1];
                     });
    std::vector<uint8_t> phase(num_vars_, 0);
    for (uint32_t v = 0; v < num_vars_; ++v)
        phase[v] = occur[2 * v] >= occur[2 * v + 1] ? 1 : 0;

    // Assert unit clauses up front (they are watched twice on the
    // same literal; propagate handles them, seeded here).
    for (const auto &c : clauses_) {
        if (c.size() == 1) {
            if (assignedFalse(c[0])) {
                result.status = SatStatus::Unsat;
                return result;
            }
            if (!assignedTrue(c[0]))
                assign(c[0]);
        }
    }

    size_t cursor = 0;
    while (true) {
        if (!propagate()) {
            ++result.conflicts;
            if (result.conflicts >= max_conflicts) {
                result.status = SatStatus::Budget;
                return result;
            }
            // Chronological backtracking: flip the deepest decision
            // that still has an untried phase.
            bool flipped = false;
            while (!decisions_.empty()) {
                Decision &d = decisions_.back();
                undoTo(d.trail_size);
                if (d.flipped) {
                    decisions_.pop_back();
                    continue;
                }
                d.flipped = true;
                d.lit = litNot(d.lit);
                assign(d.lit);
                flipped = true;
                break;
            }
            if (!flipped) {
                result.status = SatStatus::Unsat;
                return result;
            }
            cursor = 0;
            continue;
        }
        // Decide.
        while (cursor < order.size() && value_[order[cursor]] >= 0)
            ++cursor;
        if (cursor == order.size()) {
            result.status = SatStatus::Sat;
            result.model.assign(num_vars_, 0);
            for (uint32_t v = 0; v < num_vars_; ++v)
                result.model[v] = value_[v] > 0 ? 1 : 0;
            // Reset solver state so solve() could run again.
            undoTo(0);
            decisions_.clear();
            return result;
        }
        const uint32_t var = order[cursor];
        const Lit lit = (var << 1) | (phase[var] ? 0u : 1u);
        decisions_.push_back({trail_.size(), lit, false});
        assign(lit);
    }
}

uint32_t
cnfFromAig(const Aig &aig, Lit root, SatSolver &solver)
{
    if (root == kFalseLit) {
        solver.addClause({}); // Trivially unsatisfiable.
        return 0;
    }
    if (root == kTrueLit)
        return 0; // Trivially satisfiable: no constraints.

    // Tseitin over the cone of root. Solver var == AIG var.
    const uint32_t root_var = litVar(root);
    std::vector<uint8_t> in_cone(root_var + 1, 0);
    std::vector<uint32_t> stack = {root_var};
    in_cone[root_var] = 1;
    while (!stack.empty()) {
        const uint32_t var = stack.back();
        stack.pop_back();
        if (!aig.isAnd(var))
            continue;
        const Aig::Node &n = aig.node(var);
        for (Lit operand : {n.a, n.b}) {
            const uint32_t v = litVar(operand);
            if (v != 0 && !in_cone[v]) {
                in_cone[v] = 1;
                stack.push_back(v);
            }
        }
    }
    for (uint32_t var = 1; var <= root_var; ++var) {
        if (!in_cone[var] || !aig.isAnd(var))
            continue;
        const Aig::Node &n = aig.node(var);
        const Lit g = var << 1;
        // g -> a, g -> b, (a & b) -> g.
        solver.addClause({litNot(g), n.a});
        solver.addClause({litNot(g), n.b});
        solver.addClause({g, litNot(n.a), litNot(n.b)});
    }
    solver.addClause({root});
    return root_var + 1;
}

} // namespace sym
} // namespace hydride
