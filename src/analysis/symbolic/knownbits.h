/**
 * @file
 * Known-bits abstract domain: the fast first tier of the symbolic
 * equivalence checker (docs/symbolic_engine.md).
 *
 * A KnownBits value tracks, per bit, whether the bit is determined and
 * if so what it is. Transfer functions are *sound over-approximations*
 * of the concrete BitVector semantics: every concrete value an
 * expression can take is represented by the abstract result. The
 * checker uses this tier two ways:
 *  - if both sides of an equivalence query evaluate to fully-known,
 *    equal values, the query is proved without touching the AIG;
 *  - if the two sides disagree on a bit both claim to know, the
 *    all-zeros-for-unknowns assignment is a candidate refutation
 *    model (always re-validated concretely before being reported).
 *
 * Precision policy: bitwise ops, add/sub (per-bit carry enumeration),
 * shifts by known amounts, extensions, truncation, extract, concat and
 * select get real transfer functions. Everything else (mul, division,
 * saturating ops, min/max, averages, popcount) is computed exactly
 * when all operands are fully known and degrades to top otherwise —
 * those queries fall through to the AIG/SAT tier.
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_KNOWNBITS_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_KNOWNBITS_H

#include "hir/bitvector.h"

namespace hydride {
namespace sym {

struct KnownBits
{
    /** Mask of determined bits (1 = known). */
    BitVector known;
    /** Values of the determined bits; unknown positions are zero. */
    BitVector value;

    KnownBits() = default;
    KnownBits(BitVector known_mask, BitVector known_value);

    int width() const { return known.width(); }

    /** Nothing known. */
    static KnownBits top(int width);

    /** Fully-known constant. */
    static KnownBits constant(const BitVector &v);

    bool fullyKnown() const;

    /** The concrete value; only meaningful when fullyKnown(). */
    const BitVector &concreteValue() const { return value; }

    /** Smallest / largest possible value, unsigned interpretation. */
    BitVector uminVal() const { return value; }
    BitVector umaxVal() const { return value.bvor(known.bvnot()); }

    /** Smallest / largest possible value, signed interpretation. */
    BitVector sminVal() const;
    BitVector smaxVal() const;

    /** Lattice join: keep bits both sides know and agree on. */
    static KnownBits join(const KnownBits &a, const KnownBits &b);

    /** True if `v` is represented by this abstract value. */
    bool contains(const BitVector &v) const;
};

// ---- Precise transfer functions ----------------------------------------

KnownBits kbNot(const KnownBits &a);
KnownBits kbAnd(const KnownBits &a, const KnownBits &b);
KnownBits kbOr(const KnownBits &a, const KnownBits &b);
KnownBits kbXor(const KnownBits &a, const KnownBits &b);

/** a + b (+1 when `carry_in`); per-bit carry-set enumeration. */
KnownBits kbAdd(const KnownBits &a, const KnownBits &b,
                bool carry_in = false);
/** a - b, as a + ~b + 1. */
KnownBits kbSub(const KnownBits &a, const KnownBits &b);
KnownBits kbNeg(const KnownBits &a);

/** Shifts by a *known* amount, mirroring BitVector's >=width clamps. */
KnownBits kbShl(const KnownBits &a, int amount);
KnownBits kbLShr(const KnownBits &a, int amount);
KnownBits kbAShr(const KnownBits &a, int amount);

KnownBits kbZext(const KnownBits &a, int new_width);
KnownBits kbSext(const KnownBits &a, int new_width);
KnownBits kbTrunc(const KnownBits &a, int new_width);
KnownBits kbExtract(const KnownBits &a, int low, int count);
KnownBits kbConcat(const KnownBits &high, const KnownBits &low);

/** Mirrors Select: cond == 0 picks `e`, anything else picks `t`. */
KnownBits kbSelect(const KnownBits &cond, const KnownBits &t,
                   const KnownBits &e);

// ---- Comparisons (1-bit results) ---------------------------------------

KnownBits kbEq(const KnownBits &a, const KnownBits &b);
KnownBits kbNe(const KnownBits &a, const KnownBits &b);
KnownBits kbUlt(const KnownBits &a, const KnownBits &b);
KnownBits kbUle(const KnownBits &a, const KnownBits &b);
KnownBits kbSlt(const KnownBits &a, const KnownBits &b);
KnownBits kbSle(const KnownBits &a, const KnownBits &b);

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_KNOWNBITS_H
