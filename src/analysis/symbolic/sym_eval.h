/**
 * @file
 * Symbolic evaluation of Hydride IR over pluggable abstract domains.
 *
 * `evalBVDom` is the symbolic twin of `evalBV` (hir/expr.cpp): same
 * node dispatch, same width assertions, same integer sub-expression
 * handling (Int-typed operands — widths, indices, loop bounds — are
 * always *concrete* and evaluated with the ordinary `evalInt`; only
 * BV-typed dataflow becomes symbolic). It is templated on a Domain so
 * the known-bits tier and the AIG bit-blasting tier share one
 * evaluator and cannot diverge structurally.
 *
 * `evalSemanticsDom` mirrors `CanonicalSemantics::evaluate` the same
 * way, using the shared `templateFor(i, j)` selection hook.
 *
 * One deliberate semantic difference: concrete Select evaluation is
 * lazy (only the taken branch runs), while symbolic evaluation must
 * in general evaluate both branches and mux. When the condition folds
 * to a constant the evaluator takes only that branch — vendor
 * pseudocode routinely guards out-of-range extracts behind
 * lane-index comparisons that are concrete once loop variables are
 * bound (alignr/vext are the canonical case), and expanding the dead
 * branch would raise a spurious evaluation error. If the untaken
 * branch of a genuinely *symbolic* condition raises one, the query
 * throws where a concrete run would not — the equivalence checker
 * catches AssertionError and reports `unknown`, which is sound.
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_SYM_EVAL_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_SYM_EVAL_H

#include "analysis/symbolic/bitblast.h"
#include "analysis/symbolic/knownbits.h"
#include "hir/semantics.h"
#include "support/error.h"

namespace hydride {
namespace sym {

/** Bit-blasting domain: values are AIG literal vectors. */
class AigDomain
{
  public:
    using Value = SymVec;

    explicit AigDomain(Aig &aig)
        : aig_(aig)
    {
    }

    Aig &aig() { return aig_; }

    Value constant(const BitVector &v) const { return svConst(v); }
    Value makeZero(int width) const { return svConst(BitVector(width)); }
    int widthOf(const Value &v) const { return v.width(); }
    void setSlice(Value &acc, int low, const Value &v) const
    {
        acc.setSlice(low, v);
    }

    Value binOp(BVBinOp op, const Value &a, const Value &b);
    Value unOp(BVUnOp op, const Value &a);
    Value cast(BVCastOp op, const Value &a, int width);
    Value extract(const Value &a, int low, int count);
    Value concat(const Value &high, const Value &low);
    Value cmp(BVCmpOp op, const Value &a, const Value &b);
    Value select(const Value &cond, const Value &t, const Value &e);
    /** Shift by a concrete amount (op must be Shl/LShr/AShr). */
    Value shiftConst(BVBinOp op, const Value &a, int amount);
    /** 1 / 0 when the value is definitely nonzero / zero, -1 else. */
    int knownBool(const Value &v) const;

  private:
    Aig &aig_;
};

/** Known-bits domain: sound abstract interpretation, no AIG nodes. */
class KnownBitsDomain
{
  public:
    using Value = KnownBits;

    Value constant(const BitVector &v) const { return KnownBits::constant(v); }
    Value makeZero(int width) const
    {
        return KnownBits::constant(BitVector(width));
    }
    int widthOf(const Value &v) const { return v.width(); }
    void setSlice(Value &acc, int low, const Value &v) const
    {
        acc.known.setSlice(low, v.known);
        acc.value.setSlice(low, v.value);
    }

    Value binOp(BVBinOp op, const Value &a, const Value &b) const;
    Value unOp(BVUnOp op, const Value &a) const;
    Value cast(BVCastOp op, const Value &a, int width) const;
    Value extract(const Value &a, int low, int count) const;
    Value concat(const Value &high, const Value &low) const;
    Value cmp(BVCmpOp op, const Value &a, const Value &b) const;
    Value select(const Value &cond, const Value &t, const Value &e) const;
    /** Shift by a concrete amount (op must be Shl/LShr/AShr). */
    Value shiftConst(BVBinOp op, const Value &a, int amount) const;
    /** 1 / 0 when the value is definitely nonzero / zero, -1 else. */
    int knownBool(const Value &v) const;

    // AbstractDomain lattice surface (analysis/dataflow/domain.h):
    // the known-bits domain behind the same interface as the
    // interval domain, so the reduced product can compose them.
    Value top(int width) const { return KnownBits::top(width); }
    Value join(const Value &a, const Value &b) const
    {
        return KnownBits::join(a, b);
    }
    bool contains(const Value &v, const BitVector &c) const
    {
        return v.contains(c);
    }
};

/** Environment: symbolic BV arguments + concrete integer state. */
template <typename Domain>
struct DomEnv
{
    const std::vector<typename Domain::Value> *bv_args = nullptr;
    /** Concrete environment for Int-typed sub-expressions (its own
     *  bv_args member stays null; evalInt never touches BV state). */
    EvalEnv ints;
};

template <typename Domain>
typename Domain::Value
evalBVDom(Domain &dom, const ExprPtr &expr, const DomEnv<Domain> &env)
{
    using Value = typename Domain::Value;
    switch (expr->kind) {
      case ExprKind::ArgBV: {
        HYD_ASSERT(env.bv_args &&
                   expr->value < static_cast<int64_t>(env.bv_args->size()),
                   "bitvector argument missing during symbolic evaluation");
        return (*env.bv_args)[expr->value];
      }
      case ExprKind::BVConst: {
        const int width = static_cast<int>(evalInt(expr->kids[0], env.ints));
        const int64_t value = evalInt(expr->kids[1], env.ints);
        return dom.constant(BitVector::fromInt(width, value));
      }
      case ExprKind::BVBin: {
        const Value a = evalBVDom(dom, expr->kids[0], env);
        const Value b = evalBVDom(dom, expr->kids[1], env);
        HYD_ASSERT(dom.widthOf(a) == dom.widthOf(b),
                   "bvBin operand width mismatch during symbolic evaluation");
        return dom.binOp(static_cast<BVBinOp>(expr->value), a, b);
      }
      case ExprKind::BVUn:
        return dom.unOp(static_cast<BVUnOp>(expr->value),
                        evalBVDom(dom, expr->kids[0], env));
      case ExprKind::BVCast: {
        const Value a = evalBVDom(dom, expr->kids[0], env);
        const int width = static_cast<int>(evalInt(expr->kids[1], env.ints));
        return dom.cast(static_cast<BVCastOp>(expr->value), a, width);
      }
      case ExprKind::Extract: {
        const Value a = evalBVDom(dom, expr->kids[0], env);
        const int low = static_cast<int>(evalInt(expr->kids[1], env.ints));
        const int width = static_cast<int>(evalInt(expr->kids[2], env.ints));
        return dom.extract(a, low, width);
      }
      case ExprKind::Concat: {
        const Value high = evalBVDom(dom, expr->kids[0], env);
        const Value low = evalBVDom(dom, expr->kids[1], env);
        return dom.concat(high, low);
      }
      case ExprKind::BVCmp: {
        const Value a = evalBVDom(dom, expr->kids[0], env);
        const Value b = evalBVDom(dom, expr->kids[1], env);
        HYD_ASSERT(dom.widthOf(a) == dom.widthOf(b),
                   "bvCmp operand width mismatch during symbolic evaluation");
        return dom.cmp(static_cast<BVCmpOp>(expr->value), a, b);
      }
      case ExprKind::Select: {
        const Value cond = evalBVDom(dom, expr->kids[0], env);
        // Mirror concrete laziness when the condition is decided:
        // dead branches may be genuinely unevaluable (range guards).
        const int taken = dom.knownBool(cond);
        if (taken >= 0)
            return evalBVDom(dom, expr->kids[taken ? 1 : 2], env);
        const Value t = evalBVDom(dom, expr->kids[1], env);
        const Value e = evalBVDom(dom, expr->kids[2], env);
        return dom.select(cond, t, e);
      }
      case ExprKind::Hole:
        HYD_ASSERT(false, "symbolic evaluation of an unfilled hole");
      default:
        HYD_ASSERT(false, "evalBVDom on an Int-typed node");
    }
    // Unreachable; HYD_ASSERT(false, ...) throws.
    return Value();
}

/**
 * Symbolic twin of CanonicalSemantics::evaluate: same loop nest, same
 * template selection (templateFor), same element width check.
 */
template <typename Domain>
typename Domain::Value
evalSemanticsDom(Domain &dom, const CanonicalSemantics &sem,
                 const std::vector<typename Domain::Value> &args,
                 const std::vector<int64_t> &param_values,
                 const std::vector<int64_t> &int_arg_values = {})
{
    HYD_ASSERT(int_arg_values.size() == sem.int_args.size(),
               "integer argument count mismatch for " + sem.name);
    DomEnv<Domain> env;
    env.bv_args = &args;
    env.ints.param_values = &param_values;
    for (size_t i = 0; i < sem.int_args.size(); ++i)
        env.ints.named[sem.int_args[i]] = int_arg_values[i];

    const int64_t outer = evalInt(sem.outer_count, env.ints);
    const int64_t inner = evalInt(sem.inner_count, env.ints);
    const int width = static_cast<int>(evalInt(sem.elem_width, env.ints));
    HYD_ASSERT(outer >= 1 && inner >= 1 && width >= 1,
               "degenerate canonical loop bounds");

    typename Domain::Value out =
        dom.makeZero(static_cast<int>(outer * inner * width));
    for (int64_t i = 0; i < outer; ++i) {
        for (int64_t j = 0; j < inner; ++j) {
            env.ints.loop_i = i;
            env.ints.loop_j = j;
            const typename Domain::Value elem =
                evalBVDom(dom, sem.templateFor(i, j), env);
            HYD_ASSERT(dom.widthOf(elem) == width,
                       "template produced mis-sized element in " + sem.name);
            dom.setSlice(out, static_cast<int>((i * inner + j) * width), elem);
        }
    }
    return out;
}

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_SYM_EVAL_H
