/**
 * @file
 * Bit-blasting: symbolic BitVector operations over AIG literals.
 *
 * SymVec is the symbolic twin of hir::BitVector — one AIG literal per
 * bit, LSB first. Every operation here mirrors the corresponding
 * BitVector method *by construction*: where the concrete code is a
 * composition (sub = add(neg), addSatS = sext+add+satNarrowS, sdiv =
 * sign/magnitude around udiv, ...), the symbolic code performs the
 * same composition on literals, so concrete/symbolic agreement is
 * structural rather than re-derived. The differential fuzz tests in
 * tests/test_symbolic.cpp pin that agreement by exhaustive enumeration
 * on small widths.
 *
 * Division by zero follows the concrete (SMT-LIB) convention: udiv
 * yields all-ones, urem yields the dividend — both fall out of the
 * restoring-division circuit without a special case, exactly as the
 * signed wrappers rely on them concretely.
 *
 * Shifts by a *symbolic* amount are barrel shifters with an explicit
 * "amount >= width" clamp matching `shiftAmount()` in hir/expr.cpp
 * (over-wide shifts produce zeros, or sign fill for ashr).
 */
#ifndef HYDRIDE_ANALYSIS_SYMBOLIC_BITBLAST_H
#define HYDRIDE_ANALYSIS_SYMBOLIC_BITBLAST_H

#include <vector>

#include "analysis/symbolic/aig.h"
#include "hir/bitvector.h"

namespace hydride {
namespace sym {

/** A symbolic bitvector: one literal per bit, bit 0 = LSB. */
struct SymVec
{
    std::vector<Lit> bits;

    SymVec() = default;
    explicit SymVec(int width)
        : bits(static_cast<size_t>(width), kFalseLit)
    {
    }

    int width() const { return static_cast<int>(bits.size()); }

    /** Copy `value`'s literals into bits [low, low + value.width()). */
    void setSlice(int low, const SymVec &value);
};

/** Constant vector (no fresh nodes). */
SymVec svConst(const BitVector &value);

/** Fresh unconstrained inputs, one per bit. */
SymVec svInputs(Aig &aig, int width);

/** Concrete evaluation of a SymVec under per-input 0/1 values. */
BitVector svEval(const Aig &aig, const SymVec &v,
                 const std::vector<uint8_t> &input_values);

// ---- Bitwise ------------------------------------------------------------

SymVec svAnd(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svOr(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svXor(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svNot(Aig &aig, const SymVec &a);

/** Per-bit mux: sel ? t : e. */
SymVec svMux(Aig &aig, Lit sel, const SymVec &t, const SymVec &e);

// ---- Arithmetic (modular) -----------------------------------------------

SymVec svAdd(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSub(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svNeg(Aig &aig, const SymVec &a);
SymVec svMul(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svUdiv(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svUrem(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSdiv(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSrem(Aig &aig, const SymVec &a, const SymVec &b);

// ---- Shifts -------------------------------------------------------------

SymVec svShlConst(const SymVec &a, int amount);
SymVec svLShrConst(const SymVec &a, int amount);
SymVec svAShrConst(const SymVec &a, int amount);

/** Barrel shifters; amount >= width clamps like the concrete engine. */
SymVec svShl(Aig &aig, const SymVec &a, const SymVec &amount);
SymVec svLShr(Aig &aig, const SymVec &a, const SymVec &amount);
SymVec svAShr(Aig &aig, const SymVec &a, const SymVec &amount);

// ---- Saturating arithmetic ----------------------------------------------

SymVec svAddSatS(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svAddSatU(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSubSatS(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSubSatU(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svSatNarrowS(Aig &aig, const SymVec &a, int to_width);
SymVec svSatNarrowU(Aig &aig, const SymVec &a, int to_width);

// ---- Min/max/abs/average/popcount ---------------------------------------

SymVec svMinS(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svMaxS(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svMinU(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svMaxU(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svAbsS(Aig &aig, const SymVec &a);
SymVec svAvgU(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svAvgS(Aig &aig, const SymVec &a, const SymVec &b);
SymVec svPopcount(Aig &aig, const SymVec &a);

// ---- Width changes ------------------------------------------------------

SymVec svZext(const SymVec &a, int new_width);
SymVec svSext(const SymVec &a, int new_width);
SymVec svTrunc(const SymVec &a, int new_width);
SymVec svExtract(const SymVec &a, int low, int count);
SymVec svConcat(const SymVec &high, const SymVec &low);

// ---- Comparisons (single-literal results) -------------------------------

Lit svEqLit(Aig &aig, const SymVec &a, const SymVec &b);
Lit svUltLit(Aig &aig, const SymVec &a, const SymVec &b);
Lit svUleLit(Aig &aig, const SymVec &a, const SymVec &b);
Lit svSltLit(Aig &aig, const SymVec &a, const SymVec &b);
Lit svSleLit(Aig &aig, const SymVec &a, const SymVec &b);

/** OR-reduction: true iff any bit set (mirrors !isZero()). */
Lit svNonzeroLit(Aig &aig, const SymVec &a);

/** Mirrors Select: cond == 0 picks `e`, anything else picks `t`. */
SymVec svSelect(Aig &aig, const SymVec &cond, const SymVec &t,
                const SymVec &e);

} // namespace sym
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_SYMBOLIC_BITBLAST_H
