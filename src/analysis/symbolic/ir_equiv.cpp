#include "analysis/symbolic/ir_equiv.h"

#include "observability/bench/phase_profiler.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/error.h"
#include "support/timing.h"

namespace hydride {
namespace sym {

namespace {

// ---- Generic evaluators (shared between both symbolic domains) ---------

template <typename Domain>
std::vector<typename Domain::Value>
gatherArgs(Domain &dom, const std::vector<ValueRef> &refs,
           const std::vector<typename Domain::Value> &inputs,
           const std::vector<BitVector> &constants,
           const std::vector<typename Domain::Value> &values)
{
    std::vector<typename Domain::Value> args;
    args.reserve(refs.size());
    for (const ValueRef &ref : refs) {
        if (ref.kind == ValueRef::Input) {
            HYD_ASSERT(ref.index < static_cast<int>(inputs.size()),
                       "input reference out of range");
            args.push_back(inputs[ref.index]);
        } else if (ref.kind == ValueRef::Const) {
            HYD_ASSERT(ref.index < static_cast<int>(constants.size()),
                       "constant reference out of range");
            args.push_back(dom.constant(constants[ref.index]));
        } else {
            HYD_ASSERT(ref.index < static_cast<int>(values.size()),
                       "forward instruction reference");
            args.push_back(values[ref.index]);
        }
    }
    return args;
}

/** Representative view of one dictionary variant (AutoLLVMDict::run). */
template <typename Domain>
typename Domain::Value
runVariantDom(Domain &dom, const AutoLLVMDict &dict,
              const AutoOpVariant &variant,
              const std::vector<typename Domain::Value> &args,
              const std::vector<int64_t> &int_args)
{
    const ClassMember &member = variant.member(dict);
    const CanonicalSemantics &rep = dict.cls(variant.class_id).rep;
    return evalSemanticsDom(dom, rep, args, member.param_values, int_args);
}

/** Hardware view: member's own semantics, argument permutation undone.
 *  `args` arrive in representative order (as TargetInst stores them). */
template <typename Domain>
typename Domain::Value
runMemberHWDom(Domain &dom, const AutoLLVMDict &dict,
               const AutoOpVariant &variant,
               const std::vector<typename Domain::Value> &args,
               const std::vector<int64_t> &int_args)
{
    const ClassMember &member = variant.member(dict);
    HYD_ASSERT(member.arg_perm.empty() ||
                   member.arg_perm.size() == args.size(),
               "argument permutation arity mismatch for " + member.name);
    HYD_ASSERT(member.concrete.bv_args.size() == args.size(),
               "member semantics arity mismatch for " + member.name);
    std::vector<typename Domain::Value> member_args(args.size());
    // rep arg k reads the member's original arg arg_perm[k], so the
    // member's original arg arg_perm[k] receives rep arg k (empty
    // permutation = identity).
    for (size_t k = 0; k < args.size(); ++k)
        member_args[member.arg_perm.empty() ? k : member.arg_perm[k]] =
            args[k];
    return evalSemanticsDom(dom, member.concrete, member_args, {}, int_args);
}

template <typename Domain>
typename Domain::Value
evalModuleDom(Domain &dom, const AutoLLVMDict &dict, const AutoModule &m,
              const std::vector<typename Domain::Value> &inputs)
{
    HYD_ASSERT(inputs.size() == m.input_widths.size(),
               "module input arity mismatch");
    HYD_ASSERT(!m.insts.empty(), "empty AutoLLVM module");
    std::vector<typename Domain::Value> values;
    values.reserve(m.insts.size());
    for (const AutoInst &inst : m.insts) {
        const auto args =
            gatherArgs(dom, inst.args, inputs, m.constants, values);
        values.push_back(
            runVariantDom(dom, dict, inst.op, args, inst.int_args));
    }
    const int out = m.result < 0 ? static_cast<int>(m.insts.size()) - 1
                                 : m.result;
    return values[out];
}

template <typename Domain>
typename Domain::Value
evalTargetHWDom(Domain &dom, const AutoLLVMDict &dict,
                const TargetProgram &p,
                const std::vector<typename Domain::Value> &inputs)
{
    std::vector<typename Domain::Value> values;
    values.reserve(p.insts.size());
    for (const TargetInst &inst : p.insts) {
        const auto args =
            gatherArgs(dom, inst.args, inputs, p.constants, values);
        values.push_back(
            runMemberHWDom(dom, dict, inst.op, args, inst.int_args));
    }
    if (!p.results.empty()) {
        auto value_of = [&](const ValueRef &ref) {
            if (ref.kind == ValueRef::Input)
                return inputs[ref.index];
            if (ref.kind == ValueRef::Const)
                return dom.constant(p.constants[ref.index]);
            return values[ref.index];
        };
        // Low part first, matching TargetProgram::evaluate.
        typename Domain::Value out = value_of(p.results[0]);
        for (size_t r = 1; r < p.results.size(); ++r)
            out = dom.concat(value_of(p.results[r]), out);
        return out;
    }
    HYD_ASSERT(!values.empty(), "empty target program");
    const int out = p.result < 0 ? static_cast<int>(p.insts.size()) - 1
                                 : p.result;
    return values[out];
}

/** Symbolic twin of evalHalide: same per-lane loops, same operators. */
template <typename Domain>
typename Domain::Value
evalHalideDom(Domain &dom, const HExprPtr &expr,
              const std::vector<typename Domain::Value> &inputs)
{
    using Value = typename Domain::Value;
    const int ew = expr->elem_width;
    const int lanes = expr->lanes;
    auto eval_kid = [&](int k) {
        return evalHalideDom(dom, expr->kids[k], inputs);
    };

    switch (expr->op) {
      case HOp::Input: {
        HYD_ASSERT(expr->imm < static_cast<int64_t>(inputs.size()),
                   "halide input index out of range");
        const Value &value = inputs[expr->imm];
        HYD_ASSERT(dom.widthOf(value) == expr->totalWidth(),
                   "halide input width mismatch");
        return value;
      }
      case HOp::ConstSplat: {
        BitVector out(expr->totalWidth());
        const BitVector elem = BitVector::fromInt(ew, expr->imm);
        for (int lane = 0; lane < lanes; ++lane)
            out.setSlice(lane * ew, elem);
        return dom.constant(out);
      }
      case HOp::Cast: {
        const Value a = eval_kid(0);
        const int from = expr->kids[0]->elem_width;
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            Value elem = dom.extract(a, lane * from, from);
            if (ew > from)
                elem = dom.cast(expr->sign ? BVCastOp::SExt : BVCastOp::ZExt,
                                elem, ew);
            else if (ew < from)
                elem = dom.cast(BVCastOp::Trunc, elem, ew);
            dom.setSlice(out, lane * ew, elem);
        }
        return out;
      }
      case HOp::SatNarrowS:
      case HOp::SatNarrowU: {
        const Value a = eval_kid(0);
        const int from = expr->kids[0]->elem_width;
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            Value elem = dom.extract(a, lane * from, from);
            elem = dom.cast(expr->op == HOp::SatNarrowS
                                ? BVCastOp::SatNarrowS
                                : BVCastOp::SatNarrowU,
                            elem, ew);
            dom.setSlice(out, lane * ew, elem);
        }
        return out;
      }
      case HOp::ReduceAdd: {
        const Value a = eval_kid(0);
        const int stride = static_cast<int>(expr->imm);
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            Value sum = dom.constant(BitVector(ew));
            for (int j = 0; j < stride; ++j)
                sum = dom.binOp(BVBinOp::Add, sum,
                                dom.extract(a, (lane * stride + j) * ew, ew));
            dom.setSlice(out, lane * ew, sum);
        }
        return out;
      }
      case HOp::Concat:
        return dom.concat(eval_kid(1), eval_kid(0));
      case HOp::Slice: {
        const Value a = eval_kid(0);
        return dom.extract(a, static_cast<int>(expr->imm) * ew, lanes * ew);
      }
      case HOp::ShlC:
      case HOp::AShrC:
      case HOp::LShrC: {
        const Value a = eval_kid(0);
        const int amount = static_cast<int>(expr->imm);
        const BVBinOp op = expr->op == HOp::ShlC    ? BVBinOp::Shl
                           : expr->op == HOp::AShrC ? BVBinOp::AShr
                                                    : BVBinOp::LShr;
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            dom.setSlice(out, lane * ew,
                         dom.shiftConst(op, dom.extract(a, lane * ew, ew),
                                        amount));
        }
        return out;
      }
      case HOp::AbsS: {
        const Value a = eval_kid(0);
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            dom.setSlice(out, lane * ew,
                         dom.unOp(BVUnOp::AbsS,
                                  dom.extract(a, lane * ew, ew)));
        }
        return out;
      }
      default: {
        // Lane-wise binary operators.
        const Value a = eval_kid(0);
        const Value b = eval_kid(1);
        Value out = dom.makeZero(expr->totalWidth());
        for (int lane = 0; lane < lanes; ++lane) {
            const Value x = dom.extract(a, lane * ew, ew);
            const Value y = dom.extract(b, lane * ew, ew);
            Value elem;
            switch (expr->op) {
              case HOp::Add: elem = dom.binOp(BVBinOp::Add, x, y); break;
              case HOp::Sub: elem = dom.binOp(BVBinOp::Sub, x, y); break;
              case HOp::Mul: elem = dom.binOp(BVBinOp::Mul, x, y); break;
              case HOp::MinS: elem = dom.binOp(BVBinOp::MinS, x, y); break;
              case HOp::MaxS: elem = dom.binOp(BVBinOp::MaxS, x, y); break;
              case HOp::MinU: elem = dom.binOp(BVBinOp::MinU, x, y); break;
              case HOp::MaxU: elem = dom.binOp(BVBinOp::MaxU, x, y); break;
              case HOp::SatAddS:
                elem = dom.binOp(BVBinOp::AddSatS, x, y);
                break;
              case HOp::SatAddU:
                elem = dom.binOp(BVBinOp::AddSatU, x, y);
                break;
              case HOp::SatSubS:
                elem = dom.binOp(BVBinOp::SubSatS, x, y);
                break;
              case HOp::SatSubU:
                elem = dom.binOp(BVBinOp::SubSatU, x, y);
                break;
              case HOp::AvgU: elem = dom.binOp(BVBinOp::AvgU, x, y); break;
              case HOp::MulHiS:
                elem = dom.extract(
                    dom.binOp(BVBinOp::Mul,
                              dom.cast(BVCastOp::SExt, x, 2 * ew),
                              dom.cast(BVCastOp::SExt, y, 2 * ew)),
                    ew, ew);
                break;
              default:
                HYD_ASSERT(false, "unhandled Halide operator in symbolic "
                                  "evaluation");
            }
            dom.setSlice(out, lane * ew, elem);
        }
        return out;
      }
    }
}

// ---- BVFun wiring -------------------------------------------------------

BVFun
moduleFun(const AutoLLVMDict &dict, const AutoModule &module)
{
    BVFun fun;
    fun.arg_widths = module.input_widths;
    fun.concrete = [&dict, &module](const std::vector<BitVector> &inputs) {
        return module.evaluate(dict, inputs);
    };
    fun.symbolic = [&dict, &module](AigDomain &dom,
                                    const std::vector<SymVec> &inputs) {
        return evalModuleDom(dom, dict, module, inputs);
    };
    fun.knownbits = [&dict, &module](KnownBitsDomain &dom,
                                     const std::vector<KnownBits> &inputs) {
        return evalModuleDom(dom, dict, module, inputs);
    };
    fun.intervals = [&dict,
                     &module](dataflow::IntervalDomain &dom,
                              const std::vector<dataflow::Interval> &inputs) {
        return evalModuleDom(dom, dict, module, inputs);
    };
    return fun;
}

BVFun
targetHWFun(const AutoLLVMDict &dict, const TargetProgram &program)
{
    BVFun fun;
    fun.arg_widths = program.input_widths;
    fun.concrete = [&dict, &program](const std::vector<BitVector> &inputs) {
        return evalTargetHW(dict, program, inputs);
    };
    fun.symbolic = [&dict, &program](AigDomain &dom,
                                     const std::vector<SymVec> &inputs) {
        return evalTargetHWDom(dom, dict, program, inputs);
    };
    fun.knownbits = [&dict, &program](KnownBitsDomain &dom,
                                      const std::vector<KnownBits> &inputs) {
        return evalTargetHWDom(dom, dict, program, inputs);
    };
    fun.intervals = [&dict,
                     &program](dataflow::IntervalDomain &dom,
                               const std::vector<dataflow::Interval> &inputs) {
        return evalTargetHWDom(dom, dict, program, inputs);
    };
    return fun;
}

BVFun
windowFun(const HExprPtr &window, const std::vector<int> &input_widths)
{
    BVFun fun;
    fun.arg_widths = input_widths;
    fun.concrete = [window](const std::vector<BitVector> &inputs) {
        return evalHalide(window, inputs);
    };
    fun.symbolic = [window](AigDomain &dom,
                            const std::vector<SymVec> &inputs) {
        return evalHalideDom(dom, window, inputs);
    };
    fun.knownbits = [window](KnownBitsDomain &dom,
                             const std::vector<KnownBits> &inputs) {
        return evalHalideDom(dom, window, inputs);
    };
    fun.intervals = [window](dataflow::IntervalDomain &dom,
                             const std::vector<dataflow::Interval> &inputs) {
        return evalHalideDom(dom, window, inputs);
    };
    return fun;
}

} // namespace

BitVector
evalTargetHW(const AutoLLVMDict &dict, const TargetProgram &program,
             const std::vector<BitVector> &inputs)
{
    std::vector<BitVector> values;
    values.reserve(program.insts.size());
    for (const TargetInst &inst : program.insts) {
        std::vector<BitVector> args;
        args.reserve(inst.args.size());
        for (const ValueRef &ref : inst.args) {
            if (ref.kind == ValueRef::Input)
                args.push_back(inputs[ref.index]);
            else if (ref.kind == ValueRef::Const)
                args.push_back(program.constants[ref.index]);
            else
                args.push_back(values[ref.index]);
        }
        const ClassMember &member = inst.op.member(dict);
        HYD_ASSERT(member.arg_perm.empty() ||
                       member.arg_perm.size() == args.size(),
                   "argument permutation arity mismatch for " + member.name);
        std::vector<BitVector> member_args(args.size(), BitVector(1));
        for (size_t k = 0; k < args.size(); ++k)
            member_args[member.arg_perm.empty() ? k : member.arg_perm[k]] =
                args[k];
        values.push_back(
            member.concrete.evaluate(member_args, {}, inst.int_args));
    }
    if (!program.results.empty()) {
        auto value_of = [&](const ValueRef &ref) {
            if (ref.kind == ValueRef::Input)
                return inputs[ref.index];
            if (ref.kind == ValueRef::Const)
                return program.constants[ref.index];
            return values[ref.index];
        };
        BitVector out = value_of(program.results[0]);
        for (size_t r = 1; r < program.results.size(); ++r)
            out = BitVector::concat(value_of(program.results[r]), out);
        return out;
    }
    HYD_ASSERT(!values.empty(), "empty target program");
    const int out = program.result < 0
                        ? static_cast<int>(program.insts.size()) - 1
                        : program.result;
    return values[out];
}

EqResult
checkModuleEquiv(const AutoLLVMDict &dict, const AutoModule &module,
                 const HExprPtr &window, const EqBudget &budget)
{
    trace::TraceSpan span(bench::kSpanSymbolic);
    static metrics::Histogram &equiv_ms = metrics::histogram(
        "symbolic.equiv.time_ms", metrics::logTimeMsBounds());
    Stopwatch watch;
    EqResult result = checkEquiv(
        moduleFun(dict, module), windowFun(window, module.input_widths),
        budget);
    equiv_ms.observe(watch.millis());
    span.setAttr("verdict", verdictName(result.verdict));
    span.setAttr("method", result.method);
    return result;
}

EqResult
checkProgramEquiv(const AutoLLVMDict &dict, const TargetProgram &program,
                  const HExprPtr &window, const EqBudget &budget)
{
    return checkEquiv(targetHWFun(dict, program),
                      windowFun(window, program.input_widths), budget);
}

EqResult
checkLoweringEquiv(const AutoLLVMDict &dict, const AutoModule &module,
                   const TargetProgram &program, const EqBudget &budget)
{
    return checkEquiv(moduleFun(dict, module), targetHWFun(dict, program),
                      budget);
}

} // namespace sym
} // namespace hydride
