#include "analysis/symbolic/bitblast.h"

#include "support/error.h"

namespace hydride {
namespace sym {

namespace {

/** Majority-of-three: the full-adder carry function. */
Lit
maj3(Aig &aig, Lit a, Lit b, Lit c)
{
    return aig.mkOr(aig.mkAnd(a, b), aig.mkAnd(c, aig.mkOr(a, b)));
}

/** Ripple-carry a + b + carry_in; optionally exposes carry-out. */
SymVec
addWithCarry(Aig &aig, const SymVec &a, const SymVec &b, Lit carry_in,
             Lit *carry_out = nullptr)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic add width mismatch");
    SymVec out(a.width());
    Lit carry = carry_in;
    for (int i = 0; i < a.width(); ++i) {
        out.bits[i] = aig.mkXor(aig.mkXor(a.bits[i], b.bits[i]), carry);
        carry = maj3(aig, a.bits[i], b.bits[i], carry);
    }
    if (carry_out)
        *carry_out = carry;
    return out;
}

} // namespace

void
SymVec::setSlice(int low, const SymVec &value)
{
    HYD_ASSERT(low >= 0 && low + value.width() <= width(),
               "symbolic setSlice out of range");
    for (int i = 0; i < value.width(); ++i)
        bits[low + i] = value.bits[i];
}

SymVec
svConst(const BitVector &value)
{
    SymVec out(value.width());
    for (int i = 0; i < value.width(); ++i)
        out.bits[i] = value.getBit(i) ? kTrueLit : kFalseLit;
    return out;
}

SymVec
svInputs(Aig &aig, int width)
{
    SymVec out(width);
    for (int i = 0; i < width; ++i)
        out.bits[i] = aig.addInput();
    return out;
}

BitVector
svEval(const Aig &aig, const SymVec &v,
       const std::vector<uint8_t> &input_values)
{
    BitVector out(v.width());
    for (int i = 0; i < v.width(); ++i)
        out.setBit(i, aig.evalLit(v.bits[i], input_values));
    return out;
}

SymVec
svAnd(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic and width mismatch");
    SymVec out(a.width());
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = aig.mkAnd(a.bits[i], b.bits[i]);
    return out;
}

SymVec
svOr(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic or width mismatch");
    SymVec out(a.width());
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = aig.mkOr(a.bits[i], b.bits[i]);
    return out;
}

SymVec
svXor(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic xor width mismatch");
    SymVec out(a.width());
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = aig.mkXor(a.bits[i], b.bits[i]);
    return out;
}

SymVec
svNot(Aig &aig, const SymVec &a)
{
    (void)aig;
    SymVec out(a.width());
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = litNot(a.bits[i]);
    return out;
}

SymVec
svMux(Aig &aig, Lit sel, const SymVec &t, const SymVec &e)
{
    HYD_ASSERT(t.width() == e.width(), "symbolic mux width mismatch");
    SymVec out(t.width());
    for (int i = 0; i < t.width(); ++i)
        out.bits[i] = aig.mkMux(sel, t.bits[i], e.bits[i]);
    return out;
}

SymVec
svAdd(Aig &aig, const SymVec &a, const SymVec &b)
{
    return addWithCarry(aig, a, b, kFalseLit);
}

SymVec
svSub(Aig &aig, const SymVec &a, const SymVec &b)
{
    // Mirrors BitVector::sub = add(neg(other)) = a + ~b + 1.
    return addWithCarry(aig, a, svNot(aig, b), kTrueLit);
}

SymVec
svNeg(Aig &aig, const SymVec &a)
{
    // Mirrors BitVector::neg = bvnot() + 1.
    return addWithCarry(aig, svNot(aig, a), svConst(BitVector(a.width())),
                        kTrueLit);
}

SymVec
svMul(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic mul width mismatch");
    const int width = a.width();
    SymVec acc = svConst(BitVector(width));
    for (int i = 0; i < width; ++i) {
        SymVec addend(width);
        for (int j = i; j < width; ++j)
            addend.bits[j] = aig.mkAnd(a.bits[j - i], b.bits[i]);
        acc = svAdd(aig, acc, addend);
    }
    return acc;
}

SymVec
svUdiv(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic udiv width mismatch");
    // Restoring long division, mirroring BitVector::udiv. A zero
    // divisor needs no special case: no subtraction ever restores, so
    // the quotient naturally comes out all-ones, matching the concrete
    // (SMT-LIB) convention.
    const int width = a.width();
    SymVec quotient(width);
    SymVec remainder = svConst(BitVector(width));
    for (int bit = width - 1; bit >= 0; --bit) {
        remainder = svShlConst(remainder, 1);
        remainder.bits[0] = a.bits[bit];
        const Lit geq = litNot(svUltLit(aig, remainder, b));
        remainder = svMux(aig, geq, svSub(aig, remainder, b), remainder);
        quotient.bits[bit] = geq;
    }
    return quotient;
}

SymVec
svUrem(Aig &aig, const SymVec &a, const SymVec &b)
{
    // Mirrors BitVector::urem = a - udiv(a,b) * b (dividend when b=0).
    return svSub(aig, a, svMul(aig, svUdiv(aig, a, b), b));
}

SymVec
svSdiv(Aig &aig, const SymVec &a, const SymVec &b)
{
    // Sign/magnitude around udiv, exactly as BitVector::sdiv.
    const Lit neg_a = a.bits[a.width() - 1];
    const Lit neg_b = b.bits[b.width() - 1];
    const SymVec mag_a = svMux(aig, neg_a, svNeg(aig, a), a);
    const SymVec mag_b = svMux(aig, neg_b, svNeg(aig, b), b);
    const SymVec q = svUdiv(aig, mag_a, mag_b);
    return svMux(aig, aig.mkXor(neg_a, neg_b), svNeg(aig, q), q);
}

SymVec
svSrem(Aig &aig, const SymVec &a, const SymVec &b)
{
    const Lit neg_a = a.bits[a.width() - 1];
    const Lit neg_b = b.bits[b.width() - 1];
    const SymVec mag_a = svMux(aig, neg_a, svNeg(aig, a), a);
    const SymVec mag_b = svMux(aig, neg_b, svNeg(aig, b), b);
    const SymVec r = svUrem(aig, mag_a, mag_b);
    return svMux(aig, neg_a, svNeg(aig, r), r);
}

SymVec
svShlConst(const SymVec &a, int amount)
{
    HYD_ASSERT(amount >= 0, "negative symbolic shift");
    SymVec out(a.width());
    for (int i = amount; i < a.width(); ++i)
        out.bits[i] = a.bits[i - amount];
    return out;
}

SymVec
svLShrConst(const SymVec &a, int amount)
{
    HYD_ASSERT(amount >= 0, "negative symbolic shift");
    SymVec out(a.width());
    for (int i = 0; i + amount < a.width(); ++i)
        out.bits[i] = a.bits[i + amount];
    return out;
}

SymVec
svAShrConst(const SymVec &a, int amount)
{
    HYD_ASSERT(amount >= 0, "negative symbolic shift");
    const Lit sign = a.bits[a.width() - 1];
    SymVec out(a.width());
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = i + amount < a.width() ? a.bits[i + amount] : sign;
    return out;
}

namespace {

/**
 * Shared barrel shifter. `stage` applies one constant shift; `fill`
 * is the saturated result when the amount is >= width (zeros, or sign
 * fill for ashr), mirroring shiftAmount()'s clamp in hir/expr.cpp.
 */
template <typename Stage>
SymVec
barrelShift(Aig &aig, const SymVec &a, const SymVec &amount,
            const SymVec &fill, Stage stage)
{
    SymVec value = a;
    Lit big = kFalseLit; // Amount has a set bit worth >= width.
    for (int k = 0; k < amount.width(); ++k) {
        const int64_t step = k < 62 ? (int64_t(1) << k) : int64_t(1) << 62;
        if (step >= a.width()) {
            big = aig.mkOr(big, amount.bits[k]);
            continue;
        }
        value = svMux(aig, amount.bits[k],
                      stage(value, static_cast<int>(step)), value);
    }
    return svMux(aig, big, fill, value);
}

} // namespace

SymVec
svShl(Aig &aig, const SymVec &a, const SymVec &amount)
{
    return barrelShift(aig, a, amount, svConst(BitVector(a.width())),
                       [](const SymVec &v, int s) { return svShlConst(v, s); });
}

SymVec
svLShr(Aig &aig, const SymVec &a, const SymVec &amount)
{
    return barrelShift(aig, a, amount, svConst(BitVector(a.width())),
                       [](const SymVec &v, int s) { return svLShrConst(v, s); });
}

SymVec
svAShr(Aig &aig, const SymVec &a, const SymVec &amount)
{
    // Over-wide arithmetic shifts fill with the *original* sign bit.
    SymVec fill(a.width());
    for (int i = 0; i < a.width(); ++i)
        fill.bits[i] = a.bits[a.width() - 1];
    return barrelShift(aig, a, amount, fill, [](const SymVec &v, int s) {
        return svAShrConst(v, s);
    });
}

SymVec
svAddSatS(Aig &aig, const SymVec &a, const SymVec &b)
{
    const SymVec wide =
        svAdd(aig, svSext(a, a.width() + 1), svSext(b, b.width() + 1));
    return svSatNarrowS(aig, wide, a.width());
}

SymVec
svAddSatU(Aig &aig, const SymVec &a, const SymVec &b)
{
    const SymVec wide =
        svAdd(aig, svZext(a, a.width() + 1), svZext(b, b.width() + 1));
    return svMux(aig, wide.bits[a.width()],
                 svConst(BitVector::allOnes(a.width())),
                 svTrunc(wide, a.width()));
}

SymVec
svSubSatS(Aig &aig, const SymVec &a, const SymVec &b)
{
    const SymVec wide =
        svSub(aig, svSext(a, a.width() + 1), svSext(b, b.width() + 1));
    return svSatNarrowS(aig, wide, a.width());
}

SymVec
svSubSatU(Aig &aig, const SymVec &a, const SymVec &b)
{
    return svMux(aig, svUltLit(aig, a, b), svConst(BitVector(a.width())),
                 svSub(aig, a, b));
}

SymVec
svSatNarrowS(Aig &aig, const SymVec &a, int to_width)
{
    HYD_ASSERT(to_width <= a.width(), "symbolic satNarrowS must narrow");
    const BitVector max =
        BitVector::allOnes(a.width()).lshr(a.width() - to_width + 1);
    const BitVector min = max.bvnot();
    const Lit lt_min = svSltLit(aig, a, svConst(min));
    const Lit gt_max = svSltLit(aig, svConst(max), a);
    return svMux(aig, lt_min, svConst(min.trunc(to_width)),
                 svMux(aig, gt_max, svConst(max.trunc(to_width)),
                       svTrunc(a, to_width)));
}

SymVec
svSatNarrowU(Aig &aig, const SymVec &a, int to_width)
{
    HYD_ASSERT(to_width <= a.width(), "symbolic satNarrowU must narrow");
    BitVector max(a.width());
    for (int bit = 0; bit < to_width; ++bit)
        max.setBit(bit, true);
    const Lit sign = a.bits[a.width() - 1];
    const Lit gt_max = svUltLit(aig, svConst(max), a);
    return svMux(aig, sign, svConst(BitVector(to_width)),
                 svMux(aig, gt_max, svConst(max.trunc(to_width)),
                       svTrunc(a, to_width)));
}

SymVec
svMinS(Aig &aig, const SymVec &a, const SymVec &b)
{
    return svMux(aig, svSltLit(aig, a, b), a, b);
}

SymVec
svMaxS(Aig &aig, const SymVec &a, const SymVec &b)
{
    return svMux(aig, svSltLit(aig, a, b), b, a);
}

SymVec
svMinU(Aig &aig, const SymVec &a, const SymVec &b)
{
    return svMux(aig, svUltLit(aig, a, b), a, b);
}

SymVec
svMaxU(Aig &aig, const SymVec &a, const SymVec &b)
{
    return svMux(aig, svUltLit(aig, a, b), b, a);
}

SymVec
svAbsS(Aig &aig, const SymVec &a)
{
    return svMux(aig, a.bits[a.width() - 1], svNeg(aig, a), a);
}

SymVec
svAvgU(Aig &aig, const SymVec &a, const SymVec &b)
{
    SymVec wide =
        svAdd(aig, svZext(a, a.width() + 1), svZext(b, b.width() + 1));
    wide = svAdd(aig, wide, svConst(BitVector::fromUint(a.width() + 1, 1)));
    return svTrunc(svLShrConst(wide, 1), a.width());
}

SymVec
svAvgS(Aig &aig, const SymVec &a, const SymVec &b)
{
    SymVec wide =
        svAdd(aig, svSext(a, a.width() + 1), svSext(b, b.width() + 1));
    wide = svAdd(aig, wide, svConst(BitVector::fromUint(a.width() + 1, 1)));
    return svTrunc(svAShrConst(wide, 1), a.width());
}

SymVec
svPopcount(Aig &aig, const SymVec &a)
{
    SymVec acc = svConst(BitVector(a.width()));
    for (int i = 0; i < a.width(); ++i) {
        SymVec one(a.width());
        one.bits[0] = a.bits[i];
        acc = svAdd(aig, acc, one);
    }
    return acc;
}

SymVec
svZext(const SymVec &a, int new_width)
{
    HYD_ASSERT(new_width >= a.width(), "symbolic zext must not shrink");
    SymVec out(new_width);
    for (int i = 0; i < a.width(); ++i)
        out.bits[i] = a.bits[i];
    return out;
}

SymVec
svSext(const SymVec &a, int new_width)
{
    HYD_ASSERT(new_width >= a.width(), "symbolic sext must not shrink");
    SymVec out(new_width);
    for (int i = 0; i < new_width; ++i)
        out.bits[i] = a.bits[i < a.width() ? i : a.width() - 1];
    return out;
}

SymVec
svTrunc(const SymVec &a, int new_width)
{
    HYD_ASSERT(new_width <= a.width(), "symbolic trunc must not grow");
    SymVec out(new_width);
    for (int i = 0; i < new_width; ++i)
        out.bits[i] = a.bits[i];
    return out;
}

SymVec
svExtract(const SymVec &a, int low, int count)
{
    HYD_ASSERT(low >= 0 && count >= 1 && low + count <= a.width(),
               "symbolic extract slice out of range (low=" +
                   std::to_string(low) + " count=" + std::to_string(count) +
                   " width=" + std::to_string(a.width()) + ")");
    SymVec out(count);
    for (int i = 0; i < count; ++i)
        out.bits[i] = a.bits[low + i];
    return out;
}

SymVec
svConcat(const SymVec &high, const SymVec &low)
{
    SymVec out(high.width() + low.width());
    out.setSlice(0, low);
    out.setSlice(low.width(), high);
    return out;
}

Lit
svEqLit(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic eq width mismatch");
    Lit eq = kTrueLit;
    for (int i = 0; i < a.width(); ++i)
        eq = aig.mkAnd(eq, aig.mkXnor(a.bits[i], b.bits[i]));
    return eq;
}

Lit
svUltLit(Aig &aig, const SymVec &a, const SymVec &b)
{
    HYD_ASSERT(a.width() == b.width(), "symbolic ult width mismatch");
    // a < b iff a + ~b + 1 produces no carry out.
    Lit carry = kTrueLit;
    for (int i = 0; i < a.width(); ++i)
        carry = maj3(aig, a.bits[i], litNot(b.bits[i]), carry);
    return litNot(carry);
}

Lit
svUleLit(Aig &aig, const SymVec &a, const SymVec &b)
{
    return litNot(svUltLit(aig, b, a));
}

Lit
svSltLit(Aig &aig, const SymVec &a, const SymVec &b)
{
    const Lit sign_a = a.bits[a.width() - 1];
    const Lit sign_b = b.bits[b.width() - 1];
    return aig.mkMux(aig.mkXor(sign_a, sign_b), sign_a,
                     svUltLit(aig, a, b));
}

Lit
svSleLit(Aig &aig, const SymVec &a, const SymVec &b)
{
    return litNot(svSltLit(aig, b, a));
}

Lit
svNonzeroLit(Aig &aig, const SymVec &a)
{
    Lit any = kFalseLit;
    for (Lit bit : a.bits)
        any = aig.mkOr(any, bit);
    return any;
}

SymVec
svSelect(Aig &aig, const SymVec &cond, const SymVec &t, const SymVec &e)
{
    return svMux(aig, svNonzeroLit(aig, cond), t, e);
}

} // namespace sym
} // namespace hydride
