#include "analysis/symbolic/equiv.h"

#include "analysis/symbolic/sat.h"
#include "observability/bench/phase_profiler.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/error.h"
#include "support/faults.h"
#include "support/rng.h"
#include "support/timing.h"

#include <algorithm>
#include <chrono>

namespace hydride {
namespace sym {

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Proved: return "proved";
      case Verdict::Refuted: return "refuted";
      case Verdict::Unknown: return "unknown";
    }
    return "?";
}

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

std::vector<BitVector>
zeroArgs(const std::vector<int> &widths)
{
    std::vector<BitVector> args;
    args.reserve(widths.size());
    for (int w : widths)
        args.emplace_back(w);
    return args;
}

/** Concretely confirm that the two sides disagree on `model`. */
bool
validateModel(const BVFun &a, const BVFun &b,
              const std::vector<BitVector> &model)
{
    try {
        return a.concrete(model) != b.concrete(model);
    } catch (const AssertionError &) {
        return false;
    }
}

/** Quick-kill testing: most inequivalent pairs disagree on random
 *  inputs, and a random witness is as good as a solver model (both
 *  are validated the same way). Fills `model` and returns true on a
 *  disagreement; equivalent pairs fall through to the symbolic tiers. */
bool
sampleRefutes(const BVFun &a, const BVFun &b, std::vector<BitVector> &model)
{
    Rng rng(0x5A3C0FFEull);
    for (int trial = 0; trial < 16; ++trial) {
        std::vector<BitVector> args;
        args.reserve(a.arg_widths.size());
        for (int w : a.arg_widths)
            args.push_back(BitVector::random(std::max(w, 1), rng));
        try {
            if (a.concrete(args) != b.concrete(args)) {
                model = std::move(args);
                return true;
            }
        } catch (const AssertionError &) {
            return false; // Evaluation errors are the tiers' business.
        }
    }
    return false;
}

} // namespace

EqResult
checkEquiv(const BVFun &a, const BVFun &b, const EqBudget &budget)
{
    const auto start = std::chrono::steady_clock::now();
    EqResult result;

    if (a.arg_widths != b.arg_widths) {
        result.reason = "argument signature mismatch";
        result.seconds = secondsSince(start);
        return result;
    }

    // Chaos seam: a budget-exhausted verdict — `unknown` is already a
    // first-class outcome of every tier, so injecting it here proves
    // callers (EQ rules, CEGIS, the resilient driver) treat it as
    // "no answer", never as a pass.
    if (faults::shouldFail("symbolic.budget")) {
        result.reason = "injected budget exhaustion";
        result.seconds = secondsSince(start);
        return result;
    }

    // Tier 0: concrete random sampling. Cheap, and it spares the SAT
    // core the easy refutations so its conflict budget is reserved
    // for what actually needs a proof.
    if (a.concrete && b.concrete) {
        std::vector<BitVector> model;
        if (sampleRefutes(a, b, model)) {
            result.verdict = Verdict::Refuted;
            result.method = "concrete";
            result.model = std::move(model);
            result.seconds = secondsSince(start);
            return result;
        }
    }

    // Tier 1: known-bits abstract interpretation with unknown args.
    if (a.knownbits && b.knownbits) {
        try {
            KnownBitsDomain dom;
            std::vector<KnownBits> args;
            args.reserve(a.arg_widths.size());
            for (int w : a.arg_widths)
                args.push_back(KnownBits::top(w));
            const KnownBits ka = a.knownbits(dom, args);
            const KnownBits kb = b.knownbits(dom, args);
            if (ka.width() == kb.width()) {
                if (ka.fullyKnown() && kb.fullyKnown()) {
                    result.method = "knownbits";
                    if (ka.concreteValue() == kb.concreteValue()) {
                        result.verdict = Verdict::Proved;
                        result.seconds = secondsSince(start);
                        return result;
                    }
                }
                // A disagreement on a commonly-known bit holds for
                // *every* input; validate the all-zeros assignment.
                const BitVector common = ka.known.bvand(kb.known);
                if (ka.value.bvand(common) != kb.value.bvand(common)) {
                    const std::vector<BitVector> model =
                        zeroArgs(a.arg_widths);
                    if (validateModel(a, b, model)) {
                        result.verdict = Verdict::Refuted;
                        result.method = "knownbits";
                        result.model = model;
                        result.seconds = secondsSince(start);
                        return result;
                    }
                }
            }
        } catch (const AssertionError &) {
            // Fall through to the exact tiers.
        }
    }

    // Tier 1b: interval abstract interpretation with unknown args.
    // Value ranges see facts bitwise tracking cannot (division,
    // remainder, saturation, decided comparisons); both tiers cost a
    // single abstract walk, so running both before any circuit
    // construction is still essentially free.
    if (a.intervals && b.intervals) {
        try {
            dataflow::IntervalDomain dom;
            std::vector<dataflow::Interval> args;
            args.reserve(a.arg_widths.size());
            for (int w : a.arg_widths)
                args.push_back(dataflow::Interval::top(w));
            const dataflow::Interval ia = a.intervals(dom, args);
            const dataflow::Interval ib = b.intervals(dom, args);
            if (ia.width() == ib.width()) {
                if (ia.isSingleton() && ib.isSingleton() && ia.lo == ib.lo) {
                    metrics::counter("symbolic.equiv.interval_proved").add();
                    result.verdict = Verdict::Proved;
                    result.method = "interval";
                    result.seconds = secondsSince(start);
                    return result;
                }
                // Disjoint ranges hold for *every* input; validate the
                // all-zeros assignment concretely before reporting.
                if ((ia.hi.ult(ib.lo) || ib.hi.ult(ia.lo)) && a.concrete &&
                    b.concrete) {
                    const std::vector<BitVector> model =
                        zeroArgs(a.arg_widths);
                    if (validateModel(a, b, model)) {
                        metrics::counter("symbolic.equiv.interval_refuted")
                            .add();
                        result.verdict = Verdict::Refuted;
                        result.method = "interval";
                        result.model = model;
                        result.seconds = secondsSince(start);
                        return result;
                    }
                }
            }
        } catch (const AssertionError &) {
            // Fall through to the exact tiers.
        }
    }

    // Tier 2: bit-blast both sides into one hashed AIG and build the
    // inequality miter.
    Aig aig(budget.max_nodes);
    AigDomain dom(aig);
    std::vector<SymVec> args;
    args.reserve(a.arg_widths.size());
    for (int w : a.arg_widths)
        args.push_back(svInputs(aig, w));

    SymVec out_a, out_b;
    try {
        out_a = a.symbolic(dom, args);
        out_b = b.symbolic(dom, args);
    } catch (const AssertionError &err) {
        result.reason = std::string("symbolic evaluation failed: ") +
                        err.what();
        result.aig_nodes = aig.numNodes();
        result.seconds = secondsSince(start);
        return result;
    }

    if (out_a.width() != out_b.width()) {
        // Different output widths: definitely inequivalent; any input
        // witnesses it. Validate zeros concretely.
        const std::vector<BitVector> model = zeroArgs(a.arg_widths);
        if (validateModel(a, b, model)) {
            result.verdict = Verdict::Refuted;
            result.method = "structural";
            result.model = model;
        } else {
            result.reason = "output width mismatch";
        }
        result.aig_nodes = aig.numNodes();
        result.seconds = secondsSince(start);
        return result;
    }

    Lit miter = kFalseLit;
    for (int i = 0; i < out_a.width(); ++i)
        miter = aig.mkOr(miter, aig.mkXor(out_a.bits[i], out_b.bits[i]));
    result.aig_nodes = aig.numNodes();

    if (aig.overflowed()) {
        result.reason = "node budget (" + std::to_string(aig.nodeBudget()) +
                        " nodes)";
        result.seconds = secondsSince(start);
        return result;
    }
    if (miter == kFalseLit) {
        // Identical circuits after hashing: equal on every input.
        result.verdict = Verdict::Proved;
        result.method = "structural";
        result.seconds = secondsSince(start);
        return result;
    }
    if (miter == kTrueLit) {
        const std::vector<BitVector> model = zeroArgs(a.arg_widths);
        if (validateModel(a, b, model)) {
            result.verdict = Verdict::Refuted;
            result.method = "structural";
            result.model = model;
            result.seconds = secondsSince(start);
            return result;
        }
    }

    // Tier 3: Tseitin + DPLL on the miter cone.
    SatSolver solver;
    SatResult sat;
    {
        trace::TraceSpan sat_span(bench::kSpanSat);
        static metrics::Histogram &sat_ms = metrics::histogram(
            "symbolic.sat.time_ms", metrics::logTimeMsBounds());
        Stopwatch sat_watch;
        cnfFromAig(aig, miter, solver);
        sat = solver.solve(budget.max_conflicts);
        sat_ms.observe(sat_watch.millis());
        sat_span.setAttr("conflicts", sat.conflicts);
    }
    result.conflicts = sat.conflicts;
    result.method = "sat";

    if (sat.status == SatStatus::Unsat) {
        result.verdict = Verdict::Proved;
        result.seconds = secondsSince(start);
        return result;
    }
    if (sat.status == SatStatus::Budget) {
        result.method.clear();
        result.reason = "conflict budget (" +
                        std::to_string(budget.max_conflicts) + " conflicts)";
        result.seconds = secondsSince(start);
        return result;
    }

    // SAT: decode the input assignment (solver vars == AIG vars, input
    // literals are always plain) and re-validate it concretely.
    std::vector<BitVector> model;
    model.reserve(args.size());
    for (const SymVec &arg : args) {
        BitVector value(arg.width());
        for (int i = 0; i < arg.width(); ++i) {
            const uint32_t var = litVar(arg.bits[i]);
            const bool bit =
                var < sat.model.size() ? sat.model[var] != 0 : false;
            value.setBit(i, bit);
        }
        model.push_back(std::move(value));
    }
    if (validateModel(a, b, model)) {
        result.verdict = Verdict::Refuted;
        result.model = std::move(model);
    } else {
        result.method.clear();
        result.reason = "refutation model failed concrete validation";
    }
    result.seconds = secondsSince(start);
    return result;
}

namespace {

/** Wire a SemanticsSide into the three BVFun callbacks. */
BVFun
semanticsFun(const SemanticsSide &side, const std::vector<int> &input_widths)
{
    const CanonicalSemantics *sem = side.sem;
    std::vector<int> arg_map = side.arg_map;
    if (arg_map.empty()) {
        arg_map.resize(sem->bv_args.size());
        for (size_t k = 0; k < arg_map.size(); ++k)
            arg_map[k] = static_cast<int>(k);
    }
    HYD_ASSERT(arg_map.size() == sem->bv_args.size(),
               "semantics arg_map size mismatch for " + sem->name);

    BVFun fun;
    fun.arg_widths = input_widths;
    const std::vector<int64_t> params = side.param_values;
    const std::vector<int64_t> int_args = side.int_arg_values;

    fun.concrete = [sem, params, int_args,
                    arg_map](const std::vector<BitVector> &inputs) {
        std::vector<BitVector> args(arg_map.size(), BitVector(1));
        for (size_t k = 0; k < arg_map.size(); ++k)
            args[k] = inputs[arg_map[k]];
        return sem->evaluate(args, params, int_args);
    };
    fun.symbolic = [sem, params, int_args,
                    arg_map](AigDomain &dom, const std::vector<SymVec> &inputs) {
        std::vector<SymVec> args(arg_map.size());
        for (size_t k = 0; k < arg_map.size(); ++k)
            args[k] = inputs[arg_map[k]];
        return evalSemanticsDom(dom, *sem, args, params, int_args);
    };
    fun.knownbits = [sem, params, int_args,
                     arg_map](KnownBitsDomain &dom,
                              const std::vector<KnownBits> &inputs) {
        std::vector<KnownBits> args(arg_map.size());
        for (size_t k = 0; k < arg_map.size(); ++k)
            args[k] = inputs[arg_map[k]];
        return evalSemanticsDom(dom, *sem, args, params, int_args);
    };
    fun.intervals = [sem, params, int_args,
                     arg_map](dataflow::IntervalDomain &dom,
                              const std::vector<dataflow::Interval> &inputs) {
        std::vector<dataflow::Interval> args(arg_map.size());
        for (size_t k = 0; k < arg_map.size(); ++k)
            args[k] = inputs[arg_map[k]];
        return evalSemanticsDom(dom, *sem, args, params, int_args);
    };
    return fun;
}

} // namespace

EqResult
checkSemanticsEquiv(const SemanticsSide &a, const SemanticsSide &b,
                    const EqBudget &budget)
{
    const auto start = std::chrono::steady_clock::now();
    EqResult bad;
    try {
        // Derive the query input signature from whichever side reads
        // each input; both sides must agree on every shared width.
        std::vector<int> input_widths;
        for (const SemanticsSide *side : {&a, &b}) {
            std::vector<int> arg_map = side->arg_map;
            if (arg_map.empty()) {
                arg_map.resize(side->sem->bv_args.size());
                for (size_t k = 0; k < arg_map.size(); ++k)
                    arg_map[k] = static_cast<int>(k);
            }
            for (size_t k = 0; k < arg_map.size(); ++k) {
                const int input = arg_map[k];
                const int width = side->sem->argWidth(
                    static_cast<int>(k), side->param_values);
                if (input >= static_cast<int>(input_widths.size()))
                    input_widths.resize(input + 1, 0);
                if (input_widths[input] == 0) {
                    input_widths[input] = width;
                } else {
                    HYD_ASSERT(input_widths[input] == width,
                               "sides disagree on query input width");
                }
            }
        }
        for (size_t i = 0; i < input_widths.size(); ++i)
            HYD_ASSERT(input_widths[i] > 0,
                       "query input " + std::to_string(i) +
                           " is read by neither side");

        return checkEquiv(semanticsFun(a, input_widths),
                          semanticsFun(b, input_widths), budget);
    } catch (const AssertionError &err) {
        bad.reason = std::string("query construction failed: ") + err.what();
        bad.seconds = secondsSince(start);
        return bad;
    }
}

} // namespace sym
} // namespace hydride
