#include "analysis/diagnostics.h"

#include "observability/metrics.h"

#include <algorithm>
#include <sstream>

namespace hydride {
namespace analysis {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

namespace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c; break;
        }
    }
    return out;
}

int
severityRank(Severity severity)
{
    return -static_cast<int>(severity); // Error sorts first.
}

} // namespace

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << rule << "]";
    if (!isa.empty() || !instruction.empty()) {
        os << " " << isa;
        if (!isa.empty() && !instruction.empty())
            os << ":";
        os << instruction;
    }
    if (loc.known())
        os << " (" << loc.str() << ")";
    os << ": " << message;
    return os.str();
}

void
DiagnosticReport::setWaivers(std::vector<Waiver> waivers)
{
    waivers_ = std::move(waivers);
}

bool
DiagnosticReport::waived(const Diagnostic &diag) const
{
    for (const auto &waiver : waivers_) {
        if (waiver.rule == diag.rule &&
            (waiver.instruction_substr.empty() ||
             diag.instruction.find(waiver.instruction_substr) !=
                 std::string::npos)) {
            return true;
        }
    }
    return false;
}

void
DiagnosticReport::add(Diagnostic diag)
{
    if (waived(diag)) {
        ++suppressed_;
        metrics::counter("analysis.verify.suppressed").add();
        return;
    }
    switch (diag.severity) {
      case Severity::Error:
        ++errors_;
        metrics::counter("analysis.verify.errors").add();
        break;
      case Severity::Warning:
        ++warnings_;
        metrics::counter("analysis.verify.warnings").add();
        break;
      case Severity::Note:
        ++notes_;
        metrics::counter("analysis.verify.notes").add();
        break;
    }
    metrics::counter("analysis.pass." + diag.pass + ".findings").add();
    diags_.push_back(std::move(diag));
}

void
DiagnosticReport::sortBySeverity()
{
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.severity != b.severity)
                             return severityRank(a.severity) <
                                    severityRank(b.severity);
                         if (a.isa != b.isa)
                             return a.isa < b.isa;
                         if (a.instruction != b.instruction)
                             return a.instruction < b.instruction;
                         return a.rule < b.rule;
                     });
}

std::string
DiagnosticReport::renderText(size_t max_diags) const
{
    std::ostringstream os;
    size_t shown = 0;
    for (const auto &diag : diags_) {
        if (max_diags && shown == max_diags) {
            os << "... " << (diags_.size() - shown)
               << " further findings elided\n";
            break;
        }
        os << diag.str() << "\n";
        ++shown;
    }
    os << errors_ << " error(s), " << warnings_ << " warning(s), " << notes_
       << " note(s)";
    if (suppressed_)
        os << ", " << suppressed_ << " waived";
    os << "\n";
    return os.str();
}

std::string
DiagnosticReport::renderJson() const
{
    std::ostringstream os;
    os << "{\"diagnostics\":[";
    for (size_t i = 0; i < diags_.size(); ++i) {
        const Diagnostic &d = diags_[i];
        if (i)
            os << ",";
        os << "{\"severity\":\"" << severityName(d.severity) << "\""
           << ",\"rule\":\"" << jsonEscape(d.rule) << "\""
           << ",\"pass\":\"" << jsonEscape(d.pass) << "\""
           << ",\"isa\":\"" << jsonEscape(d.isa) << "\""
           << ",\"instruction\":\"" << jsonEscape(d.instruction) << "\""
           << ",\"loc\":\"" << jsonEscape(d.loc.str()) << "\""
           << ",\"message\":\"" << jsonEscape(d.message) << "\"}";
    }
    os << "],\"summary\":{\"errors\":" << errors_ << ",\"warnings\":"
       << warnings_ << ",\"notes\":" << notes_ << ",\"suppressed\":"
       << suppressed_ << "}";
    for (const auto &[key, raw_json] : extras_)
        os << ",\"" << jsonEscape(key) << "\":" << raw_json;
    os << "}";
    return os.str();
}

void
DiagnosticReport::setExtra(const std::string &key, std::string raw_json)
{
    for (auto &[existing, value] : extras_) {
        if (existing == key) {
            value = std::move(raw_json);
            return;
        }
    }
    extras_.emplace_back(key, std::move(raw_json));
}

} // namespace analysis
} // namespace hydride
