/**
 * @file
 * Reduced product of the interval and known-bits domains.
 *
 * Each AbsValue carries both an unsigned range and per-bit facts;
 * every operation runs both component transfer functions and then
 * *reduces*: information one component proves tightens the other
 * (known high zero bits cap the range, a range below 2^k zeroes the
 * bits above k, a singleton range makes every bit known, fully-known
 * bits collapse the range to a point).  The product is therefore at
 * least as precise as either component alone — the property the
 * CEGIS static pruner and the RA verifier rules rely on.
 */
#ifndef HYDRIDE_ANALYSIS_DATAFLOW_PRODUCT_H
#define HYDRIDE_ANALYSIS_DATAFLOW_PRODUCT_H

#include "analysis/dataflow/interval.h"
#include "analysis/symbolic/knownbits.h"
#include "analysis/symbolic/sym_eval.h"

namespace hydride {
namespace dataflow {

/** One abstract value of the product domain. */
struct AbsValue
{
    Interval iv;
    sym::KnownBits kb;

    int width() const { return iv.width(); }

    bool containsConcrete(const BitVector &v) const
    {
        return iv.contains(v) && kb.contains(v);
    }
};

/** Product domain; implements the sym_eval Domain concept plus the
 *  AbstractDomain lattice surface (domain.h). */
class ProductDomain
{
  public:
    using Value = AbsValue;

    // -- sym_eval Domain concept ------------------------------------
    Value constant(const BitVector &v) const;
    Value makeZero(int width) const;
    int widthOf(const Value &v) const { return v.width(); }
    void setSlice(Value &acc, int low, const Value &v) const;

    Value binOp(BVBinOp op, const Value &a, const Value &b) const;
    Value unOp(BVUnOp op, const Value &a) const;
    Value cast(BVCastOp op, const Value &a, int width) const;
    Value extract(const Value &a, int low, int count) const;
    Value concat(const Value &high, const Value &low) const;
    Value cmp(BVCmpOp op, const Value &a, const Value &b) const;
    Value select(const Value &cond, const Value &t, const Value &e) const;
    Value shiftConst(BVBinOp op, const Value &a, int amount) const;
    int knownBool(const Value &v) const;

    // -- AbstractDomain surface -------------------------------------
    Value top(int width) const;
    Value join(const Value &a, const Value &b) const;
    bool contains(const Value &v, const BitVector &c) const
    {
        return v.containsConcrete(c);
    }

    /** Mutual reduction; exposed for tests. */
    static void reduce(Value &v);

  private:
    IntervalDomain iv_;
    sym::KnownBitsDomain kb_;
};

} // namespace dataflow
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DATAFLOW_PRODUCT_H
