/**
 * @file
 * Range analysis for Int-typed hir::Expr trees.
 *
 * The verifier's UB02/UB03 rules need to know, for a whole lane
 * range at once, whether an index expression can divide by zero or
 * overflow signed 64-bit arithmetic.  evalIntRange computes a
 * conservative [lo, hi] bound of an Int expression over an
 * environment where the loop variables range over intervals and the
 * parameters are concrete; arithmetic is performed in 128 bits so
 * overflow of the 64-bit evaluator is *detected*, not suffered.
 *
 * A result with `known == false` gives no bounds (an immediate /
 * named variable is involved, or a bound escaped int64); the
 * may_/must_ flags remain valid either way.
 */
#ifndef HYDRIDE_ANALYSIS_DATAFLOW_INT_RANGE_H
#define HYDRIDE_ANALYSIS_DATAFLOW_INT_RANGE_H

#include <cstdint>
#include <vector>

#include "hir/expr.h"

namespace hydride {
namespace dataflow {

/** Environment for evalIntRange: concrete params, ranged loop vars. */
struct RangeEnv
{
    const std::vector<int64_t> *param_values = nullptr;
    int64_t i_lo = 0, i_hi = 0; ///< Inclusive range of loop var i.
    int64_t j_lo = 0, j_hi = 0; ///< Inclusive range of loop var j.
};

/** Conservative range of one Int expression. */
struct IntRange
{
    bool known = false; ///< lo/hi are valid bounds.
    int64_t lo = 0;
    int64_t hi = 0;

    /** Some evaluation in the range may divide by zero. */
    bool may_divzero = false;
    /** Every evaluation divides by zero (denominator is exactly 0). */
    bool must_divzero = false;
    const Expr *divzero_at = nullptr;

    /** Some evaluation may overflow signed 64-bit arithmetic. */
    bool may_overflow = false;
    const Expr *overflow_at = nullptr;

    bool clean() const { return !may_divzero && !may_overflow; }
    bool isSingleton() const { return known && lo == hi; }

    static IntRange constant(int64_t v)
    {
        IntRange r;
        r.known = true;
        r.lo = r.hi = v;
        return r;
    }
    static IntRange unknown()
    {
        return IntRange{};
    }
};

/** Bound `expr` over `env`; total — never throws. */
IntRange evalIntRange(const ExprPtr &expr, const RangeEnv &env);

} // namespace dataflow
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DATAFLOW_INT_RANGE_H
