#include "analysis/dataflow/int_range.h"

#include <algorithm>

namespace hydride {
namespace dataflow {

namespace {

using int128 = __int128;

constexpr int64_t kI64Min = INT64_MIN;
constexpr int64_t kI64Max = INT64_MAX;

bool
fitsI64(int128 v)
{
    return v >= static_cast<int128>(kI64Min) && v <= static_cast<int128>(kI64Max);
}

/** Merge operand flags into a result. */
void
mergeFlags(IntRange &out, const IntRange &a, const IntRange &b)
{
    out.may_divzero = a.may_divzero || b.may_divzero;
    out.must_divzero = a.must_divzero || b.must_divzero;
    out.divzero_at = a.divzero_at ? a.divzero_at : b.divzero_at;
    out.may_overflow = a.may_overflow || b.may_overflow;
    out.overflow_at = a.overflow_at ? a.overflow_at : b.overflow_at;
}

/** Set bounds from 128-bit candidates, flagging int64 escape. */
void
setBounds(IntRange &out, int128 lo, int128 hi, const Expr *node)
{
    if (fitsI64(lo) && fitsI64(hi)) {
        out.known = true;
        out.lo = static_cast<int64_t>(lo);
        out.hi = static_cast<int64_t>(hi);
    } else {
        out.known = false;
        out.may_overflow = true;
        if (!out.overflow_at)
            out.overflow_at = node;
    }
}

IntRange
rangeBin(IntBinOp op, const IntRange &a, const IntRange &b, const Expr *node)
{
    IntRange out;
    mergeFlags(out, a, b);
    const bool bounds_ok = a.known && b.known;
    switch (op) {
      case IntBinOp::Add:
        if (bounds_ok)
            setBounds(out, static_cast<int128>(a.lo) + b.lo,
                      static_cast<int128>(a.hi) + b.hi, node);
        return out;
      case IntBinOp::Sub:
        if (bounds_ok)
            setBounds(out, static_cast<int128>(a.lo) - b.hi,
                      static_cast<int128>(a.hi) - b.lo, node);
        return out;
      case IntBinOp::Mul:
        if (bounds_ok) {
            const int128 c[4] = {static_cast<int128>(a.lo) * b.lo,
                                 static_cast<int128>(a.lo) * b.hi,
                                 static_cast<int128>(a.hi) * b.lo,
                                 static_cast<int128>(a.hi) * b.hi};
            setBounds(out, std::min({c[0], c[1], c[2], c[3]}),
                      std::max({c[0], c[1], c[2], c[3]}), node);
        }
        return out;
      case IntBinOp::Div:
      case IntBinOp::Mod: {
        // Division-by-zero facts need only the denominator range.
        if (b.known && b.lo == 0 && b.hi == 0) {
            out.must_divzero = out.may_divzero = true;
            if (!out.divzero_at)
                out.divzero_at = node;
            return out;
        }
        if (!b.known) {
            // Unknown denominator: no divzero claim either way, and
            // no bounds.
            return out;
        }
        if (b.lo <= 0 && 0 <= b.hi) {
            out.may_divzero = true;
            if (!out.divzero_at)
                out.divzero_at = node;
            return out; // bounds unknown: the zero lane traps
        }
        if (!a.known)
            return out;
        if (op == IntBinOp::Div) {
            // Denominator is sign-pure (no zero crossing), so the
            // quotient extremes are at the corners.
            const int128 c[4] = {static_cast<int128>(a.lo) / b.lo,
                                 static_cast<int128>(a.lo) / b.hi,
                                 static_cast<int128>(a.hi) / b.lo,
                                 static_cast<int128>(a.hi) / b.hi};
            setBounds(out, std::min({c[0], c[1], c[2], c[3]}),
                      std::max({c[0], c[1], c[2], c[3]}), node);
            // INT64_MIN / -1 escapes int64; setBounds flagged it.
        } else {
            // |a mod b| < |b|, sign follows the C remainder rules;
            // bound by the largest |b| in both directions, tightened
            // by the dividend's own sign when it is pure.
            const int128 mag =
                std::max(static_cast<int128>(b.lo) < 0
                             ? -static_cast<int128>(b.lo)
                             : static_cast<int128>(b.lo),
                         static_cast<int128>(b.hi) < 0
                             ? -static_cast<int128>(b.hi)
                             : static_cast<int128>(b.hi)) -
                1;
            int128 lo = -mag, hi = mag;
            if (a.lo >= 0)
                lo = 0;
            if (a.hi <= 0)
                hi = 0;
            setBounds(out, lo, hi, node);
        }
        return out;
      }
      case IntBinOp::Min:
        if (bounds_ok)
            setBounds(out, std::min(a.lo, b.lo), std::min(a.hi, b.hi), node);
        return out;
      case IntBinOp::Max:
        if (bounds_ok)
            setBounds(out, std::max(a.lo, b.lo), std::max(a.hi, b.hi), node);
        return out;
    }
    return out;
}

} // namespace

IntRange
evalIntRange(const ExprPtr &expr, const RangeEnv &env)
{
    if (!expr)
        return IntRange::unknown();
    switch (expr->kind) {
      case ExprKind::IntConst:
        return IntRange::constant(expr->value);
      case ExprKind::Param: {
        if (!env.param_values ||
            expr->value >= static_cast<int64_t>(env.param_values->size()) ||
            expr->value < 0)
            return IntRange::unknown();
        return IntRange::constant((*env.param_values)[expr->value]);
      }
      case ExprKind::LoopVar: {
        IntRange r;
        r.known = true;
        if (expr->value == 0) {
            r.lo = env.i_lo;
            r.hi = env.i_hi;
        } else {
            r.lo = env.j_lo;
            r.hi = env.j_hi;
        }
        return r;
      }
      case ExprKind::NamedVar:
        return IntRange::unknown(); // immediate: no static bound
      case ExprKind::IntBin: {
        const IntRange a = evalIntRange(expr->kids[0], env);
        const IntRange b = evalIntRange(expr->kids[1], env);
        return rangeBin(static_cast<IntBinOp>(expr->value), a, b,
                        expr.get());
      }
      default:
        return IntRange::unknown(); // BV-typed node: not an Int expr
    }
}

} // namespace dataflow
} // namespace hydride
