/**
 * @file
 * Total abstract evaluation of template expressions.
 *
 * The sym_eval walkers (evalBVDom) assert on malformed input because
 * they run after verification.  The verifier itself needs the
 * opposite: a walker that never throws, degrades to "no information"
 * (std::nullopt) on anything it cannot analyze, and reports every
 * node's abstract value to a visitor so UB/RA rules can attach
 * diagnostics.  absEval is that walker: it runs the ProductDomain
 * (interval x known-bits) over one BV-typed hir::Expr with loop
 * variables ranging over whole lane intervals (int_range.h), which
 * is how one evaluation covers the *full* lane space that the old
 * per-lane enumeration sampled under a cap.
 */
#ifndef HYDRIDE_ANALYSIS_DATAFLOW_ABS_EVAL_H
#define HYDRIDE_ANALYSIS_DATAFLOW_ABS_EVAL_H

#include <functional>
#include <optional>
#include <vector>

#include "analysis/dataflow/int_range.h"
#include "analysis/dataflow/product.h"

namespace hydride {
namespace dataflow {

/** Environment: ranged integer state + abstract BV arguments
 *  (nullopt marks an argument with no usable width). */
struct AbsEnv
{
    RangeEnv ints;
    const std::vector<std::optional<AbsValue>> *args = nullptr;
};

/** Per-node hooks; either may be empty. */
struct AbsVisitors
{
    /** Called for every BV-typed node after its value is computed,
     *  with the abstract operand values (nullopt = unanalyzable or,
     *  for a pruned select branch, dead). */
    std::function<void(const ExprPtr &node,
                       const std::optional<AbsValue> &result,
                       const std::vector<std::optional<AbsValue>> &operands)>
        bv;
    /** Called for every Int-typed position the walker ranges
     *  (widths, extract indices, constants). */
    std::function<void(const ExprPtr &node, const IntRange &range)> ints;
};

/** Abstractly evaluate a BV-typed expression; total, never throws. */
std::optional<AbsValue> absEval(const ExprPtr &expr, const AbsEnv &env,
                                const AbsVisitors &vis);

} // namespace dataflow
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DATAFLOW_ABS_EVAL_H
