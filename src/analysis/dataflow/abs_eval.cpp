#include "analysis/dataflow/abs_eval.h"

namespace hydride {
namespace dataflow {

namespace {

using MaybeAbs = std::optional<AbsValue>;

class AbsWalker
{
  public:
    AbsWalker(const AbsEnv &env, const AbsVisitors &vis)
        : env_(env), vis_(vis)
    {
    }

    MaybeAbs eval(const ExprPtr &expr)
    {
        if (!expr)
            return std::nullopt;
        std::vector<MaybeAbs> operands;
        MaybeAbs result = evalNode(expr, operands);
        if (vis_.bv)
            vis_.bv(expr, result, operands);
        return result;
    }

  private:
    IntRange rangeOf(const ExprPtr &e)
    {
        const IntRange r = evalIntRange(e, env_.ints);
        if (vis_.ints)
            vis_.ints(e, r);
        return r;
    }

    /** Int position that must be a single compile-time value. */
    std::optional<int64_t> fixedInt(const ExprPtr &e)
    {
        const IntRange r = rangeOf(e);
        if (!r.isSingleton())
            return std::nullopt;
        return r.lo;
    }

    MaybeAbs evalNode(const ExprPtr &expr, std::vector<MaybeAbs> &operands)
    {
        switch (expr->kind) {
          case ExprKind::ArgBV: {
            if (!env_.args || expr->value < 0 ||
                expr->value >= static_cast<int64_t>(env_.args->size()))
                return std::nullopt;
            return (*env_.args)[expr->value];
          }
          case ExprKind::BVConst: {
            const std::optional<int64_t> w = fixedInt(expr->kids[0]);
            if (!w || *w < 1 || *w > BitVector::kMaxWidth)
                return std::nullopt;
            const int width = static_cast<int>(*w);
            const IntRange v = rangeOf(expr->kids[1]);
            if (v.isSingleton())
                return dom_.constant(BitVector::fromInt(width, v.lo));
            if (v.known && v.lo >= 0 &&
                (width >= 63 || v.hi < (int64_t{1} << width))) {
                AbsValue out{Interval(BitVector::fromInt(width, v.lo),
                                      BitVector::fromInt(width, v.hi)),
                             sym::KnownBits::top(width)};
                ProductDomain::reduce(out);
                return out;
            }
            return dom_.top(width);
          }
          case ExprKind::BVBin: {
            operands.push_back(eval(expr->kids[0]));
            operands.push_back(eval(expr->kids[1]));
            if (!operands[0] || !operands[1] ||
                operands[0]->width() != operands[1]->width())
                return std::nullopt;
            return dom_.binOp(static_cast<BVBinOp>(expr->value),
                              *operands[0], *operands[1]);
          }
          case ExprKind::BVUn: {
            operands.push_back(eval(expr->kids[0]));
            if (!operands[0])
                return std::nullopt;
            return dom_.unOp(static_cast<BVUnOp>(expr->value), *operands[0]);
          }
          case ExprKind::BVCast: {
            operands.push_back(eval(expr->kids[0]));
            const std::optional<int64_t> w = fixedInt(expr->kids[1]);
            if (!operands[0] || !w || *w < 1 || *w > BitVector::kMaxWidth)
                return std::nullopt;
            const int width = static_cast<int>(*w);
            const int from = operands[0]->width();
            const auto op = static_cast<BVCastOp>(expr->value);
            const bool widening =
                op == BVCastOp::SExt || op == BVCastOp::ZExt;
            if (widening ? width < from : width > from)
                return std::nullopt; // malformed: WF05's business
            return dom_.cast(op, *operands[0], width);
          }
          case ExprKind::Extract: {
            operands.push_back(eval(expr->kids[0]));
            const std::optional<int64_t> low = fixedInt(expr->kids[1]);
            const std::optional<int64_t> count = fixedInt(expr->kids[2]);
            if (!operands[0] || !count || *count < 1)
                return std::nullopt;
            if (!low) {
                // Lane-varying slice of an analyzable operand: the
                // result width is still fixed.
                if (*count > BitVector::kMaxWidth)
                    return std::nullopt;
                return dom_.top(static_cast<int>(*count));
            }
            if (*low < 0 || *low + *count > operands[0]->width())
                return std::nullopt;
            return dom_.extract(*operands[0], static_cast<int>(*low),
                                static_cast<int>(*count));
          }
          case ExprKind::Concat: {
            operands.push_back(eval(expr->kids[0]));
            operands.push_back(eval(expr->kids[1]));
            if (!operands[0] || !operands[1] ||
                operands[0]->width() + operands[1]->width() >
                    BitVector::kMaxWidth)
                return std::nullopt;
            return dom_.concat(*operands[0], *operands[1]);
          }
          case ExprKind::BVCmp: {
            operands.push_back(eval(expr->kids[0]));
            operands.push_back(eval(expr->kids[1]));
            if (!operands[0] || !operands[1] ||
                operands[0]->width() != operands[1]->width())
                return std::nullopt;
            return dom_.cmp(static_cast<BVCmpOp>(expr->value), *operands[0],
                            *operands[1]);
          }
          case ExprKind::Select: {
            operands.push_back(eval(expr->kids[0]));
            if (operands[0]) {
                const int taken = dom_.knownBool(*operands[0]);
                if (taken >= 0) {
                    // Dead branch stays unevaluated (mirrors the
                    // concrete evaluator's laziness); mark it nullopt.
                    MaybeAbs t, e;
                    if (taken) {
                        t = eval(expr->kids[1]);
                        operands.push_back(t);
                        operands.push_back(std::nullopt);
                        return t;
                    }
                    e = eval(expr->kids[2]);
                    operands.push_back(std::nullopt);
                    operands.push_back(e);
                    return e;
                }
            }
            operands.push_back(eval(expr->kids[1]));
            operands.push_back(eval(expr->kids[2]));
            if (!operands[0] || !operands[1] || !operands[2] ||
                operands[1]->width() != operands[2]->width())
                return std::nullopt;
            return dom_.select(*operands[0], *operands[1], *operands[2]);
          }
          case ExprKind::Hole:
            return std::nullopt;
          default:
            return std::nullopt; // Int-typed node in a BV position
        }
    }

    const AbsEnv &env_;
    const AbsVisitors &vis_;
    ProductDomain dom_;
};

} // namespace

std::optional<AbsValue>
absEval(const ExprPtr &expr, const AbsEnv &env, const AbsVisitors &vis)
{
    AbsWalker walker(env, vis);
    return walker.eval(expr);
}

} // namespace dataflow
} // namespace hydride
