/**
 * @file
 * Unsigned interval (value-range) abstract domain over BitVector.
 *
 * An Interval represents the set { v : lo <=u v <=u hi } of w-bit
 * values.  The representation is *unsigned and non-wrapping*: lo <=u
 * hi always holds, so the full range [0, 2^w-1] is the top element
 * and there is no way to express a wrapped set like [2^w-2, 1].
 * Transfer functions that would need a wrapped result return top
 * instead — sound, just less precise.
 *
 * Signed queries are answered through the region argument: an
 * interval whose bounds share a sign bit lies entirely inside one
 * signed region, where signed and unsigned order coincide, so lo/hi
 * are also the signed bounds.  An interval that crosses the signed
 * boundary (lo non-negative, hi negative) gives no signed
 * information.
 *
 * IntervalDomain plugs the type into the sym_eval Domain concept so
 * the generic evaluators (evalBVDom / evalSemanticsDom) can run
 * whole-instruction range analysis; it additionally provides
 * top/join/contains, the AbstractDomain surface used by the reduced
 * product (product.h) and the verifier (abs_eval.h).
 */
#ifndef HYDRIDE_ANALYSIS_DATAFLOW_INTERVAL_H
#define HYDRIDE_ANALYSIS_DATAFLOW_INTERVAL_H

#include "hir/bitvector.h"
#include "hir/expr.h"

namespace hydride {
namespace dataflow {

/** Unsigned value-range [lo, hi] of one bitvector; lo <=u hi. */
struct Interval
{
    BitVector lo;
    BitVector hi;

    Interval() = default;
    Interval(BitVector l, BitVector h) : lo(std::move(l)), hi(std::move(h)) {}

    int width() const { return lo.width(); }

    /** The full range [0, 2^w - 1]. */
    static Interval top(int width)
    {
        return Interval(BitVector(width), BitVector::allOnes(width));
    }

    /** The singleton { v }. */
    static Interval constant(const BitVector &v) { return Interval(v, v); }

    bool isSingleton() const { return lo == hi; }
    bool isTop() const { return lo.isZero() && hi == BitVector::allOnes(hi.width()); }

    /** lo <=u v <=u hi. */
    bool contains(const BitVector &v) const
    {
        return lo.ule(v) && v.ule(hi);
    }

    /** Least interval containing both (unsigned hull). */
    static Interval join(const Interval &a, const Interval &b)
    {
        return Interval(a.lo.minU(b.lo), a.hi.maxU(b.hi));
    }

    /** True when the range spans the signed min/max boundary, i.e.
     *  contains both 2^(w-1)-1 and 2^(w-1); no signed bounds then. */
    bool crossesSigned() const { return !lo.signBit() && hi.signBit(); }

    /** All values non-negative under signed interpretation. */
    bool allNonNegative() const { return !hi.signBit(); }
    /** All values negative under signed interpretation. */
    bool allNegative() const { return lo.signBit(); }

    /** Signed minimum; only meaningful when !crossesSigned(). */
    const BitVector &smin() const { return lo; }
    /** Signed maximum; only meaningful when !crossesSigned(). */
    const BitVector &smax() const { return hi; }

    /**
     * Interval of { v : smin <=s v <=s smax } given *signed* bounds.
     * Exact when the signed range stays within one region; top when
     * it crosses zero (the unsigned picture wraps there).
     */
    static Interval fromSigned(const BitVector &smin, const BitVector &smax);
};

/**
 * Interval transfer functions, exposed as a sym_eval Domain.  All
 * functions are sound: for concrete a in A and b in B, the concrete
 * result of the operation is contained in the returned interval.
 */
class IntervalDomain
{
  public:
    using Value = Interval;

    // -- sym_eval Domain concept ------------------------------------
    Value constant(const BitVector &v) const { return Interval::constant(v); }
    Value makeZero(int width) const
    {
        return Interval::constant(BitVector(width));
    }
    int widthOf(const Value &v) const { return v.width(); }
    void setSlice(Value &acc, int low, const Value &v) const;

    Value binOp(BVBinOp op, const Value &a, const Value &b) const;
    Value unOp(BVUnOp op, const Value &a) const;
    Value cast(BVCastOp op, const Value &a, int width) const;
    Value extract(const Value &a, int low, int count) const;
    Value concat(const Value &high, const Value &low) const;
    Value cmp(BVCmpOp op, const Value &a, const Value &b) const;
    Value select(const Value &cond, const Value &t, const Value &e) const;
    /** Shift by a concrete amount (op must be Shl/LShr/AShr). */
    Value shiftConst(BVBinOp op, const Value &a, int amount) const;
    /** 1 / 0 when the value is definitely nonzero / zero, -1 else. */
    int knownBool(const Value &v) const;

    // -- AbstractDomain surface (domain.h) --------------------------
    Value top(int width) const { return Interval::top(width); }
    Value join(const Value &a, const Value &b) const
    {
        return Interval::join(a, b);
    }
    bool contains(const Value &v, const BitVector &c) const
    {
        return v.contains(c);
    }
};

} // namespace dataflow
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DATAFLOW_INTERVAL_H
