#include "analysis/dataflow/product.h"

#include "analysis/dataflow/domain.h"

namespace hydride {
namespace dataflow {

static_assert(AbstractDomain<IntervalDomain>);
static_assert(AbstractDomain<ProductDomain>);

void
ProductDomain::reduce(Value &v)
{
    const int w = v.width();
    // Singleton range: every bit is known.
    if (v.iv.isSingleton()) {
        v.kb = sym::KnownBits::constant(v.iv.lo);
        return;
    }
    // Fully known bits: the range is a point.
    if (v.kb.fullyKnown()) {
        v.iv = Interval::constant(v.kb.concreteValue());
        return;
    }
    // Known-bits bounds tighten the range (only when the clamp keeps
    // the interval non-empty; an empty clamp means the value set is
    // unreachable, and either component alone stays sound).
    {
        const BitVector l = v.iv.lo.maxU(v.kb.uminVal());
        const BitVector h = v.iv.hi.minU(v.kb.umaxVal());
        if (l.ule(h))
            v.iv = Interval(l, h);
    }
    // Range below 2^k: bits k and above are known zero.
    for (int i = w - 1; i >= 0; --i) {
        if (v.iv.hi.getBit(i))
            break;
        v.kb.known.setBit(i, true);
        v.kb.value.setBit(i, false);
    }
    // Range entirely in the negative region: the sign bit is one.
    if (v.iv.lo.signBit()) {
        v.kb.known.setBit(w - 1, true);
        v.kb.value.setBit(w - 1, true);
    }
    if (v.kb.fullyKnown())
        v.iv = Interval::constant(v.kb.concreteValue());
}

ProductDomain::Value
ProductDomain::constant(const BitVector &v) const
{
    return Value{Interval::constant(v), sym::KnownBits::constant(v)};
}

ProductDomain::Value
ProductDomain::makeZero(int width) const
{
    return constant(BitVector(width));
}

void
ProductDomain::setSlice(Value &acc, int low, const Value &v) const
{
    iv_.setSlice(acc.iv, low, v.iv);
    kb_.setSlice(acc.kb, low, v.kb);
    reduce(acc);
}

ProductDomain::Value
ProductDomain::binOp(BVBinOp op, const Value &a, const Value &b) const
{
    Value r{iv_.binOp(op, a.iv, b.iv), kb_.binOp(op, a.kb, b.kb)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::unOp(BVUnOp op, const Value &a) const
{
    Value r{iv_.unOp(op, a.iv), kb_.unOp(op, a.kb)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::cast(BVCastOp op, const Value &a, int width) const
{
    Value r{iv_.cast(op, a.iv, width), kb_.cast(op, a.kb, width)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::extract(const Value &a, int low, int count) const
{
    Value r{iv_.extract(a.iv, low, count), kb_.extract(a.kb, low, count)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::concat(const Value &high, const Value &low) const
{
    Value r{iv_.concat(high.iv, low.iv), kb_.concat(high.kb, low.kb)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::cmp(BVCmpOp op, const Value &a, const Value &b) const
{
    Value r{iv_.cmp(op, a.iv, b.iv), kb_.cmp(op, a.kb, b.kb)};
    reduce(r);
    return r;
}

ProductDomain::Value
ProductDomain::select(const Value &cond, const Value &t, const Value &e) const
{
    const int taken = knownBool(cond);
    if (taken > 0)
        return t;
    if (taken == 0)
        return e;
    return join(t, e);
}

ProductDomain::Value
ProductDomain::shiftConst(BVBinOp op, const Value &a, int amount) const
{
    Value r{iv_.shiftConst(op, a.iv, amount),
            kb_.shiftConst(op, a.kb, amount)};
    reduce(r);
    return r;
}

int
ProductDomain::knownBool(const Value &v) const
{
    const int from_iv = iv_.knownBool(v.iv);
    if (from_iv >= 0)
        return from_iv;
    return kb_.knownBool(v.kb);
}

ProductDomain::Value
ProductDomain::top(int width) const
{
    return Value{Interval::top(width), sym::KnownBits::top(width)};
}

ProductDomain::Value
ProductDomain::join(const Value &a, const Value &b) const
{
    return Value{Interval::join(a.iv, b.iv), sym::KnownBits::join(a.kb, b.kb)};
}

} // namespace dataflow
} // namespace hydride
