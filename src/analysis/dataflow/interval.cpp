#include "analysis/dataflow/interval.h"

#include <algorithm>

namespace hydride {
namespace dataflow {

namespace {

/** All bits at and above `from` are zero. */
bool
zeroAbove(const BitVector &v, int from)
{
    if (from >= v.width())
        return true;
    if (from <= 0)
        return v.isZero();
    return v.lshr(from).isZero();
}

/** Smallest mask 2^k - 1 covering v (all bits up to v's msb set). */
BitVector
smear(const BitVector &v)
{
    const int w = v.width();
    int msb = -1;
    for (int i = w - 1; i >= 0; --i)
        if (v.getBit(i)) {
            msb = i;
            break;
        }
    if (msb < 0)
        return BitVector(w);
    return BitVector::allOnes(msb + 1).zext(w);
}

/** Clamp an unsigned bound to [0, limit] as a shift amount. */
int
clampShift(const BitVector &v, int limit)
{
    if (!zeroAbove(v, 31))
        return limit;
    const int64_t n = static_cast<int64_t>(v.toUint64());
    return n > limit ? limit : static_cast<int>(n);
}

} // namespace

Interval
Interval::fromSigned(const BitVector &smin, const BitVector &smax)
{
    const int w = smin.width();
    if (smin.signBit() && !smax.signBit())
        return Interval::top(w); // crosses zero: wraps in unsigned order
    return Interval(smin, smax);
}

void
IntervalDomain::setSlice(Value &acc, int low, const Value &v) const
{
    const int aw = acc.width();
    if (acc.isSingleton() && v.isSingleton()) {
        BitVector l = acc.lo;
        l.setSlice(low, v.lo);
        acc = Interval::constant(l);
        return;
    }
    // Increasing-offset writes (the evalSemanticsDom pattern) leave
    // the target bits zero: acc < 2^low makes the write a carry-free
    // add, which is monotone in both bounds.
    if (zeroAbove(acc.hi, low) && low + v.width() <= aw) {
        acc = Interval(acc.lo.add(v.lo.zext(aw).shl(low)),
                       acc.hi.add(v.hi.zext(aw).shl(low)));
        return;
    }
    acc = Interval::top(aw);
}

IntervalDomain::Value
IntervalDomain::binOp(BVBinOp op, const Value &a, const Value &b) const
{
    const int w = a.width();
    if (a.isSingleton() && b.isSingleton())
        return Interval::constant(applyBVBinOp(op, a.lo, b.lo));
    switch (op) {
      case BVBinOp::Add: {
        const BitVector slo = a.lo.add(b.lo);
        const BitVector shi = a.hi.add(b.hi);
        const bool ovf_lo = slo.ult(a.lo); // carry out of the low corner
        const bool ovf_hi = shi.ult(a.hi);
        // No corner wraps (no sum wraps) or both wrap (every sum
        // wraps): the lattice image is still one interval.
        if (ovf_lo == ovf_hi)
            return Interval(slo, shi);
        return Interval::top(w);
      }
      case BVBinOp::Sub: {
        if (b.hi.ule(a.lo)) // no borrow anywhere
            return Interval(a.lo.sub(b.hi), a.hi.sub(b.lo));
        if (a.hi.ult(b.lo)) // borrow everywhere: uniform wrap
            return Interval(a.lo.sub(b.hi), a.hi.sub(b.lo));
        return Interval::top(w);
      }
      case BVBinOp::Mul: {
        if (a.hi.isZero() || b.hi.isZero())
            return Interval::constant(BitVector(w));
        if (2 * w <= BitVector::kMaxWidth) {
            const BitVector m = a.hi.zext(2 * w).mul(b.hi.zext(2 * w));
            if (zeroAbove(m, w)) // max product fits: monotone, exact
                return Interval(a.lo.mul(b.lo), a.hi.mul(b.hi));
        }
        return Interval::top(w);
      }
      case BVBinOp::UDiv: {
        if (b.hi.isZero()) // division by zero yields all-ones
            return Interval::constant(BitVector::allOnes(w));
        if (b.lo.isZero())
            return Interval(a.lo.udiv(b.hi), BitVector::allOnes(w));
        return Interval(a.lo.udiv(b.hi), a.hi.udiv(b.lo));
      }
      case BVBinOp::URem: {
        // r = a urem b satisfies r <= a (also when b == 0, where
        // r == a); with b provably nonzero additionally r < b.
        BitVector hi = a.hi;
        if (!b.lo.isZero())
            hi = hi.minU(b.hi.sub(BitVector::fromUint(w, 1)));
        return Interval(BitVector(w), hi);
      }
      case BVBinOp::And:
        return Interval(BitVector(w), a.hi.minU(b.hi));
      case BVBinOp::Or:
        return Interval(a.lo.maxU(b.lo), smear(a.hi.bvor(b.hi)));
      case BVBinOp::Xor:
        return Interval(BitVector(w), smear(a.hi.bvor(b.hi)));
      case BVBinOp::Shl: {
        if (a.hi.isZero())
            return Interval::constant(BitVector(w));
        if (b.isSingleton())
            return shiftConst(op, a, clampShift(b.lo, w));
        return Interval::top(w);
      }
      case BVBinOp::LShr: {
        const int smin = clampShift(b.lo, w);
        const int smax = clampShift(b.hi, w);
        return Interval(a.lo.lshr(smax), a.hi.lshr(smin));
      }
      case BVBinOp::AShr: {
        const int smin = clampShift(b.lo, w);
        const int smax = clampShift(b.hi, w);
        if (a.allNonNegative()) // behaves as lshr
            return Interval(a.lo.lshr(smax), a.hi.lshr(smin));
        if (a.allNegative()) // monotone toward -1 as the shift grows
            return Interval(a.lo.ashr(smin), a.hi.ashr(smax));
        return Interval::top(w);
      }
      case BVBinOp::MinU:
        return Interval(a.lo.minU(b.lo), a.hi.minU(b.hi));
      case BVBinOp::MaxU:
        return Interval(a.lo.maxU(b.lo), a.hi.maxU(b.hi));
      case BVBinOp::MinS:
        if (a.crossesSigned() || b.crossesSigned())
            return Interval::top(w);
        return Interval::fromSigned(a.smin().minS(b.smin()),
                                    a.smax().minS(b.smax()));
      case BVBinOp::MaxS:
        if (a.crossesSigned() || b.crossesSigned())
            return Interval::top(w);
        return Interval::fromSigned(a.smin().maxS(b.smin()),
                                    a.smax().maxS(b.smax()));
      case BVBinOp::AddSatU: // monotone in both operands
        return Interval(a.lo.addSatU(b.lo), a.hi.addSatU(b.hi));
      case BVBinOp::SubSatU:
        return Interval(a.lo.subSatU(b.hi), a.hi.subSatU(b.lo));
      case BVBinOp::AddSatS:
        if (a.crossesSigned() || b.crossesSigned())
            return Interval::top(w);
        return Interval::fromSigned(a.smin().addSatS(b.smin()),
                                    a.smax().addSatS(b.smax()));
      case BVBinOp::SubSatS:
        if (a.crossesSigned() || b.crossesSigned())
            return Interval::top(w);
        return Interval::fromSigned(a.smin().subSatS(b.smax()),
                                    a.smax().subSatS(b.smin()));
      case BVBinOp::AvgU: // monotone in both operands, no overflow
        return Interval(a.lo.avgU(b.lo), a.hi.avgU(b.hi));
      case BVBinOp::AvgS:
        if (a.crossesSigned() || b.crossesSigned())
            return Interval::top(w);
        return Interval::fromSigned(a.smin().avgS(b.smin()),
                                    a.smax().avgS(b.smax()));
    }
    return Interval::top(w);
}

IntervalDomain::Value
IntervalDomain::unOp(BVUnOp op, const Value &a) const
{
    const int w = a.width();
    switch (op) {
      case BVUnOp::Not: // anti-monotone, exact
        return Interval(a.hi.bvnot(), a.lo.bvnot());
      case BVUnOp::Neg: {
        if (a.isSingleton())
            return Interval::constant(a.lo.neg());
        // -x is anti-monotone and wrap-free on [lo, hi] when the
        // range excludes zero (negation of 0 wraps the order).
        if (!a.lo.isZero())
            return Interval(a.hi.neg(), a.lo.neg());
        return Interval::top(w);
      }
      case BVUnOp::AbsS: {
        if (a.isSingleton())
            return Interval::constant(a.lo.absS());
        if (a.allNonNegative())
            return a; // identity
        if (a.allNegative() && !zeroAbove(a.lo.bvnot(), w - 1)) {
            // All negative, INT_MIN excluded: |x| = -x, anti-monotone.
            return Interval(a.hi.neg(), a.lo.neg());
        }
        return Interval::top(w);
      }
      case BVUnOp::Popcount: {
        // Any v <=u hi has no bits above hi's msb.
        const BitVector mask = smear(a.hi);
        int msb = 0;
        for (int i = 0; i < w; ++i)
            if (mask.getBit(i))
                msb = i + 1;
        return Interval(BitVector(w), BitVector::fromUint(w, msb));
      }
    }
    return Interval::top(w);
}

IntervalDomain::Value
IntervalDomain::cast(BVCastOp op, const Value &a, int width) const
{
    switch (op) {
      case BVCastOp::ZExt:
        return Interval(a.lo.zext(width), a.hi.zext(width));
      case BVCastOp::SExt:
        if (a.crossesSigned())
            return Interval::top(width);
        return Interval::fromSigned(a.smin().sext(width),
                                    a.smax().sext(width));
      case BVCastOp::Trunc:
        if (a.isSingleton())
            return Interval::constant(a.lo.trunc(width));
        if (zeroAbove(a.hi, width)) // all values fit: exact
            return Interval(a.lo.trunc(width), a.hi.trunc(width));
        return Interval::top(width);
      case BVCastOp::SatNarrowS:
        if (a.crossesSigned())
            return Interval::top(width);
        // Clamp-then-truncate is monotone in the signed input, and
        // both results land in the signed range of `width`.
        return Interval::fromSigned(a.smin().satNarrowS(width),
                                    a.smax().satNarrowS(width));
      case BVCastOp::SatNarrowU:
        if (a.crossesSigned())
            return Interval::top(width);
        // Monotone in the signed input; outputs are unsigned values
        // 0..2^width-1, so the result order is plain unsigned.
        return Interval(a.smin().satNarrowU(width),
                        a.smax().satNarrowU(width));
    }
    return Interval::top(width);
}

IntervalDomain::Value
IntervalDomain::extract(const Value &a, int low, int count) const
{
    if (a.isSingleton())
        return Interval::constant(a.lo.extract(low, count));
    // When no value has bits at or above low+count, extract(low, n)
    // equals (x >> low) truncated, which is monotone.
    if (zeroAbove(a.hi, low + count))
        return Interval(a.lo.extract(low, count), a.hi.extract(low, count));
    return Interval::top(count);
}

IntervalDomain::Value
IntervalDomain::concat(const Value &high, const Value &low) const
{
    const int w = high.width() + low.width();
    const int wl = low.width();
    // concat(h, l) = h * 2^wl + l with l < 2^wl: monotone in both.
    return Interval(high.lo.zext(w).shl(wl).add(low.lo.zext(w)),
                    high.hi.zext(w).shl(wl).add(low.hi.zext(w)));
}

IntervalDomain::Value
IntervalDomain::cmp(BVCmpOp op, const Value &a, const Value &b) const
{
    const BitVector t = BitVector::fromUint(1, 1);
    const BitVector f = BitVector(1);
    auto decided = [&](int verdict) {
        if (verdict > 0)
            return Interval::constant(t);
        if (verdict == 0)
            return Interval::constant(f);
        return Interval(f, t);
    };
    switch (op) {
      case BVCmpOp::Eq:
        if (a.isSingleton() && b.isSingleton())
            return decided(a.lo == b.lo);
        if (a.hi.ult(b.lo) || b.hi.ult(a.lo)) // disjoint ranges
            return decided(0);
        return decided(-1);
      case BVCmpOp::Ne:
        if (a.isSingleton() && b.isSingleton())
            return decided(!(a.lo == b.lo));
        if (a.hi.ult(b.lo) || b.hi.ult(a.lo))
            return decided(1);
        return decided(-1);
      case BVCmpOp::Ult:
        if (a.hi.ult(b.lo))
            return decided(1);
        if (b.hi.ule(a.lo))
            return decided(0);
        return decided(-1);
      case BVCmpOp::Ule:
        if (a.hi.ule(b.lo))
            return decided(1);
        if (b.hi.ult(a.lo))
            return decided(0);
        return decided(-1);
      case BVCmpOp::Slt:
        if (a.crossesSigned() || b.crossesSigned())
            return decided(-1);
        if (a.smax().slt(b.smin()))
            return decided(1);
        if (b.smax().sle(a.smin()))
            return decided(0);
        return decided(-1);
      case BVCmpOp::Sle:
        if (a.crossesSigned() || b.crossesSigned())
            return decided(-1);
        if (a.smax().sle(b.smin()))
            return decided(1);
        if (b.smax().slt(a.smin()))
            return decided(0);
        return decided(-1);
    }
    return Interval(f, t);
}

IntervalDomain::Value
IntervalDomain::select(const Value &cond, const Value &t, const Value &e) const
{
    const int taken = knownBool(cond);
    if (taken > 0)
        return t;
    if (taken == 0)
        return e;
    return Interval::join(t, e);
}

IntervalDomain::Value
IntervalDomain::shiftConst(BVBinOp op, const Value &a, int amount) const
{
    const int w = a.width();
    const int s = amount >= w ? w : (amount < 0 ? w : amount);
    switch (op) {
      case BVBinOp::Shl:
        if (s >= w)
            return Interval::constant(BitVector(w));
        if (zeroAbove(a.hi, w - s)) // no bit shifts out: monotone
            return Interval(a.lo.shl(s), a.hi.shl(s));
        if (a.isSingleton())
            return Interval::constant(a.lo.shl(s));
        return Interval::top(w);
      case BVBinOp::LShr:
        return Interval(a.lo.lshr(s), a.hi.lshr(s));
      case BVBinOp::AShr:
        if (a.allNonNegative())
            return Interval(a.lo.lshr(s), a.hi.lshr(s));
        if (a.allNegative())
            return Interval(a.lo.ashr(s), a.hi.ashr(s));
        if (a.isSingleton())
            return Interval::constant(a.lo.ashr(s));
        return Interval::top(w);
      default:
        return Interval::top(w);
    }
}

int
IntervalDomain::knownBool(const Value &v) const
{
    if (v.hi.isZero())
        return 0;
    if (!v.lo.isZero())
        return 1;
    return -1;
}

} // namespace dataflow
} // namespace hydride
