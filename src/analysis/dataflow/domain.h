/**
 * @file
 * The AbstractDomain interface of the dataflow framework.
 *
 * Hydride's abstract interpreters are the *generic evaluators* in
 * analysis/symbolic/sym_eval.h: evalBVDom walks one hir::Expr and
 * evalSemanticsDom runs a whole canonical-semantics loop nest, both
 * parameterized over a pluggable Domain.  A plain evaluation Domain
 * (AigDomain) only needs the operations those walkers call; an
 * *abstract* domain — one whose Values denote sets of concrete
 * bitvectors — additionally provides the lattice surface below so
 * clients can start from no information, merge control-flow paths,
 * and test candidate outputs for membership:
 *
 *   Value top(int width)                     — the set of all w-bit values
 *   Value join(const Value&, const Value&)   — an upper bound of two sets
 *   bool  contains(const Value&, const BitVector&)
 *                                            — membership test
 *
 * The soundness contract every abstract domain must obey (and that
 * tests/test_dataflow.cpp fuzzes): if each operand Value contains the
 * corresponding concrete operand, the result Value contains the
 * concrete result of the same operation.  Clients may only use the
 * *absence* of containment to rule things out; nothing may be
 * concluded from containment itself.
 *
 * Implementations:
 *   - IntervalDomain  (interval.h)  — unsigned value ranges
 *   - KnownBitsDomain (sym_eval.h)  — per-bit known/unknown facts
 *   - ProductDomain   (product.h)   — reduced product of the two
 *
 * To add a domain: implement the sym_eval Domain concept plus the
 * three lattice operations, then extend the differential fuzz test
 * so the soundness contract is machine-checked.  docs/static_analysis.md
 * has a worked guide.
 */
#ifndef HYDRIDE_ANALYSIS_DATAFLOW_DOMAIN_H
#define HYDRIDE_ANALYSIS_DATAFLOW_DOMAIN_H

#include <type_traits>

#include "hir/bitvector.h"
#include "hir/expr.h"

namespace hydride {
namespace dataflow {

/** Compile-time check that D is a usable abstract domain. */
template <typename D>
concept AbstractDomain = requires(const D d, typename D::Value v,
                                  const BitVector &c) {
    { d.top(8) } -> std::same_as<typename D::Value>;
    { d.join(v, v) } -> std::same_as<typename D::Value>;
    { d.contains(v, c) } -> std::same_as<bool>;
    { d.constant(c) } -> std::same_as<typename D::Value>;
    { d.widthOf(v) } -> std::same_as<int>;
    { d.knownBool(v) } -> std::same_as<int>;
};

} // namespace dataflow
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_DATAFLOW_DOMAIN_H
