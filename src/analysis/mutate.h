/**
 * @file
 * Seeded-mutation support for verifier self-testing.
 *
 * Each mutation injects one specific defect class into an otherwise
 * clean spec database or AutoLLVM dictionary and names the rule the
 * verifier must report for it. `hydride-verify --mutate <kind>` uses
 * this to demonstrate (and `--self-test` to assert) that every defect
 * class is actually caught — the negative half of the verifier's own
 * test story.
 */
#ifndef HYDRIDE_ANALYSIS_MUTATE_H
#define HYDRIDE_ANALYSIS_MUTATE_H

#include <string>
#include <vector>

#include "similarity/engine.h"
#include "specs/spec_db.h"

namespace hydride {
namespace analysis {

/** One seedable defect. */
struct MutationInfo
{
    std::string kind;          ///< CLI name, e.g. "flip-width".
    std::string expected_rule; ///< Rule id the verifier must emit.
    std::string description;
    bool on_dict = false; ///< Mutates dictionary classes, not specs.
    /** Mutates macro-expansion output via the expander's splice-skew
     *  knob instead of any table data. */
    bool on_expander = false;

    /** Semantic-only defect: every structural rule (WF/UB/DC/XT) must
     *  still pass; only the symbolic EQ rules can catch it. */
    bool semantic() const
    {
        return expected_rule.rfind("EQ", 0) == 0;
    }
};

/** All known mutations. */
const std::vector<MutationInfo> &allMutations();

/** Look up by kind; nullptr if unknown. */
const MutationInfo *findMutation(const std::string &kind);

/**
 * Apply a spec mutation to one instruction of `sema` (a deterministic
 * mid-table pick). Returns the name of the mutated instruction; empty
 * if the mutation does not apply to spec semantics or no instruction
 * is eligible.
 */
std::string mutateSemantics(IsaSemantics &sema, const std::string &kind);

/**
 * Apply a dictionary mutation to `classes` (mutate, then rebuild the
 * AutoLLVMDict from the result). Returns the affected instruction
 * name; empty if the mutation does not apply or nothing was eligible.
 */
std::string mutateClasses(std::vector<EquivalenceClass> &classes,
                          const std::string &kind);

} // namespace analysis
} // namespace hydride

#endif // HYDRIDE_ANALYSIS_MUTATE_H
