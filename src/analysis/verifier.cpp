#include "analysis/verifier.h"

#include "analysis/equiv_pass.h"
#include "codegen/macro_expand.h"
#include "halide/hexpr.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/strings.h"

#include <algorithm>
#include <set>

namespace hydride {
namespace analysis {

const std::vector<PassInfo> &
verifierPasses()
{
    static const std::vector<PassInfo> passes = {
        {"wellformed", "bitwidth/type well-formedness", "WF01..WF09", false},
        {"ub", "undefined-behaviour detection", "UB01..UB04", false},
        {"deadcode", "dead operands / unreachable templates", "DC01..DC05",
         false},
        {"range", "abstract-interpretation value-range redundancy",
         "RA01..RA03", false},
        {"crosstable", "AutoLLVM / lowering-table consistency",
         "XT01..XT09", true},
        {"equiv", "symbolic translation validation", "EQ01..EQ04", true,
         /*on_by_default=*/false},
    };
    return passes;
}

int
EquivStats::totalProved() const
{
    int n = 0;
    for (const auto &[rule, count] : proved)
        n += count;
    return n;
}

int
EquivStats::totalRefuted() const
{
    int n = 0;
    for (const auto &[rule, count] : refuted)
        n += count;
    return n;
}

int
EquivStats::totalUnknown() const
{
    int n = 0;
    for (const auto &[rule, count] : unknown)
        n += count;
    return n;
}

bool
VerifierOptions::runsPass(const std::string &id) const
{
    if (!pass_ids.empty())
        return std::find(pass_ids.begin(), pass_ids.end(), id) !=
               pass_ids.end();
    for (const PassInfo &pass : verifierPasses())
        if (pass.id == id)
            return pass.on_by_default;
    return false;
}

namespace {

Diagnostic
tableDiag(Severity severity, const char *rule, const std::string &isa,
          const std::string &instruction, std::string message)
{
    Diagnostic diag;
    diag.severity = severity;
    diag.rule = rule;
    diag.pass = "crosstable";
    diag.isa = isa;
    diag.instruction = instruction;
    diag.message = std::move(message);
    return diag;
}

std::string
paramsText(const std::vector<int64_t> &values)
{
    std::vector<std::string> parts;
    parts.reserve(values.size());
    for (int64_t v : values)
        parts.push_back(std::to_string(v));
    return "[" + join(parts, ",") + "]";
}

/** The XT pass: dictionary, lowering-table and fallback consistency. */
void
runCrossTablePass(const VerifyInput &input, const VerifierOptions &options,
                  DiagnosticReport &report)
{
    const AutoLLVMDict &dict = *input.dict;
    trace::TraceSpan span("analysis.pass.crosstable");

    // Ground truth: the instruction names the spec DB derived.
    std::map<std::string, std::set<std::string>> spec_names;
    for (const IsaSemantics *sema : input.isas)
        for (const auto &inst : sema->insts)
            spec_names[sema->isa].insert(inst.name);

    for (int c = 0; c < dict.classCount(); ++c) {
        const EquivalenceClass &cls = dict.cls(c);
        const std::string &cname = dict.className(c);
        const size_t rep_params = cls.rep.params.size();
        const size_t rep_args = cls.rep.bv_args.size();
        std::set<std::pair<std::string, std::vector<int64_t>>> seen;

        for (const ClassMember &member : cls.members) {
            // XT01: dangling intrinsic name — the member does not
            // correspond to any derived spec instruction.
            auto isa_it = spec_names.find(member.isa);
            if (isa_it != spec_names.end() &&
                !isa_it->second.count(member.name)) {
                report.add(tableDiag(
                    Severity::Error, "XT01", member.isa, member.name,
                    cname + " member does not exist in the " + member.isa +
                        " spec DB"));
            }
            // XT02: the instruction-to-class index disagrees (the
            // instruction was claimed by several classes).
            const int mapped = dict.classOfInstruction(member.name);
            if (mapped != c) {
                report.add(tableDiag(
                    Severity::Error, "XT02", member.isa, member.name,
                    "instruction is a member of " + cname +
                        " but the dictionary index maps it to " +
                        (mapped < 0 ? std::string("no class")
                                    : dict.className(mapped))));
            }
            // XT09: parameter assignment shape mismatch.
            if (member.param_values.size() != rep_params) {
                report.add(tableDiag(
                    Severity::Error, "XT09", member.isa, member.name,
                    cname + " member carries " +
                        std::to_string(member.param_values.size()) +
                        " parameter values, the representative has " +
                        std::to_string(rep_params)));
            }
            // XT08: argument permutation must be a permutation of the
            // representative's argument positions.
            if (!member.arg_perm.empty()) {
                std::vector<bool> hit(rep_args, false);
                bool valid = member.arg_perm.size() == rep_args;
                for (int p : member.arg_perm) {
                    if (p < 0 || p >= static_cast<int>(rep_args) || hit[p]) {
                        valid = false;
                        break;
                    }
                    hit[p] = true;
                }
                if (!valid) {
                    report.add(tableDiag(
                        Severity::Error, "XT08", member.isa, member.name,
                        "argument permutation is not a valid permutation of " +
                            std::to_string(rep_args) + " positions"));
                }
            }
            // XT03: duplicated lowering entry — the *same* instruction
            // listed twice with one parameter assignment. Distinct
            // instructions sharing (ISA, parameters) are fine: vendor
            // manuals define type-only aliases (vand_s16 / vand_u16 /
            // ...) whose semantics the similarity engine already
            // proved interchangeable, so the selector's pick among
            // them is arbitrary but correct.
            if (!seen.insert({member.isa + "\x1f" + member.name,
                              member.param_values})
                     .second) {
                report.add(tableDiag(
                    Severity::Error, "XT03", member.isa, member.name,
                    cname + " lists " + member.name +
                        " twice with parameters " +
                        paramsText(member.param_values) +
                        "; the lowering table entry is duplicated"));
            }
        }

        // XT04/XT05: every variant must lower to its own ISA, and the
        // lowered program must be well-formed.
        for (size_t m = 0; m < cls.members.size(); ++m) {
            const ClassMember &member = cls.members[m];
            // A mis-shaped parameter vector (XT09, reported above)
            // would crash the width evaluation below; don't probe it.
            if (member.param_values.size() != rep_params)
                continue;
            AutoModule module;
            AutoInst call;
            call.op = {c, static_cast<int>(m)};
            for (size_t a = 0; a < rep_args; ++a) {
                module.input_widths.push_back(
                    cls.rep.argWidth(static_cast<int>(a),
                                     member.param_values));
                call.args.push_back(ValueRef::input(static_cast<int>(a)));
            }
            call.int_args.assign(cls.rep.int_args.size(), 0);
            module.insts.push_back(std::move(call));
            const LoweringResult lowered =
                lowerToTarget(module, dict, member.isa);
            if (!lowered.ok) {
                report.add(tableDiag(
                    Severity::Error, "XT04", member.isa, member.name,
                    cname + " variant has no 1-1 lowering to its own ISA: " +
                        lowered.error));
                continue;
            }
            verifyTargetProgram(lowered.program, &dict, report);
        }

        // Run the per-instruction rules over the symbolic
        // representative too: class merging and constant extraction
        // must not have produced a malformed semantics.
        CanonicalSemantics rep = cls.rep;
        if (rep.name.empty())
            rep.name = cname;
        verifyInstruction(rep, kWellFormed | kUndefined, options.inst,
                          report);
    }

    // XT07: dropped lowering entry — a derived spec instruction that
    // no AutoLLVM class claims can never be emitted or lowered.
    for (const IsaSemantics *sema : input.isas) {
        for (const auto &inst : sema->insts) {
            if (dict.classOfInstruction(inst.name) < 0) {
                report.add(tableDiag(
                    Severity::Error, "XT07", sema->isa, inst.name,
                    "instruction has no AutoLLVM dictionary entry "
                    "(dropped lowering entry)"));
            }
        }
    }

    // XT06: the macro-expansion fallback must cover basic lane
    // arithmetic on every ingested ISA, and its output must be
    // well-formed. A hole here means synthesis failures on that ISA
    // have no fallback path.
    for (const IsaSemantics *sema : input.isas) {
        auto bits_it = options.vector_bits.find(sema->isa);
        if (bits_it == options.vector_bits.end())
            continue;
        const int vector_bits = bits_it->second;
        MacroExpander expander(dict, sema->isa, vector_bits);
        for (int ew : {8, 16, 32}) {
            const int lanes = vector_bits / ew;
            const HExprPtr window =
                hBin(HOp::Add, hInput(0, ew, lanes), hInput(1, ew, lanes));
            ExpandResult expanded = expander.expand(window);
            if (!expanded.ok) {
                report.add(tableDiag(
                    Severity::Warning, "XT06", sema->isa, "",
                    "macro-expansion fallback cannot lower a " +
                        std::to_string(ew) + "-bit lane add: " +
                        expanded.error));
                continue;
            }
            verifyTargetProgram(expanded.program, &dict, report);
        }
    }
}

} // namespace

void
verifyTargetProgram(const TargetProgram &program, const AutoLLVMDict *dict,
                    DiagnosticReport &report)
{
    auto bad = [&](const std::string &instruction, std::string message) {
        report.add(tableDiag(Severity::Error, "XT05", program.isa,
                             instruction, std::move(message)));
    };
    auto checkRef = [&](const ValueRef &ref, size_t position,
                        const std::string &instruction) {
        switch (ref.kind) {
          case ValueRef::Input:
            if (ref.index < 0 ||
                ref.index >= static_cast<int>(program.input_widths.size()))
                bad(instruction,
                    "operand references input " + std::to_string(ref.index) +
                        " of " + std::to_string(program.input_widths.size()));
            break;
          case ValueRef::Const:
            if (ref.index < 0 ||
                ref.index >= static_cast<int>(program.constants.size()))
                bad(instruction,
                    "operand references constant " +
                        std::to_string(ref.index) + " of " +
                        std::to_string(program.constants.size()));
            break;
          case ValueRef::Inst:
            // SSA acyclicity: only strictly earlier results.
            if (ref.index < 0 || ref.index >= static_cast<int>(position))
                bad(instruction,
                    "operand references instruction %" +
                        std::to_string(ref.index) +
                        " which is not strictly earlier (position " +
                        std::to_string(position) + ")");
            break;
        }
    };

    for (size_t v = 0; v < program.insts.size(); ++v) {
        const TargetInst &inst = program.insts[v];
        for (const ValueRef &ref : inst.args)
            checkRef(ref, v, inst.inst_name);
        if (dict) {
            if (inst.op.class_id < 0 ||
                inst.op.class_id >= dict->classCount()) {
                bad(inst.inst_name, "class id " +
                                        std::to_string(inst.op.class_id) +
                                        " out of range");
                continue;
            }
            const EquivalenceClass &cls = dict->cls(inst.op.class_id);
            if (inst.op.member_index < 0 ||
                inst.op.member_index >=
                    static_cast<int>(cls.members.size())) {
                bad(inst.inst_name,
                    "member index " + std::to_string(inst.op.member_index) +
                        " out of range for " +
                        dict->className(inst.op.class_id));
                continue;
            }
            if (inst.args.size() != cls.rep.bv_args.size()) {
                bad(inst.inst_name,
                    "call passes " + std::to_string(inst.args.size()) +
                        " operands, " + dict->className(inst.op.class_id) +
                        " takes " + std::to_string(cls.rep.bv_args.size()));
            }
            if (inst.int_args.size() != cls.rep.int_args.size()) {
                bad(inst.inst_name,
                    "call passes " + std::to_string(inst.int_args.size()) +
                        " immediates, " + dict->className(inst.op.class_id) +
                        " takes " + std::to_string(cls.rep.int_args.size()));
            }
        }
    }
    const int last = static_cast<int>(program.insts.size()) - 1;
    if (program.results.empty()) {
        if (program.result > last)
            bad("", "result index " + std::to_string(program.result) +
                        " exceeds the last instruction " +
                        std::to_string(last));
    } else {
        for (const ValueRef &ref : program.results)
            checkRef(ref, program.insts.size(), "");
    }
}

void
runVerifier(const VerifyInput &input, const VerifierOptions &options,
            DiagnosticReport &report)
{
    trace::TraceSpan span("analysis.verify");
    int instructions = 0;

    unsigned rules = 0;
    if (options.runsPass("wellformed"))
        rules |= kWellFormed;
    if (options.runsPass("ub"))
        rules |= kUndefined;
    if (options.runsPass("deadcode"))
        rules |= kDeadCode;
    if (options.runsPass("range"))
        rules |= kRange;

    if (rules) {
        for (const IsaSemantics *sema : input.isas) {
            trace::TraceSpan isa_span("analysis.pass.inst");
            isa_span.setAttr("isa", sema->isa);
            for (const auto &inst : sema->insts) {
                verifyInstruction(inst, rules, options.inst, report);
                ++instructions;
            }
        }
    }

    if (input.dict && options.runsPass("crosstable"))
        runCrossTablePass(input, options, report);

    if (input.dict && options.runsPass("equiv"))
        runEquivPass(input, options, report);

    // InstChecker::run() counts analysis.verify.instructions itself
    // (including the class representatives the crosstable pass checks).
    span.setAttr("instructions", static_cast<int64_t>(instructions));
    span.setAttr("errors", static_cast<int64_t>(report.errors()));
    metrics::gauge("analysis.verify.last_errors").set(report.errors());
}

} // namespace analysis
} // namespace hydride
