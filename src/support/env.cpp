#include "support/env.h"

#include <algorithm>
#include <cstdlib>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace hydride {
namespace env {

Raw
raw(const char *name)
{
    Raw out;
    const char *value = std::getenv(name);
    if (!value)
        return out;
    out.set = true;
    out.value = value;
    return out;
}

Toggle
toggle(const char *name)
{
    Toggle out;
    const Raw r = raw(name);
    if (!r.set || r.value.empty())
        return out;
    out.set = true;
    if (r.value == "0")
        return out; // enabled stays false: force-disable.
    out.enabled = true;
    if (r.value != "1")
        out.path = r.value;
    return out;
}

bool
parseBool(const std::string &text, bool &out)
{
    std::string lower = text;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == "1" || lower == "true" || lower == "on" ||
        lower == "yes") {
        out = true;
        return true;
    }
    if (lower.empty() || lower == "0" || lower == "false" ||
        lower == "off" || lower == "no") {
        out = false;
        return true;
    }
    return false;
}

bool
boolOr(const char *name, bool fallback)
{
    const Raw r = raw(name);
    if (!r.set || r.value.empty())
        return fallback;
    bool parsed = false;
    if (!parseBool(r.value, parsed))
        return fallback;
    return parsed;
}

bool
parseSize(const std::string &text, long long &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || value < 0)
        return false;
    long long scaled = value;
    switch (*end) {
    case '\0':
        break;
    case 'k': case 'K':
        scaled = value << 10;
        ++end;
        break;
    case 'm': case 'M':
        scaled = value << 20;
        ++end;
        break;
    case 'g': case 'G':
        scaled = value << 30;
        ++end;
        break;
    default:
        return false;
    }
    if (*end != '\0')
        return false;
    out = scaled;
    return true;
}

std::string
artifactDir()
{
    const Raw dir = raw("HYDRIDE_TRACE_DIR");
    if (dir.set && !dir.value.empty())
        return dir.value;
    return ".";
}

std::string
defaultArtifactPath(const std::string &stem, const std::string &ext)
{
    return artifactDir() + "/" + stem + "." +
           std::to_string(static_cast<long>(getpid())) + "." + ext;
}

} // namespace env
} // namespace hydride
