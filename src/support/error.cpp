#include "support/error.h"

#include "observability/log.h"

#include <cstdlib>

namespace hydride {

void
fatal(const std::string &message)
{
    // fatal/panic bypass the log-level filter: a process about to die
    // must say why even under HYDRIDE_LOG_LEVEL=off.
    logging::writeRaw("hydride: fatal: " + message);
    std::exit(1);
}

void
panic(const std::string &message)
{
    logging::writeRaw("hydride: panic: " + message);
    std::abort();
}

void
warn(const std::string &message)
{
    HYD_LOG(Warn, message);
}

AssertionError::AssertionError(std::string message)
    : message_(std::move(message))
{
}

ParseError::ParseError(std::string source, int line, std::string message)
    : source_(std::move(source)), line_(line), message_(std::move(message)),
      full_(source_ + ":" + std::to_string(line_) + ": parse error: " +
            message_)
{
}

namespace detail {

void
assertFail(const char *cond, const char *file, int line,
           const std::string &message)
{
    throw AssertionError(std::string("assertion `") + cond +
                         "` failed at " + file + ":" + std::to_string(line) +
                         ": " + message);
}

} // namespace detail
} // namespace hydride
