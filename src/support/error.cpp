#include "support/error.h"

#include <cstdlib>
#include <iostream>

namespace hydride {

void
fatal(const std::string &message)
{
    std::cerr << "hydride: fatal: " << message << std::endl;
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::cerr << "hydride: panic: " << message << std::endl;
    std::abort();
}

void
warn(const std::string &message)
{
    std::cerr << "hydride: warning: " << message << std::endl;
}

AssertionError::AssertionError(std::string message)
    : message_(std::move(message))
{
}

namespace detail {

void
assertFail(const char *cond, const char *file, int line,
           const std::string &message)
{
    throw AssertionError(std::string("assertion `") + cond +
                         "` failed at " + file + ":" + std::to_string(line) +
                         ": " + message);
}

} // namespace detail
} // namespace hydride
