/**
 * @file
 * Error-reporting primitives for the Hydride library.
 *
 * Following the gem5 convention, `fatal` reports unrecoverable *user*
 * errors (bad input specification, malformed pseudocode) and exits,
 * while `panic` reports internal invariant violations (Hydride bugs)
 * and aborts. `hyd_assert` is a checked-in-all-build-modes assertion
 * that routes through `panic`.
 */
#ifndef HYDRIDE_SUPPORT_ERROR_H
#define HYDRIDE_SUPPORT_ERROR_H

#include <exception>
#include <stdexcept>
#include <string>

namespace hydride {

/** Report an unrecoverable user-facing error and exit(1). */
[[noreturn]] void fatal(const std::string &message);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &message);

/** Non-fatal warning, routed through HYD_LOG(Warn, ...) so the
 *  observability layer's log level controls it in one place. */
void warn(const std::string &message);

/**
 * Thrown by HYD_ASSERT. Semantics evaluation is used speculatively
 * (probing scaled instruction variants during synthesis), so failed
 * invariants must be catchable rather than aborting the process.
 */
class AssertionError : public std::exception
{
  public:
    explicit AssertionError(std::string message);
    const char *what() const noexcept override { return message_.c_str(); }

  private:
    std::string message_;
};

/**
 * Thrown by the dialect parsers on malformed vendor pseudocode.
 * Parsing is library code driven by external data, so a bad spec must
 * be recoverable: SpecDB construction catches this per instruction,
 * skips the offender with a structured warning, and keeps going.
 * `fatal` remains for CLI-level argument errors only.
 */
class ParseError : public std::exception
{
  public:
    ParseError(std::string source, int line, std::string message);
    const char *what() const noexcept override { return full_.c_str(); }

    /** The "<dialect>:<instruction>" unit the error came from. */
    const std::string &source() const { return source_; }
    /** 1-based pseudocode line of the offending token. */
    int line() const { return line_; }
    const std::string &message() const { return message_; }

  private:
    std::string source_;
    int line_;
    std::string message_;
    std::string full_;
};

/**
 * Thrown when a compilation stage cannot produce code for a window
 * and has no further fallback of its own. Library code throws this
 * instead of exiting; the resilient driver's error barrier turns it
 * into a degradation-ladder step or a structured diagnostic.
 */
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

namespace detail {
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const std::string &message);
} // namespace detail

} // namespace hydride

/** Always-on assertion; throws AssertionError with location info. */
#define HYD_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hydride::detail::assertFail(#cond, __FILE__, __LINE__, msg);  \
        }                                                                   \
    } while (false)

#endif // HYDRIDE_SUPPORT_ERROR_H
