/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomized components of Hydride (equivalence-check input
 * generation, CEGIS seed inputs, fuzzers) draw from this generator so
 * that every run of the pipeline, the tests and the benchmarks is
 * reproducible bit-for-bit.
 */
#ifndef HYDRIDE_SUPPORT_RNG_H
#define HYDRIDE_SUPPORT_RNG_H

#include <cstdint>

namespace hydride {

/**
 * A small, fast, deterministic RNG (xoshiro256**), seedable and
 * copyable. Not cryptographic; used only for test-vector generation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next uniformly distributed 64-bit value. */
    uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform boolean. */
    bool nextBool() { return (next() & 1) != 0; }

  private:
    uint64_t state_[4];
};

} // namespace hydride

#endif // HYDRIDE_SUPPORT_RNG_H
