#include "support/fsio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace hydride {
namespace fsio {

namespace {

/** Exponential backoff: 1ms, 2ms, 4ms, ... capped per attempt. */
void
backoff(int attempt)
{
    ::usleep(static_cast<useconds_t>(1000u << (attempt < 6 ? attempt : 6)));
}

} // namespace

int
openRetry(const char *path, int flags, int mode)
{
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt) {
        const int fd = ::open(path, flags, mode);
        if (fd >= 0 || errno != EINTR)
            return fd;
    }
    return ::open(path, flags, mode);
}

bool
writeFull(int fd, const void *data, size_t len)
{
    const char *cursor = static_cast<const char *>(data);
    size_t left = len;
    int interruptions = 0;
    while (left > 0) {
        const ssize_t wrote = ::write(fd, cursor, left);
        if (wrote > 0) {
            cursor += wrote;
            left -= static_cast<size_t>(wrote);
            continue;
        }
        if (wrote < 0 && errno == EINTR) {
            if (++interruptions > kRetryAttempts)
                return false;
            continue;
        }
        // wrote == 0 (should not happen for regular files) or a hard
        // error: give up, the caller's atomic-publish protocol keeps
        // the previous data intact.
        return false;
    }
    return true;
}

bool
fsyncRetry(int fd)
{
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt) {
        if (::fsync(fd) == 0)
            return true;
        if (errno != EINTR)
            return false;
        backoff(attempt);
    }
    return ::fsync(fd) == 0;
}

bool
renameRetry(const std::string &from, const std::string &to)
{
    for (int attempt = 0; attempt < kRetryAttempts; ++attempt) {
        if (std::rename(from.c_str(), to.c_str()) == 0)
            return true;
        if (errno != EINTR && errno != EBUSY)
            return false;
        backoff(attempt);
    }
    return std::rename(from.c_str(), to.c_str()) == 0;
}

bool
fsyncDir(const std::string &dir)
{
    const int fd = openRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    // A directory fsync failing (some filesystems refuse it) is not a
    // durability loss we can act on; opening it is the real check.
    (void)fsyncRetry(fd);
    ::close(fd);
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    const int fd =
        openRetry(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    const bool wrote = writeFull(fd, content.data(), content.size()) &&
                       fsyncRetry(fd);
    ::close(fd);
    if (!wrote || !renameRetry(tmp, path)) {
        std::remove(tmp.c_str());
        return false;
    }
    const size_t slash = path.find_last_of('/');
    fsyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
    return true;
}

} // namespace fsio
} // namespace hydride
