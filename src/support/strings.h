/**
 * @file
 * Small string utilities shared by the pseudocode parsers, printers
 * and benchmark table writers.
 */
#ifndef HYDRIDE_SUPPORT_STRINGS_H
#define HYDRIDE_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace hydride {

/** Split `text` on `sep`, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** True if `text` starts with `prefix`. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if `text` ends with `suffix`. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Join `parts` with `sep` between elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Replace every occurrence of `from` in `text` with `to`. */
std::string replaceAll(std::string text, std::string_view from,
                       std::string_view to);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace hydride

#endif // HYDRIDE_SUPPORT_STRINGS_H
