/**
 * @file
 * EINTR-safe filesystem primitives for durable persistence.
 *
 * Every byte the synthesis store and cache promise to keep goes
 * through these helpers: plain write()/fsync()/rename() can be
 * interrupted by signals (EINTR) or fail transiently under memory
 * pressure, and a persistence layer that treats those as permanent
 * failures turns a survivable hiccup into data loss. Each helper
 * retries the interrupted call with a bounded exponential backoff and
 * gives up — returning the ordinary failure path — only after the
 * budget is exhausted.
 *
 * None of these throw: persistence failures are ordinary outcomes the
 * callers (SynthesisCache::save, SynthesisStore::append) must
 * tolerate, per the PR-5 resilience discipline.
 */
#ifndef HYDRIDE_SUPPORT_FSIO_H
#define HYDRIDE_SUPPORT_FSIO_H

#include <cstddef>
#include <string>

namespace hydride {
namespace fsio {

/** Retry attempts for interrupted/transient syscalls. The backoff
 *  doubles from 1ms, so the worst case waits ~`(2^attempts)-1` ms. */
constexpr int kRetryAttempts = 6;

/**
 * open(2) with an EINTR retry loop. Returns the file descriptor or
 * -1 (errno preserved from the final attempt).
 */
int openRetry(const char *path, int flags, int mode = 0644);

/**
 * Write the whole buffer, resuming after EINTR and short writes.
 * ENOSPC and other hard errors fail immediately. False on failure
 * (the file may hold a prefix of the buffer — callers that need
 * atomicity must write to a temp file and renameRetry over).
 */
bool writeFull(int fd, const void *data, size_t len);

/**
 * fsync(2) with EINTR retry and bounded backoff. False when the
 * kernel definitively refused to make the data durable.
 */
bool fsyncRetry(int fd);

/**
 * rename(2) with retry + bounded backoff on EINTR and transient
 * failures (EBUSY). Atomic within one filesystem, same as rename.
 */
bool renameRetry(const std::string &from, const std::string &to);

/**
 * fsync the *directory* so a just-renamed/created entry survives a
 * power cut. Best effort: false only when the directory cannot even
 * be opened.
 */
bool fsyncDir(const std::string &dir);

/**
 * Durable atomic publish: write `content` to `path + ".tmp.<pid>"`,
 * fsyncRetry, renameRetry over `path`, fsync the parent directory.
 * The previous file at `path` survives any mid-way failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

} // namespace fsio
} // namespace hydride

#endif // HYDRIDE_SUPPORT_FSIO_H
