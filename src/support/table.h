/**
 * @file
 * ASCII table printer used by the benchmark harnesses to reproduce the
 * paper's tables in a readable fixed-width layout, plus a CSV emitter
 * for downstream plotting.
 */
#ifndef HYDRIDE_SUPPORT_TABLE_H
#define HYDRIDE_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace hydride {

/**
 * Accumulates rows of string cells and renders them as an aligned
 * ASCII table or as CSV.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render as an aligned ASCII table with a separator rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no escaping; cells must not contain commas). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows accumulated so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hydride

#endif // HYDRIDE_SUPPORT_TABLE_H
