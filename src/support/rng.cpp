#include "support/rng.h"

#include "support/error.h"

namespace hydride {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    for (auto &word : state_)
        word = splitmix64(seed);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    HYD_ASSERT(bound != 0, "nextBelow bound must be nonzero");
    // Rejection sampling to avoid modulo bias; bias is irrelevant for
    // test vectors but rejection is cheap and keeps the API honest.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t value = next();
        if (value >= threshold)
            return value % bound;
    }
}

} // namespace hydride
