/**
 * @file
 * Deterministic fault injection for the Hydride pipeline.
 *
 * Every recoverable seam of the pipeline — spec parsing, SpecDB
 * construction, similarity verification, CEGIS deadlines, symbolic
 * solver budgets, cache persistence, lowering, macro expansion —
 * hosts a named *fault site*. A site is a single inline check that
 * costs one relaxed atomic load when no faults are configured (the
 * same discipline as the tracing and metrics layers), and consults
 * the registry when they are.
 *
 * Faults are configured through the environment (or
 * programmatically, for tests and the chaos harness):
 *
 *   HYDRIDE_FAULTS="cegis.timeout@0.3,cache.corrupt:3,parser.malformed=vadd_s16,alloc.cap=64M"
 *
 * Grammar, per comma-separated clause:
 *
 *   site           fire on every evaluation of the site
 *   site@P         fire with probability P (deterministic: a seeded
 *                  per-site counter-based hash, identical run-to-run)
 *   site:N         fire on the Nth evaluation of the site (1-based),
 *                  once
 *   site=ARG       fire whenever the site's key matches ARG (for
 *                  keyless sites, ARG is available via argOf() — the
 *                  `alloc.cap=64M` style of configuration knob)
 *
 * Sites *fail closed for typos*: configuring an unknown site name is
 * itself an error surfaced by configure(), so a chaos sweep cannot
 * silently test nothing.
 */
#ifndef HYDRIDE_SUPPORT_FAULTS_H
#define HYDRIDE_SUPPORT_FAULTS_H

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hydride {
namespace faults {

namespace detail {
extern std::atomic<bool> g_active;
bool shouldFailSlow(const char *site, const std::string &key,
                    bool has_key);
} // namespace detail

/** True when any fault clause is configured (single relaxed load). */
inline bool
active()
{
    return detail::g_active.load(std::memory_order_relaxed);
}

/**
 * Evaluate a fault site. Returns true when the configured clause for
 * `site` says this evaluation must fail. When no faults are
 * configured at all this is one relaxed atomic load.
 */
inline bool
shouldFail(const char *site)
{
    if (!active())
        return false;
    return detail::shouldFailSlow(site, std::string(), false);
}

/** Keyed evaluation: a `site=ARG` clause fires only when `key`
 *  equals ARG (e.g. `parser.malformed=vadd_s16` fires for that one
 *  instruction). Unkeyed clause forms ignore the key. */
inline bool
shouldFail(const char *site, const std::string &key)
{
    if (!active())
        return false;
    return detail::shouldFailSlow(site, key, true);
}

/** The `=ARG` payload configured for `site`, or "" when the site has
 *  no argument clause. Used by capacity-style sites (`alloc.cap`). */
std::string argOf(const char *site);

/** Parse a size argument like "64M", "512K", "2G", "1048576";
 *  returns `fallback` when `text` is empty or malformed. */
long long parseSizeArg(const std::string &text, long long fallback);

/**
 * Thrown by fault sites that have no structured error path of their
 * own. The resilient driver's error barrier catches it (alongside
 * AssertionError); anything that lets it escape to the user is a
 * chaos-suite failure.
 */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at site `" + site + "`"),
          site_(site)
    {
    }
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** Throw InjectedFault when the site fires (sites without their own
 *  error path). */
inline void
failPoint(const char *site)
{
    if (shouldFail(site))
        throw InjectedFault(site);
}

/**
 * Configure the registry from a HYDRIDE_FAULTS-grammar string,
 * replacing any previous configuration. Returns false (and leaves
 * the registry *empty*) when the spec is malformed or names an
 * unregistered site; the error is reported via `error` when given.
 */
bool configure(const std::string &spec, std::string *error = nullptr);

/** Drop every configured clause and reset per-site counters. */
void reset();

/** (Re)read HYDRIDE_FAULTS and apply it. Runs automatically before
 *  main(); callable again from tests. A malformed value is a
 *  CLI-level configuration error and is fatal. */
void configureFromEnv();

/** Every registered fault-site name, sorted (the chaos sweep's
 *  worklist). Registration is static — all sites are known even
 *  before any has been evaluated. */
std::vector<std::string> knownSites();

/** True when `site` names a registered site. */
bool isKnownSite(const std::string &site);

/** Times `site` was evaluated / times it fired since the last
 *  configure()/reset() (chaos-harness assertions). */
long hitCount(const std::string &site);
long fireCount(const std::string &site);

} // namespace faults
} // namespace hydride

#endif // HYDRIDE_SUPPORT_FAULTS_H
