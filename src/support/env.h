/**
 * @file
 * Centralized parsing for the `HYDRIDE_*` environment knobs.
 *
 * Every subsystem that reads the environment — tracing, metrics,
 * logging, fault injection, load-time verification, and the synthesis
 * provenance journal — goes through this one helper instead of ad-hoc
 * `std::getenv` calls, so the knob grammar and the handling of
 * malformed values stay consistent:
 *
 *   HYDRIDE_TRACE / HYDRIDE_METRICS / HYDRIDE_JOURNAL
 *       tri-state toggles: "0" disables, "1" enables with a
 *       pid-derived default artifact path, anything else enables and
 *       IS the artifact path (env::toggle).
 *   HYDRIDE_LOG_LEVEL
 *       an enumerated value; a malformed setting is *reported* (the
 *       caller warns) and the previous level is kept.
 *   HYDRIDE_FAULTS
 *       a clause grammar; a malformed spec is a CLI-level
 *       configuration error (the caller fatals — silently testing
 *       nothing would defeat the chaos suite).
 *   HYDRIDE_VERIFY / HYDRIDE_SYNTH_DEBUG
 *       booleans (env::parseBool); malformed values read as unset.
 *
 * The helpers themselves never log or exit: they return structured
 * results and let each caller apply its documented policy.
 */
#ifndef HYDRIDE_SUPPORT_ENV_H
#define HYDRIDE_SUPPORT_ENV_H

#include <string>

namespace hydride {
namespace env {

/** Raw value of `name`; empty string when unset. `set` distinguishes
 *  "unset" from "set to the empty string" (both read as disabled). */
struct Raw
{
    bool set = false;
    std::string value;
};
Raw raw(const char *name);

/**
 * The shared tri-state switch-or-path grammar used by
 * HYDRIDE_TRACE, HYDRIDE_METRICS and HYDRIDE_JOURNAL:
 *
 *   unset / ""   -> {set=false}                (leave defaults alone)
 *   "0"          -> {set, enabled=false}       (force-disable)
 *   "1"          -> {set, enabled=true}        (default artifact path)
 *   <anything>   -> {set, enabled=true, path}  (explicit artifact path)
 */
struct Toggle
{
    bool set = false;
    bool enabled = false;
    std::string path; ///< Empty unless an explicit path was given.
};
Toggle toggle(const char *name);

/**
 * Boolean knob: "1"/"true"/"on"/"yes" -> true, "0"/"false"/"off"/
 * "no"/"" -> false (case-insensitive). Returns false (and leaves
 * `out` untouched) on anything else so callers can report the
 * malformed value instead of guessing.
 */
bool parseBool(const std::string &text, bool &out);

/** Boolean knob with the fail-closed default: unset, empty, or
 *  malformed all read as `fallback`. */
bool boolOr(const char *name, bool fallback);

/**
 * Integer knob. Accepts an optional k/K, m/M, g/G binary-scale
 * suffix (the HYDRIDE_FAULTS `alloc.cap=64M` grammar). Returns false
 * on malformed or negative input.
 */
bool parseSize(const std::string &text, long long &out);

/** Directory for pid-named default artifacts: $HYDRIDE_TRACE_DIR
 *  when set and non-empty, otherwise "." (the CWD). */
std::string artifactDir();

/**
 * Default artifact path for a subsystem writing at process exit:
 * "<artifactDir()>/<stem>.<pid>.<ext>" — the pid suffix keeps
 * parallel test runs from clobbering each other.
 */
std::string defaultArtifactPath(const std::string &stem,
                                const std::string &ext);

} // namespace env
} // namespace hydride

#endif // HYDRIDE_SUPPORT_ENV_H
