#include "support/table.h"

#include "support/error.h"

#include <algorithm>

namespace hydride {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    HYD_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    HYD_ASSERT(cells.size() == headers_.size(),
               "row arity does not match header arity");
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            os << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace hydride
