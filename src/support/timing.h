/**
 * @file
 * Wall-clock stopwatch used by the compile-time benchmarks (Table 4,
 * Table 5) to time synthesis runs.
 */
#ifndef HYDRIDE_SUPPORT_TIMING_H
#define HYDRIDE_SUPPORT_TIMING_H

#include <chrono>

namespace hydride {

/** Simple monotonic stopwatch; starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or last reset. */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace hydride

#endif // HYDRIDE_SUPPORT_TIMING_H
