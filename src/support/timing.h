/**
 * @file
 * Wall-clock stopwatch used by the compile-time benchmarks (Table 4,
 * Table 5) to time synthesis runs.
 */
#ifndef HYDRIDE_SUPPORT_TIMING_H
#define HYDRIDE_SUPPORT_TIMING_H

#include <chrono>
#include <ctime>

namespace hydride {

/** Simple monotonic stopwatch; starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed time in seconds since construction or last reset. */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed time in milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Per-thread CPU-time stopwatch. The provenance journal records both
 * wall and CPU time per window so `hydride-inspect top --by=time`
 * can tell a slow solver from a loaded machine.
 */
class CpuStopwatch
{
  public:
    CpuStopwatch() : start_(now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = now(); }

    /** CPU seconds this thread spent since construction or reset. */
    double seconds() const { return now() - start_; }

    /** CPU time in milliseconds. */
    double millis() const { return seconds() * 1e3; }

  private:
    static double now()
    {
#ifdef _WIN32
        // Portability fallback: process CPU time, no thread clock.
        return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#else
        timespec ts;
        if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
            return 0.0;
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    }

    double start_;
};

} // namespace hydride

#endif // HYDRIDE_SUPPORT_TIMING_H
