#include "support/faults.h"

#include "observability/journal/journal.h"
#include "observability/log.h"
#include "observability/metrics.h"
#include "support/env.h"
#include "support/error.h"
#include "support/strings.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace hydride {
namespace faults {

namespace {

/**
 * The static site registry. Every injection seam in the pipeline is
 * declared here; configure() rejects clauses naming anything else so
 * a chaos sweep (which iterates this table) is always exhaustive.
 */
struct SiteInfo
{
    const char *name;
    const char *what;
};

const SiteInfo kSites[] = {
    {"parser.malformed",
     "dialect parser raises a ParseError for the keyed instruction"},
    {"specdb.corrupt",
     "canonicalization of the keyed instruction fails during SpecDB "
     "construction"},
    {"similarity.verify",
     "similarity-engine member verification fails (member splits into "
     "a singleton class)"},
    {"cegis.timeout",
     "the CEGIS deadline reads as exhausted at the next inner-loop "
     "check"},
    {"alloc.cap",
     "caps the CEGIS value-bank memory at =ARG bytes (bank overflow "
     "reads as search exhaustion)"},
    {"symbolic.budget",
     "the symbolic equivalence checker returns `unknown` (budget "
     "exhausted) instead of solving"},
    {"cache.save",
     "synthesis-cache persistence fails its atomic write"},
    {"cache.corrupt",
     "a loaded synthesis-cache entry reads as corrupt (checksum "
     "mismatch -> salvage path)"},
    {"store.lock",
     "synthesis-store shard writer-lock acquisition fails (store "
     "becomes read-only for the attempt)"},
    {"store.append",
     "synthesis-store append crashes mid-record: a torn record is "
     "left on disk and the writer lock leaks, exactly as a SIGKILL "
     "mid-append would"},
    {"store.load",
     "a synthesis-store record reads as corrupt during a shard scan "
     "(checksum mismatch -> resync salvage)"},
    {"store.verify",
     "warm-start verification of a retrieved store entry fails (the "
     "entry is quarantined as poisoned)"},
    {"lowering.fail",
     "1-1 lowering of a synthesized module fails"},
    {"macro.fail",
     "macro expansion of a window fails"},
    {"compiler.window",
     "an InjectedFault escapes mid-window (exercises the error "
     "barrier against arbitrary exceptions)"},
};

/** One configured clause. */
struct Clause
{
    enum class Mode { Always, Probability, NthHit, ArgMatch };
    Mode mode = Mode::Always;
    double probability = 0.0;
    long nth = 0;
    std::string arg;
};

struct SiteState
{
    Clause clause;
    bool configured = false;
    long hits = 0;
    long fires = 0;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, SiteState> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** SplitMix64 — the deterministic per-hit coin for `site@P`. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

bool
parseClause(const std::string &text, std::string &site, Clause &clause,
            std::string &error)
{
    std::string body = trim(text);
    if (body.empty()) {
        error = "empty fault clause";
        return false;
    }
    size_t at = body.find('@');
    size_t colon = body.find(':');
    size_t eq = body.find('=');
    size_t sep = std::min({at, colon, eq});
    site = sep == std::string::npos ? body : body.substr(0, sep);
    if (!isKnownSite(site)) {
        error = "unknown fault site `" + site + "`";
        return false;
    }
    if (sep == std::string::npos) {
        clause.mode = Clause::Mode::Always;
        return true;
    }
    const std::string rest = body.substr(sep + 1);
    if (rest.empty()) {
        error = "fault clause `" + body + "` has an empty argument";
        return false;
    }
    if (sep == at) {
        char *end = nullptr;
        clause.probability = std::strtod(rest.c_str(), &end);
        if (end == rest.c_str() || *end != '\0' ||
            clause.probability < 0.0 || clause.probability > 1.0) {
            error = "fault probability `" + rest +
                    "` is not a number in [0,1]";
            return false;
        }
        clause.mode = Clause::Mode::Probability;
        return true;
    }
    if (sep == colon) {
        char *end = nullptr;
        clause.nth = std::strtol(rest.c_str(), &end, 10);
        if (end == rest.c_str() || *end != '\0' || clause.nth < 1) {
            error = "fault hit index `" + rest +
                    "` is not a positive integer";
            return false;
        }
        clause.mode = Clause::Mode::NthHit;
        return true;
    }
    clause.mode = Clause::Mode::ArgMatch;
    clause.arg = rest;
    return true;
}

} // namespace

namespace detail {

std::atomic<bool> g_active{false};

bool
shouldFailSlow(const char *site, const std::string &key, bool has_key)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.configured)
        return false;
    SiteState &state = it->second;
    const long hit = ++state.hits;
    bool fire = false;
    switch (state.clause.mode) {
    case Clause::Mode::Always:
        fire = true;
        break;
    case Clause::Mode::Probability: {
        // Counter-based hash: deterministic run-to-run, independent
        // of every other site's hit sequence.
        const uint64_t h = mix64(static_cast<uint64_t>(hit) ^
                                 mix64(std::hash<std::string>{}(site)));
        fire = (h >> 11) * 0x1.0p-53 < state.clause.probability;
        break;
    }
    case Clause::Mode::NthHit:
        fire = hit == state.clause.nth;
        break;
    case Clause::Mode::ArgMatch:
        // Keyed sites fire on a key match; keyless sites treat the
        // clause as an always-on configuration knob (alloc.cap=64M).
        fire = !has_key || key == state.clause.arg;
        break;
    }
    if (fire) {
        ++state.fires;
        static metrics::Counter &fired =
            metrics::counter("faults.injected");
        fired.add();
        HYD_LOG(Debug, std::string("[faults] injected `") + site +
                           "` (hit " + std::to_string(hit) + ")");
        if (journal::enabled()) {
            // The injection lands in the provenance journal (and the
            // flight-recorder ring), so a dump at the downstream error
            // barrier shows *which* fault preceded the recovery.
            auto fields = bjson::Value::makeObject();
            fields->set("site", bjson::Value::makeString(site));
            fields->set("hit", bjson::Value::makeNumber(
                                   static_cast<double>(hit)));
            if (!key.empty())
                fields->set("key", bjson::Value::makeString(key));
            journal::emitEvent("fault", fields);
        }
    }
    return fire;
}

} // namespace detail

std::string
argOf(const char *site)
{
    if (!active())
        return "";
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.configured ||
        it->second.clause.mode != Clause::Mode::ArgMatch) {
        return "";
    }
    return it->second.clause.arg;
}

long long
parseSizeArg(const std::string &text, long long fallback)
{
    long long value = 0;
    return env::parseSize(text, value) ? value : fallback;
}

bool
configure(const std::string &spec, std::string *error)
{
    std::map<std::string, SiteState> parsed;
    for (const std::string &part : split(spec, ',')) {
        if (trim(part).empty())
            continue;
        std::string site;
        Clause clause;
        std::string why;
        if (!parseClause(part, site, clause, why)) {
            if (error)
                *error = why;
            reset();
            return false;
        }
        SiteState state;
        state.clause = clause;
        state.configured = true;
        parsed[site] = state;
    }
    Registry &r = registry();
    {
        std::lock_guard<std::mutex> lock(r.mutex);
        r.sites = std::move(parsed);
        detail::g_active.store(!r.sites.empty(),
                               std::memory_order_relaxed);
    }
    return true;
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.sites.clear();
    detail::g_active.store(false, std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const env::Raw spec = env::raw("HYDRIDE_FAULTS");
    if (!spec.set || spec.value.empty()) {
        reset();
        return;
    }
    std::string error;
    if (!configure(spec.value, &error)) {
        // A malformed HYDRIDE_FAULTS is a CLI-level configuration
        // error (the one place fatal() is still right): silently
        // testing nothing would defeat the chaos suite's point.
        fatal("invalid HYDRIDE_FAULTS: " + error);
    }
}

std::vector<std::string>
knownSites()
{
    std::vector<std::string> names;
    for (const SiteInfo &info : kSites)
        names.push_back(info.name);
    std::sort(names.begin(), names.end());
    return names;
}

bool
isKnownSite(const std::string &site)
{
    for (const SiteInfo &info : kSites)
        if (site == info.name)
            return true;
    return false;
}

long
hitCount(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

long
fireCount(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.fires;
}

namespace {

/** Pre-main env hookup, same pattern as trace/metrics/log. */
struct EnvInit
{
    EnvInit() { configureFromEnv(); }
};
const EnvInit g_env_init;

} // namespace

} // namespace faults
} // namespace hydride
