#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace hydride {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::string
replaceAll(std::string text, std::string_view from, std::string_view to)
{
    if (from.empty())
        return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

} // namespace hydride
