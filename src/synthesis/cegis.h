/**
 * @file
 * The CEGIS core of Hydride's code synthesizer (paper §4.2,
 * Algorithm 2).
 *
 * Given a Halide-IR window and a target ISA, the synthesizer:
 *
 *  1. scales the window's lane count down (parameterized AutoLLVM
 *     operations scale with it — Count/RegWidth parameters divide by
 *     the scale) to keep bitvectors small;
 *  2. builds the pruned grammar (grammar.h);
 *  3. runs counterexample-guided inductive synthesis: enumerate
 *     candidate AutoLLVM programs in increasing depth, require
 *     agreement with the specification on the accumulated
 *     counterexample inputs — and, when lane-wise checking is on,
 *     only on the accumulated failing lanes — then verify candidates
 *     against the specification on fresh random vectors, feeding any
 *     counterexample (and its first failing lane) back into the loop;
 *  4. scales the winning program back up and re-verifies at full
 *     width, falling back to an unscaled search if that fails
 *     (Algorithm 2 line 26).
 *
 * The enumeration uses observational-equivalence deduplication: two
 * candidate values with identical outputs on every counterexample
 * collapse into the cheaper one. This plays the role of the SMT
 * solver's search in Rosette (see DESIGN.md, substitution table).
 */
#ifndef HYDRIDE_SYNTHESIS_CEGIS_H
#define HYDRIDE_SYNTHESIS_CEGIS_H

#include <string>

#include "analysis/symbolic/equiv.h"
#include "autollvm/module.h"
#include "synthesis/grammar.h"

namespace hydride {

/** Synthesis knobs; defaults match the paper's best configuration. */
struct SynthesisOptions
{
    GrammarOptions grammar;
    bool scaling = true;
    bool lanewise = true;
    int max_insts = 3;      ///< Maximum output sequence length.
    int window_depth = 5;   ///< Max expression depth per window (§4.2).
    int max_bank = 3000;    ///< Value-bank size cap.
    int max_combos = 4000;  ///< Operand-combination cap per op/depth.
    /** Random vectors per verification. 0 disables random sampling
     *  (including the seed counterexamples) so the loop is driven
     *  purely by symbolic counterexamples — only meaningful together
     *  with `symbolic_verify`. */
    int verify_vectors = 10;
    int cegis_rounds = 10;   ///< Counterexample iterations.
    double timeout_seconds = 20.0;
    uint64_t seed = 0xC0DE;
    /**
     * Re-validate candidates symbolically (the paper's SMT
     * verification): a candidate that survives the random vectors is
     * checked for equivalence on *all* inputs; a refutation model is
     * fed back into the counterexample loop, and the winning module
     * gets a final full-width symbolic check.
     */
    bool symbolic_verify = false;
    sym::EqBudget symbolic_budget;
    /**
     * Static candidate pruning: abstract-interpret each grammar op
     * (interval x known-bits over top arguments) and discard
     * solution-width candidates whose abstract output cannot contain
     * the specification's observed outputs — before any concrete
     * counterexample evaluation. Sound: the abstract value
     * over-approximates the op's outputs for *every* operand choice.
     */
    bool static_prune = true;
    /**
     * Warm-start candidates (synthesis/store/ nearest-neighbor
     * retrieval): full-width modules that solved *structurally
     * similar* windows. Each is tried before any enumeration —
     * trust-but-verify, on the verification vectors and (when
     * `symbolic_verify` is set) symbolically — and the first one that
     * matches this window's specification is returned without a
     * search. A seed that fails is simply skipped: neighbors solving
     * a *different* function is the expected case, not poisoning.
     */
    std::vector<AutoModule> warm_seeds;
};

/** Outcome of synthesizing one window. */
struct SynthesisResult
{
    bool ok = false;
    AutoModule module;  ///< Full-scale program over window inputs.
    int cost = 0;       ///< Latency sum of the module.
    double seconds = 0.0;
    int grammar_size = 0;
    int cegis_iterations = 0;
    int counterexamples = 0;      ///< Counterexample inputs accumulated.
    long candidates_rejected = 0; ///< Dedup/bank-full enumeration rejects.
    /** Solution-width candidates discarded by abstract interpretation
     *  before counterexample evaluation (`static_prune`). */
    long candidates_rejected_static = 0;
    int scale = 1;
    std::string note;
    /** Candidates rejected by a symbolic counterexample (only with
     *  `symbolic_verify`). */
    int symbolic_refutations = 0;
    /** Symbolic queries that exhausted their budget. */
    int symbolic_unknowns = 0;
    /** Final full-width verdict: "proved", "refuted", "unknown", or
     *  empty when symbolic verification was off / never reached. */
    std::string symbolic_verdict;
    /** Warm-start seeds tried before enumeration. */
    int warm_seeds_tried = 0;
    /** True when a verified warm-start seed was returned (no search). */
    bool warm_started = false;
};

/** Synthesize one window for one target ISA. */
SynthesisResult synthesizeWindow(const AutoLLVMDict &dict,
                                 const std::string &isa,
                                 const HExprPtr &window,
                                 const SynthesisOptions &options = {});

/** Rebuild a window with every lane count divided by `scale`;
 *  returns nullptr when the window cannot be scaled. */
HExprPtr scaleWindow(const HExprPtr &window, int scale);

} // namespace hydride

#endif // HYDRIDE_SYNTHESIS_CEGIS_H
