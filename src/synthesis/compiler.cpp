#include "synthesis/compiler.h"

#include "codegen/lowering.h"
#include "observability/bench/phase_profiler.h"
#include "observability/journal/journal.h"
#include "observability/log.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "support/error.h"
#include "support/timing.h"

namespace hydride {

int
KernelCompilation::staticCost() const
{
    int total = 0;
    for (const auto &window : windows)
        total += window.program.cost();
    return total;
}

double
KernelCompilation::runtimeCost(const Kernel &kernel_desc) const
{
    return staticCost() * kernel_desc.iterations;
}

HydrideCompiler::HydrideCompiler(const AutoLLVMDict &dict, std::string isa,
                                 int vector_bits, SynthesisOptions options,
                                 SynthesisCache *cache)
    : dict_(dict), isa_(std::move(isa)), vector_bits_(vector_bits),
      options_(options), cache_(cache ? cache : &own_cache_),
      fallback_(dict, isa_, vector_bits)
{
}

WindowCompilation
HydrideCompiler::compileWindow(const HExprPtr &window)
{
    WindowCompilation out;
    Stopwatch watch;
    trace::TraceSpan span("synthesis.compiler.window");
    span.setAttr("isa", isa_);

    // Provenance ledger: one "window" journal event per compiled
    // window, whatever path it takes. Everything below is behind the
    // one relaxed `jrnl` load, so the disabled cost stays at zero.
    const bool jrnl = journal::enabled();
    CpuStopwatch cpu;
    journal::WindowLedger ledger;
    if (jrnl) {
        ledger.window_hash = journal::hashHex(HExpr::hashOf(window));
        ledger.isa = isa_;
        ledger.lanes = window->lanes;
        ledger.elem_width = window->elem_width;
        ledger.nodes = HExpr::sizeOf(window);
        ledger.cache = "miss";
    }
    auto emitLedger = [&](const char *rung, const SynthesisResult *synth) {
        if (!jrnl)
            return;
        ledger.rung = rung;
        if (synth) {
            ledger.cegis_iterations = synth->cegis_iterations;
            ledger.counterexamples = synth->counterexamples;
            ledger.candidates_rejected = synth->candidates_rejected;
            ledger.symbolic_refutations = synth->symbolic_refutations;
            ledger.symbolic_unknowns = synth->symbolic_unknowns;
            ledger.symbolic_verdict = synth->symbolic_verdict;
            if (!synth->note.empty())
                ledger.note = synth->note; // Negative hits keep theirs.
        }
        ledger.cost = out.program.cost();
        for (const auto &inst : out.program.insts)
            ledger.insts.push_back(inst.inst_name);
        ledger.wall_ms = watch.millis();
        ledger.cpu_ms = cpu.millis();
        journal::emitWindow(ledger);
    };

    // Memoization cache first (paper §4.1).
    const SynthesisResult *cached = nullptr;
    {
        trace::TraceSpan lookup_span(bench::kSpanCacheLookup);
        static metrics::Histogram &lookup_ms = metrics::histogram(
            "synthesis.cache.lookup.time_ms",
            metrics::logTimeMsBounds());
        Stopwatch lookup_watch;
        cached = cache_->lookup(window, isa_);
        lookup_ms.observe(lookup_watch.millis());
        lookup_span.setAttr("hit", cached != nullptr);
    }
    if (cached) {
        out.from_cache = true;
        span.setAttr("from_cache", true);
        if (cached->ok) {
            LoweringResult lowered;
            {
                trace::TraceSpan lower_span("codegen.lowering.lower");
                lowered = lowerToTarget(cached->module, dict_, isa_);
            }
            HYD_ASSERT(lowered.ok,
                       "cached synthesis result no longer lowers: " +
                           lowered.error);
            out.synthesized = true;
            out.synth = *cached;
            out.program = std::move(lowered.program);
            out.synth_seconds = watch.seconds();
            if (jrnl)
                ledger.cache = "hit";
            emitLedger("cached", &out.synth);
            return out;
        }
        // Negative cache entry: skip synthesis, go straight to the
        // fallback below.
        if (jrnl) {
            ledger.cache = "negative";
            ledger.note = cached->note;
        }
    } else {
        SynthesisResult synth = synthesizeWindow(dict_, isa_, window,
                                                 options_);
        cache_->insert(window, isa_, synth);
        if (synth.ok) {
            LoweringResult lowered;
            {
                trace::TraceSpan lower_span("codegen.lowering.lower");
                lowered = lowerToTarget(synth.module, dict_, isa_);
            }
            if (lowered.ok) {
                out.synthesized = true;
                out.synth = std::move(synth);
                out.program = std::move(lowered.program);
                out.synth_seconds = watch.seconds();
                emitLedger("synthesized", &out.synth);
                return out;
            }
            HYD_LOG(Info, "lowering synthesized window on " + isa_ +
                              " failed (" + lowered.error +
                              "); falling back to macro expansion");
        }
        // Keep the failed attempt's search effort for the ledger.
        out.synth = std::move(synth);
    }

    // Fallback: macro expansion, like the baseline compiler.
    span.setAttr("fallback", true);
    static metrics::Counter &fallbacks =
        metrics::counter("codegen.macro_expand.fallbacks");
    fallbacks.add();
    ExpandResult expanded = fallback_.expand(window);
    if (!expanded.ok) {
        emitLedger("failed", &out.synth);
        // Library code must not exit the process: throw a structured
        // error the resilient driver (or any caller) can catch and
        // degrade from (driver/resilience.h walks on to
        // scalarization).
        throw CompileError(
            "window failed both synthesis and macro expansion on " +
            isa_ + ": " + expanded.error);
    }
    out.program = std::move(expanded.program);
    out.synth_seconds = watch.seconds();
    emitLedger("macro_expanded", &out.synth);
    return out;
}

KernelCompilation
HydrideCompiler::compile(const Kernel &kernel)
{
    KernelCompilation out;
    out.kernel = kernel.name;
    out.isa = isa_;
    trace::TraceSpan span("synthesis.compiler.kernel");
    span.setAttr("kernel", kernel.name);
    span.setAttr("isa", isa_);
    Stopwatch watch;
    for (size_t w = 0; w < kernel.windows.size(); ++w) {
        // Bound the expression depth per synthesis query (§4.2):
        // deep stencil windows split into sub-windows whose cut
        // points become fresh inputs.
        const HExprPtr &window = kernel.windows[w];
        std::vector<HExprPtr> pieces =
            splitWindow(window, options_.window_depth,
                        halideInputCount(window), vector_bits_);
        for (const auto &piece : pieces) {
            WindowCompilation compiled = compileWindow(piece);
            out.cache_hits += compiled.from_cache ? 1 : 0;
            out.synthesized_windows += compiled.synthesized ? 1 : 0;
            out.windows.push_back(std::move(compiled));
            out.pieces.push_back(piece);
            out.piece_group.push_back(static_cast<int>(w));
        }
    }
    out.compile_seconds = watch.seconds();
    span.setAttr("pieces", static_cast<int64_t>(out.pieces.size()));
    span.setAttr("cache_hits", out.cache_hits);
    span.setAttr("synthesized", out.synthesized_windows);
    return out;
}

} // namespace hydride
