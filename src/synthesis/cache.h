/**
 * @file
 * The synthesis memoization cache (paper §4.1).
 *
 * Synthesis results are keyed by the *structure* of the input window
 * (HExpr::hashOf covers operators, types and lane counts but not
 * which benchmark the window came from) plus the target ISA, so
 * results transfer across benchmarks that share subexpressions —
 * the effect columns II-IV of Table 4 measure. Unlike the paper's
 * Racket hash table (whose lookup overhead dominates warm compile
 * times, Table 4's overhead rows), this is an in-memory C++ map with
 * negligible lookup cost — the improvement the paper explicitly
 * anticipates ("A fast language like C++ would greatly reduce cache
 * lookup times").
 */
#ifndef HYDRIDE_SYNTHESIS_CACHE_H
#define HYDRIDE_SYNTHESIS_CACHE_H

#include <map>
#include <string>

#include "synthesis/cegis.h"

namespace hydride {

/** Memoizes per-(window shape, ISA) synthesis outcomes. */
class SynthesisCache
{
  public:
    struct CachedEntry
    {
        SynthesisResult result;
        int hits = 0;
    };

    /** Look up a window; nullptr when absent. */
    const SynthesisResult *lookup(const HExprPtr &window,
                                  const std::string &isa);

    /** Record a synthesis outcome. */
    void insert(const HExprPtr &window, const std::string &isa,
                const SynthesisResult &result);

    /**
     * Drop every entry and restart the per-epoch hit/miss counters.
     * The counts are folded into the lifetime totals first (and into
     * the `synthesis.cache.*` metrics as they accrue), so clearing
     * between Table 4 warm/cold scenarios no longer silently discards
     * the statistics of earlier runs.
     */
    void clear();

    /** Hits/misses since construction or the last clear(). */
    int hits() const { return hits_; }
    int misses() const { return misses_; }

    /** Cumulative totals across every clear(). */
    long lifetimeHits() const { return lifetime_hits_ + hits_; }
    long lifetimeMisses() const { return lifetime_misses_ + misses_; }

    size_t size() const { return entries_.size(); }

    using Key = std::pair<uint64_t, std::string>;

    /** Visit every cached entry (used to build filtered caches for
     *  the Table 4 leave-one-out scenario). */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (const auto &[key, entry] : entries_)
            fn(key, entry.result);
    }

    /** Insert under an explicit key (cache-transfer helper). Routes
     *  through the same bookkeeping as insert(), so cache-transfer
     *  builds count in the `synthesis.cache.inserts` metric and the
     *  entry's hit counter starts from a defined zero instead of
     *  whatever a prior partial write left behind. */
    void insertByKey(const Key &key, const SynthesisResult &result);

    /**
     * Persist the cache to a file so later compiler invocations reuse
     * synthesis results (the paper's cross-invocation cache, minus
     * the Racket lookup overhead its Table 4 laments). The file
     * records a dictionary fingerprint; load() refuses caches built
     * against a different dictionary.
     *
     * The write is atomic (temp file in the same directory, then
     * rename), so a crash mid-save never destroys the previous good
     * cache, and every entry carries a checksum the loader verifies.
     */
    bool save(const std::string &path,
              const class AutoLLVMDict &dict) const;

    /**
     * Load a previously saved cache; false on mismatch/IO error.
     * A damaged file (bit flip, truncation) is *salvaged*: the valid
     * prefix of entries is kept, the load still succeeds, and
     * loadStats() reports what happened.
     */
    bool load(const std::string &path, const class AutoLLVMDict &dict);

    /** What the most recent load() did. */
    struct LoadStats
    {
        bool salvaged = false;        ///< Damage was detected.
        size_t entries_loaded = 0;    ///< Entries kept.
    };
    const LoadStats &loadStats() const { return last_load_; }

  private:
    /** The one insertion path: every public insert lands here. */
    void insertEntry(const Key &key, const SynthesisResult &result);

    std::map<Key, CachedEntry> entries_;
    LoadStats last_load_;
    int hits_ = 0;
    int misses_ = 0;
    long lifetime_hits_ = 0;
    long lifetime_misses_ = 0;
};

/**
 * The serialized cache-entry wire format, shared with the durable
 * synthesis store (src/synthesis/store/): one text block per entry
 * plus an FNV-1a checksum over the block, and the dictionary
 * fingerprint that binds a persisted artifact to the AutoLLVM
 * dictionary it was built against.
 */
namespace cachefmt {

/** One entry's serialized block (everything the checksum covers). */
std::string serializeEntry(const SynthesisCache::Key &key,
                           const SynthesisResult &result);

/** Parse one serialized entry block; false on any malformation
 *  (including instruction ids outside the dictionary). */
bool parseEntry(const std::string &block, const class AutoLLVMDict &dict,
                SynthesisCache::Key &key, SynthesisResult &result);

/** FNV-1a over a serialized block — the per-entry checksum. */
uint64_t checksum(const std::string &text);

/** Fingerprint tying a persisted artifact to the dictionary. */
uint64_t dictFingerprint(const class AutoLLVMDict &dict);

} // namespace cachefmt

} // namespace hydride

#endif // HYDRIDE_SYNTHESIS_CACHE_H
