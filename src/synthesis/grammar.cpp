#include "synthesis/grammar.h"

#include "support/error.h"
#include "support/rng.h"

#include <algorithm>
#include <set>

namespace hydride {

namespace {

/** Features of a Halide window relevant to screening. */
struct WindowFeatures
{
    std::set<BVBinOp> ops;
    bool has_abs = false;
    bool has_widen = false;
    bool has_narrow = false;
    bool has_sat_narrow = false;
    std::set<int> elem_widths;
    std::set<int> total_widths;
    int min_elem_width = 1 << 30;
    std::vector<int64_t> imms;
};

void
collectFeatures(const HExprPtr &expr, WindowFeatures &feat)
{
    feat.elem_widths.insert(expr->elem_width);
    feat.total_widths.insert(expr->elem_width * expr->lanes);
    feat.min_elem_width = std::min(feat.min_elem_width, expr->elem_width);
    switch (expr->op) {
      case HOp::Add: feat.ops.insert(BVBinOp::Add); break;
      case HOp::Sub: feat.ops.insert(BVBinOp::Sub); break;
      case HOp::Mul:
      case HOp::MulHiS: feat.ops.insert(BVBinOp::Mul); break;
      case HOp::MinS: feat.ops.insert(BVBinOp::MinS); break;
      case HOp::MaxS: feat.ops.insert(BVBinOp::MaxS); break;
      case HOp::MinU: feat.ops.insert(BVBinOp::MinU); break;
      case HOp::MaxU: feat.ops.insert(BVBinOp::MaxU); break;
      // Saturating arithmetic appears in instruction semantics either
      // as a dedicated saturating operator or as plain arithmetic at
      // a widened type followed by a saturating cast; match both.
      case HOp::SatAddS:
        feat.ops.insert(BVBinOp::AddSatS);
        feat.ops.insert(BVBinOp::Add);
        feat.has_sat_narrow = true;
        break;
      case HOp::SatAddU:
        feat.ops.insert(BVBinOp::AddSatU);
        feat.ops.insert(BVBinOp::Add);
        feat.has_sat_narrow = true;
        break;
      case HOp::SatSubS:
        feat.ops.insert(BVBinOp::SubSatS);
        feat.ops.insert(BVBinOp::Sub);
        feat.has_sat_narrow = true;
        break;
      case HOp::SatSubU:
        feat.ops.insert(BVBinOp::SubSatU);
        feat.ops.insert(BVBinOp::Sub);
        feat.has_sat_narrow = true;
        break;
      case HOp::AvgU: feat.ops.insert(BVBinOp::AvgU); break;
      case HOp::AbsS: feat.has_abs = true; break;
      case HOp::ShlC:
        feat.ops.insert(BVBinOp::Shl);
        feat.imms.push_back(expr->imm);
        break;
      case HOp::AShrC:
        feat.ops.insert(BVBinOp::AShr);
        feat.imms.push_back(expr->imm);
        break;
      case HOp::LShrC:
        feat.ops.insert(BVBinOp::LShr);
        feat.imms.push_back(expr->imm);
        break;
      case HOp::ReduceAdd: feat.ops.insert(BVBinOp::Add); break;
      case HOp::Cast:
        if (expr->elem_width > expr->kids[0]->elem_width)
            feat.has_widen = true;
        else if (expr->elem_width < expr->kids[0]->elem_width)
            feat.has_narrow = true;
        break;
      case HOp::SatNarrowS:
      case HOp::SatNarrowU:
        feat.has_narrow = true;
        feat.has_sat_narrow = true;
        break;
      default:
        break;
    }
    // MulHi implies a widened product followed by a shift.
    if (expr->op == HOp::MulHiS) {
        feat.ops.insert(BVBinOp::AShr);
        feat.ops.insert(BVBinOp::LShr);
        feat.elem_widths.insert(2 * expr->elem_width);
    }
    if (expr->op == HOp::ConstSplat)
        feat.imms.push_back(expr->imm);
    for (const auto &kid : expr->kids)
        collectFeatures(kid, feat);
}

/** Features of an equivalence class. */
struct ClassFeatures
{
    std::set<BVBinOp> ops;
    bool has_abs = false;
    bool has_widen = false;
    bool has_narrow = false;
    bool has_sat_narrow = false;
    bool pure_swizzle = true;
};

ClassFeatures
classFeatures(const EquivalenceClass &cls)
{
    ClassFeatures feat;
    std::vector<ExprPtr> nodes;
    for (const auto &tmpl : cls.rep.templates)
        collectNodes(tmpl, nodes);
    for (const auto &node : nodes) {
        switch (node->kind) {
          case ExprKind::BVBin:
            feat.ops.insert(static_cast<BVBinOp>(node->value));
            feat.pure_swizzle = false;
            break;
          case ExprKind::BVUn:
            if (static_cast<BVUnOp>(node->value) == BVUnOp::AbsS)
                feat.has_abs = true;
            feat.pure_swizzle = false;
            break;
          case ExprKind::BVCast: {
            const auto op = static_cast<BVCastOp>(node->value);
            if (op == BVCastOp::SExt || op == BVCastOp::ZExt)
                feat.has_widen = true;
            if (op == BVCastOp::Trunc)
                feat.has_narrow = true;
            if (op == BVCastOp::SatNarrowS || op == BVCastOp::SatNarrowU) {
                feat.has_narrow = true;
                feat.has_sat_narrow = true;
            }
            feat.pure_swizzle = false;
            break;
          }
          case ExprKind::Select:
          case ExprKind::BVCmp:
            feat.pure_swizzle = false;
            break;
          default:
            break;
        }
    }
    return feat;
}

} // namespace

bool
isSwizzleClass(const EquivalenceClass &cls)
{
    return classFeatures(cls).pure_swizzle;
}

bool
scaleParams(const EquivalenceClass &cls, const std::vector<int64_t> &params,
            int scale, std::vector<int64_t> &scaled)
{
    scaled = params;
    if (scale == 1)
        return true;
    // Register widths divide by the full scale; the loop-count
    // *product* must also divide by exactly the full scale, spread
    // across the count parameters in order (outer first). The
    // artificial inner loop's count of 1 and structural template
    // counts simply absorb none of it.
    int remaining = scale;
    for (size_t p = 0; p < params.size(); ++p) {
        const ParamRole role = cls.rep.params[p].role;
        if (role == ParamRole::RegWidth) {
            if (params[p] % scale != 0)
                return false;
            scaled[p] = params[p] / scale;
        } else if (role == ParamRole::Count) {
            int d = 1;
            while (d < remaining && scaled[p] % (2 * d) == 0)
                d *= 2;
            scaled[p] /= d;
            remaining /= d;
        }
    }
    if (remaining != 1)
        return false;
    // The scaled instruction must still be well-formed.
    EvalEnv env;
    env.param_values = &scaled;
    if (evalInt(cls.rep.outer_count, env) < 1 ||
        evalInt(cls.rep.inner_count, env) < 1 ||
        evalInt(cls.rep.elem_width, env) < 1) {
        return false;
    }
    for (size_t a = 0; a < cls.rep.bv_args.size(); ++a)
        if (cls.rep.argWidth(static_cast<int>(a), scaled) < 1)
            return false;
    return true;
}

Grammar
buildGrammar(const AutoLLVMDict &dict, const std::string &isa,
             const HExprPtr &window, int scale,
             const GrammarOptions &options)
{
    // `window` arrives already scaled; features reflect it directly.
    WindowFeatures wf;
    collectFeatures(window, wf);

    Grammar grammar;
    std::set<int64_t> imm_set(wf.imms.begin(), wf.imms.end());
    imm_set.insert(1);
    for (int64_t imm : imm_set)
        if (imm > 0 && imm < 64)
            grammar.imm_pool.push_back(imm);

    // Group the ISA's variants per class for class-level screening.
    std::map<int, std::vector<AutoOpVariant>> per_class;
    for (const auto &variant : dict.isaVariants(isa))
        per_class[variant.class_id].push_back(variant);

    struct Scored
    {
        GrammarOp op;
        bool swizzle;
    };
    std::vector<Scored> candidates;

    for (const auto &[class_id, variants] : per_class) {
        const EquivalenceClass &cls = dict.cls(class_id);
        const ClassFeatures cf = classFeatures(cls);
        const bool swizzle = cf.pure_swizzle;

        if (options.bvs && !swizzle) {
            // (a): at least one overlapping operation or a matching
            // conversion direction.
            bool ops_overlap = false;
            for (BVBinOp op : cf.ops)
                ops_overlap |= wf.ops.count(op) != 0;
            const bool conv_match =
                (cf.has_widen && wf.has_widen) ||
                (cf.has_narrow && wf.has_narrow) ||
                (cf.has_sat_narrow && wf.has_sat_narrow);
            const bool abs_match = cf.has_abs && wf.has_abs;
            if (!ops_overlap && !conv_match && !abs_match)
                continue;
        }

        for (const auto &variant : variants) {
            const ClassMember &member = cls.members[variant.member_index];
            GrammarOp op;
            op.variant = variant;
            if (!scaleParams(cls, member.param_values, scale,
                             op.scaled_params)) {
                continue;
            }
            op.out_width = cls.rep.outputWidth(op.scaled_params);
            EvalEnv env;
            env.param_values = &op.scaled_params;
            op.elem_width =
                static_cast<int>(evalInt(cls.rep.elem_width, env));
            for (size_t a = 0; a < cls.rep.bv_args.size(); ++a)
                op.arg_widths.push_back(cls.rep.argWidth(
                    static_cast<int>(a), op.scaled_params));
            op.latency = member.latency;
            op.n_imms = static_cast<int>(cls.rep.int_args.size());

            // Probe the scaled instantiation: parameters with Index
            // roles (lane offsets, strides) do not scale, so some
            // scaled variants read out of range — those are illegal
            // at this scale and are dropped (the paper's scaling is
            // similarly validated by the verifier).
            if (scale != 1) {
                try {
                    Rng probe_rng(0x5CA1E ^ variant.class_id);
                    std::vector<BitVector> args;
                    for (int w : op.arg_widths)
                        args.push_back(BitVector::random(w, probe_rng));
                    std::vector<int64_t> imms(op.n_imms, 1);
                    (void)cls.rep.evaluate(args, op.scaled_params, imms);
                } catch (const AssertionError &) {
                    continue;
                }
            }

            if (options.bvs) {
                // (b): smaller element sizes than the expression's
                // minimum lose information.
                if (op.elem_width < wf.min_elem_width)
                    continue;
                // (a) width leg: the variant must touch a width the
                // (scaled) expression actually uses.
                bool width_match = wf.total_widths.count(op.out_width) != 0;
                for (int w : op.arg_widths)
                    width_match |= wf.total_widths.count(w) != 0;
                if (!width_match)
                    continue;
            }

            // SBOS score (§4.3 c).
            double score = 0.0;
            for (BVBinOp o : cf.ops)
                if (wf.ops.count(o))
                    score += 2.0;
            if (cf.has_abs && wf.has_abs)
                score += 2.0;
            if ((cf.has_widen && wf.has_widen) ||
                (cf.has_sat_narrow && wf.has_sat_narrow) ||
                (cf.has_narrow && wf.has_narrow)) {
                score += 2.0;
            }
            if (wf.elem_widths.count(op.elem_width))
                score += 1.0;
            if (wf.total_widths.count(op.out_width))
                score += 1.0;
            // Cheaper instructions break score ties.
            score -= 0.01 * op.latency;
            op.score = score;
            candidates.push_back({std::move(op), swizzle});
        }
    }

    // SBOS: keep the top-k scoring variants of each class; swizzles
    // are exempt (always included, §4.4).
    if (options.sbos) {
        std::map<int, std::vector<size_t>> class_order;
        for (size_t c = 0; c < candidates.size(); ++c)
            class_order[candidates[c].op.variant.class_id].push_back(c);
        std::set<size_t> keep;
        for (auto &[class_id, indices] : class_order) {
            (void)class_id;
            std::sort(indices.begin(), indices.end(),
                      [&](size_t a, size_t b) {
                          return candidates[a].op.score >
                                 candidates[b].op.score;
                      });
            for (size_t i = 0; i < indices.size(); ++i) {
                if (candidates[indices[i]].swizzle ||
                    static_cast<int>(i) < options.k) {
                    keep.insert(indices[i]);
                }
            }
        }
        std::vector<Scored> kept;
        for (size_t c = 0; c < candidates.size(); ++c)
            if (keep.count(c))
                kept.push_back(std::move(candidates[c]));
        candidates = std::move(kept);
    }

    if (!options.include_swizzles) {
        candidates.erase(
            std::remove_if(candidates.begin(), candidates.end(),
                           [](const Scored &s) { return s.swizzle; }),
            candidates.end());
    }

    // Global cap (the "top 50 by score" ablation).
    std::sort(candidates.begin(), candidates.end(),
              [](const Scored &a, const Scored &b) {
                  return a.op.score > b.op.score;
              });
    if (options.max_ops > 0 &&
        static_cast<int>(candidates.size()) > options.max_ops) {
        candidates.resize(options.max_ops);
    }

    for (auto &scored : candidates)
        grammar.ops.push_back(std::move(scored.op));
    return grammar;
}

} // namespace hydride
