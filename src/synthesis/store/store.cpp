#include "synthesis/store/store.h"

#include "observability/journal/journal.h"
#include "observability/log.h"
#include "observability/metrics.h"
#include "support/faults.h"
#include "support/fsio.h"
#include "support/strings.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

namespace hydride {

namespace {

/** FNV-1a step used by the signature feature hash. */
uint64_t
mixFeature(uint64_t h, uint64_t value)
{
    return (h ^ value) * 0x100000001B3ull;
}

void
signatureWalk(const HExprPtr &expr, int counts[64])
{
    if (!expr)
        return;
    // Width-affecting immediates shape the solution (a shift-by-3
    // needs a different program than shift-by-8); constant *values*
    // and input indices do not shape the instruction sequence nearly
    // as much, so they stay out of the feature and similar windows
    // stay within a small Hamming distance.
    const bool imm_matters =
        expr->op == HOp::ShlC || expr->op == HOp::AShrC ||
        expr->op == HOp::LShrC || expr->op == HOp::ReduceAdd ||
        expr->op == HOp::Slice;
    uint64_t h = 0xCBF29CE484222325ull;
    h = mixFeature(h, static_cast<uint64_t>(expr->op));
    h = mixFeature(h, static_cast<uint64_t>(expr->elem_width));
    h = mixFeature(h, static_cast<uint64_t>(expr->lanes));
    h = mixFeature(h, imm_matters ? static_cast<uint64_t>(expr->imm) : 0u);
    h = mixFeature(h, expr->sign ? 1u : 2u);
    for (int b = 0; b < 64; ++b)
        counts[b] += ((h >> b) & 1) ? 1 : -1;
    for (const auto &kid : expr->kids)
        signatureWalk(kid, counts);
}

/** Parse "pid <pid> t <seconds>" lock-file content. */
bool
parseLockFile(const std::string &text, long &pid, long &when)
{
    std::istringstream in(text);
    std::string pid_tag;
    std::string time_tag;
    return (in >> pid_tag >> pid >> time_tag >> when) &&
           pid_tag == "pid" && time_tag == "t" && pid > 0;
}

bool
makeDir(const std::string &path)
{
    return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
journalEvent(const char *kind,
             const std::vector<std::pair<std::string, std::string>> &strs,
             const std::vector<std::pair<std::string, double>> &nums)
{
    if (!journal::enabled())
        return;
    auto fields = bjson::Value::makeObject();
    for (const auto &[key, value] : strs)
        fields->set(key, bjson::Value::makeString(value));
    for (const auto &[key, value] : nums)
        fields->set(key, bjson::Value::makeNumber(value));
    journal::emitEvent(kind, fields);
}

} // namespace

uint64_t
windowSignature(const HExprPtr &window)
{
    int counts[64] = {0};
    signatureWalk(window, counts);
    uint64_t signature = 0;
    for (int b = 0; b < 64; ++b)
        if (counts[b] > 0)
            signature |= uint64_t(1) << b;
    return signature;
}

int
signatureDistance(uint64_t a, uint64_t b)
{
    return __builtin_popcountll(a ^ b);
}

std::string
SynthesisStore::shardPath(int shard) const
{
    return root_ + "/shards/" + format("%02x", shard) + ".log";
}

std::string
SynthesisStore::lockPath(const std::string &base) const
{
    // shards/00.log -> shards/00.lock; quarantine.log -> quarantine.lock
    if (endsWith(base, ".log"))
        return base.substr(0, base.size() - 4) + ".lock";
    return base + ".lock";
}

bool
SynthesisStore::acquireLock(const std::string &base, std::string &why)
{
    if (faults::shouldFail("store.lock")) {
        why = "injected store.lock fault";
        metrics::counter("store.lock.failures").add();
        return false;
    }
    const std::string lock = lockPath(base);
    for (int attempt = 0; attempt < options_.lock_attempts; ++attempt) {
        const int fd = fsio::openRetry(lock.c_str(),
                                       O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            const std::string body =
                "pid " + std::to_string(static_cast<long>(::getpid())) +
                " t " + std::to_string(static_cast<long>(::time(nullptr))) +
                "\n";
            const bool wrote =
                fsio::writeFull(fd, body.data(), body.size()) &&
                fsio::fsyncRetry(fd);
            ::close(fd);
            if (wrote)
                return true;
            ::unlink(lock.c_str());
            why = "lock body write failed";
            metrics::counter("store.lock.failures").add();
            return false;
        }
        if (errno != EEXIST) {
            why = std::string("lock create failed: ") +
                  std::strerror(errno);
            metrics::counter("store.lock.failures").add();
            return false;
        }

        // Someone holds it. Dead-owner and age heuristics decide
        // between takeover and waiting.
        long pid = 0;
        long when = 0;
        bool stale = false;
        if (parseLockFile(readWholeFile(lock), pid, when)) {
            const bool owner_dead =
                ::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH;
            const bool too_old =
                ::time(nullptr) - when >
                static_cast<long>(options_.stale_lock_age_seconds);
            stale = owner_dead || too_old;
        } else {
            // Unreadable body: a writer between create and write, or
            // leftover damage. Age (mtime) breaks the tie.
            struct stat st{};
            stale = ::stat(lock.c_str(), &st) == 0 &&
                    ::time(nullptr) - st.st_mtime >
                        static_cast<long>(options_.stale_lock_age_seconds);
        }
        if (stale) {
            // Takeover: unlink and retry immediately. Two concurrent
            // takers race benignly — the loser's unlink misses or
            // removes a lock the winner already replaced and the
            // O_EXCL create rearbitrates.
            ::unlink(lock.c_str());
            ++lock_takeovers_;
            metrics::counter("store.lock.takeovers").add();
            HYD_LOG(Warn, format("store: took over stale lock `%s` "
                                 "(owner pid %ld)",
                                 lock.c_str(), pid));
            journalEvent("store_takeover", {{"lock", lock}},
                         {{"owner_pid", static_cast<double>(pid)}});
            continue;
        }
        ::usleep(static_cast<useconds_t>(options_.lock_backoff_us));
    }
    why = "lock wait exhausted";
    metrics::counter("store.lock.failures").add();
    return false;
}

void
SynthesisStore::releaseLock(const std::string &base)
{
    ::unlink(lockPath(base).c_str());
}

bool
SynthesisStore::writeMeta(uint64_t fingerprint, long epoch)
{
    std::ostringstream out;
    out << "hydride-store v1 " << fingerprint << " " << epoch << "\n";
    return fsio::writeFileAtomic(root_ + "/meta", out.str());
}

bool
SynthesisStore::appendDurable(const std::string &base_path,
                              const std::string &payload, std::string &why)
{
    if (options_.read_only) {
        why = "store is read-only";
        return false;
    }
    if (!acquireLock(base_path, why))
        return false;
    const int fd = fsio::openRetry(base_path.c_str(),
                                   O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) {
        releaseLock(base_path);
        why = std::string("append open failed: ") + std::strerror(errno);
        return false;
    }
    if (faults::shouldFail("store.append")) {
        // The crash shape: half the record reaches the disk and the
        // writer "dies" holding its lock — the torn tail exercises
        // resync salvage, the leaked lock exercises takeover.
        (void)fsio::writeFull(fd, payload.data(), payload.size() / 2);
        ::close(fd);
        why = "injected store.append fault (torn record, leaked lock)";
        metrics::counter("store.append_failures").add();
        return false;
    }
    const bool wrote = fsio::writeFull(fd, payload.data(), payload.size()) &&
                       fsio::fsyncRetry(fd);
    ::close(fd);
    releaseLock(base_path);
    if (!wrote) {
        why = "append write/fsync failed";
        metrics::counter("store.append_failures").add();
        return false;
    }
    return true;
}

bool
SynthesisStore::loadQuarantine()
{
    std::ifstream in(root_ + "/quarantine.log");
    if (!in)
        return true; // Nothing quarantined yet.
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string tag;
        uint64_t hash = 0;
        std::string isa;
        if ((fields >> tag >> hash >> isa) && tag == "poison")
            poisoned_.insert({hash, isa});
    }
    return true;
}

bool
SynthesisStore::loadShards()
{
    for (int shard = 0; shard < options_.shards; ++shard) {
        std::ifstream in(shardPath(shard));
        if (!in)
            continue; // Shard never written.
        std::string line;
        bool in_record = false;
        uint64_t signature = 0;
        std::string body;    // "record ..." line + entry block.
        std::string block;   // The cachefmt entry block alone.

        auto abandon = [&](const char *what) {
            ++open_stats_.salvaged;
            metrics::counter("store.salvaged_records").add();
            HYD_LOG(Debug, format("store: shard %02x: skipped damaged "
                                  "record (%s)",
                                  shard, what));
            in_record = false;
        };

        while (std::getline(in, line)) {
            if (line.rfind("record ", 0) == 0) {
                if (in_record)
                    abandon("new header before checksum");
                std::istringstream hdr(line.substr(7));
                if (!(hdr >> signature)) {
                    abandon("bad header");
                    continue;
                }
                in_record = true;
                body = line + "\n";
                block.clear();
                continue;
            }
            if (!in_record) {
                // Torn tails and the writers' framing newlines leave
                // junk between records; resync at the next header.
                continue;
            }
            if (line.rfind("check ", 0) == 0) {
                in_record = false;
                uint64_t recorded = 0;
                std::istringstream chk(line.substr(6));
                if (!(chk >> recorded) ||
                    recorded != cachefmt::checksum(body) ||
                    faults::shouldFail("store.load")) {
                    abandon("checksum mismatch");
                    continue;
                }
                SynthesisCache::Key key;
                SynthesisResult result;
                if (!cachefmt::parseEntry(block, *dict_, key, result)) {
                    abandon("unparseable entry");
                    continue;
                }
                if (poisoned_.count(key)) {
                    ++open_stats_.poisoned_skipped;
                    continue;
                }
                StoredEntry &entry = entries_[key];
                entry.result = std::move(result);
                entry.signature = signature;
                continue;
            }
            body += line + "\n";
            block += line + "\n";
        }
        if (in_record)
            abandon("truncated final record");
    }
    open_stats_.records = entries_.size();
    metrics::counter("store.records_loaded").add(entries_.size());
    return true;
}

bool
SynthesisStore::open(const std::string &root, const AutoLLVMDict &dict,
                     Options options)
{
    open_ = false;
    root_ = root;
    dict_ = &dict;
    options_ = options;
    if (options_.shards < 1)
        options_.shards = 1;
    if (options_.shards > 256)
        options_.shards = 256;
    open_stats_ = OpenStats{};
    entries_.clear();
    poisoned_.clear();

    const uint64_t fingerprint = cachefmt::dictFingerprint(dict);
    const std::string meta_path = root_ + "/meta";
    std::string magic;
    std::string version;
    uint64_t found_fp = 0;
    long found_epoch = 0;
    bool have_meta = false;
    {
        std::ifstream meta(meta_path);
        std::string header;
        if (meta && std::getline(meta, header)) {
            std::istringstream hdr(header);
            have_meta = static_cast<bool>(hdr >> magic >> version >>
                                          found_fp >> found_epoch);
        }
    }

    const bool compatible = have_meta && magic == "hydride-store" &&
                            version == "v1" && found_fp == fingerprint;
    if (have_meta && !compatible) {
        // Never half-load an incompatible store: either rename the
        // whole tree aside (bumping the epoch for the replacement) or
        // refuse outright.
        if (!options_.quarantine_incompatible || options_.read_only) {
            open_stats_.error =
                "incompatible store (dictionary fingerprint mismatch)";
            return false;
        }
        const std::string dest =
            root_ + ".quarantined." + std::to_string(found_fp) + "." +
            std::to_string(static_cast<long>(::getpid()));
        if (!fsio::renameRetry(root_, dest)) {
            open_stats_.error = "cannot quarantine incompatible store";
            return false;
        }
        open_stats_.incompatible_quarantined = true;
        metrics::counter("store.incompatible_quarantined").add();
        HYD_LOG(Warn, format("store: quarantined incompatible store to "
                             "`%s`",
                             dest.c_str()));
        journalEvent("store_quarantined_incompatible",
                     {{"root", root_}, {"moved_to", dest}},
                     {{"found_fingerprint",
                       static_cast<double>(found_fp)}});
        have_meta = false;
        found_epoch = found_epoch > 0 ? found_epoch : 0;
    }

    if (!have_meta || !compatible) {
        if (options_.read_only) {
            open_stats_.error = "store does not exist (read-only open)";
            return false;
        }
        if (!makeDir(root_) || !makeDir(root_ + "/shards")) {
            open_stats_.error =
                std::string("cannot create store directories: ") +
                std::strerror(errno);
            return false;
        }
        open_stats_.epoch =
            open_stats_.incompatible_quarantined ? found_epoch + 1 : 1;
        if (!writeMeta(fingerprint, open_stats_.epoch)) {
            open_stats_.error = "cannot publish store meta";
            return false;
        }
        open_stats_.initialized = true;
    } else {
        open_stats_.epoch = found_epoch;
    }

    loadQuarantine();
    loadShards();
    open_ = true;
    open_stats_.ok = true;
    metrics::counter("store.opens").add();
    journalEvent("store_open", {{"root", root_}},
                 {{"records", static_cast<double>(open_stats_.records)},
                  {"salvaged", static_cast<double>(open_stats_.salvaged)},
                  {"epoch", static_cast<double>(open_stats_.epoch)},
                  {"initialized", open_stats_.initialized ? 1.0 : 0.0}});
    return true;
}

bool
SynthesisStore::refresh()
{
    if (!open_)
        return false;
    const AutoLLVMDict &dict = *dict_;
    Options options = options_;
    return open(root_, dict, options);
}

const SynthesisResult *
SynthesisStore::find(const HExprPtr &window, const std::string &isa) const
{
    if (!open_)
        return nullptr;
    const SynthesisCache::Key key{HExpr::hashOf(window), isa};
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second.result;
}

std::vector<SynthesisStore::Neighbor>
SynthesisStore::nearest(const HExprPtr &window, const std::string &isa,
                        int max_distance, size_t limit) const
{
    std::vector<Neighbor> matches;
    if (!open_)
        return matches;
    const uint64_t target = windowSignature(window);
    const uint64_t exact_hash = HExpr::hashOf(window);
    for (const auto &[key, entry] : entries_) {
        if (key.second != isa || key.first == exact_hash ||
            !entry.result.ok) {
            continue;
        }
        const int distance = signatureDistance(target, entry.signature);
        if (distance > max_distance)
            continue;
        matches.push_back({key, entry.signature, distance, &entry.result});
    }
    std::sort(matches.begin(), matches.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.distance != b.distance
                             ? a.distance < b.distance
                             : a.key < b.key;
              });
    if (matches.size() > limit)
        matches.resize(limit);
    return matches;
}

bool
SynthesisStore::append(const HExprPtr &window, const std::string &isa,
                       const SynthesisResult &result)
{
    if (!open_ || options_.read_only)
        return false;
    const SynthesisCache::Key key{HExpr::hashOf(window), isa};
    if (poisoned_.count(key))
        return false; // Never resurrect a quarantined key.
    if (entries_.count(key))
        return true; // Already durable (ours or another worker's).

    const uint64_t signature = windowSignature(window);
    std::ostringstream record;
    record << "record " << signature << "\n"
           << cachefmt::serializeEntry(key, result);
    const std::string body = record.str();
    // The leading newline re-frames the stream after any torn tail a
    // crashed writer left: this record still starts on a fresh line.
    const std::string payload =
        "\n" + body + "check " + std::to_string(cachefmt::checksum(body)) +
        "\n";

    const int shard = static_cast<int>(
        key.first & static_cast<uint64_t>(options_.shards - 1));
    std::string why;
    if (!appendDurable(shardPath(shard), payload, why)) {
        HYD_LOG(Warn, format("store: append to shard %02x failed: %s",
                             shard, why.c_str()));
        return false;
    }
    StoredEntry &entry = entries_[key];
    entry.result = result;
    entry.signature = signature;
    metrics::counter("store.appends").add();
    return true;
}

bool
SynthesisStore::quarantine(const HExprPtr &window, const std::string &isa,
                           const std::string &reason)
{
    if (!open_)
        return false;
    const SynthesisCache::Key key{HExpr::hashOf(window), isa};
    entries_.erase(key);
    poisoned_.insert(key);
    ++session_quarantined_;
    metrics::counter("store.poisoned").add();
    HYD_LOG(Warn, format("store: quarantined poisoned entry %016llx/%s: %s",
                         static_cast<unsigned long long>(key.first),
                         isa.c_str(), reason.c_str()));
    journalEvent("store_poisoned",
                 {{"hash", journal::hashHex(key.first)},
                  {"isa", isa},
                  {"reason", reason}},
                 {});

    std::ostringstream line;
    line << "\npoison " << key.first << " " << isa << " " << reason << "\n";
    std::string why;
    if (!appendDurable(root_ + "/quarantine.log", line.str(), why)) {
        // The in-memory demotion already protects this process; the
        // tombstone not landing only means a future process re-runs
        // the verification and demotes again.
        HYD_LOG(Warn,
                format("store: quarantine tombstone not durable: %s",
                       why.c_str()));
        return false;
    }
    return true;
}

} // namespace hydride
