/**
 * @file
 * The durable, multi-process, content-addressed synthesis store.
 *
 * `SynthesisCache` (synthesis/cache.h) memoizes within one process
 * and persists as a single atomically-replaced file. This store is
 * its compile-farm generalization (paper §4.1's memoization, shared
 * across a fleet of workers — ROADMAP "persistent, content-addressed
 * synthesis cache with warm-start"):
 *
 *  - **Content-addressed shards.** Records are keyed by the window's
 *    structural hash (`HExpr::hashOf`) + target ISA and land in
 *    `shards/<xx>.log` selected by the low hash bits. Shards are
 *    append-only: a record, once durable, is never rewritten.
 *
 *  - **Per-record checksums + resync salvage.** Every record carries
 *    an FNV-1a checksum and starts on a fresh line (writers emit a
 *    leading newline), so a crash mid-append costs exactly the torn
 *    record: the reader verifies each record and *resyncs* at the
 *    next record header instead of discarding the rest of the shard.
 *
 *  - **Single-writer shard locks with stale-lock takeover.** Appends
 *    serialize through `shards/<xx>.lock` (O_EXCL-created, holding
 *    `pid` + acquisition time). A lock whose owner is dead
 *    (`kill(pid, 0)` -> ESRCH) or older than the stale-age bound is
 *    *taken over*: the dead writer's lock is unlinked and the
 *    takeover is journaled — a SIGKILL'd worker never wedges the
 *    fleet.
 *
 *  - **Epoch/fingerprint gating.** A `meta` file (published atomically
 *    via temp+rename) binds the store to the AutoLLVM dictionary
 *    fingerprint. An incompatible store is never half-loaded: it is
 *    either refused or renamed aside to `<root>.quarantined.<...>`
 *    and re-initialized with a bumped epoch.
 *
 *  - **Approximate retrieval.** Each record also carries a SimHash
 *    *signature* of the window's node features; `nearest()` returns
 *    solved windows within a Hamming-distance bound, whose modules
 *    seed CEGIS as warm-start candidates (synthesis/cegis.h
 *    `warm_seeds`). Retrieval is trust-but-verify — the driver
 *    re-proves every retrieved solution before acceptance and
 *    demotes failures via `quarantine()` (an append-only tombstone
 *    in `quarantine.log`; poisoned keys are never loaded again).
 *
 * Fault sites (`HYDRIDE_FAULTS`): `store.lock` (acquisition fails),
 * `store.append` (torn record + leaked lock, the crash shape),
 * `store.load` (a record reads as corrupt), `store.verify` (driver-
 * side: a retrieved entry fails verification).
 *
 * One instance is single-threaded; cross-*process* coordination is
 * the lock protocol above. All failures are ordinary `false` returns
 * — the store never throws and never takes the compilation down
 * (docs/robustness.md ladder is unaffected by a dead store).
 */
#ifndef HYDRIDE_SYNTHESIS_STORE_STORE_H
#define HYDRIDE_SYNTHESIS_STORE_STORE_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "synthesis/cache.h"

namespace hydride {

/**
 * SimHash over the window's node features (operator, element width,
 * lane count, width-affecting immediates — but *not* constant values
 * or input indices, so e.g. commuted operands or a different clamp
 * bound stay nearby). Structurally similar windows land within a few
 * bits of Hamming distance; unrelated windows are ~32 bits apart.
 */
uint64_t windowSignature(const HExprPtr &window);

/** Hamming distance between two signatures. */
int signatureDistance(uint64_t a, uint64_t b);

/** Durable multi-process synthesis store (see file comment). */
class SynthesisStore
{
  public:
    struct Options
    {
        bool read_only = false;
        /** Shard count (power of two, 1..256). The concurrency tests
         *  use 1 to force every writer onto one lock. */
        int shards = 16;
        /** A held lock older than this is presumed abandoned even
         *  when its pid is unreadable/alive-looking (PID reuse). */
        double stale_lock_age_seconds = 30.0;
        /** Bounded lock wait: attempts x backoff_us. */
        int lock_attempts = 200;
        int lock_backoff_us = 2000;
        /** Rename an incompatible (wrong-fingerprint) store aside and
         *  re-initialize instead of refusing to open. */
        bool quarantine_incompatible = true;
    };

    /** What open() found and did. */
    struct OpenStats
    {
        bool ok = false;
        bool initialized = false; ///< Fresh store was created.
        bool incompatible_quarantined = false;
        long epoch = 1;
        size_t records = 0;          ///< Entries loaded into the index.
        size_t salvaged = 0;         ///< Torn/corrupt records skipped.
        size_t poisoned_skipped = 0; ///< Tombstoned records skipped.
        std::string error;
    };

    /** One approximate match from nearest(). */
    struct Neighbor
    {
        SynthesisCache::Key key;
        uint64_t signature = 0;
        int distance = 0;
        const SynthesisResult *result = nullptr;
    };

    /**
     * Open (and if absent initialize) the store rooted at `root`.
     * False on a hard failure (unwritable directory, incompatible
     * store with quarantine disabled); openStats().error says why.
     */
    bool open(const std::string &root, const AutoLLVMDict &dict,
              Options options);
    bool
    open(const std::string &root, const AutoLLVMDict &dict)
    {
        return open(root, dict, Options());
    }

    bool isOpen() const { return open_; }
    const OpenStats &openStats() const { return open_stats_; }
    const std::string &root() const { return root_; }
    long epoch() const { return open_stats_.epoch; }
    size_t size() const { return entries_.size(); }

    /** Entries this instance demoted via quarantine(). */
    size_t sessionQuarantined() const { return session_quarantined_; }
    /** Stale locks this instance took over. */
    size_t lockTakeovers() const { return lock_takeovers_; }

    /** Exact lookup; nullptr when absent (or quarantined). */
    const SynthesisResult *find(const HExprPtr &window,
                                const std::string &isa) const;

    /**
     * Successful solved windows within `max_distance` signature bits,
     * nearest first, at most `limit`. The exact key (distance 0,
     * same hash) is excluded — that is find()'s job.
     */
    std::vector<Neighbor> nearest(const HExprPtr &window,
                                  const std::string &isa,
                                  int max_distance,
                                  size_t limit = 4) const;

    /**
     * Durably append one record under the shard writer lock; updates
     * the in-memory index on success. False (never throws) when the
     * store is read-only, the lock cannot be acquired, or the write
     * fails — compilation proceeds, the result is just not shared.
     */
    bool append(const HExprPtr &window, const std::string &isa,
                const SynthesisResult &result);

    /**
     * Demote a poisoned entry: drop it from the index and append a
     * tombstone to quarantine.log so no future open() serves it
     * again. Journals a `store_poisoned` event with the reason.
     */
    bool quarantine(const HExprPtr &window, const std::string &isa,
                    const std::string &reason);

    /** Re-scan the shards, picking up other processes' appends (and
     *  new tombstones). Keeps the epoch; false on meta mismatch. */
    bool refresh();

  private:
    struct StoredEntry
    {
        SynthesisResult result;
        uint64_t signature = 0;
    };

    std::string shardPath(int shard) const;
    std::string lockPath(const std::string &base) const;
    bool acquireLock(const std::string &base, std::string &why);
    void releaseLock(const std::string &base);
    bool loadShards();
    bool loadQuarantine();
    bool writeMeta(uint64_t fingerprint, long epoch);
    bool appendDurable(const std::string &base_path,
                       const std::string &payload, std::string &why);

    bool open_ = false;
    std::string root_;
    const AutoLLVMDict *dict_ = nullptr;
    Options options_;
    OpenStats open_stats_;
    std::map<SynthesisCache::Key, StoredEntry> entries_;
    std::set<SynthesisCache::Key> poisoned_;
    size_t session_quarantined_ = 0;
    size_t lock_takeovers_ = 0;
};

} // namespace hydride

#endif // HYDRIDE_SYNTHESIS_STORE_STORE_H
