#include "synthesis/cache.h"

#include "observability/metrics.h"
#include "support/strings.h"

#include <fstream>

namespace hydride {

const SynthesisResult *
SynthesisCache::lookup(const HExprPtr &window, const std::string &isa)
{
    const Key key{HExpr::hashOf(window), isa};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        static metrics::Counter &miss_counter =
            metrics::counter("synthesis.cache.misses");
        miss_counter.add();
        return nullptr;
    }
    ++hits_;
    ++it->second.hits;
    static metrics::Counter &hit_counter =
        metrics::counter("synthesis.cache.hits");
    hit_counter.add();
    return &it->second.result;
}

void
SynthesisCache::insert(const HExprPtr &window, const std::string &isa,
                       const SynthesisResult &result)
{
    const Key key{HExpr::hashOf(window), isa};
    entries_[key].result = result;
    static metrics::Counter &insert_counter =
        metrics::counter("synthesis.cache.inserts");
    insert_counter.add();
}

void
SynthesisCache::clear()
{
    lifetime_hits_ += hits_;
    lifetime_misses_ += misses_;
    metrics::counter("synthesis.cache.clears").add();
    entries_.clear();
    hits_ = misses_ = 0;
}

namespace {

/** Fingerprint tying a cache file to the dictionary that made it. */
uint64_t
dictFingerprint(const AutoLLVMDict &dict)
{
    uint64_t h = 0xD1C7 ^ static_cast<uint64_t>(dict.classCount());
    for (int c = 0; c < dict.classCount(); ++c) {
        h = h * 1099511628211ull ^ dict.cls(c).members.size();
        h = h * 1099511628211ull ^
            std::hash<std::string>{}(dict.cls(c).members[0].name);
    }
    return h;
}

} // namespace

bool
SynthesisCache::save(const std::string &path, const AutoLLVMDict &dict) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "hydride-synth-cache v1 " << dictFingerprint(dict) << "\n";
    for (const auto &[key, entry] : entries_) {
        const SynthesisResult &result = entry.result;
        out << "entry " << key.first << " " << key.second << " "
            << (result.ok ? 1 : 0) << " " << result.cost << " "
            << result.scale << "\n";
        if (!result.ok)
            continue;
        const AutoModule &module = result.module;
        out << "inputs";
        for (int w : module.input_widths)
            out << " " << w;
        out << "\nconsts " << module.constants.size() << "\n";
        for (const auto &constant : module.constants)
            out << constant.width() << " " << constant.toHex() << "\n";
        out << "insts " << module.insts.size() << "\n";
        for (const auto &inst : module.insts) {
            out << inst.op.class_id << " " << inst.op.member_index << " "
                << inst.args.size();
            for (const auto &ref : inst.args)
                out << " " << static_cast<int>(ref.kind) << " "
                    << ref.index;
            out << " " << inst.int_args.size();
            for (int64_t imm : inst.int_args)
                out << " " << imm;
            out << "\n";
        }
        out << "result " << module.result << "\n";
    }
    return static_cast<bool>(out);
}

bool
SynthesisCache::load(const std::string &path, const AutoLLVMDict &dict)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string magic;
    std::string version;
    uint64_t fingerprint = 0;
    in >> magic >> version >> fingerprint;
    if (magic != "hydride-synth-cache" || version != "v1" ||
        fingerprint != dictFingerprint(dict)) {
        return false;
    }
    std::string tag;
    while (in >> tag) {
        if (tag != "entry")
            return false;
        Key key;
        int ok = 0;
        SynthesisResult result;
        in >> key.first >> key.second >> ok >> result.cost >> result.scale;
        result.ok = ok != 0;
        if (result.ok) {
            AutoModule &module = result.module;
            in >> tag; // "inputs"
            // Input widths run to end of line.
            std::string line;
            std::getline(in, line);
            for (const auto &field : split(trim(line), ' '))
                if (!field.empty())
                    module.input_widths.push_back(std::stoi(field));
            size_t n_consts = 0;
            in >> tag >> n_consts; // "consts"
            for (size_t c = 0; c < n_consts; ++c) {
                int width = 0;
                std::string hex;
                in >> width >> hex;
                BitVector value(width);
                for (size_t digit = 0; digit < hex.size(); ++digit) {
                    const char ch = hex[hex.size() - 1 - digit];
                    const int nibble =
                        ch <= '9' ? ch - '0' : ch - 'a' + 10;
                    for (int bit = 0; bit < 4; ++bit) {
                        const int pos = static_cast<int>(digit) * 4 + bit;
                        if (pos < width && ((nibble >> bit) & 1))
                            value.setBit(pos, true);
                    }
                }
                module.constants.push_back(std::move(value));
            }
            size_t n_insts = 0;
            in >> tag >> n_insts; // "insts"
            for (size_t i = 0; i < n_insts; ++i) {
                AutoInst inst;
                size_t n_args = 0;
                in >> inst.op.class_id >> inst.op.member_index >> n_args;
                if (inst.op.class_id < 0 ||
                    inst.op.class_id >= dict.classCount()) {
                    return false;
                }
                for (size_t a = 0; a < n_args; ++a) {
                    int kind = 0;
                    int index = 0;
                    in >> kind >> index;
                    inst.args.push_back(
                        {static_cast<ValueRef::Kind>(kind), index});
                }
                size_t n_imms = 0;
                in >> n_imms;
                for (size_t m = 0; m < n_imms; ++m) {
                    int64_t imm = 0;
                    in >> imm;
                    inst.int_args.push_back(imm);
                }
                module.insts.push_back(std::move(inst));
            }
            in >> tag >> result.module.result; // "result"
        }
        if (in)
            entries_[key].result = std::move(result);
    }
    return true;
}

} // namespace hydride
