#include "synthesis/cache.h"

#include "observability/journal/journal.h"
#include "observability/log.h"
#include "observability/metrics.h"
#include "support/faults.h"
#include "support/fsio.h"
#include "support/strings.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <unistd.h>

namespace hydride {

const SynthesisResult *
SynthesisCache::lookup(const HExprPtr &window, const std::string &isa)
{
    const Key key{HExpr::hashOf(window), isa};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        static metrics::Counter &miss_counter =
            metrics::counter("synthesis.cache.misses");
        miss_counter.add();
        return nullptr;
    }
    ++hits_;
    ++it->second.hits;
    static metrics::Counter &hit_counter =
        metrics::counter("synthesis.cache.hits");
    hit_counter.add();
    return &it->second.result;
}

void
SynthesisCache::insertEntry(const Key &key, const SynthesisResult &result)
{
    CachedEntry &entry = entries_[key];
    entry.result = result;
    entry.hits = 0;
    static metrics::Counter &insert_counter =
        metrics::counter("synthesis.cache.inserts");
    insert_counter.add();
}

void
SynthesisCache::insert(const HExprPtr &window, const std::string &isa,
                       const SynthesisResult &result)
{
    insertEntry({HExpr::hashOf(window), isa}, result);
}

void
SynthesisCache::insertByKey(const Key &key, const SynthesisResult &result)
{
    insertEntry(key, result);
}

void
SynthesisCache::clear()
{
    lifetime_hits_ += hits_;
    lifetime_misses_ += misses_;
    metrics::counter("synthesis.cache.clears").add();
    entries_.clear();
    hits_ = misses_ = 0;
}

namespace cachefmt {

uint64_t
dictFingerprint(const AutoLLVMDict &dict)
{
    uint64_t h = 0xD1C7 ^ static_cast<uint64_t>(dict.classCount());
    for (int c = 0; c < dict.classCount(); ++c) {
        h = h * 1099511628211ull ^ dict.cls(c).members.size();
        h = h * 1099511628211ull ^
            std::hash<std::string>{}(dict.cls(c).members[0].name);
    }
    return h;
}

uint64_t
checksum(const std::string &text)
{
    uint64_t h = 0xCBF29CE484222325ull;
    for (unsigned char c : text)
        h = (h ^ c) * 0x100000001B3ull;
    return h;
}

std::string
serializeEntry(const SynthesisCache::Key &key, const SynthesisResult &result)
{
    std::ostringstream out;
    out << "entry " << key.first << " " << key.second << " "
        << (result.ok ? 1 : 0) << " " << result.cost << " "
        << result.scale << "\n";
    if (!result.ok)
        return out.str();
    const AutoModule &module = result.module;
    out << "inputs";
    for (int w : module.input_widths)
        out << " " << w;
    out << "\nconsts " << module.constants.size() << "\n";
    for (const auto &constant : module.constants)
        out << constant.width() << " " << constant.toHex() << "\n";
    out << "insts " << module.insts.size() << "\n";
    for (const auto &inst : module.insts) {
        out << inst.op.class_id << " " << inst.op.member_index << " "
            << inst.args.size();
        for (const auto &ref : inst.args)
            out << " " << static_cast<int>(ref.kind) << " " << ref.index;
        out << " " << inst.int_args.size();
        for (int64_t imm : inst.int_args)
            out << " " << imm;
        out << "\n";
    }
    out << "result " << module.result << "\n";
    return out.str();
}

bool
parseEntry(const std::string &block, const AutoLLVMDict &dict,
           SynthesisCache::Key &key, SynthesisResult &result)
{
    std::istringstream in(block);
    std::string tag;
    if (!(in >> tag) || tag != "entry")
        return false;
    int ok = 0;
    if (!(in >> key.first >> key.second >> ok >> result.cost >>
          result.scale))
        return false;
    result.ok = ok != 0;
    if (!result.ok)
        return true;
    AutoModule &module = result.module;
    if (!(in >> tag) || tag != "inputs")
        return false;
    // Input widths run to end of line.
    std::string line;
    std::getline(in, line);
    for (const auto &field : split(trim(line), ' '))
        if (!field.empty())
            module.input_widths.push_back(std::stoi(field));
    size_t n_consts = 0;
    if (!(in >> tag >> n_consts) || tag != "consts")
        return false;
    for (size_t c = 0; c < n_consts; ++c) {
        int width = 0;
        std::string hex;
        if (!(in >> width >> hex) || width <= 0)
            return false;
        BitVector value(width);
        for (size_t digit = 0; digit < hex.size(); ++digit) {
            const char ch = hex[hex.size() - 1 - digit];
            const int nibble = ch <= '9' ? ch - '0' : ch - 'a' + 10;
            for (int bit = 0; bit < 4; ++bit) {
                const int pos = static_cast<int>(digit) * 4 + bit;
                if (pos < width && ((nibble >> bit) & 1))
                    value.setBit(pos, true);
            }
        }
        module.constants.push_back(std::move(value));
    }
    size_t n_insts = 0;
    if (!(in >> tag >> n_insts) || tag != "insts")
        return false;
    for (size_t i = 0; i < n_insts; ++i) {
        AutoInst inst;
        size_t n_args = 0;
        if (!(in >> inst.op.class_id >> inst.op.member_index >> n_args))
            return false;
        if (inst.op.class_id < 0 || inst.op.class_id >= dict.classCount())
            return false;
        for (size_t a = 0; a < n_args; ++a) {
            int kind = 0;
            int index = 0;
            if (!(in >> kind >> index))
                return false;
            inst.args.push_back({static_cast<ValueRef::Kind>(kind), index});
        }
        size_t n_imms = 0;
        if (!(in >> n_imms))
            return false;
        for (size_t m = 0; m < n_imms; ++m) {
            int64_t imm = 0;
            if (!(in >> imm))
                return false;
            inst.int_args.push_back(imm);
        }
        module.insts.push_back(std::move(inst));
    }
    if (!(in >> tag >> result.module.result) || tag != "result")
        return false;
    return true;
}

} // namespace cachefmt

bool
SynthesisCache::save(const std::string &path, const AutoLLVMDict &dict) const
{
    // Chaos seam: a failed save is an ordinary outcome callers must
    // tolerate (the previous cache on disk stays intact either way).
    if (faults::shouldFail("cache.save"))
        return false;

    // Atomic persistence via fsio::writeFileAtomic: temp file in the
    // same directory, fsync, EINTR-safe rename over the target, then
    // a directory fsync. A crash mid-save leaves the old cache
    // untouched; the pid suffix on the temp file keeps concurrent
    // savers from clobbering each other (last rename wins, both
    // files stay well-formed).
    std::ostringstream out;
    out << "hydride-synth-cache v2 " << cachefmt::dictFingerprint(dict)
        << "\n";
    for (const auto &[key, entry] : entries_) {
        const std::string block = cachefmt::serializeEntry(key, entry.result);
        out << block << "check " << cachefmt::checksum(block) << "\n";
    }
    return fsio::writeFileAtomic(path, out.str());
}

namespace {

/** `cache.load.*` observability: salvage must be visible without
 *  reading stderr, so every load outcome lands in the metrics
 *  registry and (when enabled) the provenance journal. */
void
noteLoadOutcome(const std::string &path, bool ok, bool salvaged,
                size_t entries)
{
    metrics::counter("cache.load.attempts").add();
    if (!ok)
        metrics::counter("cache.load.failures").add();
    if (salvaged)
        metrics::counter("cache.load.salvaged").add();
    metrics::counter("cache.load.entries").add(entries);
    if (journal::enabled()) {
        auto fields = bjson::Value::makeObject();
        fields->set("path", bjson::Value::makeString(path));
        fields->set("ok", bjson::Value::makeBool(ok));
        fields->set("salvaged", bjson::Value::makeBool(salvaged));
        fields->set("entries", bjson::Value::makeNumber(
                                   static_cast<double>(entries)));
        journal::emitEvent("cache_load", fields);
    }
}

} // namespace

bool
SynthesisCache::load(const std::string &path, const AutoLLVMDict &dict)
{
    std::ifstream in(path);
    if (!in) {
        noteLoadOutcome(path, false, false, 0);
        return false;
    }
    std::string header;
    if (!std::getline(in, header)) {
        noteLoadOutcome(path, false, false, 0);
        return false;
    }
    std::istringstream hdr(header);
    std::string magic;
    std::string version;
    uint64_t fingerprint = 0;
    hdr >> magic >> version >> fingerprint;
    if (magic != "hydride-synth-cache" || version != "v2" ||
        fingerprint != cachefmt::dictFingerprint(dict)) {
        noteLoadOutcome(path, false, false, 0);
        return false;
    }

    // Salvage loader: entries are independent checksummed blocks, so
    // a damaged file (bit flip, truncation, crash mid-write of an
    // ancestor tool) costs only the entries at and after the damage —
    // the valid prefix is kept instead of discarding the whole cache.
    last_load_ = LoadStats{};
    std::string line;
    std::string block;
    bool in_block = false;
    while (std::getline(in, line)) {
        if (line.rfind("entry ", 0) == 0) {
            if (in_block)
                break; // Previous block never saw its checksum line.
            in_block = true;
            block = line + "\n";
            continue;
        }
        if (line.rfind("check ", 0) == 0) {
            if (!in_block)
                break;
            in_block = false;
            uint64_t recorded = 0;
            std::istringstream chk(line.substr(6));
            if (!(chk >> recorded) ||
                recorded != cachefmt::checksum(block) ||
                faults::shouldFail("cache.corrupt")) {
                last_load_.salvaged = true;
                break;
            }
            Key key;
            SynthesisResult result;
            if (!cachefmt::parseEntry(block, dict, key, result)) {
                last_load_.salvaged = true;
                break;
            }
            entries_[key].result = std::move(result);
            ++last_load_.entries_loaded;
            continue;
        }
        if (!in_block)
            break; // Garbage between blocks.
        block += line + "\n";
    }
    if (in_block)
        last_load_.salvaged = true; // Truncated final block.
    if (last_load_.salvaged) {
        HYD_LOG(Warn,
                format("synthesis cache `%s` is damaged; salvaged the "
                       "valid prefix (%zu entries)",
                       path.c_str(), last_load_.entries_loaded));
    }
    noteLoadOutcome(path, true, last_load_.salvaged,
                    last_load_.entries_loaded);
    return true;
}

} // namespace hydride
